// E10 — §1: ESL-EV versus the RCEDA-style standalone event engine.
//
// Paper claim: the graph-based engine of [23] "takes a simple
// graph-based processing model and lacks optimization techniques for
// large volume RFID event data processing." The RCEDA baseline
// materializes every intermediate composite event and never purges; the
// ESL-EV SEQ operator detects the same events with windowed, mode-pruned
// state. Shape expected: RCEDA state grows quadratically-ish with trace
// length and throughput collapses; ESL-EV stays flat.

#include <benchmark/benchmark.h>

#include "baseline/rceda.h"
#include "bench/bench_util.h"
#include "cep/seq_operator.h"
#include "expr/binder.h"
#include "sql/parser.h"

namespace eslev {
namespace {

rfid::Workload MakeTrace(size_t num_products) {
  rfid::QualityCheckWorkloadOptions options;
  options.num_products = num_products;
  options.stage_delay = Seconds(2);
  options.product_interval = Seconds(1);
  return rfid::MakeQualityCheckWorkload(options);
}

void BM_RcedaGraphEngine(benchmark::State& state) {
  auto workload = MakeTrace(static_cast<size_t>(state.range(0)));
  uint64_t events = 0;
  size_t instances = 0;
  for (auto _ : state) {
    state.PauseTiming();
    baseline::RcedaEngine engine;
    // Guard: all four readings must carry the same tag (Example 6).
    auto guard = [](const baseline::EventInstance& l,
                    const baseline::EventInstance& r) {
      return l.tuples.back().value(1) == r.tuples.back().value(1);
    };
    auto* root = engine.BuildSeqChain({"C1", "C2", "C3", "C4"}, guard);
    uint64_t local_events = 0;
    root->AddCallback(
        [&](const baseline::EventInstance&) { ++local_events; });
    state.ResumeTiming();
    for (const auto& e : workload.events) {
      bench::CheckOk(engine.Inject(e.stream, e.tuple), "inject");
    }
    events = local_events;
    instances = engine.retained_instances();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          workload.events.size());
  state.counters["events"] = static_cast<double>(events);
  state.counters["retained_instances"] = static_cast<double>(instances);
}
BENCHMARK(BM_RcedaGraphEngine)->Arg(250)->Arg(1000)->Arg(4000);

void BM_EslEvSeqOperator(benchmark::State& state) {
  auto workload = MakeTrace(static_cast<size_t>(state.range(0)));
  FunctionRegistry registry;
  auto schema = Schema::Make({{"readerid", TypeId::kString},
                              {"tagid", TypeId::kString},
                              {"tagtime", TypeId::kTimestamp}});
  uint64_t events = 0;
  size_t peak_history = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SeqOperatorConfig config;
    BindScope scope;
    for (int i = 1; i <= 4; ++i) {
      const std::string alias = "C" + std::to_string(i);
      scope.AddEntry({alias, schema, 0, false});
      config.positions.push_back({alias, schema, false});
    }
    config.mode = PairingMode::kChronicle;
    Binder binder(&scope, &registry);
    auto bind = [&](const std::string& text) {
      auto parsed = ParseExpression(text);
      bench::CheckOk(parsed.status(), "parse");
      auto bound = binder.Bind(**parsed);
      bench::CheckOk(bound.status(), "bind");
      return std::move(bound).ValueUnsafe();
    };
    for (size_t pos = 0; pos < 3; ++pos) {
      PairwiseConstraint c;
      c.pos_a = pos;
      c.pos_b = 3;
      c.expr = bind("C" + std::to_string(pos + 1) + ".tagid = C4.tagid");
      config.pairwise.push_back(std::move(c));
    }
    config.projection.push_back(bind("C4.tagid"));
    config.out_schema = Schema::Make({{"tag", TypeId::kString}});
    SeqWindow w;
    w.length = Seconds(30);
    w.direction = WindowDirection::kPreceding;
    w.anchor = 3;
    config.window = w;
    auto op_result = SeqOperator::Make(std::move(config));
    bench::CheckOk(op_result.status(), "make");
    auto op = std::move(op_result).ValueUnsafe();
    peak_history = 0;
    state.ResumeTiming();
    for (const auto& e : workload.events) {
      const size_t port = static_cast<size_t>(e.stream[1] - '1');
      bench::CheckOk(op->OnTuple(port, e.tuple), "tuple");
      peak_history = std::max(peak_history, op->history_size());
    }
    events = op->matches_emitted();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          workload.events.size());
  state.counters["events"] = static_cast<double>(events);
  state.counters["peak_history"] = static_cast<double>(peak_history);
}
BENCHMARK(BM_EslEvSeqOperator)->Arg(250)->Arg(1000)->Arg(4000);

}  // namespace
}  // namespace eslev

ESLEV_BENCH_MAIN()
