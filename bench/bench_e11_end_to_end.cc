// E11 — end-to-end language overhead: the full SQL path (parse → bind →
// plan → push-based execution) for each paper example, measured as
// per-tuple cost of the registered pipeline plus one-time registration
// cost. This quantifies the paper's premise that the DSMS language
// layer is cheap enough to serve as the single RFID processing system.

#include "bench/bench_util.h"
#include "sql/parser.h"

namespace eslev {
namespace {

// One-time cost: parsing + planning each example query.
void BM_ParseAndPlan(benchmark::State& state) {
  const char* kQueries[] = {
      // Example 1
      R"sql(INSERT INTO cleaned_readings
        SELECT * FROM readings AS r1
        WHERE NOT EXISTS
          (SELECT * FROM TABLE( readings OVER
              (RANGE 1 seconds PRECEDING CURRENT)) AS r2
           WHERE r2.reader_id = r1.reader_id AND r2.tag_id = r1.tag_id))sql",
      // Example 7
      R"sql(SELECT FIRST(R1*).tagtime, COUNT(R1*), R2.tagid, R2.tagtime
        FROM R1, R2
        WHERE SEQ(R1*, R2) MODE CHRONICLE
          AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS
          AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS)sql",
      // §3.1.3
      R"sql(SELECT A1.tagid, A2.tagid, A3.tagid FROM A1, A2, A3
        WHERE EXCEPTION_SEQ(A1, A2, A3) OVER [1 HOURS FOLLOWING A1])sql",
  };
  size_t parsed = 0;
  for (auto _ : state) {
    for (const char* q : kQueries) {
      auto stmt = ParseStatement(q);
      bench::CheckOk(stmt.status(), "parse");
      benchmark::DoNotOptimize(stmt);
      ++parsed;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(parsed));
}
BENCHMARK(BM_ParseAndPlan);

// Steady-state per-tuple cost of each registered example pipeline.
void BM_Example1PerTuple(benchmark::State& state) {
  rfid::DuplicateWorkloadOptions options;
  options.num_distinct = 5000;
  options.duplicates_per_read = 3;
  auto workload = rfid::MakeDuplicateWorkload(options);
  for (auto _ : state) {
    state.PauseTiming();
    Engine engine;
    bench::CheckOk(engine.ExecuteScript(R"sql(
      CREATE STREAM readings(reader_id, tag_id, read_time);
      CREATE STREAM cleaned_readings(reader_id, tag_id, read_time);
      INSERT INTO cleaned_readings
      SELECT * FROM readings AS r1
      WHERE NOT EXISTS
        (SELECT * FROM TABLE( readings OVER
            (RANGE 1 seconds PRECEDING CURRENT)) AS r2
         WHERE r2.reader_id = r1.reader_id AND r2.tag_id = r1.tag_id);
    )sql"),
                   "setup");
    state.ResumeTiming();
    bench::Feed(&engine, workload);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          workload.events.size());
}
BENCHMARK(BM_Example1PerTuple);

void BM_Example7PerTuple(benchmark::State& state) {
  rfid::PackingWorkloadOptions options;
  options.num_cases = 2000;
  auto workload = rfid::MakePackingWorkload(options);
  for (auto _ : state) {
    state.PauseTiming();
    Engine engine;
    bench::CheckOk(engine.ExecuteScript(R"sql(
      CREATE STREAM R1(readerid, tagid, tagtime);
      CREATE STREAM R2(readerid, tagid, tagtime);
    )sql"),
                   "ddl");
    auto q = engine.RegisterQuery(R"sql(
      SELECT FIRST(R1*).tagtime, COUNT(R1*), R2.tagid, R2.tagtime
      FROM R1, R2
      WHERE SEQ(R1*, R2) MODE CHRONICLE
        AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS
        AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS
    )sql");
    bench::CheckOk(q.status(), "query");
    state.ResumeTiming();
    bench::Feed(&engine, workload);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          workload.events.size());
}
BENCHMARK(BM_Example7PerTuple);

void BM_Example5PerTuple(benchmark::State& state) {
  rfid::LabWorkflowWorkloadOptions options;
  options.num_rounds = 3000;
  auto workload = rfid::MakeLabWorkflowWorkload(options);
  for (auto _ : state) {
    state.PauseTiming();
    Engine engine;
    bench::CheckOk(engine.ExecuteScript(R"sql(
      CREATE STREAM A1(staffid, tagid, tagtime);
      CREATE STREAM A2(staffid, tagid, tagtime);
      CREATE STREAM A3(staffid, tagid, tagtime);
    )sql"),
                   "ddl");
    auto q = engine.RegisterQuery(R"sql(
      SELECT A1.tagid, A2.tagid, A3.tagid FROM A1, A2, A3
      WHERE EXCEPTION_SEQ(A1, A2, A3) OVER [1 HOURS FOLLOWING A1]
    )sql");
    bench::CheckOk(q.status(), "query");
    state.ResumeTiming();
    bench::Feed(&engine, workload);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          workload.events.size());
}
BENCHMARK(BM_Example5PerTuple);

}  // namespace
}  // namespace eslev

ESLEV_BENCH_MAIN()
