// E12 (extension) — ALE event-cycle reporting throughput.
//
// The paper motivates ESL-EV with the ALE standard's requirements
// ("data filtering, windows-based aggregation, and reporting", §1).
// This bench measures the ALE layer itself: per-reading cost of event
// cycles with pattern filtering and additions/deletions reporting,
// sweeping the number of report specs per cycle.

#include <benchmark/benchmark.h>

#include "ale/event_cycle.h"
#include "bench/bench_util.h"

namespace eslev {
namespace {

void BM_AleEventCycles(benchmark::State& state) {
  const int num_reports = static_cast<int>(state.range(0));

  rfid::EpcWorkloadOptions options;
  options.num_readings = 20000;
  auto workload = rfid::MakeEpcWorkload(options);

  size_t cycles = 0;
  for (auto _ : state) {
    state.PauseTiming();
    ale::EcSpec spec;
    spec.period = Seconds(10);
    for (int i = 0; i < num_reports; ++i) {
      ale::ReportSpec r;
      r.name = "report" + std::to_string(i);
      r.include_patterns = {"20.*.*"};
      r.exclude_patterns = {"20.*.[0-" + std::to_string(1000 * (i + 1)) +
                            "]"};
      r.set = i % 2 == 0 ? ale::ReportSet::kAdditions
                         : ale::ReportSet::kCurrent;
      r.count_only = i % 3 == 0;
      spec.reports.push_back(std::move(r));
    }
    auto proc_result = ale::EventCycleProcessor::Make(spec, 0);
    bench::CheckOk(proc_result.status(), "make");
    auto proc = std::move(proc_result).ValueUnsafe();
    size_t local_cycles = 0;
    proc->SetCallback(
        [&](const ale::EcCycleResult&) { ++local_cycles; });
    state.ResumeTiming();
    for (const auto& e : workload.events) {
      bench::CheckOk(
          proc->OnReading(e.tuple.value(1).string_value(), e.tuple.ts()),
          "reading");
    }
    cycles = local_cycles;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          workload.events.size());
  state.counters["reports_per_cycle"] = static_cast<double>(num_reports);
  state.counters["cycles"] = static_cast<double>(cycles);
}
BENCHMARK(BM_AleEventCycles)->Arg(1)->Arg(4)->Arg(16);

// End-to-end: dedup in ESL-EV feeding the ALE layer.
void BM_AlePipelineWithDedup(benchmark::State& state) {
  rfid::DuplicateWorkloadOptions options;
  options.num_distinct = 4000;
  options.duplicates_per_read = 3;
  auto workload = rfid::MakeDuplicateWorkload(options);

  for (auto _ : state) {
    state.PauseTiming();
    Engine engine;
    bench::CheckOk(engine.ExecuteScript(R"sql(
      CREATE STREAM readings(reader_id, tag_id, read_time);
      CREATE STREAM cleaned(reader_id, tag_id, read_time);
      INSERT INTO cleaned
      SELECT * FROM readings AS r1
      WHERE NOT EXISTS
        (SELECT * FROM TABLE( readings OVER
            (RANGE 1 seconds PRECEDING CURRENT)) AS r2
         WHERE r2.reader_id = r1.reader_id AND r2.tag_id = r1.tag_id);
    )sql"),
                   "setup");
    ale::EcSpec spec;
    spec.period = Seconds(30);
    ale::ReportSpec r;
    r.name = "all";
    r.count_only = true;
    spec.reports.push_back(r);
    auto proc_result = ale::EventCycleProcessor::Make(spec, 0);
    bench::CheckOk(proc_result.status(), "make");
    auto proc = std::move(proc_result).ValueUnsafe();
    ale::EventCycleProcessor* raw = proc.get();
    bench::CheckOk(engine.Subscribe("cleaned",
                                    [raw](const Tuple& t) {
                                      (void)raw->OnReading(
                                          t.value(1).string_value(),
                                          t.ts());
                                    }),
                   "subscribe");
    state.ResumeTiming();
    bench::Feed(&engine, workload);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          workload.events.size());
}
BENCHMARK(BM_AlePipelineWithDedup);

}  // namespace
}  // namespace eslev

ESLEV_BENCH_MAIN()
