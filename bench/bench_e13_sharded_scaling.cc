// E13 — sharded parallel engine scaling (DESIGN.md §8).
//
// Measures end-to-end tuples/second of the Example-1 dedup pipeline on a
// window-dense workload under (a) the single-mutex ConcurrentEngine
// baseline and (b) ShardedEngine at 1/2/4/8 shards. Both are fed the
// identical timestamp-ordered trace from one producer: with racing
// producers the engines' forward-clamping rewrites timestamps in
// scheduler-dependent ways, so the two configurations would process
// different effective histories and the comparison would be meaningless.
// Partitioning wins twice: shards run in parallel, and each shard's
// NOT-EXISTS window scan covers only its partition's slice of the
// 1-second window (the scan is O(window) per tuple, so the speedup
// holds even on a single core).
//
// A separate equivalence "benchmark" verifies — outside of timing — that
// the sharded match set is byte-identical to a single Engine's output on
// the same trace.

#include <algorithm>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/concurrent_engine.h"
#include "core/sharded_engine.h"

namespace eslev {
namespace {

constexpr const char* kSetup = R"sql(
  CREATE STREAM readings(reader_id, tag_id, read_time);
  CREATE STREAM cleaned_readings(reader_id, tag_id, read_time);
  INSERT INTO cleaned_readings
  SELECT * FROM readings AS r1
  WHERE NOT EXISTS
    (SELECT * FROM TABLE( readings OVER
        (RANGE 1 seconds PRECEDING CURRENT)) AS r2
     WHERE r2.reader_id = r1.reader_id
       AND r2.tag_id = r1.tag_id);
)sql";

// Dense arrivals: ~400 tuples fall inside the 1-second dedup window, so
// the per-tuple anti-join scan dominates and partitioning pays off.
rfid::Workload DenseDedupWorkload() {
  rfid::DuplicateWorkloadOptions options;
  options.num_distinct = 1500;
  options.duplicates_per_read = 5;
  options.inter_arrival = Milliseconds(15);
  options.duplicate_spread = Milliseconds(800);
  options.num_readers = 4;
  options.num_tags = 600;
  return rfid::MakeDuplicateWorkload(options);
}

// One producer, timestamp order: every configuration sees the same
// effective history (no forward-clamping kicks in), so throughput
// differences are scan + scheduling cost, not workload drift.
template <typename EngineT>
void FeedTrace(EngineT* engine, const rfid::Workload& workload) {
  for (const auto& e : workload.events) {
    bench::CheckOk(engine->PushTuple(e.stream, e.tuple), "push");
  }
}

void BM_E1DedupConcurrentEngineBaseline(benchmark::State& state) {
  auto workload = DenseDedupWorkload();
  size_t cleaned = 0;
  for (auto _ : state) {
    state.PauseTiming();
    ConcurrentEngine engine;
    bench::CheckOk(engine.ExecuteScript(kSetup), "setup");
    cleaned = 0;
    bench::CheckOk(
        engine.Subscribe("cleaned_readings", [&](const Tuple&) { ++cleaned; }),
        "subscribe");
    state.ResumeTiming();
    FeedTrace(&engine, workload);
  }
  if (cleaned == 0 || cleaned > workload.events.size()) {
    state.SkipWithError("implausible dedup output");
    return;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          workload.events.size());
  state.counters["cleaned"] = static_cast<double>(cleaned);
}
BENCHMARK(BM_E1DedupConcurrentEngineBaseline)->UseRealTime();

void BM_E1DedupSharded(benchmark::State& state) {
  auto workload = DenseDedupWorkload();
  const size_t num_shards = static_cast<size_t>(state.range(0));
  size_t cleaned = 0;
  for (auto _ : state) {
    state.PauseTiming();
    ShardedEngineOptions options;
    options.num_shards = num_shards;
    ShardedEngine engine(options);
    bench::CheckOk(engine.ExecuteScript(kSetup), "setup");
    cleaned = 0;
    bench::CheckOk(
        engine.Subscribe("cleaned_readings", [&](const Tuple&) { ++cleaned; }),
        "subscribe");
    state.ResumeTiming();
    FeedTrace(&engine, workload);
    bench::CheckOk(engine.Flush(), "flush");
    engine.DrainOutputs();
  }
  if (cleaned == 0 || cleaned > workload.events.size()) {
    state.SkipWithError("implausible dedup output");
    return;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          workload.events.size());
  state.counters["shards"] = static_cast<double>(num_shards);
  state.counters["cleaned"] = static_cast<double>(cleaned);
}
BENCHMARK(BM_E1DedupSharded)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// Correctness gate, not a timing: single-threaded, timestamp-ordered
// feeding must give a match set byte-identical to one Engine's.
void BM_E1ShardedEquivalenceCheck(benchmark::State& state) {
  auto workload = DenseDedupWorkload();

  std::vector<std::string> reference;
  {
    Engine engine;
    bench::CheckOk(engine.ExecuteScript(kSetup), "setup");
    bench::CheckOk(engine.Subscribe("cleaned_readings",
                                    [&](const Tuple& t) {
                                      reference.push_back(t.ToString());
                                    }),
                   "subscribe");
    bench::Feed(&engine, workload);
  }
  std::sort(reference.begin(), reference.end());

  bool identical = true;
  for (auto _ : state) {
    std::vector<std::string> sharded;
    ShardedEngineOptions options;
    options.num_shards = 4;
    ShardedEngine engine(options);
    bench::CheckOk(engine.ExecuteScript(kSetup), "setup");
    bench::CheckOk(engine.Subscribe("cleaned_readings",
                                    [&](const Tuple& t) {
                                      sharded.push_back(t.ToString());
                                    }),
                   "subscribe");
    for (const auto& e : workload.events) {
      bench::CheckOk(engine.PushTuple(e.stream, e.tuple), "push");
    }
    bench::CheckOk(engine.Flush(), "flush");
    engine.DrainOutputs();
    std::sort(sharded.begin(), sharded.end());
    identical = identical && (sharded == reference);
  }
  if (!identical) {
    state.SkipWithError("sharded match set differs from single-engine output");
    return;
  }
  state.counters["matches"] = static_cast<double>(reference.size());
  state.counters["identical"] = 1;
}
BENCHMARK(BM_E1ShardedEquivalenceCheck)->Iterations(1);

// Watermark fan-out cost: the E5 EXCEPTION_SEQ workflow pinned to one
// shard, heartbeats broadcast to all shards (most of them idle) — the
// overhead of keeping active expiration correct across the fleet.
void BM_WatermarkHeartbeatFanout(benchmark::State& state) {
  rfid::LabWorkflowWorkloadOptions options;
  options.num_rounds = 300;
  options.timeout_rate = 0.2;
  options.wrong_order_rate = 0;
  options.wrong_start_rate = 0;
  auto workload = rfid::MakeLabWorkflowWorkload(options);
  const size_t num_shards = static_cast<size_t>(state.range(0));

  size_t alerts = 0;
  for (auto _ : state) {
    state.PauseTiming();
    ShardedEngineOptions opts;
    opts.num_shards = num_shards;
    ShardedEngine engine(opts);
    bench::CheckOk(engine.ExecuteScript(R"sql(
      CREATE STREAM A1(staffid, tagid, tagtime);
      CREATE STREAM A2(staffid, tagid, tagtime);
      CREATE STREAM A3(staffid, tagid, tagtime);
    )sql"),
                   "ddl");
    auto q = engine.RegisterQuery(R"sql(
      SELECT A1.tagid, A2.tagid, A3.tagid
      FROM A1, A2, A3
      WHERE EXCEPTION_SEQ(A1, A2, A3)
      OVER [1 HOURS FOLLOWING A1]
    )sql");
    bench::CheckOk(q.status(), "query");
    // The workflow is one global sequence — cross-partition, so it
    // falls back to a single shard; heartbeats still fan everywhere.
    for (const char* s : {"A1", "A2", "A3"}) {
      bench::CheckOk(engine.SetSingleShard(s), "route");
    }
    alerts = 0;
    bench::CheckOk(
        engine.Subscribe(q->output_stream, [&](const Tuple&) { ++alerts; }),
        "subscribe");
    state.ResumeTiming();
    Timestamp last = 0;
    for (const auto& e : workload.events) {
      // One periodic clock tick between arrivals, fanned to all shards.
      bench::CheckOk(engine.AdvanceTime(last + (e.tuple.ts() - last) / 2),
                     "heartbeat");
      bench::CheckOk(engine.PushTuple(e.stream, e.tuple), "push");
      last = e.tuple.ts();
    }
    bench::CheckOk(engine.AdvanceTime(last + Hours(2)), "final");
    bench::CheckOk(engine.Flush(), "flush");
    engine.DrainOutputs();
  }
  if (alerts != workload.expected_exceptions) {
    state.SkipWithError("timeout alerts do not match ground truth");
    return;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          workload.events.size() * 2);
  state.counters["shards"] = static_cast<double>(num_shards);
  state.counters["alerts"] = static_cast<double>(alerts);
}
BENCHMARK(BM_WatermarkHeartbeatFanout)->Arg(1)->Arg(4)->Arg(8)->UseRealTime();

}  // namespace
}  // namespace eslev

ESLEV_BENCH_MAIN()
