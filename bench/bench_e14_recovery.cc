// E14 — durability subsystem costs (DESIGN.md §10).
//
// The paper's engine has no persistence story; E14 measures what our
// checkpoint/WAL layer adds so deployments can budget it: (a) checkpoint
// and restore latency plus on-disk size as retained state grows (an
// Example-2 movement log accumulates rows linearly with the trace —
// the dominant snapshot cost in practice, since windowed operator
// history is bounded), (b) the per-tuple overhead of front-of-engine
// WAL appends at different group-commit thresholds, and (c) WAL replay
// throughput during crash recovery, per pairing mode — replay re-runs
// the windowed SEQ operator over the suffix, so the mode's history
// retention policy is the variable that matters (the window bounds
// UNRESTRICTED exactly as in E6).
//
// Checkpoint sizes land in the bench metrics blob
// (BENCH_bench_e14_recovery_metrics.json) alongside the timing JSON.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "recovery/checkpoint.h"
#include "rfid/workloads.h"

namespace eslev {
namespace {

std::string BenchDir(const std::string& name) {
  const std::string dir =
      std::filesystem::temp_directory_path().string() + "/eslev_e14_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

uint64_t CheckpointFileBytes(const std::string& dir) {
  std::error_code ec;
  const auto size =
      std::filesystem::file_size(dir + "/" + kCheckpointFileName, ec);
  return ec ? 0 : static_cast<uint64_t>(size);
}

// Example 1 + Example 2 combined: dedup into a persistent movement
// log. The log table is the state that grows with the trace, so it is
// what dominates checkpoint size and restore time.
constexpr const char* kMovementDdl = R"sql(
  CREATE STREAM readings(reader_id, tag_id, read_time);
  CREATE STREAM cleaned_readings(reader_id, tag_id, read_time);
  CREATE TABLE movement_log(reader_id, tag_id, read_time);
  INSERT INTO cleaned_readings
  SELECT * FROM readings AS r1
  WHERE NOT EXISTS
    (SELECT * FROM TABLE( readings OVER
        (RANGE 1 seconds PRECEDING CURRENT)) AS r2
     WHERE r2.reader_id = r1.reader_id
       AND r2.tag_id = r1.tag_id);
  INSERT INTO movement_log SELECT * FROM cleaned_readings;
)sql";

rfid::Workload DedupWorkload(size_t num_distinct) {
  rfid::DuplicateWorkloadOptions options;
  options.num_distinct = num_distinct;
  return rfid::MakeDuplicateWorkload(options);
}

constexpr const char* kQualityDdl = R"sql(
  CREATE STREAM C1(readerid, tagid, tagtime);
  CREATE STREAM C2(readerid, tagid, tagtime);
  CREATE STREAM C3(readerid, tagid, tagtime);
  CREATE STREAM C4(readerid, tagid, tagtime);
)sql";

const char* ModeClause(int64_t mode) {
  switch (mode) {
    case 1: return " MODE RECENT";
    case 2: return " MODE CHRONICLE";
    case 3: return " MODE CONSECUTIVE";
    default: return "";
  }
}

const char* ModeName(int64_t mode) {
  switch (mode) {
    case 1: return "recent";
    case 2: return "chronicle";
    case 3: return "consecutive";
    default: return "unrestricted";
  }
}

// Windowed exactly like E6: the window keeps UNRESTRICTED bounded and
// makes the four modes comparable.
std::string SeqQuery(int64_t mode) {
  return std::string(
             "SELECT C4.tagid, C1.tagtime, C4.tagtime FROM C1, C2, C3, C4 "
             "WHERE SEQ(C1, C2, C3, C4) OVER [30 SECONDS PRECEDING C4]") +
         ModeClause(mode) +
         " AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid AND C1.tagid=C4.tagid";
}

rfid::Workload QualityWorkload(size_t num_products) {
  rfid::QualityCheckWorkloadOptions options;
  options.num_products = num_products;
  options.num_stages = 4;
  return rfid::MakeQualityCheckWorkload(options);
}

// (a) Checkpoint latency/size vs retained state (movement-log rows).
void BM_E14CheckpointLatency(benchmark::State& state) {
  const size_t num_distinct = static_cast<size_t>(state.range(0));
  auto workload = DedupWorkload(num_distinct);
  Engine engine;
  bench::CheckOk(engine.ExecuteScript(kMovementDdl), "ddl");
  size_t cleaned = 0;
  bench::CheckOk(engine.Subscribe("cleaned_readings",
                                  [&](const Tuple&) { ++cleaned; }),
                 "subscribe");
  bench::Feed(&engine, workload);
  const std::string dir = BenchDir("ckpt_" + std::to_string(num_distinct));

  uint64_t bytes = 0;
  for (auto _ : state) {
    bench::CheckOk(engine.Checkpoint(dir), "checkpoint");
    bytes = CheckpointFileBytes(dir);
  }
  if (cleaned == 0 || bytes == 0) {
    state.SkipWithError("checkpointed a broken pipeline");
    return;
  }
  state.counters["ckpt_bytes"] = static_cast<double>(bytes);
  state.counters["log_rows"] = static_cast<double>(cleaned);
  bench::Metrics()
      .GetGauge("e14.checkpoint_bytes.rows_" + std::to_string(num_distinct))
      ->Set(static_cast<int64_t>(bytes));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_E14CheckpointLatency)->Arg(500)->Arg(2000)->Arg(8000)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Restore is the other half of the recovery-time budget.
void BM_E14RestoreLatency(benchmark::State& state) {
  const size_t num_distinct = static_cast<size_t>(state.range(0));
  auto workload = DedupWorkload(num_distinct);
  const std::string dir = BenchDir("restore_" + std::to_string(num_distinct));
  {
    Engine engine;
    bench::CheckOk(engine.ExecuteScript(kMovementDdl), "ddl");
    bench::Feed(&engine, workload);
    bench::CheckOk(engine.Checkpoint(dir), "checkpoint");
  }
  for (auto _ : state) {
    state.PauseTiming();
    Engine engine;
    bench::CheckOk(engine.ExecuteScript(kMovementDdl), "ddl");
    state.ResumeTiming();
    bench::CheckOk(engine.Restore(dir), "restore");
  }
  state.counters["ckpt_bytes"] =
      static_cast<double>(CheckpointFileBytes(dir));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_E14RestoreLatency)->Arg(500)->Arg(2000)->Arg(8000)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// (b) WAL append overhead on the hot path: the same trace fed with the
// log disabled (baseline), group-committed, and flushed per append
// (threshold 0 — every tuple durable before the engine sees it).
void BM_E14WalAppendOverhead(benchmark::State& state) {
  const int64_t threshold = state.range(0);  // -1: WAL disabled
  auto workload = DedupWorkload(2000);
  const std::string dir = BenchDir("wal_append");
  size_t cleaned = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::filesystem::remove(dir + "/" + kWalFileName);
    Engine engine;
    bench::CheckOk(engine.ExecuteScript(kMovementDdl), "ddl");
    cleaned = 0;
    bench::CheckOk(engine.Subscribe("cleaned_readings",
                                    [&](const Tuple&) { ++cleaned; }),
                   "subscribe");
    if (threshold >= 0) {
      WalOptions options;
      options.group_commit_bytes = static_cast<size_t>(threshold);
      bench::CheckOk(engine.EnableWal(dir + "/" + kWalFileName, options),
                     "wal");
    }
    state.ResumeTiming();
    bench::Feed(&engine, workload);
  }
  if (cleaned == 0 || cleaned > workload.events.size()) {
    state.SkipWithError("implausible dedup output under WAL");
    return;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          workload.events.size());
  state.counters["group_commit_bytes"] = static_cast<double>(threshold);
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_E14WalAppendOverhead)
    ->Arg(-1)->Arg(0)->Arg(4096)->Arg(1 << 16)->UseRealTime();

// (c) Crash-recovery replay throughput per pairing mode: checkpoint
// early, crash late, measure RecoverFrom re-running the WAL suffix.
void BM_E14WalReplayThroughput(benchmark::State& state) {
  const int64_t mode = state.range(0);
  auto workload = QualityWorkload(2000);
  const size_t ckpt_at = workload.events.size() / 10;
  const std::string dir = BenchDir(std::string("replay_") + ModeName(mode));
  {
    Engine engine;
    bench::CheckOk(engine.ExecuteScript(kQualityDdl), "ddl");
    bench::CheckOk(engine.RegisterQuery(SeqQuery(mode)).status(), "query");
    WalOptions options;
    options.group_commit_bytes = 1 << 16;
    bench::CheckOk(engine.EnableWal(dir + "/" + kWalFileName, options), "wal");
    for (size_t i = 0; i < workload.events.size(); ++i) {
      if (i == ckpt_at) bench::CheckOk(engine.Checkpoint(dir), "checkpoint");
      bench::CheckOk(
          engine.PushTuple(workload.events[i].stream, workload.events[i].tuple),
          "push");
    }
  }  // crash: the WAL holds the 90% suffix

  uint64_t replayed = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Engine engine;
    bench::CheckOk(engine.ExecuteScript(kQualityDdl), "ddl");
    bench::CheckOk(engine.RegisterQuery(SeqQuery(mode)).status(), "query");
    state.ResumeTiming();
    bench::CheckOk(engine.RecoverFrom(dir), "recover");
    state.PauseTiming();
    const MetricsSnapshot metrics = engine.Metrics();
    replayed = metrics.counters.at("recovery.wal_records_replayed");
    state.ResumeTiming();
  }
  if (replayed == 0) {
    state.SkipWithError("no WAL records replayed");
    return;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(replayed));
  state.counters["replayed"] = static_cast<double>(replayed);
  state.counters["mode"] = static_cast<double>(mode);
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_E14WalReplayThroughput)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace eslev

ESLEV_BENCH_MAIN()
