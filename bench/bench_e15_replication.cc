// E15 — shard replication costs (DESIGN.md §12).
//
// The paper's engine is a single process; our replication layer adds
// hot standbys fed by WAL segment shipping so a dead worker can be
// replaced at a watermark-aligned cut. E15 measures what that costs and
// what it buys: (a) the steady-state price of a replication round
// (flush + ship + standby apply) as a function of how many events
// arrive between rounds — the shipping cadence is the operator's knob
// for trading ship lag against overhead — and (b) promotion latency as
// a function of how far the standby lags at the kill, since the
// catch-up replay under the routing lock is the dominant term in
// failover time.
//
// Ship-lag byte counts and promotion latencies land in the bench
// metrics blob (BENCH_bench_e15_replication_metrics.json) alongside the
// timing JSON.

#include <cstdint>
#include <filesystem>
#include <string>

#include "bench/bench_util.h"
#include "replication/replicated_engine.h"

namespace eslev {
namespace {

constexpr const char* kDdl = R"sql(
  CREATE STREAM C1(readerid, tagid, tagtime);
  CREATE STREAM C2(readerid, tagid, tagtime);
  CREATE STREAM C3(readerid, tagid, tagtime);
)sql";
constexpr const char* kQuery =
    "SELECT C3.tagid, C1.tagtime, C3.tagtime FROM C1, C2, C3 "
    "WHERE SEQ(C1, C2, C3) MODE CHRONICLE "
    "AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid";
constexpr size_t kNumTags = 64;

std::string BenchDir(const std::string& name) {
  const std::string dir =
      std::filesystem::temp_directory_path().string() + "/eslev_e15_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::unique_ptr<ReplicatedShardedEngine> OpenEngine(const std::string& dir) {
  ReplicatedShardedEngineOptions options;
  options.num_shards = 2;
  options.dir = dir;
  options.wal.group_commit_bytes = 0;  // every append durable: ship lag
                                       // then measures real accumulation
  options.wal.segment_bytes = 1 << 18;  // rotate often enough to ship segments
  auto engine = ReplicatedShardedEngine::Open(options);
  bench::CheckOk(engine.status(), "open");
  bench::CheckOk((*engine)->ExecuteScript(kDdl), "ddl");
  bench::CheckOk((*engine)->RegisterQuery(kQuery).status(), "query");
  return std::move(*engine);
}

// Round-robin SEQ traffic: C1/C2/C3 per tag, timestamps advancing 10ms
// per event. `next` persists across calls so time never goes backwards.
void PushEvents(ReplicatedShardedEngine* engine, size_t count,
                uint64_t* next) {
  static const char* streams[] = {"C1", "C2", "C3"};
  for (size_t i = 0; i < count; ++i, ++*next) {
    const Timestamp ts = Seconds(1) + static_cast<Timestamp>(*next) *
                                          Milliseconds(10);
    const std::string tag = "tag" + std::to_string(*next % kNumTags);
    bench::CheckOk(engine->Push(streams[*next % 3],
                                {Value::String("r"), Value::String(tag),
                                 Value::Time(ts)},
                                ts),
                   "push");
  }
}

// (a) Steady-state replication round cost vs events shipped per round.
// The timed region is one Replicate(): WAL flush, segment + live-tail
// ship, and the standbys' incremental apply of the new suffix.
void BM_E15ReplicationRound(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  const std::string dir =
      BenchDir("round_" + std::to_string(batch));
  auto engine = OpenEngine(dir);
  uint64_t next = 0;
  PushEvents(engine.get(), 256, &next);
  bench::CheckOk(engine->Flush(), "flush");
  bench::CheckOk(engine->Checkpoint(), "checkpoint");  // provision standbys

  uint64_t lag_before = 0;
  uint64_t rounds = 0;
  for (auto _ : state) {
    state.PauseTiming();
    PushEvents(engine.get(), batch, &next);
    bench::CheckOk(engine->Flush(), "flush");
    auto metrics = engine->Metrics();
    bench::CheckOk(metrics.status(), "metrics");
    lag_before += static_cast<uint64_t>(
        metrics->gauges.at("replication.ship_lag_bytes"));
    ++rounds;
    state.ResumeTiming();
    bench::CheckOk(engine->Replicate(), "replicate");
  }
  auto metrics = engine->Metrics();
  bench::CheckOk(metrics.status(), "metrics");
  if (metrics->gauges.at("replication.standby0.healthy") != 1 ||
      metrics->gauges.at("replication.standby0.apply_lag_lsn") != 0) {
    state.SkipWithError("standby lagging after Replicate()");
    return;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
  state.counters["ship_lag_bytes_pre_round"] =
      rounds == 0 ? 0.0 : static_cast<double>(lag_before) /
                              static_cast<double>(rounds);
  bench::Metrics()
      .GetGauge("e15.ship_lag_bytes_pre_round.batch_" + std::to_string(batch))
      ->Set(rounds == 0 ? 0
                        : static_cast<int64_t>(lag_before / rounds));
  engine.reset();
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_E15ReplicationRound)
    ->Arg(64)->Arg(256)->Arg(1024)->UseRealTime();

// (b) Promotion latency vs standby lag at the kill. The standby last
// caught up at the checkpoint; everything pushed after it is the
// catch-up replay the promotion performs under the routing lock.
void BM_E15PromotionLatency(benchmark::State& state) {
  const size_t lag_events = static_cast<size_t>(state.range(0));
  const std::string dir_base =
      BenchDir("promote_" + std::to_string(lag_events));
  uint64_t catchup = 0;
  uint64_t promotion_us = 0;
  uint64_t iter = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const std::string dir = dir_base + "/" + std::to_string(iter++);
    std::filesystem::create_directories(dir);
    auto engine = OpenEngine(dir);
    uint64_t next = 0;
    PushEvents(engine.get(), 256, &next);
    bench::CheckOk(engine->Flush(), "flush");
    bench::CheckOk(engine->Checkpoint(), "checkpoint");
    PushEvents(engine.get(), lag_events, &next);
    bench::CheckOk(engine->Flush(), "flush");
    bench::CheckOk(engine->KillShard(0), "kill");
    state.ResumeTiming();
    auto healed = engine->HealFailures();
    state.PauseTiming();
    bench::CheckOk(healed.status(), "heal");
    if (*healed != 1) {
      state.SkipWithError("promotion did not happen");
      return;
    }
    catchup += engine->promotion_catchup_records();
    promotion_us += engine->last_promotion_duration_us();
    engine.reset();
    std::filesystem::remove_all(dir);
    state.ResumeTiming();
  }
  state.counters["catchup_records"] =
      benchmark::Counter(static_cast<double>(catchup),
                         benchmark::Counter::kAvgIterations);
  state.counters["promotion_us"] =
      benchmark::Counter(static_cast<double>(promotion_us),
                         benchmark::Counter::kAvgIterations);
  if (state.iterations() > 0) {
    bench::Metrics()
        .GetGauge("e15.promotion_us.lag_" + std::to_string(lag_events))
        ->Set(static_cast<int64_t>(promotion_us /
                                   static_cast<uint64_t>(state.iterations())));
  }
  std::filesystem::remove_all(dir_base);
}
BENCHMARK(BM_E15PromotionLatency)
    ->Arg(0)->Arg(1024)->Arg(8192)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace eslev

ESLEV_BENCH_MAIN()
