// E16 — vectorized batch execution: throughput of the registered
// pipelines from E11 as a function of the engine batch size, single
// engine and sharded. batch_size=1 is the tuple-at-a-time baseline;
// larger sizes amortize the per-tuple virtual dispatch (and, sharded,
// the MPSC queue crossings) without changing output bytes. The CI
// bench gate (tools/bench_gate.py) tracks a subset of these series
// against bench/baseline.json.

#include "bench/bench_util.h"
#include "core/sharded_engine.h"

namespace eslev {
namespace {

EngineOptions BatchOptions(int64_t batch_size) {
  EngineOptions options;
  options.batch_size = static_cast<size_t>(batch_size);
  // The bench sweeps the knob explicitly; do not let the environment
  // silently override every series to the same value.
  options.honor_batch_env = false;
  return options;
}

// Example 1 dedup (filter + windowed NOT EXISTS) — the batch-native
// fast path: columnar predicate eval plus bulk window insert/expire.
void BM_DedupBatchSize(benchmark::State& state) {
  rfid::DuplicateWorkloadOptions options;
  options.num_distinct = 5000;
  options.duplicates_per_read = 3;
  auto workload = rfid::MakeDuplicateWorkload(options);
  for (auto _ : state) {
    state.PauseTiming();
    Engine engine(BatchOptions(state.range(0)));
    bench::CheckOk(engine.ExecuteScript(R"sql(
      CREATE STREAM readings(reader_id, tag_id, read_time);
      CREATE STREAM cleaned_readings(reader_id, tag_id, read_time);
      INSERT INTO cleaned_readings
      SELECT * FROM readings AS r1
      WHERE NOT EXISTS
        (SELECT * FROM TABLE( readings OVER
            (RANGE 1 seconds PRECEDING CURRENT)) AS r2
         WHERE r2.reader_id = r1.reader_id AND r2.tag_id = r1.tag_id);
    )sql"),
                   "setup");
    state.ResumeTiming();
    bench::Feed(&engine, workload);
    bench::CheckOk(engine.FlushBatches(), "flush");
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          workload.events.size());
}
BENCHMARK(BM_DedupBatchSize)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

// Example 7 chronicle SEQ — batched history append/scan; the join-side
// state machine still walks tuple runs, so gains here bound what pure
// dispatch amortization buys a stateful operator.
void BM_SeqChronicleBatchSize(benchmark::State& state) {
  rfid::PackingWorkloadOptions options;
  options.num_cases = 2000;
  auto workload = rfid::MakePackingWorkload(options);
  for (auto _ : state) {
    state.PauseTiming();
    Engine engine(BatchOptions(state.range(0)));
    bench::CheckOk(engine.ExecuteScript(R"sql(
      CREATE STREAM R1(readerid, tagid, tagtime);
      CREATE STREAM R2(readerid, tagid, tagtime);
    )sql"),
                   "ddl");
    auto q = engine.RegisterQuery(R"sql(
      SELECT FIRST(R1*).tagtime, COUNT(R1*), R2.tagid, R2.tagtime
      FROM R1, R2
      WHERE SEQ(R1*, R2) MODE CHRONICLE
        AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS
        AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS
    )sql");
    bench::CheckOk(q.status(), "query");
    state.ResumeTiming();
    bench::Feed(&engine, workload);
    bench::CheckOk(engine.FlushBatches(), "flush");
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          workload.events.size());
}
BENCHMARK(BM_SeqChronicleBatchSize)->Arg(1)->Arg(64)->Arg(1024);

// Sharded Example 1 — route-level batching: the front end buffers
// per-shard sub-batches so each MPSC enqueue carries batch_size tuples
// instead of one. Fixed 4 shards, sweeping the batch knob.
void BM_ShardedDedupBatchSize(benchmark::State& state) {
  rfid::DuplicateWorkloadOptions options;
  options.num_distinct = 5000;
  options.duplicates_per_read = 3;
  auto workload = rfid::MakeDuplicateWorkload(options);
  for (auto _ : state) {
    state.PauseTiming();
    ShardedEngineOptions sharded_options;
    sharded_options.num_shards = 4;
    sharded_options.engine = BatchOptions(state.range(0));
    ShardedEngine engine(sharded_options);
    bench::CheckOk(engine.ExecuteScript(R"sql(
      CREATE STREAM readings(reader_id, tag_id, read_time);
      CREATE STREAM cleaned_readings(reader_id, tag_id, read_time);
      INSERT INTO cleaned_readings
      SELECT * FROM readings AS r1
      WHERE NOT EXISTS
        (SELECT * FROM TABLE( readings OVER
            (RANGE 1 seconds PRECEDING CURRENT)) AS r2
         WHERE r2.reader_id = r1.reader_id AND r2.tag_id = r1.tag_id);
    )sql"),
                   "setup");
    state.ResumeTiming();
    for (const auto& e : workload.events) {
      bench::CheckOk(engine.PushTuple(e.stream, e.tuple), "push");
    }
    bench::CheckOk(engine.Flush(), "flush");
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          workload.events.size());
}
BENCHMARK(BM_ShardedDedupBatchSize)->Arg(1)->Arg(64)->Arg(1024)
    ->MeasureProcessCPUTime()->UseRealTime();

// Caller-formed batches: one PushBatch crossing per batch regardless of
// the engine knob — the upper bound on dispatch amortization.
void BM_ExplicitPushBatch(benchmark::State& state) {
  rfid::DuplicateWorkloadOptions options;
  options.num_distinct = 5000;
  options.duplicates_per_read = 3;
  auto workload = rfid::MakeDuplicateWorkload(options);
  const size_t chunk = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Engine engine;  // batch_size=1: crossings come only from PushBatch
    bench::CheckOk(engine.ExecuteScript(R"sql(
      CREATE STREAM readings(reader_id, tag_id, read_time);
      CREATE STREAM cleaned_readings(reader_id, tag_id, read_time);
      INSERT INTO cleaned_readings
      SELECT * FROM readings AS r1
      WHERE NOT EXISTS
        (SELECT * FROM TABLE( readings OVER
            (RANGE 1 seconds PRECEDING CURRENT)) AS r2
         WHERE r2.reader_id = r1.reader_id AND r2.tag_id = r1.tag_id);
    )sql"),
                   "setup");
    TupleBatch batch;
    batch.Reserve(chunk);
    state.ResumeTiming();
    for (const auto& e : workload.events) {
      batch.Add(e.tuple);
      if (batch.size() >= chunk) {
        bench::CheckOk(engine.PushBatch(e.stream, batch), "push-batch");
        batch.Clear();
      }
    }
    if (!batch.empty()) {
      bench::CheckOk(engine.PushBatch("readings", batch), "push-batch");
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          workload.events.size());
}
BENCHMARK(BM_ExplicitPushBatch)->Arg(64)->Arg(1024);

}  // namespace
}  // namespace eslev

ESLEV_BENCH_MAIN()
