// E17 — ingest subsystem cost (DESIGN.md §15): the reorder + cleaning
// stages ahead of the CEP core. Three series over the E1 dedup
// pipeline: the no-ingest baseline, ingest enabled on a perfectly clean
// trace (pure stage overhead), and ingest under bounded disorder with
// duplicates and ghost reads — the workload the subsystem exists for,
// swept by disorder magnitude and by ghost rate. Throughput counts
// ARRIVED events, noise included, so the noisy series pays for the
// extra tuples it absorbs. The CI bench gate (tools/bench_gate.py)
// tracks the overhead and worst-disorder series in bench/baseline.json.

#include "bench/bench_util.h"
#include "rfid/workloads.h"

namespace eslev {
namespace {

constexpr char kDedupScript[] = R"sql(
  CREATE STREAM readings(reader_id, tag_id, read_time);
  CREATE STREAM cleaned_readings(reader_id, tag_id, read_time);
  INSERT INTO cleaned_readings
  SELECT * FROM readings AS r1
  WHERE NOT EXISTS
    (SELECT * FROM TABLE( readings OVER
        (RANGE 1 seconds PRECEDING CURRENT)) AS r2
     WHERE r2.reader_id = r1.reader_id AND r2.tag_id = r1.tag_id);
)sql";

// Inter-arrival (100 ms) sits well under the worst max_shift (400 ms),
// so disorder genuinely permutes neighbours instead of being absorbed
// by the gaps.
rfid::Workload CleanTrace() {
  rfid::DuplicateWorkloadOptions options;
  options.num_distinct = 5000;
  options.duplicates_per_read = 0;  // noise injection owns duplication
  options.inter_arrival = Milliseconds(100);
  auto w = rfid::MakeDuplicateWorkload(options);
  rfid::NormalizeUniqueTimestamps(&w);
  return w;
}

rfid::Workload NoisyTrace(Duration max_shift, double spurious_rate) {
  rfid::Workload w = CleanTrace();
  rfid::NoiseOptions noise;
  noise.max_shift = max_shift;
  noise.duplicate_rate = 1.0;  // every real read reaches min_read_count
  noise.duplicate_copies = 1;
  noise.spurious_rate = spurious_rate;
  noise.seed = 17;
  rfid::InjectNoise(&w, noise);
  return w;
}

EngineOptions WithIngest(size_t min_read_count) {
  EngineOptions options;
  options.honor_ingest_env = false;  // the benches sweep explicitly
  options.ingest.lateness_bound = Milliseconds(400);
  options.ingest.smoothing_window = Milliseconds(1);
  options.ingest.min_read_count = min_read_count;
  return options;
}

Timestamp LastTs(const rfid::Workload& w) {
  Timestamp last = kMinTimestamp;
  for (const auto& e : w.events) last = std::max(last, e.tuple.ts());
  return last;
}

// Feed + drain: the final AdvanceTime flushes the reorder buffer and
// cleaning hold-back, so every series pays its full pipeline cost.
void FeedAndDrain(Engine* engine, const rfid::Workload& w) {
  bench::Feed(engine, w);
  bench::CheckOk(engine->AdvanceTime(LastTs(w) + Minutes(10)), "drain");
}

// No-ingest baseline: the dedup pipeline alone, clean in-order trace.
void BM_IngestOffBaseline(benchmark::State& state) {
  const auto workload = CleanTrace();
  for (auto _ : state) {
    state.PauseTiming();
    Engine engine;
    bench::CheckOk(engine.ExecuteScript(kDedupScript), "setup");
    state.ResumeTiming();
    FeedAndDrain(&engine, workload);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          workload.events.size());
}
BENCHMARK(BM_IngestOffBaseline);

// Cleaning overhead at zero noise: same clean trace, ingest stages
// enabled but with nothing to fix (min_read_count=1 keeps every read).
// The gap to BM_IngestOffBaseline is the price of running the stages.
void BM_IngestZeroNoiseOverhead(benchmark::State& state) {
  const auto workload = CleanTrace();
  for (auto _ : state) {
    state.PauseTiming();
    Engine engine(WithIngest(1));
    bench::CheckOk(engine.ExecuteScript(kDedupScript), "setup");
    state.ResumeTiming();
    FeedAndDrain(&engine, workload);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          workload.events.size());
}
BENCHMARK(BM_IngestZeroNoiseOverhead);

// Throughput vs disorder magnitude (arg: max arrival shift, ms) at a
// fixed noise mix (every read duplicated once, 25% ghosts).
void BM_IngestDisorder(benchmark::State& state) {
  const auto workload = NoisyTrace(Milliseconds(state.range(0)), 0.25);
  uint64_t late = 0, dups = 0, ghosts = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Engine engine(WithIngest(2));
    bench::CheckOk(engine.ExecuteScript(kDedupScript), "setup");
    state.ResumeTiming();
    FeedAndDrain(&engine, workload);
    late = engine.ingest_pipeline()->reorder()->late_dropped();
    dups = engine.ingest_pipeline()->cleaning()->dups_suppressed();
    ghosts = engine.ingest_pipeline()->cleaning()->spurious_filtered();
  }
  if (late != 0) {
    std::fprintf(stderr, "bench invariant violated: %llu late drops\n",
                 static_cast<unsigned long long>(late));
    std::abort();  // the 400 ms bound covers every sweep point
  }
  const std::string prefix =
      "e17.shift" + std::to_string(state.range(0)) + ".";
  bench::Metrics().GetGauge(prefix + "dups_suppressed")
      ->Set(static_cast<int64_t>(dups));
  bench::Metrics().GetGauge(prefix + "spurious_filtered")
      ->Set(static_cast<int64_t>(ghosts));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          workload.events.size());
}
BENCHMARK(BM_IngestDisorder)->Arg(50)->Arg(200)->Arg(400);

// Throughput vs ghost-read rate (arg: spurious percent) at the worst
// disorder point — filtering work scales with injected garbage.
void BM_IngestNoiseRate(benchmark::State& state) {
  const auto workload =
      NoisyTrace(Milliseconds(400),
                 static_cast<double>(state.range(0)) / 100.0);
  for (auto _ : state) {
    state.PauseTiming();
    Engine engine(WithIngest(2));
    bench::CheckOk(engine.ExecuteScript(kDedupScript), "setup");
    state.ResumeTiming();
    FeedAndDrain(&engine, workload);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          workload.events.size());
}
BENCHMARK(BM_IngestNoiseRate)->Arg(0)->Arg(25)->Arg(50);

}  // namespace
}  // namespace eslev

ESLEV_BENCH_MAIN()
