// E18 — multi-tenant serving scalability (DESIGN.md §17): N tenants
// register M formatting variants of one canonical SEQ query through
// QueryServer; with plan sharing every registration attaches to a
// single compiled pipeline, without it each registration compiles its
// own. Two series sweep the duplicate count: throughput with sharing
// should stay near-flat while the unshared run degrades linearly.
// Gauges:
//   e18.dup<M>.<leg>.{ips,pipelines}   informational per-config record
//   servegate.dupscale.*               consumed by tools/bench_gate.py:
//     shared_lo_ips / shared_hi_ips    sub-linear growth in duplicates
//     shared_hi_ips vs unshared_hi_ips shared-vs-unshared speedup
//     *_hi_pipelines                   sharing must collapse pipelines
// The throughput series are additionally gated via bench/baseline.json.

#include "bench/bench_util.h"

#include <chrono>
#include <string>
#include <vector>

#include "serve/serve_host.h"
#include "serve/server.h"

namespace eslev {
namespace {

constexpr char kDdl[] = R"sql(
  CREATE STREAM R1(readerid, tagid, tagtime);
  CREATE STREAM R2(readerid, tagid, tagtime);
)sql";

constexpr int kTenants = 4;
constexpr int kEventsPerIter = 2048;
constexpr int kTags = 32;
// One R1/R2 pair in kMatchEveryPairs shares a tag and produces a match;
// the rest only probe the SEQ state. Keeps delivered emissions (and the
// O(duplicates) per-match outbox fan-out, paid by both legs) a small
// fraction of pushes, so the series measure pipeline execution cost.
constexpr int kMatchEveryPairs = 16;
constexpr int kGateLoDuplicates = 8;
constexpr int kGateHiDuplicates = 32;

// Formatting variants of one canonical query: every registration below
// collapses to the same plan-cache key, so the shared run compiles one
// pipeline regardless of how many tenants register it.
std::string DuplicateVariant(int i) {
  const std::string pad(static_cast<size_t>(i % 4) + 1, ' ');
  return "SELECT R1.tagid," + pad +
         "R2.tagtime FROM R1, R2 WHERE SEQ(R1, R2) OVER [1" + pad +
         "SECONDS PRECEDING R2] AND R1.tagid = R2.tagid";
}

/// Push one batch of alternating R1/R2 readings, advance the poll loop
/// and drain every tenant outbox. Returns emissions delivered.
size_t PumpOnce(QueryServer* server, std::vector<Session>* sessions,
                const std::vector<std::string>& tags, Timestamp* now) {
  for (int k = 0; k < kEventsPerIter; ++k) {
    const int pair = k / 2;
    const bool is_r2 = (k % 2 != 0);
    const std::string& tag = (is_r2 && pair % kMatchEveryPairs != 0)
                                 ? tags[(pair + kTags / 2) % kTags]
                                 : tags[pair % kTags];
    const Status pushed = server->Push(
        is_r2 ? "R2" : "R1",
        {Value::String("r"), Value::String(tag), Value::Time(*now)}, *now);
    bench::CheckOk(pushed, "push");
    *now += Milliseconds(50);
  }
  bench::CheckOk(server->Poll().status(), "poll");
  size_t delivered = 0;
  for (Session& session : *sessions) {
    auto drained = session.Drain([](const ServedEmission&) {});
    bench::CheckOk(drained.status(), "drain");
    delivered += *drained;
  }
  return delivered;
}

void RunServingBench(benchmark::State& state, bool share) {
  const int duplicates = static_cast<int>(state.range(0));
  Engine engine;
  EngineHost host(&engine);
  QueryServerOptions options;
  options.share_plans = share;
  QueryServer server(&host, options);
  bench::CheckOk(server.ExecuteScript(kDdl), "ddl");

  std::vector<Session> sessions;
  for (int t = 0; t < kTenants; ++t) {
    auto session = server.OpenSession("tenant" + std::to_string(t));
    bench::CheckOk(session.status(), "open session");
    sessions.push_back(*session);
  }
  for (int q = 0; q < duplicates; ++q) {
    auto info = sessions[static_cast<size_t>(q % kTenants)].Register(
        "q" + std::to_string(q), DuplicateVariant(q));
    bench::CheckOk(info.status(), "register");
  }

  std::vector<std::string> tags;
  for (int i = 0; i < kTags; ++i) tags.push_back("tag" + std::to_string(i));

  Timestamp now = Seconds(1);
  size_t emissions = 0;
  double busy_seconds = 0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    emissions += PumpOnce(&server, &sessions, tags, &now);
    busy_seconds += std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kEventsPerIter));
  const auto pipelines = static_cast<int64_t>(server.plan_cache().size());
  state.counters["pipelines"] = static_cast<double>(pipelines);
  state.counters["emissions"] = static_cast<double>(emissions);

  const int64_t ips =
      busy_seconds > 0
          ? static_cast<int64_t>(
                static_cast<double>(state.iterations()) * kEventsPerIter /
                busy_seconds)
          : 0;
  const std::string leg = share ? "shared" : "unshared";
  const std::string prefix =
      "e18.dup" + std::to_string(duplicates) + "." + leg + ".";
  bench::Metrics().GetGauge(prefix + "ips")->Set(ips);
  bench::Metrics().GetGauge(prefix + "pipelines")->Set(pipelines);
  if (share && duplicates == kGateLoDuplicates) {
    bench::Metrics().GetGauge("servegate.dupscale.shared_lo_ips")->Set(ips);
  }
  if (duplicates == kGateHiDuplicates) {
    bench::Metrics()
        .GetGauge("servegate.dupscale." + leg + "_hi_ips")
        ->Set(ips);
    bench::Metrics()
        .GetGauge("servegate.dupscale." + leg + "_hi_pipelines")
        ->Set(pipelines);
  }
}

void BM_ServeSharedDuplicates(benchmark::State& state) {
  RunServingBench(state, /*share=*/true);
}

void BM_ServeUnsharedDuplicates(benchmark::State& state) {
  RunServingBench(state, /*share=*/false);
}

BENCHMARK(BM_ServeSharedDuplicates)
    ->Arg(kGateLoDuplicates)
    ->Arg(kGateHiDuplicates)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ServeUnsharedDuplicates)
    ->Arg(kGateLoDuplicates)
    ->Arg(kGateHiDuplicates)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace eslev

ESLEV_BENCH_MAIN()
