// E1 — Example 1: duplicate elimination throughput.
//
// Paper claim: duplicate filtering "can be easily coded in a DSMS as a
// single-stream transducer" with a 1-second sliding window. We measure
// end-to-end tuples/second of the full SQL pipeline while sweeping the
// duplication factor, and verify the output count against ground truth.

#include "bench/bench_util.h"

namespace eslev {
namespace {

constexpr const char* kSetup = R"sql(
  CREATE STREAM readings(reader_id, tag_id, read_time);
  CREATE STREAM cleaned_readings(reader_id, tag_id, read_time);
  INSERT INTO cleaned_readings
  SELECT * FROM readings AS r1
  WHERE NOT EXISTS
    (SELECT * FROM TABLE( readings OVER
        (RANGE 1 seconds PRECEDING CURRENT)) AS r2
     WHERE r2.reader_id = r1.reader_id
       AND r2.tag_id = r1.tag_id);
)sql";

void BM_DedupSweepDupFactor(benchmark::State& state) {
  rfid::DuplicateWorkloadOptions options;
  options.num_distinct = 2000;
  options.duplicates_per_read = static_cast<size_t>(state.range(0));
  auto workload = rfid::MakeDuplicateWorkload(options);

  size_t cleaned = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Engine engine;
    bench::CheckOk(engine.ExecuteScript(kSetup), "setup");
    cleaned = 0;
    bench::CheckOk(engine.Subscribe("cleaned_readings",
                                    [&](const Tuple&) { ++cleaned; }),
                   "subscribe");
    state.ResumeTiming();
    bench::Feed(&engine, workload);
  }
  if (cleaned != workload.distinct_readings) {
    state.SkipWithError("dedup output does not match ground truth");
    return;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          workload.events.size());
  state.counters["dup_factor"] = static_cast<double>(state.range(0));
  state.counters["kept_fraction"] = static_cast<double>(cleaned) /
                                    static_cast<double>(workload.events.size());
}
BENCHMARK(BM_DedupSweepDupFactor)->Arg(0)->Arg(1)->Arg(3)->Arg(7)->Arg(15);

// Scaling in stream length at a fixed duplication factor.
void BM_DedupSweepStreamLength(benchmark::State& state) {
  rfid::DuplicateWorkloadOptions options;
  options.num_distinct = static_cast<size_t>(state.range(0));
  options.duplicates_per_read = 3;
  auto workload = rfid::MakeDuplicateWorkload(options);

  for (auto _ : state) {
    state.PauseTiming();
    Engine engine;
    bench::CheckOk(engine.ExecuteScript(kSetup), "setup");
    state.ResumeTiming();
    bench::Feed(&engine, workload);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          workload.events.size());
}
BENCHMARK(BM_DedupSweepStreamLength)->Arg(1000)->Arg(4000)->Arg(16000);

}  // namespace
}  // namespace eslev

ESLEV_BENCH_MAIN()
