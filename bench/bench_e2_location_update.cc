// E2 — Example 2: stream-to-DB location tracking.
//
// Paper claim: selective persistence ("a new row is not added to the DB
// unless the object location changes") is naturally expressed as a
// stream-DB spanning INSERT with NOT EXISTS. We sweep the movement
// probability (how often an object changes location) and compare the
// correlated-scan plan against the hash-index probe plan.

#include <random>

#include "bench/bench_util.h"

namespace eslev {
namespace {

constexpr const char* kQuery = R"sql(
  INSERT INTO object_movement
  SELECT tid, loc, tagtime
  FROM tag_locations WHERE NOT EXISTS
    (SELECT tagid FROM object_movement
     WHERE tagid = tid AND location = loc);
)sql";

rfid::Workload MakeLocationWorkload(size_t num_readings, double move_rate,
                                    size_t num_objects, uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_int_distribution<size_t> obj_dist(0, num_objects - 1);
  auto schema = Schema::Make({{"readerid", TypeId::kString},
                              {"tid", TypeId::kString},
                              {"tagtime", TypeId::kTimestamp},
                              {"loc", TypeId::kString}});
  std::vector<size_t> location(num_objects, 0);
  size_t next_loc = 1;
  rfid::Workload w;
  for (size_t i = 0; i < num_readings; ++i) {
    const Timestamp ts = static_cast<Timestamp>(i + 1) * Milliseconds(10);
    const size_t obj = obj_dist(rng);
    if (unit(rng) < move_rate) location[obj] = next_loc++;
    auto t = MakeTuple(schema,
                       {Value::String("r"),
                        Value::String("obj" + std::to_string(obj)),
                        Value::Time(ts),
                        Value::String("loc" + std::to_string(location[obj]))},
                       ts);
    w.events.push_back({"tag_locations", std::move(t).ValueUnsafe()});
  }
  return w;
}

void RunLocationBench(benchmark::State& state, bool with_index) {
  const double move_rate = static_cast<double>(state.range(0)) / 100.0;
  auto workload = MakeLocationWorkload(5000, move_rate, 50, 42);

  size_t rows = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Engine engine;
    bench::CheckOk(engine.ExecuteScript(R"sql(
      STREAM tag_locations(readerid, tid, tagtime, loc);
      TABLE object_movement(tagid, location, start_time);
    )sql"),
                   "ddl");
    if (with_index) {
      bench::CheckOk(engine.FindTable("object_movement")->CreateIndex("tagid"),
                     "index");
    }
    bench::CheckOk(engine.ExecuteScript(kQuery), "query");
    state.ResumeTiming();
    bench::Feed(&engine, workload);
    state.PauseTiming();
    rows = engine.FindTable("object_movement")->num_rows();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          workload.events.size());
  state.counters["move_rate_pct"] = static_cast<double>(state.range(0));
  state.counters["rows_persisted"] = static_cast<double>(rows);
}

void BM_LocationUpdateScan(benchmark::State& state) {
  RunLocationBench(state, /*with_index=*/false);
}
BENCHMARK(BM_LocationUpdateScan)->Arg(1)->Arg(10)->Arg(50);

void BM_LocationUpdateIndexed(benchmark::State& state) {
  RunLocationBench(state, /*with_index=*/true);
}
BENCHMARK(BM_LocationUpdateIndexed)->Arg(1)->Arg(10)->Arg(50);

}  // namespace
}  // namespace eslev

ESLEV_BENCH_MAIN()
