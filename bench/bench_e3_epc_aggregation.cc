// E3 — Example 3: EPC-pattern aggregation with UDFs.
//
// Paper claim: ALE-style EPC aggregation (pattern 20.*.[5000-9999]) is
// expressible with built-in LIKE plus the extract_serial UDF. We sweep
// pattern selectivity (width of the serial range) and verify the count
// against generator ground truth.

#include "bench/bench_util.h"

namespace eslev {
namespace {

void BM_EpcAggregation(benchmark::State& state) {
  const int64_t hi = 5000 + state.range(0);  // serial range [5000, hi]
  rfid::EpcWorkloadOptions options;
  options.num_readings = 20000;
  options.pattern = "20.*.[5000-" + std::to_string(hi) + "]";
  auto workload = rfid::MakeEpcWorkload(options);

  const std::string query =
      "SELECT count(tid) FROM readings WHERE tid LIKE '20.%.%' "
      "AND extract_serial(tid) >= 5000 AND extract_serial(tid) <= " +
      std::to_string(hi);

  int64_t last_count = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Engine engine;
    bench::CheckOk(
        engine.ExecuteScript("CREATE STREAM readings(reader_id, tid, read_time);"),
        "ddl");
    auto q = engine.RegisterQuery(query);
    bench::CheckOk(q.status(), "query");
    last_count = 0;
    bench::CheckOk(engine.Subscribe(q->output_stream,
                                    [&](const Tuple& t) {
                                      last_count = t.value(0).int_value();
                                    }),
                   "subscribe");
    state.ResumeTiming();
    bench::Feed(&engine, workload);
  }
  if (last_count != static_cast<int64_t>(workload.expected_matches)) {
    state.SkipWithError("aggregation count does not match ground truth");
    return;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          workload.events.size());
  state.counters["selectivity_pct"] =
      100.0 * static_cast<double>(workload.expected_matches) /
      static_cast<double>(workload.events.size());
}
BENCHMARK(BM_EpcAggregation)->Arg(100)->Arg(1000)->Arg(4999)->Arg(7000);

// Windowed variant: hourly-style count over a sliding window.
void BM_EpcWindowedCount(benchmark::State& state) {
  rfid::EpcWorkloadOptions options;
  options.num_readings = 20000;
  auto workload = rfid::MakeEpcWorkload(options);
  const std::string query =
      "SELECT count(tid) FROM TABLE(readings OVER (RANGE " +
      std::to_string(state.range(0)) +
      " SECONDS PRECEDING CURRENT)) AS r WHERE tid LIKE '20.%.%'";

  for (auto _ : state) {
    state.PauseTiming();
    Engine engine;
    bench::CheckOk(
        engine.ExecuteScript("CREATE STREAM readings(reader_id, tid, read_time);"),
        "ddl");
    auto q = engine.RegisterQuery(query);
    bench::CheckOk(q.status(), "query");
    state.ResumeTiming();
    bench::Feed(&engine, workload);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          workload.events.size());
  state.counters["window_s"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_EpcWindowedCount)->Arg(1)->Arg(10)->Arg(60);

}  // namespace
}  // namespace eslev

ESLEV_BENCH_MAIN()
