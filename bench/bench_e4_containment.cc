// E4 — Figure 1 / Examples 4 & 7: containment detection with star
// sequences.
//
// Paper claim: SEQ(R1*, R2) MODE CHRONICLE detects which products are
// packed into which case, including the interleaved Figure-1(b)
// schedule, with aggressive history consumption. We sweep the case size
// and verify event counts against ground truth; history after the run
// must be (near) empty because CHRONICLE consumes matched groups.

#include "bench/bench_util.h"

namespace eslev {
namespace {

constexpr const char* kDdl = R"sql(
  CREATE STREAM R1(readerid, tagid, tagtime);
  CREATE STREAM R2(readerid, tagid, tagtime);
)sql";

constexpr const char* kQuery = R"sql(
  SELECT FIRST(R1*).tagtime, COUNT(R1*), R2.tagid, R2.tagtime
  FROM R1, R2
  WHERE SEQ(R1*, R2) MODE CHRONICLE
    AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS
    AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS
)sql";

void BM_ContainmentSweepCaseSize(benchmark::State& state) {
  rfid::PackingWorkloadOptions options;
  options.num_cases = 500;
  options.min_case_size = static_cast<size_t>(state.range(0));
  options.max_case_size = static_cast<size_t>(state.range(0));
  auto workload = rfid::MakePackingWorkload(options);

  size_t events = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Engine engine;
    bench::CheckOk(engine.ExecuteScript(kDdl), "ddl");
    auto q = engine.RegisterQuery(kQuery);
    bench::CheckOk(q.status(), "query");
    events = 0;
    bench::CheckOk(
        engine.Subscribe(q->output_stream, [&](const Tuple&) { ++events; }),
        "subscribe");
    state.ResumeTiming();
    bench::Feed(&engine, workload);
  }
  if (events != workload.expected_events) {
    state.SkipWithError("containment events do not match ground truth");
    return;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          workload.events.size());
  state.counters["case_size"] = static_cast<double>(state.range(0));
  state.counters["cases"] = static_cast<double>(events);
}
BENCHMARK(BM_ContainmentSweepCaseSize)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

// The per-product multiple-return variant (footnote 4): output volume
// scales with case size while detection cost stays flat.
void BM_ContainmentPerItemReturn(benchmark::State& state) {
  rfid::PackingWorkloadOptions options;
  options.num_cases = 500;
  options.min_case_size = static_cast<size_t>(state.range(0));
  options.max_case_size = static_cast<size_t>(state.range(0));
  auto workload = rfid::MakePackingWorkload(options);

  size_t rows = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Engine engine;
    bench::CheckOk(engine.ExecuteScript(kDdl), "ddl");
    auto q = engine.RegisterQuery(R"sql(
      SELECT R1.tagid, R1.tagtime, R2.tagid, R2.tagtime
      FROM R1, R2
      WHERE SEQ(R1*, R2) MODE CHRONICLE
        AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS
        AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS
    )sql");
    bench::CheckOk(q.status(), "query");
    rows = 0;
    bench::CheckOk(
        engine.Subscribe(q->output_stream, [&](const Tuple&) { ++rows; }),
        "subscribe");
    state.ResumeTiming();
    bench::Feed(&engine, workload);
  }
  // One output row per packed product.
  const size_t products = workload.events.size() - options.num_cases;
  if (rows != products) {
    state.SkipWithError("per-item rows do not match product count");
    return;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          workload.events.size());
  state.counters["rows_out"] = static_cast<double>(rows);
}
BENCHMARK(BM_ContainmentPerItemReturn)->Arg(4)->Arg(16);

}  // namespace
}  // namespace eslev

ESLEV_BENCH_MAIN()
