// E5 — Example 5 / §3.1.3: lab-workflow exception detection.
//
// Paper claim: EXCEPTION_SEQ with a FOLLOWING window detects wrong-order,
// wrong-start and timeout violations, the last requiring *active
// expiration*. We sweep the violation rate, verify alerts against
// injected ground truth, and separately measure the cost of heartbeat
// (active-expiration) traffic.

#include "bench/bench_util.h"

namespace eslev {
namespace {

constexpr const char* kDdl = R"sql(
  CREATE STREAM A1(staffid, tagid, tagtime);
  CREATE STREAM A2(staffid, tagid, tagtime);
  CREATE STREAM A3(staffid, tagid, tagtime);
)sql";

constexpr const char* kQuery = R"sql(
  SELECT A1.tagid, A2.tagid, A3.tagid
  FROM A1, A2, A3
  WHERE EXCEPTION_SEQ(A1, A2, A3)
  OVER [1 HOURS FOLLOWING A1]
)sql";

void BM_ExceptionSeqSweepViolationRate(benchmark::State& state) {
  rfid::LabWorkflowWorkloadOptions options;
  options.num_rounds = 2000;
  const double rate = static_cast<double>(state.range(0)) / 300.0;
  options.wrong_order_rate = rate;
  options.wrong_start_rate = rate;
  options.timeout_rate = rate;
  auto workload = rfid::MakeLabWorkflowWorkload(options);

  size_t alerts = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Engine engine;
    bench::CheckOk(engine.ExecuteScript(kDdl), "ddl");
    auto q = engine.RegisterQuery(kQuery);
    bench::CheckOk(q.status(), "query");
    alerts = 0;
    bench::CheckOk(
        engine.Subscribe(q->output_stream, [&](const Tuple&) { ++alerts; }),
        "subscribe");
    state.ResumeTiming();
    bench::Feed(&engine, workload);
    bench::CheckOk(engine.AdvanceTime(engine.current_time() + Hours(2)),
                   "advance");
  }
  if (alerts < workload.expected_exceptions ||
      alerts > 2 * workload.expected_exceptions + 1) {
    state.SkipWithError("alert count outside ground-truth bounds");
    return;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          workload.events.size());
  state.counters["violation_pct"] = 100.0 * 3.0 * rate;
  state.counters["alerts"] = static_cast<double>(alerts);
}
BENCHMARK(BM_ExceptionSeqSweepViolationRate)
    ->Arg(0)
    ->Arg(15)
    ->Arg(50)
    ->Arg(100);

// Active expiration overhead: heartbeats delivered between rounds.
void BM_ExceptionSeqHeartbeats(benchmark::State& state) {
  rfid::LabWorkflowWorkloadOptions options;
  options.num_rounds = 500;
  options.timeout_rate = 0.2;
  options.wrong_order_rate = 0;
  options.wrong_start_rate = 0;
  auto workload = rfid::MakeLabWorkflowWorkload(options);
  const int heartbeats_per_event = static_cast<int>(state.range(0));

  size_t alerts = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Engine engine;
    bench::CheckOk(engine.ExecuteScript(kDdl), "ddl");
    auto q = engine.RegisterQuery(kQuery);
    bench::CheckOk(q.status(), "query");
    alerts = 0;
    bench::CheckOk(
        engine.Subscribe(q->output_stream, [&](const Tuple&) { ++alerts; }),
        "subscribe");
    state.ResumeTiming();
    Timestamp last = 0;
    for (const auto& e : workload.events) {
      // Emulate a periodic clock between arrivals.
      for (int h = 1; h <= heartbeats_per_event; ++h) {
        const Timestamp tick =
            last + (e.tuple.ts() - last) * h / (heartbeats_per_event + 1);
        bench::CheckOk(engine.AdvanceTime(tick), "heartbeat");
      }
      bench::CheckOk(engine.PushTuple(e.stream, e.tuple), "push");
      last = e.tuple.ts();
    }
    bench::CheckOk(engine.AdvanceTime(last + Hours(2)), "final");
  }
  if (alerts != workload.expected_exceptions) {
    state.SkipWithError("timeout alerts do not match ground truth");
    return;
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) * workload.events.size() *
      (1 + heartbeats_per_event));
  state.counters["heartbeats_per_event"] =
      static_cast<double>(heartbeats_per_event);
}
BENCHMARK(BM_ExceptionSeqHeartbeats)->Arg(0)->Arg(1)->Arg(4)->Arg(16);

}  // namespace
}  // namespace eslev

ESLEV_BENCH_MAIN()
