// E6 — §3.1.1: Tuple Pairing Modes ablation.
//
// Paper claims, per mode:
//   UNRESTRICTED  all combinations; history bounded only by the window;
//   RECENT        one event per trigger; "aggressive purge of tuple
//                 history, as earlier tuples are constantly replaced";
//   CHRONICLE     earliest match, consumed; history drains on match;
//   CONSECUTIVE   adjacency on the joint history; only the current run
//                 is retained.
//
// We run SEQ(C1, C2, C3, C4) over the same quality-check trace under
// each mode and report throughput, events emitted, and the operator's
// peak retained history (the paper's optimization story). Every mode
// runs on both sequence backends (history matcher and compiled NFA,
// DESIGN.md §14); the per-mode peak tuple state of each backend lands
// in the metrics blob under stategate.* so tools/bench_gate.py can fail
// the build if the NFA ever retains more tuple-state than history.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "cep/seq_operator.h"
#include "cep/seq_operator_base.h"
#include "expr/binder.h"
#include "sql/parser.h"

namespace eslev {
namespace {

SchemaPtr ReadingSchema() {
  return Schema::Make({{"readerid", TypeId::kString},
                       {"tagid", TypeId::kString},
                       {"tagtime", TypeId::kTimestamp}});
}

// Build SEQ(C1..C4) with Example 6's per-product tag join conditions on
// the requested backend.
std::unique_ptr<SeqOperatorBase> MakeSeq(PairingMode mode,
                                         SeqBackend backend,
                                         const FunctionRegistry& registry,
                                         BindScope* scope) {
  auto schema = ReadingSchema();
  SeqOperatorConfig config;
  for (int i = 1; i <= 4; ++i) {
    const std::string alias = "C" + std::to_string(i);
    scope->AddEntry({alias, schema, 0, false});
    config.positions.push_back({alias, schema, false});
  }
  config.mode = mode;
  Binder binder(scope, &registry);
  auto bind = [&](const std::string& text) {
    auto parsed = ParseExpression(text);
    bench::CheckOk(parsed.status(), "parse");
    auto bound = binder.Bind(**parsed);
    bench::CheckOk(bound.status(), "bind");
    return std::move(bound).ValueUnsafe();
  };
  config.projection.push_back(bind("C1.tagtime"));
  config.projection.push_back(bind("C4.tagtime"));
  config.out_schema = Schema::Make(
      {{"start", TypeId::kTimestamp}, {"finish", TypeId::kTimestamp}});
  for (size_t pos = 0; pos < 3; ++pos) {
    PairwiseConstraint c;
    c.pos_a = pos;
    c.pos_b = 3;
    c.expr = bind("C" + std::to_string(pos + 1) + ".tagid = C4.tagid");
    config.pairwise.push_back(std::move(c));
  }
  // Window keeps UNRESTRICTED from exploding combinatorially; identical
  // across modes for a fair comparison.
  SeqWindow w;
  w.length = Seconds(30);
  w.direction = WindowDirection::kPreceding;
  w.anchor = 3;
  config.window = w;
  auto op = MakeSeqOperator(std::move(config), backend);
  bench::CheckOk(op.status(), "make seq");
  return std::move(op).ValueUnsafe();
}

size_t PortOf(const std::string& stream) {
  return static_cast<size_t>(stream[1] - '1');
}

const char* ModeName(PairingMode mode) {
  switch (mode) {
    case PairingMode::kUnrestricted: return "unrestricted";
    case PairingMode::kRecent: return "recent";
    case PairingMode::kChronicle: return "chronicle";
    case PairingMode::kConsecutive: return "consecutive";
  }
  return "unknown";
}

// Un-timed replay recording the per-mode retained-history state series
// into the bench metrics blob (BENCH_*_metrics.json) — E6's state-size
// evidence comes from the metrics layer, not from the timed loop. The
// history backend keeps the original e6.<mode>.* keys; the NFA writes
// under e6.nfa.<mode>.*. Both record their peak tuple state under the
// stategate.* convention consumed by tools/bench_gate.py.
void RecordStateSeries(PairingMode mode, SeqBackend backend,
                       const rfid::Workload& workload,
                       const FunctionRegistry& registry) {
  BindScope scope;
  auto op = MakeSeq(mode, backend, registry, &scope);
  const bool nfa = backend == SeqBackend::kNfa;
  const std::string prefix =
      std::string("e6.") + (nfa ? "nfa." : "") + ModeName(mode) + ".";
  Histogram* retained =
      bench::Metrics().GetHistogram(prefix + "retained_history");
  size_t peak = 0;
  size_t i = 0;
  for (const auto& e : workload.events) {
    bench::CheckOk(op->OnTuple(PortOf(e.stream), e.tuple), "tuple");
    peak = std::max(peak, op->history_size());
    if (++i % 64 == 0) retained->Observe(op->history_size());
  }
  bench::Metrics().GetGauge(prefix + "final_history")
      ->Set(static_cast<int64_t>(op->history_size()));
  bench::Metrics().GetGauge(prefix + "tuples_stored")
      ->Set(static_cast<int64_t>(op->tuples_stored()));
  bench::Metrics().GetGauge(prefix + "tuples_purged")
      ->Set(static_cast<int64_t>(op->tuples_purged()));
  bench::Metrics().GetGauge(prefix + "matches")
      ->Set(static_cast<int64_t>(op->matches_emitted()));
  bench::Metrics()
      .GetGauge(std::string("stategate.e6_") + ModeName(mode) + "." +
                SeqBackendToString(backend))
      ->Set(static_cast<int64_t>(peak));
}

void RunMode(benchmark::State& state, PairingMode mode, SeqBackend backend) {
  rfid::QualityCheckWorkloadOptions options;
  options.num_products = 2000;
  options.stage_delay = Seconds(2);
  options.product_interval = Seconds(1);
  auto workload = rfid::MakeQualityCheckWorkload(options);

  FunctionRegistry registry;
  uint64_t events = 0;
  size_t peak_history = 0;
  for (auto _ : state) {
    state.PauseTiming();
    BindScope scope;
    auto op = MakeSeq(mode, backend, registry, &scope);
    peak_history = 0;
    state.ResumeTiming();
    for (const auto& e : workload.events) {
      bench::CheckOk(op->OnTuple(PortOf(e.stream), e.tuple), "tuple");
      peak_history = std::max(peak_history, op->history_size());
    }
    events = op->matches_emitted();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          workload.events.size());
  state.counters["events"] = static_cast<double>(events);
  state.counters["peak_history"] = static_cast<double>(peak_history);
  RecordStateSeries(mode, backend, workload, registry);
}

void BM_ModeUnrestricted(benchmark::State& state) {
  RunMode(state, PairingMode::kUnrestricted, SeqBackend::kHistory);
}
void BM_ModeRecent(benchmark::State& state) {
  RunMode(state, PairingMode::kRecent, SeqBackend::kHistory);
}
void BM_ModeChronicle(benchmark::State& state) {
  RunMode(state, PairingMode::kChronicle, SeqBackend::kHistory);
}
void BM_ModeConsecutive(benchmark::State& state) {
  RunMode(state, PairingMode::kConsecutive, SeqBackend::kHistory);
}
BENCHMARK(BM_ModeUnrestricted);
BENCHMARK(BM_ModeRecent);
BENCHMARK(BM_ModeChronicle);
BENCHMARK(BM_ModeConsecutive);

// Same modes on the compiled-NFA backend; the differential suite proves
// the emitted tuples byte-identical, so the interesting numbers here
// are throughput and retained state relative to the history matcher.
void BM_NfaModeUnrestricted(benchmark::State& state) {
  RunMode(state, PairingMode::kUnrestricted, SeqBackend::kNfa);
}
void BM_NfaModeRecent(benchmark::State& state) {
  RunMode(state, PairingMode::kRecent, SeqBackend::kNfa);
}
void BM_NfaModeChronicle(benchmark::State& state) {
  RunMode(state, PairingMode::kChronicle, SeqBackend::kNfa);
}
void BM_NfaModeConsecutive(benchmark::State& state) {
  RunMode(state, PairingMode::kConsecutive, SeqBackend::kNfa);
}
BENCHMARK(BM_NfaModeUnrestricted);
BENCHMARK(BM_NfaModeRecent);
BENCHMARK(BM_NfaModeChronicle);
BENCHMARK(BM_NfaModeConsecutive);

// The purging claim in isolation: RECENT with NO window must still hold
// constant history, while UNRESTRICTED without a window grows linearly.
void RunUnwindowed(benchmark::State& state, PairingMode mode) {
  rfid::QualityCheckWorkloadOptions options;
  options.num_products = static_cast<size_t>(state.range(0));
  auto workload = rfid::MakeQualityCheckWorkload(options);

  FunctionRegistry registry;
  size_t peak_history = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto schema = ReadingSchema();
    SeqOperatorConfig config;
    BindScope scope;
    for (int i = 1; i <= 4; ++i) {
      const std::string alias = "C" + std::to_string(i);
      scope.AddEntry({alias, schema, 0, false});
      config.positions.push_back({alias, schema, false});
    }
    config.mode = mode;
    Binder binder(&scope, &registry);
    auto parsed = ParseExpression("C1.tagtime");
    bench::CheckOk(parsed.status(), "parse");
    auto bound = binder.Bind(**parsed);
    bench::CheckOk(bound.status(), "bind");
    config.projection.push_back(std::move(bound).ValueUnsafe());
    config.out_schema = Schema::Make({{"start", TypeId::kTimestamp}});
    auto op_result = SeqOperator::Make(std::move(config));
    bench::CheckOk(op_result.status(), "make");
    auto op = std::move(op_result).ValueUnsafe();
    peak_history = 0;
    state.ResumeTiming();
    for (const auto& e : workload.events) {
      bench::CheckOk(op->OnTuple(PortOf(e.stream), e.tuple), "tuple");
      peak_history = std::max(peak_history, op->history_size());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          workload.events.size());
  state.counters["peak_history"] = static_cast<double>(peak_history);
  state.counters["tuples"] = static_cast<double>(workload.events.size());
}

void BM_UnwindowedRecentHistory(benchmark::State& state) {
  RunUnwindowed(state, PairingMode::kRecent);
}
void BM_UnwindowedConsecutiveHistory(benchmark::State& state) {
  RunUnwindowed(state, PairingMode::kConsecutive);
}
BENCHMARK(BM_UnwindowedRecentHistory)->Arg(500)->Arg(2000)->Arg(8000);
BENCHMARK(BM_UnwindowedConsecutiveHistory)->Arg(500)->Arg(2000)->Arg(8000);

}  // namespace
}  // namespace eslev

ESLEV_BENCH_MAIN()
