// E7 — §3.1.1 "Sliding Windows on SEQ": window length vs. retained
// history and match rate.
//
// Paper claim: windows on event operators both bound the tuple history
// the operator keeps (expired tuples can be removed) and reduce
// unwanted combinations. We sweep the window length on
// SEQ(C1,C2,C3,C4) OVER [W PRECEDING C4] and report peak history and
// events; events rise toward the unwindowed count as W grows past the
// pipeline latency, while history grows linearly with W.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "cep/seq_operator.h"
#include "expr/binder.h"
#include "sql/parser.h"

namespace eslev {
namespace {

void BM_SeqWindowSweep(benchmark::State& state) {
  rfid::QualityCheckWorkloadOptions options;
  options.num_products = 2000;
  options.stage_delay = Seconds(2);   // total pipeline latency ~6 s
  options.product_interval = Seconds(1);
  auto workload = rfid::MakeQualityCheckWorkload(options);

  const Duration window = Seconds(state.range(0));
  FunctionRegistry registry;
  auto schema = Schema::Make({{"readerid", TypeId::kString},
                              {"tagid", TypeId::kString},
                              {"tagtime", TypeId::kTimestamp}});

  uint64_t events = 0;
  size_t peak_history = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SeqOperatorConfig config;
    BindScope scope;
    for (int i = 1; i <= 4; ++i) {
      const std::string alias = "C" + std::to_string(i);
      scope.AddEntry({alias, schema, 0, false});
      config.positions.push_back({alias, schema, false});
    }
    Binder binder(&scope, &registry);
    auto bind = [&](const std::string& text) {
      auto parsed = ParseExpression(text);
      bench::CheckOk(parsed.status(), "parse");
      auto bound = binder.Bind(**parsed);
      bench::CheckOk(bound.status(), "bind");
      return std::move(bound).ValueUnsafe();
    };
    for (size_t pos = 0; pos < 3; ++pos) {
      PairwiseConstraint c;
      c.pos_a = pos;
      c.pos_b = 3;
      c.expr = bind("C" + std::to_string(pos + 1) + ".tagid = C4.tagid");
      config.pairwise.push_back(std::move(c));
    }
    config.projection.push_back(bind("C4.tagid"));
    config.out_schema = Schema::Make({{"tag", TypeId::kString}});
    SeqWindow w;
    w.length = window;
    w.direction = WindowDirection::kPreceding;
    w.anchor = 3;
    config.window = w;
    auto op_result = SeqOperator::Make(std::move(config));
    bench::CheckOk(op_result.status(), "make");
    auto op = std::move(op_result).ValueUnsafe();
    peak_history = 0;
    state.ResumeTiming();
    for (const auto& e : workload.events) {
      const size_t port = static_cast<size_t>(e.stream[1] - '1');
      bench::CheckOk(op->OnTuple(port, e.tuple), "tuple");
      peak_history = std::max(peak_history, op->history_size());
    }
    events = op->matches_emitted();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          workload.events.size());
  state.counters["window_s"] = static_cast<double>(state.range(0));
  state.counters["events"] = static_cast<double>(events);
  state.counters["peak_history"] = static_cast<double>(peak_history);
  state.counters["complete_products"] =
      static_cast<double>(workload.expected_events);
}
BENCHMARK(BM_SeqWindowSweep)->Arg(2)->Arg(5)->Arg(10)->Arg(30)->Arg(120);

}  // namespace
}  // namespace eslev

ESLEV_BENCH_MAIN()
