// E8 — Example 8: theft detection with a PRECEDING AND FOLLOWING window
// synchronized across the sub-query boundary.
//
// Paper claim: the before-and-after authorization check needs both the
// FOLLOWING window construct and cross-subquery synchronization. We
// sweep the theft rate, verify the alert count against ground truth,
// and measure the full-SQL pipeline throughput, including the pending
// buffer the FOLLOWING side requires.

#include "bench/bench_util.h"

namespace eslev {
namespace {

constexpr const char* kDdl = R"sql(
  CREATE STREAM tag_readings(tagid, tagtype, tagtime);
)sql";

constexpr const char* kQuery = R"sql(
  SELECT * FROM tag_readings AS item
  WHERE item.tagtype = 'item' AND NOT EXISTS
    (SELECT * FROM tag_readings AS person
       OVER [1 MINUTES PRECEDING AND FOLLOWING item]
     WHERE person.tagtype = 'person')
)sql";

void BM_TheftSweepRate(benchmark::State& state) {
  rfid::DoorWorkloadOptions options;
  options.num_items = 3000;
  options.theft_rate = static_cast<double>(state.range(0)) / 100.0;
  auto workload = rfid::MakeDoorWorkload(options);

  size_t alerts = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Engine engine;
    bench::CheckOk(engine.ExecuteScript(kDdl), "ddl");
    auto q = engine.RegisterQuery(kQuery);
    bench::CheckOk(q.status(), "query");
    alerts = 0;
    bench::CheckOk(
        engine.Subscribe(q->output_stream, [&](const Tuple&) { ++alerts; }),
        "subscribe");
    state.ResumeTiming();
    bench::Feed(&engine, workload);
    bench::CheckOk(engine.AdvanceTime(engine.current_time() + Minutes(2)),
                   "drain");
  }
  if (alerts != workload.expected_events) {
    state.SkipWithError("theft alerts do not match ground truth");
    return;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          workload.events.size());
  state.counters["theft_pct"] = static_cast<double>(state.range(0));
  state.counters["alerts"] = static_cast<double>(alerts);
}
BENCHMARK(BM_TheftSweepRate)->Arg(0)->Arg(5)->Arg(20)->Arg(50);

}  // namespace
}  // namespace eslev

ESLEV_BENCH_MAIN()
