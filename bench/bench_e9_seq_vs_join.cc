// E9 — §2.2: SEQ versus what plain SQL can do (a per-arrival n-way join
// over unbounded history).
//
// Paper claims: (i) join-based detection cannot purge history, so its
// state grows without bound and per-arrival cost grows with it;
// (ii) SEQ with windows / pairing modes holds state constant. Absolute
// numbers are machine-dependent; the *shape* — naive join degrading
// super-linearly in trace length while SEQ stays flat — is the result.

#include <benchmark/benchmark.h>

#include "baseline/naive_join.h"
#include "bench/bench_util.h"
#include "cep/seq_operator.h"
#include "cep/seq_operator_base.h"
#include "expr/binder.h"
#include "sql/parser.h"

namespace eslev {
namespace {

rfid::Workload MakeTrace(size_t num_products) {
  rfid::QualityCheckWorkloadOptions options;
  options.num_products = num_products;
  options.stage_delay = Seconds(2);
  options.product_interval = Seconds(1);
  return rfid::MakeQualityCheckWorkload(options);
}

size_t PortOf(const std::string& stream) {
  return static_cast<size_t>(stream[1] - '1');
}

void BM_NaiveJoin(benchmark::State& state) {
  auto workload = MakeTrace(static_cast<size_t>(state.range(0)));
  uint64_t matches = 0;
  size_t history = 0;
  for (auto _ : state) {
    state.PauseTiming();
    baseline::NaiveJoinOptions options;
    options.num_streams = 4;
    options.key_column = 1;           // tagid equality
    options.window = Seconds(30);     // timing predicate, no purging
    baseline::NaiveJoinSequenceDetector det(options);
    state.ResumeTiming();
    for (const auto& e : workload.events) {
      bench::CheckOk(det.OnTuple(PortOf(e.stream), e.tuple), "tuple");
    }
    matches = det.matches();
    history = det.history_size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          workload.events.size());
  state.counters["matches"] = static_cast<double>(matches);
  state.counters["final_history"] = static_cast<double>(history);
}
BENCHMARK(BM_NaiveJoin)->Arg(500)->Arg(2000)->Arg(8000);

void RunSeq(benchmark::State& state, PairingMode mode) {
  auto workload = MakeTrace(static_cast<size_t>(state.range(0)));
  FunctionRegistry registry;
  auto schema = Schema::Make({{"readerid", TypeId::kString},
                              {"tagid", TypeId::kString},
                              {"tagtime", TypeId::kTimestamp}});
  uint64_t matches = 0;
  size_t peak_history = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SeqOperatorConfig config;
    BindScope scope;
    for (int i = 1; i <= 4; ++i) {
      const std::string alias = "C" + std::to_string(i);
      scope.AddEntry({alias, schema, 0, false});
      config.positions.push_back({alias, schema, false});
    }
    config.mode = mode;
    Binder binder(&scope, &registry);
    auto bind = [&](const std::string& text) {
      auto parsed = ParseExpression(text);
      bench::CheckOk(parsed.status(), "parse");
      auto bound = binder.Bind(**parsed);
      bench::CheckOk(bound.status(), "bind");
      return std::move(bound).ValueUnsafe();
    };
    for (size_t pos = 0; pos < 3; ++pos) {
      PairwiseConstraint c;
      c.pos_a = pos;
      c.pos_b = 3;
      c.expr = bind("C" + std::to_string(pos + 1) + ".tagid = C4.tagid");
      config.pairwise.push_back(std::move(c));
    }
    config.projection.push_back(bind("C4.tagid"));
    config.out_schema = Schema::Make({{"tag", TypeId::kString}});
    SeqWindow w;
    w.length = Seconds(30);
    w.direction = WindowDirection::kPreceding;
    w.anchor = 3;
    config.window = w;
    auto op_result = SeqOperator::Make(std::move(config));
    bench::CheckOk(op_result.status(), "make");
    auto op = std::move(op_result).ValueUnsafe();
    peak_history = 0;
    state.ResumeTiming();
    for (const auto& e : workload.events) {
      bench::CheckOk(op->OnTuple(PortOf(e.stream), e.tuple), "tuple");
      peak_history = std::max(peak_history, op->history_size());
    }
    matches = op->matches_emitted();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          workload.events.size());
  state.counters["matches"] = static_cast<double>(matches);
  state.counters["peak_history"] = static_cast<double>(peak_history);
}

void BM_SeqWindowedUnrestricted(benchmark::State& state) {
  RunSeq(state, PairingMode::kUnrestricted);
}
void BM_SeqChronicle(benchmark::State& state) {
  RunSeq(state, PairingMode::kChronicle);
}
BENCHMARK(BM_SeqWindowedUnrestricted)->Arg(500)->Arg(2000)->Arg(8000);
BENCHMARK(BM_SeqChronicle)->Arg(500)->Arg(2000)->Arg(8000);

// ---------------------------------------------------------------------------
// Star workload, per backend — Example 7's containment query
// SEQ(R1*, R2) MODE CHRONICLE over the packing trace. Star groups are
// where a run-based matcher can over-retain (one run per open prefix
// versus one shared pool of star tuples), so the peak tuple state of
// both backends is published under stategate.e9_star.* and gated by
// tools/bench_gate.py: the NFA must never retain more than history.
// ---------------------------------------------------------------------------

std::unique_ptr<SeqOperatorBase> MakeStarSeq(SeqBackend backend,
                                             const FunctionRegistry& registry,
                                             BindScope* scope) {
  auto schema = Schema::Make({{"readerid", TypeId::kString},
                              {"tagid", TypeId::kString},
                              {"tagtime", TypeId::kTimestamp}});
  SeqOperatorConfig config;
  scope->AddEntry({"R1", schema, 0, true});
  scope->AddEntry({"R2", schema, 0, false});
  config.positions.push_back({"R1", schema, true});
  config.positions.push_back({"R2", schema, false});
  config.mode = PairingMode::kChronicle;
  Binder binder(scope, &registry);
  auto bind = [&](const std::string& text) {
    auto parsed = ParseExpression(text);
    bench::CheckOk(parsed.status(), "parse");
    auto bound = binder.Bind(**parsed);
    bench::CheckOk(bound.status(), "bind");
    return std::move(bound).ValueUnsafe();
  };
  config.star_gates.resize(config.positions.size());
  config.star_gates[0] = bind("R1.tagtime - R1.previous.tagtime <= 1 SECONDS");
  PairwiseConstraint c;
  c.pos_a = 0;
  c.pos_b = 1;
  c.expr = bind("R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS");
  config.pairwise.push_back(std::move(c));
  config.projection.push_back(bind("FIRST(R1*).tagtime"));
  config.projection.push_back(bind("COUNT(R1*)"));
  config.projection.push_back(bind("R2.tagid"));
  config.out_schema = Schema::Make({{"first_time", TypeId::kTimestamp},
                                    {"cnt", TypeId::kInt64},
                                    {"case_tag", TypeId::kString}});
  auto op = MakeSeqOperator(std::move(config), backend);
  bench::CheckOk(op.status(), "make star seq");
  return std::move(op).ValueUnsafe();
}

void RunStarSeq(benchmark::State& state, SeqBackend backend) {
  rfid::PackingWorkloadOptions options;
  options.num_cases = static_cast<size_t>(state.range(0));
  auto workload = rfid::MakePackingWorkload(options);
  FunctionRegistry registry;
  uint64_t matches = 0;
  size_t peak_history = 0;
  for (auto _ : state) {
    state.PauseTiming();
    BindScope scope;
    auto op = MakeStarSeq(backend, registry, &scope);
    peak_history = 0;
    state.ResumeTiming();
    for (const auto& e : workload.events) {
      bench::CheckOk(op->OnTuple(PortOf(e.stream), e.tuple), "tuple");
      peak_history = std::max(peak_history, op->history_size());
    }
    matches = op->matches_emitted();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          workload.events.size());
  state.counters["matches"] = static_cast<double>(matches);
  state.counters["peak_history"] = static_cast<double>(peak_history);
  // Args run in registration order, so the gauge ends up holding the
  // largest trace's peak — the worst case is what the gate compares.
  bench::Metrics()
      .GetGauge(std::string("stategate.e9_star.") +
                SeqBackendToString(backend))
      ->Set(static_cast<int64_t>(peak_history));
}

void BM_SeqStarHistory(benchmark::State& state) {
  RunStarSeq(state, SeqBackend::kHistory);
}
void BM_SeqStarNfa(benchmark::State& state) {
  RunStarSeq(state, SeqBackend::kNfa);
}
BENCHMARK(BM_SeqStarHistory)->Arg(200)->Arg(1000);
BENCHMARK(BM_SeqStarNfa)->Arg(200)->Arg(1000);

}  // namespace
}  // namespace eslev

ESLEV_BENCH_MAIN()
