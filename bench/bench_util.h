// Shared helpers for the experiment benches (see DESIGN.md §4 for the
// experiment index and EXPERIMENTS.md for paper-vs-measured results).

#ifndef ESLEV_BENCH_BENCH_UTIL_H_
#define ESLEV_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>

#include "core/engine.h"
#include "rfid/workloads.h"

namespace eslev {
namespace bench {

/// \brief Abort the benchmark binary on setup errors (benches must not
/// silently measure a broken pipeline).
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "bench setup failed (%s): %s\n", what,
                 status.ToString().c_str());
    std::abort();
  }
}

/// \brief Feed a workload trace into an engine; returns tuples pushed.
inline size_t Feed(Engine* engine, const rfid::Workload& workload) {
  for (const auto& e : workload.events) {
    CheckOk(engine->PushTuple(e.stream, e.tuple), "push");
  }
  return workload.events.size();
}

}  // namespace bench
}  // namespace eslev

#endif  // ESLEV_BENCH_BENCH_UTIL_H_
