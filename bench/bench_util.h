// Shared helpers for the experiment benches (see DESIGN.md §4 for the
// experiment index and EXPERIMENTS.md for paper-vs-measured results).

#ifndef ESLEV_BENCH_BENCH_UTIL_H_
#define ESLEV_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "core/engine.h"
#include "rfid/workloads.h"

namespace eslev {
namespace bench {

/// \brief Abort the benchmark binary on setup errors (benches must not
/// silently measure a broken pipeline).
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "bench setup failed (%s): %s\n", what,
                 status.ToString().c_str());
    std::abort();
  }
}

/// \brief Feed a workload trace into an engine; returns tuples pushed.
inline size_t Feed(Engine* engine, const rfid::Workload& workload) {
  for (const auto& e : workload.events) {
    CheckOk(engine->PushTuple(e.stream, e.tuple), "push");
  }
  return workload.events.size();
}

/// \brief Process-wide metrics blob for bench-collected state series
/// (e.g. E6's per-mode retained-history samples). Benches record into it
/// outside the timed region; BenchMain serializes it next to the
/// google-benchmark JSON (which the tool owns and we cannot extend) as
/// <dir>/BENCH_<binary>_metrics.json — still matching CI's BENCH_*.json
/// archive glob.
inline MetricsRegistry& Metrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

/// \brief Write the bench metrics blob (if any metric was recorded) as
/// JSON to `path`.
inline void WriteMetricsJson(const std::string& path) {
  const MetricsSnapshot snap = Metrics().Snapshot();
  if (snap.counters.empty() && snap.gauges.empty() &&
      snap.histograms.empty()) {
    return;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write metrics json %s\n",
                 path.c_str());
    return;
  }
  const std::string json = snap.ToJson();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

/// \brief Shared benchmark main. When ESLEV_BENCH_JSON_DIR is set (and no
/// explicit --benchmark_out was given), results are additionally written
/// as machine-readable JSON to <dir>/BENCH_<binary>.json so CI can
/// archive the perf trajectory across commits; any bench-recorded
/// metrics (bench::Metrics()) land in <dir>/BENCH_<binary>_metrics.json.
inline int BenchMain(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_arg;
  std::string fmt_arg;
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) has_out = true;
  }
  const char* dir = std::getenv("ESLEV_BENCH_JSON_DIR");
  if (dir != nullptr && !has_out) {
    std::string base = argv[0];
    base = base.substr(base.find_last_of('/') + 1);
    out_arg = std::string("--benchmark_out=") + dir + "/BENCH_" + base + ".json";
    fmt_arg = "--benchmark_out_format=json";
    args.push_back(out_arg.data());
    args.push_back(fmt_arg.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (dir != nullptr) {
    std::string base = argv[0];
    base = base.substr(base.find_last_of('/') + 1);
    WriteMetricsJson(std::string(dir) + "/BENCH_" + base + "_metrics.json");
  }
  return 0;
}

}  // namespace bench
}  // namespace eslev

/// \brief Drop-in replacement for BENCHMARK_MAIN() adding BENCH_*.json
/// emission (see bench::BenchMain).
#define ESLEV_BENCH_MAIN()                          \
  int main(int argc, char** argv) {                 \
    return ::eslev::bench::BenchMain(argc, argv);   \
  }

#endif  // ESLEV_BENCH_BENCH_UTIL_H_
