file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_vs_rceda.dir/bench_e10_vs_rceda.cc.o"
  "CMakeFiles/bench_e10_vs_rceda.dir/bench_e10_vs_rceda.cc.o.d"
  "bench_e10_vs_rceda"
  "bench_e10_vs_rceda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_vs_rceda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
