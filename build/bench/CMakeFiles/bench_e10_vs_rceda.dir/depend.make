# Empty dependencies file for bench_e10_vs_rceda.
# This may be replaced when dependencies are built.
