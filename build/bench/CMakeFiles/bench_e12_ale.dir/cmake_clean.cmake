file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_ale.dir/bench_e12_ale.cc.o"
  "CMakeFiles/bench_e12_ale.dir/bench_e12_ale.cc.o.d"
  "bench_e12_ale"
  "bench_e12_ale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_ale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
