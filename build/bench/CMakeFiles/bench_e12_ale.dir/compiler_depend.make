# Empty compiler generated dependencies file for bench_e12_ale.
# This may be replaced when dependencies are built.
