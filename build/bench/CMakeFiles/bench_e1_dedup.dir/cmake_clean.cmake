file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_dedup.dir/bench_e1_dedup.cc.o"
  "CMakeFiles/bench_e1_dedup.dir/bench_e1_dedup.cc.o.d"
  "bench_e1_dedup"
  "bench_e1_dedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
