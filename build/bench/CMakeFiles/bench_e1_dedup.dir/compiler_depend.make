# Empty compiler generated dependencies file for bench_e1_dedup.
# This may be replaced when dependencies are built.
