file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_location_update.dir/bench_e2_location_update.cc.o"
  "CMakeFiles/bench_e2_location_update.dir/bench_e2_location_update.cc.o.d"
  "bench_e2_location_update"
  "bench_e2_location_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_location_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
