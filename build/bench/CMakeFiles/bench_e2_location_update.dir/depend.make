# Empty dependencies file for bench_e2_location_update.
# This may be replaced when dependencies are built.
