file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_epc_aggregation.dir/bench_e3_epc_aggregation.cc.o"
  "CMakeFiles/bench_e3_epc_aggregation.dir/bench_e3_epc_aggregation.cc.o.d"
  "bench_e3_epc_aggregation"
  "bench_e3_epc_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_epc_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
