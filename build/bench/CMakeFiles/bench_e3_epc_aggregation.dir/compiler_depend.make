# Empty compiler generated dependencies file for bench_e3_epc_aggregation.
# This may be replaced when dependencies are built.
