file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_exception_seq.dir/bench_e5_exception_seq.cc.o"
  "CMakeFiles/bench_e5_exception_seq.dir/bench_e5_exception_seq.cc.o.d"
  "bench_e5_exception_seq"
  "bench_e5_exception_seq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_exception_seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
