# Empty dependencies file for bench_e5_exception_seq.
# This may be replaced when dependencies are built.
