file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_pairing_modes.dir/bench_e6_pairing_modes.cc.o"
  "CMakeFiles/bench_e6_pairing_modes.dir/bench_e6_pairing_modes.cc.o.d"
  "bench_e6_pairing_modes"
  "bench_e6_pairing_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_pairing_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
