# Empty compiler generated dependencies file for bench_e6_pairing_modes.
# This may be replaced when dependencies are built.
