file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_seq_windows.dir/bench_e7_seq_windows.cc.o"
  "CMakeFiles/bench_e7_seq_windows.dir/bench_e7_seq_windows.cc.o.d"
  "bench_e7_seq_windows"
  "bench_e7_seq_windows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_seq_windows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
