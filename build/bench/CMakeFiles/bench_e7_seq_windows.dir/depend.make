# Empty dependencies file for bench_e7_seq_windows.
# This may be replaced when dependencies are built.
