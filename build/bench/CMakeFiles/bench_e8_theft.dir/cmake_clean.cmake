file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_theft.dir/bench_e8_theft.cc.o"
  "CMakeFiles/bench_e8_theft.dir/bench_e8_theft.cc.o.d"
  "bench_e8_theft"
  "bench_e8_theft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_theft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
