# Empty dependencies file for bench_e8_theft.
# This may be replaced when dependencies are built.
