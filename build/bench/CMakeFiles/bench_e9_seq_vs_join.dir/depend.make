# Empty dependencies file for bench_e9_seq_vs_join.
# This may be replaced when dependencies are built.
