file(REMOVE_RECURSE
  "CMakeFiles/example_ale_aggregation.dir/ale_aggregation.cpp.o"
  "CMakeFiles/example_ale_aggregation.dir/ale_aggregation.cpp.o.d"
  "example_ale_aggregation"
  "example_ale_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ale_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
