# Empty dependencies file for example_ale_aggregation.
# This may be replaced when dependencies are built.
