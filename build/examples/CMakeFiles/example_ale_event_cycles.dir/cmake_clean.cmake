file(REMOVE_RECURSE
  "CMakeFiles/example_ale_event_cycles.dir/ale_event_cycles.cpp.o"
  "CMakeFiles/example_ale_event_cycles.dir/ale_event_cycles.cpp.o.d"
  "example_ale_event_cycles"
  "example_ale_event_cycles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ale_event_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
