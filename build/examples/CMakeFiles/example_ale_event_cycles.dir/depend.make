# Empty dependencies file for example_ale_event_cycles.
# This may be replaced when dependencies are built.
