file(REMOVE_RECURSE
  "CMakeFiles/example_lab_workflow.dir/lab_workflow.cpp.o"
  "CMakeFiles/example_lab_workflow.dir/lab_workflow.cpp.o.d"
  "example_lab_workflow"
  "example_lab_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_lab_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
