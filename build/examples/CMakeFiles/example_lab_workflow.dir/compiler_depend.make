# Empty compiler generated dependencies file for example_lab_workflow.
# This may be replaced when dependencies are built.
