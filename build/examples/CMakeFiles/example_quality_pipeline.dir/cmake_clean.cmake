file(REMOVE_RECURSE
  "CMakeFiles/example_quality_pipeline.dir/quality_pipeline.cpp.o"
  "CMakeFiles/example_quality_pipeline.dir/quality_pipeline.cpp.o.d"
  "example_quality_pipeline"
  "example_quality_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_quality_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
