# Empty compiler generated dependencies file for example_quality_pipeline.
# This may be replaced when dependencies are built.
