file(REMOVE_RECURSE
  "CMakeFiles/example_theft_detection.dir/theft_detection.cpp.o"
  "CMakeFiles/example_theft_detection.dir/theft_detection.cpp.o.d"
  "example_theft_detection"
  "example_theft_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_theft_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
