# Empty compiler generated dependencies file for example_theft_detection.
# This may be replaced when dependencies are built.
