file(REMOVE_RECURSE
  "CMakeFiles/example_warehouse_packing.dir/warehouse_packing.cpp.o"
  "CMakeFiles/example_warehouse_packing.dir/warehouse_packing.cpp.o.d"
  "example_warehouse_packing"
  "example_warehouse_packing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_warehouse_packing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
