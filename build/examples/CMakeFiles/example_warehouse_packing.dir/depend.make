# Empty dependencies file for example_warehouse_packing.
# This may be replaced when dependencies are built.
