
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ale/event_cycle.cc" "src/CMakeFiles/eslev.dir/ale/event_cycle.cc.o" "gcc" "src/CMakeFiles/eslev.dir/ale/event_cycle.cc.o.d"
  "/root/repo/src/baseline/naive_join.cc" "src/CMakeFiles/eslev.dir/baseline/naive_join.cc.o" "gcc" "src/CMakeFiles/eslev.dir/baseline/naive_join.cc.o.d"
  "/root/repo/src/baseline/rceda.cc" "src/CMakeFiles/eslev.dir/baseline/rceda.cc.o" "gcc" "src/CMakeFiles/eslev.dir/baseline/rceda.cc.o.d"
  "/root/repo/src/cep/exception_seq_operator.cc" "src/CMakeFiles/eslev.dir/cep/exception_seq_operator.cc.o" "gcc" "src/CMakeFiles/eslev.dir/cep/exception_seq_operator.cc.o.d"
  "/root/repo/src/cep/pairing_mode.cc" "src/CMakeFiles/eslev.dir/cep/pairing_mode.cc.o" "gcc" "src/CMakeFiles/eslev.dir/cep/pairing_mode.cc.o.d"
  "/root/repo/src/cep/seq_operator.cc" "src/CMakeFiles/eslev.dir/cep/seq_operator.cc.o" "gcc" "src/CMakeFiles/eslev.dir/cep/seq_operator.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/eslev.dir/common/status.cc.o" "gcc" "src/CMakeFiles/eslev.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/eslev.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/eslev.dir/common/string_util.cc.o.d"
  "/root/repo/src/common/time.cc" "src/CMakeFiles/eslev.dir/common/time.cc.o" "gcc" "src/CMakeFiles/eslev.dir/common/time.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/CMakeFiles/eslev.dir/core/engine.cc.o" "gcc" "src/CMakeFiles/eslev.dir/core/engine.cc.o.d"
  "/root/repo/src/exec/aggregate.cc" "src/CMakeFiles/eslev.dir/exec/aggregate.cc.o" "gcc" "src/CMakeFiles/eslev.dir/exec/aggregate.cc.o.d"
  "/root/repo/src/exec/windowed_not_exists.cc" "src/CMakeFiles/eslev.dir/exec/windowed_not_exists.cc.o" "gcc" "src/CMakeFiles/eslev.dir/exec/windowed_not_exists.cc.o.d"
  "/root/repo/src/expr/binder.cc" "src/CMakeFiles/eslev.dir/expr/binder.cc.o" "gcc" "src/CMakeFiles/eslev.dir/expr/binder.cc.o.d"
  "/root/repo/src/expr/bound_expr.cc" "src/CMakeFiles/eslev.dir/expr/bound_expr.cc.o" "gcc" "src/CMakeFiles/eslev.dir/expr/bound_expr.cc.o.d"
  "/root/repo/src/expr/function_registry.cc" "src/CMakeFiles/eslev.dir/expr/function_registry.cc.o" "gcc" "src/CMakeFiles/eslev.dir/expr/function_registry.cc.o.d"
  "/root/repo/src/expr/sql_uda.cc" "src/CMakeFiles/eslev.dir/expr/sql_uda.cc.o" "gcc" "src/CMakeFiles/eslev.dir/expr/sql_uda.cc.o.d"
  "/root/repo/src/plan/planner.cc" "src/CMakeFiles/eslev.dir/plan/planner.cc.o" "gcc" "src/CMakeFiles/eslev.dir/plan/planner.cc.o.d"
  "/root/repo/src/plan/snapshot_executor.cc" "src/CMakeFiles/eslev.dir/plan/snapshot_executor.cc.o" "gcc" "src/CMakeFiles/eslev.dir/plan/snapshot_executor.cc.o.d"
  "/root/repo/src/plan/type_inference.cc" "src/CMakeFiles/eslev.dir/plan/type_inference.cc.o" "gcc" "src/CMakeFiles/eslev.dir/plan/type_inference.cc.o.d"
  "/root/repo/src/rfid/epc.cc" "src/CMakeFiles/eslev.dir/rfid/epc.cc.o" "gcc" "src/CMakeFiles/eslev.dir/rfid/epc.cc.o.d"
  "/root/repo/src/rfid/trace_io.cc" "src/CMakeFiles/eslev.dir/rfid/trace_io.cc.o" "gcc" "src/CMakeFiles/eslev.dir/rfid/trace_io.cc.o.d"
  "/root/repo/src/rfid/workloads.cc" "src/CMakeFiles/eslev.dir/rfid/workloads.cc.o" "gcc" "src/CMakeFiles/eslev.dir/rfid/workloads.cc.o.d"
  "/root/repo/src/sql/ast.cc" "src/CMakeFiles/eslev.dir/sql/ast.cc.o" "gcc" "src/CMakeFiles/eslev.dir/sql/ast.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/eslev.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/eslev.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/eslev.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/eslev.dir/sql/parser.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/eslev.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/eslev.dir/storage/table.cc.o.d"
  "/root/repo/src/stream/stream.cc" "src/CMakeFiles/eslev.dir/stream/stream.cc.o" "gcc" "src/CMakeFiles/eslev.dir/stream/stream.cc.o.d"
  "/root/repo/src/types/schema.cc" "src/CMakeFiles/eslev.dir/types/schema.cc.o" "gcc" "src/CMakeFiles/eslev.dir/types/schema.cc.o.d"
  "/root/repo/src/types/tuple.cc" "src/CMakeFiles/eslev.dir/types/tuple.cc.o" "gcc" "src/CMakeFiles/eslev.dir/types/tuple.cc.o.d"
  "/root/repo/src/types/value.cc" "src/CMakeFiles/eslev.dir/types/value.cc.o" "gcc" "src/CMakeFiles/eslev.dir/types/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
