file(REMOVE_RECURSE
  "libeslev.a"
)
