# Empty dependencies file for eslev.
# This may be replaced when dependencies are built.
