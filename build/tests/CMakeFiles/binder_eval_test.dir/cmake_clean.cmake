file(REMOVE_RECURSE
  "CMakeFiles/binder_eval_test.dir/expr/binder_eval_test.cc.o"
  "CMakeFiles/binder_eval_test.dir/expr/binder_eval_test.cc.o.d"
  "binder_eval_test"
  "binder_eval_test.pdb"
  "binder_eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/binder_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
