# Empty compiler generated dependencies file for binder_eval_test.
# This may be replaced when dependencies are built.
