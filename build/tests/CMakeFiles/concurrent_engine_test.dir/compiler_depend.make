# Empty compiler generated dependencies file for concurrent_engine_test.
# This may be replaced when dependencies are built.
