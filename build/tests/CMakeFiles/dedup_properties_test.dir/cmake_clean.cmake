file(REMOVE_RECURSE
  "CMakeFiles/dedup_properties_test.dir/property/dedup_properties_test.cc.o"
  "CMakeFiles/dedup_properties_test.dir/property/dedup_properties_test.cc.o.d"
  "dedup_properties_test"
  "dedup_properties_test.pdb"
  "dedup_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dedup_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
