# Empty dependencies file for dedup_properties_test.
# This may be replaced when dependencies are built.
