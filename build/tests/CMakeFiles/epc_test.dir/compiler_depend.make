# Empty compiler generated dependencies file for epc_test.
# This may be replaced when dependencies are built.
