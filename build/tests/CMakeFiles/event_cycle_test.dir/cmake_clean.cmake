file(REMOVE_RECURSE
  "CMakeFiles/event_cycle_test.dir/ale/event_cycle_test.cc.o"
  "CMakeFiles/event_cycle_test.dir/ale/event_cycle_test.cc.o.d"
  "event_cycle_test"
  "event_cycle_test.pdb"
  "event_cycle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_cycle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
