file(REMOVE_RECURSE
  "CMakeFiles/exception_partition_properties_test.dir/property/exception_partition_properties_test.cc.o"
  "CMakeFiles/exception_partition_properties_test.dir/property/exception_partition_properties_test.cc.o.d"
  "exception_partition_properties_test"
  "exception_partition_properties_test.pdb"
  "exception_partition_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exception_partition_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
