# Empty dependencies file for exception_partition_properties_test.
# This may be replaced when dependencies are built.
