file(REMOVE_RECURSE
  "CMakeFiles/exception_seq_test.dir/cep/exception_seq_test.cc.o"
  "CMakeFiles/exception_seq_test.dir/cep/exception_seq_test.cc.o.d"
  "exception_seq_test"
  "exception_seq_test.pdb"
  "exception_seq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exception_seq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
