# Empty dependencies file for exception_seq_test.
# This may be replaced when dependencies are built.
