file(REMOVE_RECURSE
  "CMakeFiles/exception_star_test.dir/cep/exception_star_test.cc.o"
  "CMakeFiles/exception_star_test.dir/cep/exception_star_test.cc.o.d"
  "exception_star_test"
  "exception_star_test.pdb"
  "exception_star_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exception_star_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
