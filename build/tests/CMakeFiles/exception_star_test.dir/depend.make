# Empty dependencies file for exception_star_test.
# This may be replaced when dependencies are built.
