file(REMOVE_RECURSE
  "CMakeFiles/function_registry_test.dir/expr/function_registry_test.cc.o"
  "CMakeFiles/function_registry_test.dir/expr/function_registry_test.cc.o.d"
  "function_registry_test"
  "function_registry_test.pdb"
  "function_registry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/function_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
