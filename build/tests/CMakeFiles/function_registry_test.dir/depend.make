# Empty dependencies file for function_registry_test.
# This may be replaced when dependencies are built.
