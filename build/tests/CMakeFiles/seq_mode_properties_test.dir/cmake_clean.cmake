file(REMOVE_RECURSE
  "CMakeFiles/seq_mode_properties_test.dir/property/seq_mode_properties_test.cc.o"
  "CMakeFiles/seq_mode_properties_test.dir/property/seq_mode_properties_test.cc.o.d"
  "seq_mode_properties_test"
  "seq_mode_properties_test.pdb"
  "seq_mode_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seq_mode_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
