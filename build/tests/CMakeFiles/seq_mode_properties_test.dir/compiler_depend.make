# Empty compiler generated dependencies file for seq_mode_properties_test.
# This may be replaced when dependencies are built.
