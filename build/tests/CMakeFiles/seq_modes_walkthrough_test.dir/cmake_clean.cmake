file(REMOVE_RECURSE
  "CMakeFiles/seq_modes_walkthrough_test.dir/cep/seq_modes_walkthrough_test.cc.o"
  "CMakeFiles/seq_modes_walkthrough_test.dir/cep/seq_modes_walkthrough_test.cc.o.d"
  "seq_modes_walkthrough_test"
  "seq_modes_walkthrough_test.pdb"
  "seq_modes_walkthrough_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seq_modes_walkthrough_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
