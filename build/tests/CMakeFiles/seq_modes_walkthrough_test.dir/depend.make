# Empty dependencies file for seq_modes_walkthrough_test.
# This may be replaced when dependencies are built.
