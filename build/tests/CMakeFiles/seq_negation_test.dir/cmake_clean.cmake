file(REMOVE_RECURSE
  "CMakeFiles/seq_negation_test.dir/cep/seq_negation_test.cc.o"
  "CMakeFiles/seq_negation_test.dir/cep/seq_negation_test.cc.o.d"
  "seq_negation_test"
  "seq_negation_test.pdb"
  "seq_negation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seq_negation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
