# Empty dependencies file for seq_negation_test.
# This may be replaced when dependencies are built.
