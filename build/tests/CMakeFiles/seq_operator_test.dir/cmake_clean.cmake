file(REMOVE_RECURSE
  "CMakeFiles/seq_operator_test.dir/cep/seq_operator_test.cc.o"
  "CMakeFiles/seq_operator_test.dir/cep/seq_operator_test.cc.o.d"
  "seq_operator_test"
  "seq_operator_test.pdb"
  "seq_operator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seq_operator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
