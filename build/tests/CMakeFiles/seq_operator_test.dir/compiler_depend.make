# Empty compiler generated dependencies file for seq_operator_test.
# This may be replaced when dependencies are built.
