file(REMOVE_RECURSE
  "CMakeFiles/seq_recent_regression_test.dir/cep/seq_recent_regression_test.cc.o"
  "CMakeFiles/seq_recent_regression_test.dir/cep/seq_recent_regression_test.cc.o.d"
  "seq_recent_regression_test"
  "seq_recent_regression_test.pdb"
  "seq_recent_regression_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seq_recent_regression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
