# Empty compiler generated dependencies file for seq_recent_regression_test.
# This may be replaced when dependencies are built.
