file(REMOVE_RECURSE
  "CMakeFiles/sql_uda_test.dir/expr/sql_uda_test.cc.o"
  "CMakeFiles/sql_uda_test.dir/expr/sql_uda_test.cc.o.d"
  "sql_uda_test"
  "sql_uda_test.pdb"
  "sql_uda_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_uda_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
