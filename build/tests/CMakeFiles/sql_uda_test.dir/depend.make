# Empty dependencies file for sql_uda_test.
# This may be replaced when dependencies are built.
