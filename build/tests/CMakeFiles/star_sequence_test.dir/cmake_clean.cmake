file(REMOVE_RECURSE
  "CMakeFiles/star_sequence_test.dir/cep/star_sequence_test.cc.o"
  "CMakeFiles/star_sequence_test.dir/cep/star_sequence_test.cc.o.d"
  "star_sequence_test"
  "star_sequence_test.pdb"
  "star_sequence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/star_sequence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
