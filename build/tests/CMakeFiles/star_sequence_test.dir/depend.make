# Empty dependencies file for star_sequence_test.
# This may be replaced when dependencies are built.
