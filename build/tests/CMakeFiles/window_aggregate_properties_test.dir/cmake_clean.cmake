file(REMOVE_RECURSE
  "CMakeFiles/window_aggregate_properties_test.dir/property/window_aggregate_properties_test.cc.o"
  "CMakeFiles/window_aggregate_properties_test.dir/property/window_aggregate_properties_test.cc.o.d"
  "window_aggregate_properties_test"
  "window_aggregate_properties_test.pdb"
  "window_aggregate_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/window_aggregate_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
