file(REMOVE_RECURSE
  "CMakeFiles/windowed_not_exists_test.dir/exec/windowed_not_exists_test.cc.o"
  "CMakeFiles/windowed_not_exists_test.dir/exec/windowed_not_exists_test.cc.o.d"
  "windowed_not_exists_test"
  "windowed_not_exists_test.pdb"
  "windowed_not_exists_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/windowed_not_exists_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
