# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for windowed_not_exists_test.
