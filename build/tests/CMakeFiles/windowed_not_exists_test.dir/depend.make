# Empty dependencies file for windowed_not_exists_test.
# This may be replaced when dependencies are built.
