add_test([=[SeqRecentRegressionTest.ChainedJoinConditionsBacktrack]=]  /root/repo/build/tests/seq_recent_regression_test [==[--gtest_filter=SeqRecentRegressionTest.ChainedJoinConditionsBacktrack]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[SeqRecentRegressionTest.ChainedJoinConditionsBacktrack]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  seq_recent_regression_test_TESTS SeqRecentRegressionTest.ChainedJoinConditionsBacktrack)
