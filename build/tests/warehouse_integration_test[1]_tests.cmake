add_test([=[WarehouseIntegrationTest.AllSubsystemsConcurrently]=]  /root/repo/build/tests/warehouse_integration_test [==[--gtest_filter=WarehouseIntegrationTest.AllSubsystemsConcurrently]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[WarehouseIntegrationTest.AllSubsystemsConcurrently]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  warehouse_integration_test_TESTS WarehouseIntegrationTest.AllSubsystemsConcurrently)
