-- Recovery/end-to-end pipeline (bench_e14_recovery, bench_e11): dedup
-- into a derived stream, then archive movements into a table.
CREATE STREAM readings(reader_id, tag_id, read_time);
CREATE STREAM cleaned_readings(reader_id, tag_id, read_time);
CREATE TABLE movement_log(reader_id, tag_id, read_time);

INSERT INTO cleaned_readings
SELECT * FROM readings AS r1
WHERE NOT EXISTS
  (SELECT * FROM TABLE( readings OVER
      (RANGE 1 seconds PRECEDING CURRENT)) AS r2
   WHERE r2.reader_id = r1.reader_id
     AND r2.tag_id = r1.tag_id);

INSERT INTO movement_log SELECT * FROM cleaned_readings;
