-- E17 (DESIGN.md §15): the SEQ pairing query run behind the ingest
-- subsystem — reads arrive disordered, duplicated, and with ghosts, and
-- the reorder + cleaning stages restore the clean in-order trace before
-- it reaches this query. With the ingest reorder bound covering the
-- declared disorder (ESLEV_INGEST_LATENESS_US) this lints clean; the
-- disorder-hazard rule warns when it does not. Bench: bench_e17_ingest.
CREATE STREAM R1(readerid, tagid, tagtime);
CREATE STREAM R2(readerid, tagid, tagtime);
CREATE STREAM paired(tagid, shelf_time, gate_time);

INSERT INTO paired
SELECT R1.tagid, R1.tagtime, R2.tagtime
FROM R1, R2
WHERE SEQ(R1, R2) OVER [30 SECONDS PRECEDING R2]
  AND R1.tagid = R2.tagid;
