-- Example 1 (ICDE'07 §2.2): duplicate elimination with a windowed
-- NOT EXISTS self-anti-join. Bench: bench_e1_dedup.
CREATE STREAM readings(reader_id, tag_id, read_time);
CREATE STREAM cleaned_readings(reader_id, tag_id, read_time);

INSERT INTO cleaned_readings
SELECT * FROM readings AS r1
WHERE NOT EXISTS
  (SELECT * FROM TABLE( readings OVER
      (RANGE 1 seconds PRECEDING CURRENT)) AS r2
   WHERE r2.reader_id = r1.reader_id
     AND r2.tag_id = r1.tag_id);
