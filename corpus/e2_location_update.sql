-- Example 2 (ICDE'07 §2.2): object location updates — append to the
-- movement table only when the object actually moved. Bench:
-- bench_e2_location_update.
CREATE STREAM tag_locations(readerid, tid, tagtime, loc);
CREATE TABLE object_movement(tagid, location, start_time);

INSERT INTO object_movement
SELECT tid, loc, tagtime
FROM tag_locations WHERE NOT EXISTS
  (SELECT tagid FROM object_movement
   WHERE tagid = tid AND location = loc);
