-- Example 3 (ICDE'07 §2.3): EPC-pattern aggregation, unwindowed and
-- windowed forms. Bench: bench_e3_epc_aggregation; example:
-- ale_aggregation.
CREATE STREAM readings(reader_id, tid, read_time);

SELECT count(tid) FROM readings WHERE tid LIKE '20.%.%';

SELECT count(tid) FROM readings
WHERE tid LIKE '20.%.%' AND extract_serial(tid) >= 5000;

SELECT count(tid) FROM TABLE(readings OVER
    (RANGE 60 SECONDS PRECEDING CURRENT)) AS r
WHERE tid LIKE '20.%.%';
