-- Example 4/5 (ICDE'07 §3): containment via SEQ with a star buffer in
-- CHRONICLE mode. Benches: bench_e4_containment, bench_e10_vs_rceda;
-- example: warehouse_packing.
CREATE STREAM R1(readerid, tagid, tagtime);
CREATE STREAM R2(readerid, tagid, tagtime);

SELECT FIRST(R1*).tagtime, COUNT(R1*), R2.tagid, R2.tagtime
FROM R1, R2
WHERE SEQ(R1*, R2) MODE CHRONICLE
  AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS
  AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS;

SELECT R1.tagid, R1.tagtime, R2.tagid, R2.tagtime
FROM R1, R2
WHERE SEQ(R1*, R2) MODE CHRONICLE
  AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS
  AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS;
