-- Example 7 (ICDE'07 §3.3): lab-workflow compliance via EXCEPTION_SEQ
-- with a FOLLOWING window. Benches: bench_e5_exception_seq,
-- bench_e11_end_to_end; example: lab_workflow.
CREATE STREAM A1(staffid, tagid, tagtime);
CREATE STREAM A2(staffid, tagid, tagtime);
CREATE STREAM A3(staffid, tagid, tagtime);

SELECT A1.tagid, A2.tagid, A3.tagid
FROM A1, A2, A3
WHERE EXCEPTION_SEQ(A1, A2, A3)
OVER [1 HOURS FOLLOWING A1];
