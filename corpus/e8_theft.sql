-- Example 8 (ICDE'07 §2.2): theft detection — an item leaves with no
-- person nearby. Bench: bench_e8_theft; example: theft_detection.
CREATE STREAM tag_readings(tagid, tagtype, tagtime);

SELECT * FROM tag_readings AS item
WHERE item.tagtype = 'item' AND NOT EXISTS
  (SELECT * FROM tag_readings AS person
     OVER [1 MINUTES PRECEDING AND FOLLOWING item]
   WHERE person.tagtype = 'person');
