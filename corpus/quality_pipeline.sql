-- Example 6 (ICDE'07 §3.2): four-stage quality pipeline — SEQ over
-- C1..C4 with per-product tag joins and a PRECEDING window. Benches:
-- bench_e6_pairing_modes, bench_e7_seq_windows; example:
-- quality_pipeline.
CREATE STREAM C1(readerid, tagid, tagtime);
CREATE STREAM C2(readerid, tagid, tagtime);
CREATE STREAM C3(readerid, tagid, tagtime);
CREATE STREAM C4(readerid, tagid, tagtime);

SELECT C4.tagid, C1.tagtime, C4.tagtime
FROM C1, C2, C3, C4
WHERE SEQ(C1, C2, C3, C4)
OVER [30 MINUTES PRECEDING C4]
  AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid
  AND C1.tagid=C4.tagid;

SELECT C4.tagid, C1.tagtime, C4.tagtime
FROM C1, C2, C3, C4
WHERE SEQ(C1, C2, C3, C4)
OVER [30 MINUTES PRECEDING C4] MODE RECENT
  AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid
  AND C1.tagid=C4.tagid;
