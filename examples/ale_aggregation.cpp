// ALE-style EPC aggregation and ad-hoc snapshots (paper §2.1, Example 3).
//
// Demonstrates:
//  * EPC-pattern aggregation `20.*.[5000-9999]` via LIKE + the
//    extract_serial UDF (the paper's Example 3 query);
//  * a user-registered UDF (`epc_matches`) doing the full ALE pattern
//    match in one call;
//  * ad-hoc snapshot queries over retained stream history — the paper's
//    "current status" inquiries served without a persistent database.

#include <cstdio>

#include "core/engine.h"
#include "rfid/epc.h"
#include "rfid/workloads.h"

int main() {
  eslev::EngineOptions options;
  options.default_retention = eslev::Hours(1);  // enables snapshots
  eslev::Engine engine(options);

  auto status =
      engine.ExecuteScript("CREATE STREAM readings(reader_id, tid, read_time);");
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  // Register a UDF that matches a full ALE pattern.
  eslev::ScalarFunction udf;
  udf.name = "epc_matches";
  udf.min_args = udf.max_args = 2;
  udf.return_type = eslev::TypeId::kBool;
  udf.fn = [](const std::vector<eslev::Value>& args)
      -> eslev::Result<eslev::Value> {
    if (args[0].is_null() || args[1].is_null()) {
      return eslev::Value::Null();
    }
    ESLEV_ASSIGN_OR_RETURN(
        auto pattern,
        eslev::rfid::AlePattern::Parse(args[1].string_value()));
    return eslev::Value::Bool(pattern.Matches(args[0].string_value()));
  };
  status = engine.mutable_registry()->RegisterScalar(udf);
  if (!status.ok()) return 1;

  // Example 3's query (built-in LIKE + extract_serial)...
  auto q1 = engine.RegisterQuery(R"sql(
    SELECT count(tid) FROM readings WHERE tid LIKE '20.%.%'
      AND extract_serial(tid) >= 5000
      AND extract_serial(tid) <= 9999
  )sql");
  // ...and the same aggregation through the ALE-pattern UDF.
  auto q2 = engine.RegisterQuery(R"sql(
    SELECT count(tid) FROM readings
    WHERE epc_matches(tid, '20.*.[5000-9999]') = TRUE
  )sql");
  if (!q1.ok() || !q2.ok()) {
    std::fprintf(stderr, "register failed\n");
    return 1;
  }

  long long count_sql = 0, count_udf = 0;
  (void)engine.Subscribe(q1->output_stream, [&](const eslev::Tuple& t) {
    count_sql = t.value(0).int_value();
  });
  (void)engine.Subscribe(q2->output_stream, [&](const eslev::Tuple& t) {
    count_udf = t.value(0).int_value();
  });

  eslev::rfid::EpcWorkloadOptions wopts;
  wopts.num_readings = 5000;
  auto workload = eslev::rfid::MakeEpcWorkload(wopts);
  for (const auto& e : workload.events) {
    status = engine.PushTuple(e.stream, e.tuple);
    if (!status.ok()) return 1;
  }

  std::printf("EPC pattern 20.*.[5000-9999] over %zu readings:\n",
              wopts.num_readings);
  std::printf("  Example-3 query (LIKE + extract_serial): %lld\n", count_sql);
  std::printf("  ALE-pattern UDF:                          %lld\n", count_udf);
  std::printf("  workload ground truth:                    %zu\n",
              workload.expected_matches);

  // Ad-hoc snapshot: company-20 readings in the last minute of traffic.
  auto snapshot = engine.ExecuteSnapshot(R"sql(
    SELECT count(tid) FROM readings
    WHERE extract_company(tid) = '20'
  )sql");
  if (!snapshot.ok()) {
    std::fprintf(stderr, "%s\n", snapshot.status().ToString().c_str());
    return 1;
  }
  std::printf("  snapshot: total company-20 readings retained: %s\n",
              (*snapshot)[0].value(0).ToString().c_str());

  const bool ok = count_sql == count_udf &&
                  count_sql == static_cast<long long>(
                                   workload.expected_matches);
  std::printf("%s\n", ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
