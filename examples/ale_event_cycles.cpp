// ALE event cycles on top of ESL-EV (paper §1: the ALE standard's
// filtering / aggregation / reporting interface).
//
// Raw readings are deduplicated by the paper's Example-1 transducer, the
// cleaned stream feeds an ALE event-cycle processor, and every 30
// seconds the processor reports which company-20 tags appeared
// (ADDITIONS) and disappeared (DELETIONS) at the dock door.

#include <cstdio>

#include "ale/event_cycle.h"
#include "core/engine.h"
#include "rfid/workloads.h"

int main() {
  eslev::Engine engine;
  auto status = engine.ExecuteScript(R"sql(
    CREATE STREAM readings(reader_id, tid, read_time);
    CREATE STREAM cleaned(reader_id, tid, read_time);
    INSERT INTO cleaned
    SELECT * FROM readings AS r1
    WHERE NOT EXISTS
      (SELECT * FROM TABLE( readings OVER
          (RANGE 1 seconds PRECEDING CURRENT)) AS r2
       WHERE r2.reader_id = r1.reader_id AND r2.tid = r1.tid);
  )sql");
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  eslev::ale::EcSpec spec;
  spec.period = eslev::Seconds(30);
  {
    eslev::ale::ReportSpec arrived;
    arrived.name = "arrived";
    arrived.include_patterns = {"20.*.*"};
    arrived.set = eslev::ale::ReportSet::kAdditions;
    spec.reports.push_back(arrived);

    eslev::ale::ReportSpec departed;
    departed.name = "departed";
    departed.include_patterns = {"20.*.*"};
    departed.set = eslev::ale::ReportSet::kDeletions;
    departed.count_only = true;
    spec.reports.push_back(departed);
  }
  auto proc_result = eslev::ale::EventCycleProcessor::Make(spec, 0);
  if (!proc_result.ok()) {
    std::fprintf(stderr, "%s\n", proc_result.status().ToString().c_str());
    return 1;
  }
  auto proc = std::move(proc_result).ValueUnsafe();
  proc->SetCallback([](const eslev::ale::EcCycleResult& cycle) {
    std::printf("cycle %zu [%s .. %s): %zu reading(s)\n", cycle.cycle_index,
                eslev::FormatTimestamp(cycle.begin).c_str(),
                eslev::FormatTimestamp(cycle.end).c_str(), cycle.readings);
    for (const auto& report : cycle.reports) {
      std::printf("  %-9s %-10s count=%zu", report.name.c_str(),
                  eslev::ale::ReportSetToString(report.set), report.count);
      if (!report.epcs.empty()) {
        std::printf("  [");
        for (size_t i = 0; i < report.epcs.size() && i < 4; ++i) {
          std::printf("%s%s", i ? ", " : "", report.epcs[i].c_str());
        }
        if (report.epcs.size() > 4) std::printf(", ...");
        std::printf("]");
      }
      std::printf("\n");
    }
  });

  eslev::ale::EventCycleProcessor* raw = proc.get();
  status = engine.Subscribe("cleaned", [raw](const eslev::Tuple& t) {
    (void)raw->OnReading(t.value(1).string_value(), t.ts());
  });
  if (!status.ok()) return 1;

  eslev::rfid::EpcWorkloadOptions options;
  options.num_readings = 1200;  // 100 ms apart -> four 30 s cycles
  auto workload = eslev::rfid::MakeEpcWorkload(options);
  for (const auto& e : workload.events) {
    status = engine.PushTuple(e.stream, e.tuple);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }
  status = raw->OnTime(engine.current_time() + eslev::Minutes(1));
  if (!status.ok()) return 1;

  std::printf("\n%zu event cycle(s) completed\n", proc->cycles_completed());
  return proc->cycles_completed() >= 4 ? 0 : 1;
}
