-- Case-count rollup: windowed EPC aggregation over the trailing minute
-- (the Example 3 windowed form, ICDE'07 §2.3). The sliding window
-- bounds the aggregate's buffer; EXPLAIN COST sizes it from the
-- declared input rate and window length.
CREATE STREAM case_reads(reader_id, tid, read_time);

SELECT count(tid) FROM TABLE(case_reads OVER
    (RANGE 60 SECONDS PRECEDING CURRENT)) AS r
WHERE tid LIKE '20.%.%';
