-- Dock-door audit: flag pallets that reach the outbound door without a
-- forklift escort inside the surrounding minute (the Example 8 shape,
-- ICDE'07 §2.2). The PRECEDING AND FOLLOWING window bounds both the
-- read buffer and the pending set, so EXPLAIN COST reports finite
-- state on every operator.
CREATE STREAM dock_reads(tagid, tagtype, tagtime);

SELECT * FROM dock_reads AS pallet
WHERE pallet.tagtype = 'item' AND NOT EXISTS
  (SELECT * FROM dock_reads AS escort
     OVER [1 MINUTES PRECEDING AND FOLLOWING pallet]
   WHERE escort.tagtype = 'person');
