-- EXPLAIN COST quick-start (DESIGN.md §16): a windowed, key-linked
-- SEQ pairing whose retained state is statically bounded. Run
--   eslev_lint --cost examples/explain_cost_quickstart.sql
-- for the one-line summary, or --cost --json for the full report
-- (per-operator bounds, formulas, and the per-shard cost split).
CREATE STREAM shelf(readerid, tagid, tagtime);
CREATE STREAM gate(readerid, tagid, tagtime);
CREATE STREAM shipped(tagid, shelf_time, gate_time);

INSERT INTO shipped
SELECT shelf.tagid, shelf.tagtime, gate.tagtime
FROM shelf, gate
WHERE SEQ(shelf, gate) OVER [30 SECONDS PRECEDING gate]
  AND shelf.tagid = gate.tagid;
