// Clinic-laboratory workflow compliance (the paper's Example 5, §3.1.3).
//
// A staff member must perform operations A, B, C in order within one
// hour. EXCEPTION_SEQ raises an alert on any violation: wrong order,
// wrong starting operation, or timing out — the last detected by
// *active expiration* (a clock tick with no tuple arrivals).

#include <cstdio>

#include "core/engine.h"
#include "rfid/workloads.h"

int main() {
  eslev::Engine engine;
  auto status = engine.ExecuteScript(R"sql(
    CREATE STREAM A1(staffid, tagid, tagtime);
    CREATE STREAM A2(staffid, tagid, tagtime);
    CREATE STREAM A3(staffid, tagid, tagtime);
  )sql");
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  auto query = engine.RegisterQuery(R"sql(
    SELECT A1.tagid, A2.tagid, A3.tagid
    FROM A1, A2, A3
    WHERE EXCEPTION_SEQ(A1, A2, A3)
    OVER [1 HOURS FOLLOWING A1]
  )sql");
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }

  size_t alerts = 0;
  status = engine.Subscribe(query->output_stream, [&](const eslev::Tuple& t) {
    ++alerts;
    auto cell = [&](size_t i) {
      return t.value(i).is_null() ? std::string("-")
                                  : t.value(i).string_value();
    };
    std::printf("  ALERT at %-12s partial: A=%-4s B=%-4s C=%-4s\n",
                eslev::FormatTimestamp(t.ts()).c_str(), cell(0).c_str(),
                cell(1).c_str(), cell(2).c_str());
  });
  if (!status.ok()) return 1;

  eslev::rfid::LabWorkflowWorkloadOptions options;
  options.num_rounds = 12;
  options.wrong_order_rate = 0.15;
  options.wrong_start_rate = 0.1;
  options.timeout_rate = 0.15;
  auto workload = eslev::rfid::MakeLabWorkflowWorkload(options);

  std::printf("workflow alerts:\n");
  for (const auto& e : workload.events) {
    status = engine.PushTuple(e.stream, e.tuple);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }
  // Close the last round: a pure clock tick fires any pending timeout.
  status = engine.AdvanceTime(engine.current_time() + eslev::Hours(2));
  if (!status.ok()) return 1;

  std::printf(
      "\n%zu alert(s) raised for %zu injected violation(s) across %zu "
      "rounds\n",
      alerts, workload.expected_exceptions, options.num_rounds);
  return alerts >= workload.expected_exceptions ? 0 : 1;
}
