// Four-stage quality-check pipeline (the paper's Example 6 and §3.1.1).
//
// Every product passes four RFID-instrumented checking steps C1..C4.
// A SEQ query with a 30-minute window reports products completing all
// steps; the same run is repeated under each Tuple Pairing Mode to show
// how the modes change both the events generated and the tuple history
// the operator must retain.

#include <cstdio>

#include "core/engine.h"
#include "rfid/workloads.h"

namespace {

struct RunResult {
  size_t events = 0;
  bool ok = false;
};

RunResult RunWithMode(const char* mode_clause,
                      const eslev::rfid::Workload& workload) {
  RunResult result;
  eslev::Engine engine;
  auto status = engine.ExecuteScript(R"sql(
    CREATE STREAM C1(readerid, tagid, tagtime);
    CREATE STREAM C2(readerid, tagid, tagtime);
    CREATE STREAM C3(readerid, tagid, tagtime);
    CREATE STREAM C4(readerid, tagid, tagtime);
  )sql");
  if (!status.ok()) return result;

  std::string sql = R"sql(
    SELECT C4.tagid, C1.tagtime, C4.tagtime
    FROM C1, C2, C3, C4
    WHERE SEQ(C1, C2, C3, C4)
    OVER [30 MINUTES PRECEDING C4]
  )sql";
  sql += mode_clause;
  sql += R"sql(
      AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid
      AND C1.tagid=C4.tagid
  )sql";
  auto query = engine.RegisterQuery(sql);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return result;
  }
  status = engine.Subscribe(query->output_stream,
                            [&](const eslev::Tuple&) { ++result.events; });
  if (!status.ok()) return result;
  for (const auto& e : workload.events) {
    if (!engine.PushTuple(e.stream, e.tuple).ok()) return result;
  }
  result.ok = true;
  return result;
}

}  // namespace

int main() {
  eslev::rfid::QualityCheckWorkloadOptions options;
  options.num_products = 200;
  options.drop_rate = 0.1;  // some products lose a stage reading
  auto workload = eslev::rfid::MakeQualityCheckWorkload(options);

  std::printf("quality pipeline: %zu products, %zu complete\n",
              options.num_products, workload.expected_events);
  std::printf("%-14s %10s\n", "mode", "events");

  struct ModeRow {
    const char* name;
    const char* clause;
  };
  const ModeRow modes[] = {
      {"UNRESTRICTED", ""},
      {"RECENT", " MODE RECENT"},
      {"CHRONICLE", " MODE CHRONICLE"},
      {"CONSECUTIVE", " MODE CONSECUTIVE"},
  };
  bool all_ok = true;
  for (const ModeRow& m : modes) {
    RunResult r = RunWithMode(m.clause, workload);
    all_ok = all_ok && r.ok;
    std::printf("%-14s %10zu\n", m.name, r.events);
  }
  // With per-product tag joins, UNRESTRICTED/RECENT/CHRONICLE all find
  // each completed product exactly once here; CONSECUTIVE requires the
  // four readings to be adjacent in the joint history, which interleaved
  // products rarely are — the expected drop-off the paper motivates the
  // modes with.
  return all_ok ? 0 : 1;
}
