// Quickstart: the paper's Example 1 (duplicate elimination) in ~40 lines.
//
//   $ ./example_quickstart
//
// Creates an ESL-EV engine, registers the duplicate-filtering transducer
// from the paper, pushes a handful of raw RFID readings, and prints the
// deduplicated stream.

#include <cstdio>

#include "core/engine.h"

int main() {
  eslev::Engine engine;

  // The paper's STREAM declarations and Example 1 query, verbatim.
  auto status = engine.ExecuteScript(R"sql(
    CREATE STREAM readings(reader_id, tag_id, read_time);
    CREATE STREAM cleaned_readings(reader_id, tag_id, read_time);

    INSERT INTO cleaned_readings
    SELECT * FROM readings AS r1
    WHERE NOT EXISTS
      (SELECT * FROM TABLE( readings OVER
          (RANGE 1 seconds PRECEDING CURRENT)) AS r2
       WHERE r2.reader_id = r1.reader_id
         AND r2.tag_id = r1.tag_id);
  )sql");
  if (!status.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", status.ToString().c_str());
    return 1;
  }

  std::printf("cleaned_readings:\n");
  status = engine.Subscribe("cleaned_readings", [](const eslev::Tuple& t) {
    std::printf("  reader=%-4s tag=%-4s t=%s\n",
                t.value(0).string_value().c_str(),
                t.value(1).string_value().c_str(),
                eslev::FormatTimestamp(t.ts()).c_str());
  });
  if (!status.ok()) return 1;

  using eslev::Milliseconds;
  struct Raw {
    const char* reader;
    const char* tag;
    eslev::Timestamp ts;
  };
  const Raw raw[] = {
      {"rd1", "A", Milliseconds(0)},     // first sighting of A
      {"rd1", "A", Milliseconds(250)},   // duplicate
      {"rd1", "A", Milliseconds(700)},   // chained duplicate
      {"rd2", "A", Milliseconds(800)},   // different reader: kept
      {"rd1", "B", Milliseconds(900)},   // different tag: kept
      {"rd1", "A", Milliseconds(2400)},  // 1.7 s after the last A: kept
  };
  for (const Raw& r : raw) {
    status = engine.Push(
        "readings",
        {eslev::Value::String(r.reader), eslev::Value::String(r.tag),
         eslev::Value::Time(r.ts)},
        r.ts);
    if (!status.ok()) {
      std::fprintf(stderr, "push failed: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  std::printf("pushed %zu raw readings\n", sizeof(raw) / sizeof(raw[0]));
  return 0;
}
