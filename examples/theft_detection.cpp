// Door theft detection (the paper's Example 8, §3.2).
//
// One reader at the door sees both people and items. An item leaving
// with no authorized person within one minute *before or after* raises
// an alert — the window is synchronized across the sub-query boundary
// (PRECEDING AND FOLLOWING the outer tuple), so the decision for an
// item is only final once its following window closes.

#include <cstdio>

#include "core/engine.h"
#include "rfid/workloads.h"

int main() {
  eslev::Engine engine;
  auto status = engine.ExecuteScript(R"sql(
    CREATE STREAM tag_readings(tagid, tagtype, tagtime);
    CREATE STREAM alerts(tagid, tagtype, tagtime);
  )sql");
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  auto query = engine.RegisterQuery(R"sql(
    INSERT INTO alerts
    SELECT * FROM tag_readings AS item
    WHERE item.tagtype = 'item' AND NOT EXISTS
      (SELECT * FROM tag_readings AS person
         OVER [1 MINUTES PRECEDING AND FOLLOWING item]
       WHERE person.tagtype = 'person')
  )sql");
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }

  size_t alerts = 0;
  status = engine.Subscribe("alerts", [&](const eslev::Tuple& t) {
    ++alerts;
    std::printf("  THEFT? %-8s left unaccompanied at %s\n",
                t.value(0).string_value().c_str(),
                eslev::FormatTimestamp(t.value(2).time_value()).c_str());
  });
  if (!status.ok()) return 1;

  eslev::rfid::DoorWorkloadOptions options;
  options.num_items = 20;
  options.theft_rate = 0.2;
  auto workload = eslev::rfid::MakeDoorWorkload(options);

  std::printf("door monitor:\n");
  for (const auto& e : workload.events) {
    status = engine.PushTuple(e.stream, e.tuple);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }
  // Let the final item's following-window expire.
  status = engine.AdvanceTime(engine.current_time() + eslev::Minutes(2));
  if (!status.ok()) return 1;

  std::printf("\n%zu alert(s); workload contained %zu theft(s)\n", alerts,
              workload.expected_events);
  return alerts == workload.expected_events ? 0 : 1;
}
