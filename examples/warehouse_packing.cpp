// Warehouse packing (the paper's Figure 1 and Examples 4 & 7).
//
// Reader r1 scans products sliding toward the packing station; reader r2
// scans the packing case. A star-sequence query with CHRONICLE pairing
// detects which products went into which case:
//
//   SEQ(R1*, R2) MODE CHRONICLE
//     AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS   -- t0
//     AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS -- t1
//
// The example generates the interleaved Figure-1(b) workload (products
// of the next case arrive before the previous case is scanned) and
// prints one containment report per case.

#include <cstdio>

#include "core/engine.h"
#include "rfid/workloads.h"

int main() {
  eslev::Engine engine;
  auto status = engine.ExecuteScript(R"sql(
    CREATE STREAM R1(readerid, tagid, tagtime);
    CREATE STREAM R2(readerid, tagid, tagtime);
  )sql");
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  auto query = engine.RegisterQuery(R"sql(
    SELECT FIRST(R1*).tagtime, COUNT(R1*), R2.tagid, R2.tagtime
    FROM R1, R2
    WHERE SEQ(R1*, R2) MODE CHRONICLE
      AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS
      AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS
  )sql");
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }

  size_t cases_packed = 0;
  size_t items_packed = 0;
  status = engine.Subscribe(query->output_stream, [&](const eslev::Tuple& t) {
    ++cases_packed;
    items_packed += t.value(1).int_value();
    std::printf("  %-7s packed %2lld item(s); first item at %-12s case at %s\n",
                t.value(2).string_value().c_str(),
                static_cast<long long>(t.value(1).int_value()),
                eslev::FormatTimestamp(t.value(0).time_value()).c_str(),
                eslev::FormatTimestamp(t.value(3).time_value()).c_str());
  });
  if (!status.ok()) return 1;

  eslev::rfid::PackingWorkloadOptions options;
  options.num_cases = 8;
  options.min_case_size = 2;
  options.max_case_size = 5;
  auto workload = eslev::rfid::MakePackingWorkload(options);

  std::printf("containment events (Figure 1(b), interleaved cases):\n");
  for (const auto& e : workload.events) {
    status = engine.PushTuple(e.stream, e.tuple);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }

  std::printf("\n%zu cases, %zu items total (expected %zu cases)\n",
              cases_packed, items_packed, workload.expected_events);
  return cases_packed == workload.expected_events ? 0 : 1;
}
