#include "ale/event_cycle.h"

#include <algorithm>
#include <unordered_set>

namespace eslev {
namespace ale {

const char* ReportSetToString(ReportSet set) {
  switch (set) {
    case ReportSet::kCurrent:
      return "CURRENT";
    case ReportSet::kAdditions:
      return "ADDITIONS";
    case ReportSet::kDeletions:
      return "DELETIONS";
  }
  return "?";
}

Result<std::unique_ptr<EventCycleProcessor>> EventCycleProcessor::Make(
    EcSpec spec, Timestamp start) {
  if (spec.period <= 0) {
    return Status::Invalid("event cycle period must be positive");
  }
  if (spec.reports.empty()) {
    return Status::Invalid("event cycle spec has no reports");
  }
  std::unordered_set<std::string> names;
  std::vector<CompiledReport> compiled;
  for (ReportSpec& r : spec.reports) {
    if (r.name.empty()) {
      return Status::Invalid("report name must not be empty");
    }
    if (!names.insert(r.name).second) {
      return Status::Invalid("duplicate report name: " + r.name);
    }
    CompiledReport c;
    for (const std::string& p : r.include_patterns) {
      ESLEV_ASSIGN_OR_RETURN(auto pattern, rfid::AlePattern::Parse(p));
      c.includes.push_back(std::move(pattern));
    }
    for (const std::string& p : r.exclude_patterns) {
      ESLEV_ASSIGN_OR_RETURN(auto pattern, rfid::AlePattern::Parse(p));
      c.excludes.push_back(std::move(pattern));
    }
    c.spec = std::move(r);
    compiled.push_back(std::move(c));
  }
  return std::unique_ptr<EventCycleProcessor>(new EventCycleProcessor(
      std::move(compiled), spec.period, start));
}

EventCycleProcessor::EventCycleProcessor(std::vector<CompiledReport> reports,
                                         Duration period, Timestamp start)
    : reports_(std::move(reports)), period_(period), cycle_begin_(start) {}

Status EventCycleProcessor::OnReading(const std::string& epc, Timestamp ts) {
  if (ts < cycle_begin_) {
    return Status::OutOfRange("reading predates the current event cycle");
  }
  ESLEV_RETURN_NOT_OK(CloseElapsed(ts));
  ++readings_this_cycle_;
  auto parsed = rfid::ParseEpc(epc);
  if (!parsed.ok()) {
    // A tag that is not EPC-formatted matches no pattern, but reports
    // with no patterns at all ("everything at this reader") still see it.
    for (CompiledReport& r : reports_) {
      if (r.includes.empty() && r.excludes.empty()) r.current.insert(epc);
    }
    return Status::OK();
  }
  for (CompiledReport& r : reports_) {
    bool included = r.includes.empty();
    for (const auto& p : r.includes) {
      if (p.Matches(*parsed)) {
        included = true;
        break;
      }
    }
    if (!included) continue;
    bool excluded = false;
    for (const auto& p : r.excludes) {
      if (p.Matches(*parsed)) {
        excluded = true;
        break;
      }
    }
    if (excluded) continue;
    r.current.insert(epc);
  }
  return Status::OK();
}

Status EventCycleProcessor::OnTime(Timestamp now) {
  if (now < cycle_begin_) {
    return Status::OutOfRange("time cannot move before the current cycle");
  }
  return CloseElapsed(now);
}

Status EventCycleProcessor::CloseElapsed(Timestamp now) {
  while (now >= cycle_begin_ + period_) {
    CloseOneCycle();
  }
  return Status::OK();
}

void EventCycleProcessor::CloseOneCycle() {
  EcCycleResult result;
  result.cycle_index = cycle_index_;
  result.begin = cycle_begin_;
  result.end = cycle_begin_ + period_;
  result.readings = readings_this_cycle_;

  for (CompiledReport& r : reports_) {
    EcReport report;
    report.name = r.spec.name;
    report.set = r.spec.set;

    std::vector<std::string> tags;
    switch (r.spec.set) {
      case ReportSet::kCurrent:
        tags.assign(r.current.begin(), r.current.end());
        break;
      case ReportSet::kAdditions:
        std::set_difference(r.current.begin(), r.current.end(),
                            r.previous.begin(), r.previous.end(),
                            std::back_inserter(tags));
        break;
      case ReportSet::kDeletions:
        std::set_difference(r.previous.begin(), r.previous.end(),
                            r.current.begin(), r.current.end(),
                            std::back_inserter(tags));
        break;
    }
    report.count = tags.size();
    if (r.spec.group_by_company) {
      for (const std::string& tag : tags) {
        auto parsed = rfid::ParseEpc(tag);
        if (parsed.ok()) ++report.groups[parsed->company];
      }
    }
    if (!r.spec.count_only) {
      report.epcs = std::move(tags);
    }
    result.reports.push_back(std::move(report));

    r.previous = std::move(r.current);
    r.current.clear();
  }

  cycle_begin_ += period_;
  ++cycle_index_;
  ++cycles_completed_;
  readings_this_cycle_ = 0;
  if (callback_) callback_(result);
}

}  // namespace ale
}  // namespace eslev
