// ALE (Application Level Events) event-cycle processing — the standard
// interface the paper cites as the driving requirement for RFID data
// processing (§1: "a common interface to process raw RFID events,
// including data filtering, windows-based aggregation, and reporting").
//
// This module implements the core of an ALE reading API:
//  * an ECSpec-like EcSpec: a fixed cycle period and a list of report
//    specifications;
//  * per-report include/exclude tag patterns (`20.*.[5000-9999]`);
//  * report sets CURRENT / ADDITIONS / DELETIONS relative to the
//    previous cycle;
//  * count-only or full-EPC-list reports, with optional grouping by
//    company prefix.
//
// The processor consumes timestamped EPC readings (e.g. subscribed to an
// ESL-EV stream) and emits one EcCycleResult per elapsed cycle; time can
// also advance without readings (empty cycles still report).

#ifndef ESLEV_ALE_EVENT_CYCLE_H_
#define ESLEV_ALE_EVENT_CYCLE_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/time.h"
#include "rfid/epc.h"

namespace eslev {
namespace ale {

/// \brief Which tag set a report delivers (ALE §8.3 report sets).
enum class ReportSet { kCurrent = 0, kAdditions, kDeletions };

const char* ReportSetToString(ReportSet set);

/// \brief One report inside an event cycle spec.
struct ReportSpec {
  std::string name;
  /// Tags must match at least one include pattern (empty = match all).
  std::vector<std::string> include_patterns;
  /// ...and none of the exclude patterns.
  std::vector<std::string> exclude_patterns;
  ReportSet set = ReportSet::kCurrent;
  /// Report only the tag count, not the EPC list.
  bool count_only = false;
  /// Group tags by EPC company field, reporting per-group counts.
  bool group_by_company = false;
};

/// \brief An ECSpec: cycle boundaries plus the reports to produce.
struct EcSpec {
  Duration period = 0;  // fixed-duration cycles, back to back
  std::vector<ReportSpec> reports;
};

/// \brief One produced report.
struct EcReport {
  std::string name;
  ReportSet set = ReportSet::kCurrent;
  /// Sorted distinct EPCs (empty when count_only).
  std::vector<std::string> epcs;
  size_t count = 0;
  /// Per-company counts when group_by_company is set.
  std::map<std::string, size_t> groups;
};

/// \brief The output of one completed event cycle.
struct EcCycleResult {
  size_t cycle_index = 0;
  Timestamp begin = 0;
  Timestamp end = 0;
  size_t readings = 0;  // raw readings observed in the cycle
  std::vector<EcReport> reports;
};

using EcCallback = std::function<void(const EcCycleResult&)>;

class EventCycleProcessor {
 public:
  /// \brief Validate the spec (period > 0, parseable patterns, distinct
  /// report names) and build a processor whose first cycle starts at
  /// `start`.
  static Result<std::unique_ptr<EventCycleProcessor>> Make(EcSpec spec,
                                                           Timestamp start);

  void SetCallback(EcCallback callback) { callback_ = std::move(callback); }

  /// \brief Observe one EPC reading. Closes any cycles that ended at or
  /// before `ts` first. Malformed EPCs are counted but match nothing.
  Status OnReading(const std::string& epc, Timestamp ts);

  /// \brief Advance time without a reading; closes elapsed cycles
  /// (empty cycles still produce reports).
  Status OnTime(Timestamp now);

  size_t cycles_completed() const { return cycles_completed_; }
  Timestamp current_cycle_begin() const { return cycle_begin_; }

 private:
  struct CompiledReport {
    ReportSpec spec;
    std::vector<rfid::AlePattern> includes;
    std::vector<rfid::AlePattern> excludes;
    std::set<std::string> current;   // tags seen this cycle
    std::set<std::string> previous;  // tags of the last closed cycle
  };

  EventCycleProcessor(std::vector<CompiledReport> reports, Duration period,
                      Timestamp start);

  // Close cycles whose end is <= now.
  Status CloseElapsed(Timestamp now);
  void CloseOneCycle();

  std::vector<CompiledReport> reports_;
  Duration period_;
  Timestamp cycle_begin_;
  size_t cycle_index_ = 0;
  size_t cycles_completed_ = 0;
  size_t readings_this_cycle_ = 0;
  EcCallback callback_;
};

}  // namespace ale
}  // namespace eslev

#endif  // ESLEV_ALE_EVENT_CYCLE_H_
