#include "analysis/analyzer.h"

#include <algorithm>
#include <optional>

#include "analysis/cost_model.h"
#include "sql/parser.h"

namespace eslev {

// ---------------------------------------------------------------------------
// Walkers
// ---------------------------------------------------------------------------

void ForEachExprIn(const Expr& expr,
                   const std::function<void(const Expr&)>& fn) {
  fn(expr);
  switch (expr.kind) {
    case ExprKind::kFuncCall:
      for (const ExprPtr& a : static_cast<const FuncCallExpr&>(expr).args) {
        ForEachExprIn(*a, fn);
      }
      break;
    case ExprKind::kUnary:
      ForEachExprIn(*static_cast<const UnaryExpr&>(expr).operand, fn);
      break;
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      ForEachExprIn(*b.lhs, fn);
      ForEachExprIn(*b.rhs, fn);
      break;
    }
    case ExprKind::kExists:
      ForEachExpr(*static_cast<const ExistsExpr&>(expr).subquery, fn);
      break;
    default:
      break;  // leaves: literal, column ref, star agg, SEQ
  }
}

void ForEachExpr(const SelectStmt& select,
                 const std::function<void(const Expr&)>& fn) {
  for (const SelectItem& item : select.items) {
    if (item.expr != nullptr) ForEachExprIn(*item.expr, fn);
  }
  if (select.where != nullptr) ForEachExprIn(*select.where, fn);
  for (const ExprPtr& g : select.group_by) ForEachExprIn(*g, fn);
  if (select.having != nullptr) ForEachExprIn(*select.having, fn);
  for (const OrderKey& k : select.order_by) ForEachExprIn(*k.expr, fn);
}

void ForEachSelect(const SelectStmt& select,
                   const std::function<void(const SelectStmt&)>& fn) {
  fn(select);
  ForEachExpr(select, [&fn](const Expr& e) {
    if (e.kind == ExprKind::kExists) {
      // ForEachExpr already recursed into the subquery's expressions;
      // here we only surface the subquery statement itself.
      fn(*static_cast<const ExistsExpr&>(e).subquery);
    }
  });
}

// ---------------------------------------------------------------------------
// QueryAnalyzer
// ---------------------------------------------------------------------------

QueryAnalyzer::QueryAnalyzer(const Catalog* catalog) : catalog_(catalog) {
  RegisterBuiltinLintRules(this);
}

Result<std::vector<Diagnostic>> QueryAnalyzer::Analyze(
    const Statement& stmt) const {
  if (stmt.kind == StatementKind::kExplain) {
    return Analyze(*static_cast<const ExplainStmt&>(stmt).inner);
  }

  std::vector<Diagnostic> out;
  LintContext ctx;
  ctx.catalog = catalog_;
  ctx.statement = &stmt;
  switch (stmt.kind) {
    case StatementKind::kSelect:
      ctx.select = static_cast<const SelectStatement&>(stmt).select.get();
      break;
    case StatementKind::kInsert: {
      const auto& insert = static_cast<const InsertStmt&>(stmt);
      ctx.select = insert.select.get();
      ctx.insert_target = insert.target;
      break;
    }
    default:
      return out;  // DDL carries no lintable query shape
  }

  FlattenConjuncts(ctx.select->where.get(), &ctx.conjuncts);
  if (ctx.select->where != nullptr) {
    ForEachExprIn(*ctx.select->where, [&ctx](const Expr& e) {
      if (e.kind == ExprKind::kSeq) {
        ctx.seqs.push_back(static_cast<const SeqExpr*>(&e));
      }
    });
  }

  // Plan the statement so rules can inspect the physical pipeline. A
  // planner rejection becomes a diagnostic rather than a lint failure:
  // AST-level rules still run (and usually explain *why* planning died).
  Planner planner(catalog_);
  Result<PlannedQuery> planned = planner.Plan(stmt);
  std::optional<QueryCostReport> cost_report;
  if (planned.ok()) {
    ctx.plan = &*planned;
    // Cost analysis reuses the plan; a failure here leaves ctx.cost null
    // and rules fall back to their unquantified messages.
    CostAnalyzer cost_analyzer(catalog_);
    Result<QueryCostReport> cost = cost_analyzer.AnalyzeFromPlan(stmt, *planned);
    if (cost.ok()) {
      cost_report = std::move(cost).ValueUnsafe();
      ctx.cost = &*cost_report;
    }
  } else {
    ctx.plan_status = planned.status();
  }

  for (const LintRule& rule : rules_) {
    rule(ctx, &out);
  }

  std::stable_sort(out.begin(), out.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.span.offset != b.span.offset) {
                       return a.span.offset < b.span.offset;
                     }
                     return a.rule < b.rule;
                   });
  return out;
}

Result<std::vector<Diagnostic>> QueryAnalyzer::AnalyzeSql(
    const std::string& sql) const {
  ESLEV_ASSIGN_OR_RETURN(auto statements, ParseScript(sql));
  std::vector<Diagnostic> out;
  for (const StatementPtr& stmt : statements) {
    ESLEV_ASSIGN_OR_RETURN(std::vector<Diagnostic> diags, Analyze(*stmt));
    out.insert(out.end(), std::make_move_iterator(diags.begin()),
               std::make_move_iterator(diags.end()));
  }
  return out;
}

}  // namespace eslev
