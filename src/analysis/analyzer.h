// QueryAnalyzer: the static-analysis pass behind `EXPLAIN LINT`
// (DESIGN.md §11).
//
// The analyzer runs a list of rules over one parsed statement. Each rule
// receives a LintContext — the statement, its SELECT body, the flattened
// WHERE conjuncts, every SEQ-family expression, and (when planning
// succeeded) the physical plan — and appends Diagnostics. Rules are
// infallible by design: a rule that cannot decide stays silent, so lint
// never blocks on the analyzer's own limitations.
//
// Built-in rules (registered for every analyzer; see rules.cc):
//   unbounded-retention   SEQ state with no purge license (§4 modes, §5
//                         windows)
//   unsatisfiable-window  zero-length or vacuously anchored windows
//   star-aggregate-misuse FIRST/LAST/COUNT(S*) or `.previous.` on a
//                         non-star event
//   dead-predicate        constant-false or type-incoherent conjuncts
//   shard-fallback        SEQ/join shapes that force single-shard routing
//   durability-hazard     state whose checkpoint grows with total input
//   disorder-hazard       SEQ over live streams while the session
//                         declares input disorder no ingest reorder
//                         stage covers (DESIGN.md §15)
//   seq-negation-coverage mid-sequence negation in a 4+-position SEQ
//                         guards only one inter-position gap (§14)
//   plan-error            the planner rejected the statement outright

#ifndef ESLEV_ANALYSIS_ANALYZER_H_
#define ESLEV_ANALYSIS_ANALYZER_H_

#include <functional>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "common/result.h"
#include "plan/catalog.h"
#include "plan/planner.h"
#include "sql/ast.h"

namespace eslev {

struct QueryCostReport;  // analysis/cost_model.h

/// \brief Everything a lint rule may inspect about one statement.
struct LintContext {
  const Catalog* catalog = nullptr;
  /// The analyzed statement: kSelect or kInsert.
  const Statement* statement = nullptr;
  /// The SELECT body (the INSERT's inner SELECT when applicable).
  const SelectStmt* select = nullptr;
  /// INSERT target name; empty for bare SELECTs.
  std::string insert_target;
  /// Top-level AND conjuncts of the WHERE clause.
  std::vector<const Expr*> conjuncts;
  /// Every SEQ/EXCEPTION_SEQ/CLEVEL_SEQ expression in the WHERE clause.
  std::vector<const SeqExpr*> seqs;
  /// The physical plan, or nullptr when planning failed (see
  /// `plan_status`; the plan-error rule reports it).
  const PlannedQuery* plan = nullptr;
  Status plan_status = Status::OK();
  /// Static cost & state-bound report for the planned statement, or
  /// nullptr when planning (or cost analysis) failed. Rules use it to
  /// quantify their findings (DESIGN.md §16).
  const QueryCostReport* cost = nullptr;
};

/// \brief One lint rule: inspect the context, append findings. Rules
/// must not fail — when undecidable, emit nothing.
using LintRule =
    std::function<void(const LintContext&, std::vector<Diagnostic>*)>;

class QueryAnalyzer {
 public:
  /// \brief `catalog` must outlive the analyzer. The built-in rule set
  /// is registered automatically.
  explicit QueryAnalyzer(const Catalog* catalog);

  /// \brief Analyze one statement. DDL statements yield no diagnostics;
  /// EXPLAIN statements are unwrapped to their inner query. Diagnostics
  /// come back ordered by source position.
  Result<std::vector<Diagnostic>> Analyze(const Statement& stmt) const;

  /// \brief Parse `sql` (a statement or a whole script) and analyze
  /// every query statement in it, concatenating the diagnostics.
  Result<std::vector<Diagnostic>> AnalyzeSql(const std::string& sql) const;

  /// \brief Register an additional rule; runs after the built-ins.
  void AddRule(LintRule rule) { rules_.push_back(std::move(rule)); }

 private:
  const Catalog* catalog_;
  std::vector<LintRule> rules_;
};

/// \brief Registers the built-in rule catalog onto `analyzer`; called by
/// the QueryAnalyzer constructor (defined in rules.cc).
void RegisterBuiltinLintRules(QueryAnalyzer* analyzer);

// ---------------------------------------------------------------------------
// AST walkers shared by rules (and usable by future external rules)
// ---------------------------------------------------------------------------

/// \brief Preorder visit of `expr` and every nested expression,
/// including expressions inside EXISTS subqueries.
void ForEachExprIn(const Expr& expr,
                   const std::function<void(const Expr&)>& fn);

/// \brief Visit every expression of `select` (select list, WHERE, GROUP
/// BY, HAVING, ORDER BY), recursing into subqueries.
void ForEachExpr(const SelectStmt& select,
                 const std::function<void(const Expr&)>& fn);

/// \brief Visit `select` and every EXISTS subquery nested inside it.
void ForEachSelect(const SelectStmt& select,
                   const std::function<void(const SelectStmt&)>& fn);

}  // namespace eslev

#endif  // ESLEV_ANALYSIS_ANALYZER_H_
