#include "analysis/cost_model.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "analysis/analyzer.h"
#include "cep/seq_operator_base.h"
#include "common/string_util.h"
#include "exec/aggregate.h"
#include "exec/basic_ops.h"
#include "exec/table_ops.h"
#include "exec/windowed_not_exists.h"
#include "plan/partitioning.h"

namespace eslev {

namespace {

void EscapeJson(const std::string& in, std::string* out) {
  out->push_back('"');
  for (const char c : in) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

/// Unwrap EXPLAIN wrappers down to the SELECT / INSERT statement.
const Statement* Unwrap(const Statement& stmt) {
  const Statement* s = &stmt;
  while (s->kind == StatementKind::kExplain) {
    s = static_cast<const ExplainStmt*>(s)->inner.get();
  }
  return s;
}

bool ContainsKind(const Expr& expr, ExprKind kind) {
  bool found = false;
  ForEachExprIn(expr, [&](const Expr& e) {
    if (e.kind == kind) found = true;
  });
  return found;
}

bool ContainsPrevious(const Expr& expr) {
  bool found = false;
  ForEachExprIn(expr, [&](const Expr& e) {
    if (e.kind == ExprKind::kColumnRef &&
        static_cast<const ColumnRefExpr&>(e).previous) {
      found = true;
    }
  });
  return found;
}

}  // namespace

CostAnalyzer::CostAnalyzer(const Catalog* catalog, SeqBackend backend,
                           CostModelParams params)
    : catalog_(catalog), backend_(backend), params_(params) {}

Result<QueryCostReport> CostAnalyzer::Analyze(const Statement& stmt) const {
  const Statement* inner = Unwrap(stmt);
  Planner planner(catalog_, backend_);
  ESLEV_ASSIGN_OR_RETURN(PlannedQuery plan, planner.Plan(*inner));
  return AnalyzeFromPlan(*inner, plan);
}

Result<QueryCostReport> CostAnalyzer::AnalyzeFromPlan(
    const Statement& stmt, const PlannedQuery& plan) const {
  const Statement* s = Unwrap(stmt);
  const SelectStmt* select = nullptr;
  if (s->kind == StatementKind::kSelect) {
    select = static_cast<const SelectStatement*>(s)->select.get();
  } else if (s->kind == StatementKind::kInsert) {
    select = static_cast<const InsertStmt*>(s)->select.get();
  } else {
    return Status::Invalid("EXPLAIN COST applies to SELECT / INSERT");
  }

  QueryCostReport report;
  report.statement = s->ToString();
  report.backend = backend_ == SeqBackend::kNfa ? "nfa" : "history";
  report.assumed_shards = params_.assumed_shards;

  std::vector<const Expr*> conjuncts;
  FlattenConjuncts(select->where.get(), &conjuncts);
  std::vector<const SeqExpr*> seqs;
  ForEachExpr(*select, [&seqs](const Expr& e) {
    if (e.kind == ExprKind::kSeq) {
      seqs.push_back(static_cast<const SeqExpr*>(&e));
    }
  });

  const auto rate_of = [this](const std::string& stream) {
    const StreamStats* stats = catalog_->FindStreamStats(stream);
    return stats != nullptr && stats->rate_per_sec > 0
               ? stats->rate_per_sec
               : params_.default_rate_per_sec;
  };
  const auto keys_of = [this](const std::string& stream) {
    const StreamStats* stats = catalog_->FindStreamStats(stream);
    return stats != nullptr && stats->distinct_keys > 0
               ? stats->distinct_keys
               : params_.default_distinct_keys;
  };

  // Alias -> (rate, partition-key column) for selectivity decisions.
  std::map<std::string, std::pair<double, std::string>> alias_info;
  double query_keys = params_.default_distinct_keys;
  bool keys_seen = false;
  for (const TableRef& ref : select->from) {
    const Stream* stream = catalog_->FindStream(ref.name);
    if (stream == nullptr) continue;
    const SchemaPtr& schema = stream->schema();
    const std::string key =
        AsciiToLower(schema->field(DefaultPartitionKeyIndex(schema)).name);
    alias_info[AsciiToLower(ref.alias)] = {rate_of(ref.name), key};
    if (!keys_seen) {
      query_keys = keys_of(ref.name);
      keys_seen = true;
    }
  }

  // Selectivity of one plain WHERE conjunct (DESIGN.md §16 defaults):
  // equality on the partition key 1/K, other equality / unknown shapes
  // other_selectivity, ranges range_selectivity, LIKE like_selectivity.
  const auto selectivity_of = [&](const Expr& c) -> double {
    if (c.kind != ExprKind::kBinary) return params_.other_selectivity;
    const auto& b = static_cast<const BinaryExpr&>(c);
    const bool l_col = b.lhs->kind == ExprKind::kColumnRef;
    const bool r_col = b.rhs->kind == ExprKind::kColumnRef;
    if (l_col && r_col) return 1.0;  // join predicate, priced elsewhere
    const double key_eq = 1.0 / std::max(query_keys, 1.0);
    const auto eq_sel = [&]() {
      const Expr* col = l_col ? b.lhs.get() : r_col ? b.rhs.get() : nullptr;
      if (col == nullptr) return params_.other_selectivity;
      const auto& ref = static_cast<const ColumnRefExpr&>(*col);
      const auto it = alias_info.find(AsciiToLower(ref.qualifier));
      if (it != alias_info.end() &&
          AsciiToLower(ref.column) == it->second.second) {
        return key_eq;
      }
      return params_.other_selectivity;
    };
    switch (b.op) {
      case BinaryOp::kEq:
        return eq_sel();
      case BinaryOp::kNe:
        return 1.0 - eq_sel();
      case BinaryOp::kLt:
      case BinaryOp::kLe:
      case BinaryOp::kGt:
      case BinaryOp::kGe:
        return params_.range_selectivity;
      case BinaryOp::kLike:
        return params_.like_selectivity;
      case BinaryOp::kNotLike:
        return 1.0 - params_.like_selectivity;
      default:
        return params_.other_selectivity;
    }
  };

  double filter_selectivity = 1.0;
  for (const Expr* c : conjuncts) {
    if (ContainsKind(*c, ExprKind::kExists) ||
        ContainsKind(*c, ExprKind::kSeq) ||
        ContainsKind(*c, ExprKind::kStarAgg) || ContainsPrevious(*c) ||
        !ContainsKind(*c, ExprKind::kColumnRef)) {
      continue;
    }
    filter_selectivity *= selectivity_of(*c);
  }
  filter_selectivity = std::clamp(filter_selectivity, 0.0, 1.0);

  // Total arrival rate into the pipeline (every subscription delivers).
  double current = 0;
  for (const PlannedQuery::Subscription& sub : plan.subscriptions) {
    current += rate_of(sub.stream->name());
  }

  const PartitionVerdict verdict =
      ClassifyPartitioning(*catalog_, *select, conjuncts, seqs);

  bool filter_applied = false;
  for (Operator* op : plan.note_ops) {
    if (op == nullptr) continue;
    OperatorCost row;
    row.label = op->label().empty() ? "op" : op->label();
    row.in_rate = current;
    row.out_rate = current;
    row.cpu_cost = current;
    row.state = StatelessStateBound();

    if (auto* seq = dynamic_cast<SeqOperatorBase*>(op)) {
      const SeqOperatorConfig& cfg = seq->config();
      row.op = "SeqOperator";
      row.state_gauges = {"retained_history"};
      std::vector<double> rates;
      for (const SeqPosition& pos : cfg.positions) {
        const auto it = alias_info.find(AsciiToLower(pos.alias));
        rates.push_back(it != alias_info.end()
                            ? it->second.first
                            : params_.default_rate_per_sec);
      }
      row.state = SeqStateBound(cfg, rates);
      const double r_last = rates.empty() ? 0 : rates.back();
      // Cardinality: each trigger enumerates the candidate combinations
      // of the stored positions; partition-key-linked positions narrow
      // each by 1/K. Non-UNRESTRICTED modes emit at most one match per
      // trigger.
      double combos = 1.0;
      const bool linked = verdict == PartitionVerdict::kPartitionable;
      if (cfg.window.has_value()) {
        const double w = WindowSeconds(cfg.window->length);
        for (size_t i = 0; i + 1 < cfg.positions.size(); ++i) {
          if (cfg.positions[i].negated || cfg.positions[i].star) continue;
          double cand = rates[i] * w;
          if (linked) cand /= std::max(query_keys, 1.0);
          combos *= std::max(cand, 0.0);
        }
      }
      row.out_rate = cfg.mode == PairingMode::kUnrestricted
                         ? r_last * std::max(combos, 0.0)
                         : r_last;
      // Matching scans the retained history per trigger; unbounded
      // history is priced over the documented horizon.
      const double scanned =
          row.state.bounded
              ? row.state.tuples
              : row.state.growth_per_sec * params_.unbounded_scan_horizon_secs;
      row.cpu_cost = current + r_last * scanned;
    } else if (auto* ex = dynamic_cast<ExceptionSeqOperatorBase*>(op)) {
      const ExceptionSeqConfig& cfg = ex->config();
      row.op = "ExceptionSeqOperator";
      row.state_gauges = {"partial_level"};
      std::vector<double> rates;
      for (const SeqPosition& pos : cfg.positions) {
        const auto it = alias_info.find(AsciiToLower(pos.alias));
        rates.push_back(it != alias_info.end()
                            ? it->second.first
                            : params_.default_rate_per_sec);
      }
      row.state = ExceptionSeqStateBound(cfg, rates);
      // Every started run terminates exactly once (completion, violation
      // or expiry): the terminal rate tracks the first position's rate.
      row.out_rate = rates.empty() ? 0 : rates.front();
    } else if (auto* wne = dynamic_cast<WindowedNotExistsOperator*>(op)) {
      row.op = "WindowedNotExists";
      row.state_gauges = {"window_buffer", "pending"};
      row.state = WindowedNotExistsStateBound(wne->window(), current, current);
      row.out_rate = current * params_.anti_join_pass_rate;
      if (!filter_applied) {
        row.out_rate *= filter_selectivity;
        filter_applied = true;
      }
      // Each arrival probes the retained buffer and pending set.
      row.cpu_cost = current + current * row.state.tuples;
    } else if (auto* agg = dynamic_cast<AggregateOperator*>(op)) {
      row.op = "Aggregate";
      row.state_gauges = {"groups", "window_buffer"};
      row.state = AggregateStateBound(agg->num_group_exprs(), query_keys,
                                      agg->window(), current);
      // Continuous semantics: one output row per input tuple.
    } else if (auto* ins = dynamic_cast<TableInsertOperator*>(op)) {
      row.op = "TableInsert";
      row.state = TableInsertStateBound(current);
      (void)ins;
    } else if (dynamic_cast<TableNotExistsOperator*>(op) != nullptr) {
      row.op = "TableNotExists";
      row.out_rate = current * params_.anti_join_pass_rate;
    } else if (dynamic_cast<StreamTableJoinOperator*>(op) != nullptr) {
      row.op = "StreamTableJoin";
    } else if (dynamic_cast<FilterOperator*>(op) != nullptr) {
      row.op = "Filter";
      if (!filter_applied) {
        row.out_rate = current * filter_selectivity;
        filter_applied = true;
      }
    } else if (dynamic_cast<ProjectOperator*>(op) != nullptr) {
      row.op = "Project";
    } else {
      row.op = "Operator";
    }

    current = row.out_rate;
    report.total_cpu_cost += row.cpu_cost;
    if (row.state.bounded) {
      report.total_state_tuples += row.state.tuples;
    } else {
      report.state_bounded = false;
      report.total_state_growth_per_sec += row.state.growth_per_sec;
    }
    report.operators.push_back(std::move(row));
  }

  switch (verdict) {
    case PartitionVerdict::kPartitionable:
      report.partitioning = "partitionable";
      break;
    case PartitionVerdict::kSingleShard:
      report.partitioning = "single-shard";
      break;
    case PartitionVerdict::kUndecided:
      report.partitioning = "undecided";
      break;
  }
  report.single_shard_cost = report.total_cpu_cost;
  report.per_shard_cost =
      report.total_cpu_cost / std::max(params_.assumed_shards, 1);
  report.fallback_delta = report.single_shard_cost - report.per_shard_cost;
  return report;
}

std::string QueryCostReport::ToJson() const {
  std::string out = "{\"cost_model_version\":1,\"statement\":";
  EscapeJson(statement, &out);
  out += ",\"backend\":";
  EscapeJson(backend, &out);
  out += ",\"operators\":[";
  for (size_t i = 0; i < operators.size(); ++i) {
    const OperatorCost& op = operators[i];
    if (i > 0) out += ",";
    out += "{\"op\":";
    EscapeJson(op.op, &out);
    out += ",\"label\":";
    EscapeJson(op.label, &out);
    out += ",\"in_rate\":" + FormatCostNumber(op.in_rate);
    out += ",\"out_rate\":" + FormatCostNumber(op.out_rate);
    out += ",\"cpu_cost\":" + FormatCostNumber(op.cpu_cost);
    out += ",\"state\":{\"bounded\":";
    out += op.state.bounded ? "true" : "false";
    out += ",\"tuples\":" + FormatCostNumber(op.state.tuples);
    out += ",\"growth_per_sec\":" + FormatCostNumber(op.state.growth_per_sec);
    out += ",\"formula\":";
    EscapeJson(op.state.formula, &out);
    out += "},\"state_gauges\":[";
    for (size_t g = 0; g < op.state_gauges.size(); ++g) {
      if (g > 0) out += ",";
      EscapeJson(op.state_gauges[g], &out);
    }
    out += "]}";
  }
  out += "],\"totals\":{\"cpu_cost\":" + FormatCostNumber(total_cpu_cost);
  out += ",\"state_bounded\":";
  out += state_bounded ? "true" : "false";
  out += ",\"state_tuples\":" + FormatCostNumber(total_state_tuples);
  out += ",\"state_growth_per_sec\":" +
         FormatCostNumber(total_state_growth_per_sec);
  out += "},\"sharding\":{\"verdict\":";
  EscapeJson(partitioning, &out);
  out += ",\"assumed_shards\":" + std::to_string(assumed_shards);
  out += ",\"single_shard_cost\":" + FormatCostNumber(single_shard_cost);
  out += ",\"per_shard_cost\":" + FormatCostNumber(per_shard_cost);
  out += ",\"fallback_delta\":" + FormatCostNumber(fallback_delta);
  out += "}}";
  return out;
}

std::string StateBoundSummary(const QueryCostReport& report) {
  std::string formulas;
  for (const OperatorCost& op : report.operators) {
    // Stateless operators carry neither state nor a formula; skip them
    // so the summary names only what actually retains tuples.
    if (op.state.formula.empty() ||
        (op.state.bounded && op.state.tuples == 0)) {
      continue;
    }
    if (!formulas.empty()) formulas += " + ";
    formulas += op.state.formula;
  }
  std::string out;
  if (report.state_bounded) {
    out = FormatCostNumber(report.total_state_tuples) + " tuples";
  } else {
    out = "unbounded, grows " +
          FormatCostNumber(report.total_state_growth_per_sec) + "/s";
  }
  if (!formulas.empty()) out += " [" + formulas + "]";
  return out;
}

}  // namespace eslev
