// CostAnalyzer: the static cost & state-bound analyzer behind
// `EXPLAIN COST` (DESIGN.md §16).
//
// For one planned statement it derives, per operator:
//   (a) a retained-state bound (state_bounds.h) as a symbolic function
//       of window length, pairing mode, star buffers, dedup window and
//       group counts — validated against live metrics gauges by the
//       estimate-vs-actual harness (tests/analysis/cost_validation);
//   (b) a cardinality estimate propagated through filter/SEQ
//       selectivities from catalog-declared StreamStats, falling back
//       to the documented defaults in CostModelParams;
//   (c) a per-shard vs coordinator cost split from the partition-key
//       analysis in plan/partitioning.h — the quantified form of the
//       shard-fallback lint warning.
//
// The JSON shape emitted by ToJson() is a stable contract (locked by
// tests/analysis/json_schema_test); bump `cost_model_version` on any
// field change.

#ifndef ESLEV_ANALYSIS_COST_MODEL_H_
#define ESLEV_ANALYSIS_COST_MODEL_H_

#include <string>
#include <vector>

#include "analysis/state_bounds.h"
#include "cep/seq_backend.h"
#include "common/result.h"
#include "plan/catalog.h"
#include "plan/planner.h"
#include "sql/ast.h"

namespace eslev {

/// \brief Calibration defaults of the cost model (DESIGN.md §16). Every
/// default is overridable per stream via Engine::DeclareStreamStats.
struct CostModelParams {
  /// Arrival rate assumed for streams without declared stats.
  double default_rate_per_sec = 1000.0;
  /// Distinct partition-key values assumed without declared stats.
  double default_distinct_keys = 1024.0;
  /// Selectivity of a range comparison (<, <=, >, >=) conjunct.
  double range_selectivity = 1.0 / 3;
  /// Selectivity of a LIKE conjunct.
  double like_selectivity = 0.25;
  /// Selectivity of any other column-referencing conjunct.
  double other_selectivity = 0.5;
  /// Fraction of outer tuples surviving a NOT EXISTS anti-join.
  double anti_join_pass_rate = 0.5;
  /// Horizon, in seconds, used to price scans over *unbounded* SEQ
  /// history (the history keeps growing; the estimate prices the first
  /// minute and the state bound reports the growth rate).
  double unbounded_scan_horizon_secs = 60.0;
  /// Shard count assumed by the per-shard vs coordinator split.
  int assumed_shards = 4;
};

/// \brief Cost and state bound of one pipeline operator. `label` equals
/// the operator's metrics label, so row k of a registered query joins
/// the `query<id>.op<k>.<label>.*` gauges (Engine::Metrics).
struct OperatorCost {
  std::string op;     // operator kind, e.g. "SeqOperator"
  std::string label;  // metrics label (plan-note prefix)
  double in_rate = 0;   // tuples/sec entering
  double out_rate = 0;  // tuples/sec emitted (cardinality estimate)
  double cpu_cost = 0;  // predicate evaluations/sec
  StateBound state;
  /// AppendStats gauge names measuring this operator's live retained
  /// state (the ones the estimate-vs-actual harness sums and compares
  /// against `state.tuples`).
  std::vector<std::string> state_gauges;
};

/// \brief Full `EXPLAIN COST` report for one statement.
struct QueryCostReport {
  std::string statement;  // canonical statement text
  std::string backend;    // "history" or "nfa"
  std::vector<OperatorCost> operators;
  double total_cpu_cost = 0;
  bool state_bounded = true;
  double total_state_tuples = 0;          // sum of bounded operator bounds
  double total_state_growth_per_sec = 0;  // sum of unbounded growth rates
  /// "partitionable", "single-shard" or "undecided" (plan/partitioning).
  std::string partitioning;
  int assumed_shards = 0;
  /// Cost the hot shard bears when the query falls back to one shard.
  double single_shard_cost = 0;
  /// Cost per shard when the query hash-partitions cleanly.
  double per_shard_cost = 0;
  /// Extra load on the hot shard under fallback: single - per-shard.
  double fallback_delta = 0;

  std::string ToJson() const;
};

/// \brief One-line symbolic state-bound summary of a report, e.g.
/// "15001 tuples [r(readings)*30s+1 [window]]" or "unbounded, grows
/// 500/s [history (no purge license)]" — the wording admission-control
/// rejections embed so a tenant sees *why* a query charges what it
/// does (DESIGN.md §17). Stateless operators (formula-free) are
/// omitted; multiple stateful operators join with " + ".
std::string StateBoundSummary(const QueryCostReport& report);

class CostAnalyzer {
 public:
  /// \brief `catalog` must outlive the analyzer; `backend` prices the
  /// SEQ implementation the engine would run.
  explicit CostAnalyzer(const Catalog* catalog,
                        SeqBackend backend = SeqBackend::kHistory,
                        CostModelParams params = {});

  /// \brief Analyze one SELECT / INSERT statement (EXPLAIN wrappers are
  /// unwrapped); plans it internally.
  Result<QueryCostReport> Analyze(const Statement& stmt) const;

  /// \brief Analyze against an existing plan of the same statement (the
  /// QueryAnalyzer path — avoids replanning).
  Result<QueryCostReport> AnalyzeFromPlan(const Statement& stmt,
                                          const PlannedQuery& plan) const;

  const CostModelParams& params() const { return params_; }

 private:
  const Catalog* catalog_;
  SeqBackend backend_;
  CostModelParams params_;
};

}  // namespace eslev

#endif  // ESLEV_ANALYSIS_COST_MODEL_H_
