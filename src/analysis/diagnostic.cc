#include "analysis/diagnostic.h"

namespace eslev {

namespace {

void AppendJsonString(const std::string& in, std::string* out) {
  out->push_back('"');
  for (const char c : in) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          *out += "\\u00";
          out->push_back(kHex[(c >> 4) & 0xF]);
          out->push_back(kHex[c & 0xF]);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

const char* SeverityToString(Severity s) {
  switch (s) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

std::string Diagnostic::ToString() const {
  std::string out = SeverityToString(severity);
  out += "[" + rule + "] " + message;
  if (span.valid()) out += " (" + span.Describe() + ")";
  if (!hint.empty()) out += "; hint: " + hint;
  return out;
}

std::string DiagnosticsToJson(const std::vector<Diagnostic>& diagnostics) {
  std::string out = "{\"diagnostics\":[";
  for (size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    if (i > 0) out += ",";
    out += "{\"severity\":";
    AppendJsonString(SeverityToString(d.severity), &out);
    out += ",\"rule\":";
    AppendJsonString(d.rule, &out);
    out += ",\"message\":";
    AppendJsonString(d.message, &out);
    out += ",\"line\":" + std::to_string(d.span.line) +
           ",\"column\":" + std::to_string(d.span.column) +
           ",\"offset\":" + std::to_string(d.span.offset) +
           ",\"length\":" + std::to_string(d.span.length);
    if (!d.hint.empty()) {
      out += ",\"hint\":";
      AppendJsonString(d.hint, &out);
    }
    out += "}";
  }
  out += "],\"errors\":" +
         std::to_string(CountSeverity(diagnostics, Severity::kError)) +
         ",\"warnings\":" +
         std::to_string(CountSeverity(diagnostics, Severity::kWarning)) + "}";
  return out;
}

size_t CountSeverity(const std::vector<Diagnostic>& diagnostics, Severity s) {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == s) ++n;
  }
  return n;
}

}  // namespace eslev
