// Diagnostic: one finding of the static query analyzer (DESIGN.md §11).
//
// A diagnostic carries a machine-readable rule id, a severity, a
// human-readable message, the source span of the offending construct,
// and an optional fix hint. `DiagnosticsToJson` renders a batch in the
// stable JSON shape emitted by `EXPLAIN LINT` and the eslev_lint tool.

#ifndef ESLEV_ANALYSIS_DIAGNOSTIC_H_
#define ESLEV_ANALYSIS_DIAGNOSTIC_H_

#include <string>
#include <vector>

#include "sql/source_span.h"

namespace eslev {

enum class Severity : int {
  kInfo = 0,
  kWarning,  // likely-unintended query shape; the engine still runs it
  kError,    // the query cannot behave as written (never matches, always
             // fails, or retains unbounded state)
};

const char* SeverityToString(Severity s);

struct Diagnostic {
  Severity severity = Severity::kWarning;
  std::string rule;     // stable kebab-case id, e.g. "unbounded-retention"
  std::string message;  // one sentence; no trailing period needed
  SourceSpan span;      // where in the SQL text; may be invalid
  std::string hint;     // optional suggested fix

  std::string ToString() const;  // "error[rule] message (line L, column C)"
};

/// \brief Render diagnostics as
/// `{"diagnostics":[{...}],"errors":N,"warnings":N}`. Spans serialize as
/// line/column/offset/length; invalid spans serialize with line 0.
std::string DiagnosticsToJson(const std::vector<Diagnostic>& diagnostics);

/// \brief Count of diagnostics at exactly `severity`.
size_t CountSeverity(const std::vector<Diagnostic>& diagnostics, Severity s);

}  // namespace eslev

#endif  // ESLEV_ANALYSIS_DIAGNOSTIC_H_
