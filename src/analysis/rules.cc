// Built-in lint rules (DESIGN.md §11). Each rule is a free function over
// the LintContext; RegisterBuiltinLintRules wires them in a fixed order.
// Rules stay silent when they cannot decide — lint must never produce a
// false *error* on a query the engine runs correctly, so every
// heuristic finding is a warning and only provable defects are errors.

#include <initializer_list>
#include <map>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/cost_model.h"
#include "common/string_util.h"
#include "expr/binder.h"
#include "expr/bound_expr.h"
#include "plan/partitioning.h"
#include "plan/type_inference.h"

namespace eslev {

namespace {

Diagnostic Make(Severity severity, std::string rule, std::string message,
                SourceSpan span, std::string hint = "") {
  Diagnostic d;
  d.severity = severity;
  d.rule = std::move(rule);
  d.message = std::move(message);
  d.span = span;
  d.hint = std::move(hint);
  return d;
}

/// The pairing mode the planner will actually run: SEQ defaults to
/// UNRESTRICTED, EXCEPTION_SEQ / CLEVEL_SEQ track one consecutive run.
PairingMode EffectiveMode(const SeqExpr& seq) {
  if (seq.mode_explicit) return seq.mode;
  return seq.seq_kind == SeqKind::kSeq ? PairingMode::kUnrestricted
                                       : PairingMode::kConsecutive;
}

bool ContainsAnyKind(const Expr& expr, std::initializer_list<ExprKind> kinds) {
  bool found = false;
  ForEachExprIn(expr, [&](const Expr& e) {
    for (const ExprKind k : kinds) {
      if (e.kind == k) found = true;
    }
  });
  return found;
}

/// " (estimated growth N tuples/s at declared input rates)" when the
/// cost model confirmed unbounded state, else "".
std::string GrowthNote(const LintContext& ctx) {
  if (ctx.cost == nullptr || ctx.cost->total_state_growth_per_sec <= 0) {
    return "";
  }
  return " (estimated growth " +
         FormatCostNumber(ctx.cost->total_state_growth_per_sec) +
         " tuples/s at declared input rates)";
}

// ---------------------------------------------------------------------------
// unbounded-retention
// ---------------------------------------------------------------------------

void UnboundedRetentionRule(const LintContext& ctx,
                            std::vector<Diagnostic>* out) {
  for (const SeqExpr* seq : ctx.seqs) {
    if (seq->window.has_value()) continue;
    const PairingMode mode = EffectiveMode(*seq);
    if (mode == PairingMode::kUnrestricted) {
      out->push_back(Make(
          Severity::kError, "unbounded-retention",
          std::string(SeqKindToString(seq->seq_kind)) +
              " pairs in UNRESTRICTED mode with no OVER window: every tuple "
              "of every argument stream is retained forever" +
              GrowthNote(ctx),
          seq->span,
          "add an OVER [n unit PRECEDING|FOLLOWING anchor] window, or a MODE "
          "clause that licenses purging (RECENT, CHRONICLE or CONSECUTIVE)"));
      continue;  // the star buffers below are subsumed by this error
    }
    if (mode == PairingMode::kChronicle) {
      out->push_back(Make(
          Severity::kWarning, "unbounded-retention",
          "CHRONICLE pairing consumes tuples only when they match; unmatched "
          "tuples are retained forever without an OVER window" +
              GrowthNote(ctx),
          seq->span,
          "add an OVER [...] window to bound unmatched-tuple retention"));
      for (const SeqArg& arg : seq->args) {
        if (!arg.star) continue;
        out->push_back(Make(
            Severity::kWarning, "unbounded-retention",
            "star buffer of '" + arg.stream +
                "*' accumulates until a later position closes the group; "
                "without an OVER window an open group grows with the input",
            arg.span, "add an OVER [...] window to bound the star group"));
      }
    }
    // RECENT and CONSECUTIVE purge superseded history on every arrival;
    // no window is needed for bounded state.
  }
}

// ---------------------------------------------------------------------------
// unsatisfiable-window
// ---------------------------------------------------------------------------

void UnsatisfiableWindowRule(const LintContext& ctx,
                             std::vector<Diagnostic>* out) {
  for (const SeqExpr* seq : ctx.seqs) {
    if (!seq->window.has_value()) continue;
    const WindowSpec& w = *seq->window;
    if (w.length <= 0) {
      out->push_back(Make(
          Severity::kError, "unsatisfiable-window",
          "SEQ window length is zero: the window covers a single instant "
          "and can never admit a sequence that spans time",
          w.span, "use a positive window length"));
      continue;
    }
    // Resolve the anchor position. An empty anchor defaults to the
    // position that makes the window non-vacuous (last for PRECEDING,
    // first for FOLLOWING) — the same rule the planner applies.
    int anchor = -1;
    if (w.anchor.empty()) {
      anchor = w.direction == WindowDirection::kFollowing
                   ? 0
                   : static_cast<int>(seq->args.size()) - 1;
    } else {
      for (size_t i = 0; i < seq->args.size(); ++i) {
        if (AsciiEqualsIgnoreCase(seq->args[i].stream, w.anchor)) {
          anchor = static_cast<int>(i);
          break;
        }
      }
    }
    if (anchor < 0) {
      out->push_back(Make(
          Severity::kError, "unsatisfiable-window",
          "window anchor '" + w.anchor + "' does not name a SEQ argument",
          w.span, "anchor the window at one of the SEQ argument aliases"));
      continue;
    }
    const int last = static_cast<int>(seq->args.size()) - 1;
    if (w.direction == WindowDirection::kPreceding && anchor == 0) {
      out->push_back(Make(
          Severity::kWarning, "unsatisfiable-window",
          "PRECEDING window anchored at the first SEQ argument '" +
              seq->args[0].stream +
              "' bounds no other position — nothing in the sequence precedes "
              "it, so the window neither constrains matches nor licenses "
              "purging",
          w.span,
          "anchor the window at a later argument, or use FOLLOWING"));
    } else if (w.direction == WindowDirection::kFollowing && anchor == last) {
      out->push_back(Make(
          Severity::kWarning, "unsatisfiable-window",
          "FOLLOWING window anchored at the last SEQ argument '" +
              seq->args[static_cast<size_t>(last)].stream +
              "' bounds no other position — nothing in the sequence follows "
              "it, so the window neither constrains matches nor licenses "
              "purging",
          w.span,
          "anchor the window at an earlier argument, or use PRECEDING"));
    }
  }

  // Zero-length windows on FROM references (dedup anti-joins, stream
  // windows): the window still admits simultaneous tuples, so this is a
  // warning rather than an error.
  ForEachSelect(*ctx.select, [out](const SelectStmt& sel) {
    for (const TableRef& ref : sel.from) {
      if (ref.window.has_value() && ref.window->length <= 0) {
        out->push_back(Make(
            Severity::kWarning, "unsatisfiable-window",
            "window on '" + ref.name +
                "' has length zero: it covers a single instant and only ever "
                "admits simultaneous tuples",
            ref.window->span, "use a positive window length"));
      }
    }
  });
}

// ---------------------------------------------------------------------------
// star-aggregate-misuse
// ---------------------------------------------------------------------------

void StarAggregateMisuseRule(const LintContext& ctx,
                             std::vector<Diagnostic>* out) {
  // Lower-cased SEQ argument alias -> starred?
  std::map<std::string, bool> args;
  for (const SeqExpr* seq : ctx.seqs) {
    for (const SeqArg& arg : seq->args) {
      args[AsciiToLower(arg.stream)] = arg.star;
    }
  }
  const auto check = [&](const std::string& construct,
                         const std::string& alias, const SourceSpan& span) {
    if (ctx.seqs.empty()) {
      out->push_back(Make(
          Severity::kError, "star-aggregate-misuse",
          construct + " requires a starred SEQ argument, but this query has "
                      "no SEQ operator",
          span, "use SEQ(..., " + alias + "*, ...) in the WHERE clause"));
      return;
    }
    const auto it = args.find(AsciiToLower(alias));
    if (it == args.end()) {
      out->push_back(Make(Severity::kError, "star-aggregate-misuse",
                          construct + " references '" + alias +
                              "', which is not a SEQ argument",
                          span,
                          "apply it to one of the SEQ argument aliases"));
      return;
    }
    if (!it->second) {
      out->push_back(Make(
          Severity::kError, "star-aggregate-misuse",
          construct + " references '" + alias +
              "', which is a SEQ argument but not starred — only starred "
              "arguments accumulate a group to aggregate over",
          span, "write '" + alias + "*' in the SEQ argument list"));
    }
  };
  ForEachExpr(*ctx.select, [&](const Expr& e) {
    if (e.kind == ExprKind::kStarAgg) {
      const auto& agg = static_cast<const StarAggExpr&>(e);
      check(std::string(StarAggFnToString(agg.fn)) + "(" + agg.stream + "*)",
            agg.stream, e.span);
    } else if (e.kind == ExprKind::kColumnRef) {
      const auto& ref = static_cast<const ColumnRefExpr&>(e);
      if (ref.previous) {
        check("'" + ref.qualifier + ".previous." + ref.column + "'",
              ref.qualifier, e.span);
      }
    }
  });
}

// ---------------------------------------------------------------------------
// dead-predicate
// ---------------------------------------------------------------------------

/// Constant-folds a literal-only conjunct by binding it against an empty
/// scope and evaluating it with an empty row — the exact runtime
/// semantics, so whatever the fold says, execution would agree.
Result<Value> FoldConstant(const Expr& expr, const FunctionRegistry& registry) {
  BindScope empty;
  Binder binder(&empty, &registry);
  ESLEV_ASSIGN_OR_RETURN(BoundExprPtr bound, binder.Bind(expr));
  EvalRow row;
  return bound->Eval(row);
}

int TypeFamily(TypeId t) {
  switch (t) {
    case TypeId::kBool:
      return 0;
    case TypeId::kString:
      return 1;
    case TypeId::kInt64:
    case TypeId::kDouble:
    case TypeId::kTimestamp:
      return 2;  // mutually comparable numeric family
    case TypeId::kNull:
      break;
  }
  return -1;  // unknown: stay silent
}

/// Scope for best-effort type checks: the select's own FROM entries,
/// plus the enclosing query's entries at depth 1 for subqueries.
BindScope ScopeFor(const SelectStmt& select, const Catalog& catalog,
                   const SelectStmt* outer) {
  BindScope scope;
  const auto add = [&scope, &catalog](const SelectStmt& s, int depth) {
    for (const TableRef& ref : s.from) {
      SchemaPtr schema;
      if (const Stream* stream = catalog.FindStream(ref.name)) {
        schema = stream->schema();
      } else if (const Table* table = catalog.FindTable(ref.name)) {
        schema = table->schema();
      }
      if (schema == nullptr) continue;
      ScopeEntry entry;
      entry.alias = ref.alias;
      entry.schema = std::move(schema);
      entry.depth = depth;
      scope.AddEntry(std::move(entry));
    }
  };
  add(select, 0);
  if (outer != nullptr && outer != &select) add(*outer, 1);
  return scope;
}

void DeadPredicateRule(const LintContext& ctx, std::vector<Diagnostic>* out) {
  const FunctionRegistry& registry = ctx.catalog->registry();
  ForEachSelect(*ctx.select, [&](const SelectStmt& sel) {
    std::vector<const Expr*> conjuncts;
    FlattenConjuncts(sel.where.get(), &conjuncts);
    BindScope scope = ScopeFor(sel, *ctx.catalog, ctx.select);
    for (const Expr* c : conjuncts) {
      if (!ContainsAnyKind(*c, {ExprKind::kColumnRef, ExprKind::kStarAgg,
                                ExprKind::kExists, ExprKind::kSeq})) {
        // Literal-only conjunct: fold it.
        Result<Value> v = FoldConstant(*c, registry);
        if (!v.ok()) {
          if (v.status().code() == StatusCode::kTypeError) {
            out->push_back(Make(Severity::kError, "dead-predicate",
                                "conjunct always fails with a type error: " +
                                    v.status().message(),
                                c->span, "fix the mismatched operand types"));
          }
          continue;  // unknown function etc.: not our finding
        }
        if (v->is_null()) {
          out->push_back(Make(
              Severity::kError, "dead-predicate",
              "conjunct is constant NULL: WHERE rejects UNKNOWN, so no "
              "tuple ever passes",
              c->span, "remove the conjunct or fix the expression"));
        } else if (v->type() != TypeId::kBool) {
          out->push_back(Make(Severity::kError, "dead-predicate",
                              "conjunct is a constant " +
                                  std::string(TypeIdToString(v->type())) +
                                  ": WHERE requires a boolean",
                              c->span, "compare the value to something"));
        } else if (!v->bool_value()) {
          out->push_back(
              Make(Severity::kError, "dead-predicate",
                   "conjunct is constant FALSE: the query can never emit",
                   c->span, "remove the conjunct or fix the comparison"));
        }
        continue;
      }
      // Best-effort type coherence on plain column/literal comparisons.
      if (c->kind != ExprKind::kBinary) continue;
      const auto& b = static_cast<const BinaryExpr&>(*c);
      switch (b.op) {
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
          break;
        default:
          continue;
      }
      // Function results are inferred heuristically; comparing through
      // them would risk false positives, so restrict the check to
      // column/literal/arithmetic operands.
      if (ContainsAnyKind(*c, {ExprKind::kFuncCall, ExprKind::kStarAgg,
                               ExprKind::kExists, ExprKind::kSeq})) {
        continue;
      }
      const Result<TypeId> lt = InferExprType(*b.lhs, scope, registry);
      const Result<TypeId> rt = InferExprType(*b.rhs, scope, registry);
      if (!lt.ok() || !rt.ok()) continue;
      const int lf = TypeFamily(*lt);
      const int rf = TypeFamily(*rt);
      if (lf < 0 || rf < 0 || lf == rf) continue;
      out->push_back(Make(
          Severity::kWarning, "dead-predicate",
          std::string("comparison of ") + TypeIdToString(*lt) + " with " +
              TypeIdToString(*rt) +
              " always raises a type error at runtime, which rejects the "
              "tuple",
          c->span,
          "ESL-EV compares only within a type family (numeric/timestamp, "
          "string, boolean); cast or fix one operand"));
    }
  });
}

// ---------------------------------------------------------------------------
// shard-fallback
// ---------------------------------------------------------------------------

// Partition-key resolution and union-find linkage live in
// plan/partitioning.h (shared with the cost model's per-shard split).

void ShardFallbackRule(const LintContext& ctx, std::vector<Diagnostic>* out) {
  const auto warn = [&](const std::string& what, const SourceSpan& span) {
    std::string message =
        what + " — matches can pair tuples with different partition keys, "
               "so ShardedEngine must route the source streams to a single "
               "shard (SetSingleShard), forfeiting parallelism";
    if (ctx.cost != nullptr) {
      // Quantify the fallback with the cost model's per-shard split.
      message += "; estimated " +
                 FormatCostNumber(ctx.cost->single_shard_cost) +
                 " predicate evals/s on the hot shard vs " +
                 FormatCostNumber(ctx.cost->per_shard_cost) +
                 "/shard if key-partitioned across " +
                 std::to_string(ctx.cost->assumed_shards) +
                 " shards (fallback delta +" +
                 FormatCostNumber(ctx.cost->fallback_delta) + "/s)";
    }
    out->push_back(Make(
        Severity::kWarning, "shard-fallback", std::move(message), span,
        "join every position on the partition key (e.g. a.tagid = b.tagid), "
        "or accept single-shard routing"));
  };

  // SEQ queries: every non-negated position must be key-linked.
  if (ctx.seqs.size() == 1 && !ctx.select->from.empty()) {
    const SeqExpr& seq = *ctx.seqs[0];
    std::vector<const TableRef*> refs;
    for (const SeqArg& arg : seq.args) {
      if (arg.negated) continue;  // carries no tuple
      const TableRef* found = nullptr;
      for (const TableRef& ref : ctx.select->from) {
        if (AsciiEqualsIgnoreCase(ref.alias, arg.stream)) {
          found = &ref;
          break;
        }
      }
      if (found == nullptr) return;  // unknown alias: planner reports it
      refs.push_back(found);
    }
    std::vector<PartitionPos> positions;
    if (!ResolvePartitionPositions(refs, *ctx.catalog, &positions)) return;
    if (!PartitionKeyLinked(positions, ctx.conjuncts)) {
      warn("SEQ positions are not pairwise joined on their partition keys",
           seq.span);
    }
    return;
  }
  if (!ctx.seqs.empty()) return;  // multi-SEQ shapes: undecided

  // Multi-stream joins (windowed self-joins, Example 8 shapes).
  std::vector<const TableRef*> stream_refs;
  for (const TableRef& ref : ctx.select->from) {
    if (ctx.catalog->FindStream(ref.name) != nullptr) {
      stream_refs.push_back(&ref);
    }
  }
  if (stream_refs.size() >= 2) {
    std::vector<PartitionPos> positions;
    if (ResolvePartitionPositions(stream_refs, *ctx.catalog, &positions) &&
        !PartitionKeyLinked(positions, ctx.conjuncts)) {
      warn("joined streams are not equated on their partition keys",
           ctx.statement->span);
    }
    return;
  }

  // Correlated [NOT] EXISTS against a stream: the subquery must
  // correlate with the outer stream on the partition key, or the
  // anti-join sees only the local shard's slice.
  if (stream_refs.size() != 1 || ctx.select->where == nullptr) return;
  const TableRef* outer_ref = stream_refs[0];
  ForEachExprIn(*ctx.select->where, [&](const Expr& e) {
    if (e.kind != ExprKind::kExists) return;
    const auto& exists = static_cast<const ExistsExpr&>(e);
    const SelectStmt& sub = *exists.subquery;
    if (sub.from.size() != 1) return;
    if (ctx.catalog->FindStream(sub.from[0].name) == nullptr) return;
    std::vector<PartitionPos> positions;
    if (!ResolvePartitionPositions({outer_ref, &sub.from[0]}, *ctx.catalog,
                                   &positions)) {
      return;
    }
    std::vector<const Expr*> sub_conjuncts;
    FlattenConjuncts(sub.where.get(), &sub_conjuncts);
    if (!PartitionKeyLinked(positions, sub_conjuncts)) {
      warn("the EXISTS subquery does not correlate with '" +
               outer_ref->alias + "' on the partition key",
           e.span);
    }
  });
}

// ---------------------------------------------------------------------------
// durability-hazard
// ---------------------------------------------------------------------------

/// The cost-model row for the first operator whose kind matches `op`,
/// or nullptr (no cost report / no such operator).
const OperatorCost* FindCostRow(const LintContext& ctx,
                                const std::string& op) {
  if (ctx.cost == nullptr) return nullptr;
  for (const OperatorCost& row : ctx.cost->operators) {
    if (row.op == op) return &row;
  }
  return nullptr;
}

void DurabilityHazardRule(const LintContext& ctx,
                          std::vector<Diagnostic>* out) {
  if (!ctx.insert_target.empty() &&
      ctx.catalog->FindTable(ctx.insert_target) != nullptr) {
    std::string growth;
    if (const OperatorCost* row = FindCostRow(ctx, "TableInsert")) {
      growth = " (estimated +" + FormatCostNumber(row->in_rate) +
               " rows/s at declared input rates)";
    }
    out->push_back(Make(
        Severity::kWarning, "durability-hazard",
        "INSERT INTO table '" + ctx.insert_target +
            "' accumulates every emitted row; checkpoints serialize whole "
            "tables, so checkpoint size and time grow with total input "
            "(DESIGN.md §10)" +
            growth,
        ctx.statement->span,
        "bound the table (periodic deletes) or target a stream so retention "
        "windows purge history; under replication (DESIGN.md §12) the same "
        "growth is re-paid copying each checkpoint to every standby"));
  }
  if (!ctx.select->group_by.empty() && ctx.seqs.empty() &&
      !ctx.select->from.empty()) {
    const TableRef& src = ctx.select->from[0];
    if (!src.window.has_value() &&
        ctx.catalog->FindStream(src.name) != nullptr) {
      std::string groups;
      if (const OperatorCost* row = FindCostRow(ctx, "Aggregate")) {
        if (row->state.bounded) {
          groups = " (estimated " + FormatCostNumber(row->state.tuples) +
                   " groups at declared key cardinality)";
        }
      }
      out->push_back(Make(
          Severity::kWarning, "durability-hazard",
          "GROUP BY over the unwindowed stream '" + src.name +
              "' keeps one aggregate state per distinct key forever; "
              "checkpoint size grows with key cardinality" +
              groups,
          src.span,
          "window the stream reference (OVER (RANGE n unit PRECEDING "
          "CURRENT)) so idle groups expire"));
    }
  }
}

// ---------------------------------------------------------------------------
// seq-negation-coverage
// ---------------------------------------------------------------------------

/// A negated position is checked as interval evidence between its
/// *neighbouring matched* positions (NegationOk, DESIGN.md §14). In a
/// 4+-position SEQ a mid-sequence negation therefore guards only one of
/// several inter-position gaps — authors often expect "never during the
/// whole sequence" — and its forbidden-event history is exempt from
/// every purge license (even RECENT keeps all of it as evidence), so it
/// is scanned in full per candidate match.
void SeqNegationCoverageRule(const LintContext& ctx,
                             std::vector<Diagnostic>* out) {
  for (const SeqExpr* seq : ctx.seqs) {
    const size_t n = seq->args.size();
    if (n < 4) continue;
    for (size_t i = 1; i + 1 < n; ++i) {
      const SeqArg& arg = seq->args[i];
      if (!arg.negated) continue;
      out->push_back(Make(
          Severity::kWarning, "seq-negation-coverage",
          "mid-sequence negation '!" + arg.stream + "' (position " +
              std::to_string(i + 1) + " of " + std::to_string(n) +
              ") only forbids '" + arg.stream +
              "' between its neighbouring matched positions, not across "
              "the whole sequence; its event history is retained without "
              "purge as interval evidence and scanned per candidate match",
          arg.span,
          "if '" + arg.stream +
              "' must never occur during the whole sequence, split the "
              "check into a windowed NOT EXISTS over the full span; "
              "otherwise keep the negation adjacent to the positions it "
              "guards"));
    }
  }
}

// ---------------------------------------------------------------------------
// disorder-hazard
// ---------------------------------------------------------------------------

/// SEQ matching is arrival-order sensitive: a tuple that arrives after a
/// later-timestamped tuple was already consumed silently misses every
/// pairing it should have joined. When the session declares nonzero
/// input disorder (IngestOptions::declared_disorder) but no ingest
/// reorder stage covers it, any SEQ-family query over live streams is
/// at risk (DESIGN.md §15).
void DisorderHazardRule(const LintContext& ctx, std::vector<Diagnostic>* out) {
  const Duration declared = ctx.catalog->declared_disorder();
  if (declared <= 0) return;
  const Duration lateness = ctx.catalog->ingest_lateness();
  if (lateness >= declared) return;  // reorder stage absorbs it
  for (const SeqExpr* seq : ctx.seqs) {
    bool consumes_stream = false;
    for (const SeqArg& arg : seq->args) {
      if (arg.negated) continue;  // carries no tuple
      for (const TableRef& ref : ctx.select->from) {
        if (AsciiEqualsIgnoreCase(ref.alias, arg.stream) &&
            ctx.catalog->FindStream(ref.name) != nullptr) {
          consumes_stream = true;
        }
      }
    }
    if (!consumes_stream) continue;
    const std::string coverage =
        lateness == 0
            ? "no ingest reorder stage is configured"
            : "the ingest reorder bound covers only " +
                  std::to_string(lateness) + " us";
    out->push_back(Make(
        Severity::kWarning, "disorder-hazard",
        std::string(SeqKindToString(seq->seq_kind)) +
            " consumes live streams in arrival order, but this session "
            "declares input disorder up to " +
            std::to_string(declared) + " us and " + coverage +
            " — a read arriving late misses every pairing it should join",
        seq->span,
        "configure the ingest reorder stage with lateness_bound >= " +
            std::to_string(declared) +
            " us (EngineOptions::ingest.lateness_bound or "
            "ESLEV_INGEST_LATENESS_US), or declare the input in-order"));
  }
}

// ---------------------------------------------------------------------------
// plan-error
// ---------------------------------------------------------------------------

void PlanErrorRule(const LintContext& ctx, std::vector<Diagnostic>* out) {
  if (ctx.plan != nullptr) return;
  out->push_back(Make(Severity::kError, "plan-error",
                      "the planner rejected this statement: " +
                          ctx.plan_status.message(),
                      ctx.statement->span));
}

}  // namespace

void RegisterBuiltinLintRules(QueryAnalyzer* analyzer) {
  analyzer->AddRule(UnboundedRetentionRule);
  analyzer->AddRule(UnsatisfiableWindowRule);
  analyzer->AddRule(StarAggregateMisuseRule);
  analyzer->AddRule(DeadPredicateRule);
  analyzer->AddRule(ShardFallbackRule);
  analyzer->AddRule(DurabilityHazardRule);
  analyzer->AddRule(SeqNegationCoverageRule);
  analyzer->AddRule(DisorderHazardRule);
  analyzer->AddRule(PlanErrorRule);
}

}  // namespace eslev
