#include "analysis/state_bounds.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace eslev {

double WindowSeconds(Duration length) {
  return static_cast<double>(length) / 1e6;
}

std::string FormatCostNumber(double v) {
  if (!std::isfinite(v)) return "inf";
  if (std::fabs(v) < 9.2e18 && v == std::floor(v)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<int64_t>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

namespace {

/// One additive term of a bound.
struct Term {
  bool bounded = true;
  double value = 0;  // tuples when bounded, tuples/sec otherwise
  std::string text;
};

StateBound Sum(const std::vector<Term>& terms, const std::string& prefix) {
  StateBound b;
  b.formula = prefix;
  bool first = true;
  for (const Term& t : terms) {
    if (!first) b.formula += " + ";
    first = false;
    b.formula += t.text;
    if (t.bounded) {
      b.tuples += t.value;
    } else {
      b.bounded = false;
      b.growth_per_sec += t.value;
    }
  }
  if (terms.empty()) b.formula += "0";
  if (!b.bounded) b.tuples = 0;
  return b;
}

Term WindowTerm(const std::string& alias, double rate, double window_secs) {
  Term t;
  t.value = rate * window_secs + 1;
  t.text = "r(" + alias + ")*" + FormatCostNumber(window_secs) +
           "s+1 [window]";
  return t;
}

Term GrowthTerm(const std::string& alias, double rate,
                const std::string& why) {
  Term t;
  t.bounded = false;
  t.value = rate;
  t.text = "unbounded +r(" + alias + ")/s [" + why + "]";
  return t;
}

}  // namespace

StateBound SeqStateBound(const SeqOperatorConfig& config,
                         const std::vector<double>& rates) {
  const size_t n = config.positions.size();
  // Window eviction fires only for PRECEDING / PRECEDING AND FOLLOWING
  // windows anchored at the last position (SeqOperator::EvictByWindow).
  const bool purging_window =
      config.window.has_value() &&
      (config.window->direction == WindowDirection::kPreceding ||
       config.window->direction == WindowDirection::kPrecedingAndFollowing) &&
      config.window->anchor == n - 1;
  const double window_secs =
      purging_window ? WindowSeconds(config.window->length) : 0;
  const bool recent_exact = config.mode == PairingMode::kRecent &&
                            config.pairwise.empty();

  std::vector<Term> terms;
  for (size_t i = 0; i < n; ++i) {
    const SeqPosition& pos = config.positions[i];
    // The final position triggers matching on arrival and is stored
    // only when starred (a trailing star accumulates its group).
    if (i == n - 1 && !pos.star) continue;
    const double rate = i < rates.size() ? rates[i] : 0;
    if (pos.star) {
      // An open star group extends while its gate passes and is never
      // window-evicted, so no static license bounds it.
      terms.push_back(GrowthTerm(pos.alias, rate, "open star group"));
      continue;
    }
    if (config.mode == PairingMode::kConsecutive) {
      Term t;
      t.value = 1;
      t.text = "1 [" + pos.alias + ": consecutive run]";
      terms.push_back(t);
      continue;
    }
    if (recent_exact && !pos.negated) {
      // PurgeRecent keeps, per position i, the most recent entry plus
      // one entry per retained later-position entry: at most n-1-i.
      Term t;
      t.value = static_cast<double>(n - 1 - i);
      t.text = FormatCostNumber(t.value) + " [" + pos.alias +
               ": recent purge]";
      if (purging_window) {
        const Term w = WindowTerm(pos.alias, rate, window_secs);
        if (w.value < t.value) t = w;
      }
      terms.push_back(t);
      continue;
    }
    if (purging_window) {
      terms.push_back(WindowTerm(pos.alias, rate, window_secs));
      continue;
    }
    // UNRESTRICTED / CHRONICLE / RECENT-with-pairwise without a purging
    // window — and RECENT negation evidence, which PurgeRecent never
    // drops — retain without bound.
    terms.push_back(GrowthTerm(
        pos.alias, rate,
        pos.negated ? "negation evidence" : "no purge license"));
  }
  return Sum(terms, "");
}

StateBound ExceptionSeqStateBound(const ExceptionSeqConfig& config,
                                  const std::vector<double>& rates) {
  const size_t n = config.positions.size();
  std::vector<Term> terms;
  Term run;
  run.value = static_cast<double>(n);
  run.text = FormatCostNumber(run.value) + " [partial run, 1 entry/position]";
  terms.push_back(run);
  for (size_t i = 0; i < n; ++i) {
    if (!config.positions[i].star) continue;
    const double rate = i < rates.size() ? rates[i] : 0;
    if (config.window.has_value()) {
      // The window deadline expires the run, closing any open group.
      terms.push_back(WindowTerm(config.positions[i].alias, rate,
                                 WindowSeconds(config.window->length)));
    } else {
      terms.push_back(GrowthTerm(config.positions[i].alias, rate,
                                 "open star group"));
    }
  }
  return Sum(terms, "");
}

StateBound WindowedNotExistsStateBound(const WindowSpec& window,
                                       double inner_rate, double outer_rate) {
  const double w = window.row_based ? static_cast<double>(window.length)
                                    : WindowSeconds(window.length);
  std::vector<Term> terms;
  Term buffer;
  buffer.value = window.row_based ? w : inner_rate * w + 1;
  buffer.text = window.row_based
                    ? FormatCostNumber(w) + " rows [buffer]"
                    : "r(inner)*" + FormatCostNumber(w) + "s+1 [buffer]";
  terms.push_back(buffer);
  if (window.direction == WindowDirection::kFollowing ||
      window.direction == WindowDirection::kPrecedingAndFollowing) {
    Term pending;
    pending.value = outer_rate * w + 1;
    pending.text = "r(outer)*" + FormatCostNumber(w) + "s+1 [pending]";
    terms.push_back(pending);
  }
  return Sum(terms, "");
}

StateBound AggregateStateBound(size_t group_exprs, double distinct_keys,
                               const std::optional<WindowSpec>& window,
                               double in_rate) {
  std::vector<Term> terms;
  Term groups;
  if (group_exprs == 0) {
    groups.value = 1;
    groups.text = "1 [global group]";
  } else {
    groups.value = std::pow(distinct_keys, static_cast<double>(group_exprs));
    groups.text = "K^" + FormatCostNumber(static_cast<double>(group_exprs)) +
                  "=" + FormatCostNumber(groups.value) + " [groups]";
  }
  terms.push_back(groups);
  if (window.has_value()) {
    Term buffer;
    if (window->row_based) {
      buffer.value = static_cast<double>(window->length);
      buffer.text = FormatCostNumber(buffer.value) + " rows [window buffer]";
    } else {
      const double w = WindowSeconds(window->length);
      buffer.value = in_rate * w + 1;
      buffer.text = "r*" + FormatCostNumber(w) + "s+1 [window buffer]";
    }
    terms.push_back(buffer);
  }
  return Sum(terms, "");
}

StateBound TableInsertStateBound(double in_rate) {
  StateBound b;
  b.bounded = false;
  b.growth_per_sec = in_rate;
  b.formula = "unbounded +" + FormatCostNumber(in_rate) +
              "/s [table grows with every emitted row]";
  return b;
}

StateBound StatelessStateBound() {
  StateBound b;
  b.formula = "0 [stateless]";
  return b;
}

StateBound CombineBounds(const StateBound& a, const StateBound& b) {
  StateBound out;
  out.bounded = a.bounded && b.bounded;
  out.tuples = out.bounded ? a.tuples + b.tuples : 0;
  out.growth_per_sec = a.growth_per_sec + b.growth_per_sec;
  out.formula = a.formula.empty() ? b.formula
                : b.formula.empty() ? a.formula
                                    : a.formula + " + " + b.formula;
  return out;
}

}  // namespace eslev
