// Static retained-state bounds per operator (DESIGN.md §16).
//
// Every bound is a *conservative upper bound* on the number of tuples an
// operator retains at any instant, derived from the purge licenses the
// operator actually holds:
//
//   SEQ history      window eviction fires only for PRECEDING (or
//                    PRECEDING AND FOLLOWING) windows anchored at the
//                    LAST position (SeqOperator::EvictByWindow);
//                    CONSECUTIVE keeps one entry per position; RECENT
//                    with no pairwise constraints retains an exact
//                    triangular entry set (position i keeps at most
//                    n-1-i entries) but keeps ALL negation evidence;
//                    star groups stay open while their gate passes and
//                    open groups are never window-evicted, so a starred
//                    position is never statically bounded.
//   EXCEPTION_SEQ    the partial run holds at most one entry per
//                    position (gauge: partial_level <= n).
//   NOT EXISTS       window buffer holds r_inner * W tuples; FOLLOWING
//                    windows additionally hold r_outer * W pending
//                    outer tuples.
//   Aggregate        at most distinct_keys^m groups (m grouping
//                    expressions) plus the r * W window buffer.
//   Table insert     unbounded: the table grows with every emitted row.
//
// Rates come from catalog-declared StreamStats (see CostModelParams for
// the documented defaults). "+1" terms account for the tuple at the
// inclusive window boundary.

#ifndef ESLEV_ANALYSIS_STATE_BOUNDS_H_
#define ESLEV_ANALYSIS_STATE_BOUNDS_H_

#include <optional>
#include <string>
#include <vector>

#include "cep/seq_config.h"
#include "sql/ast.h"

namespace eslev {

/// \brief Static bound on one operator's retained state.
struct StateBound {
  /// True when the retained tuple count has a static upper bound.
  bool bounded = true;
  /// The bound, in tuples, when `bounded` (0 for stateless operators).
  double tuples = 0;
  /// Worst-case growth rate, tuples per second, when not `bounded`.
  double growth_per_sec = 0;
  /// Symbolic derivation, e.g. "r(C1)*1800s+1 [window] + ...".
  std::string formula;
};

/// \brief Bound for a SEQ operator; `rates[i]` is the arrival rate of
/// position i in tuples/second.
StateBound SeqStateBound(const SeqOperatorConfig& config,
                         const std::vector<double>& rates);

/// \brief Bound for an EXCEPTION_SEQ / CLEVEL_SEQ operator.
StateBound ExceptionSeqStateBound(const ExceptionSeqConfig& config,
                                  const std::vector<double>& rates);

/// \brief Bound for the windowed NOT EXISTS anti-join (inner window
/// buffer + FOLLOWING-side pending outer tuples).
StateBound WindowedNotExistsStateBound(const WindowSpec& window,
                                       double inner_rate, double outer_rate);

/// \brief Bound for continuous aggregation: `group_exprs` grouping
/// expressions, each assumed to take at most `distinct_keys` values,
/// plus the window buffer when windowed.
StateBound AggregateStateBound(size_t group_exprs, double distinct_keys,
                               const std::optional<WindowSpec>& window,
                               double in_rate);

/// \brief Unbounded growth of a table insert target.
StateBound TableInsertStateBound(double in_rate);

/// \brief Bound for stateless operators (filter, project, table probe).
StateBound StatelessStateBound();

/// \brief Sum of bounds: bounded parts add tuples, unbounded parts add
/// growth; the sum is bounded only when every part is.
StateBound CombineBounds(const StateBound& a, const StateBound& b);

/// \brief Window length in seconds (0 for row-based windows — use
/// `length` rows directly in that case).
double WindowSeconds(Duration length);

/// \brief Deterministic number rendering for formulas, JSON and lint
/// messages: integers print without decimals, everything else with two
/// (e.g. 15001, 0.5, 2.33). Never uses scientific notation.
std::string FormatCostNumber(double v);

}  // namespace eslev

#endif  // ESLEV_ANALYSIS_STATE_BOUNDS_H_
