#include "baseline/naive_join.h"

namespace eslev {
namespace baseline {

Status NaiveJoinSequenceDetector::OnTuple(size_t stream, const Tuple& tuple) {
  if (stream >= options_.num_streams) {
    return Status::Invalid("stream index out of range");
  }
  if (stream + 1 == options_.num_streams) {
    Enumerate(static_cast<int>(options_.num_streams) - 2, tuple, tuple);
    return Status::OK();
  }
  history_[stream].push_back(tuple);
  return Status::OK();
}

// Joins backwards from position `stream`, `next` being the tuple chosen
// for position stream+1 and `last` the triggering final tuple.
void NaiveJoinSequenceDetector::Enumerate(int stream, const Tuple& next,
                                          const Tuple& last) {
  if (stream < 0) {
    ++matches_;
    return;
  }
  for (const Tuple& t : history_[stream]) {
    if (t.ts() >= next.ts()) continue;  // timestamp-order predicate
    if (options_.key_column >= 0 &&
        !(t.value(options_.key_column) ==
          last.value(options_.key_column))) {
      continue;  // key-equality predicate
    }
    if (options_.window > 0 && t.ts() < last.ts() - options_.window) {
      continue;  // timing predicate (no purging!)
    }
    Enumerate(stream - 1, t, last);
  }
}

}  // namespace baseline
}  // namespace eslev
