// NaiveJoinSequenceDetector: the paper's footnote-3 strawman — what a
// plain SQL engine without temporal operators can do. For each incoming
// final-stream tuple it joins against the *full* accumulated history of
// every other stream, applying timestamp-order, key-equality and timing
// conditions as ordinary predicates.
//
// Two deliberate deficiencies (they are the point of the comparison):
//  * no history purging — plain SQL has no window/consumption constructs,
//    so history grows without bound (E9 measures this);
//  * no star patterns — `a+ b` is inexpressible as a fixed join (§2.2).

#ifndef ESLEV_BASELINE_NAIVE_JOIN_H_
#define ESLEV_BASELINE_NAIVE_JOIN_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "types/tuple.h"

namespace eslev {
namespace baseline {

struct NaiveJoinOptions {
  size_t num_streams = 2;
  /// Column index that must be equal across all joined tuples (-1: none).
  int key_column = -1;
  /// Timing condition: all tuples within `window` of the final tuple
  /// (0: none). Checked as a predicate only — history is NOT purged.
  Duration window = 0;
};

class NaiveJoinSequenceDetector {
 public:
  explicit NaiveJoinSequenceDetector(NaiveJoinOptions options)
      : options_(options), history_(options.num_streams) {}

  /// \brief Feed a tuple; arrival on the final stream evaluates the join
  /// and returns via matches().
  Status OnTuple(size_t stream, const Tuple& tuple);

  uint64_t matches() const { return matches_; }

  /// \brief Total tuples retained (the unbounded-state metric).
  size_t history_size() const {
    size_t n = 0;
    for (const auto& h : history_) n += h.size();
    return n;
  }

 private:
  void Enumerate(int stream, const Tuple& next, const Tuple& last);

  NaiveJoinOptions options_;
  std::vector<std::vector<Tuple>> history_;
  uint64_t matches_ = 0;
};

}  // namespace baseline
}  // namespace eslev

#endif  // ESLEV_BASELINE_NAIVE_JOIN_H_
