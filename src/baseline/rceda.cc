#include "baseline/rceda.h"

namespace eslev {
namespace baseline {

void EventNode::Produce(const EventInstance& instance) {
  ++produced_;
  for (const auto& edge : parents_) {
    edge.parent->OnChildEvent(edge.child_index, instance);
  }
  for (const auto& cb : callbacks_) {
    cb(instance);
  }
}

void PrimitiveNode::Inject(const Tuple& tuple) {
  EventInstance instance;
  instance.start = instance.end = tuple.ts();
  instance.tuples.push_back(tuple);
  Produce(instance);
}

namespace {

EventInstance Compose(const EventInstance& left, const EventInstance& right) {
  EventInstance out;
  out.start = left.start;
  out.end = right.end;
  out.tuples = left.tuples;
  out.tuples.insert(out.tuples.end(), right.tuples.begin(),
                    right.tuples.end());
  return out;
}

}  // namespace

void SeqNode::OnChildEvent(int child_index, const EventInstance& instance) {
  if (child_index == 0) {
    // New left instance: materialize; it may also pair with stored right
    // instances that ended after it... SEQ requires left before right,
    // and rights arrived earlier end earlier, so only future rights can
    // follow it. Store and wait.
    left_.push_back(instance);
    return;
  }
  right_.push_back(instance);
  for (const EventInstance& l : left_) {
    if (l.end >= instance.start) continue;  // must strictly precede
    if (guard_ && !guard_(l, instance)) continue;
    Produce(Compose(l, instance));
  }
}

void AndNode::OnChildEvent(int child_index, const EventInstance& instance) {
  auto& mine = child_index == 0 ? left_ : right_;
  auto& other = child_index == 0 ? right_ : left_;
  mine.push_back(instance);
  for (const EventInstance& o : other) {
    const EventInstance& l = o.start <= instance.start ? o : instance;
    const EventInstance& r = o.start <= instance.start ? instance : o;
    if (guard_ && !guard_(l, r)) continue;
    Produce(Compose(l, r));
  }
}

PrimitiveNode* RcedaEngine::AddPrimitive(const std::string& stream_name) {
  auto node = std::make_unique<PrimitiveNode>();
  PrimitiveNode* raw = node.get();
  nodes_.push_back(std::move(node));
  primitives_.emplace_back(stream_name, raw);
  return raw;
}

SeqNode* RcedaEngine::AddSeq(EventNode* left, EventNode* right,
                             ComposeGuard guard) {
  auto node = std::make_unique<SeqNode>(std::move(guard));
  SeqNode* raw = node.get();
  left->AddParent(raw, 0);
  right->AddParent(raw, 1);
  nodes_.push_back(std::move(node));
  return raw;
}

AndNode* RcedaEngine::AddAnd(EventNode* left, EventNode* right,
                             ComposeGuard guard) {
  auto node = std::make_unique<AndNode>(std::move(guard));
  AndNode* raw = node.get();
  left->AddParent(raw, 0);
  right->AddParent(raw, 1);
  nodes_.push_back(std::move(node));
  return raw;
}

OrNode* RcedaEngine::AddOr(EventNode* left, EventNode* right) {
  auto node = std::make_unique<OrNode>();
  OrNode* raw = node.get();
  left->AddParent(raw, 0);
  right->AddParent(raw, 1);
  nodes_.push_back(std::move(node));
  return raw;
}

EventNode* RcedaEngine::BuildSeqChain(const std::vector<std::string>& streams,
                                      ComposeGuard guard) {
  if (streams.empty()) return nullptr;
  EventNode* acc = AddPrimitive(streams[0]);
  for (size_t i = 1; i < streams.size(); ++i) {
    EventNode* next = AddPrimitive(streams[i]);
    acc = AddSeq(acc, next, guard);
  }
  return acc;
}

Status RcedaEngine::Inject(const std::string& stream_name,
                           const Tuple& tuple) {
  bool found = false;
  for (auto& [name, node] : primitives_) {
    if (name == stream_name) {
      node->Inject(tuple);
      found = true;
    }
  }
  if (!found) {
    return Status::NotFound("no primitive event node for stream: " +
                            stream_name);
  }
  return Status::OK();
}

size_t RcedaEngine::retained_instances() const {
  size_t total = 0;
  for (const auto& node : nodes_) {
    total += node->retained_instances();
  }
  return total;
}

}  // namespace baseline
}  // namespace eslev
