// RCEDA-style graph-based composite event engine — a reimplementation of
// the standalone event system the paper argues against ([23], "a simple
// graph-based processing model [that] lacks optimization techniques for
// large volume RFID event data processing").
//
// Composite events are detected by an event graph: primitive event nodes
// feed operator nodes (SEQ, AND, OR), each of which *materializes* the
// composite event instances it has produced so far and keeps its child
// histories forever (no sliding windows, no consumption modes). This
// faithfully yields UNRESTRICTED-equivalent results while exhibiting the
// unbounded-state behaviour the paper criticizes (bench E10).

#ifndef ESLEV_BASELINE_RCEDA_H_
#define ESLEV_BASELINE_RCEDA_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/tuple.h"

namespace eslev {
namespace baseline {

/// \brief A (possibly composite) event occurrence: the interval it spans
/// and the constituent tuples in temporal order.
struct EventInstance {
  Timestamp start = 0;
  Timestamp end = 0;
  std::vector<Tuple> tuples;
};

using EventCallback = std::function<void(const EventInstance&)>;

/// \brief Optional guard evaluated when composing two child instances
/// (e.g. equal tag ids); return false to reject the combination.
using ComposeGuard =
    std::function<bool(const EventInstance& left, const EventInstance& right)>;

class EventNode {
 public:
  virtual ~EventNode() = default;

  void AddParent(EventNode* parent, int child_index) {
    parents_.push_back({parent, child_index});
  }
  void AddCallback(EventCallback cb) { callbacks_.push_back(std::move(cb)); }

  /// \brief Number of event instances this node retains.
  virtual size_t retained_instances() const = 0;

  uint64_t instances_produced() const { return produced_; }

 protected:
  void Produce(const EventInstance& instance);
  virtual void OnChildEvent(int child_index, const EventInstance& instance) = 0;

 private:
  friend class RcedaEngine;
  struct ParentEdge {
    EventNode* parent;
    int child_index;
  };
  std::vector<ParentEdge> parents_;
  std::vector<EventCallback> callbacks_;
  uint64_t produced_ = 0;
};

/// \brief Leaf node: every injected tuple is a primitive event.
class PrimitiveNode : public EventNode {
 public:
  void Inject(const Tuple& tuple);
  size_t retained_instances() const override { return 0; }

 protected:
  void OnChildEvent(int, const EventInstance&) override {}
};

/// \brief SEQ(left, right): right instance following a left instance.
/// Materializes both child histories (never purged).
class SeqNode : public EventNode {
 public:
  explicit SeqNode(ComposeGuard guard = nullptr) : guard_(std::move(guard)) {}
  size_t retained_instances() const override {
    return left_.size() + right_.size();
  }

 protected:
  void OnChildEvent(int child_index, const EventInstance& instance) override;

 private:
  ComposeGuard guard_;
  std::vector<EventInstance> left_;
  std::vector<EventInstance> right_;
};

/// \brief AND(left, right): both occurred, either order.
class AndNode : public EventNode {
 public:
  explicit AndNode(ComposeGuard guard = nullptr) : guard_(std::move(guard)) {}
  size_t retained_instances() const override {
    return left_.size() + right_.size();
  }

 protected:
  void OnChildEvent(int child_index, const EventInstance& instance) override;

 private:
  ComposeGuard guard_;
  std::vector<EventInstance> left_;
  std::vector<EventInstance> right_;
};

/// \brief OR(left, right): either occurred.
class OrNode : public EventNode {
 public:
  size_t retained_instances() const override { return 0; }

 protected:
  void OnChildEvent(int, const EventInstance& instance) override {
    Produce(instance);
  }
};

/// \brief The event graph: owns nodes, routes primitive injections.
class RcedaEngine {
 public:
  PrimitiveNode* AddPrimitive(const std::string& stream_name);
  SeqNode* AddSeq(EventNode* left, EventNode* right,
                  ComposeGuard guard = nullptr);
  AndNode* AddAnd(EventNode* left, EventNode* right,
                  ComposeGuard guard = nullptr);
  OrNode* AddOr(EventNode* left, EventNode* right);

  /// \brief Build a left-deep SEQ chain over n primitive streams (the
  /// graph for SEQ(E1, ..., En)); returns the root.
  EventNode* BuildSeqChain(const std::vector<std::string>& streams,
                           ComposeGuard guard = nullptr);

  /// \brief Inject a primitive event into the named stream's node.
  Status Inject(const std::string& stream_name, const Tuple& tuple);

  /// \brief Total instances materialized across all operator nodes — the
  /// engine's state-size metric.
  size_t retained_instances() const;

 private:
  std::vector<std::unique_ptr<EventNode>> nodes_;
  std::vector<std::pair<std::string, PrimitiveNode*>> primitives_;
};

}  // namespace baseline
}  // namespace eslev

#endif  // ESLEV_BASELINE_RCEDA_H_
