#include "cep/exception_seq_operator.h"

#include <algorithm>

namespace eslev {

Result<std::unique_ptr<ExceptionSeqOperator>> ExceptionSeqOperator::Make(
    ExceptionSeqConfig config) {
  const size_t n = config.positions.size();
  if (n < 2) {
    return Status::Invalid("EXCEPTION_SEQ requires at least two positions");
  }
  if (config.positions.back().star) {
    return Status::NotImplemented(
        "a trailing star in EXCEPTION_SEQ never completes, so completion "
        "levels against it are undefined");
  }
  if (config.mode != PairingMode::kConsecutive &&
      config.mode != PairingMode::kRecent) {
    return Status::NotImplemented(
        "EXCEPTION_SEQ supports CONSECUTIVE (default) and RECENT modes");
  }
  if (config.window) {
    if (config.window->direction == WindowDirection::kPreceding) {
      return Status::NotImplemented(
          "EXCEPTION_SEQ windows must be FOLLOWING-anchored (a PRECEDING "
          "deadline is unknowable in advance)");
    }
    if (config.window->anchor >= n) {
      return Status::Invalid("window anchor out of range");
    }
  }
  if (config.arrival_filters.empty()) config.arrival_filters.resize(n);
  if (config.star_gates.empty()) config.star_gates.resize(n);
  if (config.arrival_filters.size() != n || config.star_gates.size() != n) {
    return Status::Invalid("filter/gate vectors must match position count");
  }
  for (const auto& c : config.pairwise) {
    if (c.pos_a >= c.pos_b || c.pos_b >= n) {
      return Status::Invalid("malformed pairwise constraint");
    }
  }
  if (!config.out_schema || config.projection.empty()) {
    return Status::Invalid("EXCEPTION_SEQ operator requires a projection");
  }
  return std::unique_ptr<ExceptionSeqOperator>(
      new ExceptionSeqOperator(std::move(config)));
}

ExceptionSeqOperator::ExceptionSeqOperator(ExceptionSeqConfig config)
    : config_(std::move(config)),
      n_(config_.positions.size()),
      scratch_(n_) {}

Result<bool> ExceptionSeqOperator::PassesArrivalFilter(size_t pos,
                                                       const Tuple& tuple) {
  if (!config_.arrival_filters[pos]) return true;
  scratch_.Clear();
  scratch_.SetTuple(pos, &tuple);
  return EvalPredicate(*config_.arrival_filters[pos], scratch_.Row());
}

Result<bool> ExceptionSeqOperator::PassesStarGate(size_t pos,
                                                  const Tuple& tuple,
                                                  const Tuple& previous) {
  if (!config_.star_gates[pos]) return true;
  scratch_.Clear();
  scratch_.SetTuple(pos, &tuple);
  scratch_.SetPrevious(pos, &previous);
  return EvalPredicate(*config_.star_gates[pos], scratch_.Row());
}

Result<bool> ExceptionSeqOperator::PairwiseOkWithPartial(size_t pos,
                                                         const Tuple& tuple) {
  for (const auto& c : config_.pairwise) {
    if (c.pos_b != pos || c.pos_a >= partial_.size()) continue;
    scratch_.Clear();
    scratch_.SetTuple(c.pos_a, &partial_[c.pos_a].back());
    if (config_.positions[c.pos_a].star) {
      scratch_.SetStarGroup(c.pos_a, &partial_[c.pos_a]);
    }
    scratch_.SetTuple(c.pos_b, &tuple);
    ESLEV_ASSIGN_OR_RETURN(bool ok, EvalPredicate(*c.expr, scratch_.Row()));
    if (!ok) return false;
  }
  return true;
}

namespace {
bool LevelSatisfies(int64_t level, BinaryOp op, int64_t rhs) {
  switch (op) {
    case BinaryOp::kLt:
      return level < rhs;
    case BinaryOp::kLe:
      return level <= rhs;
    case BinaryOp::kGt:
      return level > rhs;
    case BinaryOp::kGe:
      return level >= rhs;
    case BinaryOp::kEq:
      return level == rhs;
    case BinaryOp::kNe:
      return level != rhs;
    default:
      return false;
  }
}
}  // namespace

Status ExceptionSeqOperator::Terminal(size_t level, const Tuple* offender,
                                      size_t offender_pos) {
  const bool completed = level == n_;
  if (completed) {
    ++sequences_completed_;
  }
  if (!LevelSatisfies(static_cast<int64_t>(level), config_.level_op,
                      config_.level_rhs)) {
    return Status::OK();
  }
  if (!completed) ++exceptions_emitted_;

  scratch_.Clear();
  Timestamp ts = 0;
  // Starred positions the partial never reached project as empty groups
  // (COUNT == 0, FIRST/LAST == NULL) rather than errors.
  static const std::vector<Tuple> kEmptyGroup;
  for (size_t i = 0; i < n_; ++i) {
    if (config_.positions[i].star) scratch_.SetStarGroup(i, &kEmptyGroup);
  }
  for (size_t i = 0; i < level && i < partial_.size(); ++i) {
    scratch_.SetTuple(i, &partial_[i].back());
    if (config_.positions[i].star) {
      scratch_.SetStarGroup(i, &partial_[i]);
    }
    ts = std::max(ts, partial_[i].back().ts());
  }
  if (offender != nullptr) {
    scratch_.SetTuple(offender_pos, offender);
    ts = std::max(ts, offender->ts());
  }
  std::vector<Value> values;
  values.reserve(config_.projection.size());
  for (const auto& e : config_.projection) {
    ESLEV_ASSIGN_OR_RETURN(Value v, e->Eval(scratch_.Row()));
    values.push_back(std::move(v));
  }
  ESLEV_ASSIGN_OR_RETURN(Tuple out,
                         MakeTuple(config_.out_schema, std::move(values), ts));
  return Emit(out);
}

void ExceptionSeqOperator::ArmDeadline() {
  if (!config_.window || deadline_) return;
  const size_t anchor = config_.window->anchor;
  if (partial_.size() > anchor) {
    deadline_ = partial_[anchor].front().ts() + config_.window->length;
  }
}

Status ExceptionSeqOperator::CheckExpiry(Timestamp now, bool from_heartbeat) {
  if (!deadline_ || now <= *deadline_) return Status::OK();
  // Window expired with the partial incomplete (scenario 3).
  ++window_expirations_;
  if (from_heartbeat) ++active_expirations_;
  const size_t level = partial_.size();
  ESLEV_RETURN_NOT_OK(Terminal(level, nullptr, 0));
  partial_.clear();
  deadline_.reset();
  return Status::OK();
}

void ExceptionSeqOperator::AppendStats(OperatorStatList* out) const {
  out->push_back({"partial_level", static_cast<int64_t>(partial_.size())});
  out->push_back(
      {"level_transitions", static_cast<int64_t>(level_transitions_)});
  out->push_back(
      {"window_expirations", static_cast<int64_t>(window_expirations_)});
  out->push_back(
      {"active_expirations", static_cast<int64_t>(active_expirations_)});
  out->push_back(
      {"exceptions_emitted", static_cast<int64_t>(exceptions_emitted_)});
  out->push_back(
      {"sequences_completed", static_cast<int64_t>(sequences_completed_)});
}

Status ExceptionSeqOperator::AppendPosition(size_t pos, const Tuple& tuple) {
  (void)pos;
  partial_.push_back({tuple});
  ++level_transitions_;
  ArmDeadline();
  if (partial_.size() == n_) {
    ESLEV_RETURN_NOT_OK(Terminal(n_, nullptr, 0));
    partial_.clear();
    deadline_.reset();
  }
  return Status::OK();
}

Status ExceptionSeqOperator::StartOrLevelZero(size_t pos, const Tuple& tuple) {
  partial_.clear();
  deadline_.reset();
  if (pos == 0) {
    return AppendPosition(0, tuple);
  }
  // Scenario 2: the incoming tuple cannot start a sequence.
  return Terminal(0, &tuple, pos);
}

Status ExceptionSeqOperator::ProcessTuple(size_t port, const Tuple& tuple) {
  if (port >= n_) {
    return Status::ExecutionError("EXCEPTION_SEQ port out of range");
  }
  ESLEV_ASSIGN_OR_RETURN(bool pass, PassesArrivalFilter(port, tuple));
  if (!pass) return Status::OK();
  // The previous partial may have expired before this arrival.
  ESLEV_RETURN_NOT_OK(CheckExpiry(tuple.ts()));

  const size_t k = partial_.size();

  // Repeat arrival on the current starred position: extend the group.
  if (k > 0 && port == k - 1 && config_.positions[k - 1].star) {
    ESLEV_ASSIGN_OR_RETURN(
        bool same_group, PassesStarGate(port, tuple, partial_[k - 1].back()));
    if (same_group) {
      ESLEV_ASSIGN_OR_RETURN(bool ok, PairwiseOkWithPartial(port, tuple));
      if (ok) {
        partial_[k - 1].push_back(tuple);
        return Status::OK();
      }
    }
    // Gate or qualification failure: the partial cannot extend.
    ESLEV_RETURN_NOT_OK(Terminal(k, &tuple, port));
    return StartOrLevelZero(port, tuple);
  }

  if (port == k) {
    ESLEV_ASSIGN_OR_RETURN(bool ok, PairwiseOkWithPartial(port, tuple));
    if (ok) {
      return AppendPosition(port, tuple);
    }
    // Fails the qualifying conditions: treat as a wrong tuple below.
  }

  // Wrong incoming tuple (scenario 1).
  if (k > 0) {
    if (config_.mode == PairingMode::kRecent && port < k) {
      // The paper's (A,B)+B case: the new tuple replaces its position;
      // the abandoned partial raises an exception first.
      ESLEV_RETURN_NOT_OK(Terminal(k, &tuple, port));
      partial_.resize(port);
      deadline_.reset();
      ESLEV_ASSIGN_OR_RETURN(bool ok, PairwiseOkWithPartial(port, tuple));
      if (ok) {
        partial_.push_back({tuple});
        ++level_transitions_;
        ArmDeadline();
      } else {
        return StartOrLevelZero(port, tuple);
      }
      return Status::OK();
    }
    ESLEV_RETURN_NOT_OK(Terminal(k, &tuple, port));
    return StartOrLevelZero(port, tuple);
  }
  return StartOrLevelZero(port, tuple);
}

Status ExceptionSeqOperator::ProcessHeartbeat(Timestamp now) {
  ESLEV_RETURN_NOT_OK(CheckExpiry(now, /*from_heartbeat=*/true));
  return EmitHeartbeat(now);
}

Status ExceptionSeqOperator::SaveState(BinaryEncoder* enc) const {
  enc->PutU64(exceptions_emitted_);
  enc->PutU64(sequences_completed_);
  enc->PutU64(level_transitions_);
  enc->PutU64(window_expirations_);
  enc->PutU64(active_expirations_);
  enc->PutBool(deadline_.has_value());
  if (deadline_) enc->PutI64(*deadline_);
  enc->PutU32(static_cast<uint32_t>(partial_.size()));
  for (const std::vector<Tuple>& group : partial_) {
    enc->PutU32(static_cast<uint32_t>(group.size()));
    for (const Tuple& t : group) enc->PutTuple(t);
  }
  return Status::OK();
}

Status ExceptionSeqOperator::RestoreState(BinaryDecoder* dec) {
  ESLEV_ASSIGN_OR_RETURN(exceptions_emitted_, dec->GetU64());
  ESLEV_ASSIGN_OR_RETURN(sequences_completed_, dec->GetU64());
  ESLEV_ASSIGN_OR_RETURN(level_transitions_, dec->GetU64());
  ESLEV_ASSIGN_OR_RETURN(window_expirations_, dec->GetU64());
  ESLEV_ASSIGN_OR_RETURN(active_expirations_, dec->GetU64());
  ESLEV_ASSIGN_OR_RETURN(bool has_deadline, dec->GetBool());
  deadline_.reset();
  if (has_deadline) {
    ESLEV_ASSIGN_OR_RETURN(Timestamp d, dec->GetI64());
    deadline_ = d;
  }
  ESLEV_ASSIGN_OR_RETURN(uint32_t level, dec->GetU32());
  if (level > n_) {
    return Status::IoError(
        "EXCEPTION_SEQ checkpoint: partial level exceeds position count");
  }
  partial_.clear();
  for (uint32_t i = 0; i < level; ++i) {
    ESLEV_ASSIGN_OR_RETURN(uint32_t ntuples, dec->GetU32());
    if (ntuples == 0) {
      return Status::IoError("EXCEPTION_SEQ checkpoint: empty position group");
    }
    std::vector<Tuple> group;
    group.reserve(ntuples);
    for (uint32_t j = 0; j < ntuples; ++j) {
      ESLEV_ASSIGN_OR_RETURN(Tuple t, dec->GetTuple());
      group.push_back(std::move(t));
    }
    partial_.push_back(std::move(group));
  }
  return Status::OK();
}

}  // namespace eslev
