// ExceptionSeqOperator: the paper's EXCEPTION_SEQ / CLEVEL_SEQ operators
// (§3.1.3), built on Sequence Completion Levels.
//
// The operator tracks one partial sequence at a time. A terminal event
// occurs when the partial can no longer extend:
//   1. a wrong incoming tuple (the partial's level k is final; under
//      RECENT a repeat of an already-matched position *replaces* it and
//      the partial survives truncated, per the paper's (A,B)+B example);
//   2. an incoming tuple that cannot start a new sequence (level-0
//      exception on the incoming tuple itself);
//   3. expiration of the sliding window with the partial incomplete
//      (*active expiration*: detected on heartbeats, without arrivals).
// A sequence that completes all n positions terminates at level n.
//
// Star positions (the paper: "EXCEPTION_SEQ can also allow repeating
// star sequences") accumulate groups: while a starred position is the
// most recent one, further arrivals on it extend the group subject to
// the position's star gate (`.previous.` conjuncts); a gate failure is
// a violation like any other wrong tuple. The final position may not be
// starred — a trailing star never completes, so levels against it are
// undefined.
//
// Terminal events whose level satisfies `level_op level_rhs` are emitted
// (EXCEPTION_SEQ is the special case `level < n`; CLEVEL_SEQ comparisons
// lower to other ops). The emitted row is projected over the partial's
// slots; positions not reached project as NULL, and for a wrong-tuple
// exception the offending tuple is bound at its own position so alerts
// can report it.

#ifndef ESLEV_CEP_EXCEPTION_SEQ_OPERATOR_H_
#define ESLEV_CEP_EXCEPTION_SEQ_OPERATOR_H_

#include <memory>
#include <optional>
#include <vector>

#include "cep/seq_config.h"
#include "cep/seq_operator_base.h"

namespace eslev {

class ExceptionSeqOperator : public ExceptionSeqOperatorBase {
 public:
  static Result<std::unique_ptr<ExceptionSeqOperator>> Make(
      ExceptionSeqConfig config);

  SeqBackend backend() const override { return SeqBackend::kHistory; }
  const ExceptionSeqConfig& config() const override { return config_; }

  /// \brief Port == position index.
  Status ProcessTuple(size_t port, const Tuple& tuple) override;

  /// \brief Active expiration: emits window-expiry exceptions even when
  /// no tuples arrive.
  Status ProcessHeartbeat(Timestamp now) override;

  uint64_t exceptions_emitted() const override { return exceptions_emitted_; }
  uint64_t sequences_completed() const override {
    return sequences_completed_;
  }
  size_t partial_level() const override { return partial_.size(); }

  /// \brief Upward completion-level transitions (a partial advancing to
  /// the next position, including star-group openings after a replace).
  uint64_t level_transitions() const override { return level_transitions_; }
  /// \brief Window-expiry terminals (scenario 3), however detected.
  uint64_t window_expirations() const override { return window_expirations_; }
  /// \brief Window-expiry terminals detected by a heartbeat rather than
  /// an arrival — the paper's *active expiration* path.
  uint64_t active_expirations() const override { return active_expirations_; }

  void AppendStats(OperatorStatList* out) const override;

  /// \brief Checkpoint the partial sequence, its anchored window
  /// deadline, and the terminal-event counters, so active expiration
  /// still fires at the right time after a restore.
  Status SaveState(BinaryEncoder* enc) const override;
  Status RestoreState(BinaryDecoder* dec) override;

 private:
  explicit ExceptionSeqOperator(ExceptionSeqConfig config);

  Result<bool> PassesArrivalFilter(size_t pos, const Tuple& tuple);
  Result<bool> PassesStarGate(size_t pos, const Tuple& tuple,
                              const Tuple& previous);
  Result<bool> PairwiseOkWithPartial(size_t pos, const Tuple& tuple);

  // Emit a terminal event at the partial's current level; `offender`
  // (optional) is bound at position `offender_pos`.
  Status Terminal(size_t level, const Tuple* offender, size_t offender_pos);

  // Window deadline for the current partial, if armed.
  void ArmDeadline();
  Status CheckExpiry(Timestamp now, bool from_heartbeat = false);

  Status StartOrLevelZero(size_t pos, const Tuple& tuple);
  Status AppendPosition(size_t pos, const Tuple& tuple);

  ExceptionSeqConfig config_;
  size_t n_;
  // One tuple group per filled position (size 1 unless starred).
  std::vector<std::vector<Tuple>> partial_;
  std::optional<Timestamp> deadline_;
  uint64_t exceptions_emitted_ = 0;
  uint64_t sequences_completed_ = 0;
  uint64_t level_transitions_ = 0;
  uint64_t window_expirations_ = 0;
  uint64_t active_expirations_ = 0;
  RowScratch scratch_;
};

}  // namespace eslev

#endif  // ESLEV_CEP_EXCEPTION_SEQ_OPERATOR_H_
