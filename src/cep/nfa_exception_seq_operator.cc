#include "cep/nfa_exception_seq_operator.h"

#include <algorithm>

namespace eslev {

Result<std::unique_ptr<NfaExceptionSeqOperator>> NfaExceptionSeqOperator::Make(
    ExceptionSeqConfig config) {
  // Same validation as ExceptionSeqOperator::Make.
  const size_t n = config.positions.size();
  if (n < 2) {
    return Status::Invalid("EXCEPTION_SEQ requires at least two positions");
  }
  if (config.positions.back().star) {
    return Status::NotImplemented(
        "a trailing star in EXCEPTION_SEQ never completes, so completion "
        "levels against it are undefined");
  }
  if (config.mode != PairingMode::kConsecutive &&
      config.mode != PairingMode::kRecent) {
    return Status::NotImplemented(
        "EXCEPTION_SEQ supports CONSECUTIVE (default) and RECENT modes");
  }
  if (config.window) {
    if (config.window->direction == WindowDirection::kPreceding) {
      return Status::NotImplemented(
          "EXCEPTION_SEQ windows must be FOLLOWING-anchored (a PRECEDING "
          "deadline is unknowable in advance)");
    }
    if (config.window->anchor >= n) {
      return Status::Invalid("window anchor out of range");
    }
  }
  if (config.arrival_filters.empty()) config.arrival_filters.resize(n);
  if (config.star_gates.empty()) config.star_gates.resize(n);
  if (config.arrival_filters.size() != n || config.star_gates.size() != n) {
    return Status::Invalid("filter/gate vectors must match position count");
  }
  for (const auto& c : config.pairwise) {
    if (c.pos_a >= c.pos_b || c.pos_b >= n) {
      return Status::Invalid("malformed pairwise constraint");
    }
  }
  for (const auto& p : config.positions) {
    if (p.negated) {
      return Status::NotImplemented(
          "EXCEPTION_SEQ positions cannot be negated");
    }
  }
  if (!config.out_schema || config.projection.empty()) {
    return Status::Invalid("EXCEPTION_SEQ operator requires a projection");
  }
  return std::unique_ptr<NfaExceptionSeqOperator>(
      new NfaExceptionSeqOperator(std::move(config)));
}

NfaExceptionSeqOperator::NfaExceptionSeqOperator(ExceptionSeqConfig config)
    : config_(std::move(config)),
      nfa_(CompileSeqNfa(config_.positions, config_.pairwise, config_.mode)),
      n_(config_.positions.size()),
      scratch_(n_) {}

Result<bool> NfaExceptionSeqOperator::PassesArrivalFilter(size_t pos,
                                                          const Tuple& tuple) {
  if (!config_.arrival_filters[pos]) return true;
  scratch_.Clear();
  scratch_.SetTuple(pos, &tuple);
  return EvalPredicate(*config_.arrival_filters[pos], scratch_.Row());
}

Result<bool> NfaExceptionSeqOperator::PassesStarGate(size_t pos,
                                                     const Tuple& tuple,
                                                     const Tuple& previous) {
  if (!config_.star_gates[pos]) return true;
  scratch_.Clear();
  scratch_.SetTuple(pos, &tuple);
  scratch_.SetPrevious(pos, &previous);
  return EvalPredicate(*config_.star_gates[pos], scratch_.Row());
}

Result<bool> NfaExceptionSeqOperator::PairwiseOkWithRun(size_t pos,
                                                        const Tuple& tuple) {
  for (const auto& c : config_.pairwise) {
    if (c.pos_b != pos || c.pos_a >= run_.size()) continue;
    scratch_.Clear();
    scratch_.SetTuple(c.pos_a, &run_[c.pos_a].back());
    if (config_.positions[c.pos_a].star) {
      scratch_.SetStarGroup(c.pos_a, &run_[c.pos_a]);
    }
    scratch_.SetTuple(c.pos_b, &tuple);
    ESLEV_ASSIGN_OR_RETURN(bool ok, EvalPredicate(*c.expr, scratch_.Row()));
    if (!ok) return false;
  }
  return true;
}

namespace {
bool LevelSatisfies(int64_t level, BinaryOp op, int64_t rhs) {
  switch (op) {
    case BinaryOp::kLt:
      return level < rhs;
    case BinaryOp::kLe:
      return level <= rhs;
    case BinaryOp::kGt:
      return level > rhs;
    case BinaryOp::kGe:
      return level >= rhs;
    case BinaryOp::kEq:
      return level == rhs;
    case BinaryOp::kNe:
      return level != rhs;
    default:
      return false;
  }
}
}  // namespace

Status NfaExceptionSeqOperator::Terminal(size_t level, const Tuple* offender,
                                         size_t offender_pos) {
  const bool completed = level == n_;
  if (completed) {
    ++sequences_completed_;
  }
  if (!LevelSatisfies(static_cast<int64_t>(level), config_.level_op,
                      config_.level_rhs)) {
    return Status::OK();
  }
  if (!completed) ++exceptions_emitted_;

  scratch_.Clear();
  Timestamp ts = 0;
  static const std::vector<Tuple> kEmptyGroup;
  for (size_t i = 0; i < n_; ++i) {
    if (config_.positions[i].star) scratch_.SetStarGroup(i, &kEmptyGroup);
  }
  for (size_t i = 0; i < level && i < run_.size(); ++i) {
    scratch_.SetTuple(i, &run_[i].back());
    if (config_.positions[i].star) {
      scratch_.SetStarGroup(i, &run_[i]);
    }
    ts = std::max(ts, run_[i].back().ts());
  }
  if (offender != nullptr) {
    scratch_.SetTuple(offender_pos, offender);
    ts = std::max(ts, offender->ts());
  }
  std::vector<Value> values;
  values.reserve(config_.projection.size());
  for (const auto& e : config_.projection) {
    ESLEV_ASSIGN_OR_RETURN(Value v, e->Eval(scratch_.Row()));
    values.push_back(std::move(v));
  }
  ESLEV_ASSIGN_OR_RETURN(Tuple out,
                         MakeTuple(config_.out_schema, std::move(values), ts));
  return Emit(out);
}

void NfaExceptionSeqOperator::ArmDeadline() {
  if (!config_.window || deadline_) return;
  const size_t anchor = config_.window->anchor;
  if (run_.size() > anchor) {
    deadline_ = run_[anchor].front().ts() + config_.window->length;
  }
}

Status NfaExceptionSeqOperator::CheckExpiry(Timestamp now,
                                            bool from_heartbeat) {
  if (!deadline_ || now <= *deadline_) return Status::OK();
  // Deadline state purge: the run expired incomplete (scenario 3).
  ++window_expirations_;
  if (from_heartbeat) ++active_expirations_;
  const size_t level = run_.size();
  ESLEV_RETURN_NOT_OK(Terminal(level, nullptr, 0));
  run_.clear();
  deadline_.reset();
  return Status::OK();
}

void NfaExceptionSeqOperator::AppendStats(OperatorStatList* out) const {
  out->push_back({"partial_level", static_cast<int64_t>(run_.size())});
  out->push_back(
      {"level_transitions", static_cast<int64_t>(level_transitions_)});
  out->push_back(
      {"window_expirations", static_cast<int64_t>(window_expirations_)});
  out->push_back(
      {"active_expirations", static_cast<int64_t>(active_expirations_)});
  out->push_back(
      {"exceptions_emitted", static_cast<int64_t>(exceptions_emitted_)});
  out->push_back(
      {"sequences_completed", static_cast<int64_t>(sequences_completed_)});
  out->push_back({"nfa_states", static_cast<int64_t>(nfa_.states.size())});
  out->push_back(
      {"nfa_transitions", static_cast<int64_t>(nfa_.transitions.size())});
  out->push_back({"nfa_live_runs", static_cast<int64_t>(run_.empty() ? 0 : 1)});
}

Status NfaExceptionSeqOperator::TakeEdge(size_t pos, const Tuple& tuple) {
  (void)pos;
  run_.push_back({tuple});
  ++level_transitions_;
  ArmDeadline();
  if (run_.size() == n_) {
    // Accepting state reached: level-n terminal, then the run retires.
    ESLEV_RETURN_NOT_OK(Terminal(n_, nullptr, 0));
    run_.clear();
    deadline_.reset();
  }
  return Status::OK();
}

Status NfaExceptionSeqOperator::StartOrLevelZero(size_t pos,
                                                 const Tuple& tuple) {
  run_.clear();
  deadline_.reset();
  if (pos == 0) {
    return TakeEdge(0, tuple);  // begin edge
  }
  // No begin edge matches: level-0 exception on the incoming tuple.
  return Terminal(0, &tuple, pos);
}

Status NfaExceptionSeqOperator::ProcessTuple(size_t port, const Tuple& tuple) {
  if (port >= n_) {
    return Status::ExecutionError("EXCEPTION_SEQ port out of range");
  }
  ESLEV_ASSIGN_OR_RETURN(bool pass, PassesArrivalFilter(port, tuple));
  if (!pass) return Status::OK();
  ESLEV_RETURN_NOT_OK(CheckExpiry(tuple.ts()));

  // Positions are never negated here, so the run's state index is its
  // level minus one and state_of_position is the identity.
  const size_t k = run_.size();

  // Loop edge on the current starred state.
  if (k > 0 && port == k - 1 && nfa_.states[k - 1].star) {
    ESLEV_ASSIGN_OR_RETURN(bool same_group,
                           PassesStarGate(port, tuple, run_[k - 1].back()));
    if (same_group) {
      ESLEV_ASSIGN_OR_RETURN(bool ok, PairwiseOkWithRun(port, tuple));
      if (ok) {
        run_[k - 1].push_back(tuple);
        return Status::OK();
      }
    }
    ESLEV_RETURN_NOT_OK(Terminal(k, &tuple, port));
    return StartOrLevelZero(port, tuple);
  }

  // Take edge into the next state.
  if (port == k) {
    ESLEV_ASSIGN_OR_RETURN(bool ok, PairwiseOkWithRun(port, tuple));
    if (ok) {
      return TakeEdge(port, tuple);
    }
  }

  // No edge matches: violation.
  if (k > 0) {
    if (config_.mode == PairingMode::kRecent && port < k) {
      // RECENT's run-selection policy: rewind to the repeated state (the
      // paper's (A,B)+B replace), raising the abandoned run's terminal.
      ESLEV_RETURN_NOT_OK(Terminal(k, &tuple, port));
      run_.resize(port);
      deadline_.reset();
      ESLEV_ASSIGN_OR_RETURN(bool ok, PairwiseOkWithRun(port, tuple));
      if (ok) {
        run_.push_back({tuple});
        ++level_transitions_;
        ArmDeadline();
      } else {
        return StartOrLevelZero(port, tuple);
      }
      return Status::OK();
    }
    ESLEV_RETURN_NOT_OK(Terminal(k, &tuple, port));
    return StartOrLevelZero(port, tuple);
  }
  return StartOrLevelZero(port, tuple);
}

Status NfaExceptionSeqOperator::ProcessHeartbeat(Timestamp now) {
  ESLEV_RETURN_NOT_OK(CheckExpiry(now, /*from_heartbeat=*/true));
  return EmitHeartbeat(now);
}

Status NfaExceptionSeqOperator::SaveState(BinaryEncoder* enc) const {
  enc->PutU8(static_cast<uint8_t>(SeqBackend::kNfa));
  enc->PutU64(exceptions_emitted_);
  enc->PutU64(sequences_completed_);
  enc->PutU64(level_transitions_);
  enc->PutU64(window_expirations_);
  enc->PutU64(active_expirations_);
  enc->PutBool(deadline_.has_value());
  if (deadline_) enc->PutI64(*deadline_);
  enc->PutU32(static_cast<uint32_t>(run_.size()));
  for (const std::vector<Tuple>& group : run_) {
    enc->PutU32(static_cast<uint32_t>(group.size()));
    for (const Tuple& t : group) enc->PutTuple(t);
  }
  return Status::OK();
}

Status NfaExceptionSeqOperator::RestoreState(BinaryDecoder* dec) {
  ESLEV_ASSIGN_OR_RETURN(uint8_t tag, dec->GetU8());
  ESLEV_RETURN_NOT_OK(
      CheckSeqCheckpointTag(tag, SeqBackend::kNfa, "EXCEPTION_SEQ"));
  ESLEV_ASSIGN_OR_RETURN(exceptions_emitted_, dec->GetU64());
  ESLEV_ASSIGN_OR_RETURN(sequences_completed_, dec->GetU64());
  ESLEV_ASSIGN_OR_RETURN(level_transitions_, dec->GetU64());
  ESLEV_ASSIGN_OR_RETURN(window_expirations_, dec->GetU64());
  ESLEV_ASSIGN_OR_RETURN(active_expirations_, dec->GetU64());
  ESLEV_ASSIGN_OR_RETURN(bool has_deadline, dec->GetBool());
  deadline_.reset();
  if (has_deadline) {
    ESLEV_ASSIGN_OR_RETURN(Timestamp d, dec->GetI64());
    deadline_ = d;
  }
  ESLEV_ASSIGN_OR_RETURN(uint32_t level, dec->GetU32());
  if (level > n_) {
    return Status::IoError(
        "EXCEPTION_SEQ checkpoint: partial level exceeds position count");
  }
  run_.clear();
  for (uint32_t i = 0; i < level; ++i) {
    ESLEV_ASSIGN_OR_RETURN(uint32_t ntuples, dec->GetU32());
    if (ntuples == 0) {
      return Status::IoError("EXCEPTION_SEQ checkpoint: empty position group");
    }
    std::vector<Tuple> group;
    group.reserve(ntuples);
    for (uint32_t j = 0; j < ntuples; ++j) {
      ESLEV_ASSIGN_OR_RETURN(Tuple t, dec->GetTuple());
      group.push_back(std::move(t));
    }
    run_.push_back(std::move(group));
  }
  return Status::OK();
}

}  // namespace eslev
