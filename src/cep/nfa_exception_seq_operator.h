// NfaExceptionSeqOperator: EXCEPTION_SEQ / CLEVEL_SEQ evaluated on the
// compiled automaton (DESIGN.md §14).
//
// Completion levels map directly onto NFA states: a partial at level k
// sits in state k-1, a take edge advances it, the loop edge on a starred
// state extends the current group, and any arrival without a matching
// edge is a violation (terminal event at the current level). The
// FOLLOWING-anchored window is a deadline attached to the active run;
// expiry — including the paper's *active expiration* via heartbeats —
// purges the run and raises the terminal at its level. RECENT's replace
// policy (the paper's (A,B)+B example) rewinds the run to the repeated
// state instead of killing it.
//
// Byte-identical to ExceptionSeqOperator by construction: both track one
// partial and classify arrivals with the same guards in the same order;
// only the bookkeeping differs (automaton states vs. position indices).

#ifndef ESLEV_CEP_NFA_EXCEPTION_SEQ_OPERATOR_H_
#define ESLEV_CEP_NFA_EXCEPTION_SEQ_OPERATOR_H_

#include <memory>
#include <optional>
#include <vector>

#include "cep/seq_config.h"
#include "cep/seq_nfa.h"
#include "cep/seq_operator_base.h"

namespace eslev {

class NfaExceptionSeqOperator : public ExceptionSeqOperatorBase {
 public:
  static Result<std::unique_ptr<NfaExceptionSeqOperator>> Make(
      ExceptionSeqConfig config);

  SeqBackend backend() const override { return SeqBackend::kNfa; }
  const ExceptionSeqConfig& config() const override { return config_; }

  /// \brief Port == position index.
  Status ProcessTuple(size_t port, const Tuple& tuple) override;
  /// \brief Active expiration on heartbeats.
  Status ProcessHeartbeat(Timestamp now) override;

  uint64_t exceptions_emitted() const override { return exceptions_emitted_; }
  uint64_t sequences_completed() const override {
    return sequences_completed_;
  }
  size_t partial_level() const override { return run_.size(); }
  uint64_t level_transitions() const override { return level_transitions_; }
  uint64_t window_expirations() const override { return window_expirations_; }
  uint64_t active_expirations() const override { return active_expirations_; }

  const SeqNfa& nfa() const { return nfa_; }

  void AppendStats(OperatorStatList* out) const override;

  Status SaveState(BinaryEncoder* enc) const override;
  Status RestoreState(BinaryDecoder* dec) override;

 private:
  explicit NfaExceptionSeqOperator(ExceptionSeqConfig config);

  Result<bool> PassesArrivalFilter(size_t pos, const Tuple& tuple);
  Result<bool> PassesStarGate(size_t pos, const Tuple& tuple,
                              const Tuple& previous);
  Result<bool> PairwiseOkWithRun(size_t pos, const Tuple& tuple);

  Status Terminal(size_t level, const Tuple* offender, size_t offender_pos);
  void ArmDeadline();
  Status CheckExpiry(Timestamp now, bool from_heartbeat = false);
  Status StartOrLevelZero(size_t pos, const Tuple& tuple);
  Status TakeEdge(size_t pos, const Tuple& tuple);

  ExceptionSeqConfig config_;
  SeqNfa nfa_;
  size_t n_;
  // The single active run: one tuple group per visited state (positions
  // are never negated here, so state index == position index).
  std::vector<std::vector<Tuple>> run_;
  std::optional<Timestamp> deadline_;
  uint64_t exceptions_emitted_ = 0;
  uint64_t sequences_completed_ = 0;
  uint64_t level_transitions_ = 0;
  uint64_t window_expirations_ = 0;
  uint64_t active_expirations_ = 0;
  RowScratch scratch_;
};

}  // namespace eslev

#endif  // ESLEV_CEP_NFA_EXCEPTION_SEQ_OPERATOR_H_
