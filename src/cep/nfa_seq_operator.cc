#include "cep/nfa_seq_operator.h"

#include <algorithm>

namespace eslev {

namespace {
constexpr uint32_t kNoParent = 0xffffffffu;
}  // namespace

Result<std::unique_ptr<NfaSeqOperator>> NfaSeqOperator::Make(
    SeqOperatorConfig config) {
  // Identical validation to SeqOperator::Make — the backends accept
  // exactly the same configurations.
  const size_t n = config.positions.size();
  if (n < 2) {
    return Status::Invalid("SEQ requires at least two positions");
  }
  if (config.arrival_filters.empty()) config.arrival_filters.resize(n);
  if (config.star_gates.empty()) config.star_gates.resize(n);
  if (config.arrival_filters.size() != n || config.star_gates.size() != n) {
    return Status::Invalid("filter/gate vectors must match position count");
  }
  if (config.window && config.window->anchor >= n) {
    return Status::Invalid("window anchor out of range");
  }
  size_t stars = 0;
  size_t matchable = 0;
  for (const auto& p : config.positions) {
    if (p.star) ++stars;
    if (p.star && p.negated) {
      return Status::Invalid("a SEQ argument cannot be both negated and "
                             "starred");
    }
    if (!p.negated) ++matchable;
  }
  if (config.positions.front().negated || config.positions.back().negated) {
    return Status::Invalid(
        "the first and last SEQ arguments cannot be negated (a negative "
        "event needs neighbours to bound its interval)");
  }
  if (matchable < 2) {
    return Status::Invalid("SEQ requires at least two non-negated "
                           "arguments");
  }
  if (config.per_tuple_star >= 0) {
    if (static_cast<size_t>(config.per_tuple_star) >= n ||
        !config.positions[config.per_tuple_star].star) {
      return Status::Invalid("per_tuple_star must name a starred position");
    }
    if (stars > 1) {
      return Status::Invalid(
          "multiple-return is only allowed with a single star argument "
          "(paper footnote 4)");
    }
  }
  for (const auto& c : config.pairwise) {
    if (c.pos_a >= c.pos_b || c.pos_b >= n) {
      return Status::Invalid("malformed pairwise constraint");
    }
  }
  if (!config.out_schema || config.projection.empty()) {
    return Status::Invalid("SEQ operator requires a projection");
  }
  return std::unique_ptr<NfaSeqOperator>(
      new NfaSeqOperator(std::move(config)));
}

NfaSeqOperator::NfaSeqOperator(SeqOperatorConfig config)
    : config_(std::move(config)),
      nfa_(CompileSeqNfa(config_.positions, config_.pairwise, config_.mode)),
      n_(config_.positions.size()),
      last_is_star_(config_.positions.back().star),
      recent_exact_purge_(config_.pairwise.empty()),
      pool_(n_),
      runs_(nfa_.states.empty() ? 0 : nfa_.states.size() - 1),
      scratch_(n_) {}

// ---------------------------------------------------------------------------
// Predicates (shared with the history matcher's semantics)
// ---------------------------------------------------------------------------

Result<bool> NfaSeqOperator::PassesArrivalFilter(size_t pos,
                                                 const Tuple& tuple) {
  if (!config_.arrival_filters[pos]) return true;
  scratch_.Clear();
  scratch_.SetTuple(pos, &tuple);
  return EvalPredicate(*config_.arrival_filters[pos], scratch_.Row());
}

Result<bool> NfaSeqOperator::PassesStarGate(size_t pos, const Tuple& tuple,
                                            const Tuple& previous) {
  if (!config_.star_gates[pos]) return true;
  scratch_.Clear();
  scratch_.SetTuple(pos, &tuple);
  scratch_.SetPrevious(pos, &previous);
  return EvalPredicate(*config_.star_gates[pos], scratch_.Row());
}

Result<bool> NfaSeqOperator::PassesPairwise(const PairwiseConstraint& c,
                                            const Group& ga, const Group& gb) {
  scratch_.Clear();
  scratch_.SetTuple(c.pos_a, &ga.tuples.back());
  scratch_.SetTuple(c.pos_b, &gb.tuples.back());
  if (config_.positions[c.pos_a].star) {
    scratch_.SetStarGroup(c.pos_a, &ga.tuples);
  }
  if (config_.positions[c.pos_b].star) {
    scratch_.SetStarGroup(c.pos_b, &gb.tuples);
  }
  return EvalPredicate(*c.expr, scratch_.Row());
}

bool NfaSeqOperator::WindowOk(size_t pos, const Group& group,
                              const std::vector<const Group*>& chosen) const {
  if (!config_.window) return true;
  const SeqWindow& w = *config_.window;
  const Group* anchor = pos == w.anchor ? &group : chosen[w.anchor];
  if (anchor == nullptr) return true;  // verified again at emission
  const bool preceding_side =
      w.direction == WindowDirection::kPreceding ||
      w.direction == WindowDirection::kPrecedingAndFollowing;
  const bool following_side =
      w.direction == WindowDirection::kFollowing ||
      w.direction == WindowDirection::kPrecedingAndFollowing;
  if (preceding_side && pos <= w.anchor &&
      group.first_ts() < anchor->last_ts() - w.length) {
    return false;
  }
  if (following_side && pos >= w.anchor &&
      group.last_ts() > anchor->first_ts() + w.length) {
    return false;
  }
  return true;
}

bool NfaSeqOperator::WindowVisibleInSearch(size_t pos) const {
  // Which WindowOk(pos, ...) checks the history matcher evaluates
  // *during* its search; the rest are deferred to EmitMatch, where a
  // failure rejects silently (and, for RECENT/CHRONICLE, ends the
  // trigger without trying another combination). CHRONICLE searches
  // forward with the trigger pre-bound, so an anchor is in scope once
  // it is at or before the current position — or is the trigger itself.
  // RECENT searches backward, so only anchors at or after the current
  // position are bound. UNRESTRICTED full-verifies every combination,
  // making the full check equivalent. Run selection and run-extension
  // pruning must use exactly this visibility to stay byte-identical.
  if (!config_.window) return true;
  const size_t a = config_.window->anchor;
  switch (config_.mode) {
    case PairingMode::kChronicle:
      return pos != n_ - 1 && (a <= pos || a == n_ - 1);
    case PairingMode::kRecent:
      return pos != n_ - 1 && a >= pos;
    default:
      return true;
  }
}

const NfaSeqOperator::Group* NfaSeqOperator::NextChosen(
    const std::vector<const Group*>& chosen, size_t pos) const {
  for (size_t i = pos + 1; i < n_; ++i) {
    if (chosen[i] != nullptr) return chosen[i];
  }
  return nullptr;
}

const NfaSeqOperator::Group* NfaSeqOperator::PrevChosen(
    const std::vector<const Group*>& chosen, int pos) const {
  for (int i = pos - 1; i >= 0; --i) {
    if (chosen[i] != nullptr) return chosen[i];
  }
  return nullptr;
}

bool NfaSeqOperator::NegationOk(
    const std::vector<const Group*>& chosen) const {
  for (size_t i = 0; i < n_; ++i) {
    if (!config_.positions[i].negated) continue;
    const Group* left = PrevChosen(chosen, static_cast<int>(i));
    const Group* right = NextChosen(chosen, i);
    if (left == nullptr || right == nullptr) continue;  // unreachable
    for (const GroupPtr& g : pool_[i]) {
      if (Before(left->last_ts(), left->last_seq, g->first_ts(),
                 g->first_seq) &&
          Before(g->last_ts(), g->last_seq, right->first_ts(),
                 right->first_seq)) {
        return false;  // the forbidden event occurred in between
      }
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Arrival handling
// ---------------------------------------------------------------------------

Status NfaSeqOperator::ProcessTuple(size_t port, const Tuple& tuple) {
  if (port >= n_) {
    return Status::ExecutionError("SEQ port out of range");
  }
  const uint64_t seq = arrival_seq_++;
  ESLEV_ASSIGN_OR_RETURN(bool pass, PassesArrivalFilter(port, tuple));
  if (!pass) return Status::OK();
  return ProcessArrival(port, tuple, seq);
}

Status NfaSeqOperator::ProcessBatch(size_t port, const TupleBatch& batch) {
  if (port >= n_) {
    return Status::ExecutionError("SEQ port out of range");
  }
  batch_selection_.assign(batch.size(), 1);
  if (config_.arrival_filters[port]) {
    for (size_t i = 0; i < batch.size(); ++i) {
      ESLEV_ASSIGN_OR_RETURN(bool pass, PassesArrivalFilter(port, batch[i]));
      if (!pass) batch_selection_[i] = 0;
    }
  }
  // Run maintenance is order-dependent: per tuple in arrival order, with
  // emissions collected into one output batch. Rejected tuples still
  // consume an arrival sequence number, exactly as in ProcessTuple.
  TupleBatch out;
  batch_out_ = &out;
  Status st = Status::OK();
  for (size_t i = 0; i < batch.size(); ++i) {
    const uint64_t seq = arrival_seq_++;
    if (!batch_selection_[i]) continue;
    st = ProcessArrival(port, batch[i], seq);
    if (!st.ok()) break;
  }
  batch_out_ = nullptr;
  ESLEV_RETURN_NOT_OK(st);
  return EmitBatch(out);
}

Status NfaSeqOperator::EmitOut(const Tuple& tuple) {
  if (batch_out_ != nullptr) {
    batch_out_->Add(tuple);
    return Status::OK();
  }
  return Emit(tuple);
}

Status NfaSeqOperator::ProcessArrival(size_t port, const Tuple& tuple,
                                      uint64_t seq) {
  EvictByWindow(tuple.ts());

  if (config_.positions[port].negated &&
      config_.mode != PairingMode::kConsecutive) {
    // Forbidden-event evidence: pooled for interval checks only; it
    // drives no transition.
    bool created = false;
    return StoreArrival(port, tuple, seq, &created).status();
  }

  if (config_.mode == PairingMode::kConsecutive) {
    return HandleConsecutive(port, tuple, seq);
  }

  if (port == n_ - 1) {
    if (last_is_star_) {
      // Trailing star: the accepting state loops; emit once per arrival
      // with the accumulated group as trigger.
      bool created = false;
      ESLEV_ASSIGN_OR_RETURN(GroupPtr group,
                             StoreArrival(port, tuple, seq, &created));
      switch (config_.mode) {
        case PairingMode::kRecent:
          ESLEV_RETURN_NOT_OK(MatchRecent(*group));
          break;
        case PairingMode::kChronicle:
          ESLEV_RETURN_NOT_OK(MatchChronicle(*group));
          break;
        default:
          ESLEV_RETURN_NOT_OK(MatchUnrestricted(*group));
          break;
      }
      return Status::OK();
    }
    Group trigger;
    trigger.tuples.push_back(tuple);
    trigger.first_seq = trigger.last_seq = seq;
    switch (config_.mode) {
      case PairingMode::kRecent:
        return MatchRecent(trigger);
      case PairingMode::kChronicle:
        return MatchChronicle(trigger);
      default:
        return MatchUnrestricted(trigger);
    }
  }

  bool created = false;
  ESLEV_ASSIGN_OR_RETURN(GroupPtr group,
                         StoreArrival(port, tuple, seq, &created));
  if (created) {
    const size_t state = nfa_.state_of_position[port];
    ESLEV_RETURN_NOT_OK(ExtendRuns(state, group));
  }
  if (config_.mode == PairingMode::kRecent && recent_exact_purge_) {
    PurgeRecent();
  }
  return Status::OK();
}

Result<NfaSeqOperator::GroupPtr> NfaSeqOperator::StoreArrival(
    size_t pos, const Tuple& tuple, uint64_t seq, bool* created) {
  ++tuples_stored_;
  auto& dq = pool_[pos];
  if (config_.positions[pos].star) {
    if (!dq.empty() && dq.back()->open) {
      Group& group = *dq.back();
      ESLEV_ASSIGN_OR_RETURN(
          bool same_group, PassesStarGate(pos, tuple, group.tuples.back()));
      if (same_group) {
        group.tuples.push_back(tuple);
        group.last_seq = seq;
        *created = false;
        return dq.back();
      }
      group.open = false;  // gap: close (Figure 1(b))
    }
    auto fresh = std::make_shared<Group>();
    fresh->tuples.push_back(tuple);
    fresh->first_seq = fresh->last_seq = seq;
    fresh->open = true;
    fresh->id = next_group_id_++;
    dq.push_back(fresh);
    *created = true;
    return fresh;
  }
  auto g = std::make_shared<Group>();
  g->tuples.push_back(tuple);
  g->first_seq = g->last_seq = seq;
  g->id = next_group_id_++;
  dq.push_back(g);
  *created = true;
  return g;
}

Status NfaSeqOperator::ExtendRuns(size_t state, const GroupPtr& group) {
  if (state == SeqNfa::kNoState || state >= runs_.size()) {
    return Status::OK();
  }
  if (state == 0) {
    // Begin edge: the arrival filter already passed; everything else is
    // verified at acceptance.
    auto node = std::make_unique<RunNode>();
    node->group = group;
    node->state = 0;
    runs_[0].push_back(std::move(node));
    ++runs_created_;
    return Status::OK();
  }
  // Take edge: extend each compatible run at state-1, in creation order
  // (keeps the leaf list in the history matcher's enumeration order).
  // Prune only on guards whose failure is permanent:
  //  * sequence order — group extents only grow at the tail;
  //  * window bounds — anchor.last grows, entry.first is fixed;
  //  * pairwise constraints with both endpoint groups closed.
  // Everything else waits for acceptance-time verification.
  const NfaTransition& take = nfa_.transitions[state];
  std::vector<const Group*> chosen(n_, nullptr);
  for (std::unique_ptr<RunNode>& parent : runs_[state - 1]) {
    const Group& prev = *parent->group;
    if (!Before(prev.last_ts(), prev.last_seq, group->first_ts(),
                group->first_seq)) {
      continue;
    }
    std::fill(chosen.begin(), chosen.end(), nullptr);
    for (const RunNode* node = parent.get(); node != nullptr;
         node = node->parent) {
      chosen[nfa_.states[node->state].position] = node->group.get();
    }
    chosen[nfa_.states[state].position] = group.get();
    bool ok = true;
    for (size_t pos = 0; pos < n_ && ok; ++pos) {
      if (chosen[pos] == nullptr) continue;
      if (!WindowVisibleInSearch(pos)) continue;
      if (!WindowOk(pos, *chosen[pos], chosen)) ok = false;
    }
    if (!ok) continue;
    for (size_t ci : take.pairwise) {
      const PairwiseConstraint& c = config_.pairwise[ci];
      const Group* ga = chosen[c.pos_a];
      const Group* gb = chosen[c.pos_b];
      if (ga == nullptr || gb == nullptr) continue;
      if (ga->open || gb->open) continue;  // contents may still change
      ESLEV_ASSIGN_OR_RETURN(bool pw, PassesPairwise(c, *ga, *gb));
      if (!pw) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    auto node = std::make_unique<RunNode>();
    node->parent = parent.get();
    node->group = group;
    node->state = state;
    ++parent->children;
    if (parent->children >= 2) ++shared_prefixes_;
    runs_[state].push_back(std::move(node));
    ++runs_created_;
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Acceptance: run-selection policies per pairing mode
// ---------------------------------------------------------------------------

void NfaSeqOperator::CollectChosen(const RunNode* leaf, const Group& trigger,
                                   std::vector<const Group*>* chosen) const {
  std::fill(chosen->begin(), chosen->end(), nullptr);
  (*chosen)[nfa_.states[nfa_.accept_state()].position] = &trigger;
  for (const RunNode* node = leaf; node != nullptr; node = node->parent) {
    (*chosen)[nfa_.states[node->state].position] = node->group.get();
  }
}

Result<bool> NfaSeqOperator::ValidChosen(
    const std::vector<const Group*>& chosen) {
  // Sequence order along adjacent bound positions.
  const Group* prev = nullptr;
  for (size_t pos = 0; pos < n_; ++pos) {
    if (chosen[pos] == nullptr) continue;
    if (prev != nullptr &&
        !Before(prev->last_ts(), prev->last_seq, chosen[pos]->first_ts(),
                chosen[pos]->first_seq)) {
      return false;
    }
    prev = chosen[pos];
  }
  // Windows — but only the checks the history DFS would have made at
  // this point; deferred ones are left to EmitMatch's silent reject.
  for (size_t pos = 0; pos < n_; ++pos) {
    if (chosen[pos] == nullptr) continue;
    if (!WindowVisibleInSearch(pos)) continue;
    if (!WindowOk(pos, *chosen[pos], chosen)) return false;
  }
  // Pairwise constraints, now against final group contents.
  for (const PairwiseConstraint& c : config_.pairwise) {
    const Group* ga = chosen[c.pos_a];
    const Group* gb = chosen[c.pos_b];
    if (ga == nullptr || gb == nullptr) continue;
    ESLEV_ASSIGN_OR_RETURN(bool ok, PassesPairwise(c, *ga, *gb));
    if (!ok) return false;
  }
  if (!NegationOk(chosen)) return false;
  return true;
}

Status NfaSeqOperator::MatchUnrestricted(const Group& trigger) {
  if (runs_.empty()) return Status::OK();
  std::vector<const Group*> chosen(n_, nullptr);
  // Leaf creation order == ascending enumeration order of the history
  // matcher (most-significant index at the pre-accepting position).
  auto& leaves = runs_[runs_.size() - 1];
  for (size_t i = 0; i < leaves.size(); ++i) {
    CollectChosen(leaves[i].get(), trigger, &chosen);
    ESLEV_ASSIGN_OR_RETURN(bool ok, ValidChosen(chosen));
    if (!ok) continue;
    ESLEV_RETURN_NOT_OK(EmitMatch(chosen));
  }
  return Status::OK();
}

Status NfaSeqOperator::MatchRecent(const Group& trigger) {
  if (runs_.empty()) return Status::OK();
  std::vector<const Group*> chosen(n_, nullptr);
  // Reverse creation order == the history matcher's most-recent-first
  // DFS with backtracking; the first fully valid run wins.
  auto& leaves = runs_[runs_.size() - 1];
  for (size_t i = leaves.size(); i-- > 0;) {
    CollectChosen(leaves[i].get(), trigger, &chosen);
    ESLEV_ASSIGN_OR_RETURN(bool ok, ValidChosen(chosen));
    if (!ok) continue;
    // Final checks may still reject inside EmitMatch; per RECENT, no
    // earlier combination is tried (mirrors the history DFS, which
    // stops on the first combination passing the search guards).
    return EmitMatch(chosen);
  }
  return Status::OK();
}

Status NfaSeqOperator::MatchChronicle(const Group& trigger) {
  if (runs_.empty()) return Status::OK();
  std::vector<const Group*> chosen(n_, nullptr);
  // The earliest qualifying combination == the valid leaf whose chain of
  // group creation ids is root-first lexicographically smallest.
  auto& leaves = runs_[runs_.size() - 1];
  const RunNode* best = nullptr;
  std::vector<uint64_t> best_key;
  std::vector<uint64_t> key;
  for (size_t i = 0; i < leaves.size(); ++i) {
    CollectChosen(leaves[i].get(), trigger, &chosen);
    ESLEV_ASSIGN_OR_RETURN(bool ok, ValidChosen(chosen));
    if (!ok) continue;
    key.clear();
    for (const RunNode* node = leaves[i].get(); node != nullptr;
         node = node->parent) {
      key.push_back(node->group->id);
    }
    std::reverse(key.begin(), key.end());  // root first
    if (best == nullptr || key < best_key) {
      best = leaves[i].get();
      best_key = key;
    }
  }
  if (best == nullptr) return Status::OK();

  CollectChosen(best, trigger, &chosen);
  const uint64_t emitted_before = matches_emitted_;
  ESLEV_RETURN_NOT_OK(EmitMatch(chosen));
  if (matches_emitted_ == emitted_before) {
    // Final checks rejected the earliest combination: per CHRONICLE, the
    // tuples are not consumed and no event is produced for this trigger.
    return Status::OK();
  }
  // Consume: each tuple participates in at most one event.
  for (const RunNode* node = best; node != nullptr; node = node->parent) {
    Group* g = node->group.get();
    g->dead = true;
    auto& dq = pool_[nfa_.states[node->state].position];
    for (auto it = dq.begin(); it != dq.end(); ++it) {
      if (it->get() == g) {
        tuples_purged_ += g->tuples.size();
        dq.erase(it);
        break;
      }
    }
  }
  if (last_is_star_ && !pool_[n_ - 1].empty()) {
    // A consumed trailing group cannot participate again.
    for (const GroupPtr& g : pool_[n_ - 1]) {
      tuples_purged_ += g->tuples.size();
      g->dead = true;
    }
    pool_[n_ - 1].clear();
  }
  PruneDeadRuns();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// CONSECUTIVE: the automaton degenerates to one adjacent run
// ---------------------------------------------------------------------------

Status NfaSeqOperator::HandleConsecutive(size_t pos, const Tuple& tuple,
                                         uint64_t seq) {
  auto purge_run = [&]() {
    for (const Group& g : run_) tuples_purged_ += g.tuples.size();
    run_.clear();
  };
  auto start_new_run = [&]() {
    purge_run();
    if (pos == 0) {
      Group g;
      g.tuples.push_back(tuple);
      g.first_seq = g.last_seq = seq;
      g.open = config_.positions[0].star;
      ++tuples_stored_;
      run_.push_back(std::move(g));
    }
  };

  if (config_.positions[pos].negated) {
    // The forbidden event occurred on the joint history: any active run
    // is no longer a run of adjacent tuples.
    purge_run();
    return Status::OK();
  }

  if (run_.empty()) {
    start_new_run();
    return Status::OK();
  }

  const size_t cur = run_.size() - 1;
  // Same-position arrival on an open star group: the loop edge.
  if (pos == cur && config_.positions[cur].star && run_[cur].open) {
    ESLEV_ASSIGN_OR_RETURN(
        bool same_group,
        PassesStarGate(pos, tuple, run_[cur].tuples.back()));
    if (same_group) {
      run_[cur].tuples.push_back(tuple);
      run_[cur].last_seq = seq;
      ++tuples_stored_;
      if (cur == n_ - 1) {
        // Trailing star completes on every arrival.
        std::vector<const Group*> chosen(n_);
        for (size_t i = 0; i < n_; ++i) chosen[i] = &run_[i];
        ESLEV_RETURN_NOT_OK(EmitMatch(chosen));
      }
      return Status::OK();
    }
    start_new_run();
    return Status::OK();
  }

  // The take edge into the expected next position.
  if (pos == cur + 1) {
    const Group& prev = run_[cur];
    Group cand;
    cand.tuples.push_back(tuple);
    cand.first_seq = cand.last_seq = seq;
    cand.open = config_.positions[pos].star;
    bool ok = Before(prev.last_ts(), prev.last_seq, cand.first_ts(),
                     cand.first_seq);
    if (ok) {
      std::vector<const Group*> chosen(n_, nullptr);
      for (size_t i = 0; i < run_.size(); ++i) chosen[i] = &run_[i];
      if (!WindowOk(pos, cand, chosen)) ok = false;
      if (ok) {
        for (const PairwiseConstraint& c : config_.pairwise) {
          const Group* ga = nullptr;
          const Group* gb = nullptr;
          if (c.pos_a == pos && chosen[c.pos_b] != nullptr) {
            ga = &cand;
            gb = chosen[c.pos_b];
          } else if (c.pos_b == pos && chosen[c.pos_a] != nullptr) {
            ga = chosen[c.pos_a];
            gb = &cand;
          } else {
            continue;
          }
          ESLEV_ASSIGN_OR_RETURN(bool pw, PassesPairwise(c, *ga, *gb));
          if (!pw) {
            ok = false;
            break;
          }
        }
      }
    }
    if (!ok) {
      start_new_run();
      return Status::OK();
    }
    ++tuples_stored_;
    run_.push_back(std::move(cand));
    if (pos == n_ - 1) {
      std::vector<const Group*> chosen(n_);
      for (size_t i = 0; i < n_; ++i) chosen[i] = &run_[i];
      ESLEV_RETURN_NOT_OK(EmitMatch(chosen));
      if (!config_.positions[pos].star) {
        purge_run();  // completed; trailing star keeps accumulating
      }
    }
    return Status::OK();
  }

  // No ignore edges under CONSECUTIVE: any other arrival kills the run.
  start_new_run();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Emission
// ---------------------------------------------------------------------------

Status NfaSeqOperator::EmitMatch(const std::vector<const Group*>& chosen) {
  // Full window verification (extension-time prunes may have lacked the
  // anchor binding). Negated positions carry no group.
  for (size_t pos = 0; pos < n_; ++pos) {
    if (chosen[pos] == nullptr) continue;
    if (!WindowOk(pos, *chosen[pos], chosen)) return Status::OK();
  }
  if (!NegationOk(chosen)) return Status::OK();
  scratch_.Clear();
  for (size_t pos = 0; pos < n_; ++pos) {
    if (chosen[pos] == nullptr) continue;
    scratch_.SetTuple(pos, &chosen[pos]->tuples.back());
    if (config_.positions[pos].star) {
      scratch_.SetStarGroup(pos, &chosen[pos]->tuples);
    }
  }
  for (const auto& check : config_.final_checks) {
    ESLEV_ASSIGN_OR_RETURN(bool ok, EvalPredicate(*check, scratch_.Row()));
    if (!ok) return Status::OK();
  }
  ++matches_emitted_;
  const Timestamp out_ts = chosen[n_ - 1]->last_ts();

  auto project_and_emit = [&]() -> Status {
    std::vector<Value> values;
    values.reserve(config_.projection.size());
    for (const auto& e : config_.projection) {
      ESLEV_ASSIGN_OR_RETURN(Value v, e->Eval(scratch_.Row()));
      values.push_back(std::move(v));
    }
    ESLEV_ASSIGN_OR_RETURN(
        Tuple out, MakeTuple(config_.out_schema, std::move(values), out_ts));
    return EmitOut(out);
  };

  if (config_.per_tuple_star >= 0) {
    const size_t star_pos = static_cast<size_t>(config_.per_tuple_star);
    for (const Tuple& member : chosen[star_pos]->tuples) {
      scratch_.SetTuple(star_pos, &member);
      ESLEV_RETURN_NOT_OK(project_and_emit());
    }
    return Status::OK();
  }
  return project_and_emit();
}

// ---------------------------------------------------------------------------
// Purging: pool rules identical to the history matcher, then run sweep
// ---------------------------------------------------------------------------

void NfaSeqOperator::EvictByWindow(Timestamp now) {
  if (!config_.window) return;
  const SeqWindow& w = *config_.window;
  const bool preceding_last =
      (w.direction == WindowDirection::kPreceding ||
       w.direction == WindowDirection::kPrecedingAndFollowing) &&
      w.anchor == n_ - 1;
  if (!preceding_last) return;
  bool any_dead = false;
  for (auto& dq : pool_) {
    while (!dq.empty() && !dq.front()->open &&
           dq.front()->last_ts() < now - w.length) {
      tuples_purged_ += dq.front()->tuples.size();
      dq.front()->dead = true;
      any_dead = true;
      dq.pop_front();
    }
  }
  if (any_dead) PruneDeadRuns();
}

void NfaSeqOperator::PurgeRecent() {
  // Exact retained-set computation, identical to the history matcher
  // (see SeqOperator::PurgeRecent for the derivation).
  std::vector<std::vector<size_t>> keep(n_);
  std::vector<const Group*> bounds;
  for (int pos = static_cast<int>(n_) - 2; pos >= 0; --pos) {
    auto& dq = pool_[pos];
    if (config_.positions[pos].negated) {
      std::vector<size_t> all(dq.size());
      for (size_t i = 0; i < dq.size(); ++i) all[i] = i;
      keep[pos] = all;
      continue;
    }
    std::vector<size_t> retained;
    if (!dq.empty()) {
      retained.push_back(dq.size() - 1);
      for (const Group* b : bounds) {
        for (size_t i = dq.size(); i-- > 0;) {
          if (Before(dq[i]->last_ts(), dq[i]->last_seq, b->first_ts(),
                     b->first_seq)) {
            retained.push_back(i);
            break;
          }
        }
      }
      for (size_t i = 0; i < dq.size(); ++i) {
        if (dq[i]->open) retained.push_back(i);
      }
      std::sort(retained.begin(), retained.end());
      retained.erase(std::unique(retained.begin(), retained.end()),
                     retained.end());
    }
    keep[pos] = retained;
    bounds.clear();
    for (size_t idx : retained) bounds.push_back(dq[idx].get());
  }
  bool any_dead = false;
  for (size_t pos = 0; pos + 1 < n_; ++pos) {
    auto& dq = pool_[pos];
    std::deque<GroupPtr> next;
    size_t dropped = 0;
    for (const GroupPtr& g : dq) dropped += g->tuples.size();
    for (size_t idx : keep[pos]) next.push_back(dq[idx]);
    for (const GroupPtr& g : next) dropped -= g->tuples.size();
    if (next.size() != dq.size()) {
      for (const GroupPtr& g : dq) g->dead = true;
      for (const GroupPtr& g : next) g->dead = false;
      any_dead = true;
    }
    tuples_purged_ += dropped;
    dq = std::move(next);
  }
  if (any_dead) PruneDeadRuns();
}

void NfaSeqOperator::PruneDeadRuns() {
  // Mark first (parents live in lower states, so their flags are final
  // by the time children read them), then sweep.
  for (auto& state_runs : runs_) {
    for (auto& node : state_runs) {
      node->dead = node->group->dead ||
                   (node->parent != nullptr && node->parent->dead);
    }
  }
  for (auto& state_runs : runs_) {
    auto it = std::remove_if(
        state_runs.begin(), state_runs.end(),
        [](const std::unique_ptr<RunNode>& n) { return n->dead; });
    runs_purged_ += static_cast<uint64_t>(state_runs.end() - it);
    state_runs.erase(it, state_runs.end());
  }
}

Status NfaSeqOperator::ProcessHeartbeat(Timestamp now) {
  EvictByWindow(now);
  return EmitHeartbeat(now);
}

// ---------------------------------------------------------------------------
// Observability
// ---------------------------------------------------------------------------

size_t NfaSeqOperator::history_size() const {
  size_t total = 0;
  for (const auto& dq : pool_) {
    for (const GroupPtr& g : dq) total += g->tuples.size();
  }
  for (const Group& g : run_) total += g.tuples.size();
  return total;
}

size_t NfaSeqOperator::open_star_length() const {
  size_t total = 0;
  for (const auto& dq : pool_) {
    for (const GroupPtr& g : dq) {
      if (g->open) total += g->tuples.size();
    }
  }
  for (const Group& g : run_) {
    if (g.open) total += g.tuples.size();
  }
  return total;
}

size_t NfaSeqOperator::live_runs() const {
  size_t total = 0;
  for (const auto& state_runs : runs_) total += state_runs.size();
  return total;
}

void NfaSeqOperator::AppendStats(OperatorStatList* out) const {
  out->push_back({"retained_history", static_cast<int64_t>(history_size())});
  out->push_back({"tuples_stored", static_cast<int64_t>(tuples_stored_)});
  out->push_back({"tuples_purged", static_cast<int64_t>(tuples_purged_)});
  out->push_back({"matches", static_cast<int64_t>(matches_emitted_)});
  out->push_back(
      {"open_star_length", static_cast<int64_t>(open_star_length())});
  out->push_back({"nfa_states", static_cast<int64_t>(nfa_.states.size())});
  out->push_back(
      {"nfa_transitions", static_cast<int64_t>(nfa_.transitions.size())});
  out->push_back({"nfa_live_runs", static_cast<int64_t>(live_runs())});
  out->push_back({"nfa_runs_created", static_cast<int64_t>(runs_created_)});
  out->push_back({"nfa_runs_purged", static_cast<int64_t>(runs_purged_)});
  out->push_back(
      {"nfa_shared_prefixes", static_cast<int64_t>(shared_prefixes_)});
}

// ---------------------------------------------------------------------------
// Checkpointing
// ---------------------------------------------------------------------------

Status NfaSeqOperator::SaveState(BinaryEncoder* enc) const {
  enc->PutU8(static_cast<uint8_t>(SeqBackend::kNfa));
  enc->PutU64(arrival_seq_);
  enc->PutU64(matches_emitted_);
  enc->PutU64(tuples_stored_);
  enc->PutU64(tuples_purged_);
  enc->PutU64(next_group_id_);
  enc->PutU64(runs_created_);
  enc->PutU64(runs_purged_);
  enc->PutU64(shared_prefixes_);
  const auto put_group = [enc](const Group& g) {
    enc->PutU32(static_cast<uint32_t>(g.tuples.size()));
    for (const Tuple& t : g.tuples) enc->PutTuple(t);
    enc->PutU64(g.first_seq);
    enc->PutU64(g.last_seq);
    enc->PutBool(g.open);
    enc->PutU64(g.id);
  };
  enc->PutU32(static_cast<uint32_t>(pool_.size()));
  for (const std::deque<GroupPtr>& position : pool_) {
    enc->PutU32(static_cast<uint32_t>(position.size()));
    for (const GroupPtr& g : position) put_group(*g);
  }
  // Runs serialize as (parent index, pool index) pairs: a run's group is
  // always a pool group, and a live child's parent is always a live node
  // in the previous state's list.
  enc->PutU32(static_cast<uint32_t>(runs_.size()));
  for (size_t s = 0; s < runs_.size(); ++s) {
    const auto& state_runs = runs_[s];
    enc->PutU32(static_cast<uint32_t>(state_runs.size()));
    const auto& dq = pool_[nfa_.states[s].position];
    for (const auto& node : state_runs) {
      uint32_t parent_idx = kNoParent;
      if (node->parent != nullptr) {
        const auto& parents = runs_[s - 1];
        for (size_t i = 0; i < parents.size(); ++i) {
          if (parents[i].get() == node->parent) {
            parent_idx = static_cast<uint32_t>(i);
            break;
          }
        }
        if (parent_idx == kNoParent) {
          return Status::IoError("SEQ NFA checkpoint: dangling parent run");
        }
      }
      uint32_t group_idx = kNoParent;
      for (size_t i = 0; i < dq.size(); ++i) {
        if (dq[i].get() == node->group.get()) {
          group_idx = static_cast<uint32_t>(i);
          break;
        }
      }
      if (group_idx == kNoParent) {
        return Status::IoError("SEQ NFA checkpoint: run group not pooled");
      }
      enc->PutU32(parent_idx);
      enc->PutU32(group_idx);
    }
  }
  enc->PutU32(static_cast<uint32_t>(run_.size()));
  for (const Group& g : run_) put_group(g);
  return Status::OK();
}

Status NfaSeqOperator::RestoreState(BinaryDecoder* dec) {
  ESLEV_ASSIGN_OR_RETURN(uint8_t tag, dec->GetU8());
  ESLEV_RETURN_NOT_OK(CheckSeqCheckpointTag(tag, SeqBackend::kNfa, "SEQ"));
  const auto get_group = [dec](Group* g) -> Status {
    ESLEV_ASSIGN_OR_RETURN(uint32_t ntuples, dec->GetU32());
    if (ntuples == 0) {
      return Status::IoError("SEQ checkpoint: empty history entry");
    }
    g->tuples.reserve(ntuples);
    for (uint32_t i = 0; i < ntuples; ++i) {
      ESLEV_ASSIGN_OR_RETURN(Tuple t, dec->GetTuple());
      g->tuples.push_back(std::move(t));
    }
    ESLEV_ASSIGN_OR_RETURN(g->first_seq, dec->GetU64());
    ESLEV_ASSIGN_OR_RETURN(g->last_seq, dec->GetU64());
    ESLEV_ASSIGN_OR_RETURN(g->open, dec->GetBool());
    ESLEV_ASSIGN_OR_RETURN(g->id, dec->GetU64());
    return Status::OK();
  };
  ESLEV_ASSIGN_OR_RETURN(arrival_seq_, dec->GetU64());
  ESLEV_ASSIGN_OR_RETURN(matches_emitted_, dec->GetU64());
  ESLEV_ASSIGN_OR_RETURN(tuples_stored_, dec->GetU64());
  ESLEV_ASSIGN_OR_RETURN(tuples_purged_, dec->GetU64());
  ESLEV_ASSIGN_OR_RETURN(next_group_id_, dec->GetU64());
  ESLEV_ASSIGN_OR_RETURN(runs_created_, dec->GetU64());
  ESLEV_ASSIGN_OR_RETURN(runs_purged_, dec->GetU64());
  ESLEV_ASSIGN_OR_RETURN(shared_prefixes_, dec->GetU64());
  ESLEV_ASSIGN_OR_RETURN(uint32_t npos, dec->GetU32());
  if (npos != n_) {
    return Status::IoError("SEQ checkpoint: position count mismatch (file " +
                           std::to_string(npos) + ", plan " +
                           std::to_string(n_) + ")");
  }
  for (std::deque<GroupPtr>& position : pool_) {
    position.clear();
    ESLEV_ASSIGN_OR_RETURN(uint32_t ngroups, dec->GetU32());
    for (uint32_t i = 0; i < ngroups; ++i) {
      auto g = std::make_shared<Group>();
      ESLEV_RETURN_NOT_OK(get_group(g.get()));
      position.push_back(std::move(g));
    }
  }
  ESLEV_ASSIGN_OR_RETURN(uint32_t nstates, dec->GetU32());
  if (nstates != runs_.size()) {
    return Status::IoError("SEQ NFA checkpoint: state count mismatch");
  }
  for (auto& state_runs : runs_) state_runs.clear();
  for (size_t s = 0; s < runs_.size(); ++s) {
    ESLEV_ASSIGN_OR_RETURN(uint32_t nruns, dec->GetU32());
    const auto& dq = pool_[nfa_.states[s].position];
    for (uint32_t i = 0; i < nruns; ++i) {
      ESLEV_ASSIGN_OR_RETURN(uint32_t parent_idx, dec->GetU32());
      ESLEV_ASSIGN_OR_RETURN(uint32_t group_idx, dec->GetU32());
      auto node = std::make_unique<RunNode>();
      node->state = s;
      if (parent_idx != kNoParent) {
        if (s == 0 || parent_idx >= runs_[s - 1].size()) {
          return Status::IoError("SEQ NFA checkpoint: bad parent index");
        }
        node->parent = runs_[s - 1][parent_idx].get();
        ++node->parent->children;
      } else if (s != 0) {
        return Status::IoError("SEQ NFA checkpoint: missing parent index");
      }
      if (group_idx >= dq.size()) {
        return Status::IoError("SEQ NFA checkpoint: bad group index");
      }
      node->group = dq[group_idx];
      runs_[s].push_back(std::move(node));
    }
  }
  run_.clear();
  ESLEV_ASSIGN_OR_RETURN(uint32_t nrun, dec->GetU32());
  if (nrun > n_) {
    return Status::IoError("SEQ checkpoint: run longer than position count");
  }
  for (uint32_t i = 0; i < nrun; ++i) {
    Group g;
    ESLEV_RETURN_NOT_OK(get_group(&g));
    run_.push_back(std::move(g));
  }
  return Status::OK();
}

}  // namespace eslev
