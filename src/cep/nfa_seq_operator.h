// NfaSeqOperator: SEQ evaluated on a compiled NFA with prefix-sharing
// runs (DESIGN.md §14, after SASE).
//
// The history matcher (SeqOperator) re-enumerates every qualifying
// combination from scratch on each trigger. This backend instead keeps
// *runs* — partial matches threaded through the compiled automaton —
// and extends them incrementally as tuples arrive:
//
//   * Tuple groups (star groups, single tuples) live in per-position
//     pools identical to the history matcher's deques, so the retained
//     tuple set — and every purge rule over it (window eviction, RECENT
//     exact pruning, CHRONICLE consumption) — is byte-for-byte the same.
//   * A run is a node in a prefix-sharing tree: node(state s, group G)
//     with a parent at state s-1. All combinations sharing a prefix
//     share the parent chain, so prefix work is done once.
//   * When a group is created at state s, it extends every compatible
//     run at state s-1. Extension prunes only on *permanently* failed
//     guards (sequence order, window bounds, and pairwise constraints
//     whose endpoint groups are both closed — open star groups still
//     mutate, so their pairwise checks wait). Acceptance re-verifies
//     every guard against the groups' final contents, which keeps the
//     emitted set identical to the history matcher's.
//   * The four pairing modes are run-selection policies over the leaf
//     list at the pre-accepting state: UNRESTRICTED emits every valid
//     leaf in creation order (== the history enumeration order), RECENT
//     picks the newest valid leaf, CHRONICLE the root-first smallest
//     valid leaf (consuming its groups), and CONSECUTIVE degenerates to
//     the single adjacent run on the joint history.
//   * Window/deadline expiry purges pool groups exactly like the
//     history matcher, then drops every run that references a dead
//     group (state purging).

#ifndef ESLEV_CEP_NFA_SEQ_OPERATOR_H_
#define ESLEV_CEP_NFA_SEQ_OPERATOR_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "cep/seq_config.h"
#include "cep/seq_nfa.h"
#include "cep/seq_operator_base.h"

namespace eslev {

class NfaSeqOperator : public SeqOperatorBase {
 public:
  /// \brief Validates the configuration (same rules as SeqOperator::Make)
  /// and compiles the automaton.
  static Result<std::unique_ptr<NfaSeqOperator>> Make(SeqOperatorConfig config);

  SeqBackend backend() const override { return SeqBackend::kNfa; }
  const SeqOperatorConfig& config() const override { return config_; }

  /// \brief Port == position index.
  Status ProcessTuple(size_t port, const Tuple& tuple) override;
  /// \brief Native batch path: columnar arrival-filter pre-pass, then
  /// per-tuple in-order run maintenance (DESIGN.md §13).
  Status ProcessBatch(size_t port, const TupleBatch& batch) override;
  Status ProcessHeartbeat(Timestamp now) override;

  size_t history_size() const override;
  uint64_t matches_emitted() const override { return matches_emitted_; }
  uint64_t tuples_stored() const override { return tuples_stored_; }
  uint64_t tuples_purged() const override { return tuples_purged_; }
  size_t open_star_length() const override;

  // ---- NFA-specific observability (seq.nfa.* metrics) ---------------------

  const SeqNfa& nfa() const { return nfa_; }
  /// \brief Partial-match runs currently alive across all states.
  size_t live_runs() const;
  uint64_t runs_created() const { return runs_created_; }
  /// \brief Runs dropped because a referenced group was purged.
  uint64_t runs_purged() const { return runs_purged_; }
  /// \brief Times a new run reused an existing parent prefix instead of
  /// recomputing it (increments from a parent's second child onward).
  uint64_t shared_prefixes() const { return shared_prefixes_; }

  void AppendStats(OperatorStatList* out) const override;

  /// \brief Checkpoint pools, the run tree (by pool index), the
  /// CONSECUTIVE run, and all counters, tagged with the backend byte.
  Status SaveState(BinaryEncoder* enc) const override;
  Status RestoreState(BinaryDecoder* dec) override;

 private:
  // A tuple group: one tuple for plain positions, a star group for
  // starred ones. Shared by the position pool and any run referencing it.
  struct Group {
    std::vector<Tuple> tuples;
    uint64_t first_seq = 0;
    uint64_t last_seq = 0;
    bool open = false;   // star group still accumulating
    uint64_t id = 0;     // creation order, unique across positions
    bool dead = false;   // purged from the pool; runs must drop it

    Timestamp first_ts() const { return tuples.front().ts(); }
    Timestamp last_ts() const { return tuples.back().ts(); }
  };
  using GroupPtr = std::shared_ptr<Group>;

  // A prefix-sharing run node at state `state`, binding `group`.
  struct RunNode {
    RunNode* parent = nullptr;  // node at state-1; null at state 0
    GroupPtr group;
    size_t state = 0;
    uint32_t children = 0;
    bool dead = false;  // marked during purge sweeps
  };

  explicit NfaSeqOperator(SeqOperatorConfig config);

  static bool Before(Timestamp ts_a, uint64_t seq_a, Timestamp ts_b,
                     uint64_t seq_b) {
    return ts_a < ts_b || (ts_a == ts_b && seq_a < seq_b);
  }

  Result<bool> PassesArrivalFilter(size_t pos, const Tuple& tuple);
  Result<bool> PassesStarGate(size_t pos, const Tuple& tuple,
                              const Tuple& previous);
  Result<bool> PassesPairwise(const PairwiseConstraint& c, const Group& ga,
                              const Group& gb);
  bool WindowOk(size_t pos, const Group& group,
                const std::vector<const Group*>& chosen) const;
  bool WindowVisibleInSearch(size_t pos) const;
  bool NegationOk(const std::vector<const Group*>& chosen) const;
  const Group* NextChosen(const std::vector<const Group*>& chosen,
                          size_t pos) const;
  const Group* PrevChosen(const std::vector<const Group*>& chosen,
                          int pos) const;

  Status ProcessArrival(size_t port, const Tuple& tuple, uint64_t seq);
  // Returns the affected group; `created` reports whether a fresh group
  // started (as opposed to extending an open star group).
  Result<GroupPtr> StoreArrival(size_t pos, const Tuple& tuple, uint64_t seq,
                                bool* created);
  // Extend all compatible runs at state-1 with the fresh group at
  // `state` (or create the root run at state 0).
  Status ExtendRuns(size_t state, const GroupPtr& group);

  // Fill `chosen` (by position) from the leaf's parent chain + trigger.
  void CollectChosen(const RunNode* leaf, const Group& trigger,
                     std::vector<const Group*>* chosen) const;
  // Full acceptance check: sequence order, windows, pairwise
  // constraints, negation — everything except final checks, which
  // EmitMatch applies (mirroring the history matcher's search guards).
  Result<bool> ValidChosen(const std::vector<const Group*>& chosen);
  Status EmitMatch(const std::vector<const Group*>& chosen);
  Status EmitOut(const Tuple& tuple);

  Status MatchUnrestricted(const Group& trigger);
  Status MatchRecent(const Group& trigger);
  Status MatchChronicle(const Group& trigger);
  Status HandleConsecutive(size_t pos, const Tuple& tuple, uint64_t seq);

  void EvictByWindow(Timestamp now);
  void PurgeRecent();
  // Drop every run whose chain references a dead group.
  void PruneDeadRuns();

  SeqOperatorConfig config_;
  SeqNfa nfa_;
  size_t n_;  // number of positions
  bool last_is_star_;
  bool recent_exact_purge_;

  // Per-position group pools — the same retained set as the history
  // matcher's deques.
  std::vector<std::deque<GroupPtr>> pool_;
  // Per-state run lists in creation order; only non-accepting states
  // hold runs (the accepting state triggers immediately).
  std::vector<std::vector<std::unique_ptr<RunNode>>> runs_;
  // CONSECUTIVE: the current partial run (pools and runs_ unused).
  std::vector<Group> run_;

  uint64_t arrival_seq_ = 0;
  uint64_t matches_emitted_ = 0;
  uint64_t tuples_stored_ = 0;
  uint64_t tuples_purged_ = 0;
  uint64_t next_group_id_ = 0;
  uint64_t runs_created_ = 0;
  uint64_t runs_purged_ = 0;
  uint64_t shared_prefixes_ = 0;
  RowScratch scratch_;
  TupleBatch* batch_out_ = nullptr;
  std::vector<unsigned char> batch_selection_;
};

}  // namespace eslev

#endif  // ESLEV_CEP_NFA_SEQ_OPERATOR_H_
