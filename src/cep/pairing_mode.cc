#include "cep/pairing_mode.h"

#include "common/string_util.h"

namespace eslev {

const char* PairingModeToString(PairingMode mode) {
  switch (mode) {
    case PairingMode::kUnrestricted:
      return "UNRESTRICTED";
    case PairingMode::kRecent:
      return "RECENT";
    case PairingMode::kChronicle:
      return "CHRONICLE";
    case PairingMode::kConsecutive:
      return "CONSECUTIVE";
  }
  return "?";
}

Result<PairingMode> ParsePairingMode(const std::string& name) {
  const std::string u = AsciiToUpper(name);
  if (u == "UNRESTRICTED") return PairingMode::kUnrestricted;
  if (u == "RECENT") return PairingMode::kRecent;
  if (u == "CHRONICLE") return PairingMode::kChronicle;
  if (u == "CONSECUTIVE") return PairingMode::kConsecutive;
  return Status::ParseError("unknown tuple pairing mode: " + name);
}

}  // namespace eslev
