// Tuple Pairing Modes (paper §3.1.1): event-operator modifiers that
// restrict which tuple combinations form events and license purging of
// tuple history. Modeled after Snoop's event consumption modes.

#ifndef ESLEV_CEP_PAIRING_MODE_H_
#define ESLEV_CEP_PAIRING_MODE_H_

#include <string>

#include "common/result.h"

namespace eslev {

/// \brief How SEQ pairs tuples across its argument streams.
enum class PairingMode : int {
  /// All time-ordered combinations form events (default).
  kUnrestricted = 0,
  /// Match only the most recent qualifying tuple on each earlier stream.
  kRecent,
  /// Match the earliest qualifying tuples; each tuple participates in at
  /// most one event and is consumed on match.
  kChronicle,
  /// Tuples must be adjacent on the joint tuple history of all
  /// participating streams.
  kConsecutive,
};

/// \brief Keyword name as it appears in the MODE clause.
const char* PairingModeToString(PairingMode mode);

/// \brief Parse a MODE keyword (case-insensitive).
Result<PairingMode> ParsePairingMode(const std::string& name);

}  // namespace eslev

#endif  // ESLEV_CEP_PAIRING_MODE_H_
