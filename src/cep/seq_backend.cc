#include "cep/seq_backend.h"

#include "common/env.h"
#include "common/string_util.h"

namespace eslev {

const char* SeqBackendToString(SeqBackend backend) {
  switch (backend) {
    case SeqBackend::kHistory:
      return "history";
    case SeqBackend::kNfa:
      return "nfa";
  }
  return "history";
}

Result<SeqBackend> ParseSeqBackend(const std::string& name) {
  const std::string lowered = AsciiToLower(name);
  if (lowered == "history") return SeqBackend::kHistory;
  if (lowered == "nfa") return SeqBackend::kNfa;
  return Status::Invalid("unknown SEQ backend '" + name +
                         "'; accepted values are 'history', 'nfa'");
}

Result<SeqBackend> ResolveSeqBackend(SeqBackend configured) {
  ESLEV_ASSIGN_OR_RETURN(
      std::optional<size_t> choice,
      GetEnvChoice(kSeqBackendEnvVar, {"history", "nfa"}));
  if (!choice.has_value()) return configured;
  return *choice == 0 ? SeqBackend::kHistory : SeqBackend::kNfa;
}

Status CheckSeqCheckpointTag(uint8_t tag, SeqBackend expected,
                             const char* operator_name) {
  if (tag != static_cast<uint8_t>(SeqBackend::kHistory) &&
      tag != static_cast<uint8_t>(SeqBackend::kNfa)) {
    return Status::IoError(std::string(operator_name) +
                           " checkpoint: unknown backend tag " +
                           std::to_string(static_cast<int>(tag)));
  }
  if (tag != static_cast<uint8_t>(expected)) {
    const SeqBackend written = static_cast<SeqBackend>(tag);
    return Status::IoError(
        std::string(operator_name) + " checkpoint was written by the '" +
        SeqBackendToString(written) + "' backend but this engine runs '" +
        SeqBackendToString(expected) +
        "'; restore with ESLEV_SEQ_BACKEND=" + SeqBackendToString(written) +
        " or re-checkpoint");
  }
  return Status::OK();
}

}  // namespace eslev
