// Sequence-matcher backend selection (DESIGN.md §14).
//
// Two interchangeable engines evaluate SEQ / EXCEPTION_SEQ predicates:
//   * history — the original joint-tuple-history matcher (DESIGN.md §5),
//   * nfa     — the SASE-style compiled automaton with shared
//               partial-match runs (DESIGN.md §14).
// Both are byte-identical in output (proven by the seq_backend
// differential property suite); they differ in how much intermediate
// matching work is retained and re-done. The backend is chosen per
// engine via EngineOptions::seq_backend, overridable by the
// ESLEV_SEQ_BACKEND environment variable.

#ifndef ESLEV_CEP_SEQ_BACKEND_H_
#define ESLEV_CEP_SEQ_BACKEND_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace eslev {

/// \brief Which matcher implementation executes sequence predicates.
enum class SeqBackend : int {
  /// Joint tuple history, enumerated per trigger (DESIGN.md §5).
  kHistory = 0,
  /// Compiled NFA with prefix-sharing runs (DESIGN.md §14).
  kNfa = 1,
};

/// \brief Spelling as accepted by ESLEV_SEQ_BACKEND ("history" / "nfa").
const char* SeqBackendToString(SeqBackend backend);

/// \brief Parse a backend name (case-insensitive).
Result<SeqBackend> ParseSeqBackend(const std::string& name);

/// \brief The backend knob: ESLEV_SEQ_BACKEND overrides `configured`
/// when set. Malformed values are rejected with the accepted spellings
/// (validated through common/env.h, never silently ignored).
Result<SeqBackend> ResolveSeqBackend(SeqBackend configured);

/// \brief Name of the backend environment variable (tests, docs).
inline constexpr const char* kSeqBackendEnvVar = "ESLEV_SEQ_BACKEND";

/// \brief Every SEQ-family operator state blob starts with one tag byte
/// naming the backend that wrote it (the numeric SeqBackend value).
/// Restore validates the tag before reading anything else, so a
/// checkpoint taken on one backend is cleanly rejected by the other
/// instead of being misread as the wrong layout.
Status CheckSeqCheckpointTag(uint8_t tag, SeqBackend expected,
                             const char* operator_name);

}  // namespace eslev

#endif  // ESLEV_CEP_SEQ_BACKEND_H_
