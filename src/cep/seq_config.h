// Shared configuration types for the temporal sequence operators
// (SEQ, EXCEPTION_SEQ, CLEVEL_SEQ — paper §3.1).

#ifndef ESLEV_CEP_SEQ_CONFIG_H_
#define ESLEV_CEP_SEQ_CONFIG_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cep/pairing_mode.h"
#include "expr/bound_expr.h"
#include "sql/ast.h"
#include "types/schema.h"

namespace eslev {

/// \brief One argument position of a sequence operator. Position index ==
/// binder slot == operator input port.
///
/// A negated position (`SEQ(A, !B, C)`) contributes no tuple to matches;
/// instead, a match is rejected when any qualifying tuple of that stream
/// arrived strictly between its neighbouring matched positions.
struct SeqPosition {
  std::string alias;
  SchemaPtr schema;
  bool star = false;
  bool negated = false;
};

/// \brief A WHERE conjunct referencing exactly two positions, used to
/// qualify candidate pairings during matching (e.g. `C1.tagid=C4.tagid`).
struct PairwiseConstraint {
  size_t pos_a = 0;  // earlier position
  size_t pos_b = 0;  // later position (bound first during matching)
  BoundExprPtr expr;
};

/// \brief Resolved window for a sequence operator: `OVER [len PRECEDING
/// Ei]` bounds positions at or before the anchor to `anchor.ts - len`;
/// FOLLOWING bounds positions at or after the anchor to `anchor.ts + len`.
struct SeqWindow {
  Duration length = 0;
  WindowDirection direction = WindowDirection::kPreceding;
  size_t anchor = 0;  // position index
};

/// \brief Full configuration of a SeqOperator.
struct SeqOperatorConfig {
  std::vector<SeqPosition> positions;
  PairingMode mode = PairingMode::kUnrestricted;
  std::optional<SeqWindow> window;

  /// Per-position unary conjuncts; arrivals failing them are ignored.
  std::vector<BoundExprPtr> arrival_filters;  // size == positions, may be null
  /// Conjuncts over two positions, checked while pairing.
  std::vector<PairwiseConstraint> pairwise;
  /// Per-position star gates (conjuncts with `.previous.`): an arriving
  /// tuple failing the gate closes the open group and starts a new one.
  std::vector<BoundExprPtr> star_gates;  // size == positions, may be null
  /// Remaining conjuncts, checked on complete matches.
  std::vector<BoundExprPtr> final_checks;

  /// Output row: expressions over the position slots (+ star groups).
  std::vector<BoundExprPtr> projection;
  SchemaPtr out_schema;

  /// When >= 0, emit one output row per tuple of this starred position
  /// (the paper's multiple-return star queries, footnote 4).
  int per_tuple_star = -1;
};

/// \brief Configuration of an ExceptionSeqOperator. Levels: a terminal
/// event carries completion level k == number of positions completed;
/// exceptions have k < n, a completed sequence has k == n.
///
/// Star positions are supported everywhere except the final position
/// (the paper allows "repeating star sequences" in EXCEPTION_SEQ but a
/// trailing star has no completion point to level against): a starred
/// position accepts one or more tuples, gated by its star gate; a gate
/// failure, like any wrong tuple, is a violation.
struct ExceptionSeqConfig {
  std::vector<SeqPosition> positions;
  /// CONSECUTIVE (default, the paper's workflow example) or RECENT
  /// (the paper's replacement example).
  PairingMode mode = PairingMode::kConsecutive;
  std::optional<SeqWindow> window;  // FOLLOWING windows define deadlines

  std::vector<BoundExprPtr> arrival_filters;
  std::vector<BoundExprPtr> star_gates;  // size == positions, may be null
  std::vector<PairwiseConstraint> pairwise;

  std::vector<BoundExprPtr> projection;
  SchemaPtr out_schema;

  /// Emit a terminal event when the level satisfies this comparison
  /// (lowered from `CLEVEL_SEQ(...) <op> k`; EXCEPTION_SEQ means `< n`).
  BinaryOp level_op = BinaryOp::kLt;
  int64_t level_rhs = 0;  // set to n for EXCEPTION_SEQ
};

}  // namespace eslev

#endif  // ESLEV_CEP_SEQ_CONFIG_H_
