// Backend dispatch for the sequence operators (DESIGN.md §14).

#include "cep/exception_seq_operator.h"
#include "cep/nfa_exception_seq_operator.h"
#include "cep/nfa_seq_operator.h"
#include "cep/seq_operator.h"
#include "cep/seq_operator_base.h"

namespace eslev {

Result<std::unique_ptr<SeqOperatorBase>> MakeSeqOperator(
    SeqOperatorConfig config, SeqBackend backend) {
  switch (backend) {
    case SeqBackend::kHistory: {
      ESLEV_ASSIGN_OR_RETURN(std::unique_ptr<SeqOperator> op,
                             SeqOperator::Make(std::move(config)));
      return std::unique_ptr<SeqOperatorBase>(std::move(op));
    }
    case SeqBackend::kNfa: {
      ESLEV_ASSIGN_OR_RETURN(std::unique_ptr<NfaSeqOperator> op,
                             NfaSeqOperator::Make(std::move(config)));
      return std::unique_ptr<SeqOperatorBase>(std::move(op));
    }
  }
  return Status::Invalid("unknown SEQ backend");
}

Result<std::unique_ptr<ExceptionSeqOperatorBase>> MakeExceptionSeqOperator(
    ExceptionSeqConfig config, SeqBackend backend) {
  switch (backend) {
    case SeqBackend::kHistory: {
      ESLEV_ASSIGN_OR_RETURN(std::unique_ptr<ExceptionSeqOperator> op,
                             ExceptionSeqOperator::Make(std::move(config)));
      return std::unique_ptr<ExceptionSeqOperatorBase>(std::move(op));
    }
    case SeqBackend::kNfa: {
      ESLEV_ASSIGN_OR_RETURN(
          std::unique_ptr<NfaExceptionSeqOperator> op,
          NfaExceptionSeqOperator::Make(std::move(config)));
      return std::unique_ptr<ExceptionSeqOperatorBase>(std::move(op));
    }
  }
  return Status::Invalid("unknown EXCEPTION_SEQ backend");
}

}  // namespace eslev
