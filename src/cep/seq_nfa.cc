#include "cep/seq_nfa.h"

namespace eslev {

std::string SeqNfa::Describe() const {
  size_t begin = 0, take = 0, loop = 0, ignore = 0;
  for (const NfaTransition& t : transitions) {
    switch (t.kind) {
      case NfaEdgeKind::kBegin:
        ++begin;
        break;
      case NfaEdgeKind::kTake:
        ++take;
        break;
      case NfaEdgeKind::kLoop:
        ++loop;
        break;
      case NfaEdgeKind::kIgnore:
        ++ignore;
        break;
    }
  }
  std::string out = std::to_string(states.size()) + " states, " +
                    std::to_string(transitions.size()) + " transitions (" +
                    std::to_string(begin) + " begin, " + std::to_string(take) +
                    " take";
  if (loop > 0) out += ", " + std::to_string(loop) + " loop";
  if (ignore > 0) out += ", " + std::to_string(ignore) + " ignore";
  out += ")";
  return out;
}

SeqNfa CompileSeqNfa(const std::vector<SeqPosition>& positions,
                     const std::vector<PairwiseConstraint>& pairwise,
                     PairingMode mode) {
  SeqNfa nfa;
  nfa.num_positions = positions.size();
  nfa.state_of_position.assign(positions.size(), SeqNfa::kNoState);

  // States: one per matchable position, in sequence order.
  for (size_t pos = 0; pos < positions.size(); ++pos) {
    if (positions[pos].negated) continue;
    nfa.state_of_position[pos] = nfa.states.size();
    NfaState st;
    st.position = pos;
    st.star = positions[pos].star;
    nfa.states.push_back(st);
  }
  if (!nfa.states.empty()) nfa.states.back().accepting = true;

  // The take edge into state s carries every pairwise constraint whose
  // later endpoint is state s's position and whose earlier endpoint is a
  // matchable position (bound by then); run extension checks them as
  // soon as both ends are closed, acceptance re-checks all of them.
  auto pairwise_bound_at = [&](size_t pos) {
    std::vector<size_t> out;
    for (size_t i = 0; i < pairwise.size(); ++i) {
      if (pairwise[i].pos_b == pos &&
          nfa.state_of_position[pairwise[i].pos_a] != SeqNfa::kNoState) {
        out.push_back(i);
      }
    }
    return out;
  };

  size_t prev_pos = 0;
  for (size_t s = 0; s < nfa.states.size(); ++s) {
    const size_t pos = nfa.states[s].position;
    NfaTransition t;
    t.to_state = s;
    t.position = pos;
    if (s == 0) {
      t.kind = NfaEdgeKind::kBegin;
      t.from_state = 0;
    } else {
      t.kind = NfaEdgeKind::kTake;
      t.from_state = s - 1;
      t.pairwise = pairwise_bound_at(pos);
      // Negated positions strictly between the adjacent matchable ones
      // become this edge's forbidden band.
      for (size_t p = prev_pos + 1; p < pos; ++p) {
        if (positions[p].negated) t.forbidden.push_back(p);
      }
    }
    nfa.transitions.push_back(std::move(t));
    prev_pos = pos;
  }

  // Star self-loops, guarded by the position's star gate at runtime.
  for (size_t s = 0; s < nfa.states.size(); ++s) {
    if (!nfa.states[s].star) continue;
    NfaTransition t;
    t.kind = NfaEdgeKind::kLoop;
    t.from_state = s;
    t.to_state = s;
    t.position = nfa.states[s].position;
    nfa.transitions.push_back(std::move(t));
  }

  // Skip-till-match modes ignore unrelated arrivals (one self-edge per
  // non-accepting state); CONSECUTIVE requires adjacency on the joint
  // history, so any unexpected arrival is fatal and no ignore edges
  // exist.
  if (mode != PairingMode::kConsecutive) {
    for (size_t s = 0; s + 1 < nfa.states.size(); ++s) {
      NfaTransition t;
      t.kind = NfaEdgeKind::kIgnore;
      t.from_state = s;
      t.to_state = s;
      t.position = nfa.states[s].position;
      nfa.transitions.push_back(std::move(t));
    }
  }
  return nfa;
}

}  // namespace eslev
