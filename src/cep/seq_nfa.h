// SeqNfa: compilation of sequence predicates to a finite automaton
// (DESIGN.md §14, after SASE's pattern-to-NFA translation).
//
// A SEQ / EXCEPTION_SEQ spec compiles to a linear automaton with one
// state per *matchable* (non-negated) position. Edges:
//   * begin  — entering state 0 on the first position's stream;
//   * take   — advancing state s-1 -> s on state s's stream, carrying
//              every pairwise constraint whose endpoints are both bound
//              once s is (checked during run extension);
//   * loop   — a self-edge on starred states, guarded by the position's
//              star gate (`.previous.` conjuncts);
//   * ignore — a self-edge consuming unrelated arrivals. Present for
//              the skip-till-match pairing modes (UNRESTRICTED, RECENT,
//              CHRONICLE); absent under CONSECUTIVE, where any
//              non-matching arrival on the joint history kills the run.
// Negated positions contribute no state: they compile to a forbidden
// band on the take edge that crosses them, checked as interval evidence
// at acceptance time.
//
// The compiled automaton is shared by both the SEQ and EXCEPTION_SEQ
// NFA runtimes, and its state/transition counts appear in EXPLAIN so
// plans can be golden-tested structurally.

#ifndef ESLEV_CEP_SEQ_NFA_H_
#define ESLEV_CEP_SEQ_NFA_H_

#include <cstddef>
#include <string>
#include <vector>

#include "cep/seq_config.h"

namespace eslev {

enum class NfaEdgeKind : int {
  kBegin = 0,
  kTake = 1,
  kLoop = 2,
  kIgnore = 3,
};

/// \brief One compiled edge. `position` is the operator input port whose
/// arrivals fire it (ignore edges fire on every other port).
struct NfaTransition {
  NfaEdgeKind kind = NfaEdgeKind::kTake;
  size_t from_state = 0;
  size_t to_state = 0;
  size_t position = 0;
  /// Indices into SeqOperatorConfig::pairwise of the constraints whose
  /// later endpoint binds on this edge (both endpoints matchable).
  std::vector<size_t> pairwise;
  /// Negated positions crossed by this take edge (forbidden band).
  std::vector<size_t> forbidden;
};

/// \brief One state, binding one matchable position.
struct NfaState {
  size_t position = 0;  // original position index (input port)
  bool star = false;
  bool accepting = false;
};

struct SeqNfa {
  std::vector<NfaState> states;
  std::vector<NfaTransition> transitions;
  /// position index -> state index, or kNoState for negated positions.
  std::vector<size_t> state_of_position;
  size_t num_positions = 0;

  static constexpr size_t kNoState = static_cast<size_t>(-1);

  size_t accept_state() const { return states.size() - 1; }

  /// \brief Compact structural description, e.g.
  /// "3 states, 5 transitions (1 begin, 2 take, 1 loop, 1 ignore)".
  std::string Describe() const;
};

/// \brief Compile a validated SEQ configuration. The config must have
/// already passed SeqOperator-style validation (>= 2 matchable
/// positions, no negated first/last position).
SeqNfa CompileSeqNfa(const std::vector<SeqPosition>& positions,
                     const std::vector<PairwiseConstraint>& pairwise,
                     PairingMode mode);

}  // namespace eslev

#endif  // ESLEV_CEP_SEQ_NFA_H_
