#include "cep/seq_operator.h"

#include <algorithm>
#include <functional>

namespace eslev {

Result<std::unique_ptr<SeqOperator>> SeqOperator::Make(
    SeqOperatorConfig config) {
  const size_t n = config.positions.size();
  if (n < 2) {
    return Status::Invalid("SEQ requires at least two positions");
  }
  if (config.arrival_filters.empty()) config.arrival_filters.resize(n);
  if (config.star_gates.empty()) config.star_gates.resize(n);
  if (config.arrival_filters.size() != n || config.star_gates.size() != n) {
    return Status::Invalid("filter/gate vectors must match position count");
  }
  if (config.window && config.window->anchor >= n) {
    return Status::Invalid("window anchor out of range");
  }
  size_t stars = 0;
  size_t matchable = 0;
  for (const auto& p : config.positions) {
    if (p.star) ++stars;
    if (p.star && p.negated) {
      return Status::Invalid("a SEQ argument cannot be both negated and "
                             "starred");
    }
    if (!p.negated) ++matchable;
  }
  if (config.positions.front().negated || config.positions.back().negated) {
    return Status::Invalid(
        "the first and last SEQ arguments cannot be negated (a negative "
        "event needs neighbours to bound its interval)");
  }
  if (matchable < 2) {
    return Status::Invalid("SEQ requires at least two non-negated "
                           "arguments");
  }
  if (config.mode == PairingMode::kConsecutive) {
    // Adjacency on the joint history already implies nothing occurred in
    // between, so negation is redundant there; supported anyway via the
    // run-interruption rule in HandleConsecutive.
  }
  if (config.per_tuple_star >= 0) {
    if (static_cast<size_t>(config.per_tuple_star) >= n ||
        !config.positions[config.per_tuple_star].star) {
      return Status::Invalid("per_tuple_star must name a starred position");
    }
    if (stars > 1) {
      return Status::Invalid(
          "multiple-return is only allowed with a single star argument "
          "(paper footnote 4)");
    }
  }
  for (const auto& c : config.pairwise) {
    if (c.pos_a >= c.pos_b || c.pos_b >= n) {
      return Status::Invalid("malformed pairwise constraint");
    }
  }
  if (!config.out_schema || config.projection.empty()) {
    return Status::Invalid("SEQ operator requires a projection");
  }
  return std::unique_ptr<SeqOperator>(new SeqOperator(std::move(config)));
}

SeqOperator::SeqOperator(SeqOperatorConfig config)
    : config_(std::move(config)),
      n_(config_.positions.size()),
      last_is_star_(config_.positions.back().star),
      recent_exact_purge_(config_.pairwise.empty()),
      history_(n_),
      scratch_(n_) {}

const SeqOperator::Entry* SeqOperator::NextChosen(
    const std::vector<const Entry*>& chosen, size_t pos) const {
  for (size_t i = pos + 1; i < n_; ++i) {
    if (chosen[i] != nullptr) return chosen[i];
  }
  return nullptr;
}

const SeqOperator::Entry* SeqOperator::PrevChosen(
    const std::vector<const Entry*>& chosen, int pos) const {
  for (int i = pos - 1; i >= 0; --i) {
    if (chosen[i] != nullptr) return chosen[i];
  }
  return nullptr;
}

bool SeqOperator::NegationOk(const std::vector<const Entry*>& chosen) const {
  for (size_t i = 0; i < n_; ++i) {
    if (!config_.positions[i].negated) continue;
    const Entry* left = PrevChosen(chosen, static_cast<int>(i));
    const Entry* right = NextChosen(chosen, i);
    if (left == nullptr || right == nullptr) continue;  // unreachable
    for (const Entry& e : history_[i]) {
      if (Before(left->last_ts(), left->last_seq, e.first_ts(),
                 e.first_seq) &&
          Before(e.last_ts(), e.last_seq, right->first_ts(),
                 right->first_seq)) {
        return false;  // the forbidden event occurred in between
      }
    }
  }
  return true;
}

size_t SeqOperator::history_size() const {
  size_t total = 0;
  for (const auto& dq : history_) {
    for (const auto& e : dq) total += e.tuples.size();
  }
  for (const auto& e : run_) total += e.tuples.size();
  return total;
}

Result<bool> SeqOperator::PassesArrivalFilter(size_t pos, const Tuple& tuple) {
  if (!config_.arrival_filters[pos]) return true;
  scratch_.Clear();
  scratch_.SetTuple(pos, &tuple);
  return EvalPredicate(*config_.arrival_filters[pos], scratch_.Row());
}

Result<bool> SeqOperator::PassesStarGate(size_t pos, const Tuple& tuple,
                                         const Tuple& previous) {
  if (!config_.star_gates[pos]) return true;
  scratch_.Clear();
  scratch_.SetTuple(pos, &tuple);
  scratch_.SetPrevious(pos, &previous);
  return EvalPredicate(*config_.star_gates[pos], scratch_.Row());
}

Result<bool> SeqOperator::PassesPairwise(const PairwiseConstraint& c,
                                         const Entry& ea, const Entry& eb) {
  scratch_.Clear();
  scratch_.SetTuple(c.pos_a, &ea.tuples.back());
  scratch_.SetTuple(c.pos_b, &eb.tuples.back());
  if (config_.positions[c.pos_a].star) {
    scratch_.SetStarGroup(c.pos_a, &ea.tuples);
  }
  if (config_.positions[c.pos_b].star) {
    scratch_.SetStarGroup(c.pos_b, &eb.tuples);
  }
  return EvalPredicate(*c.expr, scratch_.Row());
}

Result<bool> SeqOperator::PairwiseOkWithChosen(
    size_t pos, const Entry& candidate,
    const std::vector<const Entry*>& chosen) {
  for (const auto& c : config_.pairwise) {
    const Entry* ea = nullptr;
    const Entry* eb = nullptr;
    if (c.pos_a == pos && chosen[c.pos_b] != nullptr) {
      ea = &candidate;
      eb = chosen[c.pos_b];
    } else if (c.pos_b == pos && chosen[c.pos_a] != nullptr) {
      ea = chosen[c.pos_a];
      eb = &candidate;
    } else {
      continue;
    }
    ESLEV_ASSIGN_OR_RETURN(bool ok, PassesPairwise(c, *ea, *eb));
    if (!ok) return false;
  }
  return true;
}

bool SeqOperator::WindowOk(size_t pos, const Entry& entry,
                           const std::vector<const Entry*>& chosen) const {
  if (!config_.window) return true;
  const SeqWindow& w = *config_.window;
  const Entry* anchor =
      pos == w.anchor ? &entry : chosen[w.anchor];
  if (anchor == nullptr) return true;  // verified again at emission
  const bool preceding_side =
      w.direction == WindowDirection::kPreceding ||
      w.direction == WindowDirection::kPrecedingAndFollowing;
  const bool following_side =
      w.direction == WindowDirection::kFollowing ||
      w.direction == WindowDirection::kPrecedingAndFollowing;
  if (preceding_side && pos <= w.anchor &&
      entry.first_ts() < anchor->last_ts() - w.length) {
    return false;
  }
  if (following_side && pos >= w.anchor &&
      entry.last_ts() > anchor->first_ts() + w.length) {
    return false;
  }
  return true;
}

Status SeqOperator::ProcessTuple(size_t port, const Tuple& tuple) {
  if (port >= n_) {
    return Status::ExecutionError("SEQ port out of range");
  }
  const uint64_t seq = arrival_seq_++;
  ESLEV_ASSIGN_OR_RETURN(bool pass, PassesArrivalFilter(port, tuple));
  if (!pass) return Status::OK();
  return ProcessArrival(port, tuple, seq);
}

Status SeqOperator::ProcessArrival(size_t port, const Tuple& tuple,
                                   uint64_t seq) {
  EvictByWindow(tuple.ts());

  if (config_.positions[port].negated &&
      config_.mode != PairingMode::kConsecutive) {
    // A forbidden event: record it for interval checks; it never
    // participates in matching directly.
    return StoreArrival(port, tuple, seq);
  }

  if (config_.mode == PairingMode::kConsecutive) {
    return HandleConsecutive(port, tuple, seq);
  }

  if (port == n_ - 1) {
    if (last_is_star_) {
      // Trailing star: accumulate and emit online, once per arrival.
      ESLEV_RETURN_NOT_OK(StoreArrival(port, tuple, seq));
      Entry& group = history_[port].back();
      switch (config_.mode) {
        case PairingMode::kRecent:
          ESLEV_RETURN_NOT_OK(MatchRecent(group));
          break;
        case PairingMode::kChronicle:
          ESLEV_RETURN_NOT_OK(MatchChronicle(group));
          break;
        default:
          ESLEV_RETURN_NOT_OK(MatchUnrestricted(group));
          break;
      }
      return Status::OK();
    }
    Entry trigger;
    trigger.tuples.push_back(tuple);
    trigger.first_seq = trigger.last_seq = seq;
    switch (config_.mode) {
      case PairingMode::kRecent:
        return MatchRecent(trigger);
      case PairingMode::kChronicle:
        return MatchChronicle(trigger);
      default:
        return MatchUnrestricted(trigger);
    }
  }

  ESLEV_RETURN_NOT_OK(StoreArrival(port, tuple, seq));
  if (config_.mode == PairingMode::kRecent && recent_exact_purge_) {
    PurgeRecent();
  }
  return Status::OK();
}

Status SeqOperator::ProcessBatch(size_t port, const TupleBatch& batch) {
  if (port >= n_) {
    return Status::ExecutionError("SEQ port out of range");
  }
  // Columnar pre-pass: arrival filters are pure single-position
  // predicates, so evaluating one expression tree across the whole run
  // up front accepts exactly the tuples the inline check would.
  batch_selection_.assign(batch.size(), 1);
  if (config_.arrival_filters[port]) {
    for (size_t i = 0; i < batch.size(); ++i) {
      ESLEV_ASSIGN_OR_RETURN(bool pass, PassesArrivalFilter(port, batch[i]));
      if (!pass) batch_selection_[i] = 0;
    }
  }
  // History mutation and matching are order-dependent: run them per tuple
  // in arrival order, collecting emissions into one output batch.
  // Rejected tuples still consume an arrival sequence number, exactly as
  // in ProcessTuple.
  TupleBatch out;
  batch_out_ = &out;
  Status st = Status::OK();
  for (size_t i = 0; i < batch.size(); ++i) {
    const uint64_t seq = arrival_seq_++;
    if (!batch_selection_[i]) continue;
    st = ProcessArrival(port, batch[i], seq);
    if (!st.ok()) break;
  }
  batch_out_ = nullptr;
  ESLEV_RETURN_NOT_OK(st);
  return EmitBatch(out);
}

Status SeqOperator::EmitOut(const Tuple& tuple) {
  if (batch_out_ != nullptr) {
    batch_out_->Add(tuple);
    return Status::OK();
  }
  return Emit(tuple);
}

size_t SeqOperator::open_star_length() const {
  size_t total = 0;
  for (const auto& dq : history_) {
    for (const auto& e : dq) {
      if (e.open) total += e.tuples.size();
    }
  }
  for (const auto& e : run_) {
    if (e.open) total += e.tuples.size();
  }
  return total;
}

void SeqOperator::AppendStats(OperatorStatList* out) const {
  out->push_back({"retained_history", static_cast<int64_t>(history_size())});
  out->push_back({"tuples_stored", static_cast<int64_t>(tuples_stored_)});
  out->push_back({"tuples_purged", static_cast<int64_t>(tuples_purged_)});
  out->push_back({"matches", static_cast<int64_t>(matches_emitted_)});
  out->push_back(
      {"open_star_length", static_cast<int64_t>(open_star_length())});
}

Status SeqOperator::StoreArrival(size_t pos, const Tuple& tuple,
                                 uint64_t seq) {
  ++tuples_stored_;
  auto& dq = history_[pos];
  if (config_.positions[pos].star) {
    if (!dq.empty() && dq.back().open) {
      Entry& group = dq.back();
      ESLEV_ASSIGN_OR_RETURN(
          bool same_group, PassesStarGate(pos, tuple, group.tuples.back()));
      if (same_group) {
        group.tuples.push_back(tuple);
        group.last_seq = seq;
        return Status::OK();
      }
      group.open = false;  // gap: close (Figure 1(b))
    }
    Entry fresh;
    fresh.tuples.push_back(tuple);
    fresh.first_seq = fresh.last_seq = seq;
    fresh.open = true;
    dq.push_back(std::move(fresh));
    return Status::OK();
  }
  Entry e;
  e.tuples.push_back(tuple);
  e.first_seq = e.last_seq = seq;
  dq.push_back(std::move(e));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// UNRESTRICTED
// ---------------------------------------------------------------------------

Status SeqOperator::MatchUnrestricted(const Entry& trigger) {
  std::vector<const Entry*> chosen(n_, nullptr);
  chosen[n_ - 1] = &trigger;
  return EnumerateFrom(static_cast<int>(n_) - 2, &chosen);
}

Status SeqOperator::EnumerateFrom(int pos, std::vector<const Entry*>* chosen) {
  if (pos < 0) {
    return EmitMatch(*chosen);
  }
  if (config_.positions[pos].negated) {
    return EnumerateFrom(pos - 1, chosen);
  }
  const Entry& next = *NextChosen(*chosen, static_cast<size_t>(pos));
  for (const Entry& e : history_[pos]) {
    if (!Before(e.last_ts(), e.last_seq, next.first_ts(), next.first_seq)) {
      continue;
    }
    if (!WindowOk(pos, e, *chosen)) continue;
    ESLEV_ASSIGN_OR_RETURN(bool ok, PairwiseOkWithChosen(pos, e, *chosen));
    if (!ok) continue;
    (*chosen)[pos] = &e;
    if (!NegationOk(*chosen)) {  // forbidden event inside a bound interval
      (*chosen)[pos] = nullptr;
      continue;
    }
    ESLEV_RETURN_NOT_OK(EnumerateFrom(pos - 1, chosen));
    (*chosen)[pos] = nullptr;
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// RECENT
// ---------------------------------------------------------------------------

Status SeqOperator::MatchRecent(const Entry& trigger) {
  std::vector<const Entry*> chosen(n_, nullptr);
  chosen[n_ - 1] = &trigger;

  // Most-recent-first depth-first search. Plain greedy selection is not
  // enough: qualification can chain through an earlier position (the
  // paper's Example 6 writes C1.tagid=C2.tagid AND C1.tagid=C3.tagid,
  // so whether a C3 candidate "qualifies" only becomes checkable once
  // C1 is bound). Backtracking restores the paper's intent — the most
  // recent combination that satisfies all qualifying conditions.
  std::function<Result<bool>(int)> dfs = [&](int pos) -> Result<bool> {
    if (pos < 0) return true;
    if (config_.positions[pos].negated) return dfs(pos - 1);
    const Entry& next = *NextChosen(chosen, static_cast<size_t>(pos));
    auto& dq = history_[pos];
    for (auto it = dq.rbegin(); it != dq.rend(); ++it) {
      const Entry& e = *it;
      if (!Before(e.last_ts(), e.last_seq, next.first_ts(),
                  next.first_seq)) {
        continue;
      }
      if (!WindowOk(pos, e, chosen)) continue;
      ESLEV_ASSIGN_OR_RETURN(bool ok, PairwiseOkWithChosen(pos, e, chosen));
      if (!ok) continue;
      chosen[pos] = &e;
      if (!NegationOk(chosen)) {
        chosen[pos] = nullptr;
        continue;
      }
      ESLEV_ASSIGN_OR_RETURN(bool done, dfs(pos - 1));
      if (done) return true;
      chosen[pos] = nullptr;
    }
    return false;
  };
  ESLEV_ASSIGN_OR_RETURN(bool found, dfs(static_cast<int>(n_) - 2));
  if (!found) return Status::OK();  // no event
  return EmitMatch(chosen);
}

// ---------------------------------------------------------------------------
// CHRONICLE
// ---------------------------------------------------------------------------

Status SeqOperator::MatchChronicle(const Entry& trigger) {
  std::vector<const Entry*> chosen(n_, nullptr);
  chosen[n_ - 1] = &trigger;

  // Depth-first search choosing the earliest qualifying entries, forward
  // from position 0.
  std::vector<size_t> pick(n_, 0);
  bool found = false;
  std::function<Result<bool>(size_t)> dfs =
      [&](size_t pos) -> Result<bool> {
    if (pos == n_ - 1) return true;
    if (config_.positions[pos].negated) return dfs(pos + 1);
    const auto& dq = history_[pos];
    for (size_t i = 0; i < dq.size(); ++i) {
      const Entry& e = dq[i];
      // Order: after the previous chosen entry, before the trigger.
      if (const Entry* prev_entry = PrevChosen(chosen, static_cast<int>(pos))) {
        const Entry& prev = *prev_entry;
        if (!Before(prev.last_ts(), prev.last_seq, e.first_ts(),
                    e.first_seq)) {
          continue;
        }
      }
      if (!Before(e.last_ts(), e.last_seq, trigger.first_ts(),
                  trigger.first_seq)) {
        continue;  // deque is time-ordered; later ones fail too
      }
      if (!WindowOk(pos, e, chosen)) continue;
      ESLEV_ASSIGN_OR_RETURN(bool ok, PairwiseOkWithChosen(pos, e, chosen));
      if (!ok) continue;
      chosen[pos] = &e;
      if (!NegationOk(chosen)) {
        chosen[pos] = nullptr;
        continue;
      }
      pick[pos] = i;
      ESLEV_ASSIGN_OR_RETURN(bool done, dfs(pos + 1));
      if (done) return true;
      chosen[pos] = nullptr;
    }
    return false;
  };
  ESLEV_ASSIGN_OR_RETURN(found, dfs(0));
  if (!found) return Status::OK();

  const uint64_t emitted_before = matches_emitted_;
  ESLEV_RETURN_NOT_OK(EmitMatch(chosen));
  if (matches_emitted_ == emitted_before) {
    // Final checks rejected the earliest combination: per CHRONICLE, the
    // tuples are not consumed and no event is produced for this trigger.
    return Status::OK();
  }
  // Consume: each tuple participates in at most one event. Negated
  // positions contributed no tuple and are not consumed.
  for (size_t pos = 0; pos + 1 < n_; ++pos) {
    if (config_.positions[pos].negated) continue;
    tuples_purged_ += history_[pos][pick[pos]].tuples.size();
    history_[pos].erase(history_[pos].begin() + pick[pos]);
  }
  if (last_is_star_ && !history_[n_ - 1].empty()) {
    // A consumed trailing group cannot participate again.
    for (const Entry& e : history_[n_ - 1]) {
      tuples_purged_ += e.tuples.size();
    }
    history_[n_ - 1].clear();
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// CONSECUTIVE
// ---------------------------------------------------------------------------

Status SeqOperator::HandleConsecutive(size_t pos, const Tuple& tuple,
                                      uint64_t seq) {
  auto purge_run = [&]() {
    for (const Entry& e : run_) tuples_purged_ += e.tuples.size();
    run_.clear();
  };
  auto start_new_run = [&]() {
    purge_run();
    if (pos == 0) {
      Entry e;
      e.tuples.push_back(tuple);
      e.first_seq = e.last_seq = seq;
      e.open = config_.positions[0].star;
      ++tuples_stored_;
      run_.push_back(std::move(e));
    }
  };

  if (config_.positions[pos].negated) {
    // The forbidden event occurred on the joint history: any active run
    // is no longer a run of adjacent tuples.
    purge_run();
    return Status::OK();
  }

  if (run_.empty()) {
    start_new_run();
    return Status::OK();
  }

  const size_t cur = run_.size() - 1;
  // Same-position arrival on an open star group: try to extend.
  if (pos == cur && config_.positions[cur].star && run_[cur].open) {
    ESLEV_ASSIGN_OR_RETURN(
        bool same_group,
        PassesStarGate(pos, tuple, run_[cur].tuples.back()));
    if (same_group) {
      run_[cur].tuples.push_back(tuple);
      run_[cur].last_seq = seq;
      ++tuples_stored_;
      if (cur == n_ - 1) {
        // Trailing star completes on every arrival.
        std::vector<const Entry*> chosen(n_);
        for (size_t i = 0; i < n_; ++i) chosen[i] = &run_[i];
        ESLEV_RETURN_NOT_OK(EmitMatch(chosen));
      }
      return Status::OK();
    }
    start_new_run();
    return Status::OK();
  }

  // Expected next position.
  if (pos == cur + 1) {
    const Entry& prev = run_[cur];
    Entry cand;
    cand.tuples.push_back(tuple);
    cand.first_seq = cand.last_seq = seq;
    cand.open = config_.positions[pos].star;
    bool ok = Before(prev.last_ts(), prev.last_seq, cand.first_ts(),
                     cand.first_seq);
    if (ok) {
      std::vector<const Entry*> chosen(n_, nullptr);
      for (size_t i = 0; i < run_.size(); ++i) chosen[i] = &run_[i];
      if (!WindowOk(pos, cand, chosen)) ok = false;
      if (ok) {
        ESLEV_ASSIGN_OR_RETURN(ok, PairwiseOkWithChosen(pos, cand, chosen));
      }
    }
    if (!ok) {
      start_new_run();
      return Status::OK();
    }
    ++tuples_stored_;
    run_.push_back(std::move(cand));
    if (pos == n_ - 1) {
      std::vector<const Entry*> chosen(n_);
      for (size_t i = 0; i < n_; ++i) chosen[i] = &run_[i];
      ESLEV_RETURN_NOT_OK(EmitMatch(chosen));
      if (!config_.positions[pos].star) {
        purge_run();  // completed; trailing star keeps accumulating
      }
    }
    return Status::OK();
  }

  // Any other arrival interrupts the run.
  start_new_run();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Emission and purging
// ---------------------------------------------------------------------------

Status SeqOperator::EmitMatch(const std::vector<const Entry*>& chosen) {
  // Full window verification (prunes during search may have lacked the
  // anchor binding). Negated positions carry no entry.
  for (size_t pos = 0; pos < n_; ++pos) {
    if (chosen[pos] == nullptr) continue;
    if (!WindowOk(pos, *chosen[pos], chosen)) return Status::OK();
  }
  if (!NegationOk(chosen)) return Status::OK();
  scratch_.Clear();
  for (size_t pos = 0; pos < n_; ++pos) {
    if (chosen[pos] == nullptr) continue;
    scratch_.SetTuple(pos, &chosen[pos]->tuples.back());
    if (config_.positions[pos].star) {
      scratch_.SetStarGroup(pos, &chosen[pos]->tuples);
    }
  }
  for (const auto& check : config_.final_checks) {
    ESLEV_ASSIGN_OR_RETURN(bool ok, EvalPredicate(*check, scratch_.Row()));
    if (!ok) return Status::OK();
  }
  ++matches_emitted_;
  const Timestamp out_ts = chosen[n_ - 1]->last_ts();

  auto project_and_emit = [&]() -> Status {
    std::vector<Value> values;
    values.reserve(config_.projection.size());
    for (const auto& e : config_.projection) {
      ESLEV_ASSIGN_OR_RETURN(Value v, e->Eval(scratch_.Row()));
      values.push_back(std::move(v));
    }
    ESLEV_ASSIGN_OR_RETURN(
        Tuple out, MakeTuple(config_.out_schema, std::move(values), out_ts));
    return EmitOut(out);
  };

  if (config_.per_tuple_star >= 0) {
    const size_t star_pos = static_cast<size_t>(config_.per_tuple_star);
    for (const Tuple& member : chosen[star_pos]->tuples) {
      scratch_.SetTuple(star_pos, &member);
      ESLEV_RETURN_NOT_OK(project_and_emit());
    }
    return Status::OK();
  }
  return project_and_emit();
}

void SeqOperator::EvictByWindow(Timestamp now) {
  if (!config_.window) return;
  const SeqWindow& w = *config_.window;
  const bool preceding_last =
      (w.direction == WindowDirection::kPreceding ||
       w.direction == WindowDirection::kPrecedingAndFollowing) &&
      w.anchor == n_ - 1;
  if (!preceding_last) return;
  for (auto& dq : history_) {
    while (!dq.empty() && !dq.front().open &&
           dq.front().last_ts() < now - w.length) {
      tuples_purged_ += dq.front().tuples.size();
      dq.pop_front();
    }
  }
}

void SeqOperator::PurgeRecent() {
  // Exact retained-set computation when qualification is purely
  // time-order: position n-1 triggers arrive in the future, so
  // retained(n-2) needs only its most recent entry; retained(i) needs,
  // for each retained entry r at i+1, the most recent entry ending
  // before r starts — plus the most recent entry overall (for future
  // arrivals at i+1).
  std::vector<std::vector<size_t>> keep(n_);
  // Bounds for position i come from retained entries at position i+1.
  std::vector<const Entry*> bounds;  // entries at pos+1 to stay matchable
  for (int pos = static_cast<int>(n_) - 2; pos >= 0; --pos) {
    auto& dq = history_[pos];
    if (config_.positions[pos].negated) {
      // Forbidden-event history is interval evidence; only windows may
      // evict it, and it contributes no bounds to earlier positions.
      std::vector<size_t> all(dq.size());
      for (size_t i = 0; i < dq.size(); ++i) all[i] = i;
      keep[pos] = all;
      continue;
    }
    std::vector<size_t> retained;
    if (!dq.empty()) {
      // Most recent overall (serves all future next-position arrivals).
      retained.push_back(dq.size() - 1);
      for (const Entry* b : bounds) {
        // Most recent entry ending before b begins.
        for (size_t i = dq.size(); i-- > 0;) {
          if (Before(dq[i].last_ts(), dq[i].last_seq, b->first_ts(),
                     b->first_seq)) {
            retained.push_back(i);
            break;
          }
        }
      }
      // An open star group is still accumulating and must survive.
      for (size_t i = 0; i < dq.size(); ++i) {
        if (dq[i].open) retained.push_back(i);
      }
      std::sort(retained.begin(), retained.end());
      retained.erase(std::unique(retained.begin(), retained.end()),
                     retained.end());
    }
    keep[pos] = retained;
    bounds.clear();
    for (size_t idx : retained) bounds.push_back(&dq[idx]);
  }
  for (size_t pos = 0; pos + 1 < n_; ++pos) {
    auto& dq = history_[pos];
    std::deque<Entry> next;
    size_t dropped = 0;
    for (const Entry& e : dq) dropped += e.tuples.size();
    for (size_t idx : keep[pos]) next.push_back(std::move(dq[idx]));
    for (const Entry& e : next) dropped -= e.tuples.size();
    tuples_purged_ += dropped;
    dq = std::move(next);
  }
}

Status SeqOperator::ProcessHeartbeat(Timestamp now) {
  EvictByWindow(now);
  return EmitHeartbeat(now);
}

Status SeqOperator::SaveState(BinaryEncoder* enc) const {
  enc->PutU8(static_cast<uint8_t>(SeqBackend::kHistory));
  const auto put_entry = [enc](const Entry& e) {
    enc->PutU32(static_cast<uint32_t>(e.tuples.size()));
    for (const Tuple& t : e.tuples) enc->PutTuple(t);
    enc->PutU64(e.first_seq);
    enc->PutU64(e.last_seq);
    enc->PutBool(e.open);
  };
  enc->PutU64(arrival_seq_);
  enc->PutU64(matches_emitted_);
  enc->PutU64(tuples_stored_);
  enc->PutU64(tuples_purged_);
  enc->PutU32(static_cast<uint32_t>(history_.size()));
  for (const std::deque<Entry>& position : history_) {
    enc->PutU32(static_cast<uint32_t>(position.size()));
    for (const Entry& e : position) put_entry(e);
  }
  enc->PutU32(static_cast<uint32_t>(run_.size()));
  for (const Entry& e : run_) put_entry(e);
  return Status::OK();
}

Status SeqOperator::RestoreState(BinaryDecoder* dec) {
  ESLEV_ASSIGN_OR_RETURN(uint8_t tag, dec->GetU8());
  ESLEV_RETURN_NOT_OK(CheckSeqCheckpointTag(tag, SeqBackend::kHistory, "SEQ"));
  const auto get_entry = [dec](Entry* e) -> Status {
    ESLEV_ASSIGN_OR_RETURN(uint32_t ntuples, dec->GetU32());
    if (ntuples == 0) {
      return Status::IoError("SEQ checkpoint: empty history entry");
    }
    e->tuples.reserve(ntuples);
    for (uint32_t i = 0; i < ntuples; ++i) {
      ESLEV_ASSIGN_OR_RETURN(Tuple t, dec->GetTuple());
      e->tuples.push_back(std::move(t));
    }
    ESLEV_ASSIGN_OR_RETURN(e->first_seq, dec->GetU64());
    ESLEV_ASSIGN_OR_RETURN(e->last_seq, dec->GetU64());
    ESLEV_ASSIGN_OR_RETURN(e->open, dec->GetBool());
    return Status::OK();
  };
  ESLEV_ASSIGN_OR_RETURN(arrival_seq_, dec->GetU64());
  ESLEV_ASSIGN_OR_RETURN(matches_emitted_, dec->GetU64());
  ESLEV_ASSIGN_OR_RETURN(tuples_stored_, dec->GetU64());
  ESLEV_ASSIGN_OR_RETURN(tuples_purged_, dec->GetU64());
  ESLEV_ASSIGN_OR_RETURN(uint32_t npos, dec->GetU32());
  if (npos != n_) {
    return Status::IoError("SEQ checkpoint: position count mismatch (file " +
                           std::to_string(npos) + ", plan " +
                           std::to_string(n_) + ")");
  }
  for (std::deque<Entry>& position : history_) {
    position.clear();
    ESLEV_ASSIGN_OR_RETURN(uint32_t nentries, dec->GetU32());
    for (uint32_t i = 0; i < nentries; ++i) {
      Entry e;
      ESLEV_RETURN_NOT_OK(get_entry(&e));
      position.push_back(std::move(e));
    }
  }
  run_.clear();
  ESLEV_ASSIGN_OR_RETURN(uint32_t nrun, dec->GetU32());
  if (nrun > n_) {
    return Status::IoError("SEQ checkpoint: run longer than position count");
  }
  for (uint32_t i = 0; i < nrun; ++i) {
    Entry e;
    ESLEV_RETURN_NOT_OK(get_entry(&e));
    run_.push_back(std::move(e));
  }
  return Status::OK();
}

}  // namespace eslev
