// SeqOperator: the paper's SEQ temporal event operator (§3.1.1-3.1.2).
//
// Detects sequences of tuples across n argument streams under a Tuple
// Pairing Mode, with optional sliding windows anchored at any position
// and star (repeating) arguments.
//
// Semantics implemented (see DESIGN.md §5 for the full discussion):
//  * Sequence order is strict: position i+1's tuple must arrive after
//    position i's, compared by (timestamp, arrival index).
//  * The final position triggers matching on arrival; final-position
//    tuples are never stored (they cannot participate in later events).
//  * UNRESTRICTED enumerates all qualifying combinations; RECENT emits at
//    most one event per trigger using the most recent qualifying tuples;
//    CHRONICLE uses the earliest qualifying tuples and consumes them;
//    CONSECUTIVE requires the tuples to be adjacent on the joint history
//    of the participating streams.
//  * Star positions accumulate *groups*: the open group extends while
//    the position's star gate (`.previous.` conjuncts) passes; a failing
//    arrival closes the group and opens a new one (Figure 1(b)'s
//    inter-product gap). Matching always uses the longest group
//    available (the paper's longest-match rule); a trailing star emits
//    online, once per arrival.
//  * History purging: final position never stored; CHRONICLE removes
//    consumed tuples; CONSECUTIVE keeps only the current partial run;
//    RECENT prunes entries that can no longer be the most recent
//    qualifying choice (exact when no pairwise constraints exist);
//    windowed operators evict expired entries.

#ifndef ESLEV_CEP_SEQ_OPERATOR_H_
#define ESLEV_CEP_SEQ_OPERATOR_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "cep/seq_config.h"
#include "cep/seq_operator_base.h"

namespace eslev {

class SeqOperator : public SeqOperatorBase {
 public:
  /// \brief Validates the configuration (e.g. a usable window anchor,
  /// at most one per-tuple star) and builds the operator.
  static Result<std::unique_ptr<SeqOperator>> Make(SeqOperatorConfig config);

  SeqBackend backend() const override { return SeqBackend::kHistory; }
  const SeqOperatorConfig& config() const override { return config_; }

  /// \brief Port == position index.
  Status ProcessTuple(size_t port, const Tuple& tuple) override;
  /// \brief Native batch path (DESIGN.md §13): a columnar arrival-filter
  /// pre-pass over the run, per-tuple in-order history/matching (the
  /// joint history is order-dependent), and match emissions collected
  /// into one output batch.
  Status ProcessBatch(size_t port, const TupleBatch& batch) override;
  Status ProcessHeartbeat(Timestamp now) override;

  /// \brief Total tuples retained across all positions — the state-size
  /// metric behind the paper's purging claims (bench E6).
  size_t history_size() const override;

  uint64_t matches_emitted() const override { return matches_emitted_; }

  /// \brief Tuples ever admitted to the joint history (final-position
  /// triggers are never stored and do not count).
  uint64_t tuples_stored() const override { return tuples_stored_; }
  /// \brief Tuples removed from the history by any purge path: window
  /// eviction, RECENT pruning, CHRONICLE consumption, or CONSECUTIVE run
  /// resets. Invariant: tuples_stored() - tuples_purged() == history_size().
  uint64_t tuples_purged() const override { return tuples_purged_; }
  /// \brief Tuples in still-open (accumulating) star groups.
  size_t open_star_length() const override;

  void AppendStats(OperatorStatList* out) const override;

  /// \brief Checkpoint the joint-tuple history (all pairing modes), the
  /// CONSECUTIVE run, and the arrival/match/purge counters.
  Status SaveState(BinaryEncoder* enc) const override;
  Status RestoreState(BinaryDecoder* dec) override;

 private:
  // A history entry: one tuple for plain positions, a group for stars.
  struct Entry {
    std::vector<Tuple> tuples;
    uint64_t first_seq = 0;
    uint64_t last_seq = 0;
    bool open = false;  // star group still accumulating

    Timestamp first_ts() const { return tuples.front().ts(); }
    Timestamp last_ts() const { return tuples.back().ts(); }
  };

  explicit SeqOperator(SeqOperatorConfig config);

  // (ts, seq) strict ordering between entry boundaries.
  static bool Before(Timestamp ts_a, uint64_t seq_a, Timestamp ts_b,
                     uint64_t seq_b) {
    return ts_a < ts_b || (ts_a == ts_b && seq_a < seq_b);
  }

  Result<bool> PassesArrivalFilter(size_t pos, const Tuple& tuple);
  Result<bool> PassesStarGate(size_t pos, const Tuple& tuple,
                              const Tuple& previous);
  // Evaluate a pairwise constraint with both endpoints bound.
  Result<bool> PassesPairwise(const PairwiseConstraint& c, const Entry& ea,
                              const Entry& eb);
  // All pairwise constraints between `pos` (candidate entry) and already
  // chosen later positions.
  Result<bool> PairwiseOkWithChosen(
      size_t pos, const Entry& candidate,
      const std::vector<const Entry*>& chosen);

  bool WindowOk(size_t pos, const Entry& entry,
                const std::vector<const Entry*>& chosen) const;

  // Mode-specific match triggers; `trigger` is the just-completed entry
  // for the final position.
  Status MatchUnrestricted(const Entry& trigger);
  Status MatchRecent(const Entry& trigger);
  Status MatchChronicle(const Entry& trigger);
  Status HandleConsecutive(size_t pos, const Tuple& tuple, uint64_t seq);

  Status EnumerateFrom(int pos, std::vector<const Entry*>* chosen);
  Status EmitMatch(const std::vector<const Entry*>& chosen);
  // Emit() or, under ProcessBatch, append to the pending output batch.
  Status EmitOut(const Tuple& tuple);
  // ProcessTuple minus port check, seq assignment, and arrival filter —
  // the shared tail of the tuple and batch paths.
  Status ProcessArrival(size_t port, const Tuple& tuple, uint64_t seq);

  Status StoreArrival(size_t pos, const Tuple& tuple, uint64_t seq);
  void EvictByWindow(Timestamp now);
  void PurgeRecent();

  // Negative events: nearest bound (non-negated, chosen) neighbours.
  const Entry* NextChosen(const std::vector<const Entry*>& chosen,
                          size_t pos) const;
  const Entry* PrevChosen(const std::vector<const Entry*>& chosen,
                          int pos) const;
  // True iff no stored tuple of any negated position falls strictly
  // between its neighbouring chosen entries.
  bool NegationOk(const std::vector<const Entry*>& chosen) const;

  SeqOperatorConfig config_;
  size_t n_;  // number of positions
  bool last_is_star_;
  bool recent_exact_purge_;  // purging is exact (no pairwise constraints)
  std::vector<std::deque<Entry>> history_;  // per position
  // CONSECUTIVE state: the current partial run, one entry per filled
  // position (history_ is unused in that mode).
  std::vector<Entry> run_;
  uint64_t arrival_seq_ = 0;
  uint64_t matches_emitted_ = 0;
  uint64_t tuples_stored_ = 0;
  uint64_t tuples_purged_ = 0;
  RowScratch scratch_;
  TupleBatch* batch_out_ = nullptr;            // non-null inside ProcessBatch
  std::vector<unsigned char> batch_selection_;  // arrival-filter pre-pass
};

}  // namespace eslev

#endif  // ESLEV_CEP_SEQ_OPERATOR_H_
