// Common interface of the sequence-matcher backends (DESIGN.md §14).
//
// SeqOperatorBase / ExceptionSeqOperatorBase expose the accessors that
// tests, benches, and metrics read, independent of whether the history
// matcher or the compiled NFA executes the predicate. The factories pick
// the implementation from a SeqBackend; the planner and all differential
// harnesses construct operators through them.

#ifndef ESLEV_CEP_SEQ_OPERATOR_BASE_H_
#define ESLEV_CEP_SEQ_OPERATOR_BASE_H_

#include <memory>

#include "cep/seq_backend.h"
#include "cep/seq_config.h"
#include "stream/operator.h"

namespace eslev {

/// \brief Interface shared by SeqOperator (history) and NfaSeqOperator.
class SeqOperatorBase : public Operator {
 public:
  virtual SeqBackend backend() const = 0;

  /// \brief The validated configuration the operator runs — positions,
  /// pairing mode, window. Read by the cost model (DESIGN.md §16).
  virtual const SeqOperatorConfig& config() const = 0;

  /// \brief Total tuples retained across all positions — the state-size
  /// metric behind the paper's purging claims (bench E6). Both backends
  /// retain exactly the same tuple set; the NFA additionally keeps its
  /// run tree (reported separately via nfa_live_runs).
  virtual size_t history_size() const = 0;
  virtual uint64_t matches_emitted() const = 0;
  virtual uint64_t tuples_stored() const = 0;
  virtual uint64_t tuples_purged() const = 0;
  virtual size_t open_star_length() const = 0;
};

/// \brief Interface shared by the EXCEPTION_SEQ backends.
class ExceptionSeqOperatorBase : public Operator {
 public:
  virtual SeqBackend backend() const = 0;

  /// \brief The validated configuration the operator runs (cost model).
  virtual const ExceptionSeqConfig& config() const = 0;

  virtual uint64_t exceptions_emitted() const = 0;
  virtual uint64_t sequences_completed() const = 0;
  virtual size_t partial_level() const = 0;
  virtual uint64_t level_transitions() const = 0;
  virtual uint64_t window_expirations() const = 0;
  virtual uint64_t active_expirations() const = 0;
};

/// \brief Build a SEQ operator on the requested backend (validates the
/// configuration exactly like SeqOperator::Make).
Result<std::unique_ptr<SeqOperatorBase>> MakeSeqOperator(
    SeqOperatorConfig config, SeqBackend backend);

/// \brief Build an EXCEPTION_SEQ operator on the requested backend.
Result<std::unique_ptr<ExceptionSeqOperatorBase>> MakeExceptionSeqOperator(
    ExceptionSeqConfig config, SeqBackend backend);

}  // namespace eslev

#endif  // ESLEV_CEP_SEQ_OPERATOR_BASE_H_
