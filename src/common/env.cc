#include "common/env.h"

#include <cerrno>
#include <cstdlib>
#include <string>

namespace eslev {

Result<std::optional<int64_t>> GetEnvInt64(const char* name, int64_t min_value,
                                           int64_t max_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return std::optional<int64_t>{};
  const std::string text(raw);
  const auto range = [&] {
    return "accepted range is [" + std::to_string(min_value) + ", " +
           std::to_string(max_value) + "]";
  };
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0') {
    return Status::Invalid(std::string(name) + "='" + text +
                           "' is not an integer; " + range());
  }
  if (errno == ERANGE || parsed < min_value || parsed > max_value) {
    return Status::Invalid(std::string(name) + "='" + text +
                           "' is out of range; " + range());
  }
  return std::optional<int64_t>{static_cast<int64_t>(parsed)};
}

Result<std::optional<size_t>> GetEnvChoice(
    const char* name, const std::vector<std::string>& allowed) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return std::optional<size_t>{};
  std::string text(raw);
  std::string lowered = text;
  for (char& c : lowered) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  for (size_t i = 0; i < allowed.size(); ++i) {
    if (lowered == allowed[i]) return std::optional<size_t>{i};
  }
  std::string accepted;
  for (size_t i = 0; i < allowed.size(); ++i) {
    if (i > 0) accepted += ", ";
    accepted += "'" + allowed[i] + "'";
  }
  return Status::Invalid(std::string(name) + "='" + text +
                         "' is not recognized; accepted values are " +
                         accepted);
}

Result<size_t> ResolveBatchSize(size_t configured) {
  if (configured < 1 || configured > static_cast<size_t>(kMaxBatchSize)) {
    return Status::Invalid("batch_size=" + std::to_string(configured) +
                           " is out of range; accepted range is [1, " +
                           std::to_string(kMaxBatchSize) + "]");
  }
  auto env = GetEnvInt64(kBatchSizeEnvVar, 1, kMaxBatchSize);
  if (!env.ok()) return env.status();
  if (env->has_value()) return static_cast<size_t>(**env);
  return configured;
}

}  // namespace eslev
