// Environment-variable parsing with range validation. Every runtime knob
// read from the environment goes through these helpers so malformed
// values are rejected with a clear error instead of being silently
// ignored or truncated by ad-hoc atoi/getenv calls.

#ifndef ESLEV_COMMON_ENV_H_
#define ESLEV_COMMON_ENV_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"

namespace eslev {

/// \brief Read `name` as a base-10 integer in [min_value, max_value].
/// Returns nullopt when the variable is unset or empty; an Invalid status
/// naming the variable, the offending text, and the accepted range when
/// the value does not parse cleanly (trailing garbage included) or falls
/// outside the range.
Result<std::optional<int64_t>> GetEnvInt64(const char* name,
                                           int64_t min_value,
                                           int64_t max_value);

/// \brief Read `name` as one of the `allowed` spellings (matched
/// case-insensitively) and return its index. Returns nullopt when the
/// variable is unset or empty; an Invalid status naming the variable,
/// the offending text, and the accepted spellings otherwise.
Result<std::optional<size_t>> GetEnvChoice(
    const char* name, const std::vector<std::string>& allowed);

/// \brief The batch-size knob: ESLEV_BATCH_SIZE overrides `configured`
/// when set (DESIGN.md §13). Accepts 1..1048576; 0, negatives, and
/// garbage are rejected — batch size 1 *is* tuple-at-a-time execution,
/// so there is no "disabled" spelling to accept.
Result<size_t> ResolveBatchSize(size_t configured);

/// \brief Name of the batch-size environment variable (tests, docs).
inline constexpr const char* kBatchSizeEnvVar = "ESLEV_BATCH_SIZE";

/// \brief Upper bound accepted by ResolveBatchSize.
inline constexpr int64_t kMaxBatchSize = 1 << 20;

}  // namespace eslev

#endif  // ESLEV_COMMON_ENV_H_
