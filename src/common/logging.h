// Minimal assertion/logging macros (Arrow DCHECK style). Fatal checks are
// for programmer errors only; recoverable conditions use Status.

#ifndef ESLEV_COMMON_LOGGING_H_
#define ESLEV_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>

#define ESLEV_CHECK(cond)                                              \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::cerr << "CHECK failed: " #cond " at " << __FILE__ << ":"    \
                << __LINE__ << std::endl;                              \
      std::abort();                                                    \
    }                                                                  \
  } while (false)

#define ESLEV_CHECK_OK(status_expr)                                    \
  do {                                                                 \
    ::eslev::Status _st = (status_expr);                               \
    if (!_st.ok()) {                                                   \
      std::cerr << "CHECK_OK failed: " << _st.ToString() << " at "     \
                << __FILE__ << ":" << __LINE__ << std::endl;           \
      std::abort();                                                    \
    }                                                                  \
  } while (false)

#ifndef NDEBUG
#define ESLEV_DCHECK(cond) ESLEV_CHECK(cond)
#else
#define ESLEV_DCHECK(cond) \
  do {                     \
  } while (false)
#endif

#endif  // ESLEV_COMMON_LOGGING_H_
