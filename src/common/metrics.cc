#include "common/metrics.h"

#include <algorithm>
#include <cstdio>

namespace eslev {

namespace {

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

size_t Histogram::BucketIndex(uint64_t v) {
  if (v == 0) return 0;
  size_t bit = 1;  // index of the highest set bit, 1-based
  while (v >>= 1) ++bit;
  return std::min(bit, kBuckets - 1);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.count = count();
  snap.sum = sum();
  snap.max = max();
  snap.bucket_counts.resize(kBuckets);
  for (size_t i = 0; i < kBuckets; ++i) {
    snap.bucket_counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

void MetricsSnapshot::Merge(const std::string& prefix,
                            const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) {
    counters[prefix + name] += v;
  }
  for (const auto& [name, v] : other.gauges) {
    gauges[prefix + name] += v;
  }
  for (const auto& [name, h] : other.histograms) {
    HistogramSnapshot& dst = histograms[prefix + name];
    dst.count += h.count;
    dst.sum += h.sum;
    dst.max = std::max(dst.max, h.max);
    if (dst.bucket_counts.size() < h.bucket_counts.size()) {
      dst.bucket_counts.resize(h.bucket_counts.size());
    }
    for (size_t i = 0; i < h.bucket_counts.size(); ++i) {
      dst.bucket_counts[i] += h.bucket_counts[i];
    }
  }
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(name, &out);
    out += ":" + std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(name, &out);
    out += ":" + std::to_string(v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(name, &out);
    out += ":{\"count\":" + std::to_string(h.count) +
           ",\"sum\":" + std::to_string(h.sum) +
           ",\"max\":" + std::to_string(h.max) + ",\"buckets\":[";
    // Trailing all-zero buckets carry no information; trim them so the
    // JSON stays readable.
    size_t last = h.bucket_counts.size();
    while (last > 0 && h.bucket_counts[last - 1] == 0) --last;
    for (size_t i = 0; i < last; ++i) {
      if (i > 0) out += ",";
      out += std::to_string(h.bucket_counts[i]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) {
    snap.counters[name] = c->value();
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges[name] = g->value();
  }
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = h->Snapshot();
  }
  return snap;
}

}  // namespace eslev
