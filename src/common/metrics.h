// MetricsRegistry: lock-cheap engine observability (DESIGN.md §9).
//
// The hot path — operators counting tuples, the CEP core tracking
// retained joint-tuple history — touches only relaxed atomics; the
// registry mutex is taken at metric registration and snapshot time,
// never per tuple. Instrumentation is compiled-in unconditionally and
// near-zero-cost when nobody reads it: an uncontended relaxed fetch_add
// on a cache-resident counter.
//
// Three exposure paths (ISSUE 2):
//   * Engine::Metrics() / ShardedEngine::Metrics() -> MetricsSnapshot
//   * MetricsRegistry::ToJson() -> BENCH_*_metrics.json via bench_util.h
//   * EXPLAIN ANALYZE <query> -> per-operator counters in plan text

#ifndef ESLEV_COMMON_METRICS_H_
#define ESLEV_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace eslev {

/// \brief Monotone event count (tuples in, purges, probes, ...).
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Instantaneous level (retained history size, queue depth, lag).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  /// bucket_counts[i] counts observations v with v < 2^i (cumulative-free,
  /// i.e. per-bucket; bucket 0 holds v == 0, the last bucket overflows).
  std::vector<uint64_t> bucket_counts;

  double mean() const { return count == 0 ? 0.0 : double(sum) / double(count); }
};

/// \brief Power-of-two bucketed distribution (reorder distance, batch
/// sizes). Relaxed atomics only; `max` is a relaxed CAS loop, still
/// lock-free.
class Histogram {
 public:
  static constexpr size_t kBuckets = 32;

  void Observe(uint64_t v) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    uint64_t prev = max_.load(std::memory_order_relaxed);
    while (v > prev &&
           !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
    buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }

  HistogramSnapshot Snapshot() const;

  /// bucket 0: v == 0; bucket i >= 1: 2^(i-1) <= v < 2^i; last bucket
  /// absorbs the tail.
  static size_t BucketIndex(uint64_t v);

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
  std::atomic<uint64_t> buckets_[kBuckets] = {};
};

/// \brief Point-in-time copy of every metric, safe to merge/serialize
/// off the hot path.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// \brief Fold `other` in under `prefix` (e.g. "shard0."); same-name
  /// counters add, gauges add (they are sums of per-shard levels),
  /// histograms merge bucket-wise.
  void Merge(const std::string& prefix, const MetricsSnapshot& other);

  /// \brief Stable, sorted-key JSON object:
  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,max,
  /// buckets:[...]}}}
  std::string ToJson() const;
};

/// \brief Named metric directory. Get* registers on first use and
/// returns a stable pointer (metrics are never deleted), so callers
/// cache the pointer once and hit only the atomic afterwards.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;
  std::string ToJson() const { return Snapshot().ToJson(); }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace eslev

#endif  // ESLEV_COMMON_METRICS_H_
