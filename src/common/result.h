// Result<T>: value-or-Status, in the style of arrow::Result.

#ifndef ESLEV_COMMON_RESULT_H_
#define ESLEV_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace eslev {

/// \brief Holds either a successfully produced T or the Status explaining
/// why it could not be produced.
///
/// Use with ESLEV_ASSIGN_OR_RETURN for concise propagation:
/// \code
///   ESLEV_ASSIGN_OR_RETURN(auto plan, Analyze(ast));
/// \endcode
template <typename T>
class Result {
 public:
  /// \brief Construct from a success value.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// \brief Construct from an error Status. Must not be OK.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok() &&
           "Result constructed from OK Status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// \brief The error status, or OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// \brief Access the value. Requires ok().
  const T& ValueUnsafe() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& ValueUnsafe() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& ValueUnsafe() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  /// \brief Move the value out, or return `alternative` on error.
  T ValueOr(T alternative) && {
    if (ok()) return std::get<T>(std::move(repr_));
    return alternative;
  }

  const T& operator*() const& { return ValueUnsafe(); }
  T& operator*() & { return ValueUnsafe(); }
  const T* operator->() const { return &ValueUnsafe(); }
  T* operator->() { return &ValueUnsafe(); }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace eslev

#endif  // ESLEV_COMMON_RESULT_H_
