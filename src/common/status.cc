#include "common/status.h"

namespace eslev {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalid:
      return "Invalid";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kBindError:
      return "BindError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kExecutionError:
      return "ExecutionError";
    case StatusCode::kIoError:
      return "IoError";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace eslev
