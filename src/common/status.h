// Status: lightweight error propagation for ESL-EV, in the style of
// Arrow/RocksDB. Functions that can fail return Status (or Result<T>,
// see result.h) instead of throwing.

#ifndef ESLEV_COMMON_STATUS_H_
#define ESLEV_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace eslev {

/// \brief Machine-readable category of a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalid = 1,         // invalid argument / malformed input
  kParseError = 2,      // SQL text could not be parsed
  kBindError = 3,       // name resolution / type checking failed
  kNotFound = 4,        // stream / table / column / function not found
  kAlreadyExists = 5,   // duplicate registration
  kOutOfRange = 6,      // index or window bound out of range
  kTypeError = 7,       // runtime type mismatch
  kNotImplemented = 8,  // feature outside the supported subset
  kExecutionError = 9,  // runtime failure while processing tuples
  kIoError = 10,        // I/O failure (file-backed workloads)
};

/// \brief Human-readable name of a StatusCode ("Invalid", "ParseError", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief Success-or-error outcome of an operation.
///
/// A default-constructed Status is OK and carries no allocation; error
/// states allocate a small state block with the code and message.
class Status {
 public:
  Status() = default;

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(msg)});
    }
  }

  /// \brief True iff this status represents success.
  bool ok() const { return state_ == nullptr; }

  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }

  /// \brief The error message; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  /// \brief "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool IsInvalid() const { return code() == StatusCode::kInvalid; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsBindError() const { return code() == StatusCode::kBindError; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsTypeError() const { return code() == StatusCode::kTypeError; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsExecutionError() const { return code() == StatusCode::kExecutionError; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }

  static Status OK() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalid, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  // Shared so Status is cheap to copy (it is returned pervasively).
  std::shared_ptr<const State> state_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace eslev

/// \brief Propagate a non-OK Status to the caller.
#define ESLEV_RETURN_NOT_OK(expr)                 \
  do {                                            \
    ::eslev::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                    \
  } while (false)

#define ESLEV_CONCAT_IMPL(x, y) x##y
#define ESLEV_CONCAT(x, y) ESLEV_CONCAT_IMPL(x, y)

/// \brief Evaluate a Result<T> expression; on error return the Status,
/// otherwise assign the value to `lhs` (which may be a declaration).
#define ESLEV_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  auto ESLEV_CONCAT(_res_, __LINE__) = (rexpr);                     \
  if (!ESLEV_CONCAT(_res_, __LINE__).ok())                          \
    return ESLEV_CONCAT(_res_, __LINE__).status();                  \
  lhs = std::move(ESLEV_CONCAT(_res_, __LINE__)).ValueUnsafe()

#endif  // ESLEV_COMMON_STATUS_H_
