#include "common/string_util.h"

#include <cctype>

namespace eslev {

std::string AsciiToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool AsciiEqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

namespace {

// Iterative LIKE matcher: linear scan with backtracking to the last '%'.
bool LikeMatchImpl(std::string_view text, std::string_view pattern) {
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos;  // pattern pos after last '%'
  size_t star_t = 0;                       // text pos to resume from
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = ++p;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

}  // namespace

bool SqlLikeMatch(std::string_view text, std::string_view pattern) {
  return LikeMatchImpl(text, pattern);
}

}  // namespace eslev
