// Small string helpers shared across the lexer, EPC handling, and tests.

#ifndef ESLEV_COMMON_STRING_UTIL_H_
#define ESLEV_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace eslev {

/// \brief ASCII-only uppercase copy (SQL keywords are ASCII).
std::string AsciiToUpper(std::string_view s);

/// \brief ASCII-only lowercase copy.
std::string AsciiToLower(std::string_view s);

/// \brief Case-insensitive ASCII equality.
bool AsciiEqualsIgnoreCase(std::string_view a, std::string_view b);

/// \brief Split on a delimiter character; no trimming; empty pieces kept.
std::vector<std::string> Split(std::string_view s, char delim);

/// \brief Join pieces with a separator.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// \brief Strip leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// \brief True iff `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// \brief SQL LIKE match with '%' (any run) and '_' (any single char).
/// No escape character (matches the subset used in the paper).
bool SqlLikeMatch(std::string_view text, std::string_view pattern);

}  // namespace eslev

#endif  // ESLEV_COMMON_STRING_UTIL_H_
