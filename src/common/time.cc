#include "common/time.h"

#include <cstdio>

#include "common/string_util.h"

namespace eslev {

Result<Duration> ParseTimeUnit(const std::string& unit) {
  std::string u = AsciiToUpper(unit);
  if (u == "MICROSECOND" || u == "MICROSECONDS") return kMicrosecond;
  if (u == "MILLISECOND" || u == "MILLISECONDS") return kMillisecond;
  if (u == "SECOND" || u == "SECONDS") return kSecond;
  if (u == "MINUTE" || u == "MINUTES") return kMinute;
  if (u == "HOUR" || u == "HOURS") return kHour;
  if (u == "DAY" || u == "DAYS") return kDay;
  return Status::ParseError("unknown time unit: " + unit);
}

std::string FormatDuration(Duration d) {
  if (d == 0) return "0s";
  std::string out;
  if (d < 0) {
    out += "-";
    d = -d;
  }
  const Duration hours = d / kHour;
  d %= kHour;
  const Duration minutes = d / kMinute;
  d %= kMinute;
  const Duration seconds = d / kSecond;
  d %= kSecond;
  const Duration millis = d / kMillisecond;
  d %= kMillisecond;
  char buf[32];
  if (hours > 0) {
    std::snprintf(buf, sizeof(buf), "%lldh", static_cast<long long>(hours));
    out += buf;
  }
  if (minutes > 0) {
    std::snprintf(buf, sizeof(buf), "%lldm", static_cast<long long>(minutes));
    out += buf;
  }
  if (seconds > 0) {
    std::snprintf(buf, sizeof(buf), "%llds", static_cast<long long>(seconds));
    out += buf;
  }
  if (millis > 0) {
    std::snprintf(buf, sizeof(buf), "%lldms", static_cast<long long>(millis));
    out += buf;
  }
  if (d > 0) {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(d));
    out += buf;
  }
  return out;
}

std::string FormatTimestamp(Timestamp ts) {
  char buf[48];
  const long long secs = ts / kSecond;
  long long micros = ts % kSecond;
  if (micros < 0) micros += kSecond;
  std::snprintf(buf, sizeof(buf), "%lld.%06llds", secs, micros);
  return buf;
}

}  // namespace eslev
