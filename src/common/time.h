// Timestamps and durations. ESL-EV timestamps are microseconds on a
// single logical timeline (the "application time" of tuple arrival, per
// the paper's totally ordered joint tuple history).

#ifndef ESLEV_COMMON_TIME_H_
#define ESLEV_COMMON_TIME_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace eslev {

/// \brief Microseconds since an arbitrary epoch.
using Timestamp = int64_t;

/// \brief A span of time in microseconds.
using Duration = int64_t;

constexpr Duration kMicrosecond = 1;
constexpr Duration kMillisecond = 1000 * kMicrosecond;
constexpr Duration kSecond = 1000 * kMillisecond;
constexpr Duration kMinute = 60 * kSecond;
constexpr Duration kHour = 60 * kMinute;
constexpr Duration kDay = 24 * kHour;

/// \brief Smallest representable timestamp (used as "no expiry yet").
constexpr Timestamp kMinTimestamp = INT64_MIN;
/// \brief Largest representable timestamp (used as "never expires").
constexpr Timestamp kMaxTimestamp = INT64_MAX;

/// \brief Convenience constructors for literal durations in tests/examples.
constexpr Duration Seconds(int64_t n) { return n * kSecond; }
constexpr Duration Milliseconds(int64_t n) { return n * kMillisecond; }
constexpr Duration Minutes(int64_t n) { return n * kMinute; }
constexpr Duration Hours(int64_t n) { return n * kHour; }

/// \brief Parse an SQL window time unit keyword ("SECONDS", "MINUTE", ...)
/// into the duration of one unit. Case-insensitive; both singular and
/// plural spellings are accepted.
Result<Duration> ParseTimeUnit(const std::string& unit);

/// \brief Render a duration as a compact human string, e.g. "5s", "1h30m".
std::string FormatDuration(Duration d);

/// \brief Render a timestamp as seconds with microsecond precision,
/// e.g. "12.000345s".
std::string FormatTimestamp(Timestamp ts);

}  // namespace eslev

#endif  // ESLEV_COMMON_TIME_H_
