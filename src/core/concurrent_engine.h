// ConcurrentEngine: a lock-protected wrapper enabling multi-threaded
// feeding of an Engine.
//
// The paper's semantics are defined on a totally ordered joint tuple
// history, so the core Engine is single-threaded run-to-completion
// (DESIGN.md §5). This wrapper serializes concurrent producers onto
// that history: timestamps are monotonized under the lock (a tuple
// arriving with an older timestamp than the engine clock is stamped at
// the clock), matching how a DSMS ingests from multiple reader
// connections whose local clocks drift slightly.

#ifndef ESLEV_CORE_CONCURRENT_ENGINE_H_
#define ESLEV_CORE_CONCURRENT_ENGINE_H_

#include <mutex>

#include "core/engine.h"

namespace eslev {

class ConcurrentEngine {
 public:
  explicit ConcurrentEngine(EngineOptions options = {}) : engine_(options) {}

  /// \brief Serialized access for setup (DDL, query registration,
  /// subscriptions). Callbacks registered through the engine run under
  /// the ingestion lock; keep them short.
  Status ExecuteScript(const std::string& sql) {
    std::lock_guard<std::mutex> lock(mu_);
    return engine_.ExecuteScript(sql);
  }

  Result<QueryInfo> RegisterQuery(const std::string& sql) {
    std::lock_guard<std::mutex> lock(mu_);
    return engine_.RegisterQuery(sql);
  }

  Status Subscribe(const std::string& stream, TupleCallback callback) {
    std::lock_guard<std::mutex> lock(mu_);
    return engine_.Subscribe(stream, std::move(callback));
  }

  /// \brief Thread-safe push. The tuple's timestamp is clamped forward
  /// to the engine clock so the joint history stays totally ordered no
  /// matter how producer threads interleave.
  Status Push(const std::string& stream, std::vector<Value> values,
              Timestamp ts) {
    std::lock_guard<std::mutex> lock(mu_);
    const Timestamp effective = std::max(ts, engine_.current_time());
    return engine_.Push(stream, std::move(values), effective);
  }

  Status PushTuple(const std::string& stream, const Tuple& tuple) {
    std::lock_guard<std::mutex> lock(mu_);
    if (tuple.ts() < engine_.current_time()) {
      Tuple clamped = tuple;
      clamped.set_ts(engine_.current_time());
      return engine_.PushTuple(stream, clamped);
    }
    return engine_.PushTuple(stream, tuple);
  }

  Status AdvanceTime(Timestamp now) {
    std::lock_guard<std::mutex> lock(mu_);
    if (now < engine_.current_time()) return Status::OK();  // stale tick
    return engine_.AdvanceTime(now);
  }

  Result<std::vector<Tuple>> ExecuteSnapshot(const std::string& sql) {
    std::lock_guard<std::mutex> lock(mu_);
    return engine_.ExecuteSnapshot(sql);
  }

  /// \brief Direct (unlocked) access for single-threaded phases.
  Engine* engine() { return &engine_; }

 private:
  std::mutex mu_;
  Engine engine_;
};

}  // namespace eslev

#endif  // ESLEV_CORE_CONCURRENT_ENGINE_H_
