#include "core/engine.h"

#include "analysis/analyzer.h"
#include "common/string_util.h"
#include "expr/sql_uda.h"
#include "plan/snapshot_executor.h"

namespace eslev {

Engine::Engine(EngineOptions options) : options_(options) {}

Engine::~Engine() = default;

Status Engine::CreateStream(const std::string& name, SchemaPtr schema) {
  const std::string key = AsciiToLower(name);
  if (streams_.count(key) || tables_.count(key)) {
    return Status::AlreadyExists("stream or table already exists: " + name);
  }
  auto stream = std::make_unique<Stream>(name, std::move(schema));
  if (options_.default_retention > 0) {
    stream->SetRetention(options_.default_retention);
  }
  streams_.emplace(key, std::move(stream));
  return Status::OK();
}

Status Engine::CreateTable(const std::string& name, SchemaPtr schema) {
  const std::string key = AsciiToLower(name);
  if (streams_.count(key) || tables_.count(key)) {
    return Status::AlreadyExists("stream or table already exists: " + name);
  }
  tables_.emplace(key, std::make_unique<Table>(name, std::move(schema)));
  return Status::OK();
}

Stream* Engine::FindStream(const std::string& name) const {
  auto it = streams_.find(AsciiToLower(name));
  return it == streams_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Engine::StreamNames() const {
  std::vector<std::string> names;
  names.reserve(streams_.size());
  for (const auto& [key, stream] : streams_) {
    names.push_back(stream->name());
  }
  return names;
}

Table* Engine::FindTable(const std::string& name) const {
  auto it = tables_.find(AsciiToLower(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

Status Engine::ExecuteScript(const std::string& sql) {
  ESLEV_ASSIGN_OR_RETURN(auto statements, ParseScript(sql));
  for (const StatementPtr& stmt : statements) {
    ESLEV_RETURN_NOT_OK(ExecuteStatement(*stmt));
  }
  return Status::OK();
}

Status Engine::ExecuteStatement(const Statement& stmt) {
  switch (stmt.kind) {
    case StatementKind::kCreateStream:
    case StatementKind::kCreateTable: {
      const auto& create = static_cast<const CreateStmt&>(stmt);
      SchemaPtr schema = Schema::Make(create.fields);
      if (create.is_stream) {
        return CreateStream(create.name, std::move(schema));
      }
      return CreateTable(create.name, std::move(schema));
    }
    case StatementKind::kCreateAggregate: {
      const auto& create = static_cast<const CreateAggregateStmt&>(stmt);
      ESLEV_ASSIGN_OR_RETURN(AggregateFunction fn,
                             CompileSqlUda(create, registry_));
      return registry_.RegisterAggregate(std::move(fn));
    }
    case StatementKind::kInsert:
    case StatementKind::kSelect: {
      ESLEV_ASSIGN_OR_RETURN(QueryInfo info, RegisterParsed(stmt));
      (void)info;
      return Status::OK();
    }
    case StatementKind::kExplain:
      return Status::Invalid(
          "EXPLAIN produces text; use Engine::Explain instead of "
          "ExecuteScript");
  }
  return Status::Invalid("unknown statement kind");
}

Result<QueryInfo> Engine::RegisterQuery(const std::string& sql) {
  ESLEV_ASSIGN_OR_RETURN(StatementPtr stmt, ParseStatement(sql));
  return RegisterParsed(*stmt);
}

Result<QueryInfo> Engine::RegisterParsed(const Statement& stmt) {
  Planner planner(this);
  ESLEV_ASSIGN_OR_RETURN(PlannedQuery planned, planner.Plan(stmt));

  QueryInfo info;
  info.id = next_query_id_++;
  planned.query_id = info.id;

  if (planned.target_is_table) {
    info.output_table = planned.target;
  } else {
    std::string out_name = planned.target;
    if (out_name.empty()) {
      // Bare SELECT: materialize the answer as a derived stream.
      out_name = "_q" + std::to_string(info.id);
      ESLEV_RETURN_NOT_OK(CreateStream(out_name, planned.output_schema));
      derived_[AsciiToLower(out_name)] = true;
    }
    Stream* out = FindStream(out_name);
    if (out == nullptr) {
      return Status::NotFound("INSERT target not found: " + out_name);
    }
    derived_[AsciiToLower(out_name)] = true;
    auto sink = std::make_unique<StreamInsertOperator>(out);
    planned.tail->AddSink(sink.get(), 0);
    sinks_.push_back(std::move(sink));
    info.output_stream = out_name;
  }

  // Wire the source subscriptions last, so a partially built pipeline
  // never observes tuples.
  for (const auto& sub : planned.subscriptions) {
    sub.stream->Subscribe(sub.op, sub.port);
  }
  queries_.push_back(std::move(planned));
  return info;
}

Result<std::vector<Tuple>> Engine::ExecuteSnapshot(const std::string& sql) {
  ESLEV_ASSIGN_OR_RETURN(StatementPtr stmt, ParseStatement(sql));
  if (stmt->kind != StatementKind::kSelect) {
    return Status::Invalid("snapshot queries must be SELECT statements");
  }
  SnapshotExecutor executor(this, clock_);
  return executor.Execute(*static_cast<const SelectStatement&>(*stmt).select);
}

Result<std::string> Engine::Explain(const std::string& sql) {
  ESLEV_ASSIGN_OR_RETURN(StatementPtr stmt, ParseStatement(sql));
  if (stmt->kind == StatementKind::kExplain) {
    const auto& explain = static_cast<const ExplainStmt&>(*stmt);
    if (explain.mode == ExplainMode::kLint) {
      QueryAnalyzer analyzer(this);
      ESLEV_ASSIGN_OR_RETURN(std::vector<Diagnostic> diags,
                             analyzer.Analyze(*explain.inner));
      return DiagnosticsToJson(diags);
    }
    return ExplainParsed(*explain.inner,
                         explain.mode == ExplainMode::kAnalyze);
  }
  if (stmt->kind != StatementKind::kInsert &&
      stmt->kind != StatementKind::kSelect) {
    return Status::Invalid("EXPLAIN applies to SELECT / INSERT statements");
  }
  return ExplainParsed(*stmt, /*analyze=*/false);
}

Result<std::vector<Diagnostic>> Engine::Lint(const std::string& sql) const {
  QueryAnalyzer analyzer(this);
  return analyzer.AnalyzeSql(sql);
}

namespace {

// One "[tuples_in=.. tuples_out=.. ...]" annotation per plan step.
std::string OperatorCounters(const Operator& op) {
  std::string out = "  [tuples_in=" + std::to_string(op.tuples_in()) +
                    " tuples_out=" + std::to_string(op.tuples_emitted()) +
                    " heartbeats=" + std::to_string(op.heartbeats_in());
  OperatorStatList extras;
  op.AppendStats(&extras);
  for (const auto& [name, value] : extras) {
    out += " " + name + "=" + std::to_string(value);
  }
  out += "]";
  return out;
}

}  // namespace

Result<std::string> Engine::ExplainParsed(const Statement& stmt,
                                          bool analyze) {
  Planner planner(this);
  ESLEV_ASSIGN_OR_RETURN(PlannedQuery planned, planner.Plan(stmt));

  const PlannedQuery* live = nullptr;
  if (analyze) {
    // EXPLAIN ANALYZE reports the live counters of the registered query
    // with this exact plan (plan text is deterministic for the same
    // statement). First registration wins when duplicates exist.
    for (const PlannedQuery& q : queries_) {
      if (q.notes == planned.notes) {
        live = &q;
        break;
      }
    }
    if (live == nullptr) {
      return Status::NotFound(
          "EXPLAIN ANALYZE: no registered query matches this plan; "
          "register the query first");
    }
  }

  const PlannedQuery& shown = live != nullptr ? *live : planned;
  std::string out;
  if (live != nullptr) {
    out += "Query " + std::to_string(shown.query_id) + " (analyzed)\n";
  }
  for (size_t i = 0; i < shown.notes.size(); ++i) {
    out += shown.notes[i];
    if (live != nullptr && shown.note_ops[i] != nullptr) {
      out += OperatorCounters(*shown.note_ops[i]);
    }
    out += "\n";
  }
  out += "Output: (" + planned.output_schema->ToString() + ")";
  if (!planned.target.empty()) {
    out += planned.target_is_table ? " -> table " : " -> stream ";
    out += planned.target;
  }
  return out;
}

MetricsSnapshot Engine::Metrics() const {
  MetricsSnapshot snap;
  snap.gauges["engine.clock"] = static_cast<int64_t>(clock_);
  for (const auto& [key, stream] : streams_) {
    const std::string prefix = "stream." + key + ".";
    snap.counters[prefix + "tuples_in"] = stream->tuples_pushed();
    snap.counters[prefix + "heartbeats"] = stream->heartbeats_delivered();
    snap.gauges[prefix + "retained"] =
        static_cast<int64_t>(stream->retained_count());
  }
  for (const PlannedQuery& q : queries_) {
    size_t op_index = 0;
    for (size_t i = 0; i < q.note_ops.size(); ++i) {
      const Operator* op = q.note_ops[i];
      if (op == nullptr) continue;
      std::string label = op->label().empty() ? "op" : op->label();
      const std::string prefix = "query" + std::to_string(q.query_id) +
                                 ".op" + std::to_string(op_index++) + "." +
                                 label + ".";
      snap.counters[prefix + "tuples_in"] = op->tuples_in();
      snap.counters[prefix + "tuples_out"] = op->tuples_emitted();
      snap.counters[prefix + "heartbeats"] = op->heartbeats_in();
      OperatorStatList extras;
      op->AppendStats(&extras);
      for (const auto& [name, value] : extras) {
        snap.gauges[prefix + name] = value;
      }
    }
  }
  // Durability (DESIGN.md §10).
  snap.counters["recovery.checkpoints"] = checkpoints_taken_;
  snap.gauges["recovery.last_checkpoint_bytes"] =
      static_cast<int64_t>(last_checkpoint_bytes_);
  snap.gauges["recovery.last_checkpoint_duration_us"] =
      last_checkpoint_duration_us_;
  snap.counters["recovery.wal_records_replayed"] = wal_records_replayed_;
  snap.counters["recovery_truncated_frames"] = recovery_truncated_frames_;
  uint64_t suppressed = 0;
  for (const auto& [key, stream] : streams_) {
    suppressed += stream->callbacks_suppressed();
  }
  snap.counters["recovery.duplicates_suppressed"] = suppressed;
  if (wal_ != nullptr) {
    snap.counters["wal.records_appended"] = wal_->records_appended();
    snap.counters["wal.group_commits"] = wal_->group_commits();
    snap.counters["wal.bytes_written"] = wal_->bytes_written();
    snap.counters["wal.segments_sealed"] = wal_->segments_sealed();
    snap.counters["wal.segments_deleted"] = wal_->segments_deleted();
    snap.gauges["wal.sealed_segments"] =
        static_cast<int64_t>(wal_->sealed_segments().size());
    snap.gauges["wal.live_bytes"] = static_cast<int64_t>(wal_->live_bytes());
  }
  return snap;
}

Status Engine::Subscribe(const std::string& stream, TupleCallback callback) {
  Stream* s = FindStream(stream);
  if (s == nullptr) return Status::NotFound("stream not found: " + stream);
  s->SubscribeCallback(std::move(callback));
  return Status::OK();
}

Status Engine::Push(const std::string& stream, std::vector<Value> values,
                    Timestamp ts) {
  Stream* s = FindStream(stream);
  if (s == nullptr) return Status::NotFound("stream not found: " + stream);
  ESLEV_ASSIGN_OR_RETURN(Tuple tuple,
                         MakeTuple(s->schema(), std::move(values), ts));
  return PushTuple(stream, tuple);
}

Status Engine::PushTuple(const std::string& stream, const Tuple& tuple) {
  Stream* s = FindStream(stream);
  if (s == nullptr) return Status::NotFound("stream not found: " + stream);
  if (options_.enforce_monotonic_time && tuple.ts() < clock_) {
    return Status::OutOfRange(
        "out-of-order tuple: ts " + FormatTimestamp(tuple.ts()) +
        " is before the engine clock " + FormatTimestamp(clock_) +
        " (the joint tuple history is totally ordered)");
  }
  // Write-ahead: the input is durable before any of its effects.
  if (wal_ != nullptr && !replaying_) {
    ESLEV_ASSIGN_OR_RETURN(uint64_t lsn, wal_->AppendTuple(s->name(), tuple));
    (void)lsn;
  }
  clock_ = std::max(clock_, tuple.ts());
  return s->Push(tuple);
}

Status Engine::AdvanceTime(Timestamp now) {
  if (options_.enforce_monotonic_time && now < clock_) {
    return Status::OutOfRange("time cannot move backwards");
  }
  if (wal_ != nullptr && !replaying_) {
    ESLEV_ASSIGN_OR_RETURN(uint64_t lsn, wal_->AppendHeartbeat("", now));
    (void)lsn;
  }
  clock_ = std::max(clock_, now);
  for (auto& [key, stream] : streams_) {
    if (derived_.count(key)) continue;  // reached through the pipelines
    ESLEV_RETURN_NOT_OK(stream->Heartbeat(now));
  }
  return Status::OK();
}

}  // namespace eslev
