#include "core/engine.h"

#include "analysis/analyzer.h"
#include "common/env.h"
#include "common/string_util.h"
#include "expr/sql_uda.h"
#include "plan/snapshot_executor.h"

namespace eslev {

Engine::Engine(EngineOptions options) : options_(options) {
  // Resolve the batch knob up front; a constructor cannot return a
  // Status, so a bad value (option out of range, malformed
  // ESLEV_BATCH_SIZE) parks the engine in an error state surfaced by the
  // first API call instead of being silently ignored.
  if (options_.honor_batch_env) {
    auto resolved = ResolveBatchSize(options_.batch_size);
    if (!resolved.ok()) {
      init_error_ = resolved.status();
      return;
    }
    batch_size_ = *resolved;
  } else {
    if (options_.batch_size < 1 ||
        options_.batch_size > static_cast<size_t>(kMaxBatchSize)) {
      init_error_ = Status::Invalid(
          "batch_size=" + std::to_string(options_.batch_size) +
          " is out of range; accepted range is [1, " +
          std::to_string(kMaxBatchSize) + "]");
      return;
    }
    batch_size_ = options_.batch_size;
  }
  auto backend = ResolveSeqBackend(options_.seq_backend);
  if (!backend.ok()) {
    init_error_ = backend.status();
    return;
  }
  seq_backend_ = *backend;
  // Ingest knobs (DESIGN.md §15), validated exactly like the batch knob.
  if (options_.honor_ingest_env) {
    auto ingest = ResolveIngestOptions(options_.ingest);
    if (!ingest.ok()) {
      init_error_ = ingest.status();
      return;
    }
    ingest_options_ = *ingest;
  } else {
    Status st = ValidateIngestOptions(options_.ingest);
    if (!st.ok()) {
      init_error_ = st;
      return;
    }
    ingest_options_ = options_.ingest;
  }
  if (ingest_options_.enabled()) {
    ingest_ = std::make_unique<IngestPipeline>(ingest_options_);
    ingest_->BindDelivery(
        [this](size_t port, const Tuple& t) {
          Stream* s = IngestPortStream(port);
          if (s == nullptr) {
            return Status::IoError("ingest delivery for unknown port");
          }
          return DeliverTuple(s, ingest_->port_name(port), t);
        },
        [this](size_t port, const TupleBatch& batch) {
          Stream* s = IngestPortStream(port);
          if (s == nullptr) {
            return Status::IoError("ingest delivery for unknown port");
          }
          return DeliverBatch(s, batch);
        },
        [this](Timestamp now) { return DeliverHeartbeat(now); });
  }
}

Engine::~Engine() = default;

Status Engine::CreateStream(const std::string& name, SchemaPtr schema) {
  const std::string key = AsciiToLower(name);
  if (streams_.count(key) || tables_.count(key)) {
    return Status::AlreadyExists("stream or table already exists: " + name);
  }
  auto stream = std::make_unique<Stream>(name, std::move(schema));
  if (options_.default_retention > 0) {
    stream->SetRetention(options_.default_retention);
  }
  streams_.emplace(key, std::move(stream));
  return Status::OK();
}

Status Engine::CreateTable(const std::string& name, SchemaPtr schema) {
  const std::string key = AsciiToLower(name);
  if (streams_.count(key) || tables_.count(key)) {
    return Status::AlreadyExists("stream or table already exists: " + name);
  }
  tables_.emplace(key, std::make_unique<Table>(name, std::move(schema)));
  return Status::OK();
}

Stream* Engine::FindStream(const std::string& name) const {
  auto it = streams_.find(AsciiToLower(name));
  return it == streams_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Engine::StreamNames() const {
  std::vector<std::string> names;
  names.reserve(streams_.size());
  for (const auto& [key, stream] : streams_) {
    names.push_back(stream->name());
  }
  return names;
}

Table* Engine::FindTable(const std::string& name) const {
  auto it = tables_.find(AsciiToLower(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

Status Engine::ExecuteScript(const std::string& sql) {
  ESLEV_RETURN_NOT_OK(init_error_);
  ESLEV_ASSIGN_OR_RETURN(auto statements, ParseScript(sql));
  for (const StatementPtr& stmt : statements) {
    ESLEV_RETURN_NOT_OK(ExecuteStatement(*stmt));
  }
  return Status::OK();
}

Status Engine::ExecuteStatement(const Statement& stmt) {
  switch (stmt.kind) {
    case StatementKind::kCreateStream:
    case StatementKind::kCreateTable: {
      const auto& create = static_cast<const CreateStmt&>(stmt);
      SchemaPtr schema = Schema::Make(create.fields);
      if (create.is_stream) {
        return CreateStream(create.name, std::move(schema));
      }
      return CreateTable(create.name, std::move(schema));
    }
    case StatementKind::kCreateAggregate: {
      const auto& create = static_cast<const CreateAggregateStmt&>(stmt);
      ESLEV_ASSIGN_OR_RETURN(AggregateFunction fn,
                             CompileSqlUda(create, registry_));
      return registry_.RegisterAggregate(std::move(fn));
    }
    case StatementKind::kInsert:
    case StatementKind::kSelect: {
      ESLEV_ASSIGN_OR_RETURN(QueryInfo info, RegisterParsed(stmt));
      (void)info;
      return Status::OK();
    }
    case StatementKind::kExplain:
      return Status::Invalid(
          "EXPLAIN produces text; use Engine::Explain instead of "
          "ExecuteScript");
  }
  return Status::Invalid("unknown statement kind");
}

Result<QueryInfo> Engine::RegisterQuery(const std::string& sql) {
  ESLEV_RETURN_NOT_OK(init_error_);
  ESLEV_ASSIGN_OR_RETURN(StatementPtr stmt, ParseStatement(sql));
  return RegisterParsed(*stmt);
}

Result<QueryInfo> Engine::RegisterParsed(const Statement& stmt) {
  // Topology changes are batch boundaries: a pipeline must never observe
  // tuples pushed before it was registered.
  ESLEV_RETURN_NOT_OK(FlushBatches());
  Planner planner(this, seq_backend_);
  ESLEV_ASSIGN_OR_RETURN(PlannedQuery planned, planner.Plan(stmt));

  QueryInfo info;
  info.id = next_query_id_++;
  planned.query_id = info.id;

  if (planned.target_is_table) {
    info.output_table = planned.target;
  } else {
    std::string out_name = planned.target;
    if (out_name.empty()) {
      // Bare SELECT: materialize the answer as a derived stream.
      out_name = "_q" + std::to_string(info.id);
      ESLEV_RETURN_NOT_OK(CreateStream(out_name, planned.output_schema));
      derived_[AsciiToLower(out_name)] = true;
    }
    Stream* out = FindStream(out_name);
    if (out == nullptr) {
      return Status::NotFound("INSERT target not found: " + out_name);
    }
    derived_[AsciiToLower(out_name)] = true;
    auto sink = std::make_unique<StreamInsertOperator>(out);
    planned.tail->AddSink(sink.get(), 0);
    planned.sink = sink.get();
    sinks_.push_back(std::move(sink));
    info.output_stream = out_name;
  }

  // Wire the source subscriptions last, so a partially built pipeline
  // never observes tuples.
  for (const auto& sub : planned.subscriptions) {
    sub.stream->Subscribe(sub.op, sub.port);
  }
  queries_.push_back(std::move(planned));
  RecomputeBatchSafety();
  return info;
}

Status Engine::UnregisterQuery(int id) {
  ESLEV_RETURN_NOT_OK(init_error_);
  // Topology changes are batch boundaries, exactly like registration.
  ESLEV_RETURN_NOT_OK(FlushBatches());
  size_t index = queries_.size();
  for (size_t i = 0; i < queries_.size(); ++i) {
    if (queries_[i].query_id == id) {
      index = i;
      break;
    }
  }
  if (index == queries_.size()) {
    return Status::NotFound("no registered query with id " +
                            std::to_string(id));
  }
  PlannedQuery& q = queries_[index];
  // A bare SELECT owns its auto-created `_q<id>` stream; it cannot be
  // dropped while another query still reads from it.
  std::string owned_stream;
  if (!q.target_is_table && q.target.empty()) {
    owned_stream = "_q" + std::to_string(id);
  }
  if (!owned_stream.empty()) {
    Stream* out = FindStream(owned_stream);
    for (const PlannedQuery& other : queries_) {
      if (other.query_id == id) continue;
      for (const auto& sub : other.subscriptions) {
        if (sub.stream == out) {
          return Status::Invalid(
              "cannot unregister query " + std::to_string(id) +
              ": its output stream " + owned_stream + " feeds query " +
              std::to_string(other.query_id));
        }
      }
    }
  }
  // Detach from the sources first so no in-flight delivery can reach a
  // half-destroyed pipeline, then drop the sink and the operators.
  for (const auto& sub : q.subscriptions) {
    sub.stream->Unsubscribe(sub.op);
  }
  if (q.sink != nullptr) {
    for (auto it = sinks_.begin(); it != sinks_.end(); ++it) {
      if (it->get() == q.sink) {
        sinks_.erase(it);
        break;
      }
    }
  }
  queries_.erase(queries_.begin() + index);
  if (!owned_stream.empty()) {
    Stream* out = FindStream(owned_stream);
    for (Stream*& cached : ingest_port_streams_) {
      if (cached == out) cached = nullptr;
    }
    streams_.erase(AsciiToLower(owned_stream));
  }
  // Re-derive the derived-stream set: an INSERT target whose last
  // producer just vanished must resume receiving source heartbeats.
  derived_.clear();
  for (const PlannedQuery& other : queries_) {
    if (other.target_is_table) continue;
    const std::string out = other.target.empty()
                                ? "_q" + std::to_string(other.query_id)
                                : other.target;
    derived_[AsciiToLower(out)] = true;
  }
  RecomputeBatchSafety();
  return Status::OK();
}

Status Engine::SetNextQueryId(int id) {
  ESLEV_RETURN_NOT_OK(init_error_);
  if (id < 1) {
    return Status::Invalid("next query id must be >= 1, got " +
                           std::to_string(id));
  }
  for (const PlannedQuery& q : queries_) {
    if (q.query_id >= id) {
      return Status::Invalid(
          "next query id " + std::to_string(id) +
          " does not exceed registered query " + std::to_string(q.query_id));
    }
  }
  next_query_id_ = id;
  return Status::OK();
}

void Engine::RecomputeBatchSafety() {
  // Batching preserves each subscription's emission sequence only when
  // pipelines do not couple through shared mutable state or mixed
  // raw/derived inputs (DESIGN.md §13). Disable it — the engine silently
  // runs tuple-at-a-time — when any registered query:
  //   1. writes a table (readable mid-batch by other pipelines),
  //   2. joins a derived stream with another stream (tuple mode
  //      interleaves source and derived arrivals; batch mode delivers
  //      them as separate runs),
  //   3. shares its output stream with another query (producer
  //      interleaving into the shared stream would change), or
  //   4. subscribes to the same stream on several ports (per-tuple
  //      port alternation would become per-run).
  batching_safe_ = true;
  std::map<std::string, int> producers;
  for (const PlannedQuery& q : queries_) {
    if (q.target_is_table) {
      batching_safe_ = false;
      return;
    }
    if (!q.target.empty()) {
      if (++producers[AsciiToLower(q.target)] > 1) {
        batching_safe_ = false;
        return;
      }
    }
    bool any_derived = false;
    std::map<std::string, int> per_stream_ports;
    std::map<std::string, bool> distinct;
    for (const auto& sub : q.subscriptions) {
      const std::string key = AsciiToLower(sub.stream->name());
      distinct[key] = true;
      if (derived_.count(key)) any_derived = true;
      if (++per_stream_ports[key] > 1) {
        batching_safe_ = false;
        return;
      }
    }
    if (any_derived && distinct.size() > 1) {
      batching_safe_ = false;
      return;
    }
  }
}

Result<std::vector<Tuple>> Engine::ExecuteSnapshot(const std::string& sql) {
  // Snapshots read tables and retained history: make pending effects
  // visible first.
  ESLEV_RETURN_NOT_OK(FlushBatches());
  ESLEV_ASSIGN_OR_RETURN(StatementPtr stmt, ParseStatement(sql));
  if (stmt->kind != StatementKind::kSelect) {
    return Status::Invalid("snapshot queries must be SELECT statements");
  }
  SnapshotExecutor executor(this, clock_);
  return executor.Execute(*static_cast<const SelectStatement&>(*stmt).select);
}

Result<std::string> Engine::Explain(const std::string& sql) {
  // EXPLAIN ANALYZE reads live counters: settle pending batches first.
  ESLEV_RETURN_NOT_OK(FlushBatches());
  ESLEV_ASSIGN_OR_RETURN(StatementPtr stmt, ParseStatement(sql));
  if (stmt->kind == StatementKind::kExplain) {
    const auto& explain = static_cast<const ExplainStmt&>(*stmt);
    if (explain.mode == ExplainMode::kLint) {
      QueryAnalyzer analyzer(this);
      ESLEV_ASSIGN_OR_RETURN(std::vector<Diagnostic> diags,
                             analyzer.Analyze(*explain.inner));
      return DiagnosticsToJson(diags);
    }
    if (explain.mode == ExplainMode::kCost) {
      CostAnalyzer analyzer(this, seq_backend_);
      ESLEV_ASSIGN_OR_RETURN(QueryCostReport report,
                             analyzer.Analyze(*explain.inner));
      return report.ToJson();
    }
    return ExplainParsed(*explain.inner,
                         explain.mode == ExplainMode::kAnalyze);
  }
  if (stmt->kind != StatementKind::kInsert &&
      stmt->kind != StatementKind::kSelect) {
    return Status::Invalid("EXPLAIN applies to SELECT / INSERT statements");
  }
  return ExplainParsed(*stmt, /*analyze=*/false);
}

Result<std::vector<Diagnostic>> Engine::Lint(const std::string& sql) const {
  QueryAnalyzer analyzer(this);
  return analyzer.AnalyzeSql(sql);
}

Result<std::vector<QueryCostReport>> Engine::AnalyzeCost(
    const std::string& sql) const {
  ESLEV_ASSIGN_OR_RETURN(auto statements, ParseScript(sql));
  CostAnalyzer analyzer(this, seq_backend_);
  std::vector<QueryCostReport> out;
  for (const StatementPtr& stmt : statements) {
    if (stmt->kind != StatementKind::kSelect &&
        stmt->kind != StatementKind::kInsert) {
      continue;
    }
    ESLEV_ASSIGN_OR_RETURN(QueryCostReport report, analyzer.Analyze(*stmt));
    out.push_back(std::move(report));
  }
  return out;
}

Status Engine::DeclareStreamStats(const std::string& stream,
                                  StreamStats stats) {
  const std::string key = AsciiToLower(stream);
  if (streams_.find(key) == streams_.end()) {
    return Status::NotFound("DeclareStreamStats: unknown stream " + stream);
  }
  stream_stats_[key] = stats;
  return Status::OK();
}

const StreamStats* Engine::FindStreamStats(const std::string& name) const {
  const auto it = stream_stats_.find(AsciiToLower(name));
  return it == stream_stats_.end() ? nullptr : &it->second;
}

namespace {

// One "[tuples_in=.. tuples_out=.. ...]" annotation per plan step.
std::string OperatorCounters(const Operator& op) {
  std::string out = "  [tuples_in=" + std::to_string(op.tuples_in()) +
                    " tuples_out=" + std::to_string(op.tuples_emitted()) +
                    " heartbeats=" + std::to_string(op.heartbeats_in());
  if (op.batches_in() > 0) {
    out += " batches_in=" + std::to_string(op.batches_in()) +
           " batch_fallback_tuples=" +
           std::to_string(op.batch_fallback_tuples());
  }
  OperatorStatList extras;
  op.AppendStats(&extras);
  for (const auto& [name, value] : extras) {
    out += " " + name + "=" + std::to_string(value);
  }
  out += "]";
  return out;
}

}  // namespace

Result<std::string> Engine::ExplainParsed(const Statement& stmt,
                                          bool analyze) {
  Planner planner(this, seq_backend_);
  ESLEV_ASSIGN_OR_RETURN(PlannedQuery planned, planner.Plan(stmt));

  const PlannedQuery* live = nullptr;
  if (analyze) {
    // EXPLAIN ANALYZE reports the live counters of the registered query
    // with this exact plan (plan text is deterministic for the same
    // statement). First registration wins when duplicates exist.
    for (const PlannedQuery& q : queries_) {
      if (q.notes == planned.notes) {
        live = &q;
        break;
      }
    }
    if (live == nullptr) {
      return Status::NotFound(
          "EXPLAIN ANALYZE: no registered query matches this plan; "
          "register the query first");
    }
  }

  const PlannedQuery& shown = live != nullptr ? *live : planned;
  std::string out;
  if (live != nullptr) {
    out += "Query " + std::to_string(shown.query_id) + " (analyzed)\n";
    if (ingest_ != nullptr) {
      out += ingest_->ExplainLine() + "\n";
    }
  }
  for (size_t i = 0; i < shown.notes.size(); ++i) {
    out += shown.notes[i];
    if (live != nullptr && shown.note_ops[i] != nullptr) {
      out += OperatorCounters(*shown.note_ops[i]);
    }
    out += "\n";
  }
  out += "Output: (" + planned.output_schema->ToString() + ")";
  if (!planned.target.empty()) {
    out += planned.target_is_table ? " -> table " : " -> stream ";
    out += planned.target;
  }
  return out;
}

MetricsSnapshot Engine::Metrics() const {
  MetricsSnapshot snap;
  snap.gauges["engine.clock"] = static_cast<int64_t>(clock_);
  for (const auto& [key, stream] : streams_) {
    const std::string prefix = "stream." + key + ".";
    snap.counters[prefix + "tuples_in"] = stream->tuples_pushed();
    snap.counters[prefix + "heartbeats"] = stream->heartbeats_delivered();
    snap.gauges[prefix + "retained"] =
        static_cast<int64_t>(stream->retained_count());
  }
  for (const PlannedQuery& q : queries_) {
    size_t op_index = 0;
    for (size_t i = 0; i < q.note_ops.size(); ++i) {
      const Operator* op = q.note_ops[i];
      if (op == nullptr) continue;
      std::string label = op->label().empty() ? "op" : op->label();
      const std::string prefix = "query" + std::to_string(q.query_id) +
                                 ".op" + std::to_string(op_index++) + "." +
                                 label + ".";
      snap.counters[prefix + "tuples_in"] = op->tuples_in();
      snap.counters[prefix + "tuples_out"] = op->tuples_emitted();
      snap.counters[prefix + "heartbeats"] = op->heartbeats_in();
      snap.counters[prefix + "batches_in"] = op->batches_in();
      snap.counters[prefix + "batch_fallback_tuples"] =
          op->batch_fallback_tuples();
      OperatorStatList extras;
      op->AppendStats(&extras);
      for (const auto& [name, value] : extras) {
        snap.gauges[prefix + name] = value;
        // NFA-backed sequence operators prefix their automaton gauges
        // with "nfa_"; aggregate them engine-wide as seq.nfa.* so run
        // growth is observable without enumerating queries (§14).
        if (name.rfind("nfa_", 0) == 0) {
          snap.gauges["seq.nfa." + name.substr(4)] += value;
        }
      }
    }
  }
  snap.gauges["seq.backend"] = static_cast<int64_t>(seq_backend_);
  // Vectorized execution (DESIGN.md §13).
  snap.gauges["batch.size"] = static_cast<int64_t>(batch_size_);
  snap.gauges["batch.safe"] = batching_safe_ ? 1 : 0;
  snap.gauges["batch.pending"] = static_cast<int64_t>(pending_batch_.size());
  snap.counters["batch.batches_dispatched"] = batches_dispatched_;
  snap.counters["batch.tuples_batched"] = tuples_batched_;
  snap.gauges["batch.avg_fill_x100"] =
      batches_dispatched_ == 0
          ? 0
          : static_cast<int64_t>(tuples_batched_ * 100 / batches_dispatched_);
  uint64_t fallback = 0;
  for (const PlannedQuery& q : queries_) {
    for (const Operator* op : q.note_ops) {
      if (op != nullptr) fallback += op->batch_fallback_tuples();
    }
  }
  if (ingest_ != nullptr) {
    // Ingest stages sit upstream of every query; they count against the
    // same fallback budget so a per-tuple ingest path is visible here.
    for (const Operator* op : ingest_->stages()) {
      fallback += op->batch_fallback_tuples();
    }
  }
  snap.counters["batch.fallback_tuples"] = fallback;
  // Ingest (DESIGN.md §15).
  if (ingest_ != nullptr) {
    snap.gauges["ingest.input_clock"] =
        static_cast<int64_t>(ingest_input_clock_);
    ingest_->AppendMetrics(&snap);
  } else {
    snap.gauges["ingest.enabled"] = 0;
  }
  // Durability (DESIGN.md §10).
  snap.counters["recovery.checkpoints"] = checkpoints_taken_;
  snap.gauges["recovery.last_checkpoint_bytes"] =
      static_cast<int64_t>(last_checkpoint_bytes_);
  snap.gauges["recovery.last_checkpoint_duration_us"] =
      last_checkpoint_duration_us_;
  snap.counters["recovery.wal_records_replayed"] = wal_records_replayed_;
  snap.counters["recovery_truncated_frames"] = recovery_truncated_frames_;
  uint64_t suppressed = 0;
  for (const auto& [key, stream] : streams_) {
    suppressed += stream->callbacks_suppressed();
  }
  snap.counters["recovery.duplicates_suppressed"] = suppressed;
  if (wal_ != nullptr) {
    snap.counters["wal.records_appended"] = wal_->records_appended();
    snap.counters["wal.group_commits"] = wal_->group_commits();
    snap.counters["wal.bytes_written"] = wal_->bytes_written();
    snap.counters["wal.segments_sealed"] = wal_->segments_sealed();
    snap.counters["wal.segments_deleted"] = wal_->segments_deleted();
    snap.gauges["wal.sealed_segments"] =
        static_cast<int64_t>(wal_->sealed_segments().size());
    snap.gauges["wal.live_bytes"] = static_cast<int64_t>(wal_->live_bytes());
  }
  return snap;
}

Status Engine::Subscribe(const std::string& stream, TupleCallback callback) {
  // A new callback must observe only future tuples.
  ESLEV_RETURN_NOT_OK(FlushBatches());
  Stream* s = FindStream(stream);
  if (s == nullptr) return Status::NotFound("stream not found: " + stream);
  s->SubscribeCallback(std::move(callback));
  return Status::OK();
}

Status Engine::Push(const std::string& stream, std::vector<Value> values,
                    Timestamp ts) {
  Stream* s = FindStream(stream);
  if (s == nullptr) return Status::NotFound("stream not found: " + stream);
  ESLEV_ASSIGN_OR_RETURN(Tuple tuple,
                         MakeTuple(s->schema(), std::move(values), ts));
  return PushTuple(stream, tuple);
}

Status Engine::PushTuple(const std::string& stream, const Tuple& tuple) {
  ESLEV_RETURN_NOT_OK(init_error_);
  Stream* s = FindStream(stream);
  if (s == nullptr) return Status::NotFound("stream not found: " + stream);
  const std::string key = AsciiToLower(stream);
  // Ingest path (DESIGN.md §15): source-stream pushes go through the
  // reorder/cleaning pipeline; it re-enters DeliverTuple with ordered,
  // cleaned output. Direct pushes into derived streams bypass ingest.
  if (ingest_ != nullptr && derived_.count(key) == 0) {
    // With a reorder stage, disorder up to the lateness bound is the
    // point — the stage owns the policy (buffer, or count as late).
    // Without one, the cleaning stage still requires ordered input.
    if (ingest_options_.lateness_bound == 0 &&
        options_.enforce_monotonic_time && tuple.ts() < ingest_input_clock_) {
      return Status::OutOfRange(
          "out-of-order tuple: ts " + FormatTimestamp(tuple.ts()) +
          " is before the ingest clock " +
          FormatTimestamp(ingest_input_clock_) +
          " (configure ingest.lateness_bound for disordered input)");
    }
    if (wal_ != nullptr && !replaying_) {
      ESLEV_ASSIGN_OR_RETURN(uint64_t lsn, wal_->AppendTuple(s->name(), tuple));
      (void)lsn;
    }
    ingest_input_clock_ = std::max(ingest_input_clock_, tuple.ts());
    const size_t port = ingest_->PortFor(key);
    if (port >= ingest_port_streams_.size()) {
      ingest_port_streams_.resize(port + 1, nullptr);
    }
    ingest_port_streams_[port] = s;
    return ingest_->Offer(port, tuple);
  }
  if (options_.enforce_monotonic_time && tuple.ts() < clock_) {
    return Status::OutOfRange(
        "out-of-order tuple: ts " + FormatTimestamp(tuple.ts()) +
        " is before the engine clock " + FormatTimestamp(clock_) +
        " (the joint tuple history is totally ordered)");
  }
  // Write-ahead: the input is durable before any of its effects — and
  // before it is buffered, so a crash with a pending batch loses nothing.
  if (wal_ != nullptr && !replaying_) {
    ESLEV_ASSIGN_OR_RETURN(uint64_t lsn, wal_->AppendTuple(s->name(), tuple));
    (void)lsn;
  }
  return DeliverTuple(s, key, tuple);
}

Status Engine::DeliverTuple(Stream* s, const std::string& key,
                            const Tuple& tuple) {
  clock_ = std::max(clock_, tuple.ts());
  if (batch_size_ <= 1 || !batching_safe_) {
    return s->Push(tuple);
  }
  // Direct pushes into a derived stream must not be reordered relative
  // to pipeline emissions into it: settle pending work, then deliver
  // immediately.
  if (derived_.count(key)) {
    ESLEV_RETURN_NOT_OK(FlushBatches());
    return s->Push(tuple);
  }
  // Auto-batching: a batch is a run of consecutive same-stream pushes,
  // so switching streams is a batch boundary (cross-stream arrival order
  // — e.g. a SEQ joint history — is preserved exactly).
  if (pending_stream_ != nullptr && pending_stream_ != s) {
    ESLEV_RETURN_NOT_OK(FlushBatches());
  }
  pending_stream_ = s;
  if (pending_batch_.empty()) pending_batch_.Reserve(batch_size_);
  pending_batch_.Add(tuple);
  if (pending_batch_.size() >= batch_size_) {
    return FlushBatches();
  }
  return Status::OK();
}

Status Engine::DeliverBatch(Stream* s, const TupleBatch& batch) {
  ESLEV_RETURN_NOT_OK(FlushBatches());
  clock_ = std::max(clock_, batch.back_ts());
  if (!batching_safe_) {
    for (const Tuple& t : batch.tuples()) {
      ESLEV_RETURN_NOT_OK(s->Push(t));
    }
    return Status::OK();
  }
  ++batches_dispatched_;
  tuples_batched_ += batch.size();
  return s->PushBatch(batch);
}

Status Engine::DeliverHeartbeat(Timestamp now) {
  // The ingest release frontier only moves forward, but deliver pending
  // batches before the tick so expirations observe them (§13).
  ESLEV_RETURN_NOT_OK(FlushBatches());
  clock_ = std::max(clock_, now);
  for (auto& [key, stream] : streams_) {
    if (derived_.count(key)) continue;  // reached through the pipelines
    ESLEV_RETURN_NOT_OK(stream->Heartbeat(now));
  }
  return Status::OK();
}

Stream* Engine::IngestPortStream(size_t port) {
  if (port < ingest_port_streams_.size() &&
      ingest_port_streams_[port] != nullptr) {
    return ingest_port_streams_[port];
  }
  Stream* s = FindStream(ingest_->port_name(port));
  if (s != nullptr) {
    if (port >= ingest_port_streams_.size()) {
      ingest_port_streams_.resize(port + 1, nullptr);
    }
    ingest_port_streams_[port] = s;
  }
  return s;
}

Status Engine::SetIngestLateHandler(
    std::function<Status(const std::string& stream, const Tuple&)> handler) {
  ESLEV_RETURN_NOT_OK(init_error_);
  if (ingest_ == nullptr || ingest_options_.lateness_bound == 0) {
    return Status::Invalid(
        "no ingest reorder stage configured (set ingest.lateness_bound)");
  }
  ingest_->SetLateHandler(std::move(handler));
  return Status::OK();
}

Status Engine::PushBatch(const std::string& stream, const TupleBatch& batch) {
  ESLEV_RETURN_NOT_OK(init_error_);
  if (batch.empty()) return Status::OK();
  Stream* s = FindStream(stream);
  if (s == nullptr) return Status::NotFound("stream not found: " + stream);
  ESLEV_RETURN_NOT_OK(FlushBatches());
  const std::string key = AsciiToLower(stream);
  if (ingest_ != nullptr && derived_.count(key) == 0) {
    const bool check_order = ingest_options_.lateness_bound == 0 &&
                             options_.enforce_monotonic_time;
    Timestamp prev = ingest_input_clock_;
    for (const Tuple& t : batch.tuples()) {
      if (check_order && t.ts() < prev) {
        return Status::OutOfRange(
            "out-of-order tuple in batch: ts " + FormatTimestamp(t.ts()) +
            " is before " + FormatTimestamp(prev) +
            " (configure ingest.lateness_bound for disordered input)");
      }
      prev = std::max(prev, t.ts());
      if (wal_ != nullptr && !replaying_) {
        ESLEV_ASSIGN_OR_RETURN(uint64_t lsn, wal_->AppendTuple(s->name(), t));
        (void)lsn;
      }
    }
    ingest_input_clock_ = std::max(ingest_input_clock_, prev);
    const size_t port = ingest_->PortFor(key);
    if (port >= ingest_port_streams_.size()) {
      ingest_port_streams_.resize(port + 1, nullptr);
    }
    ingest_port_streams_[port] = s;
    return ingest_->OfferBatch(port, batch);
  }
  Timestamp prev = clock_;
  for (const Tuple& t : batch.tuples()) {
    if (options_.enforce_monotonic_time && t.ts() < prev) {
      return Status::OutOfRange(
          "out-of-order tuple in batch: ts " + FormatTimestamp(t.ts()) +
          " is before " + FormatTimestamp(prev) +
          " (the joint tuple history is totally ordered)");
    }
    prev = std::max(prev, t.ts());
    if (wal_ != nullptr && !replaying_) {
      ESLEV_ASSIGN_OR_RETURN(uint64_t lsn, wal_->AppendTuple(s->name(), t));
      (void)lsn;
    }
  }
  clock_ = std::max(clock_, batch.back_ts());
  // A topology the safety analysis flagged (RecomputeBatchSafety) must
  // not see a multi-tuple crossing even from a pre-formed batch — the
  // sharded routing layer hands those to its shard engines regardless of
  // what queries they registered.
  if (!batching_safe_) {
    for (const Tuple& t : batch.tuples()) {
      ESLEV_RETURN_NOT_OK(s->Push(t));
    }
    return Status::OK();
  }
  ++batches_dispatched_;
  tuples_batched_ += batch.size();
  return s->PushBatch(batch);
}

Status Engine::FlushBatches() {
  if (pending_stream_ == nullptr || pending_batch_.empty()) {
    return Status::OK();
  }
  Stream* s = pending_stream_;
  // Detach before dispatch so re-entrant pushes from user callbacks
  // start a fresh batch instead of corrupting the in-flight one.
  TupleBatch batch = std::move(pending_batch_);
  pending_batch_.Clear();
  pending_stream_ = nullptr;
  ++batches_dispatched_;
  tuples_batched_ += batch.size();
  Status st = s->PushBatch(batch);
  // Donate the heap capacity back for the next run (unless a re-entrant
  // push already started buffering into a fresh batch).
  if (pending_batch_.empty()) {
    batch.Clear();
    std::swap(pending_batch_, batch);
  }
  return st;
}

Status Engine::AdvanceTime(Timestamp now) {
  ESLEV_RETURN_NOT_OK(init_error_);
  // Ingest path: the tick is recorded raw, then drives the reorder /
  // cleaning frontiers; the pipeline re-enters DeliverHeartbeat with the
  // held-back downstream frontier (now − lateness − window) once it is
  // safe — no in-bound arrival can precede it.
  if (ingest_ != nullptr) {
    if (options_.enforce_monotonic_time && now < ingest_input_clock_) {
      return Status::OutOfRange("time cannot move backwards");
    }
    if (wal_ != nullptr && !replaying_) {
      ESLEV_ASSIGN_OR_RETURN(uint64_t lsn, wal_->AppendHeartbeat("", now));
      (void)lsn;
    }
    ingest_input_clock_ = std::max(ingest_input_clock_, now);
    return ingest_->Heartbeat(now);
  }
  if (options_.enforce_monotonic_time && now < clock_) {
    return Status::OutOfRange("time cannot move backwards");
  }
  // Heartbeats are batch boundaries (DESIGN.md §13): deliver pending
  // tuples before the clock tick so expirations fire exactly as in
  // tuple-at-a-time mode.
  ESLEV_RETURN_NOT_OK(FlushBatches());
  if (wal_ != nullptr && !replaying_) {
    ESLEV_ASSIGN_OR_RETURN(uint64_t lsn, wal_->AppendHeartbeat("", now));
    (void)lsn;
  }
  clock_ = std::max(clock_, now);
  for (auto& [key, stream] : streams_) {
    if (derived_.count(key)) continue;  // reached through the pipelines
    ESLEV_RETURN_NOT_OK(stream->Heartbeat(now));
  }
  return Status::OK();
}

}  // namespace eslev
