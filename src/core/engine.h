// Engine: the public API of the ESL-EV DSMS.
//
// Typical usage (Example 1, duplicate elimination):
// \code
//   Engine engine;
//   ESLEV_CHECK_OK(engine.ExecuteScript(R"sql(
//     CREATE STREAM readings(reader_id, tag_id, read_time);
//     CREATE STREAM cleaned_readings(reader_id, tag_id, read_time);
//     INSERT INTO cleaned_readings
//     SELECT * FROM readings AS r1
//     WHERE NOT EXISTS
//       (SELECT * FROM TABLE( readings OVER
//           (RANGE 1 seconds PRECEDING CURRENT)) AS r2
//        WHERE r2.reader_id = r1.reader_id AND r2.tag_id = r1.tag_id);
//   )sql"));
//   engine.Subscribe("cleaned_readings", [](const Tuple& t) { ... });
//   engine.Push("readings", {...values...}, ts);
// \endcode
//
// Execution is single-threaded run-to-completion: Push() drives a tuple
// through every subscribed pipeline before returning; AdvanceTime()
// delivers heartbeats (active expiration) without tuples.

#ifndef ESLEV_CORE_ENGINE_H_
#define ESLEV_CORE_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/cost_model.h"
#include "analysis/diagnostic.h"
#include "cep/seq_backend.h"
#include "common/metrics.h"
#include "ingest/ingest_pipeline.h"
#include "plan/catalog.h"
#include "plan/planner.h"
#include "recovery/wal.h"
#include "sql/parser.h"
#include "types/tuple_batch.h"

namespace eslev {

struct EngineOptions {
  /// Retention for ad-hoc snapshot queries over streams; 0 disables.
  /// Individual streams can override via Stream::SetRetention.
  Duration default_retention = 0;
  /// Reject out-of-order Push timestamps (the paper's joint tuple
  /// history is totally ordered). When false, out-of-order tuples are
  /// accepted and processed in arrival order.
  bool enforce_monotonic_time = true;
  /// Vectorized execution (DESIGN.md §13): consecutive PushTuple calls
  /// to the same stream accumulate into a TupleBatch dispatched as one
  /// pipeline crossing. 1 (the default) is tuple-at-a-time execution.
  /// Output is byte-identical per subscription at any batch size.
  size_t batch_size = 1;
  /// When true, ESLEV_BATCH_SIZE in the environment overrides
  /// `batch_size` (validated; invalid values surface as an error from
  /// the first API call). Embedded engines — shard workers, standbys —
  /// set this false so the knob applies once at the front end.
  bool honor_batch_env = true;
  /// Which matcher executes SEQ / EXCEPTION_SEQ predicates (DESIGN.md
  /// §14). ESLEV_SEQ_BACKEND in the environment overrides this
  /// (validated; malformed values surface as an error from the first API
  /// call). Both backends are byte-identical in output.
  SeqBackend seq_backend = SeqBackend::kHistory;
  /// Ingest subsystem (DESIGN.md §15): bounded reordering and RFID read
  /// cleaning between stream sources and the pipelines. Disabled by
  /// default (all bounds 0) — input must arrive in timestamp order.
  IngestOptions ingest;
  /// When true, ESLEV_INGEST_* environment variables override `ingest`
  /// (validated like ESLEV_BATCH_SIZE). Embedded engines — shard
  /// workers, standbys — set this false; ingest applies once at the
  /// front end.
  bool honor_ingest_env = true;
};

/// \brief Controls duplicate suppression during WAL replay (DESIGN.md
/// §10). The checkpoint records each stream's lifetime push count, which
/// doubles as the last-emitted sequence number of every derived stream.
struct ReplayOptions {
  /// false (default): user callbacks stay muted for the whole replay —
  /// correct for synchronous consumers, which had already observed every
  /// replayed emission before the crash. true: callbacks fire for every
  /// replayed tuple (at-least-once consumers).
  bool deliver_callbacks = false;
  /// Per-stream override (name, case-insensitive): callbacks fire only
  /// for emissions with sequence number > the given value. Lets a
  /// consumer that durably acknowledged N emissions receive exactly the
  /// lost tail. Takes precedence over `deliver_callbacks`.
  std::map<std::string, uint64_t> deliver_after;
};

/// \brief Outcome of a WAL replay.
struct ReplayStats {
  uint64_t records_replayed = 0;
  /// Records at or below the checkpoint's covered LSN (already folded
  /// into the restored state).
  uint64_t records_skipped = 0;
  /// The WAL ended in a torn frame (crash mid-append) that was dropped.
  bool torn_tail = false;
  uint64_t last_lsn = 0;
};

/// \brief Handle to a registered continuous query.
struct QueryInfo {
  int id = 0;
  /// Stream receiving the query's output (the INSERT target, or an
  /// auto-created `_q<id>` stream for bare SELECTs). Empty when the
  /// target is a table.
  std::string output_stream;
  /// Table receiving the output, when the INSERT target is a table.
  std::string output_table;
};

class Engine : public Catalog {
 public:
  explicit Engine(EngineOptions options = {});
  ~Engine() override;

  // ---- DDL ---------------------------------------------------------------

  Status CreateStream(const std::string& name, SchemaPtr schema);
  Status CreateTable(const std::string& name, SchemaPtr schema);

  // ---- queries -----------------------------------------------------------

  /// \brief Run a script: DDL statements execute immediately; SELECT /
  /// INSERT statements register as continuous queries.
  Status ExecuteScript(const std::string& sql);

  /// \brief Register one continuous query (SELECT or INSERT ... SELECT).
  Result<QueryInfo> RegisterQuery(const std::string& sql);

  /// \brief Remove a registered continuous query at runtime (DESIGN.md
  /// §17): detaches its source subscriptions, destroys its operators and
  /// sink, and — for bare SELECTs — drops the auto-created `_q<id>`
  /// output stream together with its subscribed callbacks. Fails without
  /// side effects when the id is unknown or another query reads the
  /// owned output stream. Unregistration is a control-plane operation:
  /// it is not WAL-logged, so durability comes from the next checkpoint
  /// (the serving registry re-registers the survivors on recovery).
  Status UnregisterQuery(int id);

  /// \brief Set the id the next registration will receive. Recovery
  /// hook: re-registering a query set whose ids have gaps (queries
  /// unregistered before the checkpoint) must reproduce the original
  /// ids, because checkpoints validate them positionally. Fails when
  /// `id` does not exceed every live query id.
  Status SetNextQueryId(int id);
  int next_query_id() const { return next_query_id_; }

  /// \brief Ad-hoc one-shot query over tables and retained stream
  /// history (§2.1 ad-hoc snapshot queries).
  Result<std::vector<Tuple>> ExecuteSnapshot(const std::string& sql);

  /// \brief Plan a query without registering it and describe the
  /// resulting pipeline (one step per line, plus the output schema).
  /// Accepts a bare SELECT/INSERT or an `EXPLAIN [ANALYZE|LINT|COST]
  /// <query>` statement; with ANALYZE, the plan lines of the matching
  /// *registered* query are annotated with its live counters; with LINT,
  /// the static analyzer's diagnostics come back as JSON (DESIGN.md
  /// §11); with COST, the static cost & state-bound report comes back as
  /// JSON (DESIGN.md §16).
  Result<std::string> Explain(const std::string& sql);

  /// \brief Run the static query analyzer over `sql` — one statement or
  /// a whole script (DDL statements lint clean) — without registering or
  /// executing anything. Diagnostics arrive in source order; use
  /// DiagnosticsToJson for the `EXPLAIN LINT` wire shape.
  Result<std::vector<Diagnostic>> Lint(const std::string& sql) const;

  /// \brief Run the cost model (DESIGN.md §16) over every SELECT /
  /// INSERT statement of `sql` — one statement or a whole script (DDL
  /// statements are skipped) — without registering anything. Referenced
  /// streams/tables must already exist in the catalog (execute the
  /// script's DDL first). Reports arrive in statement order, matching
  /// registered-query ids when the same script was executed.
  Result<std::vector<QueryCostReport>> AnalyzeCost(
      const std::string& sql) const;

  /// \brief Declare expected load statistics for `stream` (case-
  /// insensitive), feeding the cost model's cardinality and state-bound
  /// estimates. Undeclared streams use CostModelParams defaults.
  Status DeclareStreamStats(const std::string& stream, StreamStats stats);
  const StreamStats* FindStreamStats(
      const std::string& name) const override;

  /// \brief Point-in-time snapshot of every engine metric: per-stream
  /// traffic, per-operator tuple counts and operator-specific state
  /// gauges (retained history, window buffers, ...), and the engine
  /// clock. Keys: `stream.<name>.*` and `query<id>.op<k>.<label>.*`
  /// (DESIGN.md §9).
  MetricsSnapshot Metrics() const;

  /// \brief Receive every tuple appearing on `stream`.
  Status Subscribe(const std::string& stream, TupleCallback callback);

  // ---- data --------------------------------------------------------------

  /// \brief Append a tuple to a source stream; drives all subscribed
  /// pipelines to completion before returning.
  Status Push(const std::string& stream, std::vector<Value> values,
              Timestamp ts);
  Status PushTuple(const std::string& stream, const Tuple& tuple);

  /// \brief Append an ordered run of tuples to one stream and dispatch
  /// it as a single pipeline crossing, regardless of the batch-size knob
  /// (never buffered). Timestamps must be non-decreasing; the write-ahead
  /// log still records each tuple individually.
  Status PushBatch(const std::string& stream, const TupleBatch& batch);

  /// \brief Dispatch any buffered partial batch now. Called implicitly
  /// by AdvanceTime, snapshot queries, checkpointing, subscription and
  /// query registration; explicit calls are only needed when reading
  /// side effects between pushes without advancing time.
  Status FlushBatches();

  /// \brief The resolved batch size (option + ESLEV_BATCH_SIZE override).
  size_t batch_size() const { return batch_size_; }
  /// \brief The resolved ingest options (option + ESLEV_INGEST_*
  /// overrides).
  const IngestOptions& ingest_options() const { return ingest_options_; }
  /// \brief True when an ingest pipeline sits ahead of the engine.
  bool ingest_enabled() const { return ingest_ != nullptr; }
  /// \brief The ingest pipeline (null when disabled) — live stage gauges
  /// for tests and embedding layers.
  const IngestPipeline* ingest_pipeline() const { return ingest_.get(); }
  /// \brief Side channel receiving events beyond the ingest lateness
  /// bound (stream name + dropped tuple). Invalid when no reorder stage
  /// is configured.
  Status SetIngestLateHandler(
      std::function<Status(const std::string& stream, const Tuple&)> handler);
  /// \brief The resolved SEQ backend (option + ESLEV_SEQ_BACKEND
  /// override).
  SeqBackend seq_backend() const { return seq_backend_; }
  /// \brief False when the registered topology couples pipelines in ways
  /// batching could reorder (table targets, raw+derived joins, multiple
  /// producers into one stream); the engine then runs tuple-at-a-time
  /// regardless of the knob (DESIGN.md §13).
  bool batching_safe() const { return batching_safe_; }

  /// \brief Advance application time without a tuple: fires window
  /// expirations (active expiration) across all pipelines. Flushes any
  /// pending batch first — heartbeats are batch boundaries, so
  /// expiration timing is identical in batch and tuple mode.
  Status AdvanceTime(Timestamp now);

  Timestamp current_time() const { return clock_; }

  // ---- durability (DESIGN.md §10) ----------------------------------------

  /// \brief Write a versioned checkpoint of all engine state — stream
  /// counters/retention, table contents, and every stateful operator —
  /// to `<dir>/engine.ckpt` (atomic replace). When a WAL is enabled it
  /// is flushed first and then truncated to the records the checkpoint
  /// does not cover.
  Status Checkpoint(const std::string& dir);

  /// \brief Load the checkpoint in `dir` into this engine. The caller
  /// must first rebuild an identical topology (same DDL and query
  /// registrations in the same order); Restore validates names, schemas,
  /// and per-query operator shapes against the file *before* mutating
  /// anything, so a mismatched or corrupt checkpoint leaves the engine
  /// untouched.
  Status Restore(const std::string& dir);

  /// \brief Start logging every Push/AdvanceTime to `path` ahead of
  /// processing. If the file already holds records (pre-crash WAL), new
  /// appends continue after the last intact one; a torn tail is
  /// truncated (counted in `recovery_truncated_frames`).
  Status EnableWal(const std::string& path, WalOptions options = {});

  /// \brief Re-drive the engine from the WAL at `path`, skipping records
  /// already covered by the restored checkpoint and suppressing
  /// already-delivered emissions per `options`.
  Result<ReplayStats> ReplayWal(const std::string& path,
                                const ReplayOptions& options = {});

  /// \brief Crash recovery in one call: Restore(dir), replay
  /// `<dir>/wal.log`, and re-enable the WAL for new appends.
  Status RecoverFrom(const std::string& dir,
                     const ReplayOptions& options = {});

  WalWriter* wal() const { return wal_.get(); }

  // ---- catalog -----------------------------------------------------------

  Stream* FindStream(const std::string& name) const override;
  Table* FindTable(const std::string& name) const override;
  /// \brief Names of all registered streams (original case, catalog order).
  std::vector<std::string> StreamNames() const;
  const FunctionRegistry& registry() const override { return registry_; }
  FunctionRegistry* mutable_registry() { return &registry_; }
  Duration declared_disorder() const override {
    return ingest_options_.declared_disorder;
  }
  Duration ingest_lateness() const override {
    return ingest_options_.lateness_bound;
  }

 private:
  Status ExecuteStatement(const Statement& stmt);
  Result<QueryInfo> RegisterParsed(const Statement& stmt);
  Result<std::string> ExplainParsed(const Statement& stmt, bool analyze);

  /// Re-drive already-read WAL records through the pipelines with
  /// duplicate suppression armed (engine_checkpoint.cc).
  Result<ReplayStats> ReplayRecords(const std::vector<WalRecord>& records,
                                    const ReplayOptions& options);

  void RecomputeBatchSafety();

  // Post-ingest delivery into the pipelines: the tail of PushTuple /
  // PushBatch (clock advance, auto-batching, dispatch). `key` is the
  // lower-cased catalog key of `s`.
  Status DeliverTuple(Stream* s, const std::string& key, const Tuple& tuple);
  Status DeliverBatch(Stream* s, const TupleBatch& batch);
  Status DeliverHeartbeat(Timestamp now);
  Stream* IngestPortStream(size_t port);

  EngineOptions options_;
  FunctionRegistry registry_;
  std::map<std::string, std::unique_ptr<Stream>> streams_;  // lower-case key
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::map<std::string, StreamStats> stream_stats_;  // lower-case key
  std::map<std::string, bool> derived_;  // output streams of queries
  std::vector<PlannedQuery> queries_;
  std::vector<std::unique_ptr<Operator>> sinks_;
  Timestamp clock_ = kMinTimestamp;
  int next_query_id_ = 1;

  // Ingest subsystem (DESIGN.md §15).
  IngestOptions ingest_options_;
  std::unique_ptr<IngestPipeline> ingest_;
  std::vector<Stream*> ingest_port_streams_;  // port -> stream cache
  Timestamp ingest_input_clock_ = kMinTimestamp;  // max ts offered to ingest

  // Vectorized execution (DESIGN.md §13).
  Status init_error_ = Status::OK();  // invalid knob, surfaced lazily
  size_t batch_size_ = 1;
  SeqBackend seq_backend_ = SeqBackend::kHistory;
  bool batching_safe_ = true;
  Stream* pending_stream_ = nullptr;
  TupleBatch pending_batch_;
  uint64_t batches_dispatched_ = 0;
  uint64_t tuples_batched_ = 0;

  // Durability state (core/engine_checkpoint.cc).
  std::unique_ptr<WalWriter> wal_;
  bool replaying_ = false;            // suppress WAL appends during replay
  uint64_t restored_wal_lsn_ = 0;     // last LSN covered by restored ckpt
  uint64_t checkpoints_taken_ = 0;
  uint64_t last_checkpoint_bytes_ = 0;
  int64_t last_checkpoint_duration_us_ = 0;
  uint64_t wal_records_replayed_ = 0;
  uint64_t recovery_truncated_frames_ = 0;
};

}  // namespace eslev

#endif  // ESLEV_CORE_ENGINE_H_
