// Engine: the public API of the ESL-EV DSMS.
//
// Typical usage (Example 1, duplicate elimination):
// \code
//   Engine engine;
//   ESLEV_CHECK_OK(engine.ExecuteScript(R"sql(
//     CREATE STREAM readings(reader_id, tag_id, read_time);
//     CREATE STREAM cleaned_readings(reader_id, tag_id, read_time);
//     INSERT INTO cleaned_readings
//     SELECT * FROM readings AS r1
//     WHERE NOT EXISTS
//       (SELECT * FROM TABLE( readings OVER
//           (RANGE 1 seconds PRECEDING CURRENT)) AS r2
//        WHERE r2.reader_id = r1.reader_id AND r2.tag_id = r1.tag_id);
//   )sql"));
//   engine.Subscribe("cleaned_readings", [](const Tuple& t) { ... });
//   engine.Push("readings", {...values...}, ts);
// \endcode
//
// Execution is single-threaded run-to-completion: Push() drives a tuple
// through every subscribed pipeline before returning; AdvanceTime()
// delivers heartbeats (active expiration) without tuples.

#ifndef ESLEV_CORE_ENGINE_H_
#define ESLEV_CORE_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "plan/catalog.h"
#include "plan/planner.h"
#include "sql/parser.h"

namespace eslev {

struct EngineOptions {
  /// Retention for ad-hoc snapshot queries over streams; 0 disables.
  /// Individual streams can override via Stream::SetRetention.
  Duration default_retention = 0;
  /// Reject out-of-order Push timestamps (the paper's joint tuple
  /// history is totally ordered). When false, out-of-order tuples are
  /// accepted and processed in arrival order.
  bool enforce_monotonic_time = true;
};

/// \brief Handle to a registered continuous query.
struct QueryInfo {
  int id = 0;
  /// Stream receiving the query's output (the INSERT target, or an
  /// auto-created `_q<id>` stream for bare SELECTs). Empty when the
  /// target is a table.
  std::string output_stream;
  /// Table receiving the output, when the INSERT target is a table.
  std::string output_table;
};

class Engine : public Catalog {
 public:
  explicit Engine(EngineOptions options = {});
  ~Engine() override;

  // ---- DDL ---------------------------------------------------------------

  Status CreateStream(const std::string& name, SchemaPtr schema);
  Status CreateTable(const std::string& name, SchemaPtr schema);

  // ---- queries -----------------------------------------------------------

  /// \brief Run a script: DDL statements execute immediately; SELECT /
  /// INSERT statements register as continuous queries.
  Status ExecuteScript(const std::string& sql);

  /// \brief Register one continuous query (SELECT or INSERT ... SELECT).
  Result<QueryInfo> RegisterQuery(const std::string& sql);

  /// \brief Ad-hoc one-shot query over tables and retained stream
  /// history (§2.1 ad-hoc snapshot queries).
  Result<std::vector<Tuple>> ExecuteSnapshot(const std::string& sql);

  /// \brief Plan a query without registering it and describe the
  /// resulting pipeline (one step per line, plus the output schema).
  /// Accepts a bare SELECT/INSERT or an `EXPLAIN [ANALYZE] <query>`
  /// statement; with ANALYZE, the plan lines of the matching
  /// *registered* query are annotated with its live counters.
  Result<std::string> Explain(const std::string& sql);

  /// \brief Point-in-time snapshot of every engine metric: per-stream
  /// traffic, per-operator tuple counts and operator-specific state
  /// gauges (retained history, window buffers, ...), and the engine
  /// clock. Keys: `stream.<name>.*` and `query<id>.op<k>.<label>.*`
  /// (DESIGN.md §9).
  MetricsSnapshot Metrics() const;

  /// \brief Receive every tuple appearing on `stream`.
  Status Subscribe(const std::string& stream, TupleCallback callback);

  // ---- data --------------------------------------------------------------

  /// \brief Append a tuple to a source stream; drives all subscribed
  /// pipelines to completion before returning.
  Status Push(const std::string& stream, std::vector<Value> values,
              Timestamp ts);
  Status PushTuple(const std::string& stream, const Tuple& tuple);

  /// \brief Advance application time without a tuple: fires window
  /// expirations (active expiration) across all pipelines.
  Status AdvanceTime(Timestamp now);

  Timestamp current_time() const { return clock_; }

  // ---- catalog -----------------------------------------------------------

  Stream* FindStream(const std::string& name) const override;
  Table* FindTable(const std::string& name) const override;
  /// \brief Names of all registered streams (original case, catalog order).
  std::vector<std::string> StreamNames() const;
  const FunctionRegistry& registry() const override { return registry_; }
  FunctionRegistry* mutable_registry() { return &registry_; }

 private:
  Status ExecuteStatement(const Statement& stmt);
  Result<QueryInfo> RegisterParsed(const Statement& stmt);
  Result<std::string> ExplainParsed(const Statement& stmt, bool analyze);

  EngineOptions options_;
  FunctionRegistry registry_;
  std::map<std::string, std::unique_ptr<Stream>> streams_;  // lower-case key
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::map<std::string, bool> derived_;  // output streams of queries
  std::vector<PlannedQuery> queries_;
  std::vector<std::unique_ptr<Operator>> sinks_;
  Timestamp clock_ = kMinTimestamp;
  int next_query_id_ = 1;
};

}  // namespace eslev

#endif  // ESLEV_CORE_ENGINE_H_
