// Engine durability: checkpoint/restore and WAL replay (DESIGN.md §10).
//
// Checkpoint file layout (`engine.ckpt`, CRC-framed, atomic replace):
//   frame 0            header: magic, version, clock, covered WAL LSN,
//                      stream/table/query counts
//   frames 1..S        one per stream: key, schema, state blob
//   next T frames      one per table:  key, schema, state blob
//   next Q frames      one per query:  query id, then per operator
//                      (plan order): label, base counters, state blob
//   last frame         end marker (guards against truncated files)
//
// State blobs are produced by their own BinaryEncoder so each blob is
// self-contained (schema back-references never cross blob boundaries).
//
// Restore contract: the caller rebuilds an identical topology (same DDL
// and RegisterQuery calls, same order) and Restore loads state into it.
// All structural validation — magic/version, frame CRCs, stream/table
// names and schemas, query ids, operator counts and labels — happens
// before any engine state is touched, so the four fault-injection cases
// (torn frame, bad CRC, missing file, version mismatch) leave the
// engine unmodified.

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <system_error>

#include "common/string_util.h"
#include "core/engine.h"
#include "recovery/checkpoint.h"

namespace eslev {

namespace {

constexpr const char* kEndMarker = "ESLEV-CKPT-END";
constexpr const char* kIngestFrameTag = "INGEST";

// Staged (decoded, validated, not yet applied) restore units.
struct StagedBlob {
  std::string blob;
};

struct StagedOp {
  Operator* op = nullptr;
  uint64_t tuples_in = 0;
  uint64_t tuples_out = 0;
  uint64_t heartbeats_in = 0;
  std::string blob;
};

Result<std::pair<std::string, std::string>> DecodeNamedFrame(
    const std::string& payload, const Schema& expected_schema,
    const char* what) {
  BinaryDecoder dec(payload);
  ESLEV_ASSIGN_OR_RETURN(std::string key, dec.GetString());
  ESLEV_ASSIGN_OR_RETURN(SchemaPtr schema, dec.GetSchema());
  if (schema == nullptr || !schema->Equals(expected_schema)) {
    return Status::IoError(std::string(what) + " '" + key +
                           "': schema mismatch between checkpoint and "
                           "rebuilt topology");
  }
  ESLEV_ASSIGN_OR_RETURN(std::string blob, dec.GetString());
  if (!dec.AtEnd()) {
    return Status::IoError(std::string(what) + " '" + key +
                           "': trailing bytes in checkpoint frame");
  }
  return std::make_pair(std::move(key), std::move(blob));
}

}  // namespace

Status Engine::Checkpoint(const std::string& dir) {
  const auto start = std::chrono::steady_clock::now();
  // A checkpoint captures fully-processed state only: deliver any
  // pending batch first so the saved counters and operator state agree
  // with the WAL position (DESIGN.md §13).
  ESLEV_RETURN_NOT_OK(FlushBatches());
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create checkpoint dir " + dir + ": " +
                           ec.message());
  }

  uint64_t wal_last_lsn = 0;
  if (wal_ != nullptr) {
    ESLEV_RETURN_NOT_OK(wal_->Flush());
    wal_last_lsn = wal_->next_lsn() - 1;
  }

  std::string out;
  {
    BinaryEncoder header;
    header.PutU32(kCheckpointMagic);
    header.PutU32(kCheckpointVersion);
    header.PutI64(clock_);
    header.PutU64(wal_last_lsn);
    header.PutU32(static_cast<uint32_t>(streams_.size()));
    header.PutU32(static_cast<uint32_t>(tables_.size()));
    header.PutU32(static_cast<uint32_t>(queries_.size()));
    AppendFrame(header.buffer(), &out);
  }
  for (const auto& [key, stream] : streams_) {
    BinaryEncoder frame;
    frame.PutString(key);
    frame.PutSchema(stream->schema());
    BinaryEncoder state;
    ESLEV_RETURN_NOT_OK(stream->SaveState(&state));
    frame.PutString(state.buffer());
    AppendFrame(frame.buffer(), &out);
  }
  for (const auto& [key, table] : tables_) {
    BinaryEncoder frame;
    frame.PutString(key);
    frame.PutSchema(table->schema());
    BinaryEncoder state;
    ESLEV_RETURN_NOT_OK(table->SaveState(&state));
    frame.PutString(state.buffer());
    AppendFrame(frame.buffer(), &out);
  }
  for (const PlannedQuery& q : queries_) {
    BinaryEncoder frame;
    frame.PutU32(static_cast<uint32_t>(q.query_id));
    frame.PutU32(static_cast<uint32_t>(q.operators.size()));
    for (const auto& op : q.operators) {
      frame.PutString(op->label());
      frame.PutU64(op->tuples_in());
      frame.PutU64(op->tuples_emitted());
      frame.PutU64(op->heartbeats_in());
      BinaryEncoder state;
      ESLEV_RETURN_NOT_OK(op->SaveState(&state));
      frame.PutString(state.buffer());
    }
    AppendFrame(frame.buffer(), &out);
  }
  if (ingest_ != nullptr) {
    // Optional ingest frame: raw input clock + buffered stage state
    // (reorder buffer, open smoothing groups, held-back emissions).
    // Written between the query frames and the end marker so the
    // version-1 layout above is untouched when ingest is disabled.
    BinaryEncoder frame;
    frame.PutString(kIngestFrameTag);
    frame.PutI64(ingest_input_clock_);
    BinaryEncoder state;
    ESLEV_RETURN_NOT_OK(ingest_->SaveState(&state));
    frame.PutString(state.buffer());
    AppendFrame(frame.buffer(), &out);
  }
  AppendFrame(kEndMarker, &out);

  ESLEV_RETURN_NOT_OK(
      WriteFileAtomic(dir + "/" + kCheckpointFileName, out));
  // The checkpoint covers everything up to wal_last_lsn; drop it.
  if (wal_ != nullptr) {
    ESLEV_RETURN_NOT_OK(wal_->TruncateBefore(wal_last_lsn + 1));
  }

  ++checkpoints_taken_;
  last_checkpoint_bytes_ = out.size();
  last_checkpoint_duration_us_ =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  return Status::OK();
}

Status Engine::Restore(const std::string& dir) {
  ESLEV_RETURN_NOT_OK(FlushBatches());
  const std::string path = dir + "/" + kCheckpointFileName;
  ESLEV_ASSIGN_OR_RETURN(std::string bytes, ReadFileAll(path));
  ESLEV_ASSIGN_OR_RETURN(FrameScanResult frames,
                         ScanFrames(bytes.data(), bytes.size()));
  if (frames.torn_tail) {
    return Status::IoError("checkpoint " + path +
                           ": truncated file (incomplete checkpoint)");
  }
  if (frames.payloads.size() < 2) {
    return Status::IoError("checkpoint " + path + ": too few frames");
  }
  ESLEV_RETURN_NOT_OK(
      ValidateCheckpointHeader(frames.payloads[0], "checkpoint " + path));

  BinaryDecoder header(frames.payloads[0]);
  (void)*header.GetU32();  // magic, validated above
  (void)*header.GetU32();  // version, validated above
  ESLEV_ASSIGN_OR_RETURN(Timestamp clock, header.GetI64());
  ESLEV_ASSIGN_OR_RETURN(uint64_t wal_last_lsn, header.GetU64());
  ESLEV_ASSIGN_OR_RETURN(uint32_t nstreams, header.GetU32());
  ESLEV_ASSIGN_OR_RETURN(uint32_t ntables, header.GetU32());
  ESLEV_ASSIGN_OR_RETURN(uint32_t nqueries, header.GetU32());
  if (!header.AtEnd()) {
    return Status::IoError("checkpoint: trailing bytes in header frame");
  }
  // An ingest-enabled engine writes one extra frame; a checkpoint taken
  // with ingest must be restored into an ingest-enabled engine and vice
  // versa (same topology contract as streams/tables/queries).
  const size_t expected_frames = 2u + static_cast<size_t>(nstreams) +
                                 ntables + nqueries +
                                 (ingest_ != nullptr ? 1u : 0u);
  if (frames.payloads.size() != expected_frames) {
    return Status::IoError(
        "checkpoint: frame count mismatch (ingest configuration must match "
        "the checkpointed engine)");
  }
  if (frames.payloads.back() != kEndMarker) {
    return Status::IoError("checkpoint: missing end marker");
  }
  if (nstreams != streams_.size() || ntables != tables_.size() ||
      nqueries != queries_.size()) {
    return Status::IoError(
        "checkpoint: topology mismatch (rebuild the same streams, tables, "
        "and queries before Restore)");
  }

  // Phase 1: decode and validate everything; no engine state mutated yet.
  size_t fi = 1;
  std::vector<std::pair<Stream*, StagedBlob>> stream_blobs;
  for (uint32_t i = 0; i < nstreams; ++i) {
    // Names and schemas must match the rebuilt catalog; the frame order
    // inside the file is the catalog's own (sorted) order, but match by
    // name to stay independent of it.
    BinaryDecoder peek(frames.payloads[fi]);
    ESLEV_ASSIGN_OR_RETURN(std::string key, peek.GetString());
    Stream* s = FindStream(key);
    if (s == nullptr) {
      return Status::IoError("checkpoint names unknown stream '" + key + "'");
    }
    ESLEV_ASSIGN_OR_RETURN(
        auto named,
        DecodeNamedFrame(frames.payloads[fi], *s->schema(), "stream"));
    stream_blobs.push_back({s, {std::move(named.second)}});
    ++fi;
  }
  std::vector<std::pair<Table*, StagedBlob>> table_blobs;
  for (uint32_t i = 0; i < ntables; ++i) {
    BinaryDecoder peek(frames.payloads[fi]);
    ESLEV_ASSIGN_OR_RETURN(std::string key, peek.GetString());
    Table* t = FindTable(key);
    if (t == nullptr) {
      return Status::IoError("checkpoint names unknown table '" + key + "'");
    }
    ESLEV_ASSIGN_OR_RETURN(
        auto named,
        DecodeNamedFrame(frames.payloads[fi], *t->schema(), "table"));
    table_blobs.push_back({t, {std::move(named.second)}});
    ++fi;
  }
  std::vector<StagedOp> staged_ops;
  for (uint32_t i = 0; i < nqueries; ++i) {
    BinaryDecoder dec(frames.payloads[fi++]);
    ESLEV_ASSIGN_OR_RETURN(uint32_t query_id, dec.GetU32());
    const PlannedQuery& q = queries_[i];
    if (query_id != static_cast<uint32_t>(q.query_id)) {
      return Status::IoError("checkpoint: query id mismatch at position " +
                             std::to_string(i));
    }
    ESLEV_ASSIGN_OR_RETURN(uint32_t nops, dec.GetU32());
    if (nops != q.operators.size()) {
      return Status::IoError("checkpoint: operator count mismatch in query " +
                             std::to_string(query_id));
    }
    for (uint32_t j = 0; j < nops; ++j) {
      StagedOp staged;
      staged.op = q.operators[j].get();
      ESLEV_ASSIGN_OR_RETURN(std::string label, dec.GetString());
      if (label != staged.op->label()) {
        return Status::IoError("checkpoint: operator mismatch in query " +
                               std::to_string(query_id) + " ('" + label +
                               "' vs '" + staged.op->label() + "')");
      }
      ESLEV_ASSIGN_OR_RETURN(staged.tuples_in, dec.GetU64());
      ESLEV_ASSIGN_OR_RETURN(staged.tuples_out, dec.GetU64());
      ESLEV_ASSIGN_OR_RETURN(staged.heartbeats_in, dec.GetU64());
      ESLEV_ASSIGN_OR_RETURN(staged.blob, dec.GetString());
      staged_ops.push_back(std::move(staged));
    }
    if (!dec.AtEnd()) {
      return Status::IoError("checkpoint: trailing bytes in query frame");
    }
  }
  Timestamp staged_ingest_clock = kMinTimestamp;
  std::string staged_ingest_blob;
  if (ingest_ != nullptr) {
    BinaryDecoder dec(frames.payloads[fi++]);
    ESLEV_ASSIGN_OR_RETURN(std::string tag, dec.GetString());
    if (tag != kIngestFrameTag) {
      return Status::IoError(
          "checkpoint: expected ingest frame (checkpoint was taken without "
          "ingest configured)");
    }
    ESLEV_ASSIGN_OR_RETURN(staged_ingest_clock, dec.GetI64());
    ESLEV_ASSIGN_OR_RETURN(staged_ingest_blob, dec.GetString());
    if (!dec.AtEnd()) {
      return Status::IoError("checkpoint: trailing bytes in ingest frame");
    }
  }

  // Phase 2: apply. Structural validation is done; a decode error past
  // this point means the blob itself is inconsistent, the Status is
  // returned, and the engine must be discarded.
  for (auto& [stream, staged] : stream_blobs) {
    BinaryDecoder dec(staged.blob);
    ESLEV_RETURN_NOT_OK(stream->RestoreState(&dec));
    if (!dec.AtEnd()) {
      return Status::IoError("stream '" + stream->name() +
                             "': trailing state bytes");
    }
  }
  for (auto& [table, staged] : table_blobs) {
    BinaryDecoder dec(staged.blob);
    ESLEV_RETURN_NOT_OK(table->RestoreState(&dec));
    if (!dec.AtEnd()) {
      return Status::IoError("table '" + table->name() +
                             "': trailing state bytes");
    }
  }
  for (StagedOp& staged : staged_ops) {
    staged.op->RestoreCounters(staged.tuples_in, staged.tuples_out,
                               staged.heartbeats_in);
    BinaryDecoder dec(staged.blob);
    ESLEV_RETURN_NOT_OK(staged.op->RestoreState(&dec));
    if (!dec.AtEnd()) {
      return Status::IoError("operator '" + staged.op->label() +
                             "': trailing state bytes");
    }
  }
  if (ingest_ != nullptr) {
    BinaryDecoder dec(staged_ingest_blob);
    ESLEV_RETURN_NOT_OK(ingest_->RestoreState(&dec));
    if (!dec.AtEnd()) {
      return Status::IoError("ingest: trailing state bytes");
    }
    ingest_input_clock_ = staged_ingest_clock;
    // Port->stream bindings are rediscovered lazily from port names.
    ingest_port_streams_.clear();
  }
  clock_ = clock;
  restored_wal_lsn_ = wal_last_lsn;
  return Status::OK();
}

Status Engine::EnableWal(const std::string& path, WalOptions options) {
  if (wal_ != nullptr) {
    return Status::Invalid("WAL already enabled at " + wal_->path());
  }
  ESLEV_ASSIGN_OR_RETURN(WalChainReadResult read, ReadWalChain(path));
  if (read.live_torn_tail) ++recovery_truncated_frames_;
  const uint64_t last_lsn =
      std::max(read.records.empty() ? uint64_t{0} : read.records.back().lsn,
               restored_wal_lsn_);
  options.truncate_to_bytes = read.live_valid_bytes;
  ESLEV_ASSIGN_OR_RETURN(wal_, WalWriter::Open(path, last_lsn + 1, options));
  return Status::OK();
}

Result<ReplayStats> Engine::ReplayRecords(const std::vector<WalRecord>& records,
                                          const ReplayOptions& options) {
  // Arm duplicate suppression: mute callbacks up to each stream's
  // per-consumer threshold (UINT64_MAX = the whole replay).
  std::map<std::string, uint64_t> overrides;
  for (const auto& [name, seq] : options.deliver_after) {
    overrides[AsciiToLower(name)] = seq;
  }
  std::vector<Stream*> muted;
  for (const auto& [key, stream] : streams_) {
    auto it = overrides.find(key);
    if (it != overrides.end()) {
      stream->set_deliver_after_seq(it->second);
    } else if (!options.deliver_callbacks) {
      stream->set_deliver_after_seq(UINT64_MAX);
      muted.push_back(stream.get());
    }
  }

  ReplayStats stats;
  replaying_ = true;
  Status status;
  for (const WalRecord& record : records) {
    stats.last_lsn = std::max(stats.last_lsn, record.lsn);
    if (record.lsn <= restored_wal_lsn_) {
      ++stats.records_skipped;
      continue;
    }
    if (record.kind == WalRecordKind::kTuple) {
      status = PushTuple(record.stream, *record.tuple);
    } else if (record.stream.empty()) {
      status = AdvanceTime(record.ts);
    } else {
      Stream* s = FindStream(record.stream);
      if (s == nullptr) {
        status = Status::IoError("WAL heartbeat for unknown stream '" +
                                 record.stream + "'");
      } else {
        // Heartbeats are batch boundaries during replay too.
        status = FlushBatches();
        if (status.ok()) {
          clock_ = std::max(clock_, record.ts);
          status = s->Heartbeat(record.ts);
        }
      }
    }
    if (!status.ok()) break;
    ++stats.records_replayed;
  }
  // Deliver any tail batch before un-muting, so the resume thresholds
  // below see the true per-stream push counts.
  if (status.ok()) status = FlushBatches();
  replaying_ = false;
  // Un-mute: deliveries resume with the next live emission.
  for (Stream* stream : muted) {
    stream->set_deliver_after_seq(stream->tuples_pushed());
  }
  ESLEV_RETURN_NOT_OK(status);
  wal_records_replayed_ += stats.records_replayed;
  return stats;
}

Result<ReplayStats> Engine::ReplayWal(const std::string& path,
                                      const ReplayOptions& options) {
  ESLEV_ASSIGN_OR_RETURN(WalChainReadResult read, ReadWalChain(path));
  if (read.live_torn_tail) ++recovery_truncated_frames_;
  ESLEV_ASSIGN_OR_RETURN(ReplayStats stats,
                         ReplayRecords(read.records, options));
  stats.torn_tail = read.live_torn_tail;
  return stats;
}

Status Engine::RecoverFrom(const std::string& dir,
                           const ReplayOptions& options) {
  if (wal_ != nullptr) {
    return Status::Invalid("WAL already enabled before RecoverFrom");
  }
  ESLEV_RETURN_NOT_OK(Restore(dir));
  const std::string wal_path = dir + "/" + kWalFileName;
  // Read the WAL chain once: replay the suffix, then reopen for append
  // with any torn live tail truncated away.
  ESLEV_ASSIGN_OR_RETURN(WalChainReadResult read, ReadWalChain(wal_path));
  if (read.live_torn_tail) ++recovery_truncated_frames_;
  ESLEV_ASSIGN_OR_RETURN(ReplayStats stats,
                         ReplayRecords(read.records, options));
  WalOptions wal_options;
  wal_options.truncate_to_bytes = read.live_valid_bytes;
  const uint64_t last_lsn = std::max(stats.last_lsn, restored_wal_lsn_);
  ESLEV_ASSIGN_OR_RETURN(wal_,
                         WalWriter::Open(wal_path, last_lsn + 1, wal_options));
  return Status::OK();
}

}  // namespace eslev
