// MpscQueue: the multi-producer single-consumer mailbox feeding each
// ShardedEngine worker. Producers append under a short critical section;
// the worker drains the whole backlog in one swap, so the per-tuple lock
// cost is O(1) enqueue plus amortized O(1/batch) dequeue — contrast with
// ConcurrentEngine, which holds one global mutex across the entire
// pipeline run of every tuple.

#ifndef ESLEV_CORE_MPSC_QUEUE_H_
#define ESLEV_CORE_MPSC_QUEUE_H_

#include <condition_variable>
#include <mutex>
#include <utility>
#include <vector>

namespace eslev {

template <typename T>
class MpscQueue {
 public:
  /// \brief Enqueue one item. Silently drops after Close() (shutdown is
  /// owner-driven; producers must stop before the owner closes).
  void Push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
  }

  /// \brief Consumer side: block until items exist or the queue is
  /// closed, then take the whole backlog. Returns false when closed and
  /// fully drained (worker should exit).
  bool PopAll(std::vector<T>* out) {
    std::unique_lock<std::mutex> lock(mu_);
    // The previous batch (if any) is now fully processed.
    draining_ = false;
    if (items_.empty()) idle_cv_.notify_all();
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return false;
    out->clear();
    out->swap(items_);
    draining_ = true;
    return true;
  }

  /// \brief Block until the queue is empty AND the consumer has finished
  /// processing its current batch (or the queue is closed).
  void WaitIdle() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [&] { return (items_.empty() && !draining_) || closed_; });
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
    idle_cv_.notify_all();
  }

  /// \brief Close AND drop the queued backlog (crash simulation: input
  /// sitting in a dead worker's mailbox is lost, exactly like input in a
  /// crashed process's memory). The consumer exits at its next PopAll.
  void CloseNow() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
      items_.clear();
    }
    cv_.notify_all();
    idle_cv_.notify_all();
  }

  /// \brief Reset a closed queue for reuse after its consumer thread has
  /// exited and been joined (standby promotion restarts the worker).
  void Reopen() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = false;
    draining_ = false;
    items_.clear();
  }

  size_t ApproxSize() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;       // producer -> consumer: items available
  std::condition_variable idle_cv_;  // consumer -> waiters: backlog drained
  std::vector<T> items_;
  bool draining_ = false;  // consumer is processing a popped batch
  bool closed_ = false;
};

}  // namespace eslev

#endif  // ESLEV_CORE_MPSC_QUEUE_H_
