#include "core/sharded_engine.h"

#include <algorithm>

#include "common/env.h"
#include "common/string_util.h"
#include "plan/partitioning.h"
#include "sql/parser.h"

namespace eslev {

ShardedEngine::ShardedEngine(ShardedEngineOptions options)
    : options_(options) {
  if (options_.num_shards == 0) options_.num_shards = 1;
  // The batch knob applies once, at the routing layer; shard engines run
  // tuple-at-a-time (batches arrive pre-formed through PushBatch), so
  // Flush()/WaitIdle() never race a shard-side partial buffer.
  if (options_.engine.honor_batch_env) {
    Result<size_t> resolved = ResolveBatchSize(options_.engine.batch_size);
    if (resolved.ok()) {
      route_batch_size_ = *resolved;
    } else {
      init_error_ = resolved.status();
    }
  } else if (options_.engine.batch_size < 1 ||
             options_.engine.batch_size > static_cast<size_t>(kMaxBatchSize)) {
    init_error_ = Status::Invalid(
        "EngineOptions::batch_size must be in [1, " +
        std::to_string(kMaxBatchSize) + "], got " +
        std::to_string(options_.engine.batch_size));
  } else {
    route_batch_size_ = options_.engine.batch_size;
  }
  // Ingest runs once, at the routing layer, ahead of hash partitioning
  // (per-shard reordering could not restore cross-shard input order, and
  // the front-end WAL must keep raw arrival order). Shard engines are
  // pinned to ingest-disabled below.
  if (init_error_.ok()) {
    if (options_.engine.honor_ingest_env) {
      Result<IngestOptions> resolved =
          ResolveIngestOptions(options_.engine.ingest);
      if (resolved.ok()) {
        ingest_options_ = *resolved;
      } else {
        init_error_ = resolved.status();
      }
    } else {
      Status st = ValidateIngestOptions(options_.engine.ingest);
      if (st.ok()) {
        ingest_options_ = options_.engine.ingest;
      } else {
        init_error_ = st;
      }
    }
  }
  if (init_error_.ok() && ingest_options_.enabled()) {
    front_ingest_ = std::make_unique<IngestPipeline>(ingest_options_);
    front_ingest_->BindDelivery(
        [this](size_t port, const Tuple& t) {
          return RouteReleased(port < ingest_port_routes_.size()
                                   ? ingest_port_routes_[port]
                                   : nullptr,
                               t);
        },
        [this](size_t port, const TupleBatch& batch) {
          const StreamRoute* route = port < ingest_port_routes_.size()
                                         ? ingest_port_routes_[port]
                                         : nullptr;
          for (const Tuple& t : batch.tuples()) {
            ESLEV_RETURN_NOT_OK(RouteReleased(route, t));
          }
          return Status::OK();
        },
        [this](Timestamp now) {
          ingest_fanned_hb_.store(now, std::memory_order_release);
          FanHeartbeat(now);
          return Status::OK();
        });
  }
  EngineOptions shard_options = options_.engine;
  shard_options.batch_size = 1;
  shard_options.honor_batch_env = false;
  shard_options.ingest = IngestOptions{};
  shard_options.honor_ingest_env = false;
  pending_.resize(options_.num_shards);
  shards_.reserve(options_.num_shards);
  for (size_t i = 0; i < options_.num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->engine = std::make_unique<Engine>(shard_options);
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_) {
    shard->worker = std::thread([this, s = shard.get()] { WorkerLoop(s); });
  }
}

ShardedEngine::~ShardedEngine() {
  for (auto& shard : shards_) shard->queue.Close();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

void ShardedEngine::WorkerLoop(Shard* shard) {
  std::vector<Item> batch;
  Engine& engine = *shard->engine;
  while (shard->queue.PopAll(&batch)) {
    for (Item& item : batch) {
      switch (item.kind) {
        case Item::Kind::kTuple: {
          // Clamp forward to the shard clock (ConcurrentEngine's rule):
          // queue order is the shard's serialization order.
          Status st;
          if (item.tuple.ts() < engine.current_time()) {
            Tuple clamped = item.tuple;
            clamped.set_ts(engine.current_time());
            st = engine.PushTuple(*item.stream, clamped);
          } else {
            st = engine.PushTuple(*item.stream, item.tuple);
          }
          if (!st.ok()) RecordError(shard, st);
          break;
        }
        case Item::Kind::kBatch: {
          // Same clamp rule as kTuple, applied with a running clock so
          // the batch stays a non-decreasing run before one PushBatch
          // crossing (byte-identical to pushing its tuples one by one).
          Timestamp clock = engine.current_time();
          TupleBatch clamped;
          clamped.Reserve(item.batch.size());
          for (const Tuple& t : item.batch.tuples()) {
            if (t.ts() < clock) {
              Tuple c = t;
              c.set_ts(clock);
              clamped.Add(std::move(c));
            } else {
              clock = t.ts();
              clamped.Add(t);
            }
          }
          Status st = engine.PushBatch(*item.stream, clamped);
          if (!st.ok()) RecordError(shard, st);
          break;
        }
        case Item::Kind::kHeartbeat: {
          if (item.ts < engine.current_time()) break;  // stale tick
          Status st = engine.AdvanceTime(item.ts);
          if (!st.ok()) RecordError(shard, st);
          break;
        }
        case Item::Kind::kCommand: {
          Status st = item.command(engine);
          if (item.done != nullptr) item.done->set_value(st);
          break;
        }
      }
    }
    batch.clear();
  }
}

void ShardedEngine::RecordError(Shard* shard, const Status& status) {
  std::lock_guard<std::mutex> lock(shard->err_mu);
  if (shard->first_error.ok()) shard->first_error = status;
}

Status ShardedEngine::CheckAlive(size_t shard) const {
  if (!shards_[shard]->alive.load(std::memory_order_acquire)) {
    return Status::ExecutionError(
        "shard " + std::to_string(shard) +
        " worker is dead (promote its standby or heal before this call)");
  }
  return Status::OK();
}

Status ShardedEngine::CheckAllAlive() const {
  for (size_t i = 0; i < shards_.size(); ++i) {
    ESLEV_RETURN_NOT_OK(CheckAlive(i));
  }
  return Status::OK();
}

Status ShardedEngine::RunOnShard(size_t shard,
                                 const std::function<Status(Engine&)>& fn) {
  // A dead shard's queue is closed: a command pushed there is dropped and
  // its promise never resolves, so fail fast instead of hanging.
  ESLEV_RETURN_NOT_OK(CheckAlive(shard));
  // Commands must not overtake tuples buffered at the routing layer.
  FlushRouteBatches();
  std::promise<Status> done;
  std::future<Status> future = done.get_future();
  Item item;
  item.kind = Item::Kind::kCommand;
  item.command = fn;
  item.done = &done;
  shards_[shard]->queue.Push(std::move(item));
  return future.get();
}

Status ShardedEngine::RunOnAllShards(
    const std::function<Status(Engine&)>& fn) {
  ESLEV_RETURN_NOT_OK(CheckAllAlive());
  FlushRouteBatches();
  std::vector<std::promise<Status>> done(shards_.size());
  std::vector<std::future<Status>> futures;
  futures.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    futures.push_back(done[i].get_future());
    Item item;
    item.kind = Item::Kind::kCommand;
    item.command = fn;
    item.done = &done[i];
    shards_[i]->queue.Push(std::move(item));
  }
  Status first = Status::OK();
  for (auto& f : futures) {
    Status st = f.get();
    if (first.ok() && !st.ok()) first = st;
  }
  return first;
}

Status ShardedEngine::RefreshRoutes() {
  // Read shard 0's catalog on its worker thread; all shards are in
  // lockstep, so any shard's view is authoritative.
  std::vector<std::pair<std::string, SchemaPtr>> streams;
  ESLEV_RETURN_NOT_OK(RunOnShard(0, [&](Engine& engine) {
    for (const std::string& name : engine.StreamNames()) {
      streams.emplace_back(name, engine.FindStream(name)->schema());
    }
    return Status::OK();
  }));
  std::unique_lock<std::shared_mutex> lock(routes_mu_);
  for (auto& [name, schema] : streams) {
    const std::string key = AsciiToLower(name);
    if (routes_.count(key)) continue;
    StreamRoute route;
    route.name = name;
    route.schema = schema;
    route.key_index = DefaultPartitionKeyIndex(schema);
    routes_.emplace(key, std::move(route));
  }
  return Status::OK();
}

Status ShardedEngine::ExecuteScript(const std::string& sql) {
  ESLEV_RETURN_NOT_OK(init_error_);
  ESLEV_RETURN_NOT_OK(
      RunOnAllShards([sql](Engine& engine) { return engine.ExecuteScript(sql); }));
  return RefreshRoutes();
}

Result<QueryInfo> ShardedEngine::RegisterQuery(const std::string& sql) {
  ESLEV_RETURN_NOT_OK(init_error_);
  std::mutex mu;
  std::vector<QueryInfo> infos;
  ESLEV_RETURN_NOT_OK(RunOnAllShards([&, sql](Engine& engine) {
    ESLEV_ASSIGN_OR_RETURN(QueryInfo info, engine.RegisterQuery(sql));
    std::lock_guard<std::mutex> lock(mu);
    infos.push_back(info);
    return Status::OK();
  }));
  for (const QueryInfo& info : infos) {
    if (info.id != infos[0].id ||
        info.output_stream != infos[0].output_stream ||
        info.output_table != infos[0].output_table) {
      return Status::ExecutionError(
          "shard engines diverged while registering a query (run all setup "
          "through ShardedEngine, not on individual shards)");
    }
  }
  ESLEV_RETURN_NOT_OK(RefreshRoutes());
  return infos[0];
}

Status ShardedEngine::UnregisterQuery(int id) {
  ESLEV_RETURN_NOT_OK(init_error_);
  // Quiesce: every shard must have processed all routed tuples before
  // the topology changes, so the cut lands at the same stream position
  // on every shard (mirrors Engine::UnregisterQuery's FlushBatches).
  ESLEV_RETURN_NOT_OK(Flush());
  ESLEV_RETURN_NOT_OK(RunOnAllShards(
      [id](Engine& engine) { return engine.UnregisterQuery(id); }));
  return PruneDeadRoutes();
}

Status ShardedEngine::SetNextQueryId(int id) {
  ESLEV_RETURN_NOT_OK(init_error_);
  return RunOnAllShards(
      [id](Engine& engine) { return engine.SetNextQueryId(id); });
}

Status ShardedEngine::PruneDeadRoutes() {
  std::vector<std::string> names;
  ESLEV_RETURN_NOT_OK(RunOnShard(0, [&names](Engine& engine) {
    names = engine.StreamNames();
    return Status::OK();
  }));
  std::map<std::string, bool> live;
  for (const std::string& name : names) live[AsciiToLower(name)] = true;
  std::unique_lock<std::shared_mutex> lock(routes_mu_);
  for (auto it = routes_.begin(); it != routes_.end();) {
    if (live.count(it->first)) {
      ++it;
      continue;
    }
    {
      // Lock order per OfferIngest: routes_mu_ -> ... -> ingest_mu_.
      std::lock_guard<std::mutex> ingest_lock(ingest_mu_);
      for (const StreamRoute*& cached : ingest_port_routes_) {
        if (cached == &it->second) cached = nullptr;
      }
    }
    it = routes_.erase(it);
  }
  return Status::OK();
}

Status ShardedEngine::Subscribe(const std::string& stream,
                                TupleCallback callback) {
  const size_t sub_id = callbacks_.size();
  callbacks_.push_back(std::move(callback));
  Status st = Status::OK();
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard* shard = shards_[i].get();
    Status s = RunOnShard(i, [this, shard, i, sub_id, stream](Engine& engine) {
      return engine.Subscribe(stream, [shard, i, sub_id](const Tuple& t) {
        std::lock_guard<std::mutex> lock(shard->out_mu);
        if (shard->received_per_sub.size() <= sub_id) {
          shard->received_per_sub.resize(sub_id + 1, 0);
        }
        ++shard->received_per_sub[sub_id];
        shard->outbox.push_back({t.ts(), shard->out_seq++, i, sub_id, t});
      });
    });
    if (st.ok() && !s.ok()) st = s;
  }
  return st;
}

Status ShardedEngine::SetPartitionKey(const std::string& stream,
                                      const std::string& column) {
  std::unique_lock<std::shared_mutex> lock(routes_mu_);
  auto it = routes_.find(AsciiToLower(stream));
  if (it == routes_.end()) {
    return Status::NotFound("stream not found: " + stream);
  }
  const SchemaPtr& schema = it->second.schema;
  for (size_t i = 0; i < schema->num_fields(); ++i) {
    if (AsciiToLower(schema->field(i).name) == AsciiToLower(column)) {
      it->second.key_index = i;
      it->second.single_shard = false;
      return Status::OK();
    }
  }
  return Status::NotFound("stream '" + stream + "' has no column '" + column +
                          "'");
}

Status ShardedEngine::SetSingleShard(const std::string& stream) {
  std::unique_lock<std::shared_mutex> lock(routes_mu_);
  auto it = routes_.find(AsciiToLower(stream));
  if (it == routes_.end()) {
    return Status::NotFound("stream not found: " + stream);
  }
  it->second.single_shard = true;
  return Status::OK();
}

Result<std::string> ShardedEngine::Explain(const std::string& sql) {
  // EXPLAIN ANALYZE shows every shard's counters; plain EXPLAIN and
  // EXPLAIN LINT run once on shard 0 (all shards hold identical plans
  // and catalogs, so the lint verdict is shard-independent).
  bool analyze = false;
  {
    auto stmt = ParseStatement(sql);
    if (stmt.ok() && (*stmt)->kind == StatementKind::kExplain) {
      analyze = static_cast<const ExplainStmt&>(**stmt).mode ==
                ExplainMode::kAnalyze;
    }
  }
  if (!analyze) {
    Result<std::string> out = Status::ExecutionError("explain did not run");
    ESLEV_RETURN_NOT_OK(RunOnShard(0, [&](Engine& engine) {
      out = engine.Explain(sql);
      return Status::OK();
    }));
    return out;
  }
  std::string combined;
  for (size_t i = 0; i < shards_.size(); ++i) {
    Result<std::string> out = Status::ExecutionError("explain did not run");
    ESLEV_RETURN_NOT_OK(RunOnShard(i, [&](Engine& engine) {
      out = engine.Explain(sql);
      return Status::OK();
    }));
    ESLEV_RETURN_NOT_OK(out.status());
    combined += "-- shard " + std::to_string(i) + " --\n";
    combined += *out;
    if (i + 1 < shards_.size()) combined += "\n";
  }
  return combined;
}

const ShardedEngine::StreamRoute* ShardedEngine::FindRoute(
    const std::string& stream) const {
  auto it = routes_.find(AsciiToLower(stream));
  return it == routes_.end() ? nullptr : &it->second;
}

size_t ShardedEngine::ShardOf(const StreamRoute& route,
                              const Tuple& tuple) const {
  if (route.single_shard || shards_.size() == 1) return 0;
  return tuple.value(route.key_index).Hash() % shards_.size();
}

Status ShardedEngine::Push(const std::string& stream,
                           std::vector<Value> values, Timestamp ts) {
  SchemaPtr schema;
  {
    std::shared_lock<std::shared_mutex> lock(routes_mu_);
    const StreamRoute* route = FindRoute(stream);
    if (route == nullptr) {
      return Status::NotFound("stream not found: " + stream);
    }
    schema = route->schema;
  }
  ESLEV_ASSIGN_OR_RETURN(Tuple tuple,
                         MakeTuple(schema, std::move(values), ts));
  return PushTuple(stream, tuple);
}

Status ShardedEngine::PushTuple(const std::string& stream,
                                const Tuple& tuple) {
  return RouteTuple(stream, tuple, /*log_to_wal=*/true);
}

Status ShardedEngine::RouteTuple(const std::string& stream, const Tuple& tuple,
                                 bool log_to_wal) {
  ESLEV_RETURN_NOT_OK(init_error_);
  std::shared_lock<std::shared_mutex> lock(routes_mu_);
  const StreamRoute* route = FindRoute(stream);
  if (route == nullptr) {
    return Status::NotFound("stream not found: " + stream);
  }
  if (!route->single_shard && route->key_index >= tuple.size()) {
    return Status::Invalid("tuple too short for partition key column " +
                           std::to_string(route->key_index) + " of stream " +
                           route->name);
  }
  if (front_ingest_ != nullptr) {
    return OfferIngest(*route, tuple, log_to_wal);
  }
  const size_t shard = ShardOf(*route, tuple);
  shards_[shard]->tuples_routed.fetch_add(1, std::memory_order_relaxed);
  if (route_batch_size_ > 1) {
    // Route-level batching: buffer into the shard's pending same-stream
    // run instead of enqueueing one item per tuple. The WAL append still
    // happens per tuple, before buffering and under the same mutex as
    // the buffer append, so per-shard enqueue order (== buffer order)
    // remains a linearization of the log and a crash with a pending
    // batch loses nothing.
    if (log_to_wal && wal_enabled_.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> wal_lock(wal_mu_);
      ESLEV_ASSIGN_OR_RETURN(uint64_t lsn,
                             wal_->AppendTuple(route->name, tuple));
      (void)lsn;
      BufferRouted(shard, &route->name, tuple);
    } else {
      BufferRouted(shard, &route->name, tuple);
    }
    return Status::OK();
  }
  Item item;
  item.kind = Item::Kind::kTuple;
  item.stream = &route->name;  // stable: routes_ nodes are never erased
  item.tuple = tuple;
  if (log_to_wal && wal_enabled_.load(std::memory_order_acquire)) {
    // Append + enqueue under one mutex: the WAL's total order is then a
    // linearization consistent with the shard's queue order, so replaying
    // the log front to back reproduces the identical per-shard history.
    std::lock_guard<std::mutex> wal_lock(wal_mu_);
    ESLEV_ASSIGN_OR_RETURN(uint64_t lsn, wal_->AppendTuple(route->name, tuple));
    (void)lsn;
    shards_[shard]->queue.Push(std::move(item));
  } else {
    shards_[shard]->queue.Push(std::move(item));
  }
  return Status::OK();
}

Status ShardedEngine::OfferIngest(const StreamRoute& route, const Tuple& tuple,
                                  bool log_to_wal) {
  const auto offer = [&]() -> Status {
    std::lock_guard<std::mutex> ingest_lock(ingest_mu_);
    const size_t port = front_ingest_->PortFor(AsciiToLower(route.name));
    if (port >= ingest_port_routes_.size()) {
      ingest_port_routes_.resize(port + 1, nullptr);
    }
    ingest_port_routes_[port] = &route;  // stable: routes_ nodes persist
    return front_ingest_->Offer(port, tuple);
  };
  if (log_to_wal && wal_enabled_.load(std::memory_order_acquire)) {
    // The raw tuple is logged before it enters the pipeline, so the WAL
    // keeps arrival order and replay re-derives every release.
    std::lock_guard<std::mutex> wal_lock(wal_mu_);
    ESLEV_ASSIGN_OR_RETURN(uint64_t lsn, wal_->AppendTuple(route.name, tuple));
    (void)lsn;
    return offer();
  }
  return offer();
}

Status ShardedEngine::RouteReleased(const StreamRoute* route,
                                    const Tuple& tuple) {
  if (route == nullptr) {
    return Status::ExecutionError(
        "ingest released a tuple on an unbound port (pipeline state does "
        "not match the rebuilt catalog)");
  }
  const size_t shard = ShardOf(*route, tuple);
  shards_[shard]->tuples_routed.fetch_add(1, std::memory_order_relaxed);
  if (route_batch_size_ > 1) {
    BufferRouted(shard, &route->name, tuple);
    return Status::OK();
  }
  Item item;
  item.kind = Item::Kind::kTuple;
  item.stream = &route->name;
  item.tuple = tuple;
  shards_[shard]->queue.Push(std::move(item));
  return Status::OK();
}

void ShardedEngine::BufferRouted(size_t shard, const std::string* stream,
                                 const Tuple& tuple) {
  // A dead shard's mailbox drops enqueues (its queue is closed); the
  // route buffer must mirror that, or tuples buffered in the dark
  // window would outlive a promotion and be processed twice. The tuple
  // is already in the WAL — the standby replays it (DESIGN.md §12).
  // Checked under pending_mu_: KillShard clears the slot under the
  // same lock after flipping `alive`, so either order drops the tuple.
  std::lock_guard<std::mutex> lock(pending_mu_);
  if (!shards_[shard]->alive.load(std::memory_order_acquire)) return;
  PendingBatch& p = pending_[shard];
  // Pointer comparison is exact: routes_ nodes are stable and FindRoute
  // returns the same node for the same stream.
  if (p.stream != nullptr && p.stream != stream) FlushShardLocked(shard);
  p.stream = stream;
  p.batch.Add(tuple);
  if (p.batch.size() >= route_batch_size_) FlushShardLocked(shard);
}

void ShardedEngine::FlushShardLocked(size_t shard) {
  PendingBatch& p = pending_[shard];
  if (p.batch.empty()) {
    p.stream = nullptr;
    return;
  }
  Item item;
  item.kind = Item::Kind::kBatch;
  item.stream = p.stream;
  item.batch = std::move(p.batch);
  p.batch.Clear();
  p.stream = nullptr;
  route_batches_enqueued_.fetch_add(1, std::memory_order_relaxed);
  route_tuples_batched_.fetch_add(item.batch.size(),
                                  std::memory_order_relaxed);
  shards_[shard]->queue.Push(std::move(item));
}

void ShardedEngine::DropRoutePending(size_t shard) {
  std::lock_guard<std::mutex> lock(pending_mu_);
  pending_[shard].batch.Clear();
  pending_[shard].stream = nullptr;
}

void ShardedEngine::FlushRouteBatches() {
  if (route_batch_size_ <= 1) return;
  std::lock_guard<std::mutex> lock(pending_mu_);
  for (size_t i = 0; i < pending_.size(); ++i) FlushShardLocked(i);
}

void ShardedEngine::FanHeartbeat(Timestamp now) {
  FlushRouteBatches();
  for (auto& shard : shards_) {
    Item item;
    item.kind = Item::Kind::kHeartbeat;
    item.ts = now;
    shard->queue.Push(std::move(item));
  }
}

int ShardedEngine::RegisterProducer() { return watermark_.RegisterProducer(); }

Status ShardedEngine::AdvanceProducer(int id, Timestamp now) {
  ESLEV_RETURN_NOT_OK(init_error_);
  std::optional<Timestamp> low = watermark_.Advance(id, now);
  if (!low.has_value()) return Status::OK();  // watermark did not move
  if (front_ingest_ != nullptr) {
    // The raw tick is logged, then drives the pipeline frontiers; shards
    // hear the held-back release frontier via the delivery heartbeat
    // callback (FanHeartbeat) once no in-bound arrival can precede it.
    if (wal_enabled_.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> wal_lock(wal_mu_);
      ESLEV_ASSIGN_OR_RETURN(uint64_t lsn, wal_->AppendHeartbeat("", *low));
      (void)lsn;
      std::lock_guard<std::mutex> ingest_lock(ingest_mu_);
      return front_ingest_->Heartbeat(*low);
    }
    std::lock_guard<std::mutex> ingest_lock(ingest_mu_);
    return front_ingest_->Heartbeat(*low);
  }
  if (wal_enabled_.load(std::memory_order_acquire)) {
    // Heartbeats drive active expiration, so they must be replayable:
    // log an engine-wide heartbeat (empty stream name) ordered with the
    // tuple appends, then fan out under the same lock.
    std::lock_guard<std::mutex> wal_lock(wal_mu_);
    ESLEV_ASSIGN_OR_RETURN(uint64_t lsn, wal_->AppendHeartbeat("", *low));
    (void)lsn;
    FanHeartbeat(*low);
  } else {
    FanHeartbeat(*low);
  }
  return Status::OK();
}

Status ShardedEngine::AdvanceTime(Timestamp now) {
  int id;
  {
    std::lock_guard<std::mutex> lock(implicit_producer_mu_);
    if (implicit_producer_ < 0) {
      implicit_producer_ = watermark_.RegisterProducer();
    }
    id = implicit_producer_;
  }
  return AdvanceProducer(id, now);
}

Status ShardedEngine::Flush() {
  FlushRouteBatches();
  for (auto& shard : shards_) shard->queue.WaitIdle();
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->err_mu);
    if (!shard->first_error.ok()) return shard->first_error;
  }
  return Status::OK();
}

size_t ShardedEngine::DrainOutputs() {
  std::vector<Emission> merged;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->out_mu);
    if (merged.empty()) {
      merged = std::move(shard->outbox);
    } else {
      merged.insert(merged.end(),
                    std::make_move_iterator(shard->outbox.begin()),
                    std::make_move_iterator(shard->outbox.end()));
    }
    shard->outbox.clear();
  }
  // Per-shard emission order is already timestamp-nondecreasing; the
  // global merge orders across shards by time, breaking ties by shard
  // then per-shard sequence (deterministic for a fixed routing). Sorting
  // an index permutation keeps the pre-merge position visible, so the
  // reorder distance (|sorted position - arrival position|) can be
  // recorded per emission.
  std::vector<size_t> order(merged.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t ia, size_t ib) {
    const Emission& a = merged[ia];
    const Emission& b = merged[ib];
    if (a.ts != b.ts) return a.ts < b.ts;
    if (a.shard != b.shard) return a.shard < b.shard;
    return a.seq < b.seq;
  });
  for (size_t i = 0; i < order.size(); ++i) {
    const size_t from = order[i];
    drain_reorder_distance_.Observe(from > i ? from - i : i - from);
    const Emission& e = merged[from];
    callbacks_[e.sub](e.tuple);
  }
  return merged.size();
}

Result<std::vector<Tuple>> ShardedEngine::ExecuteSnapshot(
    const std::string& sql) {
  ESLEV_RETURN_NOT_OK(CheckAllAlive());
  ESLEV_RETURN_NOT_OK(Flush());
  std::vector<std::vector<Tuple>> per_shard(shards_.size());
  std::vector<std::promise<Status>> done(shards_.size());
  std::vector<std::future<Status>> futures;
  futures.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    futures.push_back(done[i].get_future());
    Item item;
    item.kind = Item::Kind::kCommand;
    item.command = [&per_shard, i, sql](Engine& engine) {
      ESLEV_ASSIGN_OR_RETURN(per_shard[i], engine.ExecuteSnapshot(sql));
      return Status::OK();
    };
    item.done = &done[i];
    shards_[i]->queue.Push(std::move(item));
  }
  Status first = Status::OK();
  for (auto& f : futures) {
    Status st = f.get();
    if (first.ok() && !st.ok()) first = st;
  }
  ESLEV_RETURN_NOT_OK(first);
  std::vector<Tuple> merged;
  for (auto& rows : per_shard) {
    merged.insert(merged.end(), std::make_move_iterator(rows.begin()),
                  std::make_move_iterator(rows.end()));
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const Tuple& a, const Tuple& b) { return a.ts() < b.ts(); });
  return merged;
}

std::vector<uint64_t> ShardedEngine::shard_tuple_counts() const {
  std::vector<uint64_t> counts;
  counts.reserve(shards_.size());
  for (const auto& shard : shards_) {
    counts.push_back(shard->tuples_routed.load(std::memory_order_relaxed));
  }
  return counts;
}

Result<std::vector<Timestamp>> ShardedEngine::shard_clocks() {
  std::vector<Timestamp> clocks(shards_.size(), kMinTimestamp);
  for (size_t i = 0; i < shards_.size(); ++i) {
    ESLEV_RETURN_NOT_OK(RunOnShard(i, [&clocks, i](Engine& engine) {
      clocks[i] = engine.current_time();
      return Status::OK();
    }));
  }
  return clocks;
}

Result<MetricsSnapshot> ShardedEngine::Metrics() {
  MetricsSnapshot snap;
  // Per-shard engine metrics, read on each worker thread (serialized
  // against that shard's processing). Dead shards (killed worker awaiting
  // promotion) are skipped rather than failing the whole snapshot.
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (!shards_[i]->alive.load(std::memory_order_acquire)) continue;
    MetricsSnapshot shard_snap;
    ESLEV_RETURN_NOT_OK(RunOnShard(i, [&shard_snap](Engine& engine) {
      shard_snap = engine.Metrics();
      return Status::OK();
    }));
    snap.Merge("shard" + std::to_string(i) + ".", shard_snap);
  }
  // Sharded-runtime gauges.
  for (size_t i = 0; i < shards_.size(); ++i) {
    const std::string prefix = "sharded.shard" + std::to_string(i) + ".";
    snap.gauges[prefix + "queue_depth"] =
        static_cast<int64_t>(shards_[i]->queue.ApproxSize());
    snap.counters[prefix + "tuples_routed"] =
        shards_[i]->tuples_routed.load(std::memory_order_relaxed);
    snap.gauges[prefix + "alive"] =
        shards_[i]->alive.load(std::memory_order_acquire) ? 1 : 0;
  }
  // Routing-layer batching (DESIGN.md §13).
  snap.gauges["sharded.batch.route_batch_size"] =
      static_cast<int64_t>(route_batch_size_);
  snap.counters["sharded.batch.batches_enqueued"] =
      route_batches_enqueued_.load(std::memory_order_relaxed);
  snap.counters["sharded.batch.tuples_batched"] =
      route_tuples_batched_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> pending_lock(pending_mu_);
    int64_t pending = 0;
    for (const PendingBatch& p : pending_) {
      pending += static_cast<int64_t>(p.batch.size());
    }
    snap.gauges["sharded.batch.pending"] = pending;
  }
  if (front_ingest_ != nullptr) {
    MetricsSnapshot ingest_snap;
    {
      std::lock_guard<std::mutex> ingest_lock(ingest_mu_);
      front_ingest_->AppendMetrics(&ingest_snap);
    }
    ingest_snap.gauges["ingest.fanned_hb"] =
        static_cast<int64_t>(ingest_fanned_hb_.load(std::memory_order_acquire));
    snap.Merge("sharded.", ingest_snap);
  }
  snap.gauges["sharded.watermark.low"] =
      static_cast<int64_t>(watermark_.low_watermark());
  snap.gauges["sharded.watermark.max_producer"] =
      static_cast<int64_t>(watermark_.max_producer_clock());
  snap.gauges["sharded.watermark.lag"] =
      static_cast<int64_t>(watermark_lag());
  snap.histograms["sharded.drain.reorder_distance"] =
      drain_reorder_distance_.Snapshot();
  // Front-end durability counters (DESIGN.md §10).
  snap.counters["sharded.recovery.checkpoints"] =
      checkpoints_taken_.load(std::memory_order_relaxed);
  snap.counters["sharded.recovery.wal_records_replayed"] =
      wal_records_replayed_.load(std::memory_order_relaxed);
  snap.counters["sharded.recovery_truncated_frames"] =
      recovery_truncated_frames_.load(std::memory_order_relaxed);
  snap.counters["sharded.recovery.replay_outputs_discarded"] =
      replay_outputs_discarded_.load(std::memory_order_relaxed);
  snap.gauges["sharded.recovery.last_checkpoint_bytes"] = static_cast<int64_t>(
      last_checkpoint_bytes_.load(std::memory_order_relaxed));
  snap.gauges["sharded.recovery.last_checkpoint_duration_us"] =
      last_checkpoint_duration_us_.load(std::memory_order_relaxed);
  if (wal_enabled_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> wal_lock(wal_mu_);
    snap.counters["sharded.wal.records_appended"] = wal_->records_appended();
    snap.counters["sharded.wal.group_commits"] = wal_->group_commits();
    snap.counters["sharded.wal.bytes_written"] = wal_->bytes_written();
    snap.counters["sharded.wal.segments_sealed"] = wal_->segments_sealed();
    snap.counters["sharded.wal.segments_deleted"] = wal_->segments_deleted();
    snap.gauges["sharded.wal.sealed_segments"] =
        static_cast<int64_t>(wal_->sealed_segments().size());
    snap.gauges["sharded.wal.live_bytes"] =
        static_cast<int64_t>(wal_->live_bytes());
  }
  return snap;
}

}  // namespace eslev
