// ShardedEngine: hash-partitioned parallel execution of N independent
// Engine instances (DESIGN.md §8).
//
// The paper's RFID queries partition naturally by tag identity: dedup
// (Example 1) anti-joins on (reader_id, tag_id), SEQ pipelines join on
// tagid, EPC aggregation groups by EPC fields. ShardedEngine exploits
// that: every shard runs the full query set over the slice of each
// stream whose partition-key hash lands on it, on its own thread behind
// its own MPSC queue. Setup (DDL / RegisterQuery / Subscribe /
// SetPartitionKey) is broadcast to all shards and must complete before
// producers start feeding; the data plane (Push / PushTuple /
// AdvanceProducer / AdvanceTime) is thread-safe.
//
// Time is advanced by a low-watermark protocol (watermark.h): producer
// heartbeats fan out to ALL shards once the minimum producer clock
// moves, so active expiration (window-expiry-triggered EXCEPTION_SEQ
// violations) fires even on shards receiving no tuples. Within a shard,
// tuples are clamped forward to the shard clock exactly as
// ConcurrentEngine does, keeping each shard's joint history totally
// ordered no matter how producers interleave.
//
// Emission: shard-side subscription callbacks buffer into per-shard
// outboxes (per-shard order preserved); DrainOutputs() merges the
// outboxes by timestamp on the caller's thread and invokes user
// callbacks there — one consumer-safe emission path.
//
// Queries whose match conditions cross partitions (e.g. Example 5's
// EXCEPTION_SEQ over a workflow shared by all tags) must fall back to a
// single shard: route their source streams with SetSingleShard().

#ifndef ESLEV_CORE_SHARDED_ENGINE_H_
#define ESLEV_CORE_SHARDED_ENGINE_H_

#include <atomic>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/mpsc_queue.h"
#include "core/watermark.h"

namespace eslev {

class ReplicatedShardedEngine;

struct ShardedEngineOptions {
  /// Number of worker-owned Engine instances. 1 degenerates to a
  /// single-threaded engine behind a queue.
  size_t num_shards = 4;
  /// Options applied to every shard engine. `engine.batch_size` (and the
  /// ESLEV_BATCH_SIZE override, when `engine.honor_batch_env` is set) is
  /// consumed by the *routing layer*: consecutive same-stream tuples
  /// bound for the same shard accumulate into one queue item, so each
  /// MPSC crossing amortizes over many events. Shard engines themselves
  /// are pinned to tuple-at-a-time (batches arrive pre-formed via
  /// Engine::PushBatch), keeping Flush()/WaitIdle() exact.
  EngineOptions engine;
};

class ShardedEngine {
 public:
  explicit ShardedEngine(ShardedEngineOptions options = {});
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  // ---- setup (broadcast; complete before producers push) -----------------

  /// \brief Run a script on every shard (DDL + continuous queries).
  Status ExecuteScript(const std::string& sql);

  /// \brief Register one continuous query on every shard. The returned
  /// QueryInfo is identical across shards (engines evolve in lockstep).
  Result<QueryInfo> RegisterQuery(const std::string& sql);

  /// \brief Unregister a continuous query on every shard (DESIGN.md
  /// §17). Quiesces all shard queues first (Flush), so the topology
  /// change lands at the same stream position everywhere, then prunes
  /// routes whose `_q<id>` stream the unregistration dropped.
  Status UnregisterQuery(int id);

  /// \brief Broadcast Engine::SetNextQueryId to every shard — the
  /// recovery hook for re-registering query sets with id gaps.
  Status SetNextQueryId(int id);

  /// \brief Subscribe to a stream on every shard; the callback is only
  /// ever invoked from DrainOutputs(), on the draining thread.
  Status Subscribe(const std::string& stream, TupleCallback callback);

  /// \brief Override the partition column of a source stream. By default
  /// the first column named tag_id/tagid/tid/epc/tag partitions the
  /// stream, falling back to column 0.
  Status SetPartitionKey(const std::string& stream, const std::string& column);

  /// \brief Route every tuple of `stream` to shard 0 — the fallback for
  /// queries whose matches cross partition keys (cross-partition SEQ).
  Status SetSingleShard(const std::string& stream);

  /// \brief Plan a query on shard 0 and describe the pipeline. For
  /// `EXPLAIN ANALYZE` the output carries one annotated section per
  /// shard (each shard runs its own copy of every query, so the live
  /// counters differ).
  Result<std::string> Explain(const std::string& sql);

  // ---- data plane (thread-safe) ------------------------------------------

  /// \brief Route a tuple to its shard's queue. Returns immediately;
  /// pipeline errors surface on Flush().
  Status Push(const std::string& stream, std::vector<Value> values,
              Timestamp ts);
  Status PushTuple(const std::string& stream, const Tuple& tuple);

  /// \brief Register an explicit producer for the watermark protocol.
  int RegisterProducer();

  /// \brief Report producer `id` reaching `now`; fans a heartbeat to all
  /// shards when the low watermark advances.
  Status AdvanceProducer(int id, Timestamp now);

  /// \brief Single-producer convenience: lazily registers one implicit
  /// producer and advances it.
  Status AdvanceTime(Timestamp now);

  // ---- durability (DESIGN.md §10) ----------------------------------------

  /// \brief Coordinated checkpoint: fan the current low watermark to all
  /// shards (so expiration state is aligned at the cut), quiesce every
  /// shard queue, write `<dir>/shard<i>/engine.ckpt` per shard, then the
  /// `<dir>/MANIFEST`. With the front-end WAL enabled the append mutex is
  /// held for the whole checkpoint, so concurrent producers serialize
  /// entirely before or after the cut and the WAL is truncated to exactly
  /// the records the checkpoint does not cover. Without a WAL the caller
  /// must pause producers around the call.
  Status Checkpoint(const std::string& dir);

  /// \brief Load a coordinated checkpoint into this engine. The caller
  /// rebuilds the identical topology on every shard first (same
  /// ExecuteScript/RegisterQuery sequence through ShardedEngine). The
  /// manifest and the existence of every shard checkpoint file are
  /// validated before any shard is touched — a manifest naming a missing
  /// shard file fails cleanly with no partial restore.
  Status Restore(const std::string& dir);

  /// \brief Start logging every routed tuple and fanned heartbeat to a
  /// front-end WAL at `path`, ahead of enqueueing. The append mutex is
  /// held across append + enqueue, so WAL order equals each shard's
  /// queue order and replay reproduces identical per-shard histories.
  /// Call during setup, before producers start pushing.
  Status EnableWal(const std::string& path, WalOptions options = {});

  /// \brief Crash recovery: Restore(dir), replay `<dir>/wal.log` through
  /// the normal routing (skipping records the checkpoint covers), then
  /// re-enable the WAL for new appends. Emissions regenerated during
  /// replay are discarded instead of delivered unless
  /// `options.deliver_callbacks` is set; per-stream `deliver_after` is
  /// not supported at the sharded level (per-shard outbox sequence
  /// numbers are not a global consumer position).
  Status RecoverFrom(const std::string& dir,
                     const ReplayOptions& options = {});

  // ---- consumption --------------------------------------------------------

  /// \brief Wait until every shard queue is drained and idle, then
  /// return the first sticky pipeline error (if any).
  Status Flush();

  /// \brief Merge buffered emissions from all shards by (timestamp,
  /// shard, sequence) and invoke the subscription callbacks on the
  /// calling thread. Returns the number of tuples delivered.
  size_t DrainOutputs();

  /// \brief Ad-hoc snapshot: flushes, executes on every shard, and
  /// gather-merges rows by timestamp. Correct for selection/projection
  /// over partitioned history; aggregate snapshots see per-shard
  /// partials and should use single-shard routing.
  Result<std::vector<Tuple>> ExecuteSnapshot(const std::string& sql);

  // ---- observability -------------------------------------------------------

  size_t num_shards() const { return shards_.size(); }
  /// \brief True when the routing layer runs a front-end ingest pipeline
  /// (EngineOptions::ingest / ESLEV_INGEST_* resolved to enabled). Shard
  /// engines always run with ingest disabled: ordering and cleaning
  /// happen once, ahead of hash partitioning, so the WAL keeps raw input
  /// order and every shard sees the identical cleaned release sequence
  /// it would see in the single-engine run.
  bool ingest_enabled() const { return front_ingest_ != nullptr; }
  const IngestOptions& ingest_options() const { return ingest_options_; }
  /// \brief The resolved routing-layer batch size (option +
  /// ESLEV_BATCH_SIZE override); 1 means tuple-at-a-time enqueueing.
  size_t route_batch_size() const { return route_batch_size_; }
  Timestamp low_watermark() const { return watermark_.low_watermark(); }
  /// \brief How far the fanned-out low watermark trails the fastest
  /// producer clock (0 when no producer registered yet).
  Duration watermark_lag() const {
    const Timestamp max_clock = watermark_.max_producer_clock();
    const Timestamp low = watermark_.low_watermark();
    return max_clock > low ? max_clock - low : 0;
  }
  /// \brief Tuples routed to each shard so far (for balance checks).
  std::vector<uint64_t> shard_tuple_counts() const;
  /// \brief Each shard engine's current time, read on its worker thread
  /// (so the read is serialized against processing).
  Result<std::vector<Timestamp>> shard_clocks();

  /// \brief Merged snapshot: every shard engine's metrics under a
  /// `shard<i>.` prefix, plus sharded-runtime gauges (per-shard queue
  /// depth and routed-tuple counts, watermark low/max/lag) and the
  /// drain-merge reorder-distance histogram (DESIGN.md §9).
  Result<MetricsSnapshot> Metrics();

 private:
  struct Item {
    enum class Kind { kTuple, kBatch, kHeartbeat, kCommand };
    Kind kind = Kind::kTuple;
    // kTuple / kBatch: pre-resolved stream name (stable; owned by routes_).
    const std::string* stream = nullptr;
    Tuple tuple;
    // kBatch: an ordered same-stream run, dispatched to the shard engine
    // as one Engine::PushBatch call (DESIGN.md §13).
    TupleBatch batch;
    // kHeartbeat
    Timestamp ts = 0;
    // kCommand: executed on the worker thread with exclusive engine
    // access; `done` (caller-owned) receives the status.
    std::function<Status(Engine&)> command;
    std::promise<Status>* done = nullptr;
  };

  struct Emission {
    Timestamp ts;
    uint64_t seq;
    size_t shard;
    size_t sub;
    Tuple tuple;
  };

  struct Shard {
    std::unique_ptr<Engine> engine;
    MpscQueue<Item> queue;
    std::thread worker;
    std::atomic<uint64_t> tuples_routed{0};
    /// Cleared when the worker is killed (replication failure injection);
    /// control-plane operations on a dead shard fail instead of hanging
    /// on its closed queue. Promotion restores it.
    std::atomic<bool> alive{true};

    std::mutex out_mu;
    std::vector<Emission> outbox;
    uint64_t out_seq = 0;
    /// Emissions ever appended to this shard's outbox, per subscription
    /// (guarded by out_mu). Because the shard engine's callbacks run
    /// synchronously during processing, this equals the shard's lifetime
    /// per-stream push count — the duplicate-suppression threshold a
    /// promoted standby must not re-emit at or below.
    std::vector<uint64_t> received_per_sub;

    std::mutex err_mu;
    Status first_error = Status::OK();
  };

  struct StreamRoute {
    std::string name;      // original-case stream name (stable storage)
    SchemaPtr schema;
    size_t key_index = 0;
    bool single_shard = false;
  };

  void WorkerLoop(Shard* shard);
  void RecordError(Shard* shard, const Status& status);

  /// \brief Resolve the route and enqueue onto the owning shard, logging
  /// to the front-end WAL first when enabled and `log_to_wal` is set
  /// (replay passes false: replayed records are already on disk).
  Status RouteTuple(const std::string& stream, const Tuple& tuple,
                    bool log_to_wal);
  /// \brief Ingest path of RouteTuple: append the RAW tuple to the WAL
  /// (releases are derived state and are never logged), then offer it to
  /// the front-end pipeline under `ingest_mu_`. Lock order:
  /// routes_mu_ (shared) -> wal_mu_ -> ingest_mu_ -> pending_mu_.
  Status OfferIngest(const StreamRoute& route, const Tuple& tuple,
                     bool log_to_wal);
  /// \brief Deliver one ordered, cleaned release to its shard (called
  /// from the ingest delivery callbacks, under `ingest_mu_`). No WAL
  /// append — recovery re-derives releases by replaying raw input
  /// through the restored pipeline.
  Status RouteReleased(const StreamRoute* route, const Tuple& tuple);
  /// \brief Enqueue a heartbeat item on every shard. Flushes pending
  /// route batches first — heartbeats are batch boundaries, so a shard
  /// never observes a tick ahead of tuples routed before it.
  void FanHeartbeat(Timestamp now);

  /// \brief Append to the shard's pending route batch, flushing it first
  /// when the stream changes, and enqueueing it once full. Serialized by
  /// `pending_mu_` (taken after `wal_mu_` when both are held, so buffer
  /// order equals WAL order).
  void BufferRouted(size_t shard, const std::string* stream,
                    const Tuple& tuple);
  /// \brief Enqueue every non-empty pending route batch. Called before
  /// heartbeat fan-out, worker commands, Flush(), and checkpoint cuts —
  /// anything that must observe all routed tuples.
  void FlushRouteBatches();
  void FlushShardLocked(size_t shard);  // pending_mu_ held
  // Discard a shard's route-buffered tuples (kill = crash: in-flight
  // input is lost the same way the closed mailbox loses its backlog).
  void DropRoutePending(size_t shard);

  /// \brief Fail fast when the shard's worker has been killed (its queue
  /// is closed, so a command pushed there would never resolve).
  Status CheckAlive(size_t shard) const;
  Status CheckAllAlive() const;

  /// \brief Run `fn` on every shard's worker thread; wait; first error.
  Status RunOnAllShards(const std::function<Status(Engine&)>& fn);
  /// \brief Run `fn` on one shard's worker thread and wait.
  Status RunOnShard(size_t shard, const std::function<Status(Engine&)>& fn);

  /// \brief Re-derive routes for streams created since the last refresh
  /// (reads shard 0's catalog on its worker thread).
  Status RefreshRoutes();
  /// \brief Drop routes for streams that no longer exist on shard 0
  /// (after UnregisterQuery removed an auto-created output stream).
  Status PruneDeadRoutes();
  const StreamRoute* FindRoute(const std::string& stream) const;
  size_t ShardOf(const StreamRoute& route, const Tuple& tuple) const;

  ShardedEngineOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Route-level batching (DESIGN.md §13): one pending same-stream run
  // per shard, enqueued as a single Item::Kind::kBatch when full or at
  // any batch boundary. `route_batch_size_` is the resolved knob;
  // `init_error_` holds a bad ESLEV_BATCH_SIZE, surfaced lazily (the
  // constructor cannot return a Status).
  struct PendingBatch {
    const std::string* stream = nullptr;  // owned by routes_
    TupleBatch batch;
  };
  Status init_error_ = Status::OK();
  size_t route_batch_size_ = 1;
  std::mutex pending_mu_;
  std::vector<PendingBatch> pending_;  // one slot per shard
  std::atomic<uint64_t> route_batches_enqueued_{0};
  std::atomic<uint64_t> route_tuples_batched_{0};

  mutable std::shared_mutex routes_mu_;
  std::map<std::string, StreamRoute> routes_;  // lower-case key

  WatermarkTracker watermark_;
  std::mutex implicit_producer_mu_;
  int implicit_producer_ = -1;

  // Front-end ingest (DESIGN.md §15): one pipeline ahead of the hash
  // partitioner. `ingest_mu_` serializes all pipeline access; delivery
  // callbacks run inside it and use the per-port route cache (stable
  // pointers into routes_) instead of re-locking routes_mu_.
  // `ingest_fanned_hb_` is the last heartbeat the pipeline released to
  // the shards — the alignment point for checkpoint quiesce (fanning
  // the raw low watermark would run shard clocks ahead of the held-back
  // release frontier and clamp future releases forward).
  IngestOptions ingest_options_;
  std::unique_ptr<IngestPipeline> front_ingest_;
  std::mutex ingest_mu_;
  std::vector<const StreamRoute*> ingest_port_routes_;
  std::atomic<Timestamp> ingest_fanned_hb_{kMinTimestamp};

  /// How far tuples move during the drain-merge sort: 0 means per-shard
  /// order was already globally ordered; large values mean heavy
  /// cross-shard interleaving at equal-or-close timestamps.
  Histogram drain_reorder_distance_;

  // Subscriptions; mutated during setup, read by DrainOutputs.
  std::vector<TupleCallback> callbacks_;

  // Front-end durability (sharded_engine_checkpoint.cc). `wal_mu_` is
  // held across WAL append + queue push so the log's total order is a
  // linearization of every shard's queue order; Checkpoint holds it for
  // the whole cut. `wal_enabled_` gates the mutex so the no-WAL hot path
  // stays lock-free.
  std::atomic<bool> wal_enabled_{false};
  std::mutex wal_mu_;
  std::unique_ptr<WalWriter> wal_;
  uint64_t restored_wal_lsn_ = 0;
  std::atomic<uint64_t> checkpoints_taken_{0};
  std::atomic<uint64_t> last_checkpoint_bytes_{0};
  std::atomic<int64_t> last_checkpoint_duration_us_{0};
  std::atomic<uint64_t> wal_records_replayed_{0};
  std::atomic<uint64_t> recovery_truncated_frames_{0};
  std::atomic<uint64_t> replay_outputs_discarded_{0};
  /// Replication slot: checkpoint-driven WAL truncation never drops
  /// records at or above this LSN, so sealed segments a standby still
  /// needs survive the checkpoint. UINT64_MAX = no restriction.
  std::atomic<uint64_t> wal_truncate_floor_{UINT64_MAX};

  /// The replication layer (src/replication/) kills, ships, and promotes
  /// around the same internals this class uses; it is a coordinator-side
  /// extension rather than an external client.
  friend class ReplicatedShardedEngine;
};

}  // namespace eslev

#endif  // ESLEV_CORE_SHARDED_ENGINE_H_
