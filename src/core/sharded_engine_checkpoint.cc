// ShardedEngine durability: coordinated checkpoint/restore and the
// front-end WAL (DESIGN.md §10).
//
// Checkpoint layout under `dir`:
//   MANIFEST            num_shards, low-watermark cut, covered WAL LSN,
//                       shard directory names (recovery/checkpoint.h)
//   shard<i>/engine.ckpt  per-shard Engine checkpoint, i == shard id
//   wal.log             front-end WAL (when enabled)
//
// Consistency: the front-end WAL is appended under `wal_mu_` together
// with the queue push, so the log's order is a linearization consistent
// with every shard's queue order. Checkpoint holds the same mutex for
// the whole cut: producers serialize entirely before or after it, the
// current low watermark is fanned to every shard (aligning active
// expiration at the cut), the queues drain, each shard engine writes its
// checkpoint on its own worker thread, and finally the WAL is truncated
// to the uncovered suffix. Replay re-routes the suffix through the same
// hash partitioning, which reproduces identical per-shard histories.

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <system_error>

#include "core/sharded_engine.h"
#include "recovery/checkpoint.h"

namespace eslev {

namespace {

std::string ShardDirName(size_t shard) {
  return "shard" + std::to_string(shard);
}

// Front-end ingest pipeline state (reorder buffer, smoothing groups,
// held-back emissions): one CRC frame next to the MANIFEST.
constexpr const char* kIngestStateFileName = "ingest.state";

}  // namespace

Status ShardedEngine::Checkpoint(const std::string& dir) {
  const auto start = std::chrono::steady_clock::now();
  ESLEV_RETURN_NOT_OK(CheckAllAlive());
  // The cut: producers block on this mutex (WAL path) or must be paused
  // by the caller (no WAL) while the shards drain and snapshot.
  std::lock_guard<std::mutex> wal_lock(wal_mu_);
  // Tuples buffered at the routing layer are already in the WAL; enqueue
  // them now so the quiesced shard checkpoints cover everything the
  // truncation below assumes they cover.
  FlushRouteBatches();

  // Quiesce barrier: align every shard at the current low watermark via
  // the existing heartbeat fan-out, then wait for the queues to empty.
  // With front-end ingest the shards must align at the pipeline's last
  // RELEASED heartbeat instead — fanning the raw watermark would run
  // shard clocks past the held-back release frontier and clamp future
  // releases forward.
  const Timestamp low = watermark_.low_watermark();
  if (front_ingest_ != nullptr) {
    const Timestamp fanned = ingest_fanned_hb_.load(std::memory_order_acquire);
    if (fanned != kMinTimestamp) FanHeartbeat(fanned);
  } else if (low != kMinTimestamp) {
    FanHeartbeat(low);
  }
  for (auto& shard : shards_) shard->queue.WaitIdle();
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> err_lock(shard->err_mu);
    if (!shard->first_error.ok()) return shard->first_error;
  }

  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create checkpoint dir " + dir + ": " +
                           ec.message());
  }

  uint64_t wal_last_lsn = 0;
  if (wal_ != nullptr) {
    ESLEV_RETURN_NOT_OK(wal_->Flush());
    wal_last_lsn = wal_->next_lsn() - 1;
  }

  // Each shard engine checkpoints on its own worker thread (exclusive
  // engine access); all shards snapshot the same quiesced cut.
  ShardedManifest manifest;
  manifest.num_shards = static_cast<uint32_t>(shards_.size());
  manifest.low_watermark = low;
  manifest.wal_last_lsn = wal_last_lsn;
  std::vector<std::promise<Status>> done(shards_.size());
  std::vector<std::future<Status>> futures;
  futures.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    manifest.shard_dirs.push_back(ShardDirName(i));
    const std::string shard_dir = dir + "/" + ShardDirName(i);
    futures.push_back(done[i].get_future());
    Item item;
    item.kind = Item::Kind::kCommand;
    item.command = [shard_dir](Engine& engine) {
      return engine.Checkpoint(shard_dir);
    };
    item.done = &done[i];
    shards_[i]->queue.Push(std::move(item));
  }
  Status first = Status::OK();
  for (auto& f : futures) {
    Status st = f.get();
    if (first.ok() && !st.ok()) first = st;
  }
  ESLEV_RETURN_NOT_OK(first);

  if (front_ingest_ != nullptr) {
    BinaryEncoder frame;
    frame.PutI64(ingest_fanned_hb_.load(std::memory_order_acquire));
    BinaryEncoder state;
    {
      std::lock_guard<std::mutex> ingest_lock(ingest_mu_);
      ESLEV_RETURN_NOT_OK(front_ingest_->SaveState(&state));
    }
    frame.PutString(state.buffer());
    std::string bytes;
    AppendFrame(frame.buffer(), &bytes);
    ESLEV_RETURN_NOT_OK(
        WriteFileAtomic(dir + "/" + kIngestStateFileName, bytes));
  }

  ESLEV_RETURN_NOT_OK(WriteManifest(dir, manifest));
  // The manifest is durable; everything at or below wal_last_lsn is
  // covered by the shard checkpoints and can be dropped — except sealed
  // segments a replication standby has not consumed yet (the truncation
  // floor, a replication slot maintained by ReplicatedShardedEngine).
  if (wal_ != nullptr) {
    const uint64_t floor =
        wal_truncate_floor_.load(std::memory_order_acquire);
    ESLEV_RETURN_NOT_OK(
        wal_->TruncateBefore(std::min(wal_last_lsn + 1, floor)));
  }

  uint64_t bytes = 0;
  const auto add_size = [&bytes](const std::string& path) {
    std::error_code size_ec;
    const auto size = std::filesystem::file_size(path, size_ec);
    if (!size_ec) bytes += static_cast<uint64_t>(size);
  };
  for (size_t i = 0; i < shards_.size(); ++i) {
    add_size(dir + "/" + ShardDirName(i) + "/" + kCheckpointFileName);
  }
  add_size(dir + "/" + kManifestFileName);
  if (front_ingest_ != nullptr) add_size(dir + "/" + kIngestStateFileName);
  checkpoints_taken_.fetch_add(1, std::memory_order_relaxed);
  last_checkpoint_bytes_.store(bytes, std::memory_order_relaxed);
  last_checkpoint_duration_us_.store(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count(),
      std::memory_order_relaxed);
  return Status::OK();
}

Status ShardedEngine::Restore(const std::string& dir) {
  ESLEV_RETURN_NOT_OK(CheckAllAlive());
  ESLEV_ASSIGN_OR_RETURN(ShardedManifest manifest, ReadManifest(dir));
  if (manifest.num_shards != shards_.size()) {
    return Status::IoError(
        "checkpoint was taken with " + std::to_string(manifest.num_shards) +
        " shards but this engine has " + std::to_string(shards_.size()));
  }
  // Validate every shard checkpoint exists before touching any shard:
  // a manifest naming a missing file must not partially restore.
  for (const std::string& shard_dir : manifest.shard_dirs) {
    const std::string path =
        dir + "/" + shard_dir + "/" + kCheckpointFileName;
    std::error_code ec;
    if (!std::filesystem::exists(path, ec) || ec) {
      return Status::IoError("manifest names missing shard checkpoint: " +
                             path);
    }
  }
  ESLEV_RETURN_NOT_OK(Flush());

  std::vector<std::promise<Status>> done(shards_.size());
  std::vector<std::future<Status>> futures;
  futures.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    const std::string shard_dir = dir + "/" + manifest.shard_dirs[i];
    futures.push_back(done[i].get_future());
    Item item;
    item.kind = Item::Kind::kCommand;
    item.command = [shard_dir](Engine& engine) {
      return engine.Restore(shard_dir);
    };
    item.done = &done[i];
    shards_[i]->queue.Push(std::move(item));
  }
  Status first = Status::OK();
  for (auto& f : futures) {
    Status st = f.get();
    if (first.ok() && !st.ok()) first = st;
  }
  ESLEV_RETURN_NOT_OK(first);

  if (front_ingest_ != nullptr) {
    const std::string path = dir + "/" + kIngestStateFileName;
    ESLEV_ASSIGN_OR_RETURN(std::string bytes, ReadFileAll(path));
    ESLEV_ASSIGN_OR_RETURN(FrameScanResult frames,
                           ScanFrames(bytes.data(), bytes.size()));
    if (frames.torn_tail || frames.payloads.size() != 1) {
      return Status::IoError("ingest state " + path + ": corrupt frame");
    }
    BinaryDecoder frame(frames.payloads[0]);
    ESLEV_ASSIGN_OR_RETURN(Timestamp fanned, frame.GetI64());
    ESLEV_ASSIGN_OR_RETURN(std::string blob, frame.GetString());
    if (!frame.AtEnd()) {
      return Status::IoError("ingest state " + path + ": trailing bytes");
    }
    // routes_mu_ before ingest_mu_ (same order as OfferIngest callers).
    std::shared_lock<std::shared_mutex> routes_lock(routes_mu_);
    std::lock_guard<std::mutex> ingest_lock(ingest_mu_);
    BinaryDecoder state(blob);
    ESLEV_RETURN_NOT_OK(front_ingest_->RestoreState(&state));
    if (!state.AtEnd()) {
      return Status::IoError("ingest state " + path + ": trailing state");
    }
    ingest_port_routes_.assign(front_ingest_->num_ports(), nullptr);
    for (size_t p = 0; p < front_ingest_->num_ports(); ++p) {
      const StreamRoute* route = FindRoute(front_ingest_->port_name(p));
      if (route == nullptr) {
        return Status::IoError("ingest state names unknown stream '" +
                               front_ingest_->port_name(p) + "'");
      }
      ingest_port_routes_[p] = route;
    }
    ingest_fanned_hb_.store(fanned, std::memory_order_release);
  }

  restored_wal_lsn_ = manifest.wal_last_lsn;
  return Status::OK();
}

Status ShardedEngine::EnableWal(const std::string& path, WalOptions options) {
  std::lock_guard<std::mutex> wal_lock(wal_mu_);
  if (wal_ != nullptr) {
    return Status::Invalid("WAL already enabled at " + wal_->path());
  }
  ESLEV_ASSIGN_OR_RETURN(WalChainReadResult read, ReadWalChain(path));
  if (read.live_torn_tail) {
    recovery_truncated_frames_.fetch_add(1, std::memory_order_relaxed);
  }
  const uint64_t last_lsn =
      std::max(read.records.empty() ? uint64_t{0} : read.records.back().lsn,
               restored_wal_lsn_);
  options.truncate_to_bytes = read.live_valid_bytes;
  ESLEV_ASSIGN_OR_RETURN(wal_, WalWriter::Open(path, last_lsn + 1, options));
  wal_enabled_.store(true, std::memory_order_release);
  return Status::OK();
}

Status ShardedEngine::RecoverFrom(const std::string& dir,
                                  const ReplayOptions& options) {
  if (wal_enabled_.load(std::memory_order_acquire)) {
    return Status::Invalid("WAL already enabled before RecoverFrom");
  }
  if (!options.deliver_after.empty()) {
    return Status::Invalid(
        "per-stream deliver_after is not supported by ShardedEngine (per-"
        "shard outbox sequences are not a global consumer position); use "
        "deliver_callbacks");
  }
  ESLEV_RETURN_NOT_OK(Restore(dir));

  const std::string wal_path = dir + "/" + kWalFileName;
  ESLEV_ASSIGN_OR_RETURN(WalChainReadResult read, ReadWalChain(wal_path));
  if (read.live_torn_tail) {
    recovery_truncated_frames_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t replayed = 0;
  uint64_t last_lsn = restored_wal_lsn_;
  for (const WalRecord& record : read.records) {
    last_lsn = std::max(last_lsn, record.lsn);
    if (record.lsn <= restored_wal_lsn_) continue;
    if (record.kind == WalRecordKind::kTuple) {
      ESLEV_RETURN_NOT_OK(
          RouteTuple(record.stream, *record.tuple, /*log_to_wal=*/false));
    } else if (record.stream.empty()) {
      if (front_ingest_ != nullptr) {
        // Logged heartbeats are raw input ticks: re-drive the pipeline
        // so the restored frontiers release exactly what the original
        // run released after the checkpoint cut.
        std::lock_guard<std::mutex> ingest_lock(ingest_mu_);
        ESLEV_RETURN_NOT_OK(front_ingest_->Heartbeat(record.ts));
      } else {
        FanHeartbeat(record.ts);
      }
    } else {
      return Status::IoError(
          "sharded WAL contains a per-stream heartbeat for '" +
          record.stream + "' (not written by ShardedEngine)");
    }
    ++replayed;
  }
  ESLEV_RETURN_NOT_OK(Flush());
  wal_records_replayed_.fetch_add(replayed, std::memory_order_relaxed);

  // Replay regenerated the shard-side emissions into the outboxes; a
  // synchronous consumer already drained them before the crash, so the
  // default is to discard rather than re-deliver.
  if (!options.deliver_callbacks) {
    uint64_t discarded = 0;
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> out_lock(shard->out_mu);
      discarded += shard->outbox.size();
      shard->outbox.clear();
    }
    replay_outputs_discarded_.fetch_add(discarded, std::memory_order_relaxed);
  }

  std::lock_guard<std::mutex> wal_lock(wal_mu_);
  WalOptions wal_options;
  wal_options.truncate_to_bytes = read.live_valid_bytes;
  ESLEV_ASSIGN_OR_RETURN(wal_,
                         WalWriter::Open(wal_path, last_lsn + 1, wal_options));
  wal_enabled_.store(true, std::memory_order_release);
  return Status::OK();
}

}  // namespace eslev
