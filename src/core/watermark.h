// WatermarkTracker: low-watermark time advancement for ShardedEngine.
//
// Every producer (reader connection, replay thread, periodic clock)
// reports its local application time; the tracker maintains the minimum
// over all producers — the low watermark. Only when that minimum moves
// forward is a heartbeat fanned out to the shards, so no shard's clock
// can run ahead of a producer that still has older tuples in flight
// (the CEDR-style discipline that keeps window-expiry-triggered
// EXCEPTION_SEQ violations correct across shards).

#ifndef ESLEV_CORE_WATERMARK_H_
#define ESLEV_CORE_WATERMARK_H_

#include <algorithm>
#include <mutex>
#include <optional>
#include <vector>

#include "common/time.h"

namespace eslev {

class WatermarkTracker {
 public:
  /// \brief Register a producer; its clock starts at kMinTimestamp, which
  /// holds the low watermark down until the producer first reports.
  int RegisterProducer() {
    std::lock_guard<std::mutex> lock(mu_);
    producers_.push_back(kMinTimestamp);
    return static_cast<int>(producers_.size()) - 1;
  }

  /// \brief Report producer `id` reaching local time `now`. Returns the
  /// new low watermark when the minimum advanced, nullopt otherwise
  /// (stale report, unknown id, or another producer still lags).
  std::optional<Timestamp> Advance(int id, Timestamp now) {
    std::lock_guard<std::mutex> lock(mu_);
    if (id < 0 || id >= static_cast<int>(producers_.size())) {
      return std::nullopt;
    }
    if (now <= producers_[id]) return std::nullopt;  // stale tick
    producers_[id] = now;
    const Timestamp low =
        *std::min_element(producers_.begin(), producers_.end());
    if (low <= low_) return std::nullopt;
    low_ = low;
    return low;
  }

  Timestamp low_watermark() const {
    std::lock_guard<std::mutex> lock(mu_);
    return low_;
  }

  /// \brief Fastest producer clock — `max_producer_clock() -
  /// low_watermark()` is the watermark lag: how far the slowest producer
  /// (and therefore every shard's time) trails the freshest input.
  Timestamp max_producer_clock() const {
    std::lock_guard<std::mutex> lock(mu_);
    if (producers_.empty()) return kMinTimestamp;
    return *std::max_element(producers_.begin(), producers_.end());
  }

  size_t producer_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return producers_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<Timestamp> producers_;
  Timestamp low_ = kMinTimestamp;
};

}  // namespace eslev

#endif  // ESLEV_CORE_WATERMARK_H_
