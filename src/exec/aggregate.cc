#include "exec/aggregate.h"

namespace eslev {

AggregateOperator::AggregateOperator(std::vector<AggSpec> aggs,
                                     std::vector<BoundExprPtr> group_by,
                                     std::vector<BoundExprPtr> projection,
                                     BoundExprPtr having, SchemaPtr out_schema,
                                     std::optional<WindowSpec> window)
    : aggs_(std::move(aggs)),
      group_by_(std::move(group_by)),
      projection_(std::move(projection)),
      having_(std::move(having)),
      out_schema_(std::move(out_schema)),
      window_(window),
      all_retractable_(true),
      scratch_(1) {
  for (const AggSpec& a : aggs_) {
    if (!a.fn->supports_retract) all_retractable_ = false;
  }
  if (window_) {
    buffer_ = std::make_unique<WindowBuffer>(window_->row_based,
                                             window_->length);
  }
}

Result<AggregateOperator::GroupKey> AggregateOperator::KeyOf(
    const Tuple& tuple) {
  GroupKey key;
  key.reserve(group_by_.size());
  scratch_.SetTuple(0, &tuple);
  for (const auto& e : group_by_) {
    ESLEV_ASSIGN_OR_RETURN(Value v, e->Eval(scratch_.Row()));
    // Prefix with the type so 1 (INT) and "1" (VARCHAR) group separately.
    key.push_back(std::string(TypeIdToString(v.type())) + ":" + v.ToString());
  }
  return key;
}

AggregateOperator::Group* AggregateOperator::GetOrCreateGroup(
    const GroupKey& key) {
  auto it = groups_.find(key);
  if (it != groups_.end()) return &it->second;
  Group g;
  g.states.reserve(aggs_.size());
  for (const AggSpec& a : aggs_) {
    g.states.push_back(a.fn->make_state());
  }
  return &groups_.emplace(key, std::move(g)).first->second;
}

Status AggregateOperator::AccumulateInto(Group* group, const Tuple& tuple,
                                         int sign) {
  scratch_.SetTuple(0, &tuple);
  for (size_t i = 0; i < aggs_.size(); ++i) {
    Value v = Value::Int(1);  // COUNT(*) counts every row
    if (!aggs_[i].count_star) {
      ESLEV_ASSIGN_OR_RETURN(v, aggs_[i].arg->Eval(scratch_.Row()));
    }
    if (sign > 0) {
      ESLEV_RETURN_NOT_OK(group->states[i]->Accumulate(v));
    } else {
      ESLEV_RETURN_NOT_OK(group->states[i]->Retract(v));
    }
  }
  return Status::OK();
}

Status AggregateOperator::RecomputeGroup(const GroupKey& key, Group* group) {
  for (size_t i = 0; i < aggs_.size(); ++i) {
    group->states[i]->Reset();
  }
  if (!buffer_) return Status::OK();
  for (const Tuple& t : buffer_->tuples()) {
    ESLEV_ASSIGN_OR_RETURN(GroupKey k, KeyOf(t));
    if (k != key) continue;
    ESLEV_RETURN_NOT_OK(AccumulateInto(group, t, +1));
  }
  return Status::OK();
}

Status AggregateOperator::EvictExpired(Timestamp now) {
  if (!buffer_) return Status::OK();
  // Collect evicted tuples, then retract or recompute their groups.
  std::vector<Tuple> evicted;
  {
    // WindowBuffer evicts internally; capture what falls out first.
    const auto& tuples = buffer_->tuples();
    if (buffer_->row_based()) {
      // Row windows evict on Add only; nothing to do on pure time advance.
      (void)tuples;
    } else {
      for (const Tuple& t : tuples) {
        if (t.ts() < now - buffer_->length()) {
          evicted.push_back(t);
        } else {
          break;
        }
      }
    }
  }
  buffer_->EvictAt(now);
  if (evicted.empty()) return Status::OK();
  if (all_retractable_) {
    for (const Tuple& t : evicted) {
      ESLEV_ASSIGN_OR_RETURN(GroupKey key, KeyOf(t));
      auto it = groups_.find(key);
      if (it == groups_.end()) continue;
      ESLEV_RETURN_NOT_OK(AccumulateInto(&it->second, t, -1));
    }
  } else {
    // Recompute every group an evicted tuple belonged to.
    std::map<GroupKey, bool> dirty;
    for (const Tuple& t : evicted) {
      ESLEV_ASSIGN_OR_RETURN(GroupKey key, KeyOf(t));
      dirty[key] = true;
    }
    for (const auto& [key, _] : dirty) {
      auto it = groups_.find(key);
      if (it == groups_.end()) continue;
      ESLEV_RETURN_NOT_OK(RecomputeGroup(key, &it->second));
    }
  }
  return Status::OK();
}

Status AggregateOperator::ProcessTuple(size_t, const Tuple& tuple) {
  if (buffer_) {
    ESLEV_RETURN_NOT_OK(EvictExpired(tuple.ts()));
    if (buffer_->row_based()) {
      // Row window: evict the overflowing oldest tuple with retraction.
      if (buffer_->size() + 1 > static_cast<size_t>(buffer_->length()) &&
          !buffer_->empty()) {
        Tuple oldest = buffer_->tuples().front();
        ESLEV_ASSIGN_OR_RETURN(GroupKey key, KeyOf(oldest));
        auto it = groups_.find(key);
        if (it != groups_.end()) {
          if (all_retractable_) {
            ESLEV_RETURN_NOT_OK(AccumulateInto(&it->second, oldest, -1));
          }
        }
        buffer_->Add(tuple);  // evicts oldest internally
        if (!all_retractable_ && it != groups_.end()) {
          ESLEV_RETURN_NOT_OK(RecomputeGroup(key, &it->second));
        }
      } else {
        buffer_->Add(tuple);
      }
    } else {
      buffer_->Add(tuple);
    }
  }

  ESLEV_ASSIGN_OR_RETURN(GroupKey key, KeyOf(tuple));
  Group* group = GetOrCreateGroup(key);
  if (buffer_ && buffer_->row_based() && !all_retractable_) {
    ESLEV_RETURN_NOT_OK(RecomputeGroup(key, group));
  } else {
    ESLEV_RETURN_NOT_OK(AccumulateInto(group, tuple, +1));
  }

  // Project the group's current aggregate values.
  std::vector<Value> agg_values;
  agg_values.reserve(aggs_.size());
  for (const auto& st : group->states) {
    agg_values.push_back(st->Finalize());
  }
  scratch_.SetTuple(0, &tuple);
  scratch_.SetAggValues(&agg_values);
  if (having_) {
    ESLEV_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*having_, scratch_.Row()));
    if (!pass) {
      scratch_.SetAggValues(nullptr);
      return Status::OK();
    }
  }
  std::vector<Value> out;
  out.reserve(projection_.size());
  for (const auto& e : projection_) {
    auto v = e->Eval(scratch_.Row());
    if (!v.ok()) {
      scratch_.SetAggValues(nullptr);
      return v.status();
    }
    out.push_back(std::move(v).ValueUnsafe());
  }
  scratch_.SetAggValues(nullptr);
  ESLEV_ASSIGN_OR_RETURN(Tuple t,
                         MakeTuple(out_schema_, std::move(out), tuple.ts()));
  return Emit(t);
}

Status AggregateOperator::ProcessHeartbeat(Timestamp now) {
  ESLEV_RETURN_NOT_OK(EvictExpired(now));
  return EmitHeartbeat(now);
}

Status AggregateOperator::SaveState(BinaryEncoder* enc) const {
  enc->PutBool(buffer_ != nullptr);
  if (buffer_) {
    enc->PutU32(static_cast<uint32_t>(buffer_->size()));
    for (const Tuple& t : buffer_->tuples()) enc->PutTuple(t);
  }
  enc->PutU32(static_cast<uint32_t>(groups_.size()));
  for (const auto& [key, group] : groups_) {
    enc->PutU32(static_cast<uint32_t>(key.size()));
    for (const std::string& part : key) enc->PutString(part);
    enc->PutU32(static_cast<uint32_t>(group.states.size()));
    for (const auto& state : group.states) {
      ESLEV_ASSIGN_OR_RETURN(std::vector<Value> saved, state->SaveState());
      enc->PutU32(static_cast<uint32_t>(saved.size()));
      for (const Value& v : saved) enc->PutValue(v);
    }
  }
  return Status::OK();
}

Status AggregateOperator::RestoreState(BinaryDecoder* dec) {
  ESLEV_ASSIGN_OR_RETURN(bool has_buffer, dec->GetBool());
  if (has_buffer != (buffer_ != nullptr)) {
    return Status::IoError(
        "aggregate checkpoint: window configuration mismatch");
  }
  if (buffer_) {
    ESLEV_ASSIGN_OR_RETURN(uint32_t n, dec->GetU32());
    std::deque<Tuple> tuples;
    for (uint32_t i = 0; i < n; ++i) {
      ESLEV_ASSIGN_OR_RETURN(Tuple t, dec->GetTuple());
      tuples.push_back(std::move(t));
    }
    buffer_->Assign(std::move(tuples));
  }
  ESLEV_ASSIGN_OR_RETURN(uint32_t ngroups, dec->GetU32());
  std::map<GroupKey, Group> groups;
  for (uint32_t g = 0; g < ngroups; ++g) {
    ESLEV_ASSIGN_OR_RETURN(uint32_t nparts, dec->GetU32());
    GroupKey key;
    key.reserve(nparts);
    for (uint32_t i = 0; i < nparts; ++i) {
      ESLEV_ASSIGN_OR_RETURN(std::string part, dec->GetString());
      key.push_back(std::move(part));
    }
    ESLEV_ASSIGN_OR_RETURN(uint32_t nstates, dec->GetU32());
    if (nstates != aggs_.size()) {
      return Status::IoError(
          "aggregate checkpoint: accumulator count mismatch");
    }
    Group group;
    group.states.reserve(nstates);
    for (uint32_t i = 0; i < nstates; ++i) {
      ESLEV_ASSIGN_OR_RETURN(uint32_t nvals, dec->GetU32());
      std::vector<Value> values;
      values.reserve(nvals);
      for (uint32_t j = 0; j < nvals; ++j) {
        ESLEV_ASSIGN_OR_RETURN(Value v, dec->GetValue());
        values.push_back(std::move(v));
      }
      auto state = aggs_[i].fn->make_state();
      ESLEV_RETURN_NOT_OK(state->RestoreState(values));
      group.states.push_back(std::move(state));
    }
    groups.emplace(std::move(key), std::move(group));
  }
  groups_ = std::move(groups);
  return Status::OK();
}

}  // namespace eslev
