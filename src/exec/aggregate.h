// AggregateOperator: continuous (optionally windowed, optionally grouped)
// aggregation over a stream — Example 3's EPC-pattern COUNT, hourly
// product counts, min/max sensor monitoring (paper §2.1).
//
// Emission model follows ESL's continuous-query semantics: each input
// tuple updates its group and emits one output row reflecting the
// group's new aggregate values (the "current answer" stream).

#ifndef ESLEV_EXEC_AGGREGATE_H_
#define ESLEV_EXEC_AGGREGATE_H_

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "expr/bound_expr.h"
#include "expr/function_registry.h"
#include "sql/ast.h"
#include "stream/operator.h"
#include "stream/window_buffer.h"

namespace eslev {

/// \brief One aggregate computed by the operator.
struct AggSpec {
  const AggregateFunction* fn = nullptr;
  BoundExprPtr arg;        // null for COUNT(*)
  bool count_star = false;
};

class AggregateOperator : public Operator {
 public:
  /// \param aggs       the aggregate computations (BoundAggRef index i in
  ///                    the projection reads aggs[i])
  /// \param group_by   grouping key expressions (slot 0 = input tuple);
  ///                    empty for a single global group
  /// \param projection output expressions (may reference input columns,
  ///                    group keys and BoundAggRef values)
  /// \param having     optional filter on the output row (after aggs)
  /// \param out_schema schema of emitted tuples
  /// \param window     optional PRECEDING window; aggregates then cover
  ///                    only the window contents
  AggregateOperator(std::vector<AggSpec> aggs,
                    std::vector<BoundExprPtr> group_by,
                    std::vector<BoundExprPtr> projection, BoundExprPtr having,
                    SchemaPtr out_schema, std::optional<WindowSpec> window);

  Status ProcessTuple(size_t, const Tuple& tuple) override;
  Status ProcessHeartbeat(Timestamp now) override;

  size_t num_groups() const { return groups_.size(); }

  /// \brief Grouping arity and window (cost model, DESIGN.md §16).
  size_t num_group_exprs() const { return group_by_.size(); }
  const std::optional<WindowSpec>& window() const { return window_; }

  void AppendStats(OperatorStatList* out) const override {
    out->push_back({"groups", static_cast<int64_t>(groups_.size())});
    out->push_back({"window_buffer",
                    static_cast<int64_t>(buffer_ ? buffer_->size() : 0)});
  }

  /// \brief Checkpoint the window buffer and every group's accumulators
  /// (via AggregateState::SaveState). Fails if an aggregate's state is
  /// not checkpointable (custom C++ UDA without Save/RestoreState).
  Status SaveState(BinaryEncoder* enc) const override;
  Status RestoreState(BinaryDecoder* dec) override;

 private:
  struct Group {
    std::vector<std::unique_ptr<AggregateState>> states;
  };
  // Group keys are rendered Values; std::map keeps deterministic order.
  using GroupKey = std::vector<std::string>;

  Result<GroupKey> KeyOf(const Tuple& tuple);
  Group* GetOrCreateGroup(const GroupKey& key);
  Status AccumulateInto(Group* group, const Tuple& tuple, int sign);
  Status RecomputeGroup(const GroupKey& key, Group* group);
  Status EvictExpired(Timestamp now);

  std::vector<AggSpec> aggs_;
  std::vector<BoundExprPtr> group_by_;
  std::vector<BoundExprPtr> projection_;
  BoundExprPtr having_;
  SchemaPtr out_schema_;
  std::optional<WindowSpec> window_;
  bool all_retractable_;

  std::unique_ptr<WindowBuffer> buffer_;
  std::map<GroupKey, Group> groups_;
  RowScratch scratch_;
};

}  // namespace eslev

#endif  // ESLEV_EXEC_AGGREGATE_H_
