// Basic relational operators: filter, project, callback delivery.

#ifndef ESLEV_EXEC_BASIC_OPS_H_
#define ESLEV_EXEC_BASIC_OPS_H_

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "expr/bound_expr.h"
#include "stream/operator.h"

namespace eslev {

/// \brief Forwards tuples satisfying a predicate bound against a
/// single-slot scope (slot 0 = the input tuple).
class FilterOperator : public Operator {
 public:
  explicit FilterOperator(BoundExprPtr predicate)
      : predicate_(std::move(predicate)), scratch_(1) {}

  Status ProcessTuple(size_t, const Tuple& tuple) override {
    scratch_.SetTuple(0, &tuple);
    ESLEV_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*predicate_, scratch_.Row()));
    if (pass) return Emit(tuple);
    return Status::OK();
  }

  // Native batch path: columnar conjunct-at-a-time predicate evaluation,
  // then one compacted survivor batch to the sinks.
  Status ProcessBatch(size_t, const TupleBatch& batch) override {
    ESLEV_RETURN_NOT_OK(
        EvalPredicateBatch(*predicate_, batch, 0, &scratch_, &selection_));
    TupleBatch out;
    out.Reserve(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      if (selection_[i]) out.Add(batch[i]);
    }
    return EmitBatch(out);
  }

 private:
  BoundExprPtr predicate_;
  RowScratch scratch_;
  std::vector<unsigned char> selection_;
};

/// \brief Projects each input tuple (slot 0) through bound expressions
/// into the output schema; the output tuple keeps the input timestamp.
class ProjectOperator : public Operator {
 public:
  ProjectOperator(std::vector<BoundExprPtr> exprs, SchemaPtr out_schema)
      : exprs_(std::move(exprs)),
        out_schema_(std::move(out_schema)),
        scratch_(1) {}

  Status ProcessTuple(size_t, const Tuple& tuple) override {
    scratch_.SetTuple(0, &tuple);
    std::vector<Value> values;
    values.reserve(exprs_.size());
    for (const auto& e : exprs_) {
      ESLEV_ASSIGN_OR_RETURN(Value v, e->Eval(scratch_.Row()));
      values.push_back(std::move(v));
    }
    ESLEV_ASSIGN_OR_RETURN(Tuple out,
                           MakeTuple(out_schema_, std::move(values),
                                     tuple.ts()));
    return Emit(out);
  }

  // Native batch path: expression-at-a-time over the batch (one tree walk
  // per expression, rows scanned sequentially), one output batch.
  Status ProcessBatch(size_t, const TupleBatch& batch) override {
    const size_t n = batch.size();
    std::vector<std::vector<Value>> rows(n);
    for (auto& r : rows) r.reserve(exprs_.size());
    for (const auto& e : exprs_) {
      for (size_t i = 0; i < n; ++i) {
        scratch_.SetTuple(0, &batch[i]);
        ESLEV_ASSIGN_OR_RETURN(Value v, e->Eval(scratch_.Row()));
        rows[i].push_back(std::move(v));
      }
    }
    TupleBatch out;
    out.Reserve(n);
    for (size_t i = 0; i < n; ++i) {
      ESLEV_ASSIGN_OR_RETURN(
          Tuple t, MakeTuple(out_schema_, std::move(rows[i]), batch[i].ts()));
      out.Add(std::move(t));
    }
    return EmitBatch(out);
  }

 private:
  std::vector<BoundExprPtr> exprs_;
  SchemaPtr out_schema_;
  RowScratch scratch_;
};

/// \brief Terminal operator delivering tuples to a user function.
class CallbackOperator : public Operator {
 public:
  explicit CallbackOperator(std::function<void(const Tuple&)> fn)
      : fn_(std::move(fn)) {}

  Status ProcessTuple(size_t, const Tuple& tuple) override {
    fn_(tuple);
    return Status::OK();
  }

  Status ProcessBatch(size_t, const TupleBatch& batch) override {
    for (const Tuple& t : batch.tuples()) fn_(t);
    return Status::OK();
  }

 private:
  std::function<void(const Tuple&)> fn_;
};

/// \brief Test/bench helper that records everything it receives.
class CollectOperator : public Operator {
 public:
  Status ProcessTuple(size_t, const Tuple& tuple) override {
    tuples_.push_back(tuple);
    return Status::OK();
  }

  Status ProcessBatch(size_t, const TupleBatch& batch) override {
    tuples_.insert(tuples_.end(), batch.tuples().begin(),
                   batch.tuples().end());
    return Status::OK();
  }

  const std::vector<Tuple>& tuples() const { return tuples_; }
  void Clear() { tuples_.clear(); }

 private:
  std::vector<Tuple> tuples_;
};

}  // namespace eslev

#endif  // ESLEV_EXEC_BASIC_OPS_H_
