// Basic relational operators: filter, project, callback delivery.

#ifndef ESLEV_EXEC_BASIC_OPS_H_
#define ESLEV_EXEC_BASIC_OPS_H_

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "expr/bound_expr.h"
#include "stream/operator.h"

namespace eslev {

/// \brief Forwards tuples satisfying a predicate bound against a
/// single-slot scope (slot 0 = the input tuple).
class FilterOperator : public Operator {
 public:
  explicit FilterOperator(BoundExprPtr predicate)
      : predicate_(std::move(predicate)), scratch_(1) {}

  Status ProcessTuple(size_t, const Tuple& tuple) override {
    scratch_.SetTuple(0, &tuple);
    ESLEV_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*predicate_, scratch_.Row()));
    if (pass) return Emit(tuple);
    return Status::OK();
  }

 private:
  BoundExprPtr predicate_;
  RowScratch scratch_;
};

/// \brief Projects each input tuple (slot 0) through bound expressions
/// into the output schema; the output tuple keeps the input timestamp.
class ProjectOperator : public Operator {
 public:
  ProjectOperator(std::vector<BoundExprPtr> exprs, SchemaPtr out_schema)
      : exprs_(std::move(exprs)),
        out_schema_(std::move(out_schema)),
        scratch_(1) {}

  Status ProcessTuple(size_t, const Tuple& tuple) override {
    scratch_.SetTuple(0, &tuple);
    std::vector<Value> values;
    values.reserve(exprs_.size());
    for (const auto& e : exprs_) {
      ESLEV_ASSIGN_OR_RETURN(Value v, e->Eval(scratch_.Row()));
      values.push_back(std::move(v));
    }
    ESLEV_ASSIGN_OR_RETURN(Tuple out,
                           MakeTuple(out_schema_, std::move(values),
                                     tuple.ts()));
    return Emit(out);
  }

 private:
  std::vector<BoundExprPtr> exprs_;
  SchemaPtr out_schema_;
  RowScratch scratch_;
};

/// \brief Terminal operator delivering tuples to a user function.
class CallbackOperator : public Operator {
 public:
  explicit CallbackOperator(std::function<void(const Tuple&)> fn)
      : fn_(std::move(fn)) {}

  Status ProcessTuple(size_t, const Tuple& tuple) override {
    fn_(tuple);
    return Status::OK();
  }

 private:
  std::function<void(const Tuple&)> fn_;
};

/// \brief Test/bench helper that records everything it receives.
class CollectOperator : public Operator {
 public:
  Status ProcessTuple(size_t, const Tuple& tuple) override {
    tuples_.push_back(tuple);
    return Status::OK();
  }

  const std::vector<Tuple>& tuples() const { return tuples_; }
  void Clear() { tuples_.clear(); }

 private:
  std::vector<Tuple> tuples_;
};

}  // namespace eslev

#endif  // ESLEV_EXEC_BASIC_OPS_H_
