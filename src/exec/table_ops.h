// Stream-DB spanning operators (paper §2.1): persistent-table inserts,
// correlated NOT EXISTS against a table (Example 2, location tracking),
// and context-retrieval joins of a stream against a table.
//
// Slot convention for correlated predicates: slot 0 = table row (inner),
// slot 1 = stream tuple (outer).

#ifndef ESLEV_EXEC_TABLE_OPS_H_
#define ESLEV_EXEC_TABLE_OPS_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "expr/bound_expr.h"
#include "stream/operator.h"
#include "storage/table.h"

namespace eslev {

/// \brief Appends each input tuple (optionally projected) to a table.
class TableInsertOperator : public Operator {
 public:
  /// With empty `exprs` the input tuple is inserted as-is.
  TableInsertOperator(Table* table, std::vector<BoundExprPtr> exprs)
      : table_(table), exprs_(std::move(exprs)), scratch_(1) {}

  Status ProcessTuple(size_t, const Tuple& tuple) override {
    if (exprs_.empty()) {
      ESLEV_RETURN_NOT_OK(table_->InsertTuple(tuple));
      return Emit(tuple);
    }
    scratch_.SetTuple(0, &tuple);
    std::vector<Value> values;
    values.reserve(exprs_.size());
    for (const auto& e : exprs_) {
      ESLEV_ASSIGN_OR_RETURN(Value v, e->Eval(scratch_.Row()));
      values.push_back(std::move(v));
    }
    ESLEV_ASSIGN_OR_RETURN(
        Tuple row, MakeTuple(table_->schema(), std::move(values), tuple.ts()));
    ESLEV_RETURN_NOT_OK(table_->InsertTuple(row));
    return Emit(row);
  }

  /// \brief The target table (cost model, DESIGN.md §16).
  const Table* table() const { return table_; }

 private:
  Table* table_;
  std::vector<BoundExprPtr> exprs_;
  RowScratch scratch_;
};

/// \brief Forwards the stream tuple only when no table row satisfies the
/// correlated predicate — `WHERE NOT EXISTS (SELECT .. FROM table WHERE
/// ...)` with a table inner (Example 2).
///
/// When (`probe_column`, `probe_expr`) is set, rows are located through
/// the table's hash index on that column instead of a full scan.
class TableNotExistsOperator : public Operator {
 public:
  TableNotExistsOperator(const Table* table, BoundExprPtr predicate)
      : table_(table), predicate_(std::move(predicate)), scratch_(2) {}

  Status SetProbe(std::string column, BoundExprPtr expr) {
    if (!table_->schema() ||
        table_->schema()->FindField(column) < 0) {
      return Status::BindError("probe column not in table: " + column);
    }
    probe_column_ = std::move(column);
    probe_expr_ = std::move(expr);
    return Status::OK();
  }

  Status ProcessTuple(size_t, const Tuple& tuple) override {
    ESLEV_ASSIGN_OR_RETURN(bool exists, Exists(tuple));
    if (!exists) return Emit(tuple);
    return Status::OK();
  }

  /// \brief Table rows evaluated across all NOT EXISTS probes.
  uint64_t probe_comparisons() const { return probe_comparisons_; }

  void AppendStats(OperatorStatList* out) const override {
    out->push_back(
        {"probe_comparisons", static_cast<int64_t>(probe_comparisons_)});
  }

 private:
  Result<bool> Exists(const Tuple& outer) {
    scratch_.SetTuple(1, &outer);
    bool found = false;
    auto check = [&](const Tuple& row) {
      if (found) return;
      ++probe_comparisons_;
      scratch_.SetTuple(0, &row);
      auto r = EvalPredicate(*predicate_, scratch_.Row());
      if (r.ok() && *r) found = true;
    };
    if (probe_expr_) {
      scratch_.SetTuple(0, nullptr);
      ESLEV_ASSIGN_OR_RETURN(Value key, probe_expr_->Eval(scratch_.Row()));
      ESLEV_RETURN_NOT_OK(table_->ScanEq(probe_column_, key, check));
    } else {
      table_->Scan(nullptr, check);
    }
    return found;
  }

  const Table* table_;
  BoundExprPtr predicate_;
  std::string probe_column_;
  BoundExprPtr probe_expr_;
  uint64_t probe_comparisons_ = 0;
  RowScratch scratch_;
};

/// \brief Context-retrieval join: for each stream tuple, emit one
/// projected output per table row satisfying the correlated predicate.
class StreamTableJoinOperator : public Operator {
 public:
  StreamTableJoinOperator(const Table* table, BoundExprPtr predicate,
                          std::vector<BoundExprPtr> projection,
                          SchemaPtr out_schema)
      : table_(table),
        predicate_(std::move(predicate)),
        projection_(std::move(projection)),
        out_schema_(std::move(out_schema)),
        scratch_(2) {}

  Status SetProbe(std::string column, BoundExprPtr expr) {
    if (!table_->schema() ||
        table_->schema()->FindField(column) < 0) {
      return Status::BindError("probe column not in table: " + column);
    }
    probe_column_ = std::move(column);
    probe_expr_ = std::move(expr);
    return Status::OK();
  }

  Status ProcessTuple(size_t, const Tuple& tuple) override {
    scratch_.SetTuple(1, &tuple);
    Status status;
    auto visit = [&](const Tuple& row) {
      if (!status.ok()) return;
      scratch_.SetTuple(0, &row);
      auto pass = predicate_ ? EvalPredicate(*predicate_, scratch_.Row())
                             : Result<bool>(true);
      if (!pass.ok()) {
        status = pass.status();
        return;
      }
      if (!*pass) return;
      std::vector<Value> values;
      values.reserve(projection_.size());
      for (const auto& e : projection_) {
        auto v = e->Eval(scratch_.Row());
        if (!v.ok()) {
          status = v.status();
          return;
        }
        values.push_back(std::move(v).ValueUnsafe());
      }
      auto out = MakeTuple(out_schema_, std::move(values), tuple.ts());
      if (!out.ok()) {
        status = out.status();
        return;
      }
      status = Emit(*out);
    };
    if (probe_expr_) {
      scratch_.SetTuple(0, nullptr);
      ESLEV_ASSIGN_OR_RETURN(Value key, probe_expr_->Eval(scratch_.Row()));
      ESLEV_RETURN_NOT_OK(table_->ScanEq(probe_column_, key, visit));
    } else {
      table_->Scan(nullptr, visit);
    }
    return status;
  }

 private:
  const Table* table_;
  BoundExprPtr predicate_;
  std::vector<BoundExprPtr> projection_;
  SchemaPtr out_schema_;
  std::string probe_column_;
  BoundExprPtr probe_expr_;
  RowScratch scratch_;
};

}  // namespace eslev

#endif  // ESLEV_EXEC_TABLE_OPS_H_
