#include "exec/windowed_not_exists.h"

namespace eslev {

WindowedNotExistsOperator::WindowedNotExistsOperator(
    WindowSpec window, BoundExprPtr inner_predicate, bool same_stream,
    BoundExprPtr outer_predicate)
    : window_(window),
      inner_predicate_(std::move(inner_predicate)),
      outer_predicate_(std::move(outer_predicate)),
      same_stream_(same_stream),
      has_preceding_(window.direction == WindowDirection::kPreceding ||
                     window.direction ==
                         WindowDirection::kPrecedingAndFollowing),
      has_following_(window.direction == WindowDirection::kFollowing ||
                     window.direction ==
                         WindowDirection::kPrecedingAndFollowing),
      buffer_(window.row_based, window.length),
      scratch_(2) {}

void WindowedNotExistsOperator::AppendStats(OperatorStatList* out) const {
  out->push_back({"window_buffer", static_cast<int64_t>(buffer_.size())});
  out->push_back({"pending", static_cast<int64_t>(pending_.size())});
  out->push_back(
      {"probe_comparisons", static_cast<int64_t>(probe_comparisons_)});
}

Result<bool> WindowedNotExistsOperator::Matches(const Tuple& inner,
                                                const Tuple& outer) {
  ++probe_comparisons_;
  scratch_.SetTuple(0, &inner);
  scratch_.SetTuple(1, &outer);
  return EvalPredicate(*inner_predicate_, scratch_.Row());
}

Status WindowedNotExistsOperator::ProcessTuple(size_t port, const Tuple& tuple) {
  if (same_stream_) {
    ESLEV_RETURN_NOT_OK(ProcessOuter(tuple));
    return ProcessInner(tuple);
  }
  if (port == 0) return ProcessOuter(tuple);
  return ProcessInner(tuple);
}

Status WindowedNotExistsOperator::ProcessBatch(size_t port,
                                               const TupleBatch& batch) {
  // Pure inner-side delivery (no FOLLOWING pendings to cancel, nothing to
  // emit): bulk-append the run into the window buffer — one eviction pass,
  // and no probe interleaves with the appends.
  if (!same_stream_ && port == 1 && !has_following_) {
    if (has_preceding_) {
      buffer_.AddBatch(batch.tuples().begin(), batch.tuples().end());
    }
    return Status::OK();
  }
  // General case: the evict→probe→add→flush cycle is order-dependent, so
  // run it per tuple, but collect emissions into one output batch.
  TupleBatch out;
  batch_out_ = &out;
  Status st = Status::OK();
  for (const Tuple& t : batch.tuples()) {
    st = ProcessTuple(port, t);
    if (!st.ok()) break;
  }
  batch_out_ = nullptr;
  ESLEV_RETURN_NOT_OK(st);
  return EmitBatch(out);
}

Status WindowedNotExistsOperator::EmitOut(const Tuple& tuple) {
  if (batch_out_ != nullptr) {
    batch_out_->Add(tuple);
    return Status::OK();
  }
  return Emit(tuple);
}

Status WindowedNotExistsOperator::ProcessOuter(const Tuple& tuple) {
  if (outer_predicate_) {
    scratch_.SetTuple(0, nullptr);
    scratch_.SetTuple(1, &tuple);
    ESLEV_ASSIGN_OR_RETURN(bool pass,
                           EvalPredicate(*outer_predicate_, scratch_.Row()));
    if (!pass) return Status::OK();
  }
  if (has_preceding_) {
    buffer_.EvictAt(tuple.ts());
    for (const Tuple& inner : buffer_.tuples()) {
      ESLEV_ASSIGN_OR_RETURN(bool m, Matches(inner, tuple));
      if (m) return Status::OK();  // EXISTS -> NOT EXISTS fails
    }
  }
  if (has_following_) {
    pending_.push_back({tuple, tuple.ts() + window_.length});
    return Status::OK();
  }
  return EmitOut(tuple);
}

Status WindowedNotExistsOperator::ProcessInner(const Tuple& tuple) {
  // Cancel pendings whose FOLLOWING window covers this arrival.
  if (has_following_ && !pending_.empty()) {
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (tuple.ts() >= it->outer.ts() && tuple.ts() <= it->deadline) {
        ESLEV_ASSIGN_OR_RETURN(bool m, Matches(tuple, it->outer));
        if (m) {
          it = pending_.erase(it);
          continue;
        }
      }
      ++it;
    }
  }
  if (has_preceding_) buffer_.Add(tuple);
  // Time has advanced: emit pendings that survived their window.
  ESLEV_RETURN_NOT_OK(FlushPending(tuple.ts()));
  return Status::OK();
}

Status WindowedNotExistsOperator::FlushPending(Timestamp now) {
  while (!pending_.empty() && pending_.front().deadline < now) {
    Tuple out = pending_.front().outer;
    pending_.pop_front();
    ESLEV_RETURN_NOT_OK(EmitOut(out));
  }
  return Status::OK();
}

Status WindowedNotExistsOperator::ProcessHeartbeat(Timestamp now) {
  buffer_.EvictAt(now);
  ESLEV_RETURN_NOT_OK(FlushPending(now));
  return EmitHeartbeat(now);
}

Status WindowedNotExistsOperator::SaveState(BinaryEncoder* enc) const {
  enc->PutU64(probe_comparisons_);
  enc->PutU32(static_cast<uint32_t>(buffer_.size()));
  for (const Tuple& t : buffer_.tuples()) enc->PutTuple(t);
  enc->PutU32(static_cast<uint32_t>(pending_.size()));
  for (const Pending& p : pending_) {
    enc->PutTuple(p.outer);
    enc->PutI64(p.deadline);
  }
  return Status::OK();
}

Status WindowedNotExistsOperator::RestoreState(BinaryDecoder* dec) {
  ESLEV_ASSIGN_OR_RETURN(probe_comparisons_, dec->GetU64());
  ESLEV_ASSIGN_OR_RETURN(uint32_t nbuffered, dec->GetU32());
  std::deque<Tuple> buffered;
  for (uint32_t i = 0; i < nbuffered; ++i) {
    ESLEV_ASSIGN_OR_RETURN(Tuple t, dec->GetTuple());
    buffered.push_back(std::move(t));
  }
  buffer_.Assign(std::move(buffered));
  pending_.clear();
  ESLEV_ASSIGN_OR_RETURN(uint32_t npending, dec->GetU32());
  for (uint32_t i = 0; i < npending; ++i) {
    Pending p;
    ESLEV_ASSIGN_OR_RETURN(p.outer, dec->GetTuple());
    ESLEV_ASSIGN_OR_RETURN(p.deadline, dec->GetI64());
    pending_.push_back(std::move(p));
  }
  return Status::OK();
}

}  // namespace eslev
