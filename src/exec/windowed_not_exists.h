// WindowedNotExistsOperator: the windowed anti-semi-join behind the
// paper's Example 1 (duplicate elimination, PRECEDING window) and
// Example 8 (theft detection, PRECEDING AND FOLLOWING window synchronized
// across the sub-query boundary).
//
// Slot convention (matches the planner's scope construction):
//   slot 0 = inner (sub-query) tuple, slot 1 = outer tuple.
//
// Ports: 0 = outer stream, 1 = inner stream. When the sub-query reads the
// *same* stream as the outer query (both paper examples do), construct
// with `same_stream=true` and feed only port 0: each arrival is processed
// as the outer tuple first (so a tuple never anti-joins against itself),
// then added to the inner window buffer.
//
// FOLLOWING semantics: an outer tuple cannot be emitted before its
// following-window closes, so it is held *pending* and either cancelled
// by a matching inner arrival or emitted when time passes
// `outer.ts + length` (by later arrivals or heartbeats — active
// expiration).

#ifndef ESLEV_EXEC_WINDOWED_NOT_EXISTS_H_
#define ESLEV_EXEC_WINDOWED_NOT_EXISTS_H_

#include <deque>
#include <memory>

#include "expr/bound_expr.h"
#include "sql/ast.h"
#include "stream/operator.h"
#include "stream/window_buffer.h"

namespace eslev {

class WindowedNotExistsOperator : public Operator {
 public:
  /// `outer_predicate` (optional, slot 1 only) gates which arrivals play
  /// the outer role; in same-stream mode it cannot be applied upstream
  /// because the inner side must still observe every tuple.
  WindowedNotExistsOperator(WindowSpec window, BoundExprPtr inner_predicate,
                            bool same_stream,
                            BoundExprPtr outer_predicate = nullptr);

  Status ProcessTuple(size_t port, const Tuple& tuple) override;
  Status ProcessBatch(size_t port, const TupleBatch& batch) override;
  Status ProcessHeartbeat(Timestamp now) override;

  /// \brief The window this anti-join runs (cost model, DESIGN.md §16).
  const WindowSpec& window() const { return window_; }
  bool same_stream() const { return same_stream_; }

  /// \brief Number of outer tuples currently held for their FOLLOWING
  /// window to close (observability for tests/benches).
  size_t pending_count() const { return pending_.size(); }
  size_t buffered_count() const { return buffer_.size(); }
  /// \brief Inner tuples compared against an outer tuple's NOT EXISTS
  /// probe (PRECEDING-side scans plus FOLLOWING-side pending checks).
  uint64_t probe_comparisons() const { return probe_comparisons_; }

  void AppendStats(OperatorStatList* out) const override;

  /// \brief Checkpoint the inner window buffer, the pending outer tuples
  /// with their FOLLOWING deadlines, and the probe counter.
  Status SaveState(BinaryEncoder* enc) const override;
  Status RestoreState(BinaryDecoder* dec) override;

 private:
  struct Pending {
    Tuple outer;
    Timestamp deadline;
  };

  Status ProcessOuter(const Tuple& tuple);
  Status ProcessInner(const Tuple& tuple);
  Status FlushPending(Timestamp now);
  Result<bool> Matches(const Tuple& inner, const Tuple& outer);
  // Emit() or, under ProcessBatch, append to the pending output batch so
  // the whole batch leaves in one sink crossing (order preserved).
  Status EmitOut(const Tuple& tuple);

  WindowSpec window_;
  BoundExprPtr inner_predicate_;
  BoundExprPtr outer_predicate_;
  bool same_stream_;
  bool has_preceding_;
  bool has_following_;
  WindowBuffer buffer_;           // inner history for the PRECEDING side
  std::deque<Pending> pending_;   // outer tuples awaiting FOLLOWING close
  uint64_t probe_comparisons_ = 0;
  RowScratch scratch_;
  TupleBatch* batch_out_ = nullptr;  // non-null only inside ProcessBatch
};

}  // namespace eslev

#endif  // ESLEV_EXEC_WINDOWED_NOT_EXISTS_H_
