#include "expr/binder.h"

#include <limits>

#include "common/string_util.h"

namespace eslev {

int BindScope::FindAlias(const std::string& alias) const {
  int best = -1;
  int best_depth = std::numeric_limits<int>::max();
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (AsciiEqualsIgnoreCase(entries_[i].alias, alias) &&
        entries_[i].depth < best_depth) {
      best = static_cast<int>(i);
      best_depth = entries_[i].depth;
    }
  }
  return best;
}

Result<std::pair<size_t, size_t>> BindScope::ResolveColumn(
    const std::string& column) const {
  int best_depth = std::numeric_limits<int>::max();
  int matches_at_best = 0;
  size_t slot = 0, col = 0;
  for (size_t i = 0; i < entries_.size(); ++i) {
    const int idx = entries_[i].schema->FindField(column);
    if (idx < 0) continue;
    if (entries_[i].depth < best_depth) {
      best_depth = entries_[i].depth;
      matches_at_best = 1;
      slot = i;
      col = static_cast<size_t>(idx);
    } else if (entries_[i].depth == best_depth) {
      ++matches_at_best;
    }
  }
  if (matches_at_best == 0) {
    return Status::BindError("column not found in any stream/table: " +
                             column);
  }
  if (matches_at_best > 1) {
    return Status::BindError("ambiguous column reference: " + column);
  }
  return std::make_pair(slot, col);
}

Result<BoundExprPtr> Binder::Bind(const Expr& expr) const {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return BoundExprPtr(
          new BoundLiteral(static_cast<const LiteralExpr&>(expr).value));
    case ExprKind::kColumnRef:
      return BindColumnRef(static_cast<const ColumnRefExpr&>(expr));
    case ExprKind::kFuncCall:
      return BindFuncCall(static_cast<const FuncCallExpr&>(expr));
    case ExprKind::kStarAgg:
      return BindStarAgg(static_cast<const StarAggExpr&>(expr));
    case ExprKind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(expr);
      ESLEV_ASSIGN_OR_RETURN(BoundExprPtr inner, Bind(*u.operand));
      return BoundExprPtr(new BoundUnary(u.op, std::move(inner)));
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      ESLEV_ASSIGN_OR_RETURN(BoundExprPtr l, Bind(*b.lhs));
      ESLEV_ASSIGN_OR_RETURN(BoundExprPtr r, Bind(*b.rhs));
      return BoundExprPtr(new BoundBinary(b.op, std::move(l), std::move(r)));
    }
    case ExprKind::kExists:
      return Status::BindError(
          "EXISTS subqueries are planned, not bound directly (planner bug)");
    case ExprKind::kSeq:
      return Status::BindError(
          "SEQ operators are planned, not bound directly (planner bug)");
  }
  return Status::BindError("unknown expression kind");
}

Result<BoundExprPtr> Binder::BindColumnRef(const ColumnRefExpr& ref) const {
  if (!ref.qualifier.empty()) {
    const int slot = scope_->FindAlias(ref.qualifier);
    if (slot < 0) {
      return Status::BindError("unknown stream/table alias: " +
                               ref.qualifier);
    }
    const auto& entry = scope_->entries()[static_cast<size_t>(slot)];
    ESLEV_ASSIGN_OR_RETURN(size_t col, entry.schema->FieldIndex(ref.column));
    if (ref.previous && !entry.star) {
      return Status::BindError(
          "`.previous.` requires a starred SEQ argument: " + ref.ToString());
    }
    return BoundExprPtr(new BoundColumnRef(static_cast<size_t>(slot), col,
                                           ref.previous, ref.ToString()));
  }
  if (ref.previous) {
    return Status::BindError("`.previous.` requires a qualified reference");
  }
  ESLEV_ASSIGN_OR_RETURN(auto loc, scope_->ResolveColumn(ref.column));
  return BoundExprPtr(
      new BoundColumnRef(loc.first, loc.second, false, ref.ToString()));
}

Result<BoundExprPtr> Binder::BindFuncCall(const FuncCallExpr& call) const {
  if (registry_->IsAggregate(call.name)) {
    if (!aggregate_hook_) {
      return Status::BindError(
          "aggregate function not allowed in this context: " + call.name);
    }
    return aggregate_hook_(call);
  }
  if (call.star_arg) {
    return Status::BindError("'*' argument only valid in aggregates: " +
                             call.name);
  }
  ESLEV_ASSIGN_OR_RETURN(const ScalarFunction* fn,
                         registry_->FindScalar(call.name));
  const int argc = static_cast<int>(call.args.size());
  if (argc < fn->min_args ||
      (fn->max_args >= 0 && argc > fn->max_args)) {
    return Status::BindError("wrong argument count for " + call.name);
  }
  std::vector<BoundExprPtr> args;
  args.reserve(call.args.size());
  for (const auto& a : call.args) {
    ESLEV_ASSIGN_OR_RETURN(BoundExprPtr b, Bind(*a));
    args.push_back(std::move(b));
  }
  return BoundExprPtr(new BoundScalarCall(fn, std::move(args)));
}

Result<BoundExprPtr> Binder::BindStarAgg(const StarAggExpr& agg) const {
  const int slot = scope_->FindAlias(agg.stream);
  if (slot < 0) {
    return Status::BindError("unknown star-sequence alias: " + agg.stream);
  }
  const auto& entry = scope_->entries()[static_cast<size_t>(slot)];
  if (!entry.star) {
    return Status::BindError(
        agg.stream + " is not a starred SEQ argument; " +
        std::string(StarAggFnToString(agg.fn)) + "(" + agg.stream +
        "*) is invalid");
  }
  int col = -1;
  if (agg.fn != StarAggFn::kCount) {
    ESLEV_ASSIGN_OR_RETURN(size_t c, entry.schema->FieldIndex(agg.column));
    col = static_cast<int>(c);
  }
  return BoundExprPtr(new BoundStarAgg(agg.fn, static_cast<size_t>(slot), col,
                                       agg.ToString()));
}

}  // namespace eslev
