// Binder: resolves AST expressions against a scope of aliased schemas,
// producing BoundExpr trees.

#ifndef ESLEV_EXPR_BINDER_H_
#define ESLEV_EXPR_BINDER_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "expr/bound_expr.h"
#include "expr/function_registry.h"
#include "sql/ast.h"
#include "types/schema.h"

namespace eslev {

/// \brief One resolvable alias: `readings AS r1` contributes
/// {alias="r1", schema=readings' schema}. `depth` separates subquery
/// scopes: 0 is the innermost; outer scopes have larger depths and are
/// shadowed by inner names. `star` marks starred SEQ arguments.
struct ScopeEntry {
  std::string alias;
  SchemaPtr schema;
  int depth = 0;
  bool star = false;
  /// Negated SEQ argument: bindable (its arrival filters need the
  /// schema) but excluded from `*` expansion — it never carries a tuple.
  bool negated = false;
};

/// \brief Name-resolution scope; entry order defines slot numbering.
class BindScope {
 public:
  size_t AddEntry(ScopeEntry entry) {
    entries_.push_back(std::move(entry));
    return entries_.size() - 1;
  }

  const std::vector<ScopeEntry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }

  /// \brief Slot of an alias (case-insensitive), or -1.
  int FindAlias(const std::string& alias) const;

  /// \brief Resolve an unqualified column: searches all entries, innermost
  /// depth first; ambiguity within one depth is a BindError.
  Result<std::pair<size_t, size_t>> ResolveColumn(
      const std::string& column) const;

 private:
  std::vector<ScopeEntry> entries_;
};

class Binder {
 public:
  Binder(const BindScope* scope, const FunctionRegistry* registry)
      : scope_(scope), registry_(registry) {}

  /// \brief Install a hook that binds aggregate function calls (COUNT,
  /// SUM, ...) to BoundAggRef slots. Without a hook, aggregate calls are
  /// a BindError (they are only legal where the planner arranged states).
  void set_aggregate_hook(
      std::function<Result<BoundExprPtr>(const FuncCallExpr&)> hook) {
    aggregate_hook_ = std::move(hook);
  }

  Result<BoundExprPtr> Bind(const Expr& expr) const;

 private:
  Result<BoundExprPtr> BindColumnRef(const ColumnRefExpr& ref) const;
  Result<BoundExprPtr> BindFuncCall(const FuncCallExpr& call) const;
  Result<BoundExprPtr> BindStarAgg(const StarAggExpr& agg) const;

  const BindScope* scope_;
  const FunctionRegistry* registry_;
  std::function<Result<BoundExprPtr>(const FuncCallExpr&)> aggregate_hook_;
};

}  // namespace eslev

#endif  // ESLEV_EXPR_BINDER_H_
