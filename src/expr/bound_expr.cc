#include "expr/bound_expr.h"

#include "common/string_util.h"

namespace eslev {

Result<bool> EvalPredicate(const BoundExpr& expr, const EvalRow& row) {
  ESLEV_ASSIGN_OR_RETURN(Value v, expr.Eval(row));
  if (v.is_null()) return false;  // SQL: UNKNOWN rejects
  if (v.type() != TypeId::kBool) {
    return Status::TypeError("predicate did not evaluate to a boolean: " +
                             v.ToString());
  }
  return v.bool_value();
}

namespace {

// Flatten top-level AND nodes into a conjunct list (tree order, so the
// evaluation order matches the scalar short-circuit walk).
void CollectConjuncts(const BoundExpr& expr,
                      std::vector<const BoundExpr*>* out) {
  const auto* binary = dynamic_cast<const BoundBinary*>(&expr);
  if (binary != nullptr && binary->op() == BinaryOp::kAnd) {
    CollectConjuncts(binary->lhs(), out);
    CollectConjuncts(binary->rhs(), out);
    return;
  }
  out->push_back(&expr);
}

}  // namespace

Status EvalPredicateBatch(const BoundExpr& expr, const TupleBatch& batch,
                          size_t slot, RowScratch* scratch,
                          std::vector<unsigned char>* selection) {
  selection->assign(batch.size(), 1);
  std::vector<const BoundExpr*> conjuncts;
  CollectConjuncts(expr, &conjuncts);
  // Conjunct-at-a-time with selection narrowing: each pass touches one
  // expression tree while scanning rows sequentially, and rows already
  // rejected skip the remaining conjuncts exactly as the scalar
  // evaluator's short-circuit AND would. (Sole divergence: after a NULL
  // conjunct the scalar path still evaluates the next operand, so an
  // error lurking there surfaces scalar-only; acceptance never differs.)
  for (const BoundExpr* conjunct : conjuncts) {
    for (size_t i = 0; i < batch.size(); ++i) {
      if (!(*selection)[i]) continue;
      scratch->SetTuple(slot, &batch[i]);
      ESLEV_ASSIGN_OR_RETURN(bool pass,
                             EvalPredicate(*conjunct, scratch->Row()));
      if (!pass) (*selection)[i] = 0;
    }
  }
  return Status::OK();
}

Result<Value> BoundColumnRef::Eval(const EvalRow& row) const {
  if (slot_ >= row.num_slots) {
    return Status::ExecutionError("slot out of range for " + name_);
  }
  const Tuple* t =
      previous_ ? (row.prev_slots ? row.prev_slots[slot_] : nullptr)
                : row.slots[slot_];
  if (t == nullptr) {
    // `.previous.` on the first tuple of a star group, or an unbound
    // stream slot: SQL NULL.
    return Value::Null();
  }
  if (column_ >= t->size()) {
    return Status::ExecutionError("column index out of range for " + name_);
  }
  return t->value(column_);
}

Result<Value> BoundStarAgg::Eval(const EvalRow& row) const {
  if (slot_ >= row.num_slots || row.star_groups == nullptr ||
      row.star_groups[slot_] == nullptr) {
    return Status::ExecutionError("no star group bound for " + name_);
  }
  const std::vector<Tuple>& group = *row.star_groups[slot_];
  switch (fn_) {
    case StarAggFn::kCount:
      return Value::Int(static_cast<int64_t>(group.size()));
    case StarAggFn::kFirst:
    case StarAggFn::kLast: {
      if (group.empty()) return Value::Null();
      const Tuple& t = fn_ == StarAggFn::kFirst ? group.front() : group.back();
      if (column_ < 0 || static_cast<size_t>(column_) >= t.size()) {
        return Status::ExecutionError("bad star aggregate column in " + name_);
      }
      return t.value(static_cast<size_t>(column_));
    }
  }
  return Status::ExecutionError("bad star aggregate " + name_);
}

Result<Value> BoundScalarCall::Eval(const EvalRow& row) const {
  std::vector<Value> args;
  args.reserve(args_.size());
  for (const auto& a : args_) {
    ESLEV_ASSIGN_OR_RETURN(Value v, a->Eval(row));
    args.push_back(std::move(v));
  }
  return fn_->fn(args);
}

Result<Value> BoundUnary::Eval(const EvalRow& row) const {
  ESLEV_ASSIGN_OR_RETURN(Value v, operand_->Eval(row));
  switch (op_) {
    case UnaryOp::kNot:
      if (v.is_null()) return Value::Null();
      if (v.type() != TypeId::kBool) {
        return Status::TypeError("NOT applied to non-boolean " + v.ToString());
      }
      return Value::Bool(!v.bool_value());
    case UnaryOp::kNeg:
      if (v.is_null()) return Value::Null();
      if (v.type() == TypeId::kDouble) return Value::Double(-v.double_value());
      ESLEV_ASSIGN_OR_RETURN(int64_t i, v.AsInt64());
      return Value::Int(-i);
  }
  return Status::ExecutionError("bad unary operator");
}

namespace {

// Three-valued AND/OR.
Result<Value> EvalLogical(BinaryOp op, const Value& l, const Value& r) {
  auto truth = [](const Value& v) -> Result<int> {  // 0=false,1=true,2=null
    if (v.is_null()) return 2;
    if (v.type() != TypeId::kBool) {
      return Status::TypeError("logical operand is not boolean: " +
                               v.ToString());
    }
    return v.bool_value() ? 1 : 0;
  };
  ESLEV_ASSIGN_OR_RETURN(int lt, truth(l));
  ESLEV_ASSIGN_OR_RETURN(int rt, truth(r));
  if (op == BinaryOp::kAnd) {
    if (lt == 0 || rt == 0) return Value::Bool(false);
    if (lt == 2 || rt == 2) return Value::Null();
    return Value::Bool(true);
  }
  if (lt == 1 || rt == 1) return Value::Bool(true);
  if (lt == 2 || rt == 2) return Value::Null();
  return Value::Bool(false);
}

Result<Value> EvalComparison(BinaryOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  ESLEV_ASSIGN_OR_RETURN(int cmp, l.Compare(r));
  switch (op) {
    case BinaryOp::kEq:
      return Value::Bool(cmp == 0);
    case BinaryOp::kNe:
      return Value::Bool(cmp != 0);
    case BinaryOp::kLt:
      return Value::Bool(cmp < 0);
    case BinaryOp::kLe:
      return Value::Bool(cmp <= 0);
    case BinaryOp::kGt:
      return Value::Bool(cmp > 0);
    case BinaryOp::kGe:
      return Value::Bool(cmp >= 0);
    default:
      return Status::ExecutionError("bad comparison operator");
  }
}

Result<Value> EvalArithmetic(BinaryOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  const bool l_ts = l.type() == TypeId::kTimestamp;
  const bool r_ts = r.type() == TypeId::kTimestamp;
  const bool any_double =
      l.type() == TypeId::kDouble || r.type() == TypeId::kDouble;

  if (any_double) {
    ESLEV_ASSIGN_OR_RETURN(double a, l.AsDouble());
    ESLEV_ASSIGN_OR_RETURN(double b, r.AsDouble());
    switch (op) {
      case BinaryOp::kAdd:
        return Value::Double(a + b);
      case BinaryOp::kSub:
        return Value::Double(a - b);
      case BinaryOp::kMul:
        return Value::Double(a * b);
      case BinaryOp::kDiv:
        if (b == 0) return Status::ExecutionError("division by zero");
        return Value::Double(a / b);
      case BinaryOp::kMod:
        return Status::TypeError("'%' requires integer operands");
      default:
        break;
    }
    return Status::ExecutionError("bad arithmetic operator");
  }

  ESLEV_ASSIGN_OR_RETURN(int64_t a, l.AsInt64());
  ESLEV_ASSIGN_OR_RETURN(int64_t b, r.AsInt64());
  int64_t out;
  switch (op) {
    case BinaryOp::kAdd:
      out = a + b;
      break;
    case BinaryOp::kSub:
      out = a - b;
      break;
    case BinaryOp::kMul:
      out = a * b;
      break;
    case BinaryOp::kDiv:
      if (b == 0) return Status::ExecutionError("division by zero");
      out = a / b;
      break;
    case BinaryOp::kMod:
      if (b == 0) return Status::ExecutionError("modulo by zero");
      out = a % b;
      break;
    default:
      return Status::ExecutionError("bad arithmetic operator");
  }
  // Timestamp algebra: ts - ts = duration (INT); ts +/- duration = ts.
  if (l_ts && r_ts) {
    if (op == BinaryOp::kSub) return Value::Int(out);
    return Status::TypeError("unsupported timestamp arithmetic");
  }
  if ((l_ts || r_ts) && (op == BinaryOp::kAdd || op == BinaryOp::kSub)) {
    return Value::Time(out);
  }
  return Value::Int(out);
}

Result<Value> EvalLike(BinaryOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  if (l.type() != TypeId::kString || r.type() != TypeId::kString) {
    return Status::TypeError("LIKE requires VARCHAR operands");
  }
  const bool m = SqlLikeMatch(l.string_value(), r.string_value());
  return Value::Bool(op == BinaryOp::kLike ? m : !m);
}

}  // namespace

Result<Value> BoundBinary::Eval(const EvalRow& row) const {
  // Short-circuit logical operators.
  if (op_ == BinaryOp::kAnd || op_ == BinaryOp::kOr) {
    ESLEV_ASSIGN_OR_RETURN(Value l, lhs_->Eval(row));
    if (!l.is_null() && l.type() == TypeId::kBool) {
      if (op_ == BinaryOp::kAnd && !l.bool_value()) return Value::Bool(false);
      if (op_ == BinaryOp::kOr && l.bool_value()) return Value::Bool(true);
    }
    ESLEV_ASSIGN_OR_RETURN(Value r, rhs_->Eval(row));
    return EvalLogical(op_, l, r);
  }

  ESLEV_ASSIGN_OR_RETURN(Value l, lhs_->Eval(row));
  ESLEV_ASSIGN_OR_RETURN(Value r, rhs_->Eval(row));
  switch (op_) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return EvalComparison(op_, l, r);
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod:
      return EvalArithmetic(op_, l, r);
    case BinaryOp::kLike:
    case BinaryOp::kNotLike:
      return EvalLike(op_, l, r);
    default:
      return Status::ExecutionError("bad binary operator");
  }
}

Result<Value> BoundAggRef::Eval(const EvalRow& row) const {
  if (row.agg_values == nullptr || index_ >= row.agg_values->size()) {
    return Status::ExecutionError("aggregate value not available");
  }
  return (*row.agg_values)[index_];
}

}  // namespace eslev
