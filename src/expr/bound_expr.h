// Bound (analyzed) expressions: AST nodes resolved to slot/column indexes
// and function pointers, evaluable against an EvalRow.

#ifndef ESLEV_EXPR_BOUND_EXPR_H_
#define ESLEV_EXPR_BOUND_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "expr/eval_row.h"
#include "expr/function_registry.h"
#include "sql/ast.h"
#include "types/tuple_batch.h"
#include "types/value.h"

namespace eslev {

class BoundExpr {
 public:
  virtual ~BoundExpr() = default;
  virtual Result<Value> Eval(const EvalRow& row) const = 0;
};

using BoundExprPtr = std::unique_ptr<BoundExpr>;

/// \brief WHERE-clause truth: TRUE is accepted; FALSE and NULL reject.
Result<bool> EvalPredicate(const BoundExpr& expr, const EvalRow& row);

/// \brief Columnar WHERE evaluation over a batch whose tuples bind to a
/// single slot (DESIGN.md §13). Splits `expr` into top-level AND
/// conjuncts and evaluates conjunct-at-a-time over the still-selected
/// rows, narrowing `selection` (resized to batch.size(), 1 = accepted)
/// after each conjunct — the batch analogue of the scalar evaluator's
/// short-circuit AND. Accepts exactly the rows EvalPredicate accepts;
/// `scratch` is refilled per row and must have slot < num_slots.
Status EvalPredicateBatch(const BoundExpr& expr, const TupleBatch& batch,
                          size_t slot, RowScratch* scratch,
                          std::vector<unsigned char>* selection);

// ---------------------------------------------------------------------------
// Node types (exposed for tests; constructed by the Binder)
// ---------------------------------------------------------------------------

class BoundLiteral : public BoundExpr {
 public:
  explicit BoundLiteral(Value v) : value_(std::move(v)) {}
  Result<Value> Eval(const EvalRow&) const override { return value_; }

 private:
  Value value_;
};

class BoundColumnRef : public BoundExpr {
 public:
  BoundColumnRef(size_t slot, size_t column, bool previous, std::string name)
      : slot_(slot), column_(column), previous_(previous),
        name_(std::move(name)) {}
  Result<Value> Eval(const EvalRow& row) const override;

  size_t slot() const { return slot_; }
  size_t column() const { return column_; }

 private:
  size_t slot_;
  size_t column_;
  bool previous_;
  std::string name_;  // for error messages
};

class BoundStarAgg : public BoundExpr {
 public:
  BoundStarAgg(StarAggFn fn, size_t slot, int column, std::string name)
      : fn_(fn), slot_(slot), column_(column), name_(std::move(name)) {}
  Result<Value> Eval(const EvalRow& row) const override;

 private:
  StarAggFn fn_;
  size_t slot_;
  int column_;  // -1 for COUNT
  std::string name_;
};

class BoundScalarCall : public BoundExpr {
 public:
  BoundScalarCall(const ScalarFunction* fn, std::vector<BoundExprPtr> args)
      : fn_(fn), args_(std::move(args)) {}
  Result<Value> Eval(const EvalRow& row) const override;

 private:
  const ScalarFunction* fn_;
  std::vector<BoundExprPtr> args_;
};

class BoundUnary : public BoundExpr {
 public:
  BoundUnary(UnaryOp op, BoundExprPtr operand)
      : op_(op), operand_(std::move(operand)) {}
  Result<Value> Eval(const EvalRow& row) const override;

 private:
  UnaryOp op_;
  BoundExprPtr operand_;
};

class BoundBinary : public BoundExpr {
 public:
  BoundBinary(BinaryOp op, BoundExprPtr lhs, BoundExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
  Result<Value> Eval(const EvalRow& row) const override;

  // Structure accessors for conjunct splitting (EvalPredicateBatch).
  BinaryOp op() const { return op_; }
  const BoundExpr& lhs() const { return *lhs_; }
  const BoundExpr& rhs() const { return *rhs_; }

 private:
  BinaryOp op_;
  BoundExprPtr lhs_;
  BoundExprPtr rhs_;
};

/// \brief Reads a pre-computed aggregate result (row.agg_values[index]);
/// the aggregate operator computes those before projecting.
class BoundAggRef : public BoundExpr {
 public:
  explicit BoundAggRef(size_t index) : index_(index) {}
  Result<Value> Eval(const EvalRow& row) const override;

 private:
  size_t index_;
};

}  // namespace eslev

#endif  // ESLEV_EXPR_BOUND_EXPR_H_
