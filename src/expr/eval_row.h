// EvalRow: the runtime row context a bound expression evaluates against.
//
// A query's binder assigns each FROM-clause alias (or SEQ argument) a
// *slot*. At evaluation time the operator supplies, per slot: the current
// tuple, optionally the previous tuple (for `alias.previous.col` on star
// sequences), and optionally the accumulated star group (for FIRST/LAST/
// COUNT star aggregates). Correlated subqueries append the outer query's
// slots after the inner ones, so inner names shadow outer names.

#ifndef ESLEV_EXPR_EVAL_ROW_H_
#define ESLEV_EXPR_EVAL_ROW_H_

#include <vector>

#include "types/tuple.h"
#include "types/value.h"

namespace eslev {

struct EvalRow {
  /// Current tuple per slot; entries may be null (e.g. unmatched stream).
  const Tuple* const* slots = nullptr;
  size_t num_slots = 0;
  /// Previous tuple per slot, for `.previous.` references; may be null.
  const Tuple* const* prev_slots = nullptr;
  /// Star group per slot (accumulated tuples of a starred SEQ argument);
  /// may be null.
  const std::vector<Tuple>* const* star_groups = nullptr;
  /// Pre-computed aggregate results referenced by BoundAggRef.
  const std::vector<Value>* agg_values = nullptr;
};

/// \brief Owning scratch space for building an EvalRow incrementally.
/// Operators keep one RowScratch and refill it per evaluation.
class RowScratch {
 public:
  explicit RowScratch(size_t num_slots)
      : slots_(num_slots, nullptr),
        prevs_(num_slots, nullptr),
        stars_(num_slots, nullptr) {}

  void Clear() {
    std::fill(slots_.begin(), slots_.end(), nullptr);
    std::fill(prevs_.begin(), prevs_.end(), nullptr);
    std::fill(stars_.begin(), stars_.end(), nullptr);
    agg_values_ = nullptr;
  }

  void SetTuple(size_t slot, const Tuple* t) { slots_[slot] = t; }
  void SetPrevious(size_t slot, const Tuple* t) { prevs_[slot] = t; }
  void SetStarGroup(size_t slot, const std::vector<Tuple>* g) {
    stars_[slot] = g;
  }
  void SetAggValues(const std::vector<Value>* v) { agg_values_ = v; }

  size_t num_slots() const { return slots_.size(); }

  EvalRow Row() const {
    EvalRow row;
    row.slots = slots_.data();
    row.num_slots = slots_.size();
    row.prev_slots = prevs_.data();
    row.star_groups = stars_.data();
    row.agg_values = agg_values_;
    return row;
  }

 private:
  std::vector<const Tuple*> slots_;
  std::vector<const Tuple*> prevs_;
  std::vector<const std::vector<Tuple>*> stars_;
  const std::vector<Value>* agg_values_ = nullptr;
};

}  // namespace eslev

#endif  // ESLEV_EXPR_EVAL_ROW_H_
