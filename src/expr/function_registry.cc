#include "expr/function_registry.h"

#include <algorithm>
#include <cstdlib>

#include "common/string_util.h"

namespace eslev {

namespace {


// ---- built-in scalar functions --------------------------------------------

// EPC codes are formatted "company.productcode.serialnumber" (paper §2.1).
Result<std::vector<std::string>> EpcParts(const Value& v,
                                          const std::string& fn) {
  if (v.is_null()) return Status::Invalid(fn + ": NULL EPC");
  if (v.type() != TypeId::kString) {
    return Status::TypeError(fn + " expects a VARCHAR EPC code");
  }
  auto parts = Split(v.string_value(), '.');
  if (parts.size() != 3) {
    return Status::Invalid(fn + ": malformed EPC code '" + v.string_value() +
                           "' (want company.product.serial)");
  }
  return parts;
}

Result<Value> ExtractSerial(const std::vector<Value>& args) {
  if (args[0].is_null()) return Value::Null();
  ESLEV_ASSIGN_OR_RETURN(auto parts, EpcParts(args[0], "extract_serial"));
  char* end = nullptr;
  const long long serial = std::strtoll(parts[2].c_str(), &end, 10);
  if (end == parts[2].c_str() || *end != '\0') {
    return Status::Invalid("extract_serial: non-numeric serial '" +
                           parts[2] + "'");
  }
  return Value::Int(serial);
}

Result<Value> ExtractCompany(const std::vector<Value>& args) {
  if (args[0].is_null()) return Value::Null();
  ESLEV_ASSIGN_OR_RETURN(auto parts, EpcParts(args[0], "extract_company"));
  return Value::String(parts[0]);
}

Result<Value> ExtractProduct(const std::vector<Value>& args) {
  if (args[0].is_null()) return Value::Null();
  ESLEV_ASSIGN_OR_RETURN(auto parts, EpcParts(args[0], "extract_product"));
  return Value::String(parts[1]);
}

Result<Value> Length(const std::vector<Value>& args) {
  if (args[0].is_null()) return Value::Null();
  if (args[0].type() != TypeId::kString) {
    return Status::TypeError("length expects VARCHAR");
  }
  return Value::Int(static_cast<int64_t>(args[0].string_value().size()));
}

Result<Value> Lower(const std::vector<Value>& args) {
  if (args[0].is_null()) return Value::Null();
  if (args[0].type() != TypeId::kString) {
    return Status::TypeError("lower expects VARCHAR");
  }
  return Value::String(AsciiToLower(args[0].string_value()));
}

Result<Value> Upper(const std::vector<Value>& args) {
  if (args[0].is_null()) return Value::Null();
  if (args[0].type() != TypeId::kString) {
    return Status::TypeError("upper expects VARCHAR");
  }
  return Value::String(AsciiToUpper(args[0].string_value()));
}

// substr(s, start_1based, len)
Result<Value> Substr(const std::vector<Value>& args) {
  if (args[0].is_null()) return Value::Null();
  if (args[0].type() != TypeId::kString) {
    return Status::TypeError("substr expects VARCHAR");
  }
  ESLEV_ASSIGN_OR_RETURN(int64_t start, args[1].AsInt64());
  const std::string& s = args[0].string_value();
  if (start < 1) start = 1;
  if (static_cast<size_t>(start) > s.size()) return Value::String("");
  size_t len = s.size();
  if (args.size() == 3) {
    ESLEV_ASSIGN_OR_RETURN(int64_t n, args[2].AsInt64());
    len = n < 0 ? 0 : static_cast<size_t>(n);
  }
  return Value::String(s.substr(static_cast<size_t>(start - 1), len));
}

Result<Value> Abs(const std::vector<Value>& args) {
  if (args[0].is_null()) return Value::Null();
  if (args[0].type() == TypeId::kDouble) {
    return Value::Double(std::abs(args[0].double_value()));
  }
  ESLEV_ASSIGN_OR_RETURN(int64_t v, args[0].AsInt64());
  return Value::Int(v < 0 ? -v : v);
}

Result<Value> Coalesce(const std::vector<Value>& args) {
  for (const Value& v : args) {
    if (!v.is_null()) return v;
  }
  return Value::Null();
}

Result<Value> Concat(const std::vector<Value>& args) {
  std::string out;
  for (const Value& v : args) {
    if (v.is_null()) return Value::Null();
    out += v.ToString();
  }
  return Value::String(out);
}

// ---- built-in aggregates ---------------------------------------------------

// Checkpointing helper: verify the Value vector restored for an aggregate
// accumulator has the expected shape.
Status CheckSavedShape(const std::vector<Value>& values, size_t n,
                       const char* what) {
  if (values.size() != n) {
    return Status::IoError(std::string(what) +
                           ": bad checkpointed accumulator arity");
  }
  return Status::OK();
}

class CountState : public AggregateState {
 public:
  Status Accumulate(const Value& v) override {
    if (!v.is_null()) ++count_;
    return Status::OK();
  }
  Status Retract(const Value& v) override {
    if (!v.is_null()) --count_;
    return Status::OK();
  }
  Value Finalize() const override { return Value::Int(count_); }
  void Reset() override { count_ = 0; }

  Result<std::vector<Value>> SaveState() const override {
    return std::vector<Value>{Value::Int(count_)};
  }
  Status RestoreState(const std::vector<Value>& values) override {
    ESLEV_RETURN_NOT_OK(CheckSavedShape(values, 1, "COUNT"));
    ESLEV_ASSIGN_OR_RETURN(count_, values[0].AsInt64());
    return Status::OK();
  }

 private:
  int64_t count_ = 0;
};

class SumState : public AggregateState {
 public:
  Status Accumulate(const Value& v) override { return Apply(v, +1); }
  Status Retract(const Value& v) override { return Apply(v, -1); }
  Value Finalize() const override {
    if (count_ == 0) return Value::Null();
    if (is_double_) return Value::Double(dsum_);
    return Value::Int(isum_);
  }
  void Reset() override {
    isum_ = 0;
    dsum_ = 0;
    count_ = 0;
    is_double_ = false;
  }

  Result<std::vector<Value>> SaveState() const override {
    return std::vector<Value>{Value::Int(isum_), Value::Double(dsum_),
                              Value::Int(count_), Value::Bool(is_double_)};
  }
  Status RestoreState(const std::vector<Value>& values) override {
    ESLEV_RETURN_NOT_OK(CheckSavedShape(values, 4, "SUM/AVG"));
    ESLEV_ASSIGN_OR_RETURN(isum_, values[0].AsInt64());
    ESLEV_ASSIGN_OR_RETURN(dsum_, values[1].AsDouble());
    ESLEV_ASSIGN_OR_RETURN(count_, values[2].AsInt64());
    if (values[3].type() != TypeId::kBool) {
      return Status::IoError("SUM/AVG: bad is_double flag");
    }
    is_double_ = values[3].bool_value();
    return Status::OK();
  }

 protected:
  Status Apply(const Value& v, int sign) {
    if (v.is_null()) return Status::OK();
    if (v.type() == TypeId::kDouble) is_double_ = true;
    ESLEV_ASSIGN_OR_RETURN(double d, v.AsDouble());
    dsum_ += sign * d;
    if (!is_double_) {
      ESLEV_ASSIGN_OR_RETURN(int64_t i, v.AsInt64());
      isum_ += sign * i;
    }
    count_ += sign;
    return Status::OK();
  }

  int64_t isum_ = 0;
  double dsum_ = 0;
  int64_t count_ = 0;
  bool is_double_ = false;
};

class AvgState : public SumState {
 public:
  Value Finalize() const override {
    if (count_ == 0) return Value::Null();
    return Value::Double(dsum_ / static_cast<double>(count_));
  }
};

class MinMaxState : public AggregateState {
 public:
  explicit MinMaxState(bool is_min) : is_min_(is_min) {}
  Status Accumulate(const Value& v) override {
    if (v.is_null()) return Status::OK();
    if (best_.is_null()) {
      best_ = v;
      return Status::OK();
    }
    ESLEV_ASSIGN_OR_RETURN(int cmp, v.Compare(best_));
    if ((is_min_ && cmp < 0) || (!is_min_ && cmp > 0)) best_ = v;
    return Status::OK();
  }
  Value Finalize() const override { return best_; }
  void Reset() override { best_ = Value::Null(); }

  Result<std::vector<Value>> SaveState() const override {
    return std::vector<Value>{best_};
  }
  Status RestoreState(const std::vector<Value>& values) override {
    ESLEV_RETURN_NOT_OK(CheckSavedShape(values, 1, "MIN/MAX"));
    best_ = values[0];
    return Status::OK();
  }

 private:
  bool is_min_;
  Value best_;
};

}  // namespace

FunctionRegistry::FunctionRegistry() { RegisterBuiltins(); }

void FunctionRegistry::RegisterBuiltins() {
  auto add = [this](const char* name, int min_args, int max_args,
                    ScalarFn fn, TypeId return_type) {
    ScalarFunction f;
    f.name = name;
    f.min_args = min_args;
    f.max_args = max_args;
    f.fn = std::move(fn);
    f.return_type = return_type;
    scalars_.emplace(AsciiToLower(f.name), std::move(f));
  };
  add("extract_serial", 1, 1, ExtractSerial, TypeId::kInt64);
  add("extract_company", 1, 1, ExtractCompany, TypeId::kString);
  add("extract_product", 1, 1, ExtractProduct, TypeId::kString);
  add("length", 1, 1, Length, TypeId::kInt64);
  add("lower", 1, 1, Lower, TypeId::kString);
  add("upper", 1, 1, Upper, TypeId::kString);
  add("substr", 2, 3, Substr, TypeId::kString);
  add("abs", 1, 1, Abs, TypeId::kNull);       // same as argument
  add("coalesce", 1, -1, Coalesce, TypeId::kNull);
  add("concat", 1, -1, Concat, TypeId::kString);

  auto add_agg = [this](const char* name, bool retract,
                        std::function<std::unique_ptr<AggregateState>()> mk,
                        TypeId return_type) {
    AggregateFunction f;
    f.name = name;
    f.supports_retract = retract;
    f.make_state = std::move(mk);
    f.return_type = return_type;
    aggregates_.emplace(AsciiToLower(f.name), std::move(f));
  };
  add_agg("count", true, [] { return std::make_unique<CountState>(); },
          TypeId::kInt64);
  // SUM declares DOUBLE: runtime INT sums widen on insertion, and a group
  // that later sees a DOUBLE cannot invalidate the output schema.
  add_agg("sum", true, [] { return std::make_unique<SumState>(); },
          TypeId::kDouble);
  add_agg("avg", true, [] { return std::make_unique<AvgState>(); },
          TypeId::kDouble);
  add_agg("min", false, [] { return std::make_unique<MinMaxState>(true); },
          TypeId::kNull);
  add_agg("max", false, [] { return std::make_unique<MinMaxState>(false); },
          TypeId::kNull);
}

Status FunctionRegistry::RegisterScalar(ScalarFunction fn) {
  const std::string key = AsciiToLower(fn.name);
  if (scalars_.count(key) || aggregates_.count(key)) {
    return Status::AlreadyExists("function already registered: " + fn.name);
  }
  scalars_.emplace(key, std::move(fn));
  return Status::OK();
}

Status FunctionRegistry::RegisterAggregate(AggregateFunction fn) {
  const std::string key = AsciiToLower(fn.name);
  if (scalars_.count(key) || aggregates_.count(key)) {
    return Status::AlreadyExists("function already registered: " + fn.name);
  }
  aggregates_.emplace(key, std::move(fn));
  return Status::OK();
}

Result<const ScalarFunction*> FunctionRegistry::FindScalar(
    const std::string& name) const {
  auto it = scalars_.find(AsciiToLower(name));
  if (it == scalars_.end()) {
    return Status::NotFound("scalar function not found: " + name);
  }
  return &it->second;
}

Result<const AggregateFunction*> FunctionRegistry::FindAggregate(
    const std::string& name) const {
  auto it = aggregates_.find(AsciiToLower(name));
  if (it == aggregates_.end()) {
    return Status::NotFound("aggregate function not found: " + name);
  }
  return &it->second;
}

bool FunctionRegistry::IsAggregate(const std::string& name) const {
  return aggregates_.count(AsciiToLower(name)) > 0;
}

}  // namespace eslev
