// Scalar UDF and aggregate (UDA) registry. ESL exposes user-defined
// functions/aggregates as first-class language citizens (paper §2.1,
// Example 3 uses the UDF `extract_serial`); this registry is where both
// built-ins and user extensions live.

#ifndef ESLEV_EXPR_FUNCTION_REGISTRY_H_
#define ESLEV_EXPR_FUNCTION_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "types/value.h"

namespace eslev {

/// \brief Implementation of a scalar function.
using ScalarFn = std::function<Result<Value>(const std::vector<Value>&)>;

struct ScalarFunction {
  std::string name;
  int min_args = 0;
  int max_args = 0;  // -1 for variadic
  ScalarFn fn;
  /// Declared result type, used to build output schemas. kNull means
  /// "same as the first argument" (e.g. abs, coalesce).
  TypeId return_type = TypeId::kString;
};

/// \brief One running instance of an aggregate (created per group).
///
/// The built-in aggregates follow SQL semantics: NULL inputs are skipped;
/// COUNT(*) counts rows. `Retract` enables incremental sliding-window
/// aggregation; aggregates that cannot retract return NotImplemented and
/// the operator falls back to recomputation over the window buffer.
class AggregateState {
 public:
  virtual ~AggregateState() = default;
  virtual Status Accumulate(const Value& v) = 0;
  virtual Status Retract(const Value& v) {
    (void)v;
    return Status::NotImplemented("aggregate does not support retraction");
  }
  virtual Value Finalize() const = 0;
  virtual void Reset() = 0;

  /// \brief Export the accumulator as plain Values for checkpointing
  /// (DESIGN.md §10). All built-ins and SQL UDAs implement this; a custom
  /// UDA that does not cannot be checkpointed (the engine reports it).
  virtual Result<std::vector<Value>> SaveState() const {
    return Status::NotImplemented("aggregate state is not checkpointable");
  }

  /// \brief Reload an accumulator exported by SaveState on a fresh state.
  virtual Status RestoreState(const std::vector<Value>& values) {
    (void)values;
    return Status::NotImplemented("aggregate state is not checkpointable");
  }
};

struct AggregateFunction {
  std::string name;
  bool supports_retract = false;
  std::function<std::unique_ptr<AggregateState>()> make_state;
  /// Declared result type; kNull means "same as the argument" (min/max).
  TypeId return_type = TypeId::kNull;
};

/// \brief Name-indexed registry of scalar and aggregate functions.
/// Lookup is case-insensitive. A fresh registry contains the built-ins.
class FunctionRegistry {
 public:
  FunctionRegistry();

  /// \brief Register a scalar UDF; AlreadyExists if the name is taken.
  Status RegisterScalar(ScalarFunction fn);

  /// \brief Register a UDA; AlreadyExists if the name is taken.
  Status RegisterAggregate(AggregateFunction fn);

  /// \brief Find a scalar function, NotFound otherwise.
  Result<const ScalarFunction*> FindScalar(const std::string& name) const;

  /// \brief Find an aggregate, NotFound otherwise.
  Result<const AggregateFunction*> FindAggregate(
      const std::string& name) const;

  bool IsAggregate(const std::string& name) const;

 private:
  void RegisterBuiltins();

  std::unordered_map<std::string, ScalarFunction> scalars_;
  std::unordered_map<std::string, AggregateFunction> aggregates_;
};

}  // namespace eslev

#endif  // ESLEV_EXPR_FUNCTION_REGISTRY_H_
