#include "expr/sql_uda.h"

#include "expr/binder.h"

namespace eslev {

namespace {

// Shared compiled body; each group's state holds only its accumulator.
struct UdaProgram {
  SchemaPtr scope_schema;
  BoundExprPtr initialize;
  BoundExprPtr iterate;
  BoundExprPtr terminate;  // may be null
};

class SqlUdaState : public AggregateState {
 public:
  explicit SqlUdaState(std::shared_ptr<const UdaProgram> program)
      : program_(std::move(program)) {}

  Status Accumulate(const Value& v) override {
    // Scope row: (state, next, n) — n includes the current input.
    Tuple row(program_->scope_schema,
              {state_, v, Value::Int(count_ + 1)}, 0);
    RowScratch scratch(1);
    scratch.SetTuple(0, &row);
    const BoundExpr& expr =
        count_ == 0 ? *program_->initialize : *program_->iterate;
    ESLEV_ASSIGN_OR_RETURN(state_, expr.Eval(scratch.Row()));
    ++count_;
    return Status::OK();
  }

  Value Finalize() const override {
    if (count_ == 0) return Value::Null();
    if (!program_->terminate) return state_;
    Tuple row(program_->scope_schema,
              {state_, Value::Null(), Value::Int(count_)}, 0);
    RowScratch scratch(1);
    scratch.SetTuple(0, &row);
    auto result = program_->terminate->Eval(scratch.Row());
    return result.ok() ? *result : Value::Null();
  }

  void Reset() override {
    state_ = Value::Null();
    count_ = 0;
  }

  Result<std::vector<Value>> SaveState() const override {
    return std::vector<Value>{state_, Value::Int(count_)};
  }
  Status RestoreState(const std::vector<Value>& values) override {
    if (values.size() != 2) {
      return Status::IoError("SQL UDA: bad checkpointed accumulator arity");
    }
    state_ = values[0];
    ESLEV_ASSIGN_OR_RETURN(count_, values[1].AsInt64());
    return Status::OK();
  }

 private:
  std::shared_ptr<const UdaProgram> program_;
  Value state_;
  int64_t count_ = 0;
};

}  // namespace

Result<AggregateFunction> CompileSqlUda(const CreateAggregateStmt& stmt,
                                        const FunctionRegistry& registry) {
  auto program = std::make_shared<UdaProgram>();
  // The declared column types are irrelevant: UDA values are dynamically
  // typed and the binder only resolves names to slots.
  program->scope_schema = Schema::Make({{"state", TypeId::kString},
                                        {"next", TypeId::kString},
                                        {"n", TypeId::kInt64}});
  BindScope scope;
  scope.AddEntry({"uda", program->scope_schema, 0, false});
  Binder binder(&scope, &registry);

  ESLEV_ASSIGN_OR_RETURN(program->initialize, binder.Bind(*stmt.initialize));
  ESLEV_ASSIGN_OR_RETURN(program->iterate, binder.Bind(*stmt.iterate));
  if (stmt.terminate) {
    ESLEV_ASSIGN_OR_RETURN(program->terminate, binder.Bind(*stmt.terminate));
  }

  AggregateFunction fn;
  fn.name = stmt.name;
  fn.supports_retract = false;
  fn.return_type = stmt.return_type;
  fn.make_state = [program] {
    return std::make_unique<SqlUdaState>(program);
  };
  return fn;
}

}  // namespace eslev
