// SQL-defined user-defined aggregates (ESL-style, paper §2.1): compile a
// CREATE AGGREGATE statement's INITIALIZE / ITERATE / TERMINATE
// expressions into an AggregateFunction.

#ifndef ESLEV_EXPR_SQL_UDA_H_
#define ESLEV_EXPR_SQL_UDA_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "expr/function_registry.h"
#include "sql/ast.h"

namespace eslev {

/// \brief Compile a CreateAggregateStmt against the scalar functions in
/// `registry` and return a registrable AggregateFunction.
///
/// The three expressions are bound against the synthetic scope
/// (state, next, n): `state` is the accumulator (NULL before the first
/// input), `next` the incoming value, and `n` the number of accumulated
/// inputs (including the current one inside ITERATE). SQL UDAs do not
/// support retraction, so windowed queries recompute over the buffer —
/// the same fallback min/max use.
Result<AggregateFunction> CompileSqlUda(const CreateAggregateStmt& stmt,
                                        const FunctionRegistry& registry);

}  // namespace eslev

#endif  // ESLEV_EXPR_SQL_UDA_H_
