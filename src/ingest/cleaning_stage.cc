#include "ingest/cleaning_stage.h"

#include <algorithm>

namespace eslev {

namespace {

/// Copy `base` shifted forward by `delta`: the out-of-band timestamp and
/// every timestamp-typed column move together, so a synthesized read's
/// mirrored event-time columns stay consistent with its tuple timestamp.
Tuple ShiftTuple(const Tuple& base, Duration delta) {
  std::vector<Value> values = base.values();
  const SchemaPtr& schema = base.schema();
  if (schema != nullptr) {
    for (size_t i = 0; i < values.size() && i < schema->num_fields(); ++i) {
      if (schema->field(i).type == TypeId::kTimestamp &&
          values[i].type() == TypeId::kTimestamp) {
        values[i] = Value::Time(values[i].time_value() + delta);
      }
    }
  }
  return Tuple(base.schema(), std::move(values), base.ts() + delta);
}

}  // namespace

std::string CleaningStage::SmoothingKey(const Tuple& tuple) {
  std::string key;
  const SchemaPtr& schema = tuple.schema();
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (schema != nullptr && i < schema->num_fields() &&
        schema->field(i).type == TypeId::kTimestamp) {
      continue;  // event-time mirror columns differ between duplicates
    }
    key += tuple.value(i).ToString();
    key += '\x1f';
  }
  return key;
}

void CleaningStage::AppendStats(OperatorStatList* out) const {
  out->push_back({"clean_open_groups", static_cast<int64_t>(open_.size())});
  out->push_back({"clean_pending", static_cast<int64_t>(pending_.size())});
  out->push_back(
      {"clean_dups_suppressed", static_cast<int64_t>(dups_suppressed_)});
  out->push_back(
      {"clean_spurious_filtered", static_cast<int64_t>(spurious_filtered_)});
  out->push_back({"clean_interpolated", static_cast<int64_t>(interpolated_)});
  out->push_back({"clean_emitted", static_cast<int64_t>(emitted_)});
}

void CleaningStage::QueueEmission(size_t port, Tuple tuple) {
  ++emitted_;
  pending_.emplace(std::make_pair(tuple.ts(), pending_seq_++),
                   std::make_pair(port, std::move(tuple)));
}

Status CleaningStage::CloseGroup(Group group) {
  if (static_cast<int64_t>(group.count) < min_count_) {
    spurious_filtered_ += group.count;
    return Status::OK();
  }
  dups_suppressed_ += group.count - 1;
  const PortKey pk{group.port, group.key};
  KeyState& ks = key_state_[pk];
  if (ks.has_last) {
    const Duration gap = group.anchor.ts() - ks.last.ts();
    if (gap > 0) {
      if (horizon_ > 0) {
        // Configured period, or the per-key EMA estimate; no fills until
        // an estimate exists, and never more than kMaxFillsPerGap — a gap
        // needing more means the period estimate is degenerate.
        constexpr int64_t kMaxFillsPerGap = 1000;
        const Duration period = period_ > 0 ? period_ : ks.ema_gap_us;
        if (period > 0 && gap > period && gap <= horizon_ &&
            gap / period <= kMaxFillsPerGap) {
          for (Timestamp ts = ks.last.ts() + period; ts < group.anchor.ts();
               ts += period) {
            Tuple synth = ShiftTuple(ks.last, ts - ks.last.ts());
            synth.set_synthesized(true);
            ++interpolated_;
            QueueEmission(group.port, std::move(synth));
          }
        }
      }
      ks.ema_gap_us = ks.ema_gap_us == 0 ? gap : (gap + 3 * ks.ema_gap_us) / 4;
    }
  }
  ks.has_last = true;
  ks.last = group.anchor;
  QueueEmission(group.port, std::move(group.anchor));
  return Status::OK();
}

Status CleaningStage::CloseGroups() {
  while (!open_.empty() &&
         open_.begin()->first.first + window_ < frontier_) {
    Group group = std::move(open_.begin()->second);
    open_.erase(open_.begin());
    open_index_.erase(PortKey{group.port, group.key});
    ESLEV_RETURN_NOT_OK(CloseGroup(std::move(group)));
  }
  return Status::OK();
}

Status CleaningStage::Absorb(size_t port, const Tuple& tuple) {
  frontier_ = std::max(frontier_, tuple.ts());
  // Close passed groups first: if this key's group window ended before
  // this read, the read anchors a fresh group.
  ESLEV_RETURN_NOT_OK(CloseGroups());
  const PortKey pk{port, SmoothingKey(tuple)};
  auto it = open_index_.find(pk);
  if (it != open_index_.end()) {
    ++open_.at(it->second).count;
    return Status::OK();
  }
  const auto anchor_key = std::make_pair(tuple.ts(), open_seq_++);
  open_.emplace(anchor_key, Group{port, pk.second, tuple, 1});
  open_index_.emplace(pk, anchor_key);
  return Status::OK();
}

Status CleaningStage::ReleasePending(bool batched) {
  const Timestamp threshold = ReleaseThreshold();
  if (threshold == kMinTimestamp || pending_.empty()) return Status::OK();

  if (!batched) {
    while (!pending_.empty() && pending_.begin()->first.first <= threshold) {
      auto [port, tuple] = std::move(pending_.begin()->second);
      pending_.erase(pending_.begin());
      ESLEV_RETURN_NOT_OK(Forward(port, tuple));
    }
    return Status::OK();
  }

  TupleBatch run;
  size_t run_port = 0;
  while (!pending_.empty() && pending_.begin()->first.first <= threshold) {
    auto [port, tuple] = std::move(pending_.begin()->second);
    pending_.erase(pending_.begin());
    if (!run.empty() && port != run_port) {
      ESLEV_RETURN_NOT_OK(ForwardBatch(run_port, run));
      run.Clear();
    }
    run_port = port;
    run.Add(std::move(tuple));
  }
  if (!run.empty()) {
    ESLEV_RETURN_NOT_OK(ForwardBatch(run_port, run));
  }
  return Status::OK();
}

Status CleaningStage::ProcessTuple(size_t port, const Tuple& tuple) {
  ESLEV_RETURN_NOT_OK(Absorb(port, tuple));
  return ReleasePending(/*batched=*/false);
}

Status CleaningStage::ProcessBatch(size_t port, const TupleBatch& batch) {
  for (const Tuple& t : batch.tuples()) {
    ESLEV_RETURN_NOT_OK(Absorb(port, t));
  }
  return ReleasePending(/*batched=*/true);
}

Status CleaningStage::ProcessHeartbeat(Timestamp now) {
  frontier_ = std::max(frontier_, now);
  ESLEV_RETURN_NOT_OK(CloseGroups());
  ESLEV_RETURN_NOT_OK(ReleasePending(/*batched=*/false));
  const Timestamp threshold = ReleaseThreshold();
  if (threshold != kMinTimestamp && threshold > hb_out_) {
    hb_out_ = threshold;
    return ForwardHeartbeat(threshold);
  }
  return Status::OK();
}

Status CleaningStage::SaveState(BinaryEncoder* enc) const {
  enc->PutU64(open_seq_);
  enc->PutU64(pending_seq_);
  enc->PutI64(frontier_);
  enc->PutI64(hb_out_);
  enc->PutU64(dups_suppressed_);
  enc->PutU64(spurious_filtered_);
  enc->PutU64(interpolated_);
  enc->PutU64(emitted_);
  enc->PutU32(static_cast<uint32_t>(open_.size()));
  for (const auto& [key, group] : open_) {
    enc->PutU64(key.second);
    enc->PutU32(static_cast<uint32_t>(group.port));
    enc->PutU64(group.count);
    enc->PutTuple(group.anchor);
    enc->PutBool(group.anchor.synthesized());
  }
  enc->PutU32(static_cast<uint32_t>(key_state_.size()));
  for (const auto& [pk, ks] : key_state_) {
    enc->PutU32(static_cast<uint32_t>(pk.first));
    enc->PutTuple(ks.last);
    enc->PutI64(ks.ema_gap_us);
  }
  enc->PutU32(static_cast<uint32_t>(pending_.size()));
  for (const auto& [key, entry] : pending_) {
    enc->PutU64(key.second);
    enc->PutU32(static_cast<uint32_t>(entry.first));
    enc->PutTuple(entry.second);
    enc->PutBool(entry.second.synthesized());
  }
  return Status::OK();
}

Status CleaningStage::RestoreState(BinaryDecoder* dec) {
  ESLEV_ASSIGN_OR_RETURN(open_seq_, dec->GetU64());
  ESLEV_ASSIGN_OR_RETURN(pending_seq_, dec->GetU64());
  ESLEV_ASSIGN_OR_RETURN(frontier_, dec->GetI64());
  ESLEV_ASSIGN_OR_RETURN(hb_out_, dec->GetI64());
  ESLEV_ASSIGN_OR_RETURN(dups_suppressed_, dec->GetU64());
  ESLEV_ASSIGN_OR_RETURN(spurious_filtered_, dec->GetU64());
  ESLEV_ASSIGN_OR_RETURN(interpolated_, dec->GetU64());
  ESLEV_ASSIGN_OR_RETURN(emitted_, dec->GetU64());
  open_.clear();
  open_index_.clear();
  key_state_.clear();
  pending_.clear();
  ESLEV_ASSIGN_OR_RETURN(uint32_t n_open, dec->GetU32());
  for (uint32_t i = 0; i < n_open; ++i) {
    ESLEV_ASSIGN_OR_RETURN(uint64_t seq, dec->GetU64());
    ESLEV_ASSIGN_OR_RETURN(uint32_t port, dec->GetU32());
    ESLEV_ASSIGN_OR_RETURN(uint64_t count, dec->GetU64());
    ESLEV_ASSIGN_OR_RETURN(Tuple anchor, dec->GetTuple());
    ESLEV_ASSIGN_OR_RETURN(bool synthesized, dec->GetBool());
    anchor.set_synthesized(synthesized);
    const std::string key = SmoothingKey(anchor);
    const auto anchor_key = std::make_pair(anchor.ts(), seq);
    open_index_.emplace(PortKey{port, key}, anchor_key);
    open_.emplace(anchor_key, Group{port, key, std::move(anchor), count});
  }
  ESLEV_ASSIGN_OR_RETURN(uint32_t n_keys, dec->GetU32());
  for (uint32_t i = 0; i < n_keys; ++i) {
    ESLEV_ASSIGN_OR_RETURN(uint32_t port, dec->GetU32());
    ESLEV_ASSIGN_OR_RETURN(Tuple last, dec->GetTuple());
    ESLEV_ASSIGN_OR_RETURN(int64_t ema, dec->GetI64());
    KeyState ks;
    ks.has_last = true;
    ks.last = std::move(last);
    ks.ema_gap_us = ema;
    key_state_.emplace(PortKey{port, SmoothingKey(ks.last)}, std::move(ks));
  }
  ESLEV_ASSIGN_OR_RETURN(uint32_t n_pending, dec->GetU32());
  for (uint32_t i = 0; i < n_pending; ++i) {
    ESLEV_ASSIGN_OR_RETURN(uint64_t seq, dec->GetU64());
    ESLEV_ASSIGN_OR_RETURN(uint32_t port, dec->GetU32());
    ESLEV_ASSIGN_OR_RETURN(Tuple tuple, dec->GetTuple());
    ESLEV_ASSIGN_OR_RETURN(bool synthesized, dec->GetBool());
    tuple.set_synthesized(synthesized);
    pending_.emplace(std::make_pair(tuple.ts(), seq),
                     std::make_pair(static_cast<size_t>(port),
                                    std::move(tuple)));
  }
  return Status::OK();
}

}  // namespace eslev
