// CleaningStage: RFID read cleaning in the spirit of Cao et al.
// ("Distributed Inference and Query Processing for RFID Tracking and
// Monitoring") — duplicate-read suppression, spurious-read filtering,
// and missed-read interpolation, applied per tag *after* the reorder
// stage has restored timestamp order (DESIGN.md §15).
//
// Smoothing model: reads with identical non-timestamp column values (the
// smoothing key — reader + tag for the paper's reading schema) arriving
// within [anchor, anchor + window] of the group's first read form one
// smoothing group. A group closes once the input frontier passes
// anchor + window:
//   - count >= min_read_count: the anchor read is emitted once;
//     the remaining copies are counted as suppressed duplicates.
//   - count <  min_read_count: the whole group is dropped as spurious.
// Groups close in anchor order, so the cleaned output stays in timestamp
// order across all keys.
//
// Missed-read interpolation: when two consecutive emitted reads of one
// key are separated by a gap in (period, interpolation_horizon], the gap
// is filled with synthesized copies of the earlier read at `period`
// spacing — timestamps (and timestamp-typed columns) shifted, provenance
// bit set (Tuple::synthesized). Because a synthesized read is created
// only when the *later* group closes, all emissions pass through a
// hold-back buffer released at frontier - window - horizon, which keeps
// the output sorted. The period is the configured one, or, when 0, a
// per-key exponential moving average of observed inter-read gaps (the
// "adaptive" per-tag window).

#ifndef ESLEV_INGEST_CLEANING_STAGE_H_
#define ESLEV_INGEST_CLEANING_STAGE_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "ingest/ingest_options.h"
#include "ingest/stage.h"

namespace eslev {

class CleaningStage : public IngestStage {
 public:
  explicit CleaningStage(const IngestOptions& options)
      : window_(options.smoothing_window),
        min_count_(options.min_read_count),
        horizon_(options.interpolation_horizon),
        period_(options.interpolation_period) {}

  uint64_t dups_suppressed() const { return dups_suppressed_; }
  uint64_t spurious_filtered() const { return spurious_filtered_; }
  uint64_t interpolated() const { return interpolated_; }
  uint64_t emitted() const { return emitted_; }
  size_t open_groups() const { return open_.size(); }
  size_t pending() const { return pending_.size(); }

  void AppendStats(OperatorStatList* out) const override;
  Status SaveState(BinaryEncoder* enc) const override;
  Status RestoreState(BinaryDecoder* dec) override;

 protected:
  Status ProcessTuple(size_t port, const Tuple& tuple) override;
  /// Native batch path: runs the same per-tuple grouping, then releases
  /// the closed emissions as per-port runs in one pass.
  Status ProcessBatch(size_t port, const TupleBatch& batch) override;
  Status ProcessHeartbeat(Timestamp now) override;

 private:
  using PortKey = std::pair<size_t, std::string>;
  struct Group {
    size_t port;
    std::string key;
    Tuple anchor;
    uint64_t count = 0;
  };
  struct KeyState {
    bool has_last = false;
    Tuple last;               // last emitted observed (non-synthesized) read
    int64_t ema_gap_us = 0;   // adaptive read-period estimate
  };

  /// Smoothing key: every non-timestamp-typed column value, concatenated.
  static std::string SmoothingKey(const Tuple& tuple);

  /// Absorb one input read into its smoothing group (opens one if needed,
  /// after closing groups the frontier has passed).
  Status Absorb(size_t port, const Tuple& tuple);
  /// Close every open group with anchor + window < frontier, queueing
  /// emissions (anchor reads + interpolated fills) into the hold-back
  /// buffer in timestamp order.
  Status CloseGroups();
  Status CloseGroup(Group group);
  /// Queue one emission into the hold-back buffer.
  void QueueEmission(size_t port, Tuple tuple);
  /// Release held-back emissions at or below frontier - window - horizon.
  Status ReleasePending(bool batched);
  Timestamp ReleaseThreshold() const {
    if (frontier_ == kMinTimestamp) return kMinTimestamp;
    return frontier_ - window_ - horizon_;
  }

  Duration window_;
  int64_t min_count_;
  Duration horizon_;
  Duration period_;

  // Open groups in anchor order; the index finds a key's open group.
  std::map<std::pair<Timestamp, uint64_t>, Group> open_;
  std::map<PortKey, std::pair<Timestamp, uint64_t>> open_index_;
  std::map<PortKey, KeyState> key_state_;
  // Hold-back buffer: (ts, seq) -> (port, emission).
  std::map<std::pair<Timestamp, uint64_t>, std::pair<size_t, Tuple>> pending_;
  uint64_t open_seq_ = 0;
  uint64_t pending_seq_ = 0;
  Timestamp frontier_ = kMinTimestamp;  // max input ts / heartbeat seen
  Timestamp hb_out_ = kMinTimestamp;
  uint64_t dups_suppressed_ = 0;
  uint64_t spurious_filtered_ = 0;
  uint64_t interpolated_ = 0;
  uint64_t emitted_ = 0;
};

}  // namespace eslev

#endif  // ESLEV_INGEST_CLEANING_STAGE_H_
