#include "ingest/ingest_options.h"

#include "common/env.h"

namespace eslev {

namespace {

Status CheckDuration(const char* name, Duration value) {
  if (value < 0 || value > kMaxIngestDurationUs) {
    return Status::Invalid(std::string(name) + "=" + std::to_string(value) +
                           " is out of range; accepted range is [0, " +
                           std::to_string(kMaxIngestDurationUs) + "] µs");
  }
  return Status::OK();
}

}  // namespace

Status ValidateIngestOptions(const IngestOptions& options) {
  ESLEV_RETURN_NOT_OK(
      CheckDuration("ingest.lateness_bound", options.lateness_bound));
  ESLEV_RETURN_NOT_OK(
      CheckDuration("ingest.smoothing_window", options.smoothing_window));
  ESLEV_RETURN_NOT_OK(CheckDuration("ingest.interpolation_horizon",
                                    options.interpolation_horizon));
  ESLEV_RETURN_NOT_OK(CheckDuration("ingest.interpolation_period",
                                    options.interpolation_period));
  ESLEV_RETURN_NOT_OK(
      CheckDuration("ingest.declared_disorder", options.declared_disorder));
  if (options.min_read_count < 1 ||
      options.min_read_count > kMaxIngestMinCount) {
    return Status::Invalid(
        "ingest.min_read_count=" + std::to_string(options.min_read_count) +
        " is out of range; accepted range is [1, " +
        std::to_string(kMaxIngestMinCount) + "]");
  }
  if (options.interpolation_horizon > 0 && options.smoothing_window == 0) {
    return Status::Invalid(
        "ingest.interpolation_horizon requires a nonzero smoothing_window "
        "(interpolation is part of the cleaning stage)");
  }
  return Status::OK();
}

Result<IngestOptions> ResolveIngestOptions(const IngestOptions& configured) {
  IngestOptions resolved = configured;
  ESLEV_ASSIGN_OR_RETURN(
      auto lateness,
      GetEnvInt64(kIngestLatenessEnvVar, 0, kMaxIngestDurationUs));
  if (lateness) resolved.lateness_bound = *lateness;
  ESLEV_ASSIGN_OR_RETURN(
      auto smoothing,
      GetEnvInt64(kIngestSmoothingEnvVar, 0, kMaxIngestDurationUs));
  if (smoothing) resolved.smoothing_window = *smoothing;
  ESLEV_ASSIGN_OR_RETURN(auto min_count,
                         GetEnvInt64(kIngestMinCountEnvVar, 1,
                                     kMaxIngestMinCount));
  if (min_count) resolved.min_read_count = *min_count;
  ESLEV_ASSIGN_OR_RETURN(
      auto horizon,
      GetEnvInt64(kIngestInterpHorizonEnvVar, 0, kMaxIngestDurationUs));
  if (horizon) resolved.interpolation_horizon = *horizon;
  ESLEV_ASSIGN_OR_RETURN(
      auto period,
      GetEnvInt64(kIngestInterpPeriodEnvVar, 0, kMaxIngestDurationUs));
  if (period) resolved.interpolation_period = *period;
  ESLEV_ASSIGN_OR_RETURN(
      auto declared,
      GetEnvInt64(kIngestDeclaredDisorderEnvVar, 0, kMaxIngestDurationUs));
  if (declared) resolved.declared_disorder = *declared;
  ESLEV_RETURN_NOT_OK(ValidateIngestOptions(resolved));
  return resolved;
}

}  // namespace eslev
