// Ingest subsystem knobs (DESIGN.md §15): the bounded reorder stage and
// the RFID cleaning stage that sit between stream sources and the
// engine's pipelines. Every knob has an ESLEV_INGEST_* environment
// override validated like ESLEV_BATCH_SIZE — malformed values surface as
// an error from the first engine API call instead of being ignored.

#ifndef ESLEV_INGEST_INGEST_OPTIONS_H_
#define ESLEV_INGEST_INGEST_OPTIONS_H_

#include <cstdint>

#include "common/result.h"
#include "common/time.h"

namespace eslev {

struct IngestOptions {
  /// Reorder stage (CEDR-style bounded disorder): events are buffered
  /// until the maximum observed event time has passed them by this much,
  /// then released in timestamp order. An event arriving displaced by
  /// exactly the bound is still accepted; anything later is counted as a
  /// late drop (and handed to the late handler when one is installed).
  /// 0 disables the stage — input must already be in order.
  Duration lateness_bound = 0;

  /// Cleaning stage (Cao et al.-style smoothing): reads with identical
  /// non-timestamp values arriving within [anchor, anchor + window] are
  /// one smoothing group. 0 disables the stage.
  Duration smoothing_window = 0;

  /// Minimum copies a smoothing group needs to be believed. Groups with
  /// fewer reads are dropped as spurious; groups with at least this many
  /// emit their anchor read once (duplicates suppressed). 1 = pure
  /// duplicate suppression, no spurious filtering.
  int64_t min_read_count = 1;

  /// Missed-read interpolation: when consecutive emitted reads of one
  /// tag are separated by a gap no larger than this horizon (but larger
  /// than the read period), the gap is filled with synthesized reads
  /// carrying a provenance bit (Tuple::synthesized). 0 disables
  /// interpolation.
  Duration interpolation_horizon = 0;

  /// Spacing of synthesized reads. 0 = adaptive: a per-tag exponential
  /// moving average of observed inter-read gaps.
  Duration interpolation_period = 0;

  /// Declared upper bound on input disorder, for static analysis only
  /// (the disorder-hazard lint rule): a session that declares nonzero
  /// disorder but runs SEQ queries without a covering lateness bound gets
  /// a warning. Does not affect execution.
  Duration declared_disorder = 0;

  /// \brief True when any ingest stage is active.
  bool enabled() const { return lateness_bound > 0 || smoothing_window > 0; }
};

/// \brief Resolve `configured` against the ESLEV_INGEST_* environment
/// overrides and validate every field. Range errors and malformed
/// environment values come back as Invalid.
Result<IngestOptions> ResolveIngestOptions(const IngestOptions& configured);

/// \brief Validate `options` without reading the environment (embedded
/// engines — shard workers, standbys — resolve once at the front end).
Status ValidateIngestOptions(const IngestOptions& options);

// Environment variable names (tests, docs).
inline constexpr const char* kIngestLatenessEnvVar = "ESLEV_INGEST_LATENESS_US";
inline constexpr const char* kIngestSmoothingEnvVar =
    "ESLEV_INGEST_SMOOTHING_US";
inline constexpr const char* kIngestMinCountEnvVar = "ESLEV_INGEST_MIN_COUNT";
inline constexpr const char* kIngestInterpHorizonEnvVar =
    "ESLEV_INGEST_INTERP_HORIZON_US";
inline constexpr const char* kIngestInterpPeriodEnvVar =
    "ESLEV_INGEST_INTERP_PERIOD_US";
inline constexpr const char* kIngestDeclaredDisorderEnvVar =
    "ESLEV_INGEST_DECLARED_DISORDER_US";

/// \brief Upper bound for every duration knob: 24 hours in microseconds.
/// Far beyond any sane buffering bound, but finite so arithmetic on
/// `frontier - bound` can never overflow.
inline constexpr int64_t kMaxIngestDurationUs =
    int64_t{24} * 60 * 60 * 1000 * 1000;

/// \brief Upper bound for min_read_count.
inline constexpr int64_t kMaxIngestMinCount = 1 << 20;

}  // namespace eslev

#endif  // ESLEV_INGEST_INGEST_OPTIONS_H_
