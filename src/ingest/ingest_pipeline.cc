#include "ingest/ingest_pipeline.h"

namespace eslev {

IngestPipeline::IngestPipeline(const IngestOptions& options)
    : options_(options) {
  if (options_.lateness_bound > 0) {
    reorder_ = std::make_unique<ReorderStage>(options_.lateness_bound);
    reorder_->set_label("IngestReorder");
  }
  if (options_.smoothing_window > 0) {
    cleaning_ = std::make_unique<CleaningStage>(options_);
    cleaning_->set_label("IngestClean");
  }
  delivery_.set_label("IngestDelivery");
  // Chain: reorder -> cleaning -> delivery, skipping absent stages.
  Operator* tail = &delivery_;
  if (cleaning_ != nullptr) {
    cleaning_->set_next(tail);
    tail = cleaning_.get();
  }
  if (reorder_ != nullptr) {
    reorder_->set_next(tail);
    tail = reorder_.get();
  }
  head_ = tail;
}

size_t IngestPipeline::PortFor(const std::string& key) {
  auto it = port_index_.find(key);
  if (it != port_index_.end()) return it->second;
  const size_t port = port_names_.size();
  port_names_.push_back(key);
  port_index_.emplace(key, port);
  return port;
}

const std::string& IngestPipeline::port_name(size_t port) const {
  static const std::string kEmpty;
  return port < port_names_.size() ? port_names_[port] : kEmpty;
}

void IngestPipeline::SetLateHandler(
    std::function<Status(const std::string& stream, const Tuple&)> handler) {
  if (reorder_ == nullptr) return;
  if (!handler) {
    reorder_->set_late_handler(nullptr);
    return;
  }
  reorder_->set_late_handler(
      [this, handler = std::move(handler)](size_t port, const Tuple& tuple) {
        return handler(port_name(port), tuple);
      });
}

size_t IngestPipeline::buffered() const {
  size_t n = 0;
  if (reorder_ != nullptr) n += reorder_->depth();
  if (cleaning_ != nullptr) n += cleaning_->pending();
  return n;
}

std::vector<const Operator*> IngestPipeline::stages() const {
  std::vector<const Operator*> out;
  if (reorder_ != nullptr) out.push_back(reorder_.get());
  if (cleaning_ != nullptr) out.push_back(cleaning_.get());
  out.push_back(&delivery_);
  return out;
}

void IngestPipeline::AppendMetrics(MetricsSnapshot* snap) const {
  snap->gauges["ingest.enabled"] = 1;
  snap->gauges["ingest.lateness_us"] = options_.lateness_bound;
  snap->gauges["ingest.smoothing_us"] = options_.smoothing_window;
  snap->gauges["ingest.ports"] = static_cast<int64_t>(port_names_.size());
  if (reorder_ != nullptr) {
    snap->gauges["ingest.reorder.depth"] =
        static_cast<int64_t>(reorder_->depth());
    snap->gauges["ingest.reorder.max_disorder_us"] =
        reorder_->max_disorder_us();
    snap->counters["ingest.reorder.late_dropped"] = reorder_->late_dropped();
    snap->counters["ingest.reorder.released"] = reorder_->released();
  }
  if (cleaning_ != nullptr) {
    snap->gauges["ingest.clean.open_groups"] =
        static_cast<int64_t>(cleaning_->open_groups());
    snap->gauges["ingest.clean.pending"] =
        static_cast<int64_t>(cleaning_->pending());
    snap->counters["ingest.clean.dups_suppressed"] =
        cleaning_->dups_suppressed();
    snap->counters["ingest.clean.spurious_filtered"] =
        cleaning_->spurious_filtered();
    snap->counters["ingest.clean.interpolated"] = cleaning_->interpolated();
    snap->counters["ingest.clean.emitted"] = cleaning_->emitted();
  }
}

std::string IngestPipeline::ExplainLine() const {
  std::string out = "Ingest:";
  if (reorder_ != nullptr) {
    out += " reorder[lateness_us=" + std::to_string(options_.lateness_bound) +
           " depth=" + std::to_string(reorder_->depth()) +
           " max_disorder_us=" + std::to_string(reorder_->max_disorder_us()) +
           " late_dropped=" + std::to_string(reorder_->late_dropped()) + "]";
  }
  if (cleaning_ != nullptr) {
    out += " clean[window_us=" + std::to_string(options_.smoothing_window) +
           " min_count=" + std::to_string(options_.min_read_count) +
           " dups_suppressed=" + std::to_string(cleaning_->dups_suppressed()) +
           " spurious_filtered=" +
           std::to_string(cleaning_->spurious_filtered()) +
           " interpolated=" + std::to_string(cleaning_->interpolated()) + "]";
  }
  return out;
}

Status IngestPipeline::SaveState(BinaryEncoder* enc) const {
  enc->PutU32(static_cast<uint32_t>(port_names_.size()));
  for (const std::string& name : port_names_) {
    enc->PutString(name);
  }
  if (reorder_ != nullptr) {
    ESLEV_RETURN_NOT_OK(reorder_->SaveState(enc));
  }
  if (cleaning_ != nullptr) {
    ESLEV_RETURN_NOT_OK(cleaning_->SaveState(enc));
  }
  return Status::OK();
}

Status IngestPipeline::RestoreState(BinaryDecoder* dec) {
  ESLEV_ASSIGN_OR_RETURN(uint32_t n_ports, dec->GetU32());
  port_names_.clear();
  port_index_.clear();
  for (uint32_t i = 0; i < n_ports; ++i) {
    ESLEV_ASSIGN_OR_RETURN(std::string name, dec->GetString());
    port_index_.emplace(name, port_names_.size());
    port_names_.push_back(std::move(name));
  }
  if (reorder_ != nullptr) {
    ESLEV_RETURN_NOT_OK(reorder_->RestoreState(dec));
  }
  if (cleaning_ != nullptr) {
    ESLEV_RETURN_NOT_OK(cleaning_->RestoreState(dec));
  }
  return Status::OK();
}

}  // namespace eslev
