// IngestPipeline: composition of the ingest stages (DESIGN.md §15).
//
//   sources --> [ReorderStage] --> [CleaningStage] --> IngestDelivery --> engine
//
// Each stage is optional (lateness_bound > 0 enables reordering,
// smoothing_window > 0 enables cleaning); the pipeline owns whichever are
// active plus the terminal delivery adapter, assigns one input port per
// source stream (first-offer order, checkpoint-stable), and exposes
// SaveState/RestoreState covering all buffered stage state so
// checkpoints, WAL replay, and crash recovery see the ingest buffers.

#ifndef ESLEV_INGEST_INGEST_PIPELINE_H_
#define ESLEV_INGEST_INGEST_PIPELINE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "ingest/cleaning_stage.h"
#include "ingest/ingest_options.h"
#include "ingest/reorder_stage.h"

namespace eslev {

/// \brief Terminal adapter: hands ordered, cleaned tuples (and held-back
/// heartbeats) to the embedding engine through callbacks. Has a native
/// batch path — released runs reach the engine as whole batches, so the
/// ingest chain never inflates batch.fallback_tuples.
class IngestDelivery : public Operator {
 public:
  using TupleFn = std::function<Status(size_t port, const Tuple&)>;
  using BatchFn = std::function<Status(size_t port, const TupleBatch&)>;
  using HeartbeatFn = std::function<Status(Timestamp now)>;

  void Bind(TupleFn on_tuple, BatchFn on_batch, HeartbeatFn on_heartbeat) {
    tuple_fn_ = std::move(on_tuple);
    batch_fn_ = std::move(on_batch);
    heartbeat_fn_ = std::move(on_heartbeat);
  }

 protected:
  Status ProcessTuple(size_t port, const Tuple& tuple) override {
    return tuple_fn_ ? tuple_fn_(port, tuple) : Status::OK();
  }
  Status ProcessBatch(size_t port, const TupleBatch& batch) override {
    return batch_fn_ ? batch_fn_(port, batch) : Status::OK();
  }
  Status ProcessHeartbeat(Timestamp now) override {
    return heartbeat_fn_ ? heartbeat_fn_(now) : Status::OK();
  }

 private:
  TupleFn tuple_fn_;
  BatchFn batch_fn_;
  HeartbeatFn heartbeat_fn_;
};

class IngestPipeline {
 public:
  /// \brief `options` must be resolved/validated and enabled().
  explicit IngestPipeline(const IngestOptions& options);

  const IngestOptions& options() const { return options_; }

  /// \brief Input port for the stream named `key` (lower-cased catalog
  /// key), assigned on first use in offer order.
  size_t PortFor(const std::string& key);
  /// \brief Stream key owning `port` ("" when unassigned).
  const std::string& port_name(size_t port) const;
  size_t num_ports() const { return port_names_.size(); }

  /// \brief Engine-side delivery of ordered, cleaned output.
  void BindDelivery(IngestDelivery::TupleFn on_tuple,
                    IngestDelivery::BatchFn on_batch,
                    IngestDelivery::HeartbeatFn on_heartbeat) {
    delivery_.Bind(std::move(on_tuple), std::move(on_batch),
                   std::move(on_heartbeat));
  }

  /// \brief Side channel for events beyond the lateness bound
  /// (stream key + tuple). When unset they are counted and dropped.
  void SetLateHandler(
      std::function<Status(const std::string& stream, const Tuple&)> handler);

  Status Offer(size_t port, const Tuple& tuple) {
    return head_->OnTuple(port, tuple);
  }
  Status OfferBatch(size_t port, const TupleBatch& batch) {
    return head_->OnBatch(port, batch);
  }
  Status Heartbeat(Timestamp now) { return head_->OnHeartbeat(now); }

  /// \brief Tuples currently buffered inside the ingest chain.
  size_t buffered() const;

  const ReorderStage* reorder() const { return reorder_.get(); }
  const CleaningStage* cleaning() const { return cleaning_.get(); }
  /// \brief Active stages + delivery, for batch-fallback accounting.
  std::vector<const Operator*> stages() const;

  /// \brief ingest.* counters and gauges (DESIGN.md §15).
  void AppendMetrics(MetricsSnapshot* snap) const;
  /// \brief One-line live summary for EXPLAIN ANALYZE.
  std::string ExplainLine() const;

  Status SaveState(BinaryEncoder* enc) const;
  Status RestoreState(BinaryDecoder* dec);

 private:
  IngestOptions options_;
  std::unique_ptr<ReorderStage> reorder_;
  std::unique_ptr<CleaningStage> cleaning_;
  IngestDelivery delivery_;
  Operator* head_ = nullptr;
  std::vector<std::string> port_names_;
  std::map<std::string, size_t> port_index_;
};

}  // namespace eslev

#endif  // ESLEV_INGEST_INGEST_PIPELINE_H_
