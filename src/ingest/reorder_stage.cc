#include "ingest/reorder_stage.h"

#include <algorithm>

namespace eslev {

void ReorderStage::AppendStats(OperatorStatList* out) const {
  out->push_back({"reorder_depth", static_cast<int64_t>(buffer_.size())});
  out->push_back({"reorder_max_disorder_us", max_disorder_us_});
  out->push_back({"reorder_late_dropped", static_cast<int64_t>(late_dropped_)});
  out->push_back({"reorder_released", static_cast<int64_t>(released_)});
}

Result<bool> ReorderStage::Insert(size_t port, const Tuple& tuple) {
  if (max_seen_ != kMinTimestamp && tuple.ts() < max_seen_) {
    max_disorder_us_ = std::max(max_disorder_us_, max_seen_ - tuple.ts());
  }
  if (tuple.ts() < EffectiveFrontier()) {
    ++late_dropped_;
    if (late_handler_) {
      ESLEV_RETURN_NOT_OK(late_handler_(port, tuple));
    }
    return false;
  }
  max_seen_ = std::max(max_seen_, tuple.ts());
  buffer_.emplace(std::make_pair(tuple.ts(), next_seq_++),
                  Entry{port, tuple});
  return true;
}

Status ReorderStage::Release(bool batched) {
  const Timestamp threshold = EffectiveFrontier();
  frontier_ = std::max(frontier_, threshold);
  if (buffer_.empty()) return Status::OK();

  if (!batched) {
    while (!buffer_.empty() && buffer_.begin()->first.first <= threshold) {
      Entry entry = std::move(buffer_.begin()->second);
      buffer_.erase(buffer_.begin());
      ++released_;
      ESLEV_RETURN_NOT_OK(Forward(entry.port, entry.tuple));
    }
    return Status::OK();
  }

  // Batch path: forward runs of consecutive same-port releases as one
  // crossing each, preserving the exact per-tuple release order.
  TupleBatch run;
  size_t run_port = 0;
  while (!buffer_.empty() && buffer_.begin()->first.first <= threshold) {
    Entry entry = std::move(buffer_.begin()->second);
    buffer_.erase(buffer_.begin());
    ++released_;
    if (!run.empty() && entry.port != run_port) {
      ESLEV_RETURN_NOT_OK(ForwardBatch(run_port, run));
      run.Clear();
    }
    run_port = entry.port;
    run.Add(std::move(entry.tuple));
  }
  if (!run.empty()) {
    ESLEV_RETURN_NOT_OK(ForwardBatch(run_port, run));
  }
  return Status::OK();
}

Status ReorderStage::ProcessTuple(size_t port, const Tuple& tuple) {
  ESLEV_ASSIGN_OR_RETURN(bool buffered, Insert(port, tuple));
  if (!buffered) return Status::OK();
  return Release(/*batched=*/false);
}

Status ReorderStage::ProcessBatch(size_t port, const TupleBatch& batch) {
  for (const Tuple& t : batch.tuples()) {
    ESLEV_ASSIGN_OR_RETURN(bool buffered, Insert(port, t));
    (void)buffered;
  }
  return Release(/*batched=*/true);
}

Status ReorderStage::ProcessHeartbeat(Timestamp now) {
  max_seen_ = std::max(max_seen_, now);
  ESLEV_RETURN_NOT_OK(Release(/*batched=*/false));
  const Timestamp frontier = EffectiveFrontier();
  if (frontier != kMinTimestamp && frontier > hb_out_) {
    hb_out_ = frontier;
    return ForwardHeartbeat(frontier);
  }
  return Status::OK();
}

Status ReorderStage::SaveState(BinaryEncoder* enc) const {
  enc->PutU64(next_seq_);
  enc->PutI64(max_seen_);
  enc->PutI64(frontier_);
  enc->PutI64(hb_out_);
  enc->PutU64(late_dropped_);
  enc->PutU64(released_);
  enc->PutI64(max_disorder_us_);
  enc->PutU32(static_cast<uint32_t>(buffer_.size()));
  for (const auto& [key, entry] : buffer_) {
    enc->PutU64(key.second);
    enc->PutU32(static_cast<uint32_t>(entry.port));
    enc->PutTuple(entry.tuple);
    enc->PutBool(entry.tuple.synthesized());
  }
  return Status::OK();
}

Status ReorderStage::RestoreState(BinaryDecoder* dec) {
  ESLEV_ASSIGN_OR_RETURN(next_seq_, dec->GetU64());
  ESLEV_ASSIGN_OR_RETURN(max_seen_, dec->GetI64());
  ESLEV_ASSIGN_OR_RETURN(frontier_, dec->GetI64());
  ESLEV_ASSIGN_OR_RETURN(hb_out_, dec->GetI64());
  ESLEV_ASSIGN_OR_RETURN(late_dropped_, dec->GetU64());
  ESLEV_ASSIGN_OR_RETURN(released_, dec->GetU64());
  ESLEV_ASSIGN_OR_RETURN(max_disorder_us_, dec->GetI64());
  ESLEV_ASSIGN_OR_RETURN(uint32_t n, dec->GetU32());
  buffer_.clear();
  for (uint32_t i = 0; i < n; ++i) {
    ESLEV_ASSIGN_OR_RETURN(uint64_t seq, dec->GetU64());
    ESLEV_ASSIGN_OR_RETURN(uint32_t port, dec->GetU32());
    ESLEV_ASSIGN_OR_RETURN(Tuple tuple, dec->GetTuple());
    ESLEV_ASSIGN_OR_RETURN(bool synthesized, dec->GetBool());
    tuple.set_synthesized(synthesized);
    buffer_.emplace(std::make_pair(tuple.ts(), seq),
                    Entry{port, std::move(tuple)});
  }
  return Status::OK();
}

}  // namespace eslev
