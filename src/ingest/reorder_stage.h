// ReorderStage: bounded disorder tolerance ahead of the CEP core
// (DESIGN.md §15). CEDR-style lateness bound: an event may arrive
// displaced by at most `lateness_bound` behind the maximum event time
// seen so far. Events are buffered and re-emitted in (timestamp, arrival)
// order once the observed maximum has passed them by the bound; an event
// displaced by *exactly* the bound is still accepted, anything later is
// counted (and optionally side-channeled) as a late drop — it can no
// longer be emitted without violating the order already released.

#ifndef ESLEV_INGEST_REORDER_STAGE_H_
#define ESLEV_INGEST_REORDER_STAGE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <utility>

#include "ingest/stage.h"

namespace eslev {

class ReorderStage : public IngestStage {
 public:
  explicit ReorderStage(Duration lateness_bound) : bound_(lateness_bound) {}

  /// \brief Side channel for events beyond the lateness bound. When
  /// unset, late events are counted and dropped.
  using LateHandler = std::function<Status(size_t port, const Tuple&)>;
  void set_late_handler(LateHandler handler) {
    late_handler_ = std::move(handler);
  }

  /// \brief Everything at or below this timestamp has been released;
  /// arrivals below it are late.
  Timestamp release_frontier() const { return EffectiveFrontier(); }
  Timestamp max_seen() const { return max_seen_; }
  size_t depth() const { return buffer_.size(); }
  uint64_t late_dropped() const { return late_dropped_; }
  uint64_t released() const { return released_; }
  /// \brief Largest (max_seen - arrival ts) observed, late drops included.
  int64_t max_disorder_us() const { return max_disorder_us_; }

  void AppendStats(OperatorStatList* out) const override;
  Status SaveState(BinaryEncoder* enc) const override;
  Status RestoreState(BinaryDecoder* dec) override;

 protected:
  Status ProcessTuple(size_t port, const Tuple& tuple) override;
  /// Native batch path (DESIGN.md §13): inserts the whole run, then does
  /// one release pass forwarding per-port runs as batches. Byte-identical
  /// to per-tuple processing — the late check uses the running effective
  /// frontier, so mid-batch frontier advances drop exactly the same
  /// events either way.
  Status ProcessBatch(size_t port, const TupleBatch& batch) override;
  Status ProcessHeartbeat(Timestamp now) override;

 private:
  struct Entry {
    size_t port;
    Tuple tuple;
  };

  /// The frontier implied by the current max_seen (monotone because
  /// max_seen is): release threshold for buffered events and the late
  /// cutoff for arrivals.
  Timestamp EffectiveFrontier() const {
    if (max_seen_ == kMinTimestamp) return frontier_;
    return std::max(frontier_, max_seen_ - bound_);
  }

  /// Late-check + buffer insert; no release. Returns true when buffered.
  Result<bool> Insert(size_t port, const Tuple& tuple);
  /// Release all buffered events at or below the effective frontier,
  /// forwarding per-tuple (tuple path) or as per-port runs (batch path).
  Status Release(bool batched);

  Duration bound_;
  LateHandler late_handler_;
  // (ts, arrival seq) -> entry: release order, ties broken by arrival.
  std::map<std::pair<Timestamp, uint64_t>, Entry> buffer_;
  uint64_t next_seq_ = 0;
  Timestamp max_seen_ = kMinTimestamp;
  Timestamp frontier_ = kMinTimestamp;
  Timestamp hb_out_ = kMinTimestamp;
  uint64_t late_dropped_ = 0;
  uint64_t released_ = 0;
  int64_t max_disorder_us_ = 0;
};

}  // namespace eslev

#endif  // ESLEV_INGEST_REORDER_STAGE_H_
