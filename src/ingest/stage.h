// IngestStage: shared base of the ingest operators (DESIGN.md §15).
//
// Ingest stages are Operators — they reuse the dispatch-boundary counters
// and the SaveState/RestoreState contract — but they are not wired through
// the sink mechanism: a stage handles tuples from *many* source streams,
// one input port per stream, and must preserve each tuple's port on the
// way out (Operator::Emit fans out to fixed sink ports). Stages therefore
// chain through a single `next` operator and forward with the port
// attached. The chain terminates in an IngestDelivery adapter
// (ingest_pipeline.h) that hands ordered, cleaned tuples to the engine.

#ifndef ESLEV_INGEST_STAGE_H_
#define ESLEV_INGEST_STAGE_H_

#include "stream/operator.h"

namespace eslev {

class IngestStage : public Operator {
 public:
  /// \brief Connect the downstream stage (or delivery adapter). Not
  /// owned; the pipeline owns all stages.
  void set_next(Operator* next) { next_ = next; }

 protected:
  Status Forward(size_t port, const Tuple& tuple) {
    return next_ == nullptr ? Status::OK() : next_->OnTuple(port, tuple);
  }
  Status ForwardBatch(size_t port, const TupleBatch& batch) {
    return next_ == nullptr ? Status::OK() : next_->OnBatch(port, batch);
  }
  Status ForwardHeartbeat(Timestamp now) {
    return next_ == nullptr ? Status::OK() : next_->OnHeartbeat(now);
  }

 private:
  Operator* next_ = nullptr;
};

}  // namespace eslev

#endif  // ESLEV_INGEST_STAGE_H_
