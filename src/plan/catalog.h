// Catalog: name resolution interface the planner uses to find streams,
// tables and functions (implemented by core::Engine).

#ifndef ESLEV_PLAN_CATALOG_H_
#define ESLEV_PLAN_CATALOG_H_

#include <string>

#include "common/time.h"
#include "expr/function_registry.h"
#include "storage/table.h"
#include "stream/stream.h"

namespace eslev {

/// \brief Declared load statistics for one stream, consumed by the cost
/// model (DESIGN.md §16). Sessions declare them (Engine::
/// DeclareStreamStats); absent declarations fall back to the documented
/// defaults in CostModelParams.
struct StreamStats {
  /// Expected arrival rate, tuples per second.
  double rate_per_sec = 0;
  /// Expected number of distinct partition-key values (tag population).
  double distinct_keys = 0;
};

class Catalog {
 public:
  virtual ~Catalog() = default;
  /// \brief Find a stream by name (case-insensitive); null when absent.
  virtual Stream* FindStream(const std::string& name) const = 0;
  /// \brief Find a table by name (case-insensitive); null when absent.
  virtual Table* FindTable(const std::string& name) const = 0;
  virtual const FunctionRegistry& registry() const = 0;

  /// \brief The session's declared upper bound on input disorder
  /// (IngestOptions::declared_disorder), consumed by the disorder-hazard
  /// lint rule (DESIGN.md §15). 0 = in-order input declared.
  virtual Duration declared_disorder() const { return 0; }
  /// \brief The resolved ingest reorder lateness bound; 0 when no ingest
  /// reorder stage is configured.
  virtual Duration ingest_lateness() const { return 0; }

  /// \brief Declared load statistics for `name` (case-insensitive), or
  /// null when the session declared none — the cost model then applies
  /// its documented defaults.
  virtual const StreamStats* FindStreamStats(const std::string& name) const {
    (void)name;
    return nullptr;
  }
};

}  // namespace eslev

#endif  // ESLEV_PLAN_CATALOG_H_
