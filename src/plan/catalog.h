// Catalog: name resolution interface the planner uses to find streams,
// tables and functions (implemented by core::Engine).

#ifndef ESLEV_PLAN_CATALOG_H_
#define ESLEV_PLAN_CATALOG_H_

#include <string>

#include "expr/function_registry.h"
#include "storage/table.h"
#include "stream/stream.h"

namespace eslev {

class Catalog {
 public:
  virtual ~Catalog() = default;
  /// \brief Find a stream by name (case-insensitive); null when absent.
  virtual Stream* FindStream(const std::string& name) const = 0;
  /// \brief Find a table by name (case-insensitive); null when absent.
  virtual Table* FindTable(const std::string& name) const = 0;
  virtual const FunctionRegistry& registry() const = 0;
};

}  // namespace eslev

#endif  // ESLEV_PLAN_CATALOG_H_
