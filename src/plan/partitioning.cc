#include "plan/partitioning.h"

#include "common/string_util.h"

namespace eslev {

bool IsTagColumn(const std::string& lower_name) {
  return lower_name == "tag_id" || lower_name == "tagid" ||
         lower_name == "tid" || lower_name == "epc" || lower_name == "tag";
}

size_t DefaultPartitionKeyIndex(const SchemaPtr& schema) {
  for (size_t i = 0; i < schema->num_fields(); ++i) {
    if (IsTagColumn(AsciiToLower(schema->field(i).name))) return i;
  }
  return 0;
}

}  // namespace eslev
