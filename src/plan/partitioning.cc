#include "plan/partitioning.h"

#include <functional>
#include <numeric>

#include "common/string_util.h"
#include "plan/planner.h"

namespace eslev {

bool IsTagColumn(const std::string& lower_name) {
  return lower_name == "tag_id" || lower_name == "tagid" ||
         lower_name == "tid" || lower_name == "epc" || lower_name == "tag";
}

size_t DefaultPartitionKeyIndex(const SchemaPtr& schema) {
  for (size_t i = 0; i < schema->num_fields(); ++i) {
    if (IsTagColumn(AsciiToLower(schema->field(i).name))) return i;
  }
  return 0;
}

bool ResolvePartitionPositions(const std::vector<const TableRef*>& refs,
                               const Catalog& catalog,
                               std::vector<PartitionPos>* out) {
  for (const TableRef* ref : refs) {
    const Stream* stream = catalog.FindStream(ref->name);
    if (stream == nullptr) return false;
    const SchemaPtr& schema = stream->schema();
    PartitionPos pos;
    pos.alias = AsciiToLower(ref->alias);
    pos.key =
        AsciiToLower(schema->field(DefaultPartitionKeyIndex(schema)).name);
    out->push_back(std::move(pos));
  }
  return true;
}

bool PartitionKeyLinked(const std::vector<PartitionPos>& positions,
                        const std::vector<const Expr*>& conjuncts) {
  if (positions.size() < 2) return true;
  std::vector<size_t> root(positions.size());
  std::iota(root.begin(), root.end(), size_t{0});
  const std::function<size_t(size_t)> find = [&](size_t i) {
    while (root[i] != i) i = root[i] = root[root[i]];
    return i;
  };
  const auto index_of = [&positions](const std::string& alias) -> int {
    const std::string lower = AsciiToLower(alias);
    for (size_t i = 0; i < positions.size(); ++i) {
      if (positions[i].alias == lower) return static_cast<int>(i);
    }
    return -1;
  };
  for (const Expr* c : conjuncts) {
    if (c->kind != ExprKind::kBinary) continue;
    const auto& b = static_cast<const BinaryExpr&>(*c);
    if (b.op != BinaryOp::kEq) continue;
    if (b.lhs->kind != ExprKind::kColumnRef ||
        b.rhs->kind != ExprKind::kColumnRef) {
      continue;
    }
    const auto& l = static_cast<const ColumnRefExpr&>(*b.lhs);
    const auto& r = static_cast<const ColumnRefExpr&>(*b.rhs);
    if (l.previous || r.previous) continue;
    const int li = index_of(l.qualifier);
    const int ri = index_of(r.qualifier);
    if (li < 0 || ri < 0 || li == ri) continue;
    if (AsciiToLower(l.column) != positions[static_cast<size_t>(li)].key ||
        AsciiToLower(r.column) != positions[static_cast<size_t>(ri)].key) {
      continue;
    }
    root[find(static_cast<size_t>(li))] = find(static_cast<size_t>(ri));
  }
  const size_t first = find(0);
  for (size_t i = 1; i < positions.size(); ++i) {
    if (find(i) != first) return false;
  }
  return true;
}

namespace {

/// Preorder walk collecting every EXISTS subquery of `expr` (one level
/// is enough: the planner supports a single subquery nesting depth).
void CollectExists(const Expr& expr, std::vector<const ExistsExpr*>* out) {
  switch (expr.kind) {
    case ExprKind::kExists:
      out->push_back(static_cast<const ExistsExpr*>(&expr));
      return;
    case ExprKind::kUnary:
      CollectExists(*static_cast<const UnaryExpr&>(expr).operand, out);
      return;
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      CollectExists(*b.lhs, out);
      CollectExists(*b.rhs, out);
      return;
    }
    case ExprKind::kFuncCall: {
      for (const ExprPtr& a : static_cast<const FuncCallExpr&>(expr).args) {
        CollectExists(*a, out);
      }
      return;
    }
    default:
      return;
  }
}

}  // namespace

PartitionVerdict ClassifyPartitioning(
    const Catalog& catalog, const SelectStmt& select,
    const std::vector<const Expr*>& conjuncts,
    const std::vector<const SeqExpr*>& seqs) {
  // SEQ queries: every non-negated position must be key-linked.
  if (seqs.size() == 1 && !select.from.empty()) {
    const SeqExpr& seq = *seqs[0];
    std::vector<const TableRef*> refs;
    for (const SeqArg& arg : seq.args) {
      if (arg.negated) continue;  // carries no tuple
      const TableRef* found = nullptr;
      for (const TableRef& ref : select.from) {
        if (AsciiEqualsIgnoreCase(ref.alias, arg.stream)) {
          found = &ref;
          break;
        }
      }
      if (found == nullptr) return PartitionVerdict::kUndecided;
      refs.push_back(found);
    }
    std::vector<PartitionPos> positions;
    if (!ResolvePartitionPositions(refs, catalog, &positions)) {
      return PartitionVerdict::kUndecided;
    }
    return PartitionKeyLinked(positions, conjuncts)
               ? PartitionVerdict::kPartitionable
               : PartitionVerdict::kSingleShard;
  }
  if (!seqs.empty()) return PartitionVerdict::kUndecided;

  // Multi-stream joins (windowed self-joins, Example 8 shapes).
  std::vector<const TableRef*> stream_refs;
  for (const TableRef& ref : select.from) {
    if (catalog.FindStream(ref.name) != nullptr) {
      stream_refs.push_back(&ref);
    }
  }
  if (stream_refs.size() >= 2) {
    std::vector<PartitionPos> positions;
    if (!ResolvePartitionPositions(stream_refs, catalog, &positions)) {
      return PartitionVerdict::kUndecided;
    }
    return PartitionKeyLinked(positions, conjuncts)
               ? PartitionVerdict::kPartitionable
               : PartitionVerdict::kSingleShard;
  }

  // Correlated [NOT] EXISTS against a stream: the subquery must
  // correlate with the outer stream on the partition key, or the
  // anti-join sees only the local shard's slice.
  if (stream_refs.size() != 1 || select.where == nullptr) {
    return PartitionVerdict::kPartitionable;
  }
  const TableRef* outer_ref = stream_refs[0];
  std::vector<const ExistsExpr*> exists;
  CollectExists(*select.where, &exists);
  for (const ExistsExpr* e : exists) {
    const SelectStmt& sub = *e->subquery;
    if (sub.from.size() != 1) continue;
    if (catalog.FindStream(sub.from[0].name) == nullptr) continue;
    std::vector<PartitionPos> positions;
    if (!ResolvePartitionPositions({outer_ref, &sub.from[0]}, catalog,
                                   &positions)) {
      continue;
    }
    std::vector<const Expr*> sub_conjuncts;
    FlattenConjuncts(sub.where.get(), &sub_conjuncts);
    if (!PartitionKeyLinked(positions, sub_conjuncts)) {
      return PartitionVerdict::kSingleShard;
    }
  }
  return PartitionVerdict::kPartitionable;
}

}  // namespace eslev
