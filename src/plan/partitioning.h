// Partition-key heuristic shared by ShardedEngine (routing) and the
// static analyzer (shard-fallback lint rule). The paper's RFID queries
// all correlate on tag identity, so a stream's natural partition key is
// its first tag-identity column, falling back to column 0.

#ifndef ESLEV_PLAN_PARTITIONING_H_
#define ESLEV_PLAN_PARTITIONING_H_

#include <string>

#include "types/schema.h"

namespace eslev {

/// \brief True when `lower_name` (already lower-cased) names a
/// tag-identity column, in priority order.
bool IsTagColumn(const std::string& lower_name);

/// \brief The column index a stream with `schema` partitions on by
/// default: the first tag-identity column, else 0.
size_t DefaultPartitionKeyIndex(const SchemaPtr& schema);

}  // namespace eslev

#endif  // ESLEV_PLAN_PARTITIONING_H_
