// Partition-key heuristic shared by ShardedEngine (routing), the static
// analyzer (shard-fallback lint rule) and the cost model (per-shard vs
// coordinator cost split). The paper's RFID queries all correlate on tag
// identity, so a stream's natural partition key is its first
// tag-identity column, falling back to column 0.

#ifndef ESLEV_PLAN_PARTITIONING_H_
#define ESLEV_PLAN_PARTITIONING_H_

#include <string>
#include <vector>

#include "plan/catalog.h"
#include "sql/ast.h"
#include "types/schema.h"

namespace eslev {

/// \brief True when `lower_name` (already lower-cased) names a
/// tag-identity column, in priority order.
bool IsTagColumn(const std::string& lower_name);

/// \brief The column index a stream with `schema` partitions on by
/// default: the first tag-identity column, else 0.
size_t DefaultPartitionKeyIndex(const SchemaPtr& schema);

/// \brief One partition-relevant FROM position: its alias and the
/// lower-cased name of the column the stream hash-partitions on by
/// default.
struct PartitionPos {
  std::string alias;
  std::string key;  // lower-cased partition column name
};

/// \brief Resolve every FROM entry (or SEQ argument) that maps to a
/// stream. Returns false when any entry is unresolvable (unknown
/// alias/stream): callers then stay silent rather than guessing.
bool ResolvePartitionPositions(const std::vector<const TableRef*>& refs,
                               const Catalog& catalog,
                               std::vector<PartitionPos>* out);

/// \brief Union-find over positions, linked by `a.key_a = b.key_b`
/// conjuncts on the respective partition keys. Returns true when all
/// positions end up in one component — the condition for hash-routing
/// the query's streams independently per shard.
bool PartitionKeyLinked(const std::vector<PartitionPos>& positions,
                        const std::vector<const Expr*>& conjuncts);

/// \brief Whether ShardedEngine can run a query hash-partitioned, or
/// must fall back to routing its source streams to a single shard.
enum class PartitionVerdict {
  kPartitionable,  // every position key-linked: shards run independently
  kSingleShard,    // pairing can cross partition keys: one shard only
  kUndecided,      // unresolvable aliases / multi-SEQ shapes: no claim
};

/// \brief Classify one SELECT body (the analysis behind the
/// shard-fallback lint rule and the cost model's sharding split):
/// SEQ positions, multi-stream joins, and correlated EXISTS subqueries
/// must all correlate on the partition key to stay partitionable.
PartitionVerdict ClassifyPartitioning(
    const Catalog& catalog, const SelectStmt& select,
    const std::vector<const Expr*>& conjuncts,
    const std::vector<const SeqExpr*>& seqs);

}  // namespace eslev

#endif  // ESLEV_PLAN_PARTITIONING_H_
