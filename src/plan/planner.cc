#include "plan/planner.h"

#include <map>
#include <unordered_map>

#include "cep/seq_nfa.h"
#include "cep/seq_operator_base.h"
#include "common/string_util.h"
#include "exec/aggregate.h"
#include "exec/basic_ops.h"
#include "exec/table_ops.h"
#include "exec/windowed_not_exists.h"
#include "expr/binder.h"
#include "plan/type_inference.h"

namespace eslev {

void FlattenConjuncts(const Expr* where, std::vector<const Expr*>* out) {
  if (where == nullptr) return;
  if (where->kind == ExprKind::kBinary) {
    const auto& b = static_cast<const BinaryExpr&>(*where);
    if (b.op == BinaryOp::kAnd) {
      FlattenConjuncts(b.lhs.get(), out);
      FlattenConjuncts(b.rhs.get(), out);
      return;
    }
  }
  out->push_back(where);
}

int ExprRefs::SingleSlot() const {
  int found = -1;
  for (size_t i = 0; i < slots.size(); ++i) {
    if (slots[i]) {
      if (found >= 0) return -1;
      found = static_cast<int>(i);
    }
  }
  return found;
}

size_t ExprRefs::Count() const {
  size_t n = 0;
  for (bool b : slots) n += b;
  return n;
}

namespace {

Status CollectRefsInto(const Expr& expr, const BindScope& scope,
                       ExprRefs* refs) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return Status::OK();
    case ExprKind::kColumnRef: {
      const auto& c = static_cast<const ColumnRefExpr&>(expr);
      int slot;
      if (!c.qualifier.empty()) {
        slot = scope.FindAlias(c.qualifier);
        if (slot < 0) {
          return Status::BindError("unknown alias: " + c.qualifier);
        }
      } else {
        ESLEV_ASSIGN_OR_RETURN(auto loc, scope.ResolveColumn(c.column));
        slot = static_cast<int>(loc.first);
      }
      refs->slots[static_cast<size_t>(slot)] = true;
      if (c.previous) refs->has_previous = true;
      return Status::OK();
    }
    case ExprKind::kStarAgg: {
      const auto& s = static_cast<const StarAggExpr&>(expr);
      const int slot = scope.FindAlias(s.stream);
      if (slot < 0) return Status::BindError("unknown alias: " + s.stream);
      refs->slots[static_cast<size_t>(slot)] = true;
      refs->has_star_agg = true;
      return Status::OK();
    }
    case ExprKind::kFuncCall: {
      const auto& f = static_cast<const FuncCallExpr&>(expr);
      for (const auto& a : f.args) {
        ESLEV_RETURN_NOT_OK(CollectRefsInto(*a, scope, refs));
      }
      return Status::OK();
    }
    case ExprKind::kUnary:
      return CollectRefsInto(*static_cast<const UnaryExpr&>(expr).operand,
                             scope, refs);
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      ESLEV_RETURN_NOT_OK(CollectRefsInto(*b.lhs, scope, refs));
      return CollectRefsInto(*b.rhs, scope, refs);
    }
    case ExprKind::kExists:
      refs->has_exists = true;
      return Status::OK();
    case ExprKind::kSeq:
      refs->has_seq = true;
      return Status::OK();
  }
  return Status::OK();
}

// Aggregate call collection for aggregate queries.
void CollectAggCalls(const Expr& expr, const FunctionRegistry& registry,
                     std::vector<const FuncCallExpr*>* out) {
  switch (expr.kind) {
    case ExprKind::kFuncCall: {
      const auto& f = static_cast<const FuncCallExpr&>(expr);
      if (registry.IsAggregate(f.name)) {
        out->push_back(&f);
        return;  // nested aggregates unsupported; args handled by binder
      }
      for (const auto& a : f.args) CollectAggCalls(*a, registry, out);
      return;
    }
    case ExprKind::kUnary:
      CollectAggCalls(*static_cast<const UnaryExpr&>(expr).operand, registry,
                      out);
      return;
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      CollectAggCalls(*b.lhs, registry, out);
      CollectAggCalls(*b.rhs, registry, out);
      return;
    }
    default:
      return;
  }
}

std::string DeriveItemName(const SelectItem& item, size_t index) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr && item.expr->kind == ExprKind::kColumnRef) {
    return static_cast<const ColumnRefExpr&>(*item.expr).column;
  }
  if (item.expr && item.expr->kind == ExprKind::kFuncCall) {
    return static_cast<const FuncCallExpr&>(*item.expr).name;
  }
  if (item.expr && item.expr->kind == ExprKind::kStarAgg) {
    const auto& s = static_cast<const StarAggExpr&>(*item.expr);
    std::string n = AsciiToLower(StarAggFnToString(s.fn));
    if (!s.column.empty()) n += "_" + s.column;
    return n;
  }
  return "col" + std::to_string(index);
}

void DedupeFieldNames(std::vector<Field>* fields) {
  std::unordered_map<std::string, int> seen;
  for (Field& f : *fields) {
    std::string key = AsciiToLower(f.name);
    int& n = seen[key];
    if (n > 0) {
      f.name += "_" + std::to_string(n + 1);
    }
    ++n;
  }
}

// Does any select item read a starred position's columns directly
// (triggering per-tuple multiple-return, footnote 4)?
bool ReadsStarColumnsDirectly(const Expr& expr, const BindScope& scope,
                              size_t star_slot) {
  switch (expr.kind) {
    case ExprKind::kColumnRef: {
      const auto& c = static_cast<const ColumnRefExpr&>(expr);
      if (c.previous) return false;
      if (!c.qualifier.empty()) {
        return scope.FindAlias(c.qualifier) == static_cast<int>(star_slot);
      }
      auto loc = scope.ResolveColumn(c.column);
      return loc.ok() && loc->first == star_slot;
    }
    case ExprKind::kFuncCall: {
      const auto& f = static_cast<const FuncCallExpr&>(expr);
      for (const auto& a : f.args) {
        if (ReadsStarColumnsDirectly(*a, scope, star_slot)) return true;
      }
      return false;
    }
    case ExprKind::kUnary:
      return ReadsStarColumnsDirectly(
          *static_cast<const UnaryExpr&>(expr).operand, scope, star_slot);
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      return ReadsStarColumnsDirectly(*b.lhs, scope, star_slot) ||
             ReadsStarColumnsDirectly(*b.rhs, scope, star_slot);
    }
    default:
      return false;
  }
}

struct Projection {
  std::vector<BoundExprPtr> exprs;
  SchemaPtr schema;
};

// Bind the select list into output expressions + schema. `*` expands to
// every column of every scope entry at depth 0 (qualified names when the
// scope has several entries).
Result<Projection> BuildProjection(const SelectStmt& select,
                                   const BindScope& scope,
                                   const Binder& binder,
                                   const FunctionRegistry& registry) {
  Projection out;
  std::vector<Field> fields;
  size_t depth0_entries = 0;
  for (const auto& e : scope.entries()) {
    if (e.depth == 0) ++depth0_entries;
  }
  for (size_t i = 0; i < select.items.size(); ++i) {
    const SelectItem& item = select.items[i];
    if (item.is_star) {
      for (size_t slot = 0; slot < scope.entries().size(); ++slot) {
        const ScopeEntry& e = scope.entries()[slot];
        if (e.depth != 0 || e.negated) continue;
        for (size_t col = 0; col < e.schema->num_fields(); ++col) {
          const Field& f = e.schema->field(col);
          out.exprs.push_back(std::make_unique<BoundColumnRef>(
              slot, col, false, e.alias + "." + f.name));
          fields.push_back(
              {depth0_entries > 1 ? e.alias + "_" + f.name : f.name,
               f.type});
        }
      }
      continue;
    }
    ESLEV_ASSIGN_OR_RETURN(BoundExprPtr bound, binder.Bind(*item.expr));
    ESLEV_ASSIGN_OR_RETURN(TypeId type,
                           InferExprType(*item.expr, scope, registry));
    out.exprs.push_back(std::move(bound));
    fields.push_back({DeriveItemName(item, i), type});
  }
  DedupeFieldNames(&fields);
  out.schema = Schema::Make(std::move(fields));
  return out;
}

// Find an equality conjunct usable as a hash-index probe: inner-table
// column == expression over the outer tuple only.
struct ProbeSpec {
  std::string column;
  const Expr* outer_expr;
};

Result<std::optional<ProbeSpec>> FindProbe(const Expr* where,
                                           const BindScope& scope,
                                           const SchemaPtr& inner_schema) {
  std::optional<ProbeSpec> probe;
  if (where == nullptr) return probe;
  std::vector<const Expr*> conjuncts;
  FlattenConjuncts(where, &conjuncts);
  for (const Expr* c : conjuncts) {
    if (c->kind != ExprKind::kBinary) continue;
    const auto& b = static_cast<const BinaryExpr&>(*c);
    if (b.op != BinaryOp::kEq) continue;
    for (bool flip : {false, true}) {
      const Expr* maybe_col = flip ? b.rhs.get() : b.lhs.get();
      const Expr* other = flip ? b.lhs.get() : b.rhs.get();
      if (maybe_col->kind != ExprKind::kColumnRef) continue;
      const auto& col = static_cast<const ColumnRefExpr&>(*maybe_col);
      // Must resolve to the inner entry (slot 0).
      ExprRefs col_refs;
      col_refs.slots.assign(scope.size(), false);
      if (!CollectRefsInto(*maybe_col, scope, &col_refs).ok()) continue;
      if (col_refs.SingleSlot() != 0) continue;
      if (inner_schema->FindField(col.column) < 0) continue;
      ExprRefs other_refs;
      other_refs.slots.assign(scope.size(), false);
      if (!CollectRefsInto(*other, scope, &other_refs).ok()) continue;
      if (other_refs.slots[0]) continue;  // must not read the inner row
      probe = ProbeSpec{col.column, other};
      return probe;
    }
  }
  return probe;
}

// AND-combine bound conjuncts (nullptr when empty).
BoundExprPtr CombineAnd(std::vector<BoundExprPtr> preds) {
  BoundExprPtr out;
  for (auto& p : preds) {
    if (!out) {
      out = std::move(p);
    } else {
      out = std::make_unique<BoundBinary>(BinaryOp::kAnd, std::move(out),
                                          std::move(p));
    }
  }
  return out;
}

}  // namespace

Result<ExprRefs> CollectRefs(const Expr& expr, const BindScope& scope) {
  ExprRefs refs;
  refs.slots.assign(scope.size(), false);
  ESLEV_RETURN_NOT_OK(CollectRefsInto(expr, scope, &refs));
  return refs;
}

Result<PlannedQuery> Planner::Plan(const Statement& stmt) {
  switch (stmt.kind) {
    case StatementKind::kInsert: {
      const auto& ins = static_cast<const InsertStmt&>(stmt);
      return PlanSelectInto(*ins.select, ins.target);
    }
    case StatementKind::kSelect: {
      const auto& sel = static_cast<const SelectStatement&>(stmt);
      return PlanSelectInto(*sel.select, "");
    }
    default:
      return Status::Invalid(
          "only SELECT / INSERT statements can be planned as continuous "
          "queries");
  }
}

Result<PlannedQuery> Planner::PlanSelectInto(const SelectStmt& select,
                                             const std::string& target) {
  if (select.from.empty()) {
    return Status::BindError("query has no FROM clause");
  }
  if (!select.order_by.empty() || select.limit >= 0) {
    return Status::NotImplemented(
        "ORDER BY / LIMIT apply to snapshot queries only (a continuous "
        "query's output is unbounded)");
  }
  std::vector<const Expr*> conjuncts;
  FlattenConjuncts(select.where.get(), &conjuncts);

  // A SEQ-family conjunct routes to the CEP planner.
  for (const Expr* c : conjuncts) {
    if (c->kind == ExprKind::kSeq) {
      return PlanSeqQuery(select, target, std::move(conjuncts));
    }
    if (c->kind == ExprKind::kBinary) {
      const auto& b = static_cast<const BinaryExpr&>(*c);
      if (b.lhs->kind == ExprKind::kSeq || b.rhs->kind == ExprKind::kSeq) {
        return PlanSeqQuery(select, target, std::move(conjuncts));
      }
    }
  }

  if (select.from.size() == 1) {
    return PlanStreamPipeline(select, target, std::move(conjuncts));
  }
  if (select.from.size() == 2) {
    return PlanStreamTableJoin(select, target, std::move(conjuncts));
  }
  return Status::NotImplemented(
      "multi-stream queries require the SEQ operator (paper §2.2: plain "
      "n-way stream joins are not the intended idiom)");
}

// ---------------------------------------------------------------------------
// Single-stream pipelines (Examples 1, 2, 3, 8)
// ---------------------------------------------------------------------------

Result<PlannedQuery> Planner::PlanStreamPipeline(
    const SelectStmt& select, const std::string& target,
    std::vector<const Expr*> conjuncts) {
  const TableRef& ref = select.from[0];
  Stream* stream = catalog_->FindStream(ref.name);
  if (stream == nullptr) {
    if (catalog_->FindTable(ref.name) != nullptr) {
      return Status::NotImplemented(
          "continuous queries read streams; use Engine::ExecuteSnapshot "
          "for table queries");
    }
    return Status::NotFound("stream not found: " + ref.name);
  }
  const FunctionRegistry& registry = catalog_->registry();

  PlannedQuery pq;
  std::vector<PlannedQuery::Subscription>& subs = pq.subscriptions;
  Operator* chain_tail = nullptr;
  auto append = [&](std::unique_ptr<Operator> op,
                    std::string note) -> Operator* {
    Operator* raw = op.get();
    if (chain_tail == nullptr) {
      subs.push_back({stream, raw, 0});
    } else {
      chain_tail->AddSink(raw, 0);
    }
    chain_tail = raw;
    pq.operators.push_back(std::move(op));
    pq.AddNote(std::move(note), raw);
    return raw;
  };
  pq.AddNote("Source: stream " + ref.name +
             (ref.alias == ref.name ? "" : " AS " + ref.alias));

  BindScope outer_scope;
  outer_scope.AddEntry({ref.alias, stream->schema(), 0, false});
  Binder outer_binder(&outer_scope, &registry);

  // Partition conjuncts: [NOT] EXISTS vs plain predicates.
  const ExistsExpr* anti = nullptr;
  std::vector<const Expr*> plain;
  for (const Expr* c : conjuncts) {
    if (c->kind == ExprKind::kExists) {
      const auto& e = static_cast<const ExistsExpr&>(*c);
      if (!e.negated) {
        return Status::NotImplemented(
            "positive EXISTS subqueries are not supported in continuous "
            "queries");
      }
      if (anti != nullptr) {
        return Status::NotImplemented(
            "at most one NOT EXISTS subquery per continuous query");
      }
      anti = &e;
    } else {
      plain.push_back(c);
    }
  }

  bool plain_consumed = false;
  if (anti != nullptr) {
    const SelectStmt& sub = *anti->subquery;
    if (sub.from.size() != 1) {
      return Status::NotImplemented("NOT EXISTS subquery must have one "
                                    "FROM entry");
    }
    const TableRef& inner = sub.from[0];

    if (Stream* inner_stream = catalog_->FindStream(inner.name)) {
      if (!inner.window) {
        return Status::NotImplemented(
            "NOT EXISTS over a stream requires a sliding window "
            "(Example 1 / Example 8 form)");
      }
      // Validate the window anchor: CURRENT (empty) or the outer alias.
      if (!inner.window->anchor.empty() &&
          !AsciiEqualsIgnoreCase(inner.window->anchor, ref.alias)) {
        return Status::BindError(
            "cross-subquery window anchor must reference the outer tuple: " +
            inner.window->anchor);
      }
      BindScope scope;
      scope.AddEntry({inner.alias, inner_stream->schema(), 0, false});
      scope.AddEntry({ref.alias, stream->schema(), 1, false});
      Binder binder(&scope, &registry);
      BoundExprPtr inner_pred;
      if (sub.where) {
        ESLEV_ASSIGN_OR_RETURN(inner_pred, binder.Bind(*sub.where));
      } else {
        inner_pred = std::make_unique<BoundLiteral>(Value::Bool(true));
      }
      const bool same_stream = inner_stream == stream;
      BoundExprPtr outer_pred;
      if (same_stream && !plain.empty()) {
        // Outer-role predicates must run inside the operator: the inner
        // role still has to observe every tuple (Example 8).
        std::vector<BoundExprPtr> bound;
        for (const Expr* c : plain) {
          ESLEV_ASSIGN_OR_RETURN(BoundExprPtr b, binder.Bind(*c));
          bound.push_back(std::move(b));
        }
        outer_pred = CombineAnd(std::move(bound));
        plain_consumed = true;
      }
      auto op = std::make_unique<WindowedNotExistsOperator>(
          *inner.window, std::move(inner_pred), same_stream,
          std::move(outer_pred));
      if (!same_stream) {
        subs.push_back({inner_stream, op.get(), 1});
      }
      if (!plain_consumed && !plain.empty()) {
        std::vector<BoundExprPtr> bound;
        for (const Expr* c : plain) {
          ESLEV_ASSIGN_OR_RETURN(BoundExprPtr b, outer_binder.Bind(*c));
          bound.push_back(std::move(b));
        }
        append(std::make_unique<FilterOperator>(CombineAnd(std::move(bound))),
               "Filter: residual WHERE predicates");
        plain_consumed = true;
      }
      append(std::move(op),
             std::string("WindowedNotExists: anti-join vs ") + inner.name +
                 " OVER " + inner.window->ToString() +
                 (same_stream ? " (same stream, self-anti-join)" : ""));
    } else if (Table* table = catalog_->FindTable(inner.name)) {
      BindScope scope;
      scope.AddEntry({inner.alias, table->schema(), 0, false});
      scope.AddEntry({ref.alias, stream->schema(), 1, false});
      Binder binder(&scope, &registry);
      BoundExprPtr pred;
      if (sub.where) {
        ESLEV_ASSIGN_OR_RETURN(pred, binder.Bind(*sub.where));
      } else {
        pred = std::make_unique<BoundLiteral>(Value::Bool(true));
      }
      auto op = std::make_unique<TableNotExistsOperator>(table,
                                                         std::move(pred));
      ESLEV_ASSIGN_OR_RETURN(auto probe,
                             FindProbe(sub.where.get(), scope,
                                       table->schema()));
      if (probe) {
        ESLEV_ASSIGN_OR_RETURN(BoundExprPtr pe,
                               binder.Bind(*probe->outer_expr));
        ESLEV_RETURN_NOT_OK(op->SetProbe(probe->column, std::move(pe)));
      }
      if (!plain.empty()) {
        std::vector<BoundExprPtr> bound;
        for (const Expr* c : plain) {
          ESLEV_ASSIGN_OR_RETURN(BoundExprPtr b, outer_binder.Bind(*c));
          bound.push_back(std::move(b));
        }
        append(std::make_unique<FilterOperator>(CombineAnd(std::move(bound))),
               "Filter: residual WHERE predicates");
        plain_consumed = true;
      }
      append(std::move(op),
             std::string("TableNotExists: anti-join vs table ") +
                 inner.name + (probe ? " (hash probe on " + probe->column +
                 ")" : " (scan)"));
    } else {
      return Status::NotFound("subquery source not found: " + inner.name);
    }
  }

  if (!plain_consumed && !plain.empty()) {
    std::vector<BoundExprPtr> bound;
    for (const Expr* c : plain) {
      ESLEV_ASSIGN_OR_RETURN(BoundExprPtr b, outer_binder.Bind(*c));
      bound.push_back(std::move(b));
    }
    append(std::make_unique<FilterOperator>(CombineAnd(std::move(bound))),
           "Filter: WHERE predicates");
  }

  // Aggregates?
  std::vector<const FuncCallExpr*> agg_calls;
  for (const auto& item : select.items) {
    if (item.expr) CollectAggCalls(*item.expr, registry, &agg_calls);
  }
  if (select.having) CollectAggCalls(*select.having, registry, &agg_calls);

  if (!agg_calls.empty()) {
    std::map<const Expr*, size_t> agg_index;
    std::vector<AggSpec> specs;
    for (const FuncCallExpr* call : agg_calls) {
      agg_index[call] = specs.size();
      AggSpec spec;
      ESLEV_ASSIGN_OR_RETURN(spec.fn, registry.FindAggregate(call->name));
      if (call->star_arg || call->args.empty()) {
        spec.count_star = true;
      } else if (call->args.size() == 1) {
        ESLEV_ASSIGN_OR_RETURN(spec.arg, outer_binder.Bind(*call->args[0]));
      } else {
        return Status::NotImplemented("aggregates take one argument");
      }
      specs.push_back(std::move(spec));
    }
    Binder agg_binder(&outer_scope, &registry);
    agg_binder.set_aggregate_hook(
        [&agg_index](const FuncCallExpr& call) -> Result<BoundExprPtr> {
          auto it = agg_index.find(&call);
          if (it == agg_index.end()) {
            return Status::BindError("unplanned aggregate call: " +
                                     call.name);
          }
          return BoundExprPtr(new BoundAggRef(it->second));
        });
    std::vector<BoundExprPtr> group_by;
    for (const auto& g : select.group_by) {
      ESLEV_ASSIGN_OR_RETURN(BoundExprPtr b, outer_binder.Bind(*g));
      group_by.push_back(std::move(b));
    }
    BoundExprPtr having;
    if (select.having) {
      ESLEV_ASSIGN_OR_RETURN(having, agg_binder.Bind(*select.having));
    }
    ESLEV_ASSIGN_OR_RETURN(
        Projection proj,
        BuildProjection(select, outer_scope, agg_binder, registry));
    std::optional<WindowSpec> window = ref.window;
    if (window && window->direction != WindowDirection::kPreceding) {
      return Status::NotImplemented(
          "aggregation windows must be PRECEDING");
    }
    pq.output_schema = proj.schema;
    std::string agg_note = "Aggregate:";
    for (const FuncCallExpr* call : agg_calls) {
      agg_note += " " + call->ToString();
    }
    if (!select.group_by.empty()) agg_note += " GROUP BY ...";
    if (window) agg_note += " OVER " + window->ToString();
    append(std::make_unique<AggregateOperator>(
               std::move(specs), std::move(group_by), std::move(proj.exprs),
               std::move(having), proj.schema, window),
           std::move(agg_note));
  } else {
    if (!select.group_by.empty() || select.having) {
      return Status::BindError("GROUP BY / HAVING require aggregates");
    }
    ESLEV_ASSIGN_OR_RETURN(
        Projection proj,
        BuildProjection(select, outer_scope, outer_binder, registry));
    pq.output_schema = proj.schema;
    // `SELECT *` with no reshaping is the identity: skip the operator.
    const bool identity =
        select.items.size() == 1 && select.items[0].is_star;
    if (!identity) {
      append(std::make_unique<ProjectOperator>(std::move(proj.exprs),
                                               proj.schema),
             "Project: " + proj.schema->ToString());
    } else if (chain_tail == nullptr) {
      // Pure pass-through (`SELECT * FROM s`): materialize as a filter
      // that always passes, to give the pipeline a tail.
      append(std::make_unique<FilterOperator>(
                 std::make_unique<BoundLiteral>(Value::Bool(true))),
             "PassThrough: SELECT *");
    }
  }

  // INSERT INTO a table ends the pipeline with a TableInsertOperator.
  pq.target = target;
  if (!target.empty()) {
    if (Table* table = catalog_->FindTable(target)) {
      pq.target_is_table = true;
      if (pq.output_schema->num_fields() != table->schema()->num_fields()) {
        return Status::BindError("INSERT arity does not match table " +
                                 target);
      }
      append(std::make_unique<TableInsertOperator>(
                 table, std::vector<BoundExprPtr>{}),
             "TableInsert: INTO " + target);
    } else if (Stream* out = catalog_->FindStream(target)) {
      if (pq.output_schema->num_fields() != out->schema()->num_fields()) {
        return Status::BindError("INSERT arity does not match stream " +
                                 target);
      }
    } else {
      return Status::NotFound("INSERT target not found: " + target);
    }
  }

  pq.tail = chain_tail;
  return pq;
}

// ---------------------------------------------------------------------------
// Stream-table context retrieval join (§2.1)
// ---------------------------------------------------------------------------

Result<PlannedQuery> Planner::PlanStreamTableJoin(
    const SelectStmt& select, const std::string& target,
    std::vector<const Expr*> conjuncts) {
  const FunctionRegistry& registry = catalog_->registry();
  // Identify which FROM entry is the stream and which the table.
  const TableRef* stream_ref = nullptr;
  const TableRef* table_ref = nullptr;
  for (const TableRef& r : select.from) {
    if (catalog_->FindStream(r.name) != nullptr) {
      stream_ref = &r;
    } else if (catalog_->FindTable(r.name) != nullptr) {
      table_ref = &r;
    }
  }
  if (stream_ref == nullptr || table_ref == nullptr) {
    return Status::NotImplemented(
        "two-entry FROM clauses must join one stream with one table "
        "(context retrieval); multi-stream patterns use SEQ");
  }
  Stream* stream = catalog_->FindStream(stream_ref->name);
  Table* table = catalog_->FindTable(table_ref->name);

  BindScope scope;
  scope.AddEntry({table_ref->alias, table->schema(), 0, false});
  scope.AddEntry({stream_ref->alias, stream->schema(), 0, false});
  Binder binder(&scope, &registry);

  std::vector<BoundExprPtr> bound;
  for (const Expr* c : conjuncts) {
    if (c->kind == ExprKind::kExists) {
      return Status::NotImplemented(
          "NOT EXISTS inside stream-table joins is not supported");
    }
    ESLEV_ASSIGN_OR_RETURN(BoundExprPtr b, binder.Bind(*c));
    bound.push_back(std::move(b));
  }
  BoundExprPtr pred = CombineAnd(std::move(bound));

  ESLEV_ASSIGN_OR_RETURN(Projection proj,
                         BuildProjection(select, scope, binder, registry));

  PlannedQuery pq;
  pq.output_schema = proj.schema;
  auto op = std::make_unique<StreamTableJoinOperator>(
      table, std::move(pred), std::move(proj.exprs), proj.schema);
  // Probe optimization on the join predicate.
  if (select.where) {
    ESLEV_ASSIGN_OR_RETURN(auto probe, FindProbe(select.where.get(), scope,
                                                 table->schema()));
    if (probe) {
      ESLEV_ASSIGN_OR_RETURN(BoundExprPtr pe, binder.Bind(*probe->outer_expr));
      ESLEV_RETURN_NOT_OK(op->SetProbe(probe->column, std::move(pe)));
    }
  }
  pq.AddNote("Source: stream " + stream_ref->name);
  pq.AddNote("StreamTableJoin: context retrieval vs table " + table_ref->name,
             op.get());
  pq.subscriptions.push_back({stream, op.get(), 1});
  pq.tail = op.get();
  pq.operators.push_back(std::move(op));

  pq.target = target;
  if (!target.empty()) {
    if (Table* t = catalog_->FindTable(target)) {
      pq.target_is_table = true;
      auto insert = std::make_unique<TableInsertOperator>(
          t, std::vector<BoundExprPtr>{});
      pq.tail->AddSink(insert.get(), 0);
      pq.tail = insert.get();
      pq.AddNote("TableInsert: INTO " + target, insert.get());
      pq.operators.push_back(std::move(insert));
    } else if (catalog_->FindStream(target) == nullptr) {
      return Status::NotFound("INSERT target not found: " + target);
    }
  }
  return pq;
}

// ---------------------------------------------------------------------------
// SEQ / EXCEPTION_SEQ / CLEVEL_SEQ queries (§3.1)
// ---------------------------------------------------------------------------

Result<PlannedQuery> Planner::PlanSeqQuery(
    const SelectStmt& select, const std::string& target,
    std::vector<const Expr*> conjuncts) {
  const FunctionRegistry& registry = catalog_->registry();

  // Locate the SEQ conjunct (or CLEVEL_SEQ comparison).
  const SeqExpr* seq = nullptr;
  BinaryOp level_op = BinaryOp::kLt;
  int64_t level_rhs = 0;
  bool has_level_cmp = false;
  std::vector<const Expr*> rest;
  for (const Expr* c : conjuncts) {
    if (c->kind == ExprKind::kSeq) {
      if (seq != nullptr) {
        return Status::NotImplemented("one SEQ operator per query");
      }
      seq = static_cast<const SeqExpr*>(c);
      continue;
    }
    if (c->kind == ExprKind::kBinary) {
      const auto& b = static_cast<const BinaryExpr&>(*c);
      const bool lhs_seq = b.lhs->kind == ExprKind::kSeq;
      const bool rhs_seq = b.rhs->kind == ExprKind::kSeq;
      if (lhs_seq || rhs_seq) {
        const auto& s = static_cast<const SeqExpr&>(lhs_seq ? *b.lhs : *b.rhs);
        const Expr& other = lhs_seq ? *b.rhs : *b.lhs;
        if (s.seq_kind != SeqKind::kClevelSeq) {
          return Status::BindError(
              "SEQ/EXCEPTION_SEQ are boolean predicates and cannot be "
              "compared; only CLEVEL_SEQ returns a level");
        }
        if (other.kind != ExprKind::kLiteral) {
          return Status::NotImplemented(
              "CLEVEL_SEQ must be compared against an integer literal");
        }
        ESLEV_ASSIGN_OR_RETURN(
            level_rhs,
            static_cast<const LiteralExpr&>(other).value.AsInt64());
        level_op = b.op;
        if (rhs_seq) {
          // k <op> CLEVEL: mirror the comparison.
          switch (b.op) {
            case BinaryOp::kLt:
              level_op = BinaryOp::kGt;
              break;
            case BinaryOp::kLe:
              level_op = BinaryOp::kGe;
              break;
            case BinaryOp::kGt:
              level_op = BinaryOp::kLt;
              break;
            case BinaryOp::kGe:
              level_op = BinaryOp::kLe;
              break;
            default:
              break;
          }
        }
        if (seq != nullptr) {
          return Status::NotImplemented("one SEQ operator per query");
        }
        seq = &s;
        has_level_cmp = true;
        continue;
      }
    }
    rest.push_back(c);
  }
  if (seq == nullptr) {
    return Status::BindError("no SEQ conjunct found (planner bug)");
  }
  if (seq->seq_kind == SeqKind::kClevelSeq && !has_level_cmp) {
    return Status::BindError(
        "CLEVEL_SEQ must appear in a comparison (e.g. CLEVEL_SEQ(...) < 3)");
  }

  // Resolve positions: each SEQ argument names a FROM alias bound to a
  // stream.
  std::map<std::string, const TableRef*> from_map;
  for (const TableRef& r : select.from) {
    from_map[AsciiToLower(r.alias)] = &r;
  }
  const size_t n = seq->args.size();
  std::vector<SeqPosition> positions;
  std::vector<Stream*> streams;
  BindScope scope;
  for (const SeqArg& arg : seq->args) {
    auto it = from_map.find(AsciiToLower(arg.stream));
    if (it == from_map.end()) {
      return Status::BindError("SEQ argument is not in the FROM clause: " +
                               arg.stream);
    }
    Stream* s = catalog_->FindStream(it->second->name);
    if (s == nullptr) {
      return Status::BindError("SEQ arguments must be streams: " +
                               it->second->name);
    }
    SeqPosition position;
    position.alias = arg.stream;
    position.schema = s->schema();
    position.star = arg.star;
    position.negated = arg.negated;
    positions.push_back(std::move(position));
    streams.push_back(s);
    ScopeEntry entry;
    entry.alias = arg.stream;
    entry.schema = s->schema();
    entry.depth = 0;
    entry.star = arg.star;
    entry.negated = arg.negated;
    scope.AddEntry(std::move(entry));
  }
  if (positions.front().negated || positions.back().negated) {
    return Status::Invalid(
        "the first and last SEQ arguments cannot be negated (a negative "
        "event needs neighbours to bound its interval)");
  }

  // Window.
  std::optional<SeqWindow> window;
  if (seq->window) {
    if (seq->window->row_based) {
      return Status::NotImplemented("SEQ windows are time-based");
    }
    SeqWindow w;
    w.length = seq->window->length;
    w.direction = seq->window->direction;
    if (seq->window->anchor.empty()) {
      w.anchor = seq->window->direction == WindowDirection::kFollowing
                     ? 0
                     : n - 1;
    } else {
      const int a = scope.FindAlias(seq->window->anchor);
      if (a < 0) {
        return Status::BindError("window anchor is not a SEQ argument: " +
                                 seq->window->anchor);
      }
      w.anchor = static_cast<size_t>(a);
    }
    window = w;
  }

  // Classify the remaining conjuncts.
  Binder binder(&scope, &registry);
  std::vector<BoundExprPtr> arrival_filters(n);
  std::vector<BoundExprPtr> star_gates(n);
  std::vector<PairwiseConstraint> pairwise;
  std::vector<BoundExprPtr> final_checks;
  for (const Expr* c : rest) {
    ESLEV_ASSIGN_OR_RETURN(ExprRefs refs, CollectRefs(*c, scope));
    if (refs.has_exists || refs.has_seq) {
      return Status::NotImplemented(
          "subqueries cannot be combined with SEQ in one WHERE clause");
    }
    ESLEV_ASSIGN_OR_RETURN(BoundExprPtr bound, binder.Bind(*c));
    if (refs.has_previous) {
      const int pos = refs.SingleSlot();
      if (pos < 0) {
        return Status::NotImplemented(
            "`.previous.` constraints must reference one position");
      }
      if (!positions[pos].star) {
        return Status::BindError("`.previous.` requires a starred argument");
      }
      if (star_gates[pos]) {
        star_gates[pos] = std::make_unique<BoundBinary>(
            BinaryOp::kAnd, std::move(star_gates[pos]), std::move(bound));
      } else {
        star_gates[pos] = std::move(bound);
      }
      continue;
    }
    // A negated argument never carries a tuple, so it may only appear
    // in its own per-arrival conditions.
    bool touches_negated = false;
    for (size_t s = 0; s < refs.slots.size(); ++s) {
      if (refs.slots[s] && positions[s].negated) touches_negated = true;
    }
    const int single = refs.SingleSlot();
    if (touches_negated && !(single >= 0 && positions[single].negated &&
                             !refs.has_star_agg && !refs.has_previous)) {
      return Status::BindError(
          "negated SEQ arguments can only appear in per-position "
          "conditions: " + c->ToString());
    }
    if (single >= 0 && !refs.has_star_agg) {
      if (arrival_filters[single]) {
        arrival_filters[single] = std::make_unique<BoundBinary>(
            BinaryOp::kAnd, std::move(arrival_filters[single]),
            std::move(bound));
      } else {
        arrival_filters[single] = std::move(bound);
      }
      continue;
    }
    if (refs.Count() == 2) {
      size_t a = 0, b = 0;
      bool first = true;
      for (size_t i = 0; i < refs.slots.size(); ++i) {
        if (!refs.slots[i]) continue;
        if (first) {
          a = i;
          first = false;
        } else {
          b = i;
        }
      }
      pairwise.push_back({a, b, std::move(bound)});
      continue;
    }
    final_checks.push_back(std::move(bound));
  }

  // Projection (+ per-tuple star detection). Negated arguments cannot be
  // projected — they have no tuple.
  for (const auto& item : select.items) {
    if (!item.expr) continue;
    ESLEV_ASSIGN_OR_RETURN(ExprRefs refs, CollectRefs(*item.expr, scope));
    for (size_t s = 0; s < refs.slots.size(); ++s) {
      if (refs.slots[s] && positions[s].negated) {
        return Status::BindError(
            "cannot project a negated SEQ argument: " +
            item.expr->ToString());
      }
    }
  }
  ESLEV_ASSIGN_OR_RETURN(Projection proj,
                         BuildProjection(select, scope, binder, registry));
  int per_tuple_star = -1;
  for (size_t slot = 0; slot < positions.size(); ++slot) {
    if (!positions[slot].star) continue;
    for (const auto& item : select.items) {
      if (item.is_star ||
          (item.expr && ReadsStarColumnsDirectly(*item.expr, scope, slot))) {
        per_tuple_star = static_cast<int>(slot);
        break;
      }
    }
  }

  PlannedQuery pq;
  pq.output_schema = proj.schema;
  Operator* op_raw = nullptr;

  pq.AddNote(std::string("Source: streams of ") + seq->ToString());
  std::string seq_note =
      std::string(seq->seq_kind == SeqKind::kSeq ? "SeqOperator: "
                                                 : "ExceptionSeqOperator: ") +
      seq->ToString() + ", " + std::to_string(pairwise.size()) +
      " pairwise constraint(s), " + std::to_string(final_checks.size()) +
      " final check(s), backend=" + SeqBackendToString(seq_backend_);
  if (seq_backend_ == SeqBackend::kNfa) {
    // Surface the compiled automaton's shape in EXPLAIN (the golden
    // construction tests pin the same counts per corpus query).
    const PairingMode note_mode =
        seq->seq_kind == SeqKind::kSeq
            ? seq->mode
            : (seq->mode_explicit ? seq->mode : PairingMode::kConsecutive);
    const SeqNfa nfa = CompileSeqNfa(positions, pairwise, note_mode);
    seq_note += " (" + nfa.Describe() + ")";
  }
  if (seq->seq_kind == SeqKind::kSeq) {
    SeqOperatorConfig config;
    config.positions = std::move(positions);
    config.mode = seq->mode;
    config.window = window;
    config.arrival_filters = std::move(arrival_filters);
    config.star_gates = std::move(star_gates);
    config.pairwise = std::move(pairwise);
    config.final_checks = std::move(final_checks);
    config.projection = std::move(proj.exprs);
    config.out_schema = proj.schema;
    config.per_tuple_star = per_tuple_star;
    ESLEV_ASSIGN_OR_RETURN(
        auto op, MakeSeqOperator(std::move(config), seq_backend_));
    op_raw = op.get();
    pq.operators.push_back(std::move(op));
  } else {
    if (!final_checks.empty()) {
      return Status::NotImplemented(
          "EXCEPTION_SEQ supports per-position and pairwise conditions "
          "only");
    }
    for (const auto& p : positions) {
      if (p.negated) {
        return Status::NotImplemented(
            "negated arguments are not supported in EXCEPTION_SEQ");
      }
    }
    ExceptionSeqConfig config;
    config.positions = std::move(positions);
    config.mode =
        seq->mode_explicit ? seq->mode : PairingMode::kConsecutive;
    config.window = window;
    config.arrival_filters = std::move(arrival_filters);
    config.star_gates = std::move(star_gates);
    config.pairwise = std::move(pairwise);
    config.projection = std::move(proj.exprs);
    config.out_schema = proj.schema;
    if (seq->seq_kind == SeqKind::kExceptionSeq) {
      config.level_op = BinaryOp::kLt;
      config.level_rhs = static_cast<int64_t>(n);
    } else {
      config.level_op = level_op;
      config.level_rhs = level_rhs;
    }
    ESLEV_ASSIGN_OR_RETURN(
        auto op, MakeExceptionSeqOperator(std::move(config), seq_backend_));
    op_raw = op.get();
    pq.operators.push_back(std::move(op));
  }

  pq.AddNote(seq_note, op_raw);
  for (size_t i = 0; i < streams.size(); ++i) {
    pq.subscriptions.push_back({streams[i], op_raw, i});
  }
  pq.tail = op_raw;

  pq.target = target;
  if (!target.empty()) {
    if (Table* table = catalog_->FindTable(target)) {
      pq.target_is_table = true;
      if (pq.output_schema->num_fields() != table->schema()->num_fields()) {
        return Status::BindError("INSERT arity does not match table " +
                                 target);
      }
      auto insert = std::make_unique<TableInsertOperator>(
          table, std::vector<BoundExprPtr>{});
      pq.tail->AddSink(insert.get(), 0);
      pq.tail = insert.get();
      pq.AddNote("TableInsert: INTO " + target, insert.get());
      pq.operators.push_back(std::move(insert));
    } else if (Stream* out = catalog_->FindStream(target)) {
      if (pq.output_schema->num_fields() != out->schema()->num_fields()) {
        return Status::BindError("INSERT arity does not match stream " +
                                 target);
      }
    } else {
      return Status::NotFound("INSERT target not found: " + target);
    }
  }
  return pq;
}

}  // namespace eslev
