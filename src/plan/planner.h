// Planner: turns analyzed ESL-EV statements into operator pipelines.
//
// Query shapes supported (each maps to a paper scenario):
//   1. Single-stream transducer: filter/project, windowed NOT EXISTS
//      against the same or another stream (Examples 1, 8), NOT EXISTS
//      against a table (Example 2), aggregation with UDFs (Example 3).
//   2. Stream-table context-retrieval join (§2.1 Context Retrieval).
//   3. SEQ queries over n streams with pairing modes, windows and star
//      arguments (Examples 6, 7).
//   4. EXCEPTION_SEQ / CLEVEL_SEQ queries (Example 5, §3.1.3).
//
// WHERE-clause conjuncts of a SEQ query are classified into:
//   arrival filters (single position, no star constructs), star gates
//   (contain `.previous.`), pairwise constraints (exactly two positions),
//   and final checks (everything else) — see DESIGN.md §5.

#ifndef ESLEV_PLAN_PLANNER_H_
#define ESLEV_PLAN_PLANNER_H_

#include <memory>
#include <string>
#include <vector>

#include "cep/seq_backend.h"
#include "common/result.h"
#include "expr/binder.h"
#include "plan/catalog.h"
#include "sql/ast.h"
#include "stream/operator.h"

namespace eslev {

/// \brief A fully wired continuous-query pipeline. The Engine owns the
/// operators, makes the subscriptions, and attaches the output sink to
/// `tail`.
struct PlannedQuery {
  struct Subscription {
    Stream* stream;
    Operator* op;
    size_t port;
  };

  std::vector<std::unique_ptr<Operator>> operators;
  std::vector<Subscription> subscriptions;
  Operator* tail = nullptr;
  SchemaPtr output_schema;

  /// Human-readable plan steps, in execution order (EXPLAIN output).
  std::vector<std::string> notes;
  /// The operator each note describes, aligned with `notes` (nullptr for
  /// purely descriptive lines like "Source: ..."). EXPLAIN ANALYZE joins
  /// live counters onto the plan text through this mapping.
  std::vector<Operator*> note_ops;

  /// INSERT target name; empty for bare SELECTs. When the target is a
  /// table the pipeline already ends in a TableInsertOperator.
  std::string target;
  bool target_is_table = false;

  /// Assigned by the Engine at registration (0 = not registered).
  int query_id = 0;

  /// The engine-owned StreamInsertOperator feeding the output stream
  /// (null for table targets). Recorded at registration so runtime
  /// unregistration (DESIGN.md §17) can drop exactly this sink.
  Operator* sink = nullptr;

  /// \brief Record a plan step. When `op` is given, the note's prefix
  /// (text before the first ':') becomes the operator's metrics label.
  void AddNote(std::string note, Operator* op = nullptr) {
    if (op != nullptr && op->label().empty()) {
      op->set_label(note.substr(0, note.find(':')));
    }
    notes.push_back(std::move(note));
    note_ops.push_back(op);
  }
};

class Planner {
 public:
  /// \brief `seq_backend` picks the matcher implementation for SEQ /
  /// EXCEPTION_SEQ pipelines (DESIGN.md §14); all other operators are
  /// backend-independent.
  explicit Planner(const Catalog* catalog,
                   SeqBackend seq_backend = SeqBackend::kHistory)
      : catalog_(catalog), seq_backend_(seq_backend) {}

  /// \brief Plan a continuous query (INSERT INTO ... SELECT, or SELECT).
  Result<PlannedQuery> Plan(const Statement& stmt);

 private:
  Result<PlannedQuery> PlanSelectInto(const SelectStmt& select,
                                      const std::string& target);

  Result<PlannedQuery> PlanSeqQuery(const SelectStmt& select,
                                    const std::string& target,
                                    std::vector<const Expr*> conjuncts);
  Result<PlannedQuery> PlanStreamPipeline(
      const SelectStmt& select, const std::string& target,
      std::vector<const Expr*> conjuncts);
  Result<PlannedQuery> PlanStreamTableJoin(
      const SelectStmt& select, const std::string& target,
      std::vector<const Expr*> conjuncts);

  const Catalog* catalog_;
  SeqBackend seq_backend_;
};

/// \brief Flatten a WHERE clause into its top-level AND conjuncts.
void FlattenConjuncts(const Expr* where, std::vector<const Expr*>* out);

/// \brief Collect which scope slots an expression references, whether it
/// contains `.previous.` references, star aggregates, or subqueries.
struct ExprRefs {
  std::vector<bool> slots;  // size == scope size
  bool has_previous = false;
  bool has_star_agg = false;
  bool has_exists = false;
  bool has_seq = false;

  int SingleSlot() const;  // the only referenced slot, or -1
  size_t Count() const;
};

Result<ExprRefs> CollectRefs(const Expr& expr, const BindScope& scope);

}  // namespace eslev

#endif  // ESLEV_PLAN_PLANNER_H_
