#include "plan/snapshot_executor.h"

#include <algorithm>
#include <map>

#include "common/string_util.h"
#include "plan/planner.h"
#include "plan/type_inference.h"

namespace eslev {

namespace {

std::string ItemName(const SelectItem& item, size_t index) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr && item.expr->kind == ExprKind::kColumnRef) {
    return static_cast<const ColumnRefExpr&>(*item.expr).column;
  }
  if (item.expr && item.expr->kind == ExprKind::kFuncCall) {
    return static_cast<const FuncCallExpr&>(*item.expr).name;
  }
  return "col" + std::to_string(index);
}

void CollectAggCalls(const Expr& expr, const FunctionRegistry& registry,
                     std::vector<const FuncCallExpr*>* out) {
  switch (expr.kind) {
    case ExprKind::kFuncCall: {
      const auto& f = static_cast<const FuncCallExpr&>(expr);
      if (registry.IsAggregate(f.name)) {
        out->push_back(&f);
        return;
      }
      for (const auto& a : f.args) CollectAggCalls(*a, registry, out);
      return;
    }
    case ExprKind::kUnary:
      CollectAggCalls(*static_cast<const UnaryExpr&>(expr).operand, registry,
                      out);
      return;
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      CollectAggCalls(*b.lhs, registry, out);
      CollectAggCalls(*b.rhs, registry, out);
      return;
    }
    default:
      return;
  }
}

}  // namespace

Result<std::vector<Tuple>> SnapshotExecutor::SourceRows(
    const TableRef& ref) const {
  std::vector<Tuple> rows;
  if (Table* table = catalog_->FindTable(ref.name)) {
    rows = table->rows();
    return rows;
  }
  if (Stream* stream = catalog_->FindStream(ref.name)) {
    if (stream->retained().empty() && stream->tuples_pushed() > 0) {
      return Status::Invalid(
          "stream '" + ref.name +
          "' retains no history for snapshot queries; configure "
          "EngineOptions::default_retention or Stream::SetRetention");
    }
    Timestamp cutoff = kMinTimestamp;
    if (ref.window) {
      if (ref.window->row_based ||
          ref.window->direction != WindowDirection::kPreceding) {
        return Status::NotImplemented(
            "snapshot stream windows must be RANGE ... PRECEDING");
      }
      cutoff = now_ - ref.window->length;
    }
    for (const Tuple& t : stream->retained()) {
      if (t.ts() >= cutoff) rows.push_back(t);
    }
    return rows;
  }
  return Status::NotFound("snapshot source not found: " + ref.name);
}

Result<std::vector<Tuple>> SnapshotExecutor::Execute(const SelectStmt& stmt) {
  OuterContext empty;
  return ExecuteInternal(stmt, empty, /*exists_only=*/false, nullptr);
}

Result<std::vector<Tuple>> SnapshotExecutor::ExecuteInternal(
    const SelectStmt& stmt, const OuterContext& outer, bool exists_only,
    bool* exists_out) {
  const FunctionRegistry& registry = catalog_->registry();
  if (stmt.from.empty()) {
    return Status::BindError("snapshot query has no FROM clause");
  }

  // Materialize sources.
  std::vector<std::vector<Tuple>> sources;
  for (const TableRef& ref : stmt.from) {
    ESLEV_ASSIGN_OR_RETURN(auto rows, SourceRows(ref));
    sources.push_back(std::move(rows));
  }
  const size_t k = sources.size();

  // Scope: inner entries (depth 0) then the outer context.
  BindScope scope;
  for (size_t i = 0; i < k; ++i) {
    SchemaPtr schema;
    if (Table* t = catalog_->FindTable(stmt.from[i].name)) {
      schema = t->schema();
    } else {
      schema = catalog_->FindStream(stmt.from[i].name)->schema();
    }
    scope.AddEntry({stmt.from[i].alias, schema, 0, false});
  }
  for (const ScopeEntry& e : outer.entries) {
    scope.AddEntry(e);
  }
  Binder binder(&scope, &registry);

  // Split conjuncts into plain predicates and EXISTS subqueries.
  std::vector<const Expr*> conjuncts;
  FlattenConjuncts(stmt.where.get(), &conjuncts);
  std::vector<BoundExprPtr> plain;
  std::vector<const ExistsExpr*> exists;
  for (const Expr* c : conjuncts) {
    if (c->kind == ExprKind::kExists) {
      exists.push_back(static_cast<const ExistsExpr*>(c));
      continue;
    }
    if (c->kind == ExprKind::kSeq) {
      return Status::NotImplemented(
          "SEQ operators are continuous-query constructs, not snapshots");
    }
    ESLEV_ASSIGN_OR_RETURN(BoundExprPtr b, binder.Bind(*c));
    plain.push_back(std::move(b));
  }

  // Aggregates.
  std::vector<const FuncCallExpr*> agg_calls;
  for (const auto& item : stmt.items) {
    if (item.expr) CollectAggCalls(*item.expr, registry, &agg_calls);
  }
  if (stmt.having) CollectAggCalls(*stmt.having, registry, &agg_calls);
  for (const OrderKey& key : stmt.order_by) {
    CollectAggCalls(*key.expr, registry, &agg_calls);
  }

  std::map<const Expr*, size_t> agg_index;
  struct AggPlan {
    const AggregateFunction* fn;
    BoundExprPtr arg;  // null = count(*)
  };
  std::vector<AggPlan> agg_plans;
  for (const FuncCallExpr* call : agg_calls) {
    agg_index[call] = agg_plans.size();
    AggPlan plan;
    ESLEV_ASSIGN_OR_RETURN(plan.fn, registry.FindAggregate(call->name));
    if (!call->star_arg && !call->args.empty()) {
      if (call->args.size() != 1) {
        return Status::NotImplemented("aggregates take one argument");
      }
      ESLEV_ASSIGN_OR_RETURN(plan.arg, binder.Bind(*call->args[0]));
    }
    agg_plans.push_back(std::move(plan));
  }
  Binder out_binder(&scope, &registry);
  out_binder.set_aggregate_hook(
      [&agg_index](const FuncCallExpr& call) -> Result<BoundExprPtr> {
        auto it = agg_index.find(&call);
        if (it == agg_index.end()) {
          return Status::BindError("unplanned aggregate: " + call.name);
        }
        return BoundExprPtr(new BoundAggRef(it->second));
      });

  // Projection.
  std::vector<BoundExprPtr> projection;
  std::vector<Field> out_fields;
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    const SelectItem& item = stmt.items[i];
    if (item.is_star) {
      for (size_t slot = 0; slot < k; ++slot) {
        const ScopeEntry& e = scope.entries()[slot];
        for (size_t col = 0; col < e.schema->num_fields(); ++col) {
          projection.push_back(std::make_unique<BoundColumnRef>(
              slot, col, false, e.alias));
          out_fields.push_back(
              {k > 1 ? e.alias + "_" + e.schema->field(col).name
                     : e.schema->field(col).name,
               e.schema->field(col).type});
        }
      }
      continue;
    }
    ESLEV_ASSIGN_OR_RETURN(BoundExprPtr b, out_binder.Bind(*item.expr));
    ESLEV_ASSIGN_OR_RETURN(TypeId type,
                           InferExprType(*item.expr, scope, registry));
    projection.push_back(std::move(b));
    out_fields.push_back({ItemName(item, i), type});
  }
  SchemaPtr out_schema = Schema::Make(std::move(out_fields));

  // Group-by plan.
  std::vector<BoundExprPtr> group_by;
  for (const auto& g : stmt.group_by) {
    ESLEV_ASSIGN_OR_RETURN(BoundExprPtr b, binder.Bind(*g));
    group_by.push_back(std::move(b));
  }
  BoundExprPtr having;
  if (stmt.having) {
    ESLEV_ASSIGN_OR_RETURN(having, out_binder.Bind(*stmt.having));
  }
  std::vector<std::pair<BoundExprPtr, bool>> order_keys;  // expr, desc
  for (const OrderKey& key : stmt.order_by) {
    ESLEV_ASSIGN_OR_RETURN(BoundExprPtr b, out_binder.Bind(*key.expr));
    order_keys.emplace_back(std::move(b), key.descending);
  }
  std::vector<std::vector<Value>> output_sort_keys;

  // Iterate the cartesian product of the sources.
  RowScratch scratch(scope.size());
  for (size_t i = 0; i < outer.tuples.size(); ++i) {
    scratch.SetTuple(k + i, outer.tuples[i]);
  }

  struct Group {
    std::vector<std::unique_ptr<AggregateState>> states;
    std::vector<const Tuple*> representative;
  };
  std::map<std::vector<std::string>, Group> groups;
  std::vector<Tuple> output;

  std::vector<size_t> idx(k, 0);
  const bool any_empty =
      std::any_of(sources.begin(), sources.end(),
                  [](const auto& s) { return s.empty(); });

  auto eval_combo = [&]() -> Result<bool> {  // returns "stop iteration"
    for (const auto& p : plain) {
      ESLEV_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*p, scratch.Row()));
      if (!pass) return false;
    }
    for (const ExistsExpr* e : exists) {
      OuterContext next;
      next.entries.reserve(scope.size());
      for (const ScopeEntry& entry : scope.entries()) {
        ScopeEntry shifted = entry;
        shifted.depth += 1;
        next.entries.push_back(shifted);
      }
      next.tuples.reserve(scope.size());
      for (size_t s = 0; s < scope.size(); ++s) {
        next.tuples.push_back(scratch.Row().slots[s]);
      }
      bool found = false;
      ESLEV_RETURN_NOT_OK(
          ExecuteInternal(*e->subquery, next, true, &found).status());
      const bool pass = e->negated ? !found : found;
      if (!pass) return false;
    }
    if (exists_only) {
      *exists_out = true;
      return true;  // stop: one witness suffices
    }
    if (!agg_plans.empty()) {
      std::vector<std::string> key;
      for (const auto& g : group_by) {
        ESLEV_ASSIGN_OR_RETURN(Value v, g->Eval(scratch.Row()));
        key.push_back(std::string(TypeIdToString(v.type())) + ":" +
                      v.ToString());
      }
      auto it = groups.find(key);
      if (it == groups.end()) {
        Group group;
        for (const auto& plan : agg_plans) {
          group.states.push_back(plan.fn->make_state());
        }
        it = groups.emplace(std::move(key), std::move(group)).first;
      }
      for (size_t a = 0; a < agg_plans.size(); ++a) {
        Value v = Value::Int(1);
        if (agg_plans[a].arg) {
          ESLEV_ASSIGN_OR_RETURN(v, agg_plans[a].arg->Eval(scratch.Row()));
        }
        ESLEV_RETURN_NOT_OK(it->second.states[a]->Accumulate(v));
      }
      it->second.representative.assign(scratch.Row().slots,
                                       scratch.Row().slots + scope.size());
      return false;
    }
    // Plain projection.
    Timestamp ts = 0;
    for (size_t s = 0; s < k; ++s) {
      ts = std::max(ts, scratch.Row().slots[s]->ts());
    }
    std::vector<Value> values;
    values.reserve(projection.size());
    for (const auto& p : projection) {
      ESLEV_ASSIGN_OR_RETURN(Value v, p->Eval(scratch.Row()));
      values.push_back(std::move(v));
    }
    if (!order_keys.empty()) {
      std::vector<Value> keys;
      for (const auto& [expr, desc] : order_keys) {
        ESLEV_ASSIGN_OR_RETURN(Value v, expr->Eval(scratch.Row()));
        keys.push_back(std::move(v));
      }
      output_sort_keys.push_back(std::move(keys));
    }
    ESLEV_ASSIGN_OR_RETURN(Tuple out,
                           MakeTuple(out_schema, std::move(values), ts));
    output.push_back(std::move(out));
    return false;
  };

  if (!any_empty) {
    while (true) {
      for (size_t s = 0; s < k; ++s) {
        scratch.SetTuple(s, &sources[s][idx[s]]);
      }
      ESLEV_ASSIGN_OR_RETURN(bool stop, eval_combo());
      if (stop) return output;
      // Odometer increment.
      size_t s = k;
      while (s-- > 0) {
        if (++idx[s] < sources[s].size()) break;
        idx[s] = 0;
        if (s == 0) {
          s = SIZE_MAX;
          break;
        }
      }
      if (s == SIZE_MAX) break;
    }
  }

  if (exists_only) return output;  // found nothing

  if (!agg_plans.empty()) {
    // Aggregate queries over zero qualifying rows with no GROUP BY still
    // produce one row (SQL semantics).
    if (groups.empty() && group_by.empty()) {
      Group group;
      for (const auto& plan : agg_plans) {
        group.states.push_back(plan.fn->make_state());
      }
      group.representative.assign(scope.size(), nullptr);
      groups.emplace(std::vector<std::string>{}, std::move(group));
    }
    for (const auto& [key, group] : groups) {
      std::vector<Value> agg_values;
      for (const auto& st : group.states) {
        agg_values.push_back(st->Finalize());
      }
      RowScratch out_scratch(scope.size());
      for (size_t s = 0; s < group.representative.size(); ++s) {
        out_scratch.SetTuple(s, group.representative[s]);
      }
      out_scratch.SetAggValues(&agg_values);
      if (having) {
        ESLEV_ASSIGN_OR_RETURN(bool pass,
                               EvalPredicate(*having, out_scratch.Row()));
        if (!pass) continue;
      }
      std::vector<Value> values;
      values.reserve(projection.size());
      for (const auto& p : projection) {
        ESLEV_ASSIGN_OR_RETURN(Value v, p->Eval(out_scratch.Row()));
        values.push_back(std::move(v));
      }
      if (!order_keys.empty()) {
        std::vector<Value> keys;
        for (const auto& [expr, desc] : order_keys) {
          ESLEV_ASSIGN_OR_RETURN(Value v, expr->Eval(out_scratch.Row()));
          keys.push_back(std::move(v));
        }
        output_sort_keys.push_back(std::move(keys));
      }
      ESLEV_ASSIGN_OR_RETURN(Tuple out,
                             MakeTuple(out_schema, std::move(values), now_));
      output.push_back(std::move(out));
    }
  }

  // ORDER BY: stable sort by the captured keys.
  if (!order_keys.empty() && output.size() > 1) {
    std::vector<size_t> index(output.size());
    for (size_t i = 0; i < index.size(); ++i) index[i] = i;
    std::stable_sort(index.begin(), index.end(),
                     [&](size_t a, size_t b) {
                       for (size_t kidx = 0; kidx < order_keys.size();
                            ++kidx) {
                         auto cmp = output_sort_keys[a][kidx].Compare(
                             output_sort_keys[b][kidx]);
                         const int c = cmp.ok() ? *cmp : 0;
                         if (c != 0) {
                           return order_keys[kidx].second ? c > 0 : c < 0;
                         }
                       }
                       return false;
                     });
    std::vector<Tuple> sorted;
    sorted.reserve(output.size());
    for (size_t i : index) sorted.push_back(std::move(output[i]));
    output = std::move(sorted);
  }
  // LIMIT.
  if (stmt.limit >= 0 &&
      output.size() > static_cast<size_t>(stmt.limit)) {
    output.resize(static_cast<size_t>(stmt.limit));
  }
  return output;
}

}  // namespace eslev
