// SnapshotExecutor: one-shot (ad-hoc) evaluation of a SELECT against
// persistent tables and the retained history of streams — the paper's
// §2.1 "ad-hoc snapshot queries" (e.g. a physician asking for a
// patient's current location without persisting the location stream).

#ifndef ESLEV_PLAN_SNAPSHOT_EXECUTOR_H_
#define ESLEV_PLAN_SNAPSHOT_EXECUTOR_H_

#include <vector>

#include "common/result.h"
#include "expr/binder.h"
#include "plan/catalog.h"
#include "sql/ast.h"

namespace eslev {

class SnapshotExecutor {
 public:
  /// \param now the engine clock, used to evaluate PRECEDING windows on
  /// stream references.
  SnapshotExecutor(const Catalog* catalog, Timestamp now)
      : catalog_(catalog), now_(now) {}

  /// \brief Execute a SELECT supporting: FROM over tables and retained
  /// streams (cartesian), WHERE with (NOT) EXISTS subqueries, scalar
  /// functions/UDFs, aggregates with GROUP BY / HAVING.
  Result<std::vector<Tuple>> Execute(const SelectStmt& stmt);

 private:
  struct OuterContext {
    std::vector<ScopeEntry> entries;        // depths already >= 1
    std::vector<const Tuple*> tuples;       // aligned with entries
  };

  Result<std::vector<Tuple>> ExecuteInternal(const SelectStmt& stmt,
                                             const OuterContext& outer,
                                             bool exists_only,
                                             bool* exists_out);

  // Materialize the rows a FROM entry contributes.
  Result<std::vector<Tuple>> SourceRows(const TableRef& ref) const;

  const Catalog* catalog_;
  Timestamp now_;
};

}  // namespace eslev

#endif  // ESLEV_PLAN_SNAPSHOT_EXECUTOR_H_
