#include "plan/type_inference.h"

namespace eslev {

Result<TypeId> InferExprType(const Expr& expr, const BindScope& scope,
                             const FunctionRegistry& registry) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return static_cast<const LiteralExpr&>(expr).value.type();
    case ExprKind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(expr);
      if (!ref.qualifier.empty()) {
        const int slot = scope.FindAlias(ref.qualifier);
        if (slot < 0) {
          return Status::BindError("unknown alias: " + ref.qualifier);
        }
        const auto& entry = scope.entries()[static_cast<size_t>(slot)];
        ESLEV_ASSIGN_OR_RETURN(size_t col,
                               entry.schema->FieldIndex(ref.column));
        return entry.schema->field(col).type;
      }
      ESLEV_ASSIGN_OR_RETURN(auto loc, scope.ResolveColumn(ref.column));
      return scope.entries()[loc.first].schema->field(loc.second).type;
    }
    case ExprKind::kStarAgg: {
      const auto& agg = static_cast<const StarAggExpr&>(expr);
      if (agg.fn == StarAggFn::kCount) return TypeId::kInt64;
      const int slot = scope.FindAlias(agg.stream);
      if (slot < 0) return Status::BindError("unknown alias: " + agg.stream);
      const auto& entry = scope.entries()[static_cast<size_t>(slot)];
      ESLEV_ASSIGN_OR_RETURN(size_t col, entry.schema->FieldIndex(agg.column));
      return entry.schema->field(col).type;
    }
    case ExprKind::kFuncCall: {
      const auto& call = static_cast<const FuncCallExpr&>(expr);
      if (registry.IsAggregate(call.name)) {
        ESLEV_ASSIGN_OR_RETURN(const AggregateFunction* fn,
                               registry.FindAggregate(call.name));
        if (fn->return_type != TypeId::kNull) return fn->return_type;
        if (call.args.empty()) return TypeId::kInt64;  // count(*)
        return InferExprType(*call.args[0], scope, registry);
      }
      ESLEV_ASSIGN_OR_RETURN(const ScalarFunction* fn,
                             registry.FindScalar(call.name));
      if (fn->return_type != TypeId::kNull) return fn->return_type;
      if (call.args.empty()) return TypeId::kString;
      return InferExprType(*call.args[0], scope, registry);
    }
    case ExprKind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(expr);
      if (u.op == UnaryOp::kNot) return TypeId::kBool;
      return InferExprType(*u.operand, scope, registry);
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      switch (b.op) {
        case BinaryOp::kAnd:
        case BinaryOp::kOr:
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
        case BinaryOp::kLike:
        case BinaryOp::kNotLike:
          return TypeId::kBool;
        default:
          break;
      }
      ESLEV_ASSIGN_OR_RETURN(TypeId lt, InferExprType(*b.lhs, scope, registry));
      ESLEV_ASSIGN_OR_RETURN(TypeId rt, InferExprType(*b.rhs, scope, registry));
      if (lt == TypeId::kDouble || rt == TypeId::kDouble) {
        return TypeId::kDouble;
      }
      const bool lts = lt == TypeId::kTimestamp;
      const bool rts = rt == TypeId::kTimestamp;
      if (lts && rts) return TypeId::kInt64;  // ts - ts -> duration
      if (lts || rts) {
        if (b.op == BinaryOp::kAdd || b.op == BinaryOp::kSub) {
          return TypeId::kTimestamp;
        }
        return TypeId::kInt64;
      }
      return TypeId::kInt64;
    }
    case ExprKind::kExists:
      return TypeId::kBool;
    case ExprKind::kSeq: {
      const auto& seq = static_cast<const SeqExpr&>(expr);
      return seq.seq_kind == SeqKind::kClevelSeq ? TypeId::kInt64
                                                 : TypeId::kBool;
    }
  }
  return Status::BindError("cannot infer type");
}

}  // namespace eslev
