// Best-effort static type inference for projecting expressions into
// output stream/table schemas.

#ifndef ESLEV_PLAN_TYPE_INFERENCE_H_
#define ESLEV_PLAN_TYPE_INFERENCE_H_

#include "common/result.h"
#include "expr/binder.h"
#include "expr/function_registry.h"
#include "sql/ast.h"

namespace eslev {

/// \brief Infer the static result type of `expr` against `scope`.
/// Scalar functions report their declared return type; arithmetic
/// follows the evaluator's rules (timestamp difference is INT, etc.).
Result<TypeId> InferExprType(const Expr& expr, const BindScope& scope,
                             const FunctionRegistry& registry);

}  // namespace eslev

#endif  // ESLEV_PLAN_TYPE_INFERENCE_H_
