#include "recovery/checkpoint.h"

#include "recovery/codec.h"

namespace eslev {

std::string EncodeCheckpointHeader() {
  BinaryEncoder enc;
  enc.PutU32(kCheckpointMagic);
  enc.PutU32(kCheckpointVersion);
  return enc.TakeBuffer();
}

Status ValidateCheckpointHeader(const std::string& payload,
                                const std::string& what) {
  BinaryDecoder dec(payload);
  ESLEV_ASSIGN_OR_RETURN(uint32_t magic, dec.GetU32());
  if (magic != kCheckpointMagic) {
    return Status::IoError(what + ": bad magic (not a checkpoint file)");
  }
  ESLEV_ASSIGN_OR_RETURN(uint32_t version, dec.GetU32());
  if (version != kCheckpointVersion) {
    return Status::IoError(what + ": version mismatch (file v" +
                           std::to_string(version) + ", engine v" +
                           std::to_string(kCheckpointVersion) + ")");
  }
  return Status::OK();
}

std::string ShardedManifest::Encode() const {
  std::string out;
  AppendFrame(EncodeCheckpointHeader(), &out);
  BinaryEncoder body;
  body.PutU32(num_shards);
  body.PutI64(low_watermark);
  body.PutU64(wal_last_lsn);
  body.PutU32(static_cast<uint32_t>(shard_dirs.size()));
  for (const std::string& dir : shard_dirs) {
    body.PutString(dir);
  }
  AppendFrame(body.buffer(), &out);
  return out;
}

Result<ShardedManifest> ShardedManifest::Decode(const std::string& bytes) {
  ESLEV_ASSIGN_OR_RETURN(FrameScanResult frames,
                         ScanFrames(bytes.data(), bytes.size()));
  if (frames.torn_tail || frames.payloads.size() != 2) {
    return Status::IoError("manifest: malformed (expected 2 intact frames)");
  }
  ESLEV_RETURN_NOT_OK(ValidateCheckpointHeader(frames.payloads[0], "manifest"));
  BinaryDecoder dec(frames.payloads[1]);
  ShardedManifest m;
  ESLEV_ASSIGN_OR_RETURN(m.num_shards, dec.GetU32());
  ESLEV_ASSIGN_OR_RETURN(m.low_watermark, dec.GetI64());
  ESLEV_ASSIGN_OR_RETURN(m.wal_last_lsn, dec.GetU64());
  ESLEV_ASSIGN_OR_RETURN(uint32_t ndirs, dec.GetU32());
  if (ndirs != m.num_shards) {
    return Status::IoError("manifest: shard dir count mismatch");
  }
  for (uint32_t i = 0; i < ndirs; ++i) {
    ESLEV_ASSIGN_OR_RETURN(std::string dir, dec.GetString());
    m.shard_dirs.push_back(std::move(dir));
  }
  if (!dec.AtEnd()) {
    return Status::IoError("manifest: trailing bytes");
  }
  return m;
}

Status WriteManifest(const std::string& dir, const ShardedManifest& manifest) {
  return WriteFileAtomic(dir + "/" + kManifestFileName, manifest.Encode());
}

Result<ShardedManifest> ReadManifest(const std::string& dir) {
  ESLEV_ASSIGN_OR_RETURN(std::string bytes,
                         ReadFileAll(dir + "/" + kManifestFileName));
  return ShardedManifest::Decode(bytes);
}

}  // namespace eslev
