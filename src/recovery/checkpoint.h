// Shared checkpoint constants and the sharded-checkpoint manifest
// (DESIGN.md §10). The per-engine checkpoint file itself is written by
// Engine::Checkpoint (core/engine_checkpoint.cc); this header fixes the
// on-disk names, magic, and version so every layer agrees.

#ifndef ESLEV_RECOVERY_CHECKPOINT_H_
#define ESLEV_RECOVERY_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/time.h"

namespace eslev {

/// First frame of every checkpoint/manifest file ("VLSE" little-endian).
constexpr uint32_t kCheckpointMagic = 0x45534C56u;
/// Bumped on any incompatible layout change; Restore rejects mismatches.
constexpr uint32_t kCheckpointVersion = 1;

/// File names inside a checkpoint directory.
constexpr const char* kCheckpointFileName = "engine.ckpt";
constexpr const char* kWalFileName = "wal.log";
constexpr const char* kManifestFileName = "MANIFEST";
/// Serving-layer session registry (DESIGN.md §17), written next to the
/// host checkpoint so recovery reproduces every tenant's subscriptions.
constexpr const char* kSessionRegistryFileName = "session.reg";

/// \brief Top-level record of a coordinated ShardedEngine checkpoint:
/// which shard subdirectories exist and at what consistent cut (low
/// watermark) they were taken.
struct ShardedManifest {
  uint32_t num_shards = 0;
  Timestamp low_watermark = 0;
  /// LSN of the last front-end WAL record covered by this checkpoint;
  /// replay skips records with lsn <= this.
  uint64_t wal_last_lsn = 0;
  /// Relative directory names, one per shard, index == shard id.
  std::vector<std::string> shard_dirs;

  /// CRC-framed bytes (magic + version header frame, then body frame).
  std::string Encode() const;
  static Result<ShardedManifest> Decode(const std::string& bytes);
};

/// \brief Write `manifest` to `<dir>/MANIFEST` atomically.
Status WriteManifest(const std::string& dir, const ShardedManifest& manifest);

/// \brief Read and validate `<dir>/MANIFEST`.
Result<ShardedManifest> ReadManifest(const std::string& dir);

/// \brief Encode the standard header payload shared by checkpoint files
/// and the manifest: [u32 magic][u32 version]. Decoding validates both
/// and returns a descriptive Status on mismatch (the version-mismatch
/// fault-injection path).
std::string EncodeCheckpointHeader();
Status ValidateCheckpointHeader(const std::string& payload,
                                const std::string& what);

}  // namespace eslev

#endif  // ESLEV_RECOVERY_CHECKPOINT_H_
