#include "recovery/codec.h"

#include <cstdio>
#include <cstring>

namespace eslev {

namespace {

// Lazily built table for the reflected IEEE CRC-32.
const uint32_t* Crc32Table() {
  static uint32_t table[256];
  static bool built = [] {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return true;
  }();
  (void)built;
  return table;
}

// Schema back-reference markers (frozen by the golden-format test).
constexpr uint8_t kSchemaInline = 0;
constexpr uint8_t kSchemaRef = 1;
constexpr uint8_t kSchemaNull = 2;

// Frames cannot plausibly exceed this; larger length fields are garbage
// (protects the scanner from allocating gigabytes off a corrupt header).
constexpr uint32_t kMaxFrameLen = 1u << 30;

}  // namespace

uint32_t Crc32(const void* data, size_t len) {
  const uint32_t* table = Crc32Table();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t c = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void BinaryEncoder::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void BinaryEncoder::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void BinaryEncoder::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void BinaryEncoder::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.append(s);
}

void BinaryEncoder::PutValue(const Value& v) {
  PutU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case TypeId::kNull:
      break;
    case TypeId::kBool:
      PutBool(v.bool_value());
      break;
    case TypeId::kInt64:
      PutI64(v.int_value());
      break;
    case TypeId::kDouble:
      PutDouble(v.double_value());
      break;
    case TypeId::kString:
      PutString(v.string_value());
      break;
    case TypeId::kTimestamp:
      PutI64(v.time_value());
      break;
  }
}

void BinaryEncoder::PutSchema(const SchemaPtr& schema) {
  if (schema == nullptr) {
    PutU8(kSchemaNull);
    return;
  }
  auto it = schema_ids_.find(schema.get());
  if (it != schema_ids_.end()) {
    PutU8(kSchemaRef);
    PutU32(it->second);
    return;
  }
  const uint32_t id = static_cast<uint32_t>(schema_ids_.size());
  schema_ids_.emplace(schema.get(), id);
  PutU8(kSchemaInline);
  PutU32(static_cast<uint32_t>(schema->num_fields()));
  for (const Field& f : schema->fields()) {
    PutString(f.name);
    PutU8(static_cast<uint8_t>(f.type));
  }
}

void BinaryEncoder::PutTuple(const Tuple& tuple) {
  PutSchema(tuple.schema());
  PutI64(tuple.ts());
  PutU32(static_cast<uint32_t>(tuple.size()));
  for (const Value& v : tuple.values()) {
    PutValue(v);
  }
}

Status BinaryDecoder::Need(size_t n) const {
  if (size_ - pos_ < n) {
    return Status::IoError("decode past end of buffer (want " +
                           std::to_string(n) + " bytes, have " +
                           std::to_string(size_ - pos_) + ")");
  }
  return Status::OK();
}

Result<uint8_t> BinaryDecoder::GetU8() {
  ESLEV_RETURN_NOT_OK(Need(1));
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<bool> BinaryDecoder::GetBool() {
  ESLEV_ASSIGN_OR_RETURN(uint8_t v, GetU8());
  if (v > 1) return Status::IoError("bad bool byte");
  return v == 1;
}

Result<uint32_t> BinaryDecoder::GetU32() {
  ESLEV_RETURN_NOT_OK(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> BinaryDecoder::GetU64() {
  ESLEV_RETURN_NOT_OK(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<int64_t> BinaryDecoder::GetI64() {
  ESLEV_ASSIGN_OR_RETURN(uint64_t v, GetU64());
  return static_cast<int64_t>(v);
}

Result<double> BinaryDecoder::GetDouble() {
  ESLEV_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> BinaryDecoder::GetString() {
  ESLEV_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  ESLEV_RETURN_NOT_OK(Need(len));
  std::string s(data_ + pos_, len);
  pos_ += len;
  return s;
}

Result<Value> BinaryDecoder::GetValue() {
  ESLEV_ASSIGN_OR_RETURN(uint8_t tag, GetU8());
  switch (static_cast<TypeId>(tag)) {
    case TypeId::kNull:
      return Value::Null();
    case TypeId::kBool: {
      ESLEV_ASSIGN_OR_RETURN(bool v, GetBool());
      return Value::Bool(v);
    }
    case TypeId::kInt64: {
      ESLEV_ASSIGN_OR_RETURN(int64_t v, GetI64());
      return Value::Int(v);
    }
    case TypeId::kDouble: {
      ESLEV_ASSIGN_OR_RETURN(double v, GetDouble());
      return Value::Double(v);
    }
    case TypeId::kString: {
      ESLEV_ASSIGN_OR_RETURN(std::string v, GetString());
      return Value::String(std::move(v));
    }
    case TypeId::kTimestamp: {
      ESLEV_ASSIGN_OR_RETURN(int64_t v, GetI64());
      return Value::Time(v);
    }
  }
  return Status::IoError("bad value type tag " + std::to_string(tag));
}

Result<SchemaPtr> BinaryDecoder::GetSchema() {
  ESLEV_ASSIGN_OR_RETURN(uint8_t marker, GetU8());
  switch (marker) {
    case kSchemaNull:
      return SchemaPtr(nullptr);
    case kSchemaRef: {
      ESLEV_ASSIGN_OR_RETURN(uint32_t id, GetU32());
      if (id >= schemas_.size()) {
        return Status::IoError("schema back-reference out of range");
      }
      return schemas_[id];
    }
    case kSchemaInline: {
      ESLEV_ASSIGN_OR_RETURN(uint32_t nfields, GetU32());
      std::vector<Field> fields;
      fields.reserve(nfields);
      for (uint32_t i = 0; i < nfields; ++i) {
        Field f;
        ESLEV_ASSIGN_OR_RETURN(f.name, GetString());
        ESLEV_ASSIGN_OR_RETURN(uint8_t type, GetU8());
        if (type > static_cast<uint8_t>(TypeId::kTimestamp)) {
          return Status::IoError("bad field type tag");
        }
        f.type = static_cast<TypeId>(type);
        fields.push_back(std::move(f));
      }
      SchemaPtr schema = Schema::Make(std::move(fields));
      schemas_.push_back(schema);
      return schema;
    }
    default:
      return Status::IoError("bad schema marker " + std::to_string(marker));
  }
}

Result<Tuple> BinaryDecoder::GetTuple() {
  ESLEV_ASSIGN_OR_RETURN(SchemaPtr schema, GetSchema());
  ESLEV_ASSIGN_OR_RETURN(int64_t ts, GetI64());
  ESLEV_ASSIGN_OR_RETURN(uint32_t arity, GetU32());
  std::vector<Value> values;
  values.reserve(arity);
  for (uint32_t i = 0; i < arity; ++i) {
    ESLEV_ASSIGN_OR_RETURN(Value v, GetValue());
    values.push_back(std::move(v));
  }
  // Direct construction: the values were serialized from a valid tuple,
  // and re-validation (MakeTuple) could coerce and break byte-identity.
  return Tuple(std::move(schema), std::move(values), ts);
}

void AppendFrame(const std::string& payload, std::string* out) {
  BinaryEncoder header;
  header.PutU32(static_cast<uint32_t>(payload.size()));
  header.PutU32(Crc32(payload));
  out->append(header.buffer());
  out->append(payload);
}

Result<FrameScanResult> ScanFrames(const char* data, size_t size) {
  FrameScanResult result;
  size_t pos = 0;
  while (pos < size) {
    if (size - pos < 8) {
      result.torn_tail = true;  // partial frame header
      break;
    }
    BinaryDecoder header(data + pos, 8);
    const uint32_t len = *header.GetU32();
    const uint32_t crc = *header.GetU32();
    if (len > kMaxFrameLen || size - pos - 8 < len) {
      result.torn_tail = true;  // payload shorter than declared
      break;
    }
    const char* payload = data + pos + 8;
    if (Crc32(payload, len) != crc) {
      if (pos + 8 + len == size) {
        result.torn_tail = true;  // torn final frame (partial overwrite)
        break;
      }
      return Status::IoError(
          "frame CRC mismatch at offset " + std::to_string(pos) +
          " with data following (mid-file corruption)");
    }
    result.payloads.emplace_back(payload, len);
    pos += 8 + len;
    result.valid_bytes = pos;
  }
  return result;
}

Status WriteFileAtomic(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open for writing: " + tmp);
  }
  const size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (written != contents.size() || !flushed) {
    std::remove(tmp.c_str());
    return Status::IoError("write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("rename failed: " + tmp + " -> " + path);
  }
  return Status::OK();
}

Result<std::string> ReadFileAll(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) return Status::IoError("read failed: " + path);
  return out;
}

}  // namespace eslev
