// Binary codec for the durability subsystem (DESIGN.md §10): fixed
// little-endian primitive encoding, CRC32-framed records, and
// Value/Tuple/Schema serialization with per-buffer schema deduplication.
//
// The same helpers back the event WAL (recovery/wal.h), checkpoint files
// (core/engine_checkpoint.cc), the sharded manifest, and the binary
// trace format in rfid/trace_io — one frozen on-disk layout, one golden
// test (tests/recovery/golden_format_test.cc).
//
// Frame layout (all integers little-endian regardless of host):
//
//   [u32 payload_len][u32 crc32(payload)][payload bytes]
//
// A scan over a frame sequence stops at the first bad frame. A bad frame
// at end-of-file (partial header, payload shorter than its declared
// length, or CRC mismatch with nothing after it) is a *torn tail* — the
// expected result of a crash mid-append — and is tolerated: everything
// before it is returned and `torn_tail` is set. A CRC mismatch with more
// data following is mid-file corruption and fails with a Status.

#ifndef ESLEV_RECOVERY_CODEC_H_
#define ESLEV_RECOVERY_CODEC_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/time.h"
#include "types/schema.h"
#include "types/tuple.h"
#include "types/value.h"

namespace eslev {

/// \brief CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over `len` bytes.
uint32_t Crc32(const void* data, size_t len);
inline uint32_t Crc32(const std::string& s) { return Crc32(s.data(), s.size()); }

/// \brief Append-only little-endian encoder. Schemas are deduplicated
/// within one encoder: the first PutSchema of a layout writes the full
/// definition, later ones write a back-reference — so a checkpoint
/// section holding thousands of same-schema tuples stays compact.
class BinaryEncoder {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutDouble(double v);
  /// u32 length + raw bytes.
  void PutString(const std::string& s);

  /// u8 type tag (the TypeId integer, frozen by the golden test) + payload.
  void PutValue(const Value& v);
  /// Schema back-reference or inline definition (see class comment).
  void PutSchema(const SchemaPtr& schema);
  /// Schema ref + i64 ts + u32 arity + values. Self-contained given the
  /// encoder's schema table.
  void PutTuple(const Tuple& tuple);

  const std::string& buffer() const { return buf_; }
  std::string TakeBuffer() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
  std::map<const Schema*, uint32_t> schema_ids_;
};

/// \brief Bounds-checked decoder over a byte span (not owned). Every read
/// fails with an IoError Status instead of running past the end.
class BinaryDecoder {
 public:
  BinaryDecoder(const char* data, size_t size)
      : data_(data), size_(size) {}
  explicit BinaryDecoder(const std::string& buf)
      : BinaryDecoder(buf.data(), buf.size()) {}

  Result<uint8_t> GetU8();
  Result<bool> GetBool();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<int64_t> GetI64();
  Result<double> GetDouble();
  Result<std::string> GetString();

  Result<Value> GetValue();
  Result<SchemaPtr> GetSchema();
  Result<Tuple> GetTuple();

  bool AtEnd() const { return pos_ == size_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  Status Need(size_t n) const;

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  std::vector<SchemaPtr> schemas_;  // decoded schema table, id == index
};

/// \brief Append one CRC32 frame wrapping `payload` to `out`.
void AppendFrame(const std::string& payload, std::string* out);

/// \brief Result of scanning a frame sequence (see file comment for the
/// torn-tail vs mid-file-corruption distinction).
struct FrameScanResult {
  std::vector<std::string> payloads;
  /// Byte offset just past the last good frame — truncate the file here
  /// before appending after a torn tail.
  size_t valid_bytes = 0;
  bool torn_tail = false;
};

/// \brief Scan `size` bytes of frames. Status on mid-file corruption.
Result<FrameScanResult> ScanFrames(const char* data, size_t size);

/// \brief Write `contents` to `path` atomically (temp file + rename).
Status WriteFileAtomic(const std::string& path, const std::string& contents);

/// \brief Read a whole file; IoError when missing/unreadable.
Result<std::string> ReadFileAll(const std::string& path);

}  // namespace eslev

#endif  // ESLEV_RECOVERY_CODEC_H_
