#include "recovery/wal.h"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <system_error>
#include <utility>

#include "recovery/checkpoint.h"

namespace eslev {

namespace {

std::string EncodeRecordFrame(const WalRecord& record) {
  BinaryEncoder enc;
  enc.PutU8(static_cast<uint8_t>(record.kind));
  enc.PutU64(record.lsn);
  enc.PutString(record.stream);
  switch (record.kind) {
    case WalRecordKind::kTuple:
      enc.PutTuple(*record.tuple);
      break;
    case WalRecordKind::kHeartbeat:
      enc.PutI64(record.ts);
      break;
  }
  std::string frame;
  AppendFrame(enc.buffer(), &frame);
  return frame;
}

Result<WalRecord> DecodeRecord(const std::string& payload) {
  BinaryDecoder dec(payload);
  WalRecord record;
  ESLEV_ASSIGN_OR_RETURN(uint8_t kind, dec.GetU8());
  if (kind != static_cast<uint8_t>(WalRecordKind::kTuple) &&
      kind != static_cast<uint8_t>(WalRecordKind::kHeartbeat)) {
    return Status::IoError("bad WAL record kind " + std::to_string(kind));
  }
  record.kind = static_cast<WalRecordKind>(kind);
  ESLEV_ASSIGN_OR_RETURN(record.lsn, dec.GetU64());
  ESLEV_ASSIGN_OR_RETURN(record.stream, dec.GetString());
  if (record.kind == WalRecordKind::kTuple) {
    ESLEV_ASSIGN_OR_RETURN(Tuple t, dec.GetTuple());
    record.tuple = std::move(t);
  } else {
    ESLEV_ASSIGN_OR_RETURN(record.ts, dec.GetI64());
  }
  if (!dec.AtEnd()) {
    return Status::IoError("trailing bytes in WAL record payload");
  }
  return record;
}

std::string SegmentFileName(const std::string& wal_path, uint64_t id) {
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), ".%06" PRIu64 ".seg", id);
  return std::filesystem::path(wal_path).filename().string() + suffix;
}

std::uintmax_t FileSizeOrZero(const std::string& path) {
  std::error_code ec;
  const std::uintmax_t n = std::filesystem::file_size(path, ec);
  return ec ? 0 : n;
}

/// Read one *sealed* segment: it was complete when renamed into place, so
/// any tear or frame damage inside it is corruption, never a crash tail.
Result<WalReadResult> ReadSealedSegment(const std::string& seg_path) {
  std::error_code ec;
  if (!std::filesystem::exists(seg_path, ec)) {
    return Status::IoError("missing sealed WAL segment: " + seg_path);
  }
  ESLEV_ASSIGN_OR_RETURN(WalReadResult read, ReadWal(seg_path));
  if (read.torn_tail) {
    return Status::IoError("sealed WAL segment has a torn tail: " + seg_path);
  }
  if (read.records.empty()) {
    return Status::IoError("sealed WAL segment holds no records: " + seg_path);
  }
  return read;
}

}  // namespace

std::string WalManifestPath(const std::string& wal_path) {
  return wal_path + ".segments";
}

std::string WalSegmentPath(const std::string& wal_path,
                           const WalSegmentInfo& segment) {
  return (std::filesystem::path(wal_path).parent_path() / segment.file)
      .string();
}

Status WriteWalManifest(const std::string& wal_path,
                        const WalManifest& manifest) {
  std::string bytes;
  AppendFrame(EncodeCheckpointHeader(), &bytes);
  BinaryEncoder body;
  body.PutU64(manifest.next_segment_id);
  body.PutU32(static_cast<uint32_t>(manifest.segments.size()));
  for (const WalSegmentInfo& seg : manifest.segments) {
    body.PutU64(seg.id);
    body.PutString(seg.file);
    body.PutU64(seg.first_lsn);
    body.PutU64(seg.last_lsn);
    body.PutU64(seg.bytes);
  }
  AppendFrame(body.buffer(), &bytes);
  return WriteFileAtomic(WalManifestPath(wal_path), bytes);
}

Result<WalManifest> ReadWalManifest(const std::string& wal_path) {
  WalManifest manifest;
  const std::string path = WalManifestPath(wal_path);
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) {
    return manifest;  // never rotated: a chain of one live file
  }
  ESLEV_ASSIGN_OR_RETURN(std::string bytes, ReadFileAll(path));
  ESLEV_ASSIGN_OR_RETURN(FrameScanResult frames,
                         ScanFrames(bytes.data(), bytes.size()));
  if (frames.torn_tail || frames.payloads.size() != 2) {
    return Status::IoError("corrupt WAL manifest: " + path);
  }
  ESLEV_RETURN_NOT_OK(
      ValidateCheckpointHeader(frames.payloads[0], "WAL manifest " + path));
  BinaryDecoder dec(frames.payloads[1]);
  ESLEV_ASSIGN_OR_RETURN(manifest.next_segment_id, dec.GetU64());
  ESLEV_ASSIGN_OR_RETURN(uint32_t count, dec.GetU32());
  manifest.segments.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    WalSegmentInfo seg;
    ESLEV_ASSIGN_OR_RETURN(seg.id, dec.GetU64());
    ESLEV_ASSIGN_OR_RETURN(seg.file, dec.GetString());
    ESLEV_ASSIGN_OR_RETURN(seg.first_lsn, dec.GetU64());
    ESLEV_ASSIGN_OR_RETURN(seg.last_lsn, dec.GetU64());
    ESLEV_ASSIGN_OR_RETURN(seg.bytes, dec.GetU64());
    manifest.segments.push_back(std::move(seg));
  }
  if (!dec.AtEnd()) {
    return Status::IoError("trailing bytes in WAL manifest: " + path);
  }
  return manifest;
}

Result<WalManifest> ListWalSegments(const std::string& wal_path) {
  ESLEV_ASSIGN_OR_RETURN(WalManifest manifest, ReadWalManifest(wal_path));
  // Adopt orphans: a crash after the rename but before the manifest write
  // leaves `path.<next_id>.seg` on disk unrecorded. Segment ids are dense,
  // so scanning forward from next_segment_id finds every such file.
  for (;;) {
    WalSegmentInfo seg;
    seg.id = manifest.next_segment_id;
    seg.file = SegmentFileName(wal_path, seg.id);
    const std::string seg_path = WalSegmentPath(wal_path, seg);
    std::error_code ec;
    if (!std::filesystem::exists(seg_path, ec)) break;
    ESLEV_ASSIGN_OR_RETURN(WalReadResult read, ReadSealedSegment(seg_path));
    seg.first_lsn = read.records.front().lsn;
    seg.last_lsn = read.records.back().lsn;
    seg.bytes = FileSizeOrZero(seg_path);
    manifest.segments.push_back(std::move(seg));
    ++manifest.next_segment_id;
  }
  return manifest;
}

Result<WalReadResult> DecodeWalFrames(const char* data, size_t size) {
  WalReadResult result;
  ESLEV_ASSIGN_OR_RETURN(FrameScanResult frames, ScanFrames(data, size));
  result.valid_bytes = frames.valid_bytes;
  result.torn_tail = frames.torn_tail;
  result.records.reserve(frames.payloads.size());
  uint64_t prev_lsn = 0;
  for (const std::string& payload : frames.payloads) {
    ESLEV_ASSIGN_OR_RETURN(WalRecord record, DecodeRecord(payload));
    if (record.lsn <= prev_lsn && !result.records.empty()) {
      return Status::IoError("WAL LSNs not strictly increasing at lsn " +
                             std::to_string(record.lsn));
    }
    prev_lsn = record.lsn;
    result.records.push_back(std::move(record));
  }
  return result;
}

Result<WalReadResult> ReadWal(const std::string& path) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) {
    return WalReadResult{};
  }
  ESLEV_ASSIGN_OR_RETURN(std::string bytes, ReadFileAll(path));
  return DecodeWalFrames(bytes.data(), bytes.size());
}

Result<WalChainReadResult> ReadWalChain(const std::string& path) {
  WalChainReadResult result;
  ESLEV_ASSIGN_OR_RETURN(result.manifest, ListWalSegments(path));
  uint64_t prev_lsn = 0;
  for (const WalSegmentInfo& seg : result.manifest.segments) {
    const std::string seg_path = WalSegmentPath(path, seg);
    ESLEV_ASSIGN_OR_RETURN(WalReadResult read, ReadSealedSegment(seg_path));
    if (FileSizeOrZero(seg_path) != seg.bytes) {
      return Status::IoError("sealed WAL segment size mismatch: " + seg_path);
    }
    if (read.records.front().lsn != seg.first_lsn ||
        read.records.back().lsn != seg.last_lsn) {
      return Status::IoError("sealed WAL segment LSN range does not match " +
                             std::string("its manifest entry: ") + seg_path);
    }
    if (read.records.front().lsn <= prev_lsn && prev_lsn != 0) {
      return Status::IoError("WAL chain LSNs not strictly increasing at " +
                             seg_path);
    }
    prev_lsn = read.records.back().lsn;
    for (WalRecord& record : read.records) {
      result.records.push_back(std::move(record));
    }
  }
  ESLEV_ASSIGN_OR_RETURN(WalReadResult live, ReadWal(path));
  if (!live.records.empty() && prev_lsn != 0 &&
      live.records.front().lsn <= prev_lsn) {
    return Status::IoError("live WAL file LSNs overlap the sealed chain: " +
                           path);
  }
  result.live_valid_bytes = live.valid_bytes;
  result.live_torn_tail = live.torn_tail;
  for (WalRecord& record : live.records) {
    result.records.push_back(std::move(record));
  }
  return result;
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path,
                                                   uint64_t next_lsn,
                                                   const WalOptions& options) {
  // Heal the manifest first: adopt any orphan sealed segment left by a
  // crash between rename and manifest write, and persist the adoption so
  // every later reader agrees with the writer.
  ESLEV_ASSIGN_OR_RETURN(WalManifest raw, ReadWalManifest(path));
  ESLEV_ASSIGN_OR_RETURN(WalManifest listed, ListWalSegments(path));
  if (listed.next_segment_id != raw.next_segment_id) {
    ESLEV_RETURN_NOT_OK(WriteWalManifest(path, listed));
  }
  if (options.truncate_to_bytes.has_value()) {
    std::error_code ec;
    if (std::filesystem::exists(path, ec)) {
      std::filesystem::resize_file(path, *options.truncate_to_bytes, ec);
      if (ec) {
        return Status::IoError("cannot truncate WAL " + path + ": " +
                               ec.message());
      }
    }
  }
  std::unique_ptr<WalWriter> writer(new WalWriter(path, next_lsn, options));
  writer->manifest_ = std::move(listed);
  writer->live_bytes_ = FileSizeOrZero(path);
  if (writer->live_bytes_ > 0) {
    // The live file already holds records (reopen after recovery): learn
    // their first LSN so a later seal records the right range.
    ESLEV_ASSIGN_OR_RETURN(WalReadResult live, ReadWal(path));
    if (!live.records.empty()) {
      writer->live_first_lsn_ = live.records.front().lsn;
    }
  }
  ESLEV_RETURN_NOT_OK(writer->ReopenForAppend());
  return writer;
}

WalWriter::~WalWriter() {
  Flush().ok();  // best effort; a torn tail here is what recovery tolerates
  if (file_ != nullptr) std::fclose(file_);
}

Status WalWriter::ReopenForAppend() {
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::IoError("cannot open WAL for append: " + path_);
  }
  return Status::OK();
}

Result<uint64_t> WalWriter::AppendRecord(const WalRecord& record) {
  pending_ += EncodeRecordFrame(record);
  ++records_appended_;
  const uint64_t lsn = record.lsn;
  next_lsn_ = lsn + 1;
  if (live_first_lsn_ == 0) live_first_lsn_ = lsn;
  if (pending_.size() >= options_.group_commit_bytes) {
    ESLEV_RETURN_NOT_OK(Flush());
  }
  return lsn;
}

Result<uint64_t> WalWriter::AppendTuple(const std::string& stream,
                                        const Tuple& tuple) {
  WalRecord record;
  record.kind = WalRecordKind::kTuple;
  record.lsn = next_lsn_;
  record.stream = stream;
  record.tuple = tuple;
  return AppendRecord(record);
}

Result<uint64_t> WalWriter::AppendHeartbeat(const std::string& stream,
                                            Timestamp ts) {
  WalRecord record;
  record.kind = WalRecordKind::kHeartbeat;
  record.lsn = next_lsn_;
  record.stream = stream;
  record.ts = ts;
  return AppendRecord(record);
}

Status WalWriter::Flush() {
  if (!pending_.empty()) {
    if (file_ == nullptr) {
      return Status::IoError("WAL writer has no open file: " + path_);
    }
    const size_t n = std::fwrite(pending_.data(), 1, pending_.size(), file_);
    if (n != pending_.size() || std::fflush(file_) != 0) {
      return Status::IoError("WAL group commit failed: " + path_);
    }
    bytes_written_ += pending_.size();
    live_bytes_ += pending_.size();
    ++group_commits_;
    pending_.clear();
  }
  if (options_.segment_bytes > 0 && live_bytes_ >= options_.segment_bytes &&
      live_first_lsn_ != 0) {
    ESLEV_RETURN_NOT_OK(SealLive());
  }
  return Status::OK();
}

Status WalWriter::SealActiveSegment() {
  ESLEV_RETURN_NOT_OK(Flush());  // may itself seal at the threshold
  if (live_first_lsn_ == 0 || live_bytes_ == 0) return Status::OK();
  return SealLive();
}

Status WalWriter::SealLive() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  WalSegmentInfo seg;
  seg.id = manifest_.next_segment_id;
  seg.file = SegmentFileName(path_, seg.id);
  seg.first_lsn = live_first_lsn_;
  seg.last_lsn = next_lsn_ - 1;
  seg.bytes = live_bytes_;
  std::error_code ec;
  std::filesystem::rename(path_, WalSegmentPath(path_, seg), ec);
  if (ec) {
    return Status::IoError("cannot seal WAL segment " + seg.file + ": " +
                           ec.message());
  }
  manifest_.segments.push_back(std::move(seg));
  ++manifest_.next_segment_id;
  // Rename-then-manifest: a crash here leaves an orphan segment that the
  // next Open adopts (ListWalSegments), so the chain never loses records.
  ESLEV_RETURN_NOT_OK(WriteWalManifest(path_, manifest_));
  live_bytes_ = 0;
  live_first_lsn_ = 0;
  ++segments_sealed_;
  return ReopenForAppend();
}

Status WalWriter::TruncateBefore(uint64_t lsn) {
  ESLEV_RETURN_NOT_OK(Flush());
  std::vector<WalSegmentInfo> keep;
  std::vector<WalSegmentInfo> drop;
  for (WalSegmentInfo& seg : manifest_.segments) {
    (seg.last_lsn < lsn ? drop : keep).push_back(std::move(seg));
  }
  if (drop.empty()) return Status::OK();
  manifest_.segments = std::move(keep);
  // Manifest first, files second: an interruption leaks unreferenced
  // segment files instead of leaving manifest entries pointing at nothing
  // (orphan adoption scans forward from next_segment_id, so dropped ids
  // are never re-adopted).
  ESLEV_RETURN_NOT_OK(WriteWalManifest(path_, manifest_));
  for (const WalSegmentInfo& seg : drop) {
    std::error_code ec;
    std::filesystem::remove(WalSegmentPath(path_, seg), ec);
    if (ec) {
      return Status::IoError("cannot delete sealed WAL segment " + seg.file +
                             ": " + ec.message());
    }
    ++segments_deleted_;
  }
  return Status::OK();
}

}  // namespace eslev
