#include "recovery/wal.h"

#include <filesystem>
#include <system_error>

namespace eslev {

namespace {

std::string EncodeRecordFrame(const WalRecord& record) {
  BinaryEncoder enc;
  enc.PutU8(static_cast<uint8_t>(record.kind));
  enc.PutU64(record.lsn);
  enc.PutString(record.stream);
  switch (record.kind) {
    case WalRecordKind::kTuple:
      enc.PutTuple(*record.tuple);
      break;
    case WalRecordKind::kHeartbeat:
      enc.PutI64(record.ts);
      break;
  }
  std::string frame;
  AppendFrame(enc.buffer(), &frame);
  return frame;
}

Result<WalRecord> DecodeRecord(const std::string& payload) {
  BinaryDecoder dec(payload);
  WalRecord record;
  ESLEV_ASSIGN_OR_RETURN(uint8_t kind, dec.GetU8());
  if (kind != static_cast<uint8_t>(WalRecordKind::kTuple) &&
      kind != static_cast<uint8_t>(WalRecordKind::kHeartbeat)) {
    return Status::IoError("bad WAL record kind " + std::to_string(kind));
  }
  record.kind = static_cast<WalRecordKind>(kind);
  ESLEV_ASSIGN_OR_RETURN(record.lsn, dec.GetU64());
  ESLEV_ASSIGN_OR_RETURN(record.stream, dec.GetString());
  if (record.kind == WalRecordKind::kTuple) {
    ESLEV_ASSIGN_OR_RETURN(Tuple t, dec.GetTuple());
    record.tuple = std::move(t);
  } else {
    ESLEV_ASSIGN_OR_RETURN(record.ts, dec.GetI64());
  }
  if (!dec.AtEnd()) {
    return Status::IoError("trailing bytes in WAL record payload");
  }
  return record;
}

}  // namespace

Result<WalReadResult> ReadWal(const std::string& path) {
  WalReadResult result;
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) {
    return result;
  }
  ESLEV_ASSIGN_OR_RETURN(std::string bytes, ReadFileAll(path));
  ESLEV_ASSIGN_OR_RETURN(FrameScanResult frames,
                         ScanFrames(bytes.data(), bytes.size()));
  result.valid_bytes = frames.valid_bytes;
  result.torn_tail = frames.torn_tail;
  result.records.reserve(frames.payloads.size());
  uint64_t prev_lsn = 0;
  for (const std::string& payload : frames.payloads) {
    ESLEV_ASSIGN_OR_RETURN(WalRecord record, DecodeRecord(payload));
    if (record.lsn <= prev_lsn && !result.records.empty()) {
      return Status::IoError("WAL LSNs not strictly increasing at lsn " +
                             std::to_string(record.lsn));
    }
    prev_lsn = record.lsn;
    result.records.push_back(std::move(record));
  }
  return result;
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path,
                                                   uint64_t next_lsn,
                                                   const WalOptions& options) {
  if (options.truncate_to_bytes.has_value()) {
    std::error_code ec;
    if (std::filesystem::exists(path, ec)) {
      std::filesystem::resize_file(path, *options.truncate_to_bytes, ec);
      if (ec) {
        return Status::IoError("cannot truncate WAL " + path + ": " +
                               ec.message());
      }
    }
  }
  std::unique_ptr<WalWriter> writer(new WalWriter(path, next_lsn, options));
  ESLEV_RETURN_NOT_OK(writer->ReopenForAppend());
  return writer;
}

WalWriter::~WalWriter() {
  Flush().ok();  // best effort; a torn tail here is what recovery tolerates
  if (file_ != nullptr) std::fclose(file_);
}

Status WalWriter::ReopenForAppend() {
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::IoError("cannot open WAL for append: " + path_);
  }
  return Status::OK();
}

Result<uint64_t> WalWriter::AppendRecord(const WalRecord& record) {
  pending_ += EncodeRecordFrame(record);
  ++records_appended_;
  const uint64_t lsn = record.lsn;
  next_lsn_ = lsn + 1;
  if (pending_.size() >= options_.group_commit_bytes) {
    ESLEV_RETURN_NOT_OK(Flush());
  }
  return lsn;
}

Result<uint64_t> WalWriter::AppendTuple(const std::string& stream,
                                        const Tuple& tuple) {
  WalRecord record;
  record.kind = WalRecordKind::kTuple;
  record.lsn = next_lsn_;
  record.stream = stream;
  record.tuple = tuple;
  return AppendRecord(record);
}

Result<uint64_t> WalWriter::AppendHeartbeat(const std::string& stream,
                                            Timestamp ts) {
  WalRecord record;
  record.kind = WalRecordKind::kHeartbeat;
  record.lsn = next_lsn_;
  record.stream = stream;
  record.ts = ts;
  return AppendRecord(record);
}

Status WalWriter::Flush() {
  if (pending_.empty()) return Status::OK();
  if (file_ == nullptr) {
    return Status::IoError("WAL writer has no open file: " + path_);
  }
  const size_t n = std::fwrite(pending_.data(), 1, pending_.size(), file_);
  if (n != pending_.size() || std::fflush(file_) != 0) {
    return Status::IoError("WAL group commit failed: " + path_);
  }
  bytes_written_ += pending_.size();
  ++group_commits_;
  pending_.clear();
  return Status::OK();
}

Status WalWriter::TruncateBefore(uint64_t lsn) {
  ESLEV_RETURN_NOT_OK(Flush());
  ESLEV_ASSIGN_OR_RETURN(WalReadResult read, ReadWal(path_));
  std::string kept;
  for (const WalRecord& record : read.records) {
    if (record.lsn >= lsn) {
      kept += EncodeRecordFrame(record);
    }
  }
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  ESLEV_RETURN_NOT_OK(WriteFileAtomic(path_, kept));
  return ReopenForAppend();
}

}  // namespace eslev
