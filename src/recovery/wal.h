// Event write-ahead log (DESIGN.md §10): an append-only sequence of
// CRC32-framed records, one per input tuple or heartbeat, in arrival
// order. Appends are buffered and flushed in group commits; a crash can
// tear at most the buffered suffix, which the frame scanner recognizes
// as a torn tail and discards.
//
// Each record is one frame (recovery/codec.h) whose payload is:
//
//   [u8 kind][u64 lsn][string stream]
//   kind == kTuple:     [tuple]        (schema inline, self-contained)
//   kind == kHeartbeat: [i64 ts]
//
// LSNs are assigned by the writer, strictly increasing, and never reused:
// after a checkpoint at LSN n, replay skips records with lsn <= n.

#ifndef ESLEV_RECOVERY_WAL_H_
#define ESLEV_RECOVERY_WAL_H_

#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/time.h"
#include "recovery/codec.h"
#include "types/tuple.h"

namespace eslev {

enum class WalRecordKind : uint8_t {
  kTuple = 1,
  kHeartbeat = 2,
};

/// \brief One logged input event.
struct WalRecord {
  WalRecordKind kind = WalRecordKind::kTuple;
  uint64_t lsn = 0;
  std::string stream;               // empty for engine-wide heartbeats
  std::optional<Tuple> tuple;       // set iff kind == kTuple
  Timestamp ts = 0;                 // set iff kind == kHeartbeat
};

struct WalOptions {
  /// Appends accumulate in memory and hit the file once this many bytes
  /// are pending (one group commit). 0 flushes on every append.
  size_t group_commit_bytes = 16 * 1024;
  /// When set, the existing file is truncated to this length before the
  /// writer opens it for append — used after a torn-tail scan so stale
  /// bytes past the tear can never be misread as frames later.
  std::optional<size_t> truncate_to_bytes;
};

/// \brief Result of reading a WAL file front to back.
struct WalReadResult {
  std::vector<WalRecord> records;
  /// Byte offset just past the last good frame (== file size when clean).
  size_t valid_bytes = 0;
  /// True when the file ends in a torn frame (crash mid-append).
  bool torn_tail = false;
};

/// \brief Read every intact record of `path`. A missing file yields an
/// empty clean result (a WAL that was never written is a valid WAL).
/// Mid-file corruption — a bad frame with data after it — is an IoError.
Result<WalReadResult> ReadWal(const std::string& path);

/// \brief Buffered appender. Not thread-safe; callers serialize (the
/// engines hold their own mutex around append + enqueue so WAL order
/// matches processing order).
class WalWriter {
 public:
  /// Opens `path` for append (creating it if absent), honoring
  /// `options.truncate_to_bytes` first. `next_lsn` is the LSN the next
  /// appended record receives; recovery passes last-read LSN + 1.
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& path,
                                                 uint64_t next_lsn,
                                                 const WalOptions& options = {});

  ~WalWriter();  // best-effort flush

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// \brief Log an input tuple; returns the LSN it was assigned.
  Result<uint64_t> AppendTuple(const std::string& stream, const Tuple& tuple);
  /// \brief Log a time advancement; returns the LSN it was assigned.
  Result<uint64_t> AppendHeartbeat(const std::string& stream, Timestamp ts);

  /// \brief Force the pending group commit to the file.
  Status Flush();

  /// \brief Drop records with lsn < `lsn` by atomically rewriting the
  /// file (checkpoint-driven truncation). Flushes first.
  Status TruncateBefore(uint64_t lsn);

  const std::string& path() const { return path_; }
  uint64_t next_lsn() const { return next_lsn_; }

  // Counters for MetricsRegistry ("wal." family).
  uint64_t records_appended() const { return records_appended_; }
  uint64_t group_commits() const { return group_commits_; }
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  WalWriter(std::string path, uint64_t next_lsn, WalOptions options)
      : path_(std::move(path)), next_lsn_(next_lsn), options_(options) {}

  Result<uint64_t> AppendRecord(const WalRecord& record);
  Status ReopenForAppend();

  std::string path_;
  uint64_t next_lsn_;
  WalOptions options_;
  std::FILE* file_ = nullptr;
  std::string pending_;  // encoded frames awaiting group commit

  uint64_t records_appended_ = 0;
  uint64_t group_commits_ = 0;
  uint64_t bytes_written_ = 0;
};

}  // namespace eslev

#endif  // ESLEV_RECOVERY_WAL_H_
