// Event write-ahead log (DESIGN.md §10): an append-only sequence of
// CRC32-framed records, one per input tuple or heartbeat, in arrival
// order. Appends are buffered and flushed in group commits; a crash can
// tear at most the buffered suffix, which the frame scanner recognizes
// as a torn tail and discards.
//
// Each record is one frame (recovery/codec.h) whose payload is:
//
//   [u8 kind][u64 lsn][string stream]
//   kind == kTuple:     [tuple]        (schema inline, self-contained)
//   kind == kHeartbeat: [i64 ts]
//
// LSNs are assigned by the writer, strictly increasing, and never reused:
// after a checkpoint at LSN n, replay skips records with lsn <= n.
//
// Segment rotation (DESIGN.md §12): with `WalOptions::segment_bytes` set,
// the live file at `path` is sealed once it reaches the threshold — it is
// renamed to `path.<id>.seg` and recorded in a manifest sidecar at
// `path.segments` (header frame + body frame listing every sealed
// segment's id, file name, LSN range, and byte size). Sealed segments are
// immutable, which is what makes them safe to ship to a standby while the
// primary keeps appending, and lets checkpoint-driven truncation delete
// whole files instead of rewriting the retained log. A crash between the
// rename and the manifest write leaves an orphan `path.<id>.seg`; readers
// and the writer adopt such orphans by scanning forward from the
// manifest's next id, so the chain self-heals.

#ifndef ESLEV_RECOVERY_WAL_H_
#define ESLEV_RECOVERY_WAL_H_

#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/time.h"
#include "recovery/codec.h"
#include "types/tuple.h"

namespace eslev {

enum class WalRecordKind : uint8_t {
  kTuple = 1,
  kHeartbeat = 2,
};

/// \brief One logged input event.
struct WalRecord {
  WalRecordKind kind = WalRecordKind::kTuple;
  uint64_t lsn = 0;
  std::string stream;               // empty for engine-wide heartbeats
  std::optional<Tuple> tuple;       // set iff kind == kTuple
  Timestamp ts = 0;                 // set iff kind == kHeartbeat
};

struct WalOptions {
  /// Appends accumulate in memory and hit the file once this many bytes
  /// are pending (one group commit). 0 flushes on every append.
  size_t group_commit_bytes = 16 * 1024;
  /// When set, the existing file is truncated to this length before the
  /// writer opens it for append — used after a torn-tail scan so stale
  /// bytes past the tear can never be misread as frames later.
  std::optional<size_t> truncate_to_bytes;
  /// Seal the live file into an immutable `path.<id>.seg` segment once
  /// its flushed size reaches this many bytes. 0 never rotates (single
  /// live file, the pre-replication layout).
  size_t segment_bytes = 0;
};

/// \brief One sealed, immutable WAL segment as recorded in the manifest.
struct WalSegmentInfo {
  uint64_t id = 0;          // monotone; file name carries it
  std::string file;         // base name, lives next to the live file
  uint64_t first_lsn = 0;
  uint64_t last_lsn = 0;
  uint64_t bytes = 0;       // exact file size; a mismatch is corruption
};

/// \brief The manifest sidecar: every live sealed segment in LSN order,
/// plus the id the next seal will use (which is how orphan segments from
/// a crash between rename and manifest write are found).
struct WalManifest {
  uint64_t next_segment_id = 1;
  std::vector<WalSegmentInfo> segments;
};

/// \brief `path.segments` — where the manifest for WAL `path` lives.
std::string WalManifestPath(const std::string& wal_path);

/// \brief Full path of a sealed segment (same directory as the live file).
std::string WalSegmentPath(const std::string& wal_path,
                           const WalSegmentInfo& segment);

/// \brief Read `path.segments`. A missing manifest yields the empty
/// default (a WAL that never rotated is a valid chain of one live file).
Result<WalManifest> ReadWalManifest(const std::string& wal_path);

/// \brief Atomically write `path.segments`.
Status WriteWalManifest(const std::string& wal_path,
                        const WalManifest& manifest);

/// \brief Read the manifest and adopt any orphan `path.<id>.seg` files
/// (sealed but not yet recorded when the writer crashed): their LSN range
/// and size are recovered from the file itself. Purely in-memory; the
/// writer persists the healed manifest at Open.
Result<WalManifest> ListWalSegments(const std::string& wal_path);

/// \brief Result of reading a WAL file front to back.
struct WalReadResult {
  std::vector<WalRecord> records;
  /// Byte offset just past the last good frame (== file size when clean).
  size_t valid_bytes = 0;
  /// True when the file ends in a torn frame (crash mid-append).
  bool torn_tail = false;
};

/// \brief Read every intact record of `path`. A missing file yields an
/// empty clean result (a WAL that was never written is a valid WAL).
/// Mid-file corruption — a bad frame with data after it — is an IoError.
Result<WalReadResult> ReadWal(const std::string& path);

/// \brief Decode WAL frames from an in-memory byte range — a shipped
/// live-tail slice starting at a frame boundary. Same torn-tail /
/// mid-range corruption semantics as ReadWal.
Result<WalReadResult> DecodeWalFrames(const char* data, size_t size);

/// \brief Result of reading a whole segmented WAL chain.
struct WalChainReadResult {
  std::vector<WalRecord> records;   // sealed segments then live, LSN order
  WalManifest manifest;             // including adopted orphans
  /// Valid prefix / torn-tail state of the *live* file only. A torn tail
  /// is legal there and only there: sealed segments were complete when
  /// renamed, so a tear inside one is corruption, not a crash artifact.
  size_t live_valid_bytes = 0;
  bool live_torn_tail = false;
};

/// \brief Read sealed segments (manifest + orphans) then the live file,
/// validating each sealed segment is clean, matches its manifest entry,
/// and that LSNs increase strictly across the whole chain.
Result<WalChainReadResult> ReadWalChain(const std::string& path);

/// \brief Buffered appender. Not thread-safe; callers serialize (the
/// engines hold their own mutex around append + enqueue so WAL order
/// matches processing order).
class WalWriter {
 public:
  /// Opens `path` for append (creating it if absent), honoring
  /// `options.truncate_to_bytes` first. `next_lsn` is the LSN the next
  /// appended record receives; recovery passes last-read LSN + 1. With
  /// rotation enabled this also heals the manifest (orphan adoption).
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& path,
                                                 uint64_t next_lsn,
                                                 const WalOptions& options = {});

  ~WalWriter();  // best-effort flush

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// \brief Log an input tuple; returns the LSN it was assigned.
  Result<uint64_t> AppendTuple(const std::string& stream, const Tuple& tuple);
  /// \brief Log a time advancement; returns the LSN it was assigned.
  Result<uint64_t> AppendHeartbeat(const std::string& stream, Timestamp ts);

  /// \brief Force the pending group commit to the file (and seal the live
  /// segment if it crossed the rotation threshold).
  Status Flush();

  /// \brief Checkpoint-driven truncation: delete sealed segments whose
  /// every record has lsn < `lsn`. The live file is never rewritten —
  /// records it holds below `lsn` are skipped at replay instead — so
  /// truncation cost is proportional to the number of dropped segments,
  /// not the size of the retained log. Flushes first.
  Status TruncateBefore(uint64_t lsn);

  /// \brief Flush, then seal the live file into a segment even if it is
  /// below the rotation threshold (no-op when it holds no records).
  /// Lets a shipper hand off a complete immutable file on demand.
  Status SealActiveSegment();

  const std::string& path() const { return path_; }
  uint64_t next_lsn() const { return next_lsn_; }

  /// Sealed segments still on disk, oldest first.
  const std::vector<WalSegmentInfo>& sealed_segments() const {
    return manifest_.segments;
  }
  /// Flushed bytes currently in the live file.
  uint64_t live_bytes() const { return live_bytes_; }

  // Counters for MetricsRegistry ("wal." family).
  uint64_t records_appended() const { return records_appended_; }
  uint64_t group_commits() const { return group_commits_; }
  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t segments_sealed() const { return segments_sealed_; }
  uint64_t segments_deleted() const { return segments_deleted_; }

 private:
  WalWriter(std::string path, uint64_t next_lsn, WalOptions options)
      : path_(std::move(path)), next_lsn_(next_lsn), options_(options) {}

  Result<uint64_t> AppendRecord(const WalRecord& record);
  Status ReopenForAppend();
  Status SealLive();

  std::string path_;
  uint64_t next_lsn_;
  WalOptions options_;
  std::FILE* file_ = nullptr;
  std::string pending_;  // encoded frames awaiting group commit

  WalManifest manifest_;
  uint64_t live_bytes_ = 0;      // flushed bytes in the live file
  uint64_t live_first_lsn_ = 0;  // 0 while the live file holds no records

  uint64_t records_appended_ = 0;
  uint64_t group_commits_ = 0;
  uint64_t bytes_written_ = 0;
  uint64_t segments_sealed_ = 0;
  uint64_t segments_deleted_ = 0;
};

}  // namespace eslev

#endif  // ESLEV_RECOVERY_WAL_H_
