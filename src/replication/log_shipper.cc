#include "replication/log_shipper.h"

#include <cstdio>
#include <filesystem>
#include <system_error>
#include <utility>

#include "recovery/codec.h"

namespace eslev {

namespace {

uint64_t FileSizeOrZero(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  return ec ? 0 : static_cast<uint64_t>(size);
}

/// Read bytes [offset, offset + count) of `path`. The primary appends
/// concurrently; a single POSIX writer appends sequentially, so any
/// prefix up to an observed size is consistent (at worst mid-frame,
/// which the standby treats as a torn tail until the rest arrives).
Result<std::string> ReadFileRange(const std::string& path, uint64_t offset,
                                  uint64_t count) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IoError("cannot open " + path + " for shipping");
  }
  std::string bytes(count, '\0');
  size_t got = 0;
  if (std::fseek(file, static_cast<long>(offset), SEEK_SET) == 0) {
    got = std::fread(bytes.data(), 1, count, file);
  }
  std::fclose(file);
  bytes.resize(got);
  return bytes;
}

Status AppendFileBytes(const std::string& path, const std::string& bytes) {
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return Status::IoError("cannot open standby live copy " + path);
  }
  const size_t wrote = std::fwrite(bytes.data(), 1, bytes.size(), file);
  const bool flushed = std::fflush(file) == 0;
  std::fclose(file);
  if (wrote != bytes.size() || !flushed) {
    return Status::IoError("short write to standby live copy " + path);
  }
  return Status::OK();
}

}  // namespace

LogShipper::LogShipper(std::string primary_wal_path,
                       std::string standby_wal_path)
    : primary_path_(std::move(primary_wal_path)),
      standby_path_(std::move(standby_wal_path)) {}

Status LogShipper::Init() {
  if (initialized_) return Status::OK();
  std::error_code ec;
  std::filesystem::create_directories(
      std::filesystem::path(standby_path_).parent_path(), ec);
  ESLEV_ASSIGN_OR_RETURN(standby_manifest_, ReadWalManifest(standby_path_));
  last_shipped_segment_id_ = standby_manifest_.next_segment_id - 1;
  // Restart the live copy: its bytes correspond to an unknown primary
  // offset after a shipper restart, so re-ship the whole live tail (the
  // applier skips records it already applied by LSN).
  ESLEV_RETURN_NOT_OK(WriteFileAtomic(standby_path_, ""));
  live_offset_ = 0;
  initialized_ = true;
  return Status::OK();
}

Status LogShipper::Ship() {
  ESLEV_RETURN_NOT_OK(Init());
  ESLEV_ASSIGN_OR_RETURN(WalManifest primary, ListWalSegments(primary_path_));

  bool sealed_new = false;
  for (const WalSegmentInfo& seg : primary.segments) {
    if (seg.id <= last_shipped_segment_id_) continue;
    const std::string seg_path = WalSegmentPath(primary_path_, seg);
    ESLEV_ASSIGN_OR_RETURN(std::string bytes, ReadFileAll(seg_path));
    // Verify every frame before the copy: a corrupt primary segment
    // fails the ship here instead of poisoning the standby chain.
    ESLEV_ASSIGN_OR_RETURN(WalReadResult decoded,
                           DecodeWalFrames(bytes.data(), bytes.size()));
    if (decoded.torn_tail || decoded.records.empty()) {
      return Status::IoError("sealed WAL segment " + seg_path +
                             " is torn or empty; refusing to ship it");
    }
    ESLEV_RETURN_NOT_OK(
        WriteFileAtomic(WalSegmentPath(standby_path_, seg), bytes));
    standby_manifest_.segments.push_back(seg);
    last_shipped_segment_id_ = seg.id;
    ++segments_shipped_;
    bytes_shipped_ += bytes.size();
    sealed_new = true;
  }
  if (sealed_new) {
    standby_manifest_.next_segment_id =
        std::max(standby_manifest_.next_segment_id,
                 last_shipped_segment_id_ + 1);
    ESLEV_RETURN_NOT_OK(WriteWalManifest(standby_path_, standby_manifest_));
    // Bytes shipped into the live copy so far are covered by the sealed
    // copies now; restart the live copy for the primary's new live file.
    ESLEV_RETURN_NOT_OK(WriteFileAtomic(standby_path_, ""));
    live_offset_ = 0;
  }

  const uint64_t live_size = FileSizeOrZero(primary_path_);
  if (live_size < live_offset_) {
    // The live file shrank: a rotation this round missed. Heal by
    // restarting the copy; the sealed segment arrives next round.
    ESLEV_RETURN_NOT_OK(WriteFileAtomic(standby_path_, ""));
    live_offset_ = 0;
    ++ship_rounds_;
    return Status::OK();
  }
  if (live_size > live_offset_) {
    ESLEV_ASSIGN_OR_RETURN(
        std::string bytes,
        ReadFileRange(primary_path_, live_offset_, live_size - live_offset_));
    // Rotation race check: if the primary sealed since we listed its
    // segments, the bytes just read belong to the NEW live file at a
    // different LSN position — discard them; the sealed segment carries
    // the old live's bytes next round. (The seal writes the manifest
    // before recreating the live file, so a changed next_segment_id is
    // visible before any new live byte exists.)
    ESLEV_ASSIGN_OR_RETURN(WalManifest after, ReadWalManifest(primary_path_));
    if (after.next_segment_id != primary.next_segment_id) {
      ++ship_rounds_;
      return Status::OK();
    }
    ESLEV_RETURN_NOT_OK(AppendFileBytes(standby_path_, bytes));
    bytes_shipped_ += bytes.size();
    live_offset_ += bytes.size();
  }
  ++ship_rounds_;
  return Status::OK();
}

Status LogShipper::PruneShippedBefore(uint64_t lsn) {
  ESLEV_RETURN_NOT_OK(Init());
  std::vector<WalSegmentInfo> keep;
  std::vector<WalSegmentInfo> drop;
  for (WalSegmentInfo& seg : standby_manifest_.segments) {
    (seg.last_lsn < lsn ? drop : keep).push_back(std::move(seg));
  }
  if (drop.empty()) {
    standby_manifest_.segments = std::move(keep);
    return Status::OK();
  }
  standby_manifest_.segments = std::move(keep);
  // Manifest first, files second: an interruption leaks segment files
  // (never re-adopted: orphan scans start at next_segment_id) but never
  // leaves a manifest entry pointing at a deleted file.
  ESLEV_RETURN_NOT_OK(WriteWalManifest(standby_path_, standby_manifest_));
  for (const WalSegmentInfo& seg : drop) {
    std::error_code ec;
    std::filesystem::remove(WalSegmentPath(standby_path_, seg), ec);
  }
  return Status::OK();
}

Result<uint64_t> LogShipper::MeasureLagBytes() const {
  ESLEV_ASSIGN_OR_RETURN(WalManifest primary, ListWalSegments(primary_path_));
  uint64_t lag = 0;
  for (const WalSegmentInfo& seg : primary.segments) {
    if (seg.id > last_shipped_segment_id_) lag += seg.bytes;
  }
  const uint64_t live_size = FileSizeOrZero(primary_path_);
  if (live_size > live_offset_) lag += live_size - live_offset_;
  return lag;
}

}  // namespace eslev
