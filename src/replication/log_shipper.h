// LogShipper: copies a primary front-end WAL chain — sealed segments
// plus the live file's flushed tail — into a standby directory
// (DESIGN.md §12).
//
// Sealed segments are immutable, so shipping one is a verify-then-copy:
// the shipper CRC-decodes every frame before writing the standby copy
// (a corrupt primary segment fails the ship instead of propagating) and
// mirrors the manifest sidecar so the standby copy is itself a valid
// WAL chain that ReadWalChain / StandbyShard can consume. The live file
// is shipped as raw byte ranges appended to the standby's live copy; a
// torn frame at the end of a shipped range is completed by the next
// round, and the standby applier tolerates the interim tear exactly like
// crash recovery tolerates a torn tail.
//
// Rotation race: the primary seals under its own mutex while Ship() runs
// lock-free against the filesystem. A seal between listing the segments
// and reading the live file would make the read bytes belong to the NEW
// live file; the shipper detects this by re-reading the manifest's
// next_segment_id after the live read and discards the range when it
// moved (the sealed segment carries those bytes next round).

#ifndef ESLEV_REPLICATION_LOG_SHIPPER_H_
#define ESLEV_REPLICATION_LOG_SHIPPER_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "recovery/wal.h"

namespace eslev {

class LogShipper {
 public:
  /// Both paths name the WAL's *live* file; segments and the manifest
  /// live next to each in the same directory.
  LogShipper(std::string primary_wal_path, std::string standby_wal_path);

  /// \brief One shipping round: copy every sealed segment newer than the
  /// last shipped id (verifying frames first), mirror the manifest,
  /// restart the standby live copy when a seal happened, then append the
  /// primary live file's new bytes. Idempotent; call as often as wanted.
  Status Ship();

  /// \brief Drop shipped sealed segments whose every record has
  /// lsn < `lsn` (the standby applied them); mirrors the primary's
  /// checkpoint-driven truncation on the standby copy.
  Status PruneShippedBefore(uint64_t lsn);

  /// \brief Primary bytes not yet shipped: unshipped sealed segments
  /// plus the unshipped live suffix. Reads the primary chain metadata.
  Result<uint64_t> MeasureLagBytes() const;

  // Counters for the "replication." metrics family.
  uint64_t segments_shipped() const { return segments_shipped_; }
  uint64_t bytes_shipped() const { return bytes_shipped_; }
  uint64_t ship_rounds() const { return ship_rounds_; }

 private:
  Status Init();  // lazy: loads standby-side state on first Ship()

  std::string primary_path_;
  std::string standby_path_;

  bool initialized_ = false;
  WalManifest standby_manifest_;
  uint64_t last_shipped_segment_id_ = 0;
  /// Primary live-file offset already appended to the standby live copy.
  uint64_t live_offset_ = 0;

  uint64_t segments_shipped_ = 0;
  uint64_t bytes_shipped_ = 0;
  uint64_t ship_rounds_ = 0;
};

}  // namespace eslev

#endif  // ESLEV_REPLICATION_LOG_SHIPPER_H_
