#include "replication/replicated_engine.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <shared_mutex>
#include <system_error>
#include <utility>

#include "recovery/checkpoint.h"
#include "sql/parser.h"

namespace eslev {

ReplicatedShardedEngine::ReplicatedShardedEngine(
    ReplicatedShardedEngineOptions options)
    : options_(std::move(options)),
      wal_path_(options_.dir + "/" + kWalFileName),
      ckpt_dir_(options_.dir + "/checkpoint"),
      standby_wal_path_(options_.dir + "/standby/" + kWalFileName),
      standby_ckpt_dir_(options_.dir + "/standby/checkpoint"),
      primary_({options_.num_shards, options_.engine}),
      standbys_(primary_.num_shards()) {}

Result<std::unique_ptr<ReplicatedShardedEngine>> ReplicatedShardedEngine::Open(
    ReplicatedShardedEngineOptions options) {
  if (options.dir.empty()) {
    return Status::Invalid("ReplicatedShardedEngine needs a directory");
  }
  // Standby provisioning replays the shipped WAL with shard-filtered
  // routing of RAW records; a front-end ingest pipeline derives releases
  // from cross-shard state the filter discards, so replication and
  // ingest do not compose yet. Resolve exactly as ShardedEngine would
  // (options + ESLEV_INGEST_* env) and reject an enabled result.
  {
    IngestOptions resolved = options.engine.ingest;
    if (options.engine.honor_ingest_env) {
      ESLEV_ASSIGN_OR_RETURN(resolved, ResolveIngestOptions(resolved));
    } else {
      ESLEV_RETURN_NOT_OK(ValidateIngestOptions(resolved));
    }
    if (resolved.enabled()) {
      return Status::Invalid(
          "ReplicatedShardedEngine does not support ingest "
          "(reorder/cleaning); run ingest upstream or use ShardedEngine");
    }
  }
  if (options.wal.segment_bytes == 0) options.wal.segment_bytes = 64 * 1024;
  std::error_code ec;
  std::filesystem::create_directories(options.dir + "/standby", ec);
  if (ec) {
    return Status::IoError("cannot create replication dir " + options.dir +
                           ": " + ec.message());
  }
  std::unique_ptr<ReplicatedShardedEngine> engine(
      new ReplicatedShardedEngine(std::move(options)));
  ESLEV_RETURN_NOT_OK(
      engine->primary_.EnableWal(engine->wal_path_, engine->options_.wal));
  engine->shipper_ = std::make_unique<LogShipper>(engine->wal_path_,
                                                  engine->standby_wal_path_);
  return engine;
}

// ---- setup -----------------------------------------------------------------

Status ReplicatedShardedEngine::ExecuteScript(const std::string& sql) {
  ESLEV_RETURN_NOT_OK(primary_.ExecuteScript(sql));
  setup_.push_back({SetupOp::Kind::kScript, sql});
  return Status::OK();
}

Result<QueryInfo> ReplicatedShardedEngine::RegisterQuery(
    const std::string& sql) {
  ESLEV_ASSIGN_OR_RETURN(QueryInfo info, primary_.RegisterQuery(sql));
  setup_.push_back({SetupOp::Kind::kQuery, sql});
  return info;
}

Status ReplicatedShardedEngine::Subscribe(const std::string& stream,
                                          TupleCallback callback) {
  ESLEV_RETURN_NOT_OK(primary_.Subscribe(stream, std::move(callback)));
  setup_.push_back({SetupOp::Kind::kSubscribe, stream});
  return Status::OK();
}

Status ReplicatedShardedEngine::SetPartitionKey(const std::string& stream,
                                                const std::string& column) {
  return primary_.SetPartitionKey(stream, column);
}

Status ReplicatedShardedEngine::SetSingleShard(const std::string& stream) {
  return primary_.SetSingleShard(stream);
}

Result<std::string> ReplicatedShardedEngine::Explain(const std::string& sql) {
  ESLEV_ASSIGN_OR_RETURN(std::string out, primary_.Explain(sql));
  bool analyze = false;
  {
    auto stmt = ParseStatement(sql);
    if (stmt.ok() && (*stmt)->kind == StatementKind::kExplain) {
      analyze = static_cast<const ExplainStmt&>(**stmt).mode ==
                ExplainMode::kAnalyze;
    }
  }
  if (!analyze) return out;
  MetricsSnapshot snap;
  AppendReplicationMetrics(&snap);
  out += "\n-- replication --\n";
  for (const auto& [name, value] : snap.counters) {
    out += name + " = " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    out += name + " = " + std::to_string(value) + "\n";
  }
  return out;
}

// ---- data plane ------------------------------------------------------------

Status ReplicatedShardedEngine::Push(const std::string& stream,
                                     std::vector<Value> values, Timestamp ts) {
  return primary_.Push(stream, std::move(values), ts);
}

Status ReplicatedShardedEngine::PushTuple(const std::string& stream,
                                          const Tuple& tuple) {
  return primary_.PushTuple(stream, tuple);
}

int ReplicatedShardedEngine::RegisterProducer() {
  return primary_.RegisterProducer();
}

Status ReplicatedShardedEngine::AdvanceProducer(int id, Timestamp now) {
  return primary_.AdvanceProducer(id, now);
}

Status ReplicatedShardedEngine::AdvanceTime(Timestamp now) {
  return primary_.AdvanceTime(now);
}

Status ReplicatedShardedEngine::Flush() { return primary_.Flush(); }

size_t ReplicatedShardedEngine::DrainOutputs() {
  return primary_.DrainOutputs();
}

Result<std::vector<Tuple>> ReplicatedShardedEngine::ExecuteSnapshot(
    const std::string& sql) {
  return primary_.ExecuteSnapshot(sql);
}

// ---- replication control ---------------------------------------------------

Status ReplicatedShardedEngine::BuildStandby(size_t shard) {
  auto sb = std::make_unique<StandbyShard>(
      StandbyShardOptions{shard, primary_.num_shards(), options_.engine});
  for (const SetupOp& op : setup_) {
    switch (op.kind) {
      case SetupOp::Kind::kScript:
        ESLEV_RETURN_NOT_OK(sb->ExecuteScript(op.arg));
        break;
      case SetupOp::Kind::kQuery:
        ESLEV_RETURN_NOT_OK(sb->RegisterQuery(op.arg));
        break;
      case SetupOp::Kind::kSubscribe:
        ESLEV_RETURN_NOT_OK(sb->Subscribe(op.arg));
        break;
    }
  }
  {
    std::shared_lock<std::shared_mutex> lock(primary_.routes_mu_);
    for (const auto& [key, route] : primary_.routes_) {
      ESLEV_RETURN_NOT_OK(
          sb->SetRoute(route.name, route.key_index, route.single_shard));
    }
  }
  ESLEV_RETURN_NOT_OK(sb->Bootstrap(standby_ckpt_dir_));
  standbys_[shard] = std::move(sb);
  return Status::OK();
}

Status ReplicatedShardedEngine::CopyCheckpointToStandby() {
  std::error_code ec;
  std::filesystem::copy(ckpt_dir_, standby_ckpt_dir_,
                        std::filesystem::copy_options::recursive |
                            std::filesystem::copy_options::overwrite_existing,
                        ec);
  if (ec) {
    return Status::IoError("cannot ship checkpoint to " + standby_ckpt_dir_ +
                           ": " + ec.message());
  }
  return Status::OK();
}

Status ReplicatedShardedEngine::Replicate() {
  {
    std::lock_guard<std::mutex> wal_lock(primary_.wal_mu_);
    if (primary_.wal_ != nullptr) {
      ESLEV_RETURN_NOT_OK(primary_.wal_->Flush());
    }
  }
  ESLEV_RETURN_NOT_OK(shipper_->Ship());
  uint64_t floor = UINT64_MAX;
  for (size_t i = 0; i < standbys_.size(); ++i) {
    StandbyShard* sb = standbys_[i].get();
    if (sb == nullptr) continue;
    // A sticky apply error makes the standby unpromotable but must not
    // stop replication to the others (nor hold the truncation floor
    // back forever); the next Checkpoint rebuilds it.
    (void)sb->Apply(standby_wal_path_);
    std::vector<uint64_t> delivered;
    {
      std::lock_guard<std::mutex> out_lock(primary_.shards_[i]->out_mu);
      delivered = primary_.shards_[i]->received_per_sub;
    }
    for (size_t sub = 0; sub < delivered.size(); ++sub) {
      sb->AckDelivered(sub, delivered[sub]);
    }
    if (sb->health().ok()) {
      floor = std::min(floor, sb->applied_lsn() + 1);
    }
  }
  primary_.wal_truncate_floor_.store(floor, std::memory_order_release);
  return Status::OK();
}

Status ReplicatedShardedEngine::Checkpoint() {
  ESLEV_RETURN_NOT_OK(Replicate());
  ESLEV_RETURN_NOT_OK(primary_.Checkpoint(ckpt_dir_));
  ESLEV_RETURN_NOT_OK(CopyCheckpointToStandby());
  for (size_t i = 0; i < standbys_.size(); ++i) {
    if (standbys_[i] == nullptr || !standbys_[i]->health().ok()) {
      ESLEV_RETURN_NOT_OK(BuildStandby(i));
    }
  }
  // Sealed segments below both the checkpoint's covered LSN and every
  // standby's applied LSN serve no one anymore: new standbys bootstrap
  // from this checkpoint, existing ones are already past them.
  ESLEV_ASSIGN_OR_RETURN(ShardedManifest manifest, ReadManifest(ckpt_dir_));
  uint64_t bound = manifest.wal_last_lsn + 1;
  for (const auto& sb : standbys_) {
    if (sb != nullptr) bound = std::min(bound, sb->applied_lsn() + 1);
  }
  ESLEV_RETURN_NOT_OK(shipper_->PruneShippedBefore(bound));
  // Re-run a round so the truncation floor reflects the rebuilt standbys.
  return Replicate();
}

Status ReplicatedShardedEngine::KillShard(size_t shard) {
  if (shard >= primary_.shards_.size()) {
    return Status::Invalid("no shard " + std::to_string(shard));
  }
  ShardedEngine::Shard* s = primary_.shards_[shard].get();
  if (!s->alive.load(std::memory_order_acquire)) return Status::OK();
  // Mark dead first so control-plane calls fail fast instead of racing
  // the closing queue; then drop the mailbox backlog (a crash loses
  // in-flight input the same way — but every routed tuple hit the WAL
  // before its enqueue, so the standby replays what the worker lost).
  s->alive.store(false, std::memory_order_release);
  s->queue.CloseNow();
  primary_.DropRoutePending(shard);
  if (s->worker.joinable()) s->worker.join();
  s->engine.reset();
  return Status::OK();
}

Result<size_t> ReplicatedShardedEngine::HealFailures() {
  size_t promoted = 0;
  for (size_t i = 0; i < primary_.shards_.size(); ++i) {
    if (primary_.shards_[i]->alive.load(std::memory_order_acquire)) continue;
    ESLEV_RETURN_NOT_OK(PromoteStandby(i));
    ++promoted;
  }
  return promoted;
}

Status ReplicatedShardedEngine::PromoteStandby(size_t shard) {
  if (shard >= primary_.shards_.size()) {
    return Status::Invalid("no shard " + std::to_string(shard));
  }
  ShardedEngine::Shard* s = primary_.shards_[shard].get();
  if (s->alive.load(std::memory_order_acquire)) {
    return Status::Invalid("shard " + std::to_string(shard) +
                           " is alive; nothing to promote");
  }
  StandbyShard* sb = standbys_[shard].get();
  if (sb == nullptr) {
    return Status::ExecutionError(
        "shard " + std::to_string(shard) +
        " has no standby (Checkpoint() provisions them)");
  }
  ESLEV_RETURN_NOT_OK(sb->health());
  const auto start = std::chrono::steady_clock::now();
  const uint64_t applied_before = sb->applied_lsn();

  // The cut: producers block on the WAL mutex for the whole promotion,
  // so the WAL end observed here is the promoted engine's exact history.
  std::lock_guard<std::mutex> wal_lock(primary_.wal_mu_);
  if (primary_.wal_ == nullptr) {
    return Status::Invalid("replication requires the front-end WAL");
  }
  ESLEV_RETURN_NOT_OK(primary_.wal_->Flush());
  const uint64_t wal_end = primary_.wal_->next_lsn() - 1;
  ESLEV_RETURN_NOT_OK(shipper_->Ship());
  ESLEV_RETURN_NOT_OK(sb->Apply(standby_wal_path_));
  if (sb->applied_lsn() != wal_end) {
    // Short of the cut with nothing left to ship: records are missing
    // (corruption already sets sticky health above). Refuse rather than
    // promote a diverged replica.
    return Status::ExecutionError(
        "standby for shard " + std::to_string(shard) + " stopped at lsn " +
        std::to_string(sb->applied_lsn()) + " of " + std::to_string(wal_end) +
        "; refusing promotion");
  }
  // Align active expiration with the fanned low watermark. Normally a
  // no-op: every fan-out is also a logged heartbeat the standby applied.
  ESLEV_RETURN_NOT_OK(sb->AlignClock(primary_.low_watermark()));

  // Everything the dead worker delivered into the outbox is counted in
  // received_per_sub; the standby re-generated all of it, so emissions
  // at or below those counts are duplicates and everything above is
  // exactly the lost suffix.
  std::vector<uint64_t> delivered;
  {
    std::lock_guard<std::mutex> out_lock(s->out_mu);
    delivered = s->received_per_sub;
  }
  std::vector<ReplicaEmission> pending = sb->TakeBufferedAfter(delivered);
  sb->RedirectEmissions([s, shard](size_t sub, const Tuple& tuple) {
    std::lock_guard<std::mutex> lock(s->out_mu);
    if (s->received_per_sub.size() <= sub) {
      s->received_per_sub.resize(sub + 1, 0);
    }
    ++s->received_per_sub[sub];
    s->outbox.push_back({tuple.ts(), s->out_seq++, shard, sub, tuple});
  });
  const uint64_t caught_up = sb->applied_lsn() - applied_before;
  s->engine = sb->TakeEngine();
  {
    std::lock_guard<std::mutex> out_lock(s->out_mu);
    for (ReplicaEmission& e : pending) {
      if (s->received_per_sub.size() <= e.sub) {
        s->received_per_sub.resize(e.sub + 1, 0);
      }
      ++s->received_per_sub[e.sub];
      s->outbox.push_back(
          {e.tuple.ts(), s->out_seq++, shard, e.sub, std::move(e.tuple)});
    }
  }
  s->queue.Reopen();
  s->alive.store(true, std::memory_order_release);
  s->worker = std::thread([this, s] { primary_.WorkerLoop(s); });
  standbys_[shard].reset();  // spent; the next Checkpoint builds a new one

  promotions_.fetch_add(1, std::memory_order_relaxed);
  promotion_catchup_records_.fetch_add(caught_up, std::memory_order_relaxed);
  last_promotion_duration_us_.store(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count(),
      std::memory_order_relaxed);
  return Status::OK();
}

// ---- observability ---------------------------------------------------------

bool ReplicatedShardedEngine::shard_alive(size_t shard) const {
  return shard < primary_.shards_.size() &&
         primary_.shards_[shard]->alive.load(std::memory_order_acquire);
}

const StandbyShard* ReplicatedShardedEngine::standby(size_t shard) const {
  return shard < standbys_.size() ? standbys_[shard].get() : nullptr;
}

void ReplicatedShardedEngine::AppendReplicationMetrics(MetricsSnapshot* snap) {
  snap->counters["replication.segments_shipped"] =
      shipper_->segments_shipped();
  snap->counters["replication.bytes_shipped"] = shipper_->bytes_shipped();
  snap->counters["replication.ship_rounds"] = shipper_->ship_rounds();
  snap->counters["replication.promotions"] =
      promotions_.load(std::memory_order_relaxed);
  snap->counters["replication.promotion_catchup_records"] =
      promotion_catchup_records_.load(std::memory_order_relaxed);
  snap->gauges["replication.last_promotion_us"] =
      last_promotion_duration_us_.load(std::memory_order_relaxed);
  if (Result<uint64_t> lag = shipper_->MeasureLagBytes(); lag.ok()) {
    snap->gauges["replication.ship_lag_bytes"] = static_cast<int64_t>(*lag);
  }
  uint64_t wal_end = 0;
  {
    std::lock_guard<std::mutex> wal_lock(primary_.wal_mu_);
    if (primary_.wal_ != nullptr) wal_end = primary_.wal_->next_lsn() - 1;
  }
  const Timestamp low = primary_.low_watermark();
  int64_t standbys = 0;
  int64_t dead = 0;
  for (size_t i = 0; i < standbys_.size(); ++i) {
    if (!primary_.shards_[i]->alive.load(std::memory_order_acquire)) ++dead;
    const StandbyShard* sb = standbys_[i].get();
    if (sb == nullptr) continue;
    ++standbys;
    const std::string prefix =
        "replication.standby" + std::to_string(i) + ".";
    snap->gauges[prefix + "applied_lsn"] =
        static_cast<int64_t>(sb->applied_lsn());
    snap->gauges[prefix + "apply_lag_lsn"] = static_cast<int64_t>(
        wal_end > sb->applied_lsn() ? wal_end - sb->applied_lsn() : 0);
    snap->gauges[prefix + "apply_lag_watermark"] = static_cast<int64_t>(
        low > sb->applied_watermark() ? low - sb->applied_watermark() : 0);
    snap->gauges[prefix + "healthy"] = sb->health().ok() ? 1 : 0;
    snap->gauges[prefix + "buffered_emissions"] =
        static_cast<int64_t>(sb->buffered_emissions());
  }
  snap->gauges["replication.standbys"] = standbys;
  snap->gauges["replication.dead_shards"] = dead;
}

Result<MetricsSnapshot> ReplicatedShardedEngine::Metrics() {
  ESLEV_ASSIGN_OR_RETURN(MetricsSnapshot snap, primary_.Metrics());
  AppendReplicationMetrics(&snap);
  return snap;
}

}  // namespace eslev
