// ReplicatedShardedEngine: a ShardedEngine with one hot standby per
// shard, fed by WAL segment shipping, promotable at a watermark-aligned
// cut when a shard worker dies (DESIGN.md §12).
//
// Directory layout under `options.dir`:
//   wal.log[, wal.log.<id>.seg, wal.log.segments]   primary WAL chain
//   checkpoint/            latest coordinated checkpoint
//   standby/wal.log*       shipped copy of the WAL chain
//   standby/checkpoint/    shipped copy of the checkpoint
//
// The control loop is caller-driven: Replicate() runs one ship + apply
// round (call it periodically), Checkpoint() takes a coordinated
// checkpoint and (re)provisions standbys from it, KillShard() injects a
// worker failure, and HealFailures() promotes the standby of every dead
// shard. Promotion holds the WAL mutex — the same cut Checkpoint uses —
// so the promoted engine's history is exactly the WAL prefix, and the
// primary's per-subscription delivered counts suppress every emission
// the dead worker already delivered. Outputs are byte-identical to a
// failure-free run (tests/property/recovery_differential_test.cc proves
// it against a single-engine oracle).
//
// WAL retention: standbys act as a replication slot — checkpoint-driven
// truncation never drops a sealed segment holding records some healthy
// standby has not applied (ShardedEngine::wal_truncate_floor_).

#ifndef ESLEV_REPLICATION_REPLICATED_ENGINE_H_
#define ESLEV_REPLICATION_REPLICATED_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/sharded_engine.h"
#include "replication/log_shipper.h"
#include "replication/standby.h"

namespace eslev {

struct ReplicatedShardedEngineOptions {
  size_t num_shards = 4;
  /// Options for every shard engine (primary and standby alike).
  EngineOptions engine;
  /// Root directory for the WAL, checkpoints, and shipped copies.
  std::string dir;
  /// Primary WAL options. segment_bytes == 0 is overridden to 64 KiB:
  /// shipping and slot-based retention need rotation.
  WalOptions wal;
};

class ReplicatedShardedEngine {
 public:
  static Result<std::unique_ptr<ReplicatedShardedEngine>> Open(
      ReplicatedShardedEngineOptions options);

  ReplicatedShardedEngine(const ReplicatedShardedEngine&) = delete;
  ReplicatedShardedEngine& operator=(const ReplicatedShardedEngine&) = delete;

  // ---- setup (complete before the first Checkpoint) ----------------------

  Status ExecuteScript(const std::string& sql);
  Result<QueryInfo> RegisterQuery(const std::string& sql);
  Status Subscribe(const std::string& stream, TupleCallback callback);
  Status SetPartitionKey(const std::string& stream, const std::string& column);
  Status SetSingleShard(const std::string& stream);
  /// \brief Like ShardedEngine::Explain; EXPLAIN ANALYZE output carries
  /// an extra `-- replication --` section with the replication metrics.
  Result<std::string> Explain(const std::string& sql);

  // ---- data plane (thread-safe; passthrough to the primary) --------------

  Status Push(const std::string& stream, std::vector<Value> values,
              Timestamp ts);
  Status PushTuple(const std::string& stream, const Tuple& tuple);
  int RegisterProducer();
  Status AdvanceProducer(int id, Timestamp now);
  Status AdvanceTime(Timestamp now);
  Status Flush();
  size_t DrainOutputs();
  Result<std::vector<Tuple>> ExecuteSnapshot(const std::string& sql);

  // ---- replication control ------------------------------------------------

  /// \brief Coordinated checkpoint + standby provisioning: replicate,
  /// checkpoint the primary, ship the checkpoint, build a standby for
  /// every shard lacking a healthy one, and prune shipped segments no
  /// standby needs anymore. Requires every shard alive (heal first).
  Status Checkpoint();

  /// \brief One replication round: flush + ship the WAL chain, apply it
  /// on every standby, ack delivered emissions, and advance the WAL
  /// truncation floor. Unhealthy standbys are skipped (their sticky
  /// error is visible via standby(); the next Checkpoint rebuilds them).
  Status Replicate();

  /// \brief Failure injection: close the shard's mailbox (dropping the
  /// queued backlog, exactly like a crash), join the worker thread, and
  /// discard the shard engine. Already-dead shards are a no-op. The
  /// shard's outbox and delivered counts survive — they are coordinator
  /// memory, the basis for duplicate suppression at promotion.
  Status KillShard(size_t shard);

  /// \brief Promote the standby of every dead shard; returns how many
  /// promotions ran. A shard whose standby is missing or unhealthy stays
  /// dead and surfaces the error.
  Result<size_t> HealFailures();

  /// \brief Promote shard `shard`'s standby at a watermark-aligned cut:
  /// catch the standby up to the exact end of the WAL (refusing if it
  /// cannot get there), install its engine, enqueue the emissions the
  /// dead worker never delivered, and restart the worker.
  Status PromoteStandby(size_t shard);

  // ---- observability ------------------------------------------------------

  size_t num_shards() const { return primary_.num_shards(); }
  Timestamp low_watermark() const { return primary_.low_watermark(); }
  bool shard_alive(size_t shard) const;
  /// The shard's standby, or nullptr when none is provisioned.
  const StandbyShard* standby(size_t shard) const;
  uint64_t promotions() const {
    return promotions_.load(std::memory_order_relaxed);
  }
  int64_t last_promotion_duration_us() const {
    return last_promotion_duration_us_.load(std::memory_order_relaxed);
  }
  uint64_t promotion_catchup_records() const {
    return promotion_catchup_records_.load(std::memory_order_relaxed);
  }

  /// \brief The primary's merged snapshot plus the `replication.` family:
  /// ship lag (bytes), per-standby apply lag (LSN and watermark time),
  /// promotion count and latency.
  Result<MetricsSnapshot> Metrics();

 private:
  explicit ReplicatedShardedEngine(ReplicatedShardedEngineOptions options);

  /// Setup calls are recorded and replayed onto every standby so its
  /// engine evolves in lockstep with the shard it mirrors.
  struct SetupOp {
    enum class Kind { kScript, kQuery, kSubscribe };
    Kind kind;
    std::string arg;
  };

  Status BuildStandby(size_t shard);
  Status CopyCheckpointToStandby();
  void AppendReplicationMetrics(MetricsSnapshot* snap);

  ReplicatedShardedEngineOptions options_;
  std::string wal_path_;
  std::string ckpt_dir_;
  std::string standby_wal_path_;
  std::string standby_ckpt_dir_;

  ShardedEngine primary_;
  std::unique_ptr<LogShipper> shipper_;
  std::vector<std::unique_ptr<StandbyShard>> standbys_;
  std::vector<SetupOp> setup_;

  std::atomic<uint64_t> promotions_{0};
  std::atomic<int64_t> last_promotion_duration_us_{0};
  std::atomic<uint64_t> promotion_catchup_records_{0};
};

}  // namespace eslev

#endif  // ESLEV_REPLICATION_REPLICATED_ENGINE_H_
