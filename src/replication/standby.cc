#include "replication/standby.h"

#include <algorithm>
#include <filesystem>
#include <system_error>
#include <utility>

#include "common/string_util.h"
#include "recovery/checkpoint.h"
#include "recovery/codec.h"
#include "stream/stream.h"

namespace eslev {

StandbyShard::StandbyShard(StandbyShardOptions options)
    : options_(std::move(options)), sink_(std::make_shared<Sink>()) {
  if (options_.num_shards == 0) options_.num_shards = 1;
  // Standbys replay shipped WAL records one by one and must mirror the
  // primary's shard engines, which are pinned tuple-at-a-time (the batch
  // knob applies once, at the primary's routing layer — DESIGN.md §13).
  EngineOptions engine_options = options_.engine;
  engine_options.batch_size = 1;
  engine_options.honor_batch_env = false;
  engine_ = std::make_unique<Engine>(engine_options);
}

Status StandbyShard::ExecuteScript(const std::string& sql) {
  return engine_->ExecuteScript(sql);
}

Status StandbyShard::RegisterQuery(const std::string& sql) {
  return engine_->RegisterQuery(sql).status();
}

Status StandbyShard::Subscribe(const std::string& stream) {
  const size_t sub_id = subscriptions_;
  Stream* s = engine_->FindStream(stream);
  if (s == nullptr) {
    return Status::NotFound("stream not found: " + stream);
  }
  // `seq` is read inside the callback, after Stream::Push has counted
  // the tuple — so it equals the stream's lifetime push count, the same
  // quantity the primary's received_per_sub converges to per delivery.
  ESLEV_RETURN_NOT_OK(engine_->Subscribe(
      stream, [sink = sink_, sub_id, s](const Tuple& tuple) {
        std::lock_guard<std::mutex> lock(sink->mu);
        if (sink->redirect) {
          sink->redirect(sub_id, tuple);
        } else {
          sink->buffer.push_back({sub_id, s->tuples_pushed(), tuple});
        }
      }));
  ++subscriptions_;
  return Status::OK();
}

Status StandbyShard::SetRoute(const std::string& stream, size_t key_index,
                              bool single_shard) {
  routes_[AsciiToLower(stream)] = Route{key_index, single_shard};
  return Status::OK();
}

Status StandbyShard::Bootstrap(const std::string& checkpoint_dir) {
  ESLEV_ASSIGN_OR_RETURN(ShardedManifest manifest,
                         ReadManifest(checkpoint_dir));
  if (manifest.num_shards != options_.num_shards) {
    return Status::IoError(
        "shipped checkpoint was taken with " +
        std::to_string(manifest.num_shards) + " shards but this standby "
        "mirrors a " + std::to_string(options_.num_shards) +
        "-shard engine");
  }
  if (options_.shard_id >= manifest.shard_dirs.size()) {
    return Status::IoError("shipped checkpoint has no shard " +
                           std::to_string(options_.shard_id));
  }
  ESLEV_RETURN_NOT_OK(engine_->Restore(
      checkpoint_dir + "/" + manifest.shard_dirs[options_.shard_id]));
  applied_lsn_ = manifest.wal_last_lsn;
  applied_watermark_ = manifest.low_watermark;
  // Restart the applier; records at or below the covered LSN are skipped.
  last_applied_segment_id_ = 0;
  live_offset_ = 0;
  return Status::OK();
}

Status StandbyShard::Fail(Status status) {
  if (health_.ok()) health_ = status;
  return health_;
}

Status StandbyShard::ApplyRecord(const WalRecord& record) {
  if (record.lsn <= applied_lsn_) return Status::OK();  // already applied
  if (record.lsn != applied_lsn_ + 1) {
    // Front-end LSNs are dense, so a jump means a shipped record is
    // missing. Applying past the hole would silently diverge; fail for
    // good so promotion refuses this standby.
    return Fail(Status::IoError(
        "WAL gap in shipped chain: expected lsn " +
        std::to_string(applied_lsn_ + 1) + ", got " +
        std::to_string(record.lsn)));
  }
  Status st;
  if (record.kind == WalRecordKind::kHeartbeat) {
    if (!record.stream.empty()) {
      return Fail(Status::IoError(
          "sharded WAL contains a per-stream heartbeat for '" +
          record.stream + "' (not written by ShardedEngine)"));
    }
    // Mirror the worker's stale-tick rule.
    if (record.ts >= engine_->current_time()) {
      st = engine_->AdvanceTime(record.ts);
    }
    if (record.ts > applied_watermark_) applied_watermark_ = record.ts;
  } else {
    auto it = routes_.find(AsciiToLower(record.stream));
    if (it == routes_.end()) {
      return Fail(Status::IoError("shipped WAL names stream '" +
                                  record.stream +
                                  "' with no mirrored route"));
    }
    const Route& route = it->second;
    const Tuple& tuple = *record.tuple;
    size_t shard = 0;
    if (!route.single_shard && options_.num_shards > 1) {
      if (route.key_index >= tuple.size()) {
        return Fail(Status::IoError(
            "shipped tuple too short for partition key column " +
            std::to_string(route.key_index) + " of stream " +
            record.stream));
      }
      shard = tuple.value(route.key_index).Hash() % options_.num_shards;
    }
    if (shard == options_.shard_id) {
      // Mirror the worker's clamp-forward rule: WAL order is the shard's
      // serialization order.
      if (tuple.ts() < engine_->current_time()) {
        Tuple clamped = tuple;
        clamped.set_ts(engine_->current_time());
        st = engine_->PushTuple(record.stream, clamped);
      } else {
        st = engine_->PushTuple(record.stream, tuple);
      }
    }
  }
  if (!st.ok()) return Fail(st);
  applied_lsn_ = record.lsn;
  ++records_applied_;
  return Status::OK();
}

Status StandbyShard::Apply(const std::string& wal_path) {
  if (!health_.ok()) return health_;
  Result<WalManifest> manifest = ReadWalManifest(wal_path);
  if (!manifest.ok()) return Fail(manifest.status());

  for (const WalSegmentInfo& seg : manifest->segments) {
    if (seg.id <= last_applied_segment_id_) continue;
    const std::string seg_path = WalSegmentPath(wal_path, seg);
    Result<WalReadResult> read = ReadWal(seg_path);
    if (!read.ok()) return Fail(read.status());
    if (read->torn_tail || read->records.empty() ||
        read->valid_bytes != seg.bytes ||
        read->records.front().lsn != seg.first_lsn ||
        read->records.back().lsn != seg.last_lsn) {
      return Fail(Status::IoError(
          "shipped WAL segment " + seg_path +
          " is corrupt or does not match its manifest entry"));
    }
    for (const WalRecord& record : read->records) {
      ESLEV_RETURN_NOT_OK(ApplyRecord(record));
    }
    last_applied_segment_id_ = seg.id;
    live_offset_ = 0;  // the shipper restarted the live copy at the seal
  }

  std::error_code ec;
  if (!std::filesystem::exists(wal_path, ec)) return Status::OK();
  Result<std::string> bytes = ReadFileAll(wal_path);
  if (!bytes.ok()) return Fail(bytes.status());
  if (bytes->size() < live_offset_) live_offset_ = 0;  // copy restarted
  Result<WalReadResult> live = DecodeWalFrames(bytes->data() + live_offset_,
                                               bytes->size() - live_offset_);
  if (!live.ok()) return Fail(live.status());
  // A torn tail here is a ship in progress, not corruption: apply the
  // complete frames and pick the rest up next round.
  for (const WalRecord& record : live->records) {
    ESLEV_RETURN_NOT_OK(ApplyRecord(record));
  }
  live_offset_ += live->valid_bytes;
  return Status::OK();
}

void StandbyShard::AckDelivered(size_t sub, uint64_t delivered) {
  std::lock_guard<std::mutex> lock(sink_->mu);
  auto& buffer = sink_->buffer;
  buffer.erase(std::remove_if(buffer.begin(), buffer.end(),
                              [sub, delivered](const ReplicaEmission& e) {
                                return e.sub == sub && e.seq <= delivered;
                              }),
               buffer.end());
}

Status StandbyShard::AlignClock(Timestamp low) {
  if (low <= engine_->current_time()) return Status::OK();
  Status st = engine_->AdvanceTime(low);
  if (!st.ok()) return Fail(st);
  return Status::OK();
}

std::vector<ReplicaEmission> StandbyShard::TakeBufferedAfter(
    const std::vector<uint64_t>& delivered) {
  std::lock_guard<std::mutex> lock(sink_->mu);
  std::vector<ReplicaEmission> pending;
  for (ReplicaEmission& e : sink_->buffer) {
    const uint64_t threshold = e.sub < delivered.size() ? delivered[e.sub] : 0;
    if (e.seq > threshold) pending.push_back(std::move(e));
  }
  sink_->buffer.clear();
  return pending;
}

void StandbyShard::RedirectEmissions(
    std::function<void(size_t, const Tuple&)> sink) {
  std::lock_guard<std::mutex> lock(sink_->mu);
  sink_->redirect = std::move(sink);
}

std::unique_ptr<Engine> StandbyShard::TakeEngine() {
  return std::move(engine_);
}

size_t StandbyShard::buffered_emissions() const {
  std::lock_guard<std::mutex> lock(sink_->mu);
  return sink_->buffer.size();
}

}  // namespace eslev
