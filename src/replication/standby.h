// StandbyShard: a hot standby for one shard of a ShardedEngine
// (DESIGN.md §12).
//
// The standby owns a private Engine built with the primary's setup
// sequence (same scripts, queries, and subscriptions, in order — so
// stream ids, query ids, and subscription ids line up), bootstraps from
// the latest shipped coordinated checkpoint, and then applies the
// shipped front-end WAL incrementally. Because the sharded WAL is a
// linearization of every shard's queue order, replaying the records
// whose partition hash lands on this shard — with the same clamp-forward
// and stale-heartbeat rules the shard worker uses — reproduces the dead
// worker's history bit for bit.
//
// Emissions the replayed engine produces are buffered with the stream's
// push sequence number attached. The primary counts the emissions each
// subscription actually delivered into its outbox (received_per_sub);
// at promotion, buffered emissions at or below that count are duplicates
// and are dropped, the remainder are exactly the emissions the dead
// worker never delivered. AckDelivered() prunes the buffer between
// replication rounds so it holds only the undelivered frontier.
//
// Health is sticky: an LSN gap (a shipped record is missing) or a
// corrupt shipped segment permanently fails the standby, and promotion
// must refuse it — a standby that skipped records would silently diverge.

#ifndef ESLEV_REPLICATION_STANDBY_H_
#define ESLEV_REPLICATION_STANDBY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/time.h"
#include "core/engine.h"
#include "recovery/wal.h"

namespace eslev {

/// \brief One buffered output tuple: `seq` is the output stream's push
/// count at emission time — comparable to the primary's delivered count
/// for the same subscription.
struct ReplicaEmission {
  size_t sub = 0;
  uint64_t seq = 0;
  Tuple tuple;
};

struct StandbyShardOptions {
  size_t shard_id = 0;
  size_t num_shards = 1;
  EngineOptions engine;
};

class StandbyShard {
 public:
  explicit StandbyShard(StandbyShardOptions options);

  // ---- topology mirror (same order as on the primary) --------------------

  Status ExecuteScript(const std::string& sql);
  Status RegisterQuery(const std::string& sql);
  /// \brief Mirror of subscription `sub` (assigned in call order); the
  /// standby buffers its emissions instead of delivering them.
  Status Subscribe(const std::string& stream);
  /// \brief Mirror of the primary's routing for `stream`, so the standby
  /// applies exactly the WAL records whose hash lands on its shard.
  Status SetRoute(const std::string& stream, size_t key_index,
                  bool single_shard);

  // ---- replication --------------------------------------------------------

  /// \brief Load the shard's engine checkpoint from a shipped coordinated
  /// checkpoint directory (the root holding MANIFEST + shard<i>/) and
  /// position the applier at the manifest's covered LSN.
  Status Bootstrap(const std::string& checkpoint_dir);

  /// \brief Apply new records of the shipped WAL chain at `wal_path`:
  /// sealed segments past the last applied one, then the live copy past
  /// the applied offset. Tolerates a torn live tail (waits for the rest);
  /// a corrupt sealed segment or an LSN gap fails the standby for good.
  Status Apply(const std::string& wal_path);

  /// \brief The primary delivered `delivered` emissions for subscription
  /// `sub` so far; buffered emissions at or below that seq are duplicates.
  void AckDelivered(size_t sub, uint64_t delivered);

  // ---- promotion ----------------------------------------------------------

  /// \brief Advance the engine clock to the fanned low watermark (fires
  /// any remaining active expiration, aligning the cut). Normally a
  /// no-op: every watermark fan is also a logged heartbeat.
  Status AlignClock(Timestamp low);

  /// \brief Drain the buffer, dropping emissions the primary already
  /// delivered (`delivered[sub]` is the per-subscription threshold;
  /// missing entries mean none delivered). What remains — in emission
  /// order — is exactly what the dead worker never delivered.
  std::vector<ReplicaEmission> TakeBufferedAfter(
      const std::vector<uint64_t>& delivered);

  /// \brief From now on route emissions into `sink` instead of the
  /// buffer — the promoted engine feeds the shard outbox directly.
  void RedirectEmissions(std::function<void(size_t, const Tuple&)> sink);

  /// \brief Release the engine to the caller (promotion installs it as
  /// the shard's engine). The StandbyShard is spent afterwards.
  std::unique_ptr<Engine> TakeEngine();

  // ---- observability ------------------------------------------------------

  uint64_t applied_lsn() const { return applied_lsn_; }
  Timestamp applied_watermark() const { return applied_watermark_; }
  uint64_t records_applied() const { return records_applied_; }
  size_t buffered_emissions() const;
  /// Sticky: first unrecoverable apply error (gap / corruption).
  const Status& health() const { return health_; }

 private:
  struct Route {
    size_t key_index = 0;
    bool single_shard = false;
  };
  /// Shared with the engine's subscription callbacks, which outlive this
  /// object once TakeEngine() hands the engine to the shard.
  struct Sink {
    std::mutex mu;
    std::vector<ReplicaEmission> buffer;
    std::function<void(size_t, const Tuple&)> redirect;
  };

  Status ApplyRecord(const WalRecord& record);
  Status Fail(Status status);  // records sticky health, returns it

  StandbyShardOptions options_;
  std::unique_ptr<Engine> engine_;
  std::shared_ptr<Sink> sink_;
  std::map<std::string, Route> routes_;  // lower-case stream name
  size_t subscriptions_ = 0;

  uint64_t applied_lsn_ = 0;
  Timestamp applied_watermark_ = kMinTimestamp;
  uint64_t records_applied_ = 0;
  uint64_t last_applied_segment_id_ = 0;
  uint64_t live_offset_ = 0;  // consumed bytes of the shipped live copy
  Status health_ = Status::OK();
};

}  // namespace eslev

#endif  // ESLEV_REPLICATION_STANDBY_H_
