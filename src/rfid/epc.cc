#include "rfid/epc.h"

#include <cstdlib>

#include "common/string_util.h"

namespace eslev {
namespace rfid {

std::string Epc::ToString() const {
  return company + "." + product + "." + std::to_string(serial);
}

Result<Epc> ParseEpc(const std::string& text) {
  auto parts = Split(text, '.');
  if (parts.size() != 3) {
    return Status::Invalid("malformed EPC '" + text +
                           "' (want company.product.serial)");
  }
  if (parts[0].empty() || parts[1].empty() || parts[2].empty()) {
    return Status::Invalid("malformed EPC '" + text + "' (empty field)");
  }
  char* end = nullptr;
  const long long serial = std::strtoll(parts[2].c_str(), &end, 10);
  if (end == parts[2].c_str() || *end != '\0') {
    return Status::Invalid("non-numeric EPC serial in '" + text + "'");
  }
  Epc epc;
  epc.company = parts[0];
  epc.product = parts[1];
  epc.serial = serial;
  return epc;
}

bool AlePatternField::Matches(const std::string& value) const {
  switch (kind) {
    case Kind::kAny:
      return true;
    case Kind::kExact:
      return value == exact;
    case Kind::kRange: {
      char* end = nullptr;
      const long long v = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') return false;
      return v >= lo && v <= hi;
    }
  }
  return false;
}

namespace {

Result<AlePatternField> ParseField(const std::string& text) {
  AlePatternField field;
  if (text == "*") {
    field.kind = AlePatternField::Kind::kAny;
    return field;
  }
  if (text.size() >= 2 && text.front() == '[' && text.back() == ']') {
    const std::string body = text.substr(1, text.size() - 2);
    const size_t dash = body.find('-');
    if (dash == std::string::npos) {
      return Status::Invalid("malformed ALE range: " + text);
    }
    char* end = nullptr;
    const std::string lo_text = body.substr(0, dash);
    const std::string hi_text = body.substr(dash + 1);
    field.lo = std::strtoll(lo_text.c_str(), &end, 10);
    if (end == lo_text.c_str() || *end != '\0') {
      return Status::Invalid("malformed ALE range bound: " + lo_text);
    }
    field.hi = std::strtoll(hi_text.c_str(), &end, 10);
    if (end == hi_text.c_str() || *end != '\0') {
      return Status::Invalid("malformed ALE range bound: " + hi_text);
    }
    if (field.lo > field.hi) {
      return Status::Invalid("inverted ALE range: " + text);
    }
    field.kind = AlePatternField::Kind::kRange;
    return field;
  }
  if (text.empty()) return Status::Invalid("empty ALE pattern field");
  field.kind = AlePatternField::Kind::kExact;
  field.exact = text;
  return field;
}

std::string FieldToString(const AlePatternField& f) {
  switch (f.kind) {
    case AlePatternField::Kind::kAny:
      return "*";
    case AlePatternField::Kind::kExact:
      return f.exact;
    case AlePatternField::Kind::kRange:
      return "[" + std::to_string(f.lo) + "-" + std::to_string(f.hi) + "]";
  }
  return "?";
}

}  // namespace

Result<AlePattern> AlePattern::Parse(const std::string& pattern) {
  auto parts = Split(pattern, '.');
  if (parts.size() != 3) {
    return Status::Invalid("ALE pattern needs three fields: " + pattern);
  }
  AlePattern out;
  ESLEV_ASSIGN_OR_RETURN(out.company_, ParseField(parts[0]));
  ESLEV_ASSIGN_OR_RETURN(out.product_, ParseField(parts[1]));
  ESLEV_ASSIGN_OR_RETURN(out.serial_, ParseField(parts[2]));
  return out;
}

bool AlePattern::Matches(const Epc& epc) const {
  return company_.Matches(epc.company) && product_.Matches(epc.product) &&
         serial_.Matches(std::to_string(epc.serial));
}

bool AlePattern::Matches(const std::string& epc_text) const {
  auto epc = ParseEpc(epc_text);
  if (!epc.ok()) return false;
  return Matches(*epc);
}

std::string AlePattern::ToString() const {
  return FieldToString(company_) + "." + FieldToString(product_) + "." +
         FieldToString(serial_);
}

}  // namespace rfid
}  // namespace eslev
