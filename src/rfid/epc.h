// EPC (Electronic Product Code) handling in the paper's simplified
// "company.productcode.serialnumber" format (§2.1, Example 3), plus
// ALE-standard-style tag patterns such as `20.*.[5000-9999]`.

#ifndef ESLEV_RFID_EPC_H_
#define ESLEV_RFID_EPC_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace eslev {
namespace rfid {

/// \brief A parsed EPC code.
struct Epc {
  std::string company;
  std::string product;
  int64_t serial = 0;

  /// \brief Render as "company.product.serial".
  std::string ToString() const;
};

/// \brief Parse "company.product.serial"; Invalid on malformed input.
Result<Epc> ParseEpc(const std::string& text);

/// \brief One field of an ALE tag pattern: an exact value, `*`, or a
/// numeric range `[lo-hi]`.
struct AlePatternField {
  enum class Kind { kExact, kAny, kRange };
  Kind kind = Kind::kAny;
  std::string exact;
  int64_t lo = 0;
  int64_t hi = 0;

  bool Matches(const std::string& value) const;
};

/// \brief An ALE tag pattern over the three EPC fields, e.g.
/// `20.*.[5000-9999]` — company 20, any product, serial in [5000, 9999].
class AlePattern {
 public:
  static Result<AlePattern> Parse(const std::string& pattern);

  bool Matches(const Epc& epc) const;
  bool Matches(const std::string& epc_text) const;

  std::string ToString() const;

 private:
  AlePatternField company_;
  AlePatternField product_;
  AlePatternField serial_;
};

}  // namespace rfid
}  // namespace eslev

#endif  // ESLEV_RFID_EPC_H_
