#include "rfid/trace_io.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "recovery/codec.h"

namespace eslev {
namespace rfid {

namespace {

constexpr char kBinaryTraceMagic[] = "ESLEV-TRACE";
constexpr uint32_t kBinaryTraceVersion = 1;

bool NeedsQuoting(const std::string& s) {
  return s.find_first_of(",\"\n") != std::string::npos;
}

std::string QuoteField(const std::string& s) {
  if (!NeedsQuoting(s)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

// Split one CSV line honoring quoted fields.
Result<std::vector<std::string>> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (in_quotes) return Status::IoError("unterminated quote in CSV line");
  fields.push_back(std::move(cur));
  return fields;
}

Result<Value> ParseValueAs(const std::string& text, TypeId type) {
  if (text == "\\N") return Value::Null();
  char* end = nullptr;
  switch (type) {
    case TypeId::kString:
      return Value::String(text);
    case TypeId::kInt64: {
      const long long v = std::strtoll(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0') {
        return Status::IoError("bad INT field: " + text);
      }
      return Value::Int(v);
    }
    case TypeId::kTimestamp: {
      const long long v = std::strtoll(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0') {
        return Status::IoError("bad TIMESTAMP field: " + text);
      }
      return Value::Time(v);
    }
    case TypeId::kDouble: {
      const double v = std::strtod(text.c_str(), &end);
      if (end == text.c_str() || *end != '\0') {
        return Status::IoError("bad DOUBLE field: " + text);
      }
      return Value::Double(v);
    }
    case TypeId::kBool:
      if (text == "1" || text == "TRUE") return Value::Bool(true);
      if (text == "0" || text == "FALSE") return Value::Bool(false);
      return Status::IoError("bad BOOL field: " + text);
    case TypeId::kNull:
      return Value::Null();
  }
  return Status::IoError("unsupported column type");
}

std::string RenderValue(const Value& v) {
  switch (v.type()) {
    case TypeId::kNull:
      return "\\N";
    case TypeId::kBool:
      return v.bool_value() ? "1" : "0";
    case TypeId::kInt64:
      return std::to_string(v.int_value());
    case TypeId::kDouble: {
      std::ostringstream os;
      os.precision(17);
      os << v.double_value();
      return os.str();
    }
    case TypeId::kString:
      return QuoteField(v.string_value());
    case TypeId::kTimestamp:
      return std::to_string(v.time_value());
  }
  return "";
}

}  // namespace

Status SaveTraceCsv(const Workload& workload, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  for (const TimedReading& e : workload.events) {
    out << QuoteField(e.stream) << ',' << e.tuple.ts();
    for (const Value& v : e.tuple.values()) {
      out << ',' << RenderValue(v);
    }
    out << '\n';
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<Workload> LoadTraceCsv(
    const std::string& path,
    const std::map<std::string, SchemaPtr>& schemas) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  Workload workload;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    ESLEV_ASSIGN_OR_RETURN(auto fields, SplitCsvLine(line));
    if (fields.size() < 2) {
      return Status::IoError("line " + std::to_string(line_no) +
                             ": too few fields");
    }
    const std::string& stream = fields[0];
    auto it = schemas.find(stream);
    if (it == schemas.end()) {
      return Status::NotFound("line " + std::to_string(line_no) +
                              ": unknown stream " + stream);
    }
    const SchemaPtr& schema = it->second;
    if (fields.size() != 2 + schema->num_fields()) {
      return Status::IoError("line " + std::to_string(line_no) +
                             ": arity mismatch for stream " + stream);
    }
    char* end = nullptr;
    const long long ts = std::strtoll(fields[1].c_str(), &end, 10);
    if (end == fields[1].c_str() || *end != '\0') {
      return Status::IoError("line " + std::to_string(line_no) +
                             ": bad timestamp");
    }
    std::vector<Value> values;
    values.reserve(schema->num_fields());
    for (size_t i = 0; i < schema->num_fields(); ++i) {
      ESLEV_ASSIGN_OR_RETURN(
          Value v, ParseValueAs(fields[2 + i], schema->field(i).type));
      values.push_back(std::move(v));
    }
    ESLEV_ASSIGN_OR_RETURN(Tuple tuple,
                           MakeTuple(schema, std::move(values), ts));
    workload.events.push_back({stream, std::move(tuple)});
  }
  return workload;
}

Status SaveTraceBinary(const Workload& workload, const std::string& path) {
  BinaryEncoder header;
  header.PutString(kBinaryTraceMagic);
  header.PutU32(kBinaryTraceVersion);
  header.PutU64(workload.events.size());

  // One encoder for the whole body: each stream's schema is written
  // inline once and back-referenced by every later event.
  BinaryEncoder body;
  for (const TimedReading& e : workload.events) {
    body.PutString(e.stream);
    body.PutTuple(e.tuple);
  }

  std::string file;
  AppendFrame(header.buffer(), &file);
  AppendFrame(body.buffer(), &file);
  return WriteFileAtomic(path, file);
}

Result<Workload> LoadTraceBinary(
    const std::string& path,
    const std::map<std::string, SchemaPtr>& schemas) {
  ESLEV_ASSIGN_OR_RETURN(std::string bytes, ReadFileAll(path));
  ESLEV_ASSIGN_OR_RETURN(FrameScanResult frames,
                         ScanFrames(bytes.data(), bytes.size()));
  if (frames.torn_tail || frames.payloads.size() != 2) {
    return Status::IoError("binary trace is truncated or malformed: " + path);
  }

  BinaryDecoder header(frames.payloads[0]);
  ESLEV_ASSIGN_OR_RETURN(std::string magic, header.GetString());
  if (magic != kBinaryTraceMagic) {
    return Status::IoError("not a binary trace file: " + path);
  }
  ESLEV_ASSIGN_OR_RETURN(uint32_t version, header.GetU32());
  if (version != kBinaryTraceVersion) {
    return Status::IoError("unsupported binary trace version " +
                           std::to_string(version) + ": " + path);
  }
  ESLEV_ASSIGN_OR_RETURN(uint64_t count, header.GetU64());

  Workload workload;
  workload.events.reserve(count);
  BinaryDecoder body(frames.payloads[1]);
  for (uint64_t i = 0; i < count; ++i) {
    ESLEV_ASSIGN_OR_RETURN(std::string stream, body.GetString());
    ESLEV_ASSIGN_OR_RETURN(Tuple decoded, body.GetTuple());
    auto it = schemas.find(stream);
    if (it == schemas.end()) {
      return Status::NotFound("event " + std::to_string(i) +
                              ": unknown stream " + stream);
    }
    if (decoded.values().size() != it->second->num_fields()) {
      return Status::IoError("event " + std::to_string(i) +
                             ": arity mismatch for stream " + stream);
    }
    // Re-bind to the catalog schema so replayed tuples are
    // indistinguishable from freshly generated ones.
    std::vector<Value> values(decoded.values().begin(),
                              decoded.values().end());
    ESLEV_ASSIGN_OR_RETURN(
        Tuple tuple, MakeTuple(it->second, std::move(values), decoded.ts()));
    workload.events.push_back({std::move(stream), std::move(tuple)});
  }
  if (!body.AtEnd()) {
    return Status::IoError("binary trace has trailing bytes: " + path);
  }
  return workload;
}

}  // namespace rfid
}  // namespace eslev
