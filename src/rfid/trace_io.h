// Trace persistence: save generated workloads to CSV or a compact
// binary format and replay them — the substitute for recorded
// production reader logs (DESIGN.md, Substitutions).
//
// CSV is one event per line:
//
//   stream,timestamp_us,v1,v2,...
//
// Values are rendered per the stream's schema; strings are quoted only
// when they contain a comma or quote (doubled-quote escaping).
//
// The binary format reuses the recovery codec (recovery/codec.h):
// CRC-framed, fixed little-endian scalars, and schema back-references
// so each stream's schema is written once per file. Two frames:
// a header (magic string, version, event count) and a body holding
// every event as [string stream][tuple].

#ifndef ESLEV_RFID_TRACE_IO_H_
#define ESLEV_RFID_TRACE_IO_H_

#include <map>
#include <string>

#include "common/result.h"
#include "rfid/workloads.h"

namespace eslev {
namespace rfid {

/// \brief Write a workload trace to `path` (ground-truth metadata is not
/// persisted). IoError on filesystem failures.
Status SaveTraceCsv(const Workload& workload, const std::string& path);

/// \brief Read a trace; each stream's values are parsed against its
/// schema from `schemas` (NotFound for an unknown stream name).
Result<Workload> LoadTraceCsv(
    const std::string& path,
    const std::map<std::string, SchemaPtr>& schemas);

/// \brief Write a workload trace in the binary format (atomic replace;
/// ground-truth metadata is not persisted). IoError on filesystem
/// failures.
Status SaveTraceBinary(const Workload& workload, const std::string& path);

/// \brief Read a binary trace. Decoded tuples are re-bound to the
/// catalog schema from `schemas` (NotFound for an unknown stream,
/// IoError for corruption, version or arity mismatch).
Result<Workload> LoadTraceBinary(
    const std::string& path,
    const std::map<std::string, SchemaPtr>& schemas);

}  // namespace rfid
}  // namespace eslev

#endif  // ESLEV_RFID_TRACE_IO_H_
