#include "rfid/workloads.h"

#include <algorithm>
#include <random>

#include "common/logging.h"
#include "rfid/epc.h"

namespace eslev {
namespace rfid {

namespace {

Tuple Reading(const SchemaPtr& schema, const std::string& reader,
              const std::string& tag, Timestamp ts) {
  auto t = MakeTuple(
      schema, {Value::String(reader), Value::String(tag), Value::Time(ts)},
      ts);
  ESLEV_CHECK(t.ok());
  return std::move(t).ValueUnsafe();
}

void SortByTime(Workload* w) {
  std::stable_sort(w->events.begin(), w->events.end(),
                   [](const TimedReading& a, const TimedReading& b) {
                     return a.tuple.ts() < b.tuple.ts();
                   });
}

}  // namespace

SchemaPtr ReaderSchema() {
  static SchemaPtr schema = Schema::Make({{"reader_id", TypeId::kString},
                                          {"tag_id", TypeId::kString},
                                          {"read_time", TypeId::kTimestamp}});
  return schema;
}

// ---------------------------------------------------------------------------
// Duplicates
// ---------------------------------------------------------------------------

Workload MakeDuplicateWorkload(const DuplicateWorkloadOptions& options) {
  std::mt19937 rng(options.seed);
  std::uniform_int_distribution<size_t> reader_dist(0,
                                                    options.num_readers - 1);
  std::uniform_int_distribution<Duration> spread_dist(
      1, std::max<Duration>(1, options.duplicate_spread));

  Workload w;
  auto schema = ReaderSchema();
  Timestamp ts = 0;
  for (size_t i = 0; i < options.num_distinct; ++i) {
    // Distinct readings are spaced so that two occurrences of the same
    // (reader, tag) key never fall inside the dedup threshold: tags
    // rotate round-robin, so the same tag recurs only after
    // num_tags * inter_arrival.
    ts += options.inter_arrival;
    const std::string reader = "rd" + std::to_string(reader_dist(rng));
    const std::string tag = "tag" + std::to_string(i % options.num_tags);
    w.events.push_back({"readings", Reading(schema, reader, tag, ts)});
    for (size_t d = 0; d < options.duplicates_per_read; ++d) {
      w.events.push_back(
          {"readings", Reading(schema, reader, tag, ts + spread_dist(rng))});
    }
  }
  w.distinct_readings = options.num_distinct;
  SortByTime(&w);
  return w;
}

// ---------------------------------------------------------------------------
// Packing (Figure 1)
// ---------------------------------------------------------------------------

PackingWorkload MakePackingWorkload(const PackingWorkloadOptions& options) {
  std::mt19937 rng(options.seed);
  std::uniform_int_distribution<size_t> size_dist(options.min_case_size,
                                                  options.max_case_size);
  std::uniform_int_distribution<Duration> gap_dist(
      1, std::max<Duration>(1, options.max_intra_gap));

  PackingWorkload w;
  auto schema = ReaderSchema();
  Timestamp ts = 0;
  size_t product_id = 0;
  for (size_t c = 0; c < options.num_cases; ++c) {
    const size_t size = size_dist(rng);
    w.case_sizes.push_back(size);
    ts += options.inter_case_gap;  // > t1: closes the previous group
    Timestamp last_item_ts = ts;
    for (size_t i = 0; i < size; ++i) {
      if (i > 0) ts += gap_dist(rng);  // <= t1: same group
      last_item_ts = ts;
      w.events.push_back(
          {"R1", Reading(schema, "shelf",
                         "item" + std::to_string(product_id++), ts)});
    }
    // The case reading: within t0 of the last item. With interleaving
    // (Figure 1(b)), it arrives after the *next* case's items start, so
    // its timestamp overlaps the next group; correctness then depends on
    // CHRONICLE consumption, not timing order.
    const Timestamp case_ts = last_item_ts + options.case_delay;
    w.events.push_back(
        {"R2",
         Reading(schema, "packer", "case" + std::to_string(c), case_ts)});
  }
  w.expected_events = options.num_cases;
  if (options.interleave_next_case) {
    SortByTime(&w);
  }
  return w;
}

// ---------------------------------------------------------------------------
// Quality-check pipeline
// ---------------------------------------------------------------------------

Workload MakeQualityCheckWorkload(
    const QualityCheckWorkloadOptions& options) {
  std::mt19937 rng(options.seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_int_distribution<Duration> jitter(
      0, std::max<Duration>(1, options.stage_delay / 2));
  std::uniform_int_distribution<size_t> drop_stage(1, options.num_stages - 1);

  Workload w;
  auto schema = ReaderSchema();
  size_t completed = 0;
  for (size_t p = 0; p < options.num_products; ++p) {
    const Timestamp start =
        static_cast<Timestamp>(p) * options.product_interval;
    const bool dropped = unit(rng) < options.drop_rate;
    const size_t missing = dropped ? drop_stage(rng) : options.num_stages;
    bool complete = true;
    Timestamp ts = start;
    for (size_t s = 0; s < options.num_stages; ++s) {
      if (s > 0) ts += options.stage_delay + jitter(rng);
      if (s == missing) {
        complete = false;
        continue;  // reading lost at this stage
      }
      w.events.push_back(
          {"C" + std::to_string(s + 1),
           Reading(schema, "stage" + std::to_string(s + 1),
                   "prod" + std::to_string(p), ts)});
    }
    if (complete) ++completed;
  }
  w.expected_events = completed;
  SortByTime(&w);
  return w;
}

// ---------------------------------------------------------------------------
// Lab workflow
// ---------------------------------------------------------------------------

Workload MakeLabWorkflowWorkload(const LabWorkflowWorkloadOptions& options) {
  std::mt19937 rng(options.seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  Workload w;
  auto schema = ReaderSchema();
  Timestamp ts = 0;
  const char* ops[3] = {"opA", "opB", "opC"};
  for (size_t r = 0; r < options.num_rounds; ++r) {
    ts += options.round_gap;
    const double dice = unit(rng);
    if (dice < options.wrong_start_rate) {
      // Round begins with B: one level-0 violation, then a clean round.
      w.events.push_back({"A2", Reading(schema, "staff", "opB", ts)});
      ts += options.step_delay;
      ++w.expected_exceptions;
    } else if (dice < options.wrong_start_rate + options.wrong_order_rate) {
      // A then C: violation mid-sequence.
      w.events.push_back({"A1", Reading(schema, "staff", "opA", ts)});
      ts += options.step_delay;
      w.events.push_back({"A3", Reading(schema, "staff", "opC", ts)});
      ts += options.step_delay;
      ++w.expected_exceptions;
      continue;
    } else if (dice < options.wrong_start_rate + options.wrong_order_rate +
                          options.timeout_rate) {
      // A, B, then nothing until far past the window.
      w.events.push_back({"A1", Reading(schema, "staff", "opA", ts)});
      ts += options.step_delay;
      w.events.push_back({"A2", Reading(schema, "staff", "opB", ts)});
      ts += options.window + options.step_delay;  // stall past deadline
      ++w.expected_exceptions;
      continue;
    }
    // Clean round.
    for (int s = 0; s < 3; ++s) {
      w.events.push_back(
          {"A" + std::to_string(s + 1), Reading(schema, "staff", ops[s], ts)});
      ts += options.step_delay;
    }
  }
  SortByTime(&w);
  return w;
}

// ---------------------------------------------------------------------------
// Door traffic / theft
// ---------------------------------------------------------------------------

Workload MakeDoorWorkload(const DoorWorkloadOptions& options) {
  std::mt19937 rng(options.seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_int_distribution<Duration> near(
      1, std::max<Duration>(1, options.window - Seconds(1)));

  Workload w;
  auto schema = Schema::Make({{"tagid", TypeId::kString},
                              {"tagtype", TypeId::kString},
                              {"tagtime", TypeId::kTimestamp}});
  auto reading = [&](const std::string& id, const std::string& type,
                     Timestamp ts) {
    auto t = MakeTuple(
        schema, {Value::String(id), Value::String(type), Value::Time(ts)},
        ts);
    ESLEV_CHECK(t.ok());
    return std::move(t).ValueUnsafe();
  };

  size_t thefts = 0;
  Timestamp ts = 0;
  for (size_t i = 0; i < options.num_items; ++i) {
    // Keep items far enough apart that authorization windows of
    // neighbouring items never overlap.
    ts += options.item_interval + 2 * options.window;
    const std::string item = "item" + std::to_string(i);
    const bool theft = unit(rng) < options.theft_rate;
    if (theft) {
      ++thefts;
      w.events.push_back({"tag_readings", reading(item, "item", ts)});
      continue;
    }
    // A person passes within the window, before or after the item.
    const bool before = unit(rng) < 0.5;
    const Duration offset = near(rng);
    const Timestamp person_ts = before ? ts - offset : ts + offset;
    w.events.push_back(
        {"tag_readings",
         reading("person" + std::to_string(i), "person", person_ts)});
    w.events.push_back({"tag_readings", reading(item, "item", ts)});
  }
  w.expected_events = thefts;
  SortByTime(&w);
  return w;
}

// ---------------------------------------------------------------------------
// EPC readings
// ---------------------------------------------------------------------------

Workload MakeEpcWorkload(const EpcWorkloadOptions& options) {
  std::mt19937 rng(options.seed);
  std::uniform_int_distribution<size_t> company_dist(
      0, options.companies.size() - 1);
  std::uniform_int_distribution<size_t> product_dist(0,
                                                     options.num_products - 1);
  std::uniform_int_distribution<int64_t> serial_dist(0, options.max_serial);

  auto pattern = AlePattern::Parse(options.pattern);
  ESLEV_CHECK(pattern.ok());

  Workload w;
  auto schema = Schema::Make({{"reader_id", TypeId::kString},
                              {"tid", TypeId::kString},
                              {"read_time", TypeId::kTimestamp}});
  Timestamp ts = 0;
  for (size_t i = 0; i < options.num_readings; ++i) {
    ts += options.inter_arrival;
    Epc epc;
    epc.company = options.companies[company_dist(rng)];
    epc.product = std::to_string(product_dist(rng));
    epc.serial = serial_dist(rng);
    if (pattern->Matches(epc)) ++w.expected_matches;
    auto t = MakeTuple(schema,
                       {Value::String("dock"), Value::String(epc.ToString()),
                        Value::Time(ts)},
                       ts);
    ESLEV_CHECK(t.ok());
    w.events.push_back({"readings", std::move(t).ValueUnsafe()});
  }
  return w;
}

// ---------------------------------------------------------------------------
// Ingest noise injection
// ---------------------------------------------------------------------------

namespace {

/// Copy `base` with its first string column rewritten to a fresh ghost
/// identity (same schema, same timestamps).
TimedReading MakeGhost(const TimedReading& base, size_t ghost_id) {
  std::vector<Value> values = base.tuple.values();
  const SchemaPtr& schema = base.tuple.schema();
  for (size_t i = 0; i < values.size(); ++i) {
    if (schema != nullptr && i < schema->num_fields() &&
        schema->field(i).type == TypeId::kString) {
      values[i] = Value::String(values[i].ToString() + "#ghost" +
                                std::to_string(ghost_id));
      break;
    }
  }
  return {base.stream,
          Tuple(base.tuple.schema(), std::move(values), base.tuple.ts())};
}

}  // namespace

NoiseStats InjectNoise(Workload* workload, const NoiseOptions& options) {
  std::mt19937 rng(options.seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  NoiseStats stats;

  // 1) Missed reads.
  if (options.drop_rate > 0.0) {
    std::vector<TimedReading> kept;
    kept.reserve(workload->events.size());
    for (TimedReading& event : workload->events) {
      if (coin(rng) < options.drop_rate) {
        ++stats.dropped;
      } else {
        kept.push_back(std::move(event));
      }
    }
    workload->events = std::move(kept);
  }

  // 2) Duplicate and spurious reads, injected adjacent to the original
  // (identical timestamps — arrival displacement below spreads them).
  if (options.duplicate_rate > 0.0 || options.spurious_rate > 0.0) {
    std::vector<TimedReading> expanded;
    expanded.reserve(workload->events.size());
    size_t ghost_id = 0;
    for (TimedReading& event : workload->events) {
      const bool duplicate = coin(rng) < options.duplicate_rate;
      const bool spurious = coin(rng) < options.spurious_rate;
      if (spurious) {
        expanded.push_back(MakeGhost(event, ghost_id++));
        ++stats.spurious_added;
      }
      expanded.push_back(event);
      if (duplicate) {
        for (size_t c = 0; c < options.duplicate_copies; ++c) {
          expanded.push_back(event);
          ++stats.duplicates_added;
        }
      }
    }
    workload->events = std::move(expanded);
  }

  // 3) Bounded arrival disorder: displace each event's arrival slot by
  // U[0, max_shift] and stable-sort by displaced slot. Event time is
  // untouched, and no event can arrive after one whose timestamp
  // exceeds its own by more than max_shift.
  if (options.max_shift > 0) {
    std::uniform_int_distribution<Duration> shift_dist(0, options.max_shift);
    std::vector<std::pair<Timestamp, size_t>> slots;
    slots.reserve(workload->events.size());
    for (size_t i = 0; i < workload->events.size(); ++i) {
      slots.emplace_back(workload->events[i].tuple.ts() + shift_dist(rng), i);
    }
    std::stable_sort(slots.begin(), slots.end());
    std::vector<TimedReading> shuffled;
    shuffled.reserve(workload->events.size());
    for (const auto& [slot, index] : slots) {
      shuffled.push_back(std::move(workload->events[index]));
    }
    workload->events = std::move(shuffled);
  }

  Timestamp max_seen = kMinTimestamp;
  for (const TimedReading& event : workload->events) {
    const Timestamp ts = event.tuple.ts();
    if (max_seen != kMinTimestamp && ts < max_seen) {
      stats.max_disorder = std::max(stats.max_disorder, max_seen - ts);
    }
    max_seen = std::max(max_seen, ts);
  }
  return stats;
}

void NormalizeUniqueTimestamps(Workload* workload) {
  Timestamp prev = kMinTimestamp;
  for (TimedReading& event : workload->events) {
    Timestamp ts = event.tuple.ts();
    if (prev != kMinTimestamp && ts <= prev) ts = prev + 1;
    if (ts != event.tuple.ts()) {
      const Duration delta = ts - event.tuple.ts();
      std::vector<Value> values = event.tuple.values();
      const SchemaPtr& schema = event.tuple.schema();
      for (size_t i = 0; i < values.size(); ++i) {
        if (schema != nullptr && i < schema->num_fields() &&
            schema->field(i).type == TypeId::kTimestamp &&
            values[i].type() == TypeId::kTimestamp) {
          values[i] = Value::Time(values[i].time_value() + delta);
        }
      }
      event.tuple = Tuple(event.tuple.schema(), std::move(values), ts);
    }
    prev = ts;
  }
}

}  // namespace rfid
}  // namespace eslev
