// Synthetic RFID workload generators — the reproduction's substitute for
// physical readers and tags (see DESIGN.md, Substitutions). Each
// generator produces a timestamp-ordered event trace plus the scenario's
// ground truth, so benches can check correctness while they measure.
//
// All generators are deterministic given a seed.

#ifndef ESLEV_RFID_WORKLOADS_H_
#define ESLEV_RFID_WORKLOADS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "types/tuple.h"

namespace eslev {
namespace rfid {

/// \brief One generated event: a tuple destined for a named stream.
struct TimedReading {
  std::string stream;
  Tuple tuple;
};

/// \brief A generated trace, ordered by tuple timestamp.
struct Workload {
  std::vector<TimedReading> events;

  // Scenario-specific ground truth (only the relevant fields are set).
  size_t distinct_readings = 0;   // dedup: unique (reader,tag) events
  size_t expected_events = 0;     // generic: events a correct engine finds
  size_t expected_exceptions = 0; // workflow: violations injected
  size_t expected_matches = 0;    // EPC: readings matching the pattern
};

/// \brief Schema used by reader streams:
/// (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP).
SchemaPtr ReaderSchema();

// ---------------------------------------------------------------------------
// E1: duplicate-heavy reading stream (Example 1)
// ---------------------------------------------------------------------------

struct DuplicateWorkloadOptions {
  size_t num_distinct = 1000;    // distinct logical readings
  size_t duplicates_per_read = 3;  // extra copies of each reading
  Duration duplicate_spread = Milliseconds(800);  // dups fall within this
  Duration inter_arrival = Milliseconds(1500);    // gap between readings
  size_t num_readers = 4;
  size_t num_tags = 100;
  uint32_t seed = 42;
};

/// \brief Readings on stream "readings"; ground truth: distinct_readings.
Workload MakeDuplicateWorkload(const DuplicateWorkloadOptions& options);

// ---------------------------------------------------------------------------
// E4: Figure 1 packing scenario (Examples 4 & 7)
// ---------------------------------------------------------------------------

struct PackingWorkloadOptions {
  size_t num_cases = 100;
  size_t min_case_size = 2;
  size_t max_case_size = 6;
  Duration max_intra_gap = Milliseconds(900);  // < t1 = 1 s
  Duration case_delay = Seconds(3);            // < t0 = 5 s after last item
  Duration inter_case_gap = Seconds(4);        // > t1 between groups
  bool interleave_next_case = true;            // Figure 1(b) behaviour
  uint32_t seed = 42;
};

/// \brief Product readings on "R1", case readings on "R2"; ground truth:
/// expected_events == num_cases and the per-case product counts.
struct PackingWorkload : Workload {
  std::vector<size_t> case_sizes;
};

PackingWorkload MakePackingWorkload(const PackingWorkloadOptions& options);

// ---------------------------------------------------------------------------
// E6/E7/E9/E10: four-stage quality-check pipeline (Example 6)
// ---------------------------------------------------------------------------

struct QualityCheckWorkloadOptions {
  size_t num_products = 1000;
  size_t num_stages = 4;           // streams C1..Cn
  Duration stage_delay = Seconds(2);    // mean delay between stages
  Duration product_interval = Seconds(1);  // new product enters this often
  double drop_rate = 0.0;          // fraction of products losing one stage
  uint32_t seed = 42;
};

/// \brief Stage readings on "C1".."Cn"; expected_events counts products
/// passing all stages in order.
Workload MakeQualityCheckWorkload(const QualityCheckWorkloadOptions& options);

// ---------------------------------------------------------------------------
// E5: lab workflow with violation injection (Example 5)
// ---------------------------------------------------------------------------

struct LabWorkflowWorkloadOptions {
  size_t num_rounds = 200;
  double wrong_order_rate = 0.05;  // e.g. C directly after A
  double wrong_start_rate = 0.05;  // round begins with B
  double timeout_rate = 0.05;      // round stalls past the window
  Duration step_delay = Minutes(10);
  Duration window = Hours(1);
  Duration round_gap = Minutes(5);
  uint32_t seed = 42;
};

/// \brief Operation readings on "A1".."A3"; expected_exceptions counts
/// rounds with an injected violation (each raises at least one alert).
Workload MakeLabWorkflowWorkload(const LabWorkflowWorkloadOptions& options);

// ---------------------------------------------------------------------------
// E8: door traffic with thefts (Example 8)
// ---------------------------------------------------------------------------

struct DoorWorkloadOptions {
  size_t num_items = 1000;
  double theft_rate = 0.05;      // items with no person nearby
  Duration window = Minutes(1);  // authorization window tau
  Duration item_interval = Seconds(30);
  uint32_t seed = 42;
};

/// \brief Mixed person/item readings on "tag_readings"
/// (tagid, tagtype, tagtime); expected_events counts thefts.
Workload MakeDoorWorkload(const DoorWorkloadOptions& options);

// ---------------------------------------------------------------------------
// E3: EPC-coded readings (Example 3)
// ---------------------------------------------------------------------------

struct EpcWorkloadOptions {
  size_t num_readings = 10000;
  std::vector<std::string> companies = {"20", "21", "37"};
  size_t num_products = 50;
  int64_t max_serial = 12000;
  Duration inter_arrival = Milliseconds(100);
  uint32_t seed = 42;
  // The pattern whose ground-truth match count is recorded.
  std::string pattern = "20.*.[5000-9999]";
};

/// \brief EPC readings on "readings" (reader_id, tid, read_time);
/// expected_matches counts readings matching `pattern`.
Workload MakeEpcWorkload(const EpcWorkloadOptions& options);

// ---------------------------------------------------------------------------
// E17: ingest noise injection (DESIGN.md §15)
// ---------------------------------------------------------------------------

/// \brief Noise injected into a clean, timestamp-ordered trace to
/// exercise the ingest subsystem: bounded arrival disorder, duplicate
/// reads, missed (dropped) reads, and spurious ghost reads. Tuple
/// timestamps (event time) are never changed — disorder perturbs only
/// the ARRIVAL order, by at most `max_shift` of displacement, so an
/// ingest reorder stage with lateness_bound >= max_shift restores the
/// exact clean order. Deterministic for a fixed seed.
struct NoiseOptions {
  /// Each event's arrival slot is displaced by U[0, max_shift]; events
  /// are re-sorted by displaced slot (stable). 0 = keep arrival order.
  Duration max_shift = 0;
  /// P(a read gains `duplicate_copies` extra identical copies).
  double duplicate_rate = 0.0;
  size_t duplicate_copies = 1;
  /// P(a read is removed) — a missed read.
  double drop_rate = 0.0;
  /// P(a ghost read is injected next to a real one). Ghosts copy the
  /// real tuple but rewrite its first string column to a fresh
  /// "...#ghostN" identity, so each ghost key is seen exactly once and
  /// a min_read_count >= 2 cleaning stage filters all of them.
  double spurious_rate = 0.0;
  uint32_t seed = 7;
};

struct NoiseStats {
  size_t duplicates_added = 0;
  size_t dropped = 0;
  size_t spurious_added = 0;
  /// Max (largest-earlier-ts − this-ts) over the final arrival order:
  /// the minimum reorder lateness bound that loses no event.
  Duration max_disorder = 0;
};

/// \brief Apply `options` to `workload` in place (ground-truth counters
/// are left untouched; they describe the clean trace).
NoiseStats InjectNoise(Workload* workload, const NoiseOptions& options);

/// \brief Rewrite timestamps so they are strictly increasing (ties
/// bumped forward by 1 µs, event-time columns shifted in step. Events
/// must be timestamp-ordered). Byte-identity differentials need unique
/// timestamps: the reorder stage breaks timestamp ties by arrival
/// order, which a disordered run cannot reproduce.
void NormalizeUniqueTimestamps(Workload* workload);

}  // namespace rfid
}  // namespace eslev

#endif  // ESLEV_RFID_WORKLOADS_H_
