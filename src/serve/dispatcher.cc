#include "serve/dispatcher.h"

#include <algorithm>
#include <utility>

namespace eslev {

void Dispatcher::AddTenant(const std::string& tenant, size_t max_pending,
                           BackpressurePolicy policy) {
  std::lock_guard<std::mutex> lock(mu_);
  Outbox& box = outboxes_[tenant];
  box.max_pending = max_pending;
  box.policy = policy;
}

void Dispatcher::RemoveTenant(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  outboxes_.erase(tenant);
  for (auto& [entry_id, routes] : routes_) {
    (void)entry_id;
    routes.erase(std::remove_if(routes.begin(), routes.end(),
                                [&tenant](const Route& r) {
                                  return r.tenant == tenant;
                                }),
                 routes.end());
  }
}

void Dispatcher::AddRoute(int entry_id, const std::string& tenant,
                          const std::string& query) {
  std::lock_guard<std::mutex> lock(mu_);
  routes_[entry_id].push_back(Route{tenant, query});
}

void Dispatcher::RemoveRoute(int entry_id, const std::string& tenant,
                             const std::string& query) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = routes_.find(entry_id);
  if (it == routes_.end()) return;
  auto& routes = it->second;
  routes.erase(std::remove_if(routes.begin(), routes.end(),
                              [&](const Route& r) {
                                return r.tenant == tenant && r.query == query;
                              }),
               routes.end());
  if (routes.empty()) routes_.erase(it);
}

void Dispatcher::OnEmission(int entry_id, const Tuple& tuple) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = routes_.find(entry_id);
  if (it == routes_.end() || it->second.empty()) {
    ++orphan_emissions_;
    return;
  }
  for (const Route& route : it->second) {
    auto box_it = outboxes_.find(route.tenant);
    if (box_it == outboxes_.end()) {
      ++orphan_emissions_;
      continue;
    }
    Outbox& box = box_it->second;
    ++box.emitted;
    if (box.max_pending != 0 && box.pending.size() >= box.max_pending) {
      ++box.dropped;
      if (box.policy == BackpressurePolicy::kDropNewest) {
        // The refused emission still consumes a sequence number so the
        // consumer can witness the gap.
        ++box.next_seq;
        continue;
      }
      box.pending.pop_front();
    }
    ServedEmission emission;
    emission.query = route.query;
    emission.seq = box.next_seq++;
    emission.tuple = tuple;
    box.pending.push_back(std::move(emission));
  }
}

size_t Dispatcher::Drain(const std::string& tenant,
                         const std::function<void(const ServedEmission&)>& fn,
                         size_t max) {
  // Move the deliverable prefix out under the lock, then run the
  // consumer callback outside it: the callback may re-enter the server
  // (e.g. unregister a query from inside a result handler).
  std::deque<ServedEmission> batch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = outboxes_.find(tenant);
    if (it == outboxes_.end()) return 0;
    Outbox& box = it->second;
    size_t take = box.pending.size();
    if (max != 0) take = std::min(take, max);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(box.pending.front()));
      box.pending.pop_front();
    }
    box.delivered += take;
  }
  for (const ServedEmission& emission : batch) fn(emission);
  return batch.size();
}

size_t Dispatcher::Pending(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = outboxes_.find(tenant);
  return it == outboxes_.end() ? 0 : it->second.pending.size();
}

uint64_t Dispatcher::Dropped(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = outboxes_.find(tenant);
  return it == outboxes_.end() ? 0 : it->second.dropped;
}

void Dispatcher::AppendMetrics(MetricsSnapshot* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [tenant, box] : outboxes_) {
    const std::string prefix = "tenant." + tenant + ".";
    out->gauges[prefix + "pending"] =
        static_cast<int64_t>(box.pending.size());
    out->counters[prefix + "emitted"] += box.emitted;
    out->counters[prefix + "delivered"] += box.delivered;
    out->counters[prefix + "dropped"] += box.dropped;
  }
  out->counters["serve.orphan_emissions"] += orphan_emissions_;
}

}  // namespace eslev
