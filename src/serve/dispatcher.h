// Dispatcher (DESIGN.md §17): per-tenant emission routing with
// backpressure. Each physical pipeline (plan-cache entry) emits into
// one subscription callback; the dispatcher fans every emission out to
// all (tenant, query-name) subscribers of that entry, appending into
// per-tenant bounded outboxes. Tenants consume their outbox with
// Session::Drain on their own cadence; a slow tenant overflows only
// its own outbox (drop-oldest or drop-newest, counted), never stalling
// the engine or its neighbours.
//
// Thread-safety: a mutex guards routes and outboxes. Emission sources
// are either the engine's synchronous callbacks (single-threaded Push)
// or ShardedEngine::DrainOutputs on the control thread; Drain may be
// called from consumer threads.

#ifndef ESLEV_SERVE_DISPATCHER_H_
#define ESLEV_SERVE_DISPATCHER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "types/tuple.h"

namespace eslev {

/// \brief What happens when a tenant's outbox is full.
enum class BackpressurePolicy : int {
  kDropOldest = 0,  // evict the head; the tenant sees the newest data
  kDropNewest,      // refuse the append; the tenant sees a contiguous prefix
};

/// \brief One delivered query result.
struct ServedEmission {
  std::string query;  // the tenant's query name
  /// Per-tenant monotone sequence. Assigned at fan-out time, so gaps
  /// after a drain witness dropped emissions (backpressure).
  uint64_t seq = 0;
  Tuple tuple;
};

class Dispatcher {
 public:
  void AddTenant(const std::string& tenant, size_t max_pending,
                 BackpressurePolicy policy);
  void RemoveTenant(const std::string& tenant);

  /// \brief Subscribe (tenant, query-name) to pipeline `entry_id`.
  void AddRoute(int entry_id, const std::string& tenant,
                const std::string& query);
  void RemoveRoute(int entry_id, const std::string& tenant,
                   const std::string& query);

  /// \brief Fan one pipeline emission out to every subscriber. Emissions
  /// for unknown entries (a pipeline unregistered with shard outboxes
  /// still draining) are counted, not delivered.
  void OnEmission(int entry_id, const Tuple& tuple);

  /// \brief Deliver up to `max` (0 = all) pending emissions of `tenant`
  /// in order; returns the count delivered.
  size_t Drain(const std::string& tenant,
               const std::function<void(const ServedEmission&)>& fn,
               size_t max = 0);

  size_t Pending(const std::string& tenant) const;
  uint64_t Dropped(const std::string& tenant) const;

  /// \brief tenant.<id>.{pending,emitted,delivered,dropped} gauges and
  /// counters plus serve.orphan_emissions.
  void AppendMetrics(MetricsSnapshot* out) const;

 private:
  struct Route {
    std::string tenant;
    std::string query;
  };
  struct Outbox {
    std::deque<ServedEmission> pending;
    size_t max_pending = 0;  // 0 = unbounded
    BackpressurePolicy policy = BackpressurePolicy::kDropOldest;
    uint64_t next_seq = 0;
    uint64_t emitted = 0;    // appended (before drops)
    uint64_t delivered = 0;  // drained to the consumer
    uint64_t dropped = 0;    // lost to backpressure
  };

  mutable std::mutex mu_;
  std::map<int, std::vector<Route>> routes_;  // entry_id -> subscribers
  std::map<std::string, Outbox> outboxes_;    // tenant -> outbox
  uint64_t orphan_emissions_ = 0;
};

}  // namespace eslev

#endif  // ESLEV_SERVE_DISPATCHER_H_
