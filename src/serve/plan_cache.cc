#include "serve/plan_cache.h"

#include <algorithm>

namespace eslev {

SharedPlanCache::Entry* SharedPlanCache::Lookup(
    const std::string& canonical) {
  if (!share_) {
    ++misses_;
    return nullptr;
  }
  auto it = by_canonical_.find(canonical);
  if (it == by_canonical_.end() || it->second.empty()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &by_id_.at(it->second.front());
}

SharedPlanCache::Entry* SharedPlanCache::Insert(Entry entry) {
  entry.refs = 1;
  const int id = entry.engine_query_id;
  auto [it, inserted] = by_id_.emplace(id, std::move(entry));
  if (inserted) by_canonical_[it->second.canonical].push_back(id);
  return &it->second;
}

bool SharedPlanCache::Release(int engine_query_id) {
  auto it = by_id_.find(engine_query_id);
  if (it == by_id_.end()) return false;
  if (--it->second.refs > 0) return false;
  auto canon = by_canonical_.find(it->second.canonical);
  if (canon != by_canonical_.end()) {
    auto& ids = canon->second;
    ids.erase(std::remove(ids.begin(), ids.end(), engine_query_id),
              ids.end());
    if (ids.empty()) by_canonical_.erase(canon);
  }
  by_id_.erase(it);
  return true;
}

const SharedPlanCache::Entry* SharedPlanCache::Peek(
    const std::string& canonical) const {
  auto it = by_canonical_.find(canonical);
  if (it == by_canonical_.end() || it->second.empty()) return nullptr;
  return &by_id_.at(it->second.front());
}

const SharedPlanCache::Entry* SharedPlanCache::FindById(
    int engine_query_id) const {
  auto it = by_id_.find(engine_query_id);
  return it == by_id_.end() ? nullptr : &it->second;
}

std::vector<const SharedPlanCache::Entry*> SharedPlanCache::Entries()
    const {
  std::vector<const Entry*> out;
  out.reserve(by_id_.size());
  for (const auto& [id, entry] : by_id_) out.push_back(&entry);
  return out;
}

void SharedPlanCache::AppendMetrics(MetricsSnapshot* out) const {
  uint64_t logical = 0;
  for (const auto& [id, entry] : by_id_) {
    logical += static_cast<uint64_t>(entry.refs);
  }
  out->gauges["serve.plan_cache.entries"] =
      static_cast<int64_t>(by_id_.size());
  out->gauges["serve.plan_cache.subscriptions"] =
      static_cast<int64_t>(logical);
  out->gauges["serve.plan_cache.sharing_enabled"] = share_ ? 1 : 0;
  out->counters["serve.plan_cache.hits"] = hits_;
  out->counters["serve.plan_cache.misses"] = misses_;
}

}  // namespace eslev
