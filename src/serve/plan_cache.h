// SharedPlanCache (DESIGN.md §17): the registry of physical pipelines
// behind the serving layer. Every served query — shared or not — has
// one Entry tying its canonical text to the engine query executing it;
// when sharing is enabled, a registration whose canonical text matches
// a live entry reuses that pipeline (refs+1) instead of compiling a
// duplicate, and the dispatcher fans the single output stream out to
// every subscriber.

#ifndef ESLEV_SERVE_PLAN_CACHE_H_
#define ESLEV_SERVE_PLAN_CACHE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/metrics.h"

namespace eslev {

class SharedPlanCache {
 public:
  struct Entry {
    std::string canonical;      // canonical statement text
    uint64_t hash = 0;          // CanonicalHash(canonical)
    int engine_query_id = 0;    // the physical pipeline
    std::string output_stream;  // the pipeline's emission stream
    double state_tuples = 0;    // admission charge (per subscriber)
    bool state_bounded = true;
    /// StateBoundSummary of the pipeline's cost report — embedded in
    /// admission rejections so a tenant sees the symbolic bound even
    /// when attaching to a cached pipeline.
    std::string bound_summary;
    int refs = 0;               // live subscriptions
  };

  /// \brief `share` controls lookup-before-insert; entries are tracked
  /// either way (the dispatcher and the registry need them).
  explicit SharedPlanCache(bool share) : share_(share) {}

  bool sharing_enabled() const { return share_; }

  /// \brief A live entry with this canonical text, or null. Counts a
  /// hit/miss. Always misses when sharing is disabled.
  Entry* Lookup(const std::string& canonical);

  /// \brief Track a freshly compiled pipeline with refs = 1.
  Entry* Insert(Entry entry);

  /// \brief refs+1 on a Lookup result.
  void AddRef(Entry* entry) { ++entry->refs; }

  /// \brief refs-1; removes and returns true when the last subscriber
  /// left (the caller then unregisters the engine query).
  bool Release(int engine_query_id);

  const Entry* FindById(int engine_query_id) const;

  /// \brief Like Lookup but side-effect free and independent of the
  /// sharing flag: the first live entry with this canonical text, or
  /// null. Used by EXPLAIN to annotate served statements.
  const Entry* Peek(const std::string& canonical) const;

  std::vector<const Entry*> Entries() const;
  size_t size() const { return by_id_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

  void AppendMetrics(MetricsSnapshot* out) const;

 private:
  bool share_;
  std::map<int, Entry> by_id_;
  // canonical text -> engine query ids (one id when sharing; several
  // parallel pipelines for the same text when not).
  std::map<std::string, std::vector<int>> by_canonical_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace eslev

#endif  // ESLEV_SERVE_PLAN_CACHE_H_
