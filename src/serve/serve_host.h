// ServeHost (DESIGN.md §17): the execution substrate under the
// multi-tenant serving layer. QueryServer speaks this narrow interface
// so one serving implementation runs over both the single-threaded
// Engine (emissions dispatched synchronously during Push) and the
// ShardedEngine (emissions buffered in per-shard outboxes and pumped
// by DrainEmissions).
//
// Adapters are non-owning: the caller constructs and owns the engine;
// the host only mediates. The sharded adapter quiesces all shards
// (Flush) before any topology change, so a runtime registration lands
// at the same stream position on every shard — the property the
// multi-tenant differential proof relies on.

#ifndef ESLEV_SERVE_SERVE_HOST_H_
#define ESLEV_SERVE_SERVE_HOST_H_

#include <string>
#include <vector>

#include "core/engine.h"
#include "core/sharded_engine.h"

namespace eslev {

class ServeHost {
 public:
  virtual ~ServeHost() = default;

  // Control plane (single-threaded; never concurrent with data pushes).
  virtual Status ExecuteScript(const std::string& sql) = 0;
  virtual Result<QueryInfo> RegisterQuery(const std::string& sql) = 0;
  virtual Status UnregisterQuery(int id) = 0;
  virtual Status SetNextQueryId(int id) = 0;
  virtual Status Subscribe(const std::string& stream,
                           TupleCallback callback) = 0;
  virtual Result<std::string> Explain(const std::string& sql) = 0;

  // Data plane.
  virtual Status Push(const std::string& stream, std::vector<Value> values,
                      Timestamp ts) = 0;
  virtual Status PushTuple(const std::string& stream, const Tuple& tuple) = 0;
  virtual Status AdvanceTime(Timestamp now) = 0;
  /// \brief Settle all in-flight work (pending batches / shard queues).
  virtual Status Flush() = 0;
  /// \brief Deliver buffered emissions to subscription callbacks on the
  /// calling thread; returns the count. Engines that dispatch
  /// synchronously return 0 — their callbacks already ran during Push.
  virtual size_t DrainEmissions() = 0;

  // Durability.
  virtual Status Checkpoint(const std::string& dir) = 0;
  virtual Status EnableWal(const std::string& path, WalOptions options) = 0;
  virtual Status RecoverFrom(const std::string& dir,
                             const ReplayOptions& options) = 0;

  virtual Result<MetricsSnapshot> Metrics() = 0;
  virtual bool sharded() const = 0;
};

/// \brief Serving over a caller-owned single-threaded Engine.
class EngineHost : public ServeHost {
 public:
  explicit EngineHost(Engine* engine) : engine_(engine) {}

  Status ExecuteScript(const std::string& sql) override {
    return engine_->ExecuteScript(sql);
  }
  Result<QueryInfo> RegisterQuery(const std::string& sql) override {
    return engine_->RegisterQuery(sql);
  }
  Status UnregisterQuery(int id) override {
    return engine_->UnregisterQuery(id);
  }
  Status SetNextQueryId(int id) override {
    return engine_->SetNextQueryId(id);
  }
  Status Subscribe(const std::string& stream,
                   TupleCallback callback) override {
    return engine_->Subscribe(stream, std::move(callback));
  }
  Result<std::string> Explain(const std::string& sql) override {
    return engine_->Explain(sql);
  }
  Status Push(const std::string& stream, std::vector<Value> values,
              Timestamp ts) override {
    return engine_->Push(stream, std::move(values), ts);
  }
  Status PushTuple(const std::string& stream, const Tuple& tuple) override {
    return engine_->PushTuple(stream, tuple);
  }
  Status AdvanceTime(Timestamp now) override {
    return engine_->AdvanceTime(now);
  }
  Status Flush() override { return engine_->FlushBatches(); }
  size_t DrainEmissions() override { return 0; }
  Status Checkpoint(const std::string& dir) override {
    return engine_->Checkpoint(dir);
  }
  Status EnableWal(const std::string& path, WalOptions options) override {
    return engine_->EnableWal(path, options);
  }
  Status RecoverFrom(const std::string& dir,
                     const ReplayOptions& options) override {
    return engine_->RecoverFrom(dir, options);
  }
  Result<MetricsSnapshot> Metrics() override { return engine_->Metrics(); }
  bool sharded() const override { return false; }

 private:
  Engine* engine_;
};

/// \brief Serving over a caller-owned ShardedEngine. Topology changes
/// quiesce every shard first so all shard engines mutate at the same
/// stream position.
class ShardedHost : public ServeHost {
 public:
  explicit ShardedHost(ShardedEngine* engine) : engine_(engine) {}

  Status ExecuteScript(const std::string& sql) override {
    ESLEV_RETURN_NOT_OK(engine_->Flush());
    return engine_->ExecuteScript(sql);
  }
  Result<QueryInfo> RegisterQuery(const std::string& sql) override {
    ESLEV_RETURN_NOT_OK(engine_->Flush());
    return engine_->RegisterQuery(sql);
  }
  Status UnregisterQuery(int id) override {
    return engine_->UnregisterQuery(id);  // flushes internally
  }
  Status SetNextQueryId(int id) override {
    return engine_->SetNextQueryId(id);
  }
  Status Subscribe(const std::string& stream,
                   TupleCallback callback) override {
    ESLEV_RETURN_NOT_OK(engine_->Flush());
    return engine_->Subscribe(stream, std::move(callback));
  }
  Result<std::string> Explain(const std::string& sql) override {
    return engine_->Explain(sql);
  }
  Status Push(const std::string& stream, std::vector<Value> values,
              Timestamp ts) override {
    return engine_->Push(stream, std::move(values), ts);
  }
  Status PushTuple(const std::string& stream, const Tuple& tuple) override {
    return engine_->PushTuple(stream, tuple);
  }
  Status AdvanceTime(Timestamp now) override {
    return engine_->AdvanceTime(now);
  }
  Status Flush() override { return engine_->Flush(); }
  size_t DrainEmissions() override { return engine_->DrainOutputs(); }
  Status Checkpoint(const std::string& dir) override {
    return engine_->Checkpoint(dir);
  }
  Status EnableWal(const std::string& path, WalOptions options) override {
    return engine_->EnableWal(path, options);
  }
  Status RecoverFrom(const std::string& dir,
                     const ReplayOptions& options) override {
    return engine_->RecoverFrom(dir, options);
  }
  Result<MetricsSnapshot> Metrics() override { return engine_->Metrics(); }
  bool sharded() const override { return true; }

 private:
  ShardedEngine* engine_;
};

}  // namespace eslev

#endif  // ESLEV_SERVE_SERVE_HOST_H_
