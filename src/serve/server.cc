#include "serve/server.h"

#include <algorithm>
#include <cmath>
#include <tuple>
#include <utility>

#include "analysis/cost_model.h"
#include "recovery/checkpoint.h"
#include "recovery/codec.h"
#include "sql/canonical.h"
#include "sql/parser.h"

namespace eslev {

namespace {

/// Final frame of session.reg. A registry whose last frame is not this
/// marker lost its tail (ScanFrames tolerates torn tails; the serving
/// registry must not).
constexpr const char* kRegistryEndMarker = "eslev-session-registry-end";

EngineOptions ShadowOptions() {
  EngineOptions options;
  // The shadow never sees data and must not diverge from the host under
  // environment knobs that only apply to front-end engines.
  options.honor_batch_env = false;
  options.honor_ingest_env = false;
  return options;
}

}  // namespace

QueryServer::QueryServer(ServeHost* host, QueryServerOptions options)
    : host_(host),
      options_(options),
      shadow_(ShadowOptions()),
      cache_(options.share_plans) {}

Status QueryServer::ExecuteScript(const std::string& sql) {
  ESLEV_ASSIGN_OR_RETURN(std::vector<StatementPtr> stmts, ParseScript(sql));
  for (const StatementPtr& stmt : stmts) {
    if (stmt->kind == StatementKind::kSelect) {
      return Status::Invalid(
          "bare SELECT in operator script: standing result queries are "
          "tenant-owned — register them via Session::Register so they get "
          "a name, an owner and an admission charge");
    }
    if (stmt->kind == StatementKind::kExplain) {
      return Status::Invalid(
          "EXPLAIN in operator script: use QueryServer::Explain");
    }
  }
  for (const StatementPtr& stmt : stmts) {
    std::string text = stmt->span.length > 0
                           ? sql.substr(stmt->span.offset, stmt->span.length)
                           : stmt->ToString();
    ScriptOp op;
    op.sql = text;
    op.next_id_before = shadow_.next_query_id();
    ESLEV_RETURN_NOT_OK(host_->ExecuteScript(text));
    ESLEV_RETURN_NOT_OK(shadow_.ExecuteScript(text));
    scripts_.push_back(std::move(op));
  }
  return Status::OK();
}

Status QueryServer::DeclareStreamStats(const std::string& stream,
                                       StreamStats stats) {
  ESLEV_RETURN_NOT_OK(shadow_.DeclareStreamStats(stream, stats));
  declared_stats_[stream] = stats;
  return Status::OK();
}

Result<Session> QueryServer::OpenSession(const std::string& tenant,
                                         TenantQuotas quotas) {
  if (tenant.empty()) return Status::Invalid("tenant id must be non-empty");
  if (tenants_.count(tenant)) {
    return Status::AlreadyExists("tenant \"" + tenant +
                                 "\" already has an open session");
  }
  TenantState state;
  state.quotas = quotas;
  size_t max_pending = quotas.max_pending_emissions != 0
                           ? quotas.max_pending_emissions
                           : options_.default_max_pending;
  dispatcher_.AddTenant(tenant, max_pending, quotas.backpressure);
  tenants_.emplace(tenant, std::move(state));
  return Session(this, tenant);
}

Result<Session> QueryServer::AttachSession(const std::string& tenant) {
  if (!tenants_.count(tenant)) {
    return Status::NotFound("no open session for tenant \"" + tenant + "\"");
  }
  return Session(this, tenant);
}

Status QueryServer::CloseSession(const std::string& tenant) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    return Status::NotFound("no open session for tenant \"" + tenant + "\"");
  }
  std::vector<std::string> names;
  for (const auto& [name, info] : it->second.queries) names.push_back(name);
  for (const std::string& name : names) {
    ESLEV_RETURN_NOT_OK(Unregister(tenant, name));
  }
  dispatcher_.RemoveTenant(tenant);
  tenants_.erase(tenant);
  return Status::OK();
}

Status QueryServer::Push(const std::string& stream, std::vector<Value> values,
                         Timestamp ts) {
  return host_->Push(stream, std::move(values), ts);
}

Status QueryServer::PushTuple(const std::string& stream, const Tuple& tuple) {
  return host_->PushTuple(stream, tuple);
}

Status QueryServer::AdvanceTime(Timestamp now) {
  return host_->AdvanceTime(now);
}

Result<size_t> QueryServer::Poll() {
  ESLEV_RETURN_NOT_OK(host_->Flush());
  return host_->DrainEmissions();
}

Result<ServedQueryInfo> QueryServer::Register(const std::string& tenant,
                                              const std::string& name,
                                              const std::string& sql) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    return Status::NotFound("no open session for tenant \"" + tenant + "\"");
  }
  TenantState& state = it->second;
  if (name.empty()) return Status::Invalid("query name must be non-empty");
  if (state.queries.count(name)) {
    return Status::AlreadyExists("tenant \"" + tenant +
                                 "\" already registered query \"" + name +
                                 "\"");
  }
  if (state.quotas.max_queries != 0 &&
      state.queries.size() >= state.quotas.max_queries) {
    ++state.rejected;
    return Status::OutOfRange(
        "admission denied for tenant \"" + tenant + "\" query \"" + name +
        "\": query quota reached (" +
        std::to_string(state.quotas.max_queries) + ")");
  }

  ESLEV_ASSIGN_OR_RETURN(StatementPtr stmt, ParseStatement(sql));
  if (stmt->kind != StatementKind::kSelect) {
    return Status::Invalid(
        "Session::Register accepts bare SELECT standing queries only; DDL "
        "and INSERT belong to the operator plane "
        "(QueryServer::ExecuteScript)");
  }
  ESLEV_ASSIGN_OR_RETURN(CanonicalQuery canonical, CanonicalizeQuery(sql));

  // Price the registration: a cache hit reuses the stored bound (the
  // pipeline already runs; the tenant is still charged for its logical
  // share), a miss runs the PR 9 static analyzer on the shadow catalog.
  SharedPlanCache::Entry* entry = cache_.Lookup(canonical.text);
  double charge = 0;
  bool bounded = true;
  std::string summary;
  if (entry != nullptr) {
    charge = entry->state_tuples;
    bounded = entry->state_bounded;
    summary = entry->bound_summary;
  } else {
    CostAnalyzer analyzer(&shadow_, shadow_.seq_backend());
    ESLEV_ASSIGN_OR_RETURN(QueryCostReport report,
                           analyzer.Analyze(*canonical.stmt));
    charge = report.total_state_tuples;
    bounded = report.state_bounded;
    summary = StateBoundSummary(report);
  }

  if (!bounded && !state.quotas.allow_unbounded_state) {
    ++state.rejected;
    return Status::OutOfRange(
        "admission denied for tenant \"" + tenant + "\" query \"" + name +
        "\": retained state is statically unbounded — " + summary +
        "; set TenantQuotas::allow_unbounded_state to admit anyway");
  }
  if (state.quotas.max_state_tuples > 0 &&
      state.admitted_state_tuples + charge > state.quotas.max_state_tuples) {
    ++state.rejected;
    return Status::OutOfRange(
        "admission denied for tenant \"" + tenant + "\" query \"" + name +
        "\": state bound " + summary + " exceeds the remaining budget (" +
        FormatCostNumber(state.admitted_state_tuples) + " of " +
        FormatCostNumber(state.quotas.max_state_tuples) +
        " tuples already admitted)");
  }

  bool shared = entry != nullptr;
  int engine_id = 0;
  if (entry != nullptr) {
    cache_.AddRef(entry);
    engine_id = entry->engine_query_id;
  } else {
    ESLEV_ASSIGN_OR_RETURN(QueryInfo info, CompilePipeline(canonical.text));
    SharedPlanCache::Entry fresh;
    fresh.canonical = canonical.text;
    fresh.hash = canonical.hash;
    fresh.engine_query_id = info.id;
    fresh.output_stream = info.output_stream;
    fresh.state_tuples = charge;
    fresh.state_bounded = bounded;
    fresh.bound_summary = summary;
    cache_.Insert(std::move(fresh));
    engine_id = info.id;
  }
  dispatcher_.AddRoute(engine_id, tenant, name);
  state.admitted_state_tuples += charge;

  ServedQueryInfo info;
  info.name = name;
  info.canonical = canonical.text;
  info.hash = canonical.hash;
  info.engine_query_id = engine_id;
  info.shared = shared;
  info.state_tuples = charge;
  info.state_bounded = bounded;
  state.queries.emplace(name, info);
  return info;
}

Status QueryServer::Unregister(const std::string& tenant,
                               const std::string& name) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    return Status::NotFound("no open session for tenant \"" + tenant + "\"");
  }
  TenantState& state = it->second;
  auto query_it = state.queries.find(name);
  if (query_it == state.queries.end()) {
    return Status::NotFound("tenant \"" + tenant +
                            "\" has no registered query \"" + name + "\"");
  }
  const ServedQueryInfo info = query_it->second;

  // Quiesce and pump so every emission produced before this point is
  // already in tenant outboxes — unregistration drops the route, never
  // results the tenant was owed.
  ESLEV_RETURN_NOT_OK(host_->Flush());
  host_->DrainEmissions();

  dispatcher_.RemoveRoute(info.engine_query_id, tenant, name);
  if (cache_.Release(info.engine_query_id)) {
    ESLEV_RETURN_NOT_OK(host_->UnregisterQuery(info.engine_query_id));
    ESLEV_RETURN_NOT_OK(shadow_.UnregisterQuery(info.engine_query_id));
  }
  state.admitted_state_tuples =
      std::max(0.0, state.admitted_state_tuples - info.state_tuples);
  state.queries.erase(query_it);
  return Status::OK();
}

Result<std::vector<ServedQueryInfo>> QueryServer::TenantQueries(
    const std::string& tenant) const {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    return Status::NotFound("no open session for tenant \"" + tenant + "\"");
  }
  std::vector<ServedQueryInfo> out;
  out.reserve(it->second.queries.size());
  for (const auto& [name, info] : it->second.queries) out.push_back(info);
  return out;
}

Result<size_t> QueryServer::DrainTenant(
    const std::string& tenant,
    const std::function<void(const ServedEmission&)>& fn, size_t max) {
  if (!tenants_.count(tenant)) {
    return Status::NotFound("no open session for tenant \"" + tenant + "\"");
  }
  return dispatcher_.Drain(tenant, fn, max);
}

size_t QueryServer::TenantPending(const std::string& tenant) const {
  return dispatcher_.Pending(tenant);
}

double QueryServer::TenantAdmittedState(const std::string& tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.admitted_state_tuples;
}

Result<QueryInfo> QueryServer::CompilePipeline(const std::string& canonical) {
  ESLEV_ASSIGN_OR_RETURN(QueryInfo info, host_->RegisterQuery(canonical));
  ESLEV_ASSIGN_OR_RETURN(QueryInfo mirror, shadow_.RegisterQuery(canonical));
  if (mirror.id != info.id) {
    return Status::ExecutionError(
        "serving shadow diverged from host: host assigned query id " +
        std::to_string(info.id) + ", shadow " + std::to_string(mirror.id));
  }
  const int id = info.id;
  ESLEV_RETURN_NOT_OK(host_->Subscribe(
      info.output_stream,
      [this, id](const Tuple& tuple) { dispatcher_.OnEmission(id, tuple); }));
  return info;
}

Result<std::string> QueryServer::Explain(const std::string& sql) {
  ESLEV_ASSIGN_OR_RETURN(std::string base, host_->Explain(sql));
  Result<StatementPtr> parsed = ParseStatement(sql);
  if (!parsed.ok()) return base;
  const Statement* inner = parsed->get();
  if (inner->kind == StatementKind::kExplain) {
    inner = static_cast<const ExplainStmt*>(inner)->inner.get();
  }
  if (inner == nullptr || inner->kind != StatementKind::kSelect) return base;
  Result<std::string> canonical = CanonicalStatementText(*inner);
  if (!canonical.ok()) return base;
  const SharedPlanCache::Entry* entry = cache_.Peek(*canonical);
  if (entry == nullptr) return base;

  std::string subscribers;
  for (const auto& [tenant, state] : tenants_) {
    for (const auto& [name, info] : state.queries) {
      if (info.engine_query_id != entry->engine_query_id) continue;
      if (!subscribers.empty()) subscribers += ", ";
      subscribers += tenant + "/" + name;
    }
  }
  std::string header = "-- serving: pipeline q" +
                       std::to_string(entry->engine_query_id) + ", " +
                       std::to_string(entry->refs) + " subscription(s)";
  if (!subscribers.empty()) header += " [" + subscribers + "]";
  header += cache_.sharing_enabled() ? ", sharing on" : ", sharing off";
  return header + "\n" + base;
}

Result<MetricsSnapshot> QueryServer::Metrics() {
  ESLEV_ASSIGN_OR_RETURN(MetricsSnapshot snap, host_->Metrics());
  cache_.AppendMetrics(&snap);
  dispatcher_.AppendMetrics(&snap);
  snap.gauges["serve.tenants"] = static_cast<int64_t>(tenants_.size());
  snap.gauges["serve.scripts"] = static_cast<int64_t>(scripts_.size());
  for (const auto& [tenant, state] : tenants_) {
    const std::string prefix = "tenant." + tenant + ".";
    snap.gauges[prefix + "queries"] =
        static_cast<int64_t>(state.queries.size());
    snap.gauges[prefix + "state_admitted_tuples"] =
        static_cast<int64_t>(std::ceil(state.admitted_state_tuples));
    snap.gauges[prefix + "state_budget_tuples"] =
        static_cast<int64_t>(std::ceil(state.quotas.max_state_tuples));
    snap.counters[prefix + "rejected"] += state.rejected;
  }
  return snap;
}

Status QueryServer::EnableWal(const std::string& path, WalOptions options) {
  return host_->EnableWal(path, std::move(options));
}

Status QueryServer::Checkpoint(const std::string& dir) {
  ESLEV_RETURN_NOT_OK(host_->Checkpoint(dir));
  return WriteFileAtomic(dir + "/" + kSessionRegistryFileName,
                         EncodeRegistry());
}

std::string QueryServer::EncodeRegistry() const {
  std::string out;
  AppendFrame(EncodeCheckpointHeader(), &out);

  BinaryEncoder body;
  body.PutU32(static_cast<uint32_t>(shadow_.next_query_id()));
  body.PutU32(static_cast<uint32_t>(scripts_.size()));
  for (const ScriptOp& op : scripts_) {
    body.PutU32(static_cast<uint32_t>(op.next_id_before));
    body.PutString(op.sql);
  }
  body.PutU32(static_cast<uint32_t>(declared_stats_.size()));
  for (const auto& [stream, stats] : declared_stats_) {
    body.PutString(stream);
    body.PutDouble(stats.rate_per_sec);
    body.PutDouble(stats.distinct_keys);
  }
  body.PutU32(static_cast<uint32_t>(tenants_.size()));
  for (const auto& [tenant, state] : tenants_) {
    body.PutString(tenant);
    body.PutU32(state.quotas.max_queries);
    body.PutDouble(state.quotas.max_state_tuples);
    body.PutU32(state.quotas.max_pending_emissions);
    body.PutBool(state.quotas.allow_unbounded_state);
    body.PutU8(static_cast<uint8_t>(state.quotas.backpressure));
    body.PutU32(static_cast<uint32_t>(state.queries.size()));
    for (const auto& [name, info] : state.queries) {
      body.PutString(name);
      body.PutU32(static_cast<uint32_t>(info.engine_query_id));
      body.PutString(info.canonical);
      body.PutU64(info.hash);
      body.PutDouble(info.state_tuples);
      body.PutBool(info.state_bounded);
      const SharedPlanCache::Entry* entry =
          cache_.FindById(info.engine_query_id);
      body.PutString(entry != nullptr ? entry->bound_summary : "");
    }
  }
  AppendFrame(body.TakeBuffer(), &out);
  AppendFrame(kRegistryEndMarker, &out);
  return out;
}

Status QueryServer::RecoverFrom(const std::string& dir,
                                const ReplayOptions& options) {
  if (!tenants_.empty() || !scripts_.empty() || cache_.size() != 0) {
    return Status::Invalid(
        "QueryServer::RecoverFrom requires a freshly constructed server "
        "(no scripts, tenants or pipelines)");
  }
  ESLEV_ASSIGN_OR_RETURN(
      std::string bytes,
      ReadFileAll(dir + "/" + kSessionRegistryFileName));
  ESLEV_RETURN_NOT_OK(DecodeAndReplayRegistry(bytes));
  return host_->RecoverFrom(dir, options);
}

Status QueryServer::DecodeAndReplayRegistry(const std::string& bytes) {
  ESLEV_ASSIGN_OR_RETURN(FrameScanResult frames,
                         ScanFrames(bytes.data(), bytes.size()));
  if (frames.payloads.size() != 3 ||
      frames.payloads.back() != kRegistryEndMarker) {
    return Status::IoError(
        "session registry is truncated or malformed (expected header, "
        "body and end-marker frames)");
  }
  ESLEV_RETURN_NOT_OK(
      ValidateCheckpointHeader(frames.payloads[0], "session registry"));

  BinaryDecoder body(frames.payloads[1]);
  ESLEV_ASSIGN_OR_RETURN(uint32_t next_engine_id, body.GetU32());

  std::vector<ScriptOp> scripts;
  ESLEV_ASSIGN_OR_RETURN(uint32_t nscripts, body.GetU32());
  for (uint32_t i = 0; i < nscripts; ++i) {
    ScriptOp op;
    ESLEV_ASSIGN_OR_RETURN(uint32_t before, body.GetU32());
    op.next_id_before = static_cast<int>(before);
    ESLEV_ASSIGN_OR_RETURN(op.sql, body.GetString());
    scripts.push_back(std::move(op));
  }

  std::map<std::string, StreamStats> stats;
  ESLEV_ASSIGN_OR_RETURN(uint32_t nstats, body.GetU32());
  for (uint32_t i = 0; i < nstats; ++i) {
    ESLEV_ASSIGN_OR_RETURN(std::string stream, body.GetString());
    StreamStats s;
    ESLEV_ASSIGN_OR_RETURN(s.rate_per_sec, body.GetDouble());
    ESLEV_ASSIGN_OR_RETURN(s.distinct_keys, body.GetDouble());
    stats.emplace(std::move(stream), s);
  }

  struct TenantRecord {
    std::string id;
    TenantQuotas quotas;
    std::vector<ServedQueryInfo> queries;
    std::vector<std::string> summaries;  // parallel to `queries`
  };
  std::vector<TenantRecord> tenant_records;
  ESLEV_ASSIGN_OR_RETURN(uint32_t ntenants, body.GetU32());
  for (uint32_t i = 0; i < ntenants; ++i) {
    TenantRecord record;
    ESLEV_ASSIGN_OR_RETURN(record.id, body.GetString());
    ESLEV_ASSIGN_OR_RETURN(record.quotas.max_queries, body.GetU32());
    ESLEV_ASSIGN_OR_RETURN(record.quotas.max_state_tuples, body.GetDouble());
    ESLEV_ASSIGN_OR_RETURN(record.quotas.max_pending_emissions,
                           body.GetU32());
    ESLEV_ASSIGN_OR_RETURN(record.quotas.allow_unbounded_state,
                           body.GetBool());
    ESLEV_ASSIGN_OR_RETURN(uint8_t policy, body.GetU8());
    record.quotas.backpressure = static_cast<BackpressurePolicy>(policy);
    ESLEV_ASSIGN_OR_RETURN(uint32_t nqueries, body.GetU32());
    for (uint32_t j = 0; j < nqueries; ++j) {
      ServedQueryInfo info;
      ESLEV_ASSIGN_OR_RETURN(info.name, body.GetString());
      ESLEV_ASSIGN_OR_RETURN(uint32_t engine_id, body.GetU32());
      info.engine_query_id = static_cast<int>(engine_id);
      ESLEV_ASSIGN_OR_RETURN(info.canonical, body.GetString());
      ESLEV_ASSIGN_OR_RETURN(info.hash, body.GetU64());
      ESLEV_ASSIGN_OR_RETURN(info.state_tuples, body.GetDouble());
      ESLEV_ASSIGN_OR_RETURN(info.state_bounded, body.GetBool());
      ESLEV_ASSIGN_OR_RETURN(std::string summary, body.GetString());
      record.queries.push_back(std::move(info));
      record.summaries.push_back(std::move(summary));
    }
    tenant_records.push_back(std::move(record));
  }
  if (!body.AtEnd()) {
    return Status::IoError("session registry body has trailing bytes");
  }

  // Replay scripts and pipeline registrations in the original
  // interleaving: ascending query id, scripts before the registration
  // that consumed the same id (a DDL script observed id K strictly
  // before the query that acquired K), script log order preserved.
  struct ReplayOp {
    int id = 0;
    int kind = 0;  // 0 = script, 1 = pipeline
    size_t index = 0;
    const ScriptOp* script = nullptr;
    const ServedQueryInfo* pipeline = nullptr;
    const std::string* summary = nullptr;
  };
  std::vector<ReplayOp> ops;
  for (size_t i = 0; i < scripts.size(); ++i) {
    ReplayOp op;
    op.id = scripts[i].next_id_before;
    op.kind = 0;
    op.index = i;
    op.script = &scripts[i];
    ops.push_back(op);
  }
  std::map<int, ReplayOp> pipelines;  // unique physical entries, by id
  for (const TenantRecord& record : tenant_records) {
    for (size_t j = 0; j < record.queries.size(); ++j) {
      const ServedQueryInfo& info = record.queries[j];
      if (pipelines.count(info.engine_query_id)) continue;
      ReplayOp op;
      op.id = info.engine_query_id;
      op.kind = 1;
      op.pipeline = &info;
      op.summary = &record.summaries[j];
      pipelines.emplace(info.engine_query_id, op);
    }
  }
  for (const auto& [id, op] : pipelines) ops.push_back(op);
  std::stable_sort(ops.begin(), ops.end(),
                   [](const ReplayOp& a, const ReplayOp& b) {
                     return std::tie(a.id, a.kind, a.index) <
                            std::tie(b.id, b.kind, b.index);
                   });

  std::map<int, SharedPlanCache::Entry*> rebuilt;
  for (const ReplayOp& op : ops) {
    if (shadow_.next_query_id() < op.id) {
      ESLEV_RETURN_NOT_OK(host_->SetNextQueryId(op.id));
      ESLEV_RETURN_NOT_OK(shadow_.SetNextQueryId(op.id));
    }
    if (op.kind == 0) {
      ESLEV_RETURN_NOT_OK(host_->ExecuteScript(op.script->sql));
      ESLEV_RETURN_NOT_OK(shadow_.ExecuteScript(op.script->sql));
      scripts_.push_back(*op.script);
      continue;
    }
    ESLEV_ASSIGN_OR_RETURN(QueryInfo info,
                           CompilePipeline(op.pipeline->canonical));
    if (info.id != op.pipeline->engine_query_id) {
      return Status::ExecutionError(
          "registry replay assigned query id " + std::to_string(info.id) +
          " where the checkpoint recorded " +
          std::to_string(op.pipeline->engine_query_id));
    }
    SharedPlanCache::Entry entry;
    entry.canonical = op.pipeline->canonical;
    entry.hash = op.pipeline->hash;
    entry.engine_query_id = info.id;
    entry.output_stream = info.output_stream;
    entry.state_tuples = op.pipeline->state_tuples;
    entry.state_bounded = op.pipeline->state_bounded;
    entry.bound_summary = *op.summary;
    SharedPlanCache::Entry* inserted = cache_.Insert(std::move(entry));
    inserted->refs = 0;  // tenant attachments below take the refs
    rebuilt.emplace(info.id, inserted);
  }
  if (shadow_.next_query_id() < static_cast<int>(next_engine_id)) {
    ESLEV_RETURN_NOT_OK(host_->SetNextQueryId(static_cast<int>(next_engine_id)));
    ESLEV_RETURN_NOT_OK(shadow_.SetNextQueryId(static_cast<int>(next_engine_id)));
  }

  for (const TenantRecord& record : tenant_records) {
    TenantState state;
    state.quotas = record.quotas;
    size_t max_pending = record.quotas.max_pending_emissions != 0
                             ? record.quotas.max_pending_emissions
                             : options_.default_max_pending;
    dispatcher_.AddTenant(record.id, max_pending,
                          record.quotas.backpressure);
    for (size_t j = 0; j < record.queries.size(); ++j) {
      ServedQueryInfo info = record.queries[j];
      auto entry_it = rebuilt.find(info.engine_query_id);
      if (entry_it == rebuilt.end()) {
        return Status::IoError("session registry references query id " +
                               std::to_string(info.engine_query_id) +
                               " with no pipeline record");
      }
      cache_.AddRef(entry_it->second);
      info.shared = entry_it->second->refs > 1;
      dispatcher_.AddRoute(info.engine_query_id, record.id, info.name);
      state.admitted_state_tuples += info.state_tuples;
      state.queries.emplace(info.name, std::move(info));
    }
    tenants_.emplace(record.id, std::move(state));
  }

  for (const auto& [stream, s] : stats) {
    ESLEV_RETURN_NOT_OK(DeclareStreamStats(stream, s));
  }
  return Status::OK();
}

// ---- Session (thin handle) -------------------------------------------------

Result<ServedQueryInfo> Session::Register(const std::string& name,
                                          const std::string& sql) {
  if (server_ == nullptr) return Status::Invalid("session is not attached");
  return server_->Register(tenant_, name, sql);
}

Status Session::Unregister(const std::string& name) {
  if (server_ == nullptr) return Status::Invalid("session is not attached");
  return server_->Unregister(tenant_, name);
}

Result<std::vector<ServedQueryInfo>> Session::Queries() const {
  if (server_ == nullptr) return Status::Invalid("session is not attached");
  return server_->TenantQueries(tenant_);
}

Result<size_t> Session::Drain(
    const std::function<void(const ServedEmission&)>& fn, size_t max) {
  if (server_ == nullptr) return Status::Invalid("session is not attached");
  return server_->DrainTenant(tenant_, fn, max);
}

size_t Session::pending() const {
  return server_ == nullptr ? 0 : server_->TenantPending(tenant_);
}

double Session::admitted_state_tuples() const {
  return server_ == nullptr ? 0 : server_->TenantAdmittedState(tenant_);
}

}  // namespace eslev
