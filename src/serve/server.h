// QueryServer (DESIGN.md §17): multi-tenant continuous-query serving
// over one ESL-EV host engine.
//
// The split of responsibilities:
//   - the *operator plane* (ExecuteScript) installs shared
//     infrastructure — stream/table DDL and INSERT ... SELECT standing
//     queries feeding derived streams every tenant may read;
//   - the *tenant plane* (OpenSession -> Session::Register) attaches
//     named bare-SELECT standing queries at runtime, each admitted
//     against the tenant's quotas using the PR 9 static state-bound
//     analyzer and each routed through the Dispatcher into that
//     tenant's outbox;
//   - the SharedPlanCache canonicalizes registrations (sql/canonical.h)
//     so identical sub-patterns across tenants compile once and fan
//     out, turning N duplicate registrations into one pipeline plus
//     N routes (experiment E18 measures the resulting speedup).
//
// Admission pricing runs on a *shadow* engine: a default single-shard
// Engine that mirrors every script and registration. The shadow never
// sees data — it exists so the server has (a) a Catalog consistent with
// the host for CostAnalyzer, and (b) a local copy of the host's query-
// id counter, which the session-registry checkpoint (session.reg) needs
// to reproduce ids exactly on recovery.
//
// Threading: control-plane calls (scripts, sessions, register,
// unregister, checkpoint, recover) are single-threaded, matching the
// host engines' control planes. Data pushes follow the host's own
// contract; Session::Drain is safe from consumer threads.

#ifndef ESLEV_SERVE_SERVER_H_
#define ESLEV_SERVE_SERVER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "serve/dispatcher.h"
#include "serve/plan_cache.h"
#include "serve/serve_host.h"
#include "serve/session.h"

namespace eslev {

struct QueryServerOptions {
  /// Reuse one physical pipeline for registrations whose canonical text
  /// matches (the tentpole optimisation). Off = every registration
  /// compiles its own pipeline (the E18 baseline).
  bool share_plans = true;
  /// Default outbox capacity for tenants whose quotas leave
  /// max_pending_emissions at 0. 0 = unbounded.
  size_t default_max_pending = 0;
};

class QueryServer {
 public:
  /// \brief `host` must outlive the server.
  explicit QueryServer(ServeHost* host, QueryServerOptions options = {});

  // ---- operator plane ----------------------------------------------------

  /// \brief Run DDL and INSERT ... SELECT infrastructure statements on
  /// the host (and the shadow). Bare SELECT and EXPLAIN statements are
  /// rejected — tenants register SELECTs via Session::Register so every
  /// standing query has an owner, a name, and an admission charge.
  Status ExecuteScript(const std::string& sql);

  /// \brief Declare load statistics feeding admission pricing
  /// (CostAnalyzer cardinality/state estimates). Streams without
  /// declared stats use CostModelParams defaults.
  Status DeclareStreamStats(const std::string& stream, StreamStats stats);

  // ---- tenant plane ------------------------------------------------------

  Result<Session> OpenSession(const std::string& tenant,
                              TenantQuotas quotas = {});
  /// \brief A fresh handle to an already-open tenant — how a process
  /// reattaches to its sessions after RecoverFrom.
  Result<Session> AttachSession(const std::string& tenant);
  /// \brief Unregister every query of `tenant` and drop its outbox.
  Status CloseSession(const std::string& tenant);

  // ---- data plane --------------------------------------------------------

  Status Push(const std::string& stream, std::vector<Value> values,
              Timestamp ts);
  Status PushTuple(const std::string& stream, const Tuple& tuple);
  Status AdvanceTime(Timestamp now);
  /// \brief Settle in-flight work and pump buffered host emissions into
  /// tenant outboxes (a no-op pump on synchronous hosts, whose
  /// callbacks already ran during Push). Returns tuples pumped.
  Result<size_t> Poll();

  // ---- introspection -----------------------------------------------------

  /// \brief Host EXPLAIN, with a `-- serving:` header prepended when
  /// the statement's canonical text matches a live served pipeline.
  Result<std::string> Explain(const std::string& sql);

  /// \brief Host metrics merged with serving-layer metrics:
  /// serve.plan_cache.*, serve.tenants, serve.scripts,
  /// serve.orphan_emissions and per-tenant tenant.<id>.* series.
  Result<MetricsSnapshot> Metrics();

  const SharedPlanCache& plan_cache() const { return cache_; }
  size_t tenant_count() const { return tenants_.size(); }

  // ---- durability --------------------------------------------------------

  Status EnableWal(const std::string& path, WalOptions options = {});

  /// \brief Host checkpoint plus the session registry (session.reg):
  /// scripts, declared stats, tenants, quotas, registrations and the
  /// query-id counter — everything needed to rebuild the serving
  /// topology before replaying host state.
  Status Checkpoint(const std::string& dir);

  /// \brief Rebuild the full serving topology from `<dir>/session.reg`
  /// (re-running scripts and re-registering every pipeline at its
  /// original query id), then host-recover from `dir`. Must be called
  /// on a freshly constructed server whose host holds no streams or
  /// queries. Registrations made after the checkpoint are lost — the
  /// registry is only written by Checkpoint().
  Status RecoverFrom(const std::string& dir,
                     const ReplayOptions& options = {});

 private:
  friend class Session;

  struct TenantState {
    TenantQuotas quotas;
    std::map<std::string, ServedQueryInfo> queries;  // by name
    double admitted_state_tuples = 0;
    uint64_t rejected = 0;
  };
  /// One operator-plane statement, with the shadow's query-id counter
  /// *before* it ran — the registry replays scripts and tenant
  /// registrations in the original interleaving so INSERT queries
  /// re-acquire their original ids.
  struct ScriptOp {
    std::string sql;
    int next_id_before = 0;
  };

  // Session back-ends (Session is a thin handle).
  Result<ServedQueryInfo> Register(const std::string& tenant,
                                   const std::string& name,
                                   const std::string& sql);
  Status Unregister(const std::string& tenant, const std::string& name);
  Result<std::vector<ServedQueryInfo>> TenantQueries(
      const std::string& tenant) const;
  Result<size_t> DrainTenant(
      const std::string& tenant,
      const std::function<void(const ServedEmission&)>& fn, size_t max);
  size_t TenantPending(const std::string& tenant) const;
  double TenantAdmittedState(const std::string& tenant) const;

  /// Register `canonical` as a new physical pipeline on host + shadow at
  /// the next query id and subscribe the dispatcher to its output.
  Result<QueryInfo> CompilePipeline(const std::string& canonical);

  std::string EncodeRegistry() const;
  Status DecodeAndReplayRegistry(const std::string& bytes);

  ServeHost* host_;
  QueryServerOptions options_;
  Engine shadow_;
  SharedPlanCache cache_;
  Dispatcher dispatcher_;
  std::map<std::string, TenantState> tenants_;
  std::vector<ScriptOp> scripts_;
  std::map<std::string, StreamStats> declared_stats_;
};

}  // namespace eslev

#endif  // ESLEV_SERVE_SERVER_H_
