// Session (DESIGN.md §17): a tenant's handle into the QueryServer.
// Sessions register and unregister *named* standing queries at runtime,
// drain that tenant's result outbox, and expose the tenant's admission
// accounting. The handle is thin — all state lives in the server — so
// copies are cheap and a Session outliving its tenant (unregistered via
// QueryServer::CloseSession) simply starts returning NotFound.

#ifndef ESLEV_SERVE_SESSION_H_
#define ESLEV_SERVE_SESSION_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "serve/dispatcher.h"

namespace eslev {

class QueryServer;

/// \brief Per-tenant admission limits. Zero means unlimited.
struct TenantQuotas {
  /// Max simultaneously registered queries.
  uint32_t max_queries = 0;
  /// Max total retained-state tuples, priced by the PR 9 static
  /// analyzer at registration. A registration whose symbolic state
  /// bound would push the tenant past this budget is rejected with the
  /// bound embedded in the error.
  double max_state_tuples = 0;
  /// Max undelivered emissions buffered for this tenant.
  uint32_t max_pending_emissions = 0;
  /// Admit queries whose retained state is statically unbounded
  /// (e.g. SEQ history without a purge license). Off by default: an
  /// unbounded query can exhaust the host no matter the budget.
  bool allow_unbounded_state = false;
  BackpressurePolicy backpressure = BackpressurePolicy::kDropOldest;
};

/// \brief One registered standing query as the tenant sees it.
struct ServedQueryInfo {
  std::string name;       // tenant-chosen, unique per tenant
  std::string canonical;  // canonical statement text
  uint64_t hash = 0;      // CanonicalHash(canonical)
  int engine_query_id = 0;
  /// True when this registration attached to an existing pipeline
  /// instead of compiling its own (plan-cache hit).
  bool shared = false;
  /// Statically bounded retained-state charge, in tuples (0 when the
  /// bound is unbounded and the tenant allows that).
  double state_tuples = 0;
  bool state_bounded = true;
};

class Session {
 public:
  Session() = default;

  const std::string& tenant() const { return tenant_; }
  bool valid() const { return server_ != nullptr; }

  /// \brief Register a named standing query (bare SELECT only; DDL and
  /// INSERT belong to the operator plane, QueryServer::ExecuteScript).
  /// Fails with AlreadyExists on a duplicate name, OutOfRange when a
  /// quota or the state budget would be exceeded (the message carries
  /// the query's symbolic state bound), and Invalid for non-SELECT.
  Result<ServedQueryInfo> Register(const std::string& name,
                                   const std::string& sql);

  /// \brief Drop a registered query. Pending emissions already fanned
  /// out for it stay in the outbox; the pipeline is destroyed only when
  /// its last subscriber (across all tenants) leaves.
  Status Unregister(const std::string& name);

  /// \brief This tenant's registrations, in name order.
  Result<std::vector<ServedQueryInfo>> Queries() const;

  /// \brief Deliver up to `max` (0 = all) buffered results in order.
  Result<size_t> Drain(const std::function<void(const ServedEmission&)>& fn,
                       size_t max = 0);

  size_t pending() const;
  double admitted_state_tuples() const;

 private:
  friend class QueryServer;
  Session(QueryServer* server, std::string tenant)
      : server_(server), tenant_(std::move(tenant)) {}

  QueryServer* server_ = nullptr;
  std::string tenant_;
};

}  // namespace eslev

#endif  // ESLEV_SERVE_SESSION_H_
