#include "sql/ast.h"

namespace eslev {

const char* WindowDirectionToString(WindowDirection d) {
  switch (d) {
    case WindowDirection::kPreceding:
      return "PRECEDING";
    case WindowDirection::kFollowing:
      return "FOLLOWING";
    case WindowDirection::kPrecedingAndFollowing:
      return "PRECEDING AND FOLLOWING";
  }
  return "?";
}

std::string WindowSpec::ToString() const {
  std::string out = "[";
  if (row_based) {
    out += "ROWS " + std::to_string(length);
  } else {
    out += FormatDuration(length);
  }
  out += " ";
  out += WindowDirectionToString(direction);
  if (!anchor.empty()) {
    out += " " + anchor;
  }
  out += "]";
  return out;
}

const char* StarAggFnToString(StarAggFn f) {
  switch (f) {
    case StarAggFn::kFirst:
      return "FIRST";
    case StarAggFn::kLast:
      return "LAST";
    case StarAggFn::kCount:
      return "COUNT";
  }
  return "?";
}

std::string FuncCallExpr::ToString() const {
  std::string out = name + "(";
  if (star_arg) {
    out += "*";
  } else {
    for (size_t i = 0; i < args.size(); ++i) {
      if (i > 0) out += ", ";
      out += args[i]->ToString();
    }
  }
  out += ")";
  return out;
}

std::string UnaryExpr::ToString() const {
  switch (op) {
    case UnaryOp::kNot:
      return "NOT (" + operand->ToString() + ")";
    case UnaryOp::kNeg:
      return "-(" + operand->ToString() + ")";
  }
  return "?";
}

const char* BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kLike:
      return "LIKE";
    case BinaryOp::kNotLike:
      return "NOT LIKE";
  }
  return "?";
}

std::string BinaryExpr::ToString() const {
  return "(" + lhs->ToString() + " " + BinaryOpToString(op) + " " +
         rhs->ToString() + ")";
}

ExistsExpr::ExistsExpr(bool neg, std::unique_ptr<SelectStmt> sub)
    : Expr(ExprKind::kExists), negated(neg), subquery(std::move(sub)) {}

ExistsExpr::~ExistsExpr() = default;

std::string ExistsExpr::ToString() const {
  std::string out = negated ? "NOT EXISTS (" : "EXISTS (";
  out += subquery->ToString();
  out += ")";
  return out;
}

const char* SeqKindToString(SeqKind k) {
  switch (k) {
    case SeqKind::kSeq:
      return "SEQ";
    case SeqKind::kExceptionSeq:
      return "EXCEPTION_SEQ";
    case SeqKind::kClevelSeq:
      return "CLEVEL_SEQ";
  }
  return "?";
}

std::string SeqExpr::ToString() const {
  std::string out = SeqKindToString(seq_kind);
  out += "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    if (args[i].negated) out += "!";
    out += args[i].stream;
    if (args[i].star) out += "*";
  }
  out += ")";
  if (window) {
    out += " OVER " + window->ToString();
  }
  if (mode_explicit) {
    out += " MODE ";
    out += PairingModeToString(mode);
  }
  return out;
}

std::string SelectItem::ToString() const {
  if (is_star) return "*";
  std::string out = expr->ToString();
  if (!alias.empty()) out += " AS " + alias;
  return out;
}

std::string TableRef::ToString() const {
  std::string out = name;
  if (alias != name && !alias.empty()) out += " AS " + alias;
  if (window) out += " OVER " + window->ToString();
  return out;
}

std::string SelectStmt::ToString() const {
  std::string out = "SELECT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += items[i].ToString();
  }
  out += " FROM ";
  for (size_t i = 0; i < from.size(); ++i) {
    if (i > 0) out += ", ";
    out += from[i].ToString();
  }
  if (where) out += " WHERE " + where->ToString();
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by[i]->ToString();
    }
  }
  if (having) out += " HAVING " + having->ToString();
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += order_by[i].expr->ToString();
      if (order_by[i].descending) out += " DESC";
    }
  }
  if (limit >= 0) out += " LIMIT " + std::to_string(limit);
  return out;
}

std::string CreateStmt::ToString() const {
  std::string out = "CREATE ";
  out += is_stream ? "STREAM " : "TABLE ";
  out += name + "(";
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields[i].name;
    out += " ";
    out += TypeIdToString(fields[i].type);
  }
  out += ")";
  return out;
}

std::string CreateAggregateStmt::ToString() const {
  std::string out = "CREATE AGGREGATE " + name + " AS INITIALIZE " +
                    initialize->ToString() + " ITERATE " +
                    iterate->ToString();
  if (terminate) out += " TERMINATE " + terminate->ToString();
  if (return_type != TypeId::kNull) {
    out += " RETURNS ";
    out += TypeIdToString(return_type);
  }
  return out;
}

std::string InsertStmt::ToString() const {
  return "INSERT INTO " + target + " " + select->ToString();
}

}  // namespace eslev
